// Package chunks reproduces "A Data Labelling Technique for
// High-Performance Protocol Processing and Its Consequences"
// (D. C. Feldmeier, SIGCOMM 1993) as a complete Go library.
//
// The paper's contribution is the chunk: a completely self-describing
// piece of a protocol data unit, labelled with a TYPE and three
// (ID, SN, ST) framing tuples, that can be processed by the whole
// protocol stack the moment it arrives — in any order, fragmented any
// number of times — with end-to-end error detection provided by a
// fragmentation-invariant WSC-2 weighted sum code over GF(2^32).
//
// Layout:
//
//   - internal/chunk      — the labelling format, Appendix C/D algorithms
//   - internal/packet     — packets as envelopes; Figure 4 gateway strategies
//   - internal/gf, wsc    — GF(2^32) arithmetic and the WSC-2 code
//   - internal/errdet     — Section 4 end-to-end error detection
//   - internal/vr         — virtual reassembly
//   - internal/compress   — Appendix A invertible header transformations
//   - internal/transport  — a chunk transport protocol (signaling, ACK/NACK)
//   - internal/core       — UDP-backed public connection API
//   - internal/ipfrag, xtp, aal — comparison baselines
//   - internal/netsim, trace, ilp, stats — experiment substrates
//   - internal/faults, experiments — Table 1 matrix and the benchmark harness
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured record, and cmd/chunkbench to regenerate every
// table and figure.
package chunks
