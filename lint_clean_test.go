package chunks

import (
	"testing"

	"chunks/internal/lint"
)

// TestLintClean runs the full chunklint suite over this module
// in-process, so `go test ./...` fails on any new determinism,
// wire-pinning or telemetry-contract violation — the tree must stay
// at zero findings (suppressions require an annotated //lint:allow
// with a reason).
func TestLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	m, err := lint.Load(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := lint.Run(m, lint.AllChecks())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d finding(s); run `go run ./cmd/chunklint` for details", len(diags))
	}
}
