package chunks

import (
	"testing"

	"chunks/internal/lint"
)

// TestLintClean runs the full chunklint suite over this module
// in-process, so `go test ./...` fails on any new determinism,
// wire-pinning or telemetry-contract violation — the tree must stay
// at zero findings (suppressions require an annotated //lint:allow
// with a reason).
func TestLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	m, err := lint.Load(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, stats := lint.RunStats(m, lint.AllChecks())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d finding(s); run `go run ./cmd/chunklint` for details", len(diags))
	}
	// The suppression count is pinned: a new //lint:allow (or a removed
	// one) must come with a reviewed bump of the budget constant, so
	// suppressions cannot accrete silently.
	if stats.Allows != lint.AllowBudget {
		t.Errorf("module has %d //lint:allow directive(s), budget is %d — fix the findings or update AllowBudget in internal/lint/budget.go",
			stats.Allows, lint.AllowBudget)
	}
}
