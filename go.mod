module chunks

go 1.22
