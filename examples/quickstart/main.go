// Quickstart: the chunk data labelling format end to end, no network
// required. It forms a chunk from a labelled stream (Figure 2),
// splits it as a router would (Figure 3 / Appendix C), shuffles the
// fragments, verifies them with the fragmentation-invariant WSC-2
// code (Section 4), and reassembles in one step (Appendix D).
package main

import (
	"fmt"
	"math/rand"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
)

func main() {
	// One 64 KiB TPDU: 16,384 elements of 4 bytes, one ALF frame.
	payload := make([]byte, 64*1024)
	rand.New(rand.NewSource(1)).Read(payload)
	tpdu := chunk.Chunk{
		Type: chunk.TypeData, Size: 4, Len: uint32(len(payload) / 4),
		C:       chunk.Tuple{ID: 0xA, SN: 1000},
		T:       chunk.Tuple{ID: 42, SN: 0, ST: true},
		X:       chunk.Tuple{ID: 7, SN: 0, ST: true},
		Payload: payload,
	}
	fmt.Println("TPDU chunk: ", tpdu.String())

	// Transmitter side: the TPDU's error detection chunk.
	layout := errdet.DefaultLayout()
	parity, err := errdet.Encode(layout, []chunk.Chunk{tpdu})
	check(err)
	ed := errdet.EDChunk(tpdu.C.ID, tpdu.T.ID, tpdu.C.SN, parity)
	fmt.Printf("WSC-2 parity: P0=%08x P1=%08x\n", parity.P0, parity.P1)

	// The network fragments the chunk to fit 1400-byte packets...
	frags, err := tpdu.SplitToFit(1400)
	check(err)
	fmt.Printf("fragmented into %d chunks (Appendix C)\n", len(frags))

	// ...and delivers them in any order.
	rand.New(rand.NewSource(2)).Shuffle(len(frags), func(i, j int) {
		frags[i], frags[j] = frags[j], frags[i]
	})

	// Receiver side: process every fragment AS IT ARRIVES — no
	// reordering, no reassembly buffer.
	recv, err := errdet.NewReceiver(layout)
	check(err)
	for i := range frags {
		check(recv.Ingest(&frags[i]))
	}
	check(recv.Ingest(&ed))
	fmt.Println("end-to-end verdict:", recv.Verdict(tpdu.T.ID))

	// Reassembly, when an application wants it, is ONE step no matter
	// how the network fragmented (Appendix D).
	merged := chunk.MergeAll(frags)
	fmt.Printf("MergeAll: %d fragments -> %d chunk; equal to original: %v\n",
		len(frags), len(merged), merged[0].Equal(&tpdu))

	// Corruption demo: flip one payload bit in one fragment.
	bad := frags[3].Clone()
	bad.Payload[0] ^= 1
	recv2, err := errdet.NewReceiver(layout)
	check(err)
	for i := range frags {
		c := frags[i]
		if i == 3 {
			c = bad
		}
		check(recv2.Ingest(&c))
	}
	check(recv2.Ingest(&ed))
	fmt.Println("verdict after 1-bit corruption:", recv2.Verdict(tpdu.T.ID))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
