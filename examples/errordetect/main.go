// Errordetect demonstrates Section 4 end to end on a hostile network:
// 1 MiB of TPDUs crosses a simulated path that corrupts, duplicates
// and disorders packets. The receiver processes chunks strictly as
// they arrive and classifies every anomaly by the Table 1 mechanism
// that caught it; TPDUs whose syndrome identifies a single bad symbol
// are REPAIRED in place (extension), and the rest are recovered by
// replaying the sender's retained chunks (retransmission with the
// original identifiers, Section 3.3).
package main

import (
	"bytes"
	"fmt"
	"log"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/netsim"
	"chunks/internal/packet"
	"chunks/internal/trace"
)

func main() {
	w, err := trace.Bulk(trace.BulkConfig{
		Seed: 11, Bytes: 1 << 20, ElemSize: 4, TPDUElems: 1024, CID: 0xED,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sending %d TPDUs (%d KiB) across a corrupting, duplicating, disordering path\n",
		len(w.Chunks), len(w.Data)>>10)

	pk := packet.Packer{MTU: 640}
	datagrams, err := pk.Encode(w.All())
	if err != nil {
		log.Fatal(err)
	}
	link := netsim.NewLink(netsim.LinkConfig{
		Seed: 3, Paths: 8, BaseDelay: 80, SkewPerPath: 29,
		CorruptProb: 0.03, DupProb: 0.03, JitterMax: 13,
	})

	recv, err := errdet.NewReceiver(errdet.DefaultLayout())
	if err != nil {
		log.Fatal(err)
	}
	stream := make([]byte, len(w.Data))
	// Place only FRESH, check-accepted ranges (the Section 3.3
	// duplicate rule: a corrupted duplicate must not overwrite data).
	ingestAndPlace := func(c *chunk.Chunk) {
		fresh, err := recv.IngestFresh(c)
		if err != nil {
			log.Fatal(err)
		}
		es := uint64(c.Size)
		for _, iv := range fresh {
			off := (iv.Lo - c.T.SN) * es
			n := (iv.Hi - iv.Lo) * es
			dst := (c.C.SN + (iv.Lo - c.T.SN)) * es
			if dst+n <= uint64(len(stream)) {
				copy(stream[dst:dst+n], c.Payload[off:off+n])
			}
		}
	}

	droppedPackets := 0
	for _, d := range link.Transit(netsim.SendAll(datagrams, 0, 1)) {
		p, err := packet.Decode(d.Data)
		if err != nil {
			droppedPackets++ // framing corrupted: link-layer drop
			continue
		}
		for i := range p.Chunks {
			c := p.Chunks[i].Clone()
			ingestAndPlace(&c)
		}
	}

	// Tally verdicts; repair what the syndrome can localize.
	ok, repaired, failed := 0, 0, 0
	var needResend []int
	for i := range w.Chunks {
		tid := w.Chunks[i].T.ID
		switch recv.Verdict(tid) {
		case errdet.VerdictOK:
			ok++
		case errdet.VerdictEDMismatch:
			if cor, did := recv.Repair(tid); did {
				cor.Apply(stream, 4)
				repaired++
			} else {
				failed++
				needResend = append(needResend, i)
			}
		default:
			failed++
			needResend = append(needResend, i)
		}
	}
	fmt.Printf("first pass: %d verified, %d repaired in place, %d need retransmission (%d packets dropped by framing)\n",
		ok, repaired, failed, droppedPackets)

	// Recovery pass: reset the poisoned verification state and replay
	// the damaged TPDUs (same identifiers, Section 3.3).
	for _, i := range needResend {
		recv.ResetTPDU(w.Chunks[i].T.ID)
		c := w.Chunks[i]
		ingestAndPlace(&c)
		ed := w.EDs[i]
		if err := recv.Ingest(&ed); err != nil {
			log.Fatal(err)
		}
	}
	finalOK := 0
	for i := range w.Chunks {
		if recv.Verdict(w.Chunks[i].T.ID) == errdet.VerdictOK {
			finalOK++
		}
	}
	fmt.Printf("after retransmission: %d/%d TPDUs verified\n", finalOK, len(w.Chunks))
	if !bytes.Equal(stream, w.Data) {
		log.Fatal("stream does not match the original")
	}
	fmt.Println("application stream byte-identical to the transmitted data")

	// Show the mechanism census from the findings log.
	census := map[errdet.Verdict]int{}
	for _, f := range recv.Findings() {
		census[f.Class]++
	}
	fmt.Printf("detection census: ED-code=%d consistency=%d reassembly=%d repaired=%d\n",
		census[errdet.VerdictEDMismatch], census[errdet.VerdictConsistency],
		census[errdet.VerdictReassembly], census[errdet.VerdictOK])
}
