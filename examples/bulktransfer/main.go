// Bulktransfer: the paper's motivating application — "bulk data
// transfer: regardless of the order in which data arrive, they can be
// correctly placed in the application address space" (Section 1).
//
// It moves 4 MiB over real UDP loopback through the full stack
// (chunking, packet envelopes, WSC-2 verification, ACK/NACK selective
// retransmission) and prints transfer statistics.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"chunks/internal/core"
	"chunks/internal/errdet"
)

func main() {
	const size = 4 << 20
	data := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(data)

	verified := 0
	srv, err := core.Serve("127.0.0.1:0", core.Config{
		OnTPDU: func(tid uint32, v errdet.Verdict) {
			if v == errdet.VerdictOK {
				verified++
			} else {
				log.Printf("TPDU %d: %v", tid, v)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown()

	conn, err := core.Dial(srv.Addr().String(), core.Config{
		CID:       0xB01D,
		TPDUElems: 4096, // 16 KiB TPDUs over 1400-byte packets: every TPDU fragments
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	// Write in slices with a simple in-flight window so the burst does
	// not overrun the loopback socket buffers (flow control is out of
	// the paper's scope; the protocol recovers from overruns anyway).
	const slice = 256 << 10
	for off := 0; off < size; off += slice {
		end := off + slice
		if end > size {
			end = size
		}
		if err := conn.Write(data[off:end]); err != nil {
			log.Fatal(err)
		}
		for conn.Unacked() > 24 {
			time.Sleep(time.Millisecond)
		}
	}
	if err := conn.Close(); err != nil {
		log.Fatal(err)
	}
	if err := conn.WaitDrained(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := srv.WaitClosed(size, 30*time.Second); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if !bytes.Equal(srv.Stream(), data) {
		log.Fatal("data corruption: streams differ")
	}
	sent, retr := conn.Stats()
	fmt.Printf("transferred %d MiB in %v (%.1f MiB/s)\n",
		size>>20, elapsed.Round(time.Millisecond),
		float64(size)/(1<<20)/elapsed.Seconds())
	fmt.Printf("TPDUs sent: %d  verified end-to-end: %d  retransmits: %d\n",
		sent, verified, retr)
	fmt.Println("every byte placed directly into the application buffer; no reassembly buffer existed")
}
