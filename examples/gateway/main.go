// Gateway: internetworking with chunks (Figure 4). A stream crosses
// three networks — MTU 1500 → 296 (a SLIP-era hop) → 4352 (FDDI) —
// with a gateway at each boundary "emptying chunks from one size of
// envelope and placing them in another". The receiver is oblivious:
// whatever combination of fragmentation, combining and reassembly the
// gateways chose, the chunks verify and merge identically.
package main

import (
	"fmt"
	"log"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/netsim"
	"chunks/internal/packet"
	"chunks/internal/trace"
)

func main() {
	w, err := trace.Bulk(trace.BulkConfig{
		Seed: 3, Bytes: 256 * 1024, ElemSize: 4, TPDUElems: 2048, CID: 0x6A,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d TPDUs, %d KiB\n", len(w.Chunks), len(w.Data)>>10)

	for _, strategy := range []packet.Strategy{packet.OnePerPacket, packet.Combine, packet.Reassemble} {
		run(w, strategy)
	}
}

func run(w *trace.Workload, s packet.Strategy) {
	// Source network: MTU 1500.
	src := packet.Packer{MTU: 1500}
	pkts, err := src.Pack(w.All())
	check(err)
	wire0, _, _ := packet.Overhead(pkts)

	// Gateway 1: into the narrow network (MTU 296) — every chunk
	// fragments (Appendix C runs inside Repack).
	narrow, err := packet.Repack(pkts, 296, packet.Combine)
	check(err)
	wire1, _, _ := packet.Overhead(narrow)

	// The narrow network disorders packets.
	var raw [][]byte
	for i := range narrow {
		b, err := narrow[i].AppendTo(nil, 0)
		check(err)
		raw = append(raw, b)
	}
	link := netsim.NewLink(netsim.LinkConfig{Seed: 9, Paths: 4, BaseDelay: 50, SkewPerPath: 13})
	var arrived []packet.Packet
	for _, d := range link.Transit(netsim.SendAll(raw, 0, 1)) {
		p, err := packet.Decode(d.Data)
		check(err)
		arrived = append(arrived, p.Clone())
	}

	// Gateway 2: into the wide network (MTU 4352) using the selected
	// Figure 4 method.
	wide, err := packet.Repack(arrived, 4352, s)
	check(err)
	wire2, hdr2, payload2 := packet.Overhead(wide)

	// Receiver: verify every TPDU end-to-end and reassemble once.
	recv, err := errdet.NewReceiver(errdet.DefaultLayout())
	check(err)
	var data []chunk.Chunk
	for i := range wide {
		for j := range wide[i].Chunks {
			c := wide[i].Chunks[j]
			check(recv.Ingest(&c))
			if c.Type == chunk.TypeData {
				data = append(data, c)
			}
		}
	}
	okCount := 0
	for i := range w.Chunks {
		if recv.Verdict(w.Chunks[i].T.ID) == errdet.VerdictOK {
			okCount++
		}
	}
	merged := chunk.MergeAll(data)

	fmt.Printf("\n--- gateway strategy: %v ---\n", s)
	fmt.Printf("wire bytes: src=%d narrow=%d wide=%d (hdr %d, payload %d)\n",
		wire0, wire1, wire2, hdr2, payload2)
	fmt.Printf("TPDUs verified end-to-end: %d/%d (despite two refragmentations)\n",
		okCount, len(w.Chunks))
	fmt.Printf("one-step MergeAll: %d wide-network chunks -> %d chunks\n",
		len(data), len(merged))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
