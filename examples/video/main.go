// Video: the paper's second motivating application — "although the
// video frames themselves must be presented in the correct order,
// data of an individual frame can be placed in the frame buffer as
// they arrive without reordering" (Section 1).
//
// Each frame is one external PDU (an Application Layer Frame, [CLAR
// 90]): the X tuple carries frame identity, so frame completion — not
// stream order — gates display. The example simulates a 30-frame clip
// over a disordering multipath network and reports per-frame
// readiness.
package main

import (
	"bytes"
	"fmt"
	"log"

	"chunks/internal/errdet"
	"chunks/internal/netsim"
	"chunks/internal/packet"
	"chunks/internal/trace"
)

func main() {
	cfg := trace.VideoConfig{
		Seed:       7,
		Frames:     30,
		FrameElems: 1080, // ~4.3 KB frames
		ElemSize:   4,
		TPDUElems:  1000, // TPDU and frame boundaries interleave (Figure 1)
		CID:        0xF1,
	}
	w, err := trace.Video(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Pack the stream into 1400-byte packets and push them through an
	// 8-path network with heavy skew — the AURORA scenario.
	pk := packet.Packer{MTU: 1400}
	datagrams, err := pk.Encode(w.All())
	if err != nil {
		log.Fatal(err)
	}
	link := netsim.NewLink(netsim.LinkConfig{
		Seed: 1, Paths: 8, BaseDelay: 100, SkewPerPath: 37, JitterMax: 25,
	})
	deliveries := link.Transit(netsim.SendAll(packetsOf(datagrams), 0, 1))
	fmt.Printf("network disorder: %.0f%% of adjacent deliveries inverted\n",
		100*netsim.Disorder(deliveries))

	// Receiver: place chunks as they arrive; report each frame the
	// moment it completes.
	recv, err := errdet.NewReceiver(errdet.DefaultLayout())
	if err != nil {
		log.Fatal(err)
	}
	framebuf := make([]byte, len(w.Data))
	ready := make([]bool, cfg.Frames+1)
	readyCount := 0
	for _, d := range deliveries {
		p, err := packet.Decode(d.Data)
		if err != nil {
			log.Fatal(err)
		}
		for i := range p.Chunks {
			c := p.Chunks[i].Clone()
			if c.Type.Control() {
				if err := recv.Ingest(&c); err != nil {
					log.Fatal(err)
				}
				continue
			}
			// Immediate placement into the frame buffer at the
			// stream position.
			copy(framebuf[c.C.SN*uint64(c.Size):], c.Payload)
			if err := recv.Ingest(&c); err != nil {
				log.Fatal(err)
			}
			f := c.X.ID
			if !ready[f] && recv.XComplete(f) {
				ready[f] = true
				readyCount++
				if f <= 3 || int(f) == cfg.Frames {
					fmt.Printf("frame %2d ready at tick %d\n", f, d.Tick)
				}
			}
		}
	}

	fmt.Printf("frames ready: %d/%d\n", readyCount, cfg.Frames)
	if !bytes.Equal(framebuf, w.Data) {
		log.Fatal("frame buffer corrupted")
	}
	for f := 0; f < cfg.Frames; f++ {
		if !bytes.Equal(w.Frame(cfg, f), framebuf[f*cfg.FrameElems*4:(f+1)*cfg.FrameElems*4]) {
			log.Fatalf("frame %d content mismatch", f)
		}
	}
	fmt.Println("all frames placed correctly without any reordering buffer")
}

func packetsOf(datagrams [][]byte) [][]byte { return datagrams }
