// Command chunklint runs the repository's stdlib-only analyzer suite
// (internal/lint) over the module and exits non-zero on findings.
//
//	chunklint [-json] [-stats] [-C dir] [check ...]
//
// With check names as arguments only those checks run (plus directive
// hygiene); by default the whole suite runs. -C selects the module
// root (default: the module containing the working directory). -stats
// prints per-check finding and suppression counts and enforces the
// pinned //lint:allow budget (lint.AllowBudget): a drifted count is a
// finding, so suppressions cannot accrete without a reviewed bump.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"chunks/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	stats := flag.Bool("stats", false, "print per-check finding/suppression counts and enforce the //lint:allow budget")
	chdir := flag.String("C", "", "module root to analyze (default: enclosing module)")
	flag.Parse()

	root := *chdir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}

	checks := lint.AllChecks()
	if args := flag.Args(); len(args) > 0 {
		byName := map[string]lint.Check{}
		for _, c := range checks {
			byName[c.Name()] = c
		}
		checks = checks[:0]
		for _, name := range args {
			c, ok := byName[name]
			if !ok {
				fatal(fmt.Errorf("unknown check %q", name))
			}
			checks = append(checks, c)
		}
	}

	m, err := lint.Load(root)
	if err != nil {
		fatal(err)
	}
	diags, st := lint.RunStats(m, checks)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "chunklint: %d finding(s)\n", len(diags))
		}
	}

	budgetOK := true
	if *stats {
		printStats(checks, st)
		// The budget pins the module-wide total, so enforce it only
		// when the whole suite ran — a subset run still reports the
		// table but cannot judge other checks' suppressions.
		if len(flag.Args()) == 0 && st.Allows != lint.AllowBudget {
			budgetOK = false
			fmt.Fprintf(os.Stderr,
				"chunklint: %d //lint:allow directive(s), budget is %d — fix the findings or update AllowBudget in internal/lint/budget.go\n",
				st.Allows, lint.AllowBudget)
		}
	}
	if len(diags) > 0 || !budgetOK {
		os.Exit(1)
	}
}

// printStats writes the per-check finding/suppression table in check
// order (suite order, then any extra keys sorted) so output is stable.
func printStats(checks []lint.Check, st lint.Stats) {
	names := []string{"lint"}
	for _, c := range checks {
		names = append(names, c.Name())
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	var extra []string
	for n := range st.Findings {
		if !seen[n] {
			seen[n] = true
			extra = append(extra, n)
		}
	}
	for n := range st.Suppressed {
		if !seen[n] {
			seen[n] = true
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	names = append(names, extra...)

	fmt.Printf("%-12s %9s %10s\n", "check", "findings", "suppressed")
	for _, n := range names {
		fmt.Printf("%-12s %9d %10d\n", n, st.Findings[n], st.Suppressed[n])
	}
	fmt.Printf("total //lint:allow directives: %d (budget %d)\n", st.Allows, lint.AllowBudget)
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("chunklint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chunklint:", err)
	os.Exit(2)
}
