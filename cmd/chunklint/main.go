// Command chunklint runs the repository's stdlib-only analyzer suite
// (internal/lint) over the module and exits non-zero on findings.
//
//	chunklint [-json] [-C dir] [check ...]
//
// With check names as arguments only those checks run (plus directive
// hygiene); by default the whole suite runs. -C selects the module
// root (default: the module containing the working directory).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"chunks/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	chdir := flag.String("C", "", "module root to analyze (default: enclosing module)")
	flag.Parse()

	root := *chdir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}

	checks := lint.AllChecks()
	if args := flag.Args(); len(args) > 0 {
		byName := map[string]lint.Check{}
		for _, c := range checks {
			byName[c.Name()] = c
		}
		checks = checks[:0]
		for _, name := range args {
			c, ok := byName[name]
			if !ok {
				fatal(fmt.Errorf("unknown check %q", name))
			}
			checks = append(checks, c)
		}
	}

	m, err := lint.Load(root)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(m, checks)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "chunklint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("chunklint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chunklint:", err)
	os.Exit(2)
}
