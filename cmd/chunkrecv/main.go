// Chunkrecv receives a chunk transport connection over UDP, verifies
// every TPDU end-to-end with WSC-2, and optionally writes the placed
// stream to a file.
//
// Usage:
//
//	chunkrecv -listen 127.0.0.1:9911 -out received.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"chunks/internal/core"
	"chunks/internal/errdet"
	"chunks/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9911", "UDP listen address")
	out := flag.String("out", "", "write the received stream to this file")
	verbose := flag.Bool("v", false, "log each TPDU verdict and frame")
	wait := flag.Duration("wait", 5*time.Minute, "give up after this long")
	telAddr := flag.String("telemetry", "", "serve live telemetry on this HTTP address (e.g. 127.0.0.1:6071); also prints a snapshot at exit")
	recvBatch := flag.Int("batch", 0, "receive batch size: 0 = default (32, recvmmsg on Linux), 1 = legacy scalar reads")
	flag.Parse()

	var reg *telemetry.Registry
	if *telAddr != "" {
		reg = telemetry.New(0)
		tsrv, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer tsrv.Close()
		fmt.Printf("telemetry on http://%v/telemetry\n", tsrv.Addr())
	}

	verified, failed := 0, 0
	frames := 0
	srv, err := core.Serve(*listen, core.Config{
		Telemetry: reg,
		RecvBatch: *recvBatch,
		OnTPDU: func(tid uint32, v errdet.Verdict) {
			if v == errdet.VerdictOK {
				verified++
			} else {
				failed++
				log.Printf("TPDU %d: %v", tid, v)
			}
			if *verbose {
				log.Printf("TPDU %d: %v", tid, v)
			}
		},
		OnFrame: func(xid uint32, data []byte) {
			frames++
			if *verbose {
				log.Printf("frame %d complete: %d bytes", xid, len(data))
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown()
	fmt.Printf("listening on %v\n", srv.Addr())

	deadline := time.Now().Add(*wait)
	for !srv.Closed() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	// Grace period for retransmissions of the tail.
	settle := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(settle) {
		time.Sleep(20 * time.Millisecond)
	}

	stream := srv.Stream()
	fmt.Printf("received %d bytes; TPDUs verified %d, failed %d; frames %d\n",
		len(stream), verified, failed, frames)
	if reg != nil {
		reg.Snapshot().WriteText(os.Stdout)
	}
	for _, f := range srv.Findings() {
		log.Printf("finding: %v", f)
	}
	if *out != "" {
		if err := os.WriteFile(*out, stream, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
