// Chunkbench regenerates every table and figure of the reproduction
// (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	chunkbench                 # run everything
//	chunkbench -exp T1         # one experiment
//	chunkbench -exp P5 -seed 7 # with a different seed
//	chunkbench -exp O1         # overlap matrix; also writes BENCH_overlap.json
//	chunkbench -exp C1         # 1k→100k connection scale sweep; writes BENCH_scale.json
//	chunkbench -exp C1 -quick  # reduced C1 sweep (CI smoke)
//	chunkbench -exp P10        # scalar vs batched receive path; writes BENCH_recv.json
//	chunkbench -exp P10 -quick # reduced P10 sweep (CI smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"chunks/internal/experiments"
	"chunks/internal/overlap"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (F1..F7, T1, B1, P1..P10, O1, NET, C1) or 'all'")
	seed := flag.Int64("seed", 1, "deterministic seed for randomized workloads")
	quick := flag.Bool("quick", false, "reduced C1/P10 sweep (CI smoke); the BENCH json is still written on -exp C1/P10")
	flag.Parse()

	var tables []*experiments.Table
	if *exp == "all" {
		var err error
		tables, err = experiments.All(*seed)
		if err != nil {
			log.Fatal(err)
		}
	} else if strings.ToUpper(*exp) == "P10" {
		// P10 is driven through P10Run so the raw sweep lands in
		// BENCH_recv.json; -exp P10 is the one way to (re)write it.
		tb, res, err := experiments.P10Run(*seed, *quick)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeRecvTrajectory(res); err != nil {
			log.Fatal(err)
		}
		tables = []*experiments.Table{tb}
	} else if strings.ToUpper(*exp) == "C1" {
		// C1 is driven through C1Run so the raw sweep lands in
		// BENCH_scale.json; -exp C1 is the one way to (re)write it.
		tb, res, err := experiments.C1Run(*seed, *quick)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeScaleTrajectory(res); err != nil {
			log.Fatal(err)
		}
		tables = []*experiments.Table{tb}
	} else {
		gen := experiments.ByID(strings.ToUpper(*exp), *seed)
		if gen == nil {
			log.Fatalf("unknown experiment %q", *exp)
		}
		tb, err := gen()
		if err != nil {
			log.Fatal(err)
		}
		tables = []*experiments.Table{tb}
	}
	for _, tb := range tables {
		tb.Fprint(os.Stdout)
		if tb.ID == "O1" {
			if err := writeOverlapTrajectory(*seed); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// writeOverlapTrajectory records the full O1 matrix (not just the
// table's folded rows) as the deterministic BENCH_overlap.json
// trajectory file, so later PRs can diff the detection/disagreement
// surface cell by cell.
func writeOverlapTrajectory(seed int64) error {
	sum, err := overlap.Run(seed)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_overlap.json", append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote BENCH_overlap.json")
	return nil
}

// writeRecvTrajectory records the raw P10 sweep (every readers ×
// path cell) as BENCH_recv.json, the receive-path trajectory later
// PRs diff against.
func writeRecvTrajectory(res *experiments.RecvResult) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_recv.json", append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote BENCH_recv.json")
	return nil
}

// writeScaleTrajectory records the raw C1 sweep (every transport ×
// mode × count cell) as BENCH_scale.json, the scale trajectory later
// PRs diff against.
func writeScaleTrajectory(res *experiments.ScaleResult) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_scale.json", append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote BENCH_scale.json")
	return nil
}
