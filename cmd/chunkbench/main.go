// Chunkbench regenerates every table and figure of the reproduction
// (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	chunkbench                 # run everything
//	chunkbench -exp T1         # one experiment
//	chunkbench -exp P5 -seed 7 # with a different seed
package main

import (
	"flag"
	"log"
	"os"
	"strings"

	"chunks/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (F1..F7, T1, B1, P1..P9, NET) or 'all'")
	seed := flag.Int64("seed", 1, "deterministic seed for randomized workloads")
	flag.Parse()

	var tables []*experiments.Table
	if *exp == "all" {
		var err error
		tables, err = experiments.All(*seed)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		gen := experiments.ByID(strings.ToUpper(*exp), *seed)
		if gen == nil {
			log.Fatalf("unknown experiment %q", *exp)
		}
		tb, err := gen()
		if err != nil {
			log.Fatal(err)
		}
		tables = []*experiments.Table{tb}
	}
	for _, tb := range tables {
		tb.Fprint(os.Stdout)
	}
}
