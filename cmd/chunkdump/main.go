// Chunkdump decodes chunk-protocol packets and prints their contents —
// a protocol analyzer for the wire format of Section 2.
//
// Input is either a hex string argument or raw/hex packets on stdin
// (one packet per line when hex). Example:
//
//	chunksend ... | tee wire.bin
//	chunkdump -hex "$(xxd -p packet.bin | tr -d '\n')"
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/packet"
	"chunks/internal/transport"
)

func main() {
	hexArg := flag.String("hex", "", "hex-encoded packet to decode")
	raw := flag.Bool("raw", false, "treat stdin as one raw binary packet")
	flag.Parse()

	switch {
	case *hexArg != "":
		dump(mustHex(*hexArg))
	case *raw:
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		dump(b)
	default:
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			dump(mustHex(line))
		}
	}
}

func mustHex(s string) []byte {
	b, err := hex.DecodeString(strings.TrimSpace(s))
	if err != nil {
		log.Fatalf("bad hex: %v", err)
	}
	return b
}

func dump(b []byte) {
	p, err := packet.Decode(b)
	if err != nil {
		fmt.Printf("packet: DECODE ERROR: %v\n", err)
		return
	}
	fmt.Printf("packet: %d bytes, %d chunk(s)\n", len(b), len(p.Chunks))
	for i := range p.Chunks {
		c := &p.Chunks[i]
		fmt.Printf("  [%d] %s payload=%dB", i, c.String(), len(c.Payload))
		describe(c)
		fmt.Println()
	}
}

func describe(c *chunk.Chunk) {
	switch c.Type {
	case chunk.TypeED:
		if par, err := errdet.ParseED(c); err == nil {
			fmt.Printf("  parity{P0=%08x P1=%08x}", par.P0, par.P1)
		}
	case chunk.TypeSignal:
		if sig, err := transport.ParseSignal(c); err == nil {
			if sig.Open {
				fmt.Printf("  OPEN cid=%d elem=%dB csn=%d", sig.CID, sig.ElemSize, sig.CSN)
			} else {
				fmt.Printf("  CLOSE cid=%d final-csn=%d", sig.CID, sig.CSN)
			}
		}
	case chunk.TypeAck:
		if tid, err := transport.ParseAck(c); err == nil {
			fmt.Printf("  ack tpdu=%d", tid)
		}
	case chunk.TypeNack:
		if tid, miss, err := transport.ParseNack(c); err == nil {
			fmt.Printf("  nack tpdu=%d missing=%v", tid, miss)
		}
	}
}
