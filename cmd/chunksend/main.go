// Chunksend transmits a file or generated data to a chunkrecv peer
// over UDP using the chunk transport protocol.
//
// Usage:
//
//	chunksend -addr 127.0.0.1:9911 -bytes 1048576
//	chunksend -addr 10.0.0.2:9911 -file big.bin -frame 65536
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"chunks/internal/core"
	"chunks/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9911", "receiver UDP address")
	file := flag.String("file", "", "file to send (padded to element size); empty = random data")
	nbytes := flag.Int("bytes", 1<<20, "bytes of random data when -file is empty")
	seed := flag.Int64("seed", 1, "seed for random data")
	cid := flag.Uint("cid", 0xC1D, "connection ID")
	tpdu := flag.Int("tpdu", 4096, "TPDU size in elements")
	mtu := flag.Int("mtu", 1400, "datagram MTU")
	frame := flag.Int("frame", 0, "cut an ALF frame every N bytes (0 = one big frame)")
	adapt := flag.Bool("adapt", false, "adaptive TPDU sizing")
	window := flag.Int("window", 24, "max unacked TPDUs in flight")
	timeout := flag.Duration("timeout", 60*time.Second, "drain timeout")
	telAddr := flag.String("telemetry", "", "serve live telemetry on this HTTP address (e.g. 127.0.0.1:6070); also prints a snapshot at exit")
	flag.Parse()

	var reg *telemetry.Registry
	if *telAddr != "" {
		reg = telemetry.New(0)
		tsrv, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer tsrv.Close()
		fmt.Printf("telemetry on http://%v/telemetry\n", tsrv.Addr())
	}

	var data []byte
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		data = b
	} else {
		data = make([]byte, *nbytes)
		rand.New(rand.NewSource(*seed)).Read(data)
	}
	for len(data)%4 != 0 {
		data = append(data, 0)
	}

	conn, err := core.Dial(*addr, core.Config{
		CID: uint32(*cid), MTU: *mtu, TPDUElems: *tpdu, Adapt: *adapt,
		Telemetry: reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	step := *frame
	if step <= 0 || step > len(data) {
		step = len(data)
	}
	step = step &^ 3 // element alignment
	if step == 0 {
		step = 4
	}
	for off := 0; off < len(data); off += step {
		end := off + step
		if end > len(data) {
			end = len(data)
		}
		if err := conn.Write(data[off:end]); err != nil {
			log.Fatal(err)
		}
		conn.EndFrame()
		for conn.Unacked() > *window {
			time.Sleep(time.Millisecond)
		}
	}
	if err := conn.Close(); err != nil {
		log.Fatal(err)
	}
	if err := conn.WaitDrained(*timeout); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	sent, retr := conn.Stats()
	fmt.Printf("sent %d bytes in %v (%.2f MiB/s); TPDUs %d, retransmits %d\n",
		len(data), elapsed.Round(time.Millisecond),
		float64(len(data))/(1<<20)/elapsed.Seconds(), sent, retr)
	if reg != nil {
		reg.Snapshot().WriteText(os.Stdout)
	}
}
