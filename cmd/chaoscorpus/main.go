// Command chaoscorpus regenerates the chaos-corrupted fuzz corpus
// seeds under internal/packet/testdata/fuzz/FuzzDecode. Each seed is a
// valid sender-emitted datagram mutated by chaos.Corrupt with a fixed
// seed, so the corpus pins packet.Decode robustness against exactly the
// damage the chaos relay inflicts on the wire. Deterministic: rerunning
// produces byte-identical files.
//
// Usage: go run ./cmd/chaoscorpus [-out dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"chunks/internal/chaos"
	"chunks/internal/transport"
)

const corpusSeed = 20260806

func main() {
	out := flag.String("out", "internal/packet/testdata/fuzz/FuzzDecode", "corpus directory")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(corpusSeed))

	// Collect a spread of real datagrams: small and large TPDUs, data
	// and error-detection chunks, open and close signals.
	var datagrams [][]byte
	s := transport.NewSender(transport.SenderConfig{
		CID: 77, TPDUElems: 64, InitialRTO: time.Millisecond,
	}, func(d []byte) {
		datagrams = append(datagrams, append([]byte(nil), d...))
	})
	payload := make([]byte, 3*1024)
	rng.Read(payload)
	if err := s.Write(payload); err != nil {
		log.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}

	n := 0
	for i, d := range datagrams {
		// Three corruption intensities per source datagram: a light
		// flip, the relay default (max 3 bytes), and a heavy mangle.
		for _, max := range []int{1, 3, 16} {
			b := append([]byte(nil), d...)
			chaos.Corrupt(rng, b, max)
			name := fmt.Sprintf("chaos-corrupt-%02d-max%02d", i, max)
			if err := writeSeed(filepath.Join(*out, name), b); err != nil {
				log.Fatal(err)
			}
			n++
		}
	}
	fmt.Printf("wrote %d corpus seeds to %s\n", n, *out)
}

// writeSeed writes one corpus entry in the Go fuzzing v1 encoding.
func writeSeed(path string, b []byte) error {
	body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
	return os.WriteFile(path, []byte(body), 0o644)
}
