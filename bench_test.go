package chunks

// One benchmark per experiment in DESIGN.md's index: each Benchmark*
// times the code path that regenerates the corresponding figure or
// table (the printable rows come from cmd/chunkbench, which runs the
// same internal/experiments functions).

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"chunks/internal/batch"
	"chunks/internal/core"
	"chunks/internal/experiments"
	"chunks/internal/telemetry"
	"chunks/internal/transport"
	"chunks/internal/wsc"
)

func benchTable(b *testing.B, gen func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// Figures.

func BenchmarkF1MultiFraming(b *testing.B)    { benchTable(b, experiments.F1) }
func BenchmarkF2ChunkFormation(b *testing.B)  { benchTable(b, experiments.F2) }
func BenchmarkF3SplitAndPack(b *testing.B)    { benchTable(b, experiments.F3) }
func BenchmarkF5InvariantLayout(b *testing.B) { benchTable(b, experiments.F5) }
func BenchmarkF6XIDEncoding(b *testing.B)     { benchTable(b, experiments.F6) }
func BenchmarkF7ImplicitTID(b *testing.B)     { benchTable(b, experiments.F7) }

func BenchmarkF4GatewayStrategies(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.F4(1) })
}

// Table 1.

func BenchmarkT1CorruptionMatrix(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.T1(1) })
}

func BenchmarkB1ProtocolComparison(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.B1(1) })
}

// Performance claims.

func BenchmarkP1ImmediateVsBuffered(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P1(1) })
}

func BenchmarkP2MultiStageReassembly(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P2(1) })
}

func BenchmarkP3DemuxCost(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P3(1) })
}

func BenchmarkP4BufferLockup(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P4(1) })
}

func BenchmarkP5WSC2VsCRC(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P5(1, 50) })
}

func BenchmarkP6HeaderCompression(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P6(1) })
}

func BenchmarkP7ProtocolOverhead(b *testing.B) { benchTable(b, experiments.P7) }

func BenchmarkP8AdaptiveSizing(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P8(1) })
}

// BenchmarkP9ChecksumKernels times the WSC-2 checksum kernels on a
// 16 KiB block — the P9 experiment's headline size. The acceptance
// bar is best ≥ 4× scalar; compare the sub-benchmark MB/s figures
// (the CLMUL/AVX2 kernel lands near 10×, the portable table kernel
// near 3.5×).
func BenchmarkP9ChecksumKernels(b *testing.B) {
	data := make([]byte, 16<<10)
	for i := range data {
		data[i] = byte(i*2654435761 + i>>8)
	}
	ref, err := wsc.EncodeBytesScalar(data)
	if err != nil {
		b.Fatal(err)
	}
	run := func(name string, f func([]byte) (wsc.Parity, error)) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				par, err := f(data)
				if err != nil {
					b.Fatal(err)
				}
				if par != ref {
					b.Fatalf("%s parity %+v, want %+v", name, par, ref)
				}
			}
		})
	}
	run("scalar", wsc.EncodeBytesScalar)
	run("table", wsc.EncodeBytesTable)
	run("best", wsc.EncodeBytes)
	run("sharded4", func(p []byte) (wsc.Parity, error) { return wsc.EncodeBytesParallel(p, 4) })
}

// Adversarial overlap matrix (O1): the full differential replay —
// every schedule through vr, ipfrag, and the OS models, with a WSC-2
// parity check per delivery.
func BenchmarkO1OverlapMatrix(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.O1(1) })
}

func BenchmarkNetsimDisordering(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.Disordering(1) })
}

// C1: steady-state datagram ingestion through the sharded connection
// engine vs the same engine pinned to one shard. Each iteration
// establishes 2048 connections on a fresh server (untimed), then times
// 8 concurrent injectors pushing 8192 further one-TPDU datagrams over
// a 512-connection hot subset through Server.Inject — the in-process
// path of experiment C1 (chunkbench -exp C1 records the full sweep).
func BenchmarkC1ShardScaling(b *testing.B) {
	type inj struct {
		d    []byte
		peer *net.UDPAddr
	}
	const conns, hot, steadyN = 2048, 512, 8192
	var estab, steady []inj
	for i := 0; i < conns; i++ {
		var out [][]byte
		s := transport.NewSender(transport.SenderConfig{CID: uint32(i + 1), TPDUElems: 16},
			func(d []byte) { out = append(out, append([]byte(nil), d...)) })
		peer := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 40000 + i}
		if err := s.Write(make([]byte, 64)); err != nil {
			b.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
		for _, d := range out {
			estab = append(estab, inj{d, peer})
		}
		if i < hot {
			mark := len(out)
			for k := 0; k < steadyN/hot; k++ {
				if err := s.Write(make([]byte, 64)); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
			for _, d := range out[mark:] {
				steady = append(steady, inj{d, peer})
			}
		}
	}
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				srv, err := core.Serve("127.0.0.1:0", core.Config{
					Shards:      shards,
					IdleTimeout: 10 * time.Minute,
					ControlOut:  func([]byte, *net.UDPAddr) {},
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range estab {
					srv.Inject(e.d, e.peer)
				}
				if got := srv.ConnCount(); got != conns {
					b.Fatalf("established %d conns, want %d", got, conns)
				}
				b.StartTimer()
				var wg sync.WaitGroup
				const workers = 8
				for g := 0; g < workers; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for j := g; j < len(steady); j += workers {
							srv.Inject(steady[j].d, steady[j].peer)
						}
					}(g)
				}
				wg.Wait()
				b.StopTimer()
				srv.Shutdown()
				b.StartTimer()
			}
			b.ReportMetric(float64(len(steady)), "dgrams/op")
		})
	}
}

// Telemetry overhead: the same clean 64 KiB transfer through the
// deterministic pump with instrumentation disabled (zero Sink: every
// instrument is a nil-receiver no-op) and enabled (live registry with
// counters, histograms and the event ring). The two sub-benchmark
// ns/op figures pin the acceptance bound: live must stay within a few
// percent of nop.
func BenchmarkTelemetryHotPath(b *testing.B) {
	run := func(b *testing.B, sink func() (telemetry.Sink, telemetry.Sink)) {
		data := make([]byte, 64*1024)
		for i := range data {
			data[i] = byte(i)
		}
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ssink, rsink := sink()
			p, err := transport.NewPump(
				transport.SenderConfig{CID: 1, MTU: 1400, ElemSize: 4, TPDUElems: 1024, Tel: ssink},
				transport.ReceiverConfig{Tel: rsink},
				transport.PumpConfig{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.S.Write(data); err != nil {
				b.Fatal(err)
			}
			if err := p.S.Close(); err != nil {
				b.Fatal(err)
			}
			res, err := p.Run()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Drained {
				b.Fatal("pump did not drain")
			}
		}
	}
	b.Run("nop", func(b *testing.B) {
		run(b, func() (telemetry.Sink, telemetry.Sink) {
			return telemetry.Sink{}, telemetry.Sink{}
		})
	})
	b.Run("live", func(b *testing.B) {
		run(b, func() (telemetry.Sink, telemetry.Sink) {
			reg := telemetry.New(0)
			return reg.Sink("send"), reg.Sink("recv")
		})
	})
}

// P10: the batched receive fast path over real loopback sockets. Each
// sub-benchmark stands up a server in the named receive mode, blasts
// buffer-sized bursts of a pre-built seeded schedule at it through
// the sendmmsg writer, and counts an iteration per datagram the
// server ingests — the socket-to-HandlePacket path of experiment P10
// (chunkbench -exp P10 records the full scalar-vs-batched sweep in
// BENCH_recv.json).
func BenchmarkP10BatchedPath(b *testing.B) {
	var sched [][]byte
	s := transport.NewSender(transport.SenderConfig{
		CID: 1, MTU: 1400, ElemSize: 4, TPDUElems: 1024,
	}, func(d []byte) { sched = append(sched, append([]byte(nil), d...)) })
	payload := make([]byte, 4096)
	for len(sched) < 512 {
		if err := s.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	var wire int
	for _, d := range sched {
		wire += len(d)
	}

	for _, mode := range []struct {
		name      string
		recvBatch int
	}{{"path=scalar", 1}, {"path=batched", 32}} {
		b.Run(mode.name, func(b *testing.B) {
			reg := telemetry.New(0)
			srv, err := core.Serve("127.0.0.1:0", core.Config{
				Shards:      4,
				RecvBatch:   mode.recvBatch,
				Telemetry:   reg,
				IdleTimeout: 10 * time.Minute,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Shutdown()
			raddr, err := net.ResolveUDPAddr("udp", srv.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			conn, err := net.DialUDP("udp", nil, raddr)
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			_ = conn.SetWriteBuffer(4 << 20)
			w := batch.NewWriter(conn, 64)
			ctr := reg.Scope("server").Counter("datagrams_in")

			wait := func(target int64) {
				deadline := time.Now().Add(30 * time.Second)
				for ctr.Load() < target && time.Now().Before(deadline) {
					time.Sleep(100 * time.Microsecond)
				}
				if got := ctr.Load(); got < target {
					b.Fatalf("ingested %d of %d datagrams before timeout", got, target)
				}
			}
			// Establish the connection with one untimed burst.
			if err := w.Write(sched); err != nil {
				b.Fatal(err)
			}
			wait(int64(len(sched)))

			b.SetBytes(int64(wire / len(sched)))
			b.ResetTimer()
			sent := int64(len(sched))
			for n := 0; n < b.N; {
				burst := len(sched)
				if rem := b.N - n; rem < burst {
					burst = rem
				}
				if err := w.Write(sched[:burst]); err != nil {
					b.Fatal(err)
				}
				sent += int64(burst)
				wait(sent)
				n += burst
			}
		})
	}
}
