package chunks

// One benchmark per experiment in DESIGN.md's index: each Benchmark*
// times the code path that regenerates the corresponding figure or
// table (the printable rows come from cmd/chunkbench, which runs the
// same internal/experiments functions).

import (
	"testing"

	"chunks/internal/experiments"
)

func benchTable(b *testing.B, gen func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// Figures.

func BenchmarkF1MultiFraming(b *testing.B)    { benchTable(b, experiments.F1) }
func BenchmarkF2ChunkFormation(b *testing.B)  { benchTable(b, experiments.F2) }
func BenchmarkF3SplitAndPack(b *testing.B)    { benchTable(b, experiments.F3) }
func BenchmarkF5InvariantLayout(b *testing.B) { benchTable(b, experiments.F5) }
func BenchmarkF6XIDEncoding(b *testing.B)     { benchTable(b, experiments.F6) }
func BenchmarkF7ImplicitTID(b *testing.B)     { benchTable(b, experiments.F7) }

func BenchmarkF4GatewayStrategies(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.F4(1) })
}

// Table 1.

func BenchmarkT1CorruptionMatrix(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.T1(1) })
}

func BenchmarkB1ProtocolComparison(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.B1(1) })
}

// Performance claims.

func BenchmarkP1ImmediateVsBuffered(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P1(1) })
}

func BenchmarkP2MultiStageReassembly(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P2(1) })
}

func BenchmarkP3DemuxCost(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P3(1) })
}

func BenchmarkP4BufferLockup(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P4(1) })
}

func BenchmarkP5WSC2VsCRC(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P5(1, 50) })
}

func BenchmarkP6HeaderCompression(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P6(1) })
}

func BenchmarkP7ProtocolOverhead(b *testing.B) { benchTable(b, experiments.P7) }

func BenchmarkP8AdaptiveSizing(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P8(1) })
}

func BenchmarkNetsimDisordering(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.Disordering(1) })
}
