package chunks

// One benchmark per experiment in DESIGN.md's index: each Benchmark*
// times the code path that regenerates the corresponding figure or
// table (the printable rows come from cmd/chunkbench, which runs the
// same internal/experiments functions).

import (
	"testing"

	"chunks/internal/experiments"
	"chunks/internal/telemetry"
	"chunks/internal/transport"
	"chunks/internal/wsc"
)

func benchTable(b *testing.B, gen func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// Figures.

func BenchmarkF1MultiFraming(b *testing.B)    { benchTable(b, experiments.F1) }
func BenchmarkF2ChunkFormation(b *testing.B)  { benchTable(b, experiments.F2) }
func BenchmarkF3SplitAndPack(b *testing.B)    { benchTable(b, experiments.F3) }
func BenchmarkF5InvariantLayout(b *testing.B) { benchTable(b, experiments.F5) }
func BenchmarkF6XIDEncoding(b *testing.B)     { benchTable(b, experiments.F6) }
func BenchmarkF7ImplicitTID(b *testing.B)     { benchTable(b, experiments.F7) }

func BenchmarkF4GatewayStrategies(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.F4(1) })
}

// Table 1.

func BenchmarkT1CorruptionMatrix(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.T1(1) })
}

func BenchmarkB1ProtocolComparison(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.B1(1) })
}

// Performance claims.

func BenchmarkP1ImmediateVsBuffered(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P1(1) })
}

func BenchmarkP2MultiStageReassembly(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P2(1) })
}

func BenchmarkP3DemuxCost(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P3(1) })
}

func BenchmarkP4BufferLockup(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P4(1) })
}

func BenchmarkP5WSC2VsCRC(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P5(1, 50) })
}

func BenchmarkP6HeaderCompression(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P6(1) })
}

func BenchmarkP7ProtocolOverhead(b *testing.B) { benchTable(b, experiments.P7) }

func BenchmarkP8AdaptiveSizing(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.P8(1) })
}

// BenchmarkP9ChecksumKernels times the WSC-2 checksum kernels on a
// 16 KiB block — the P9 experiment's headline size. The acceptance
// bar is best ≥ 4× scalar; compare the sub-benchmark MB/s figures
// (the CLMUL/AVX2 kernel lands near 10×, the portable table kernel
// near 3.5×).
func BenchmarkP9ChecksumKernels(b *testing.B) {
	data := make([]byte, 16<<10)
	for i := range data {
		data[i] = byte(i*2654435761 + i>>8)
	}
	ref, err := wsc.EncodeBytesScalar(data)
	if err != nil {
		b.Fatal(err)
	}
	run := func(name string, f func([]byte) (wsc.Parity, error)) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				par, err := f(data)
				if err != nil {
					b.Fatal(err)
				}
				if par != ref {
					b.Fatalf("%s parity %+v, want %+v", name, par, ref)
				}
			}
		})
	}
	run("scalar", wsc.EncodeBytesScalar)
	run("table", wsc.EncodeBytesTable)
	run("best", wsc.EncodeBytes)
	run("sharded4", func(p []byte) (wsc.Parity, error) { return wsc.EncodeBytesParallel(p, 4) })
}

// Adversarial overlap matrix (O1): the full differential replay —
// every schedule through vr, ipfrag, and the OS models, with a WSC-2
// parity check per delivery.
func BenchmarkO1OverlapMatrix(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.O1(1) })
}

func BenchmarkNetsimDisordering(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.Disordering(1) })
}

// Telemetry overhead: the same clean 64 KiB transfer through the
// deterministic pump with instrumentation disabled (zero Sink: every
// instrument is a nil-receiver no-op) and enabled (live registry with
// counters, histograms and the event ring). The two sub-benchmark
// ns/op figures pin the acceptance bound: live must stay within a few
// percent of nop.
func BenchmarkTelemetryHotPath(b *testing.B) {
	run := func(b *testing.B, sink func() (telemetry.Sink, telemetry.Sink)) {
		data := make([]byte, 64*1024)
		for i := range data {
			data[i] = byte(i)
		}
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ssink, rsink := sink()
			p, err := transport.NewPump(
				transport.SenderConfig{CID: 1, MTU: 1400, ElemSize: 4, TPDUElems: 1024, Tel: ssink},
				transport.ReceiverConfig{Tel: rsink},
				transport.PumpConfig{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.S.Write(data); err != nil {
				b.Fatal(err)
			}
			if err := p.S.Close(); err != nil {
				b.Fatal(err)
			}
			res, err := p.Run()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Drained {
				b.Fatal("pump did not drain")
			}
		}
	}
	b.Run("nop", func(b *testing.B) {
		run(b, func() (telemetry.Sink, telemetry.Sink) {
			return telemetry.Sink{}, telemetry.Sink{}
		})
	})
	b.Run("live", func(b *testing.B) {
		run(b, func() (telemetry.Sink, telemetry.Sink) {
			reg := telemetry.New(0)
			return reg.Sink("send"), reg.Sink("recv")
		})
	})
}
