// Package protomodel reproduces Appendix B ("Comparison of Chunks
// with Other Protocols") as an executable table: every protocol the
// appendix discusses has a small working model here (or in its own
// package), and the "accepts disordered delivery?" column is MEASURED
// by a probe that delivers a message's pieces in reverse order and
// checks whether the receiver can still recover the data.
package protomodel

import (
	"bytes"
	"fmt"
	"math/rand"

	"chunks/internal/aal"
	"chunks/internal/chunk"
	"chunks/internal/ipfrag"
	"chunks/internal/xtp"
)

// A Row is one protocol's entry in the Appendix B comparison.
type Row struct {
	Protocol string
	// Framing summarises which chunk-equivalent fields the protocol
	// carries explicitly (paper's analysis).
	Framing string
	// Disordered reports whether disordered pieces can be placed
	// without prior reordering: "yes"/"no"/"partial", suffixed with
	// "(measured)" when a probe ran or "(paper)" when cited.
	Disordered string
	// Notes carries the paper's qualitative comment.
	Notes string
}

// probeResult renders a probe outcome.
func probeResult(ok bool) string {
	if ok {
		return "yes (measured)"
	}
	return "no (measured)"
}

// probeDeltaTResult renders Delta-t's split verdict: placement works,
// frame extraction does not cross gaps.
func probeDeltaTResult(seed int64) string {
	placement, beyondGap := probeDeltaT(seed)
	if placement && !beyondGap {
		return "partial (measured)"
	}
	if placement {
		return "yes (measured)"
	}
	return "no (measured)"
}

// probeChunks: split a chunk, deliver the halves in reverse order,
// reassemble — explicit (ID, SN, ST) triples make order irrelevant.
func probeChunks(seed int64) bool {
	payload := make([]byte, 64)
	rand.New(rand.NewSource(seed)).Read(payload)
	c := chunk.Chunk{
		Type: chunk.TypeData, Size: 1, Len: 64,
		C: chunk.Tuple{ID: 1}, T: chunk.Tuple{ID: 2, ST: true}, X: chunk.Tuple{ID: 3},
		Payload: payload,
	}
	a, b, err := c.Split(20)
	if err != nil {
		return false
	}
	merged := chunk.MergeAll([]chunk.Chunk{b, a}) // reversed
	return len(merged) == 1 && merged[0].Equal(&c)
}

// probeIP: byte offsets allow placement of reversed fragments.
func probeIP(seed int64) bool {
	payload := make([]byte, 500)
	rand.New(rand.NewSource(seed)).Read(payload)
	frags, err := ipfrag.Split(1, payload, 128)
	if err != nil {
		return false
	}
	r := ipfrag.NewReassembler(0)
	var out []byte
	for i := len(frags) - 1; i >= 0; i-- {
		o, err := r.Add(frags[i])
		if err != nil {
			return false
		}
		if o != nil {
			out = o
		}
	}
	return bytes.Equal(out, payload)
}

// probeXTP: explicit byte sequence numbers place reversed PDUs.
func probeXTP(seed int64) bool {
	payload := make([]byte, 500)
	rand.New(rand.NewSource(seed)).Read(payload)
	small, err := xtp.Resize(xtp.PDU{Key: 1, EOM: true, Data: payload}, 128)
	if err != nil {
		return false
	}
	c := xtp.NewCollector()
	var out []byte
	for i := len(small) - 1; i >= 0; i-- {
		if o := c.Add(small[i]); o != nil {
			out = o
		}
	}
	return bytes.Equal(out, payload)
}

// probeAAL5: a single implicit framing bit cannot survive reversal —
// the frame mis-frames and only the CRC notices.
func probeAAL5(seed int64) bool {
	payload := make([]byte, 150)
	rand.New(rand.NewSource(seed)).Read(payload)
	cells, err := aal.Segment(payload)
	if err != nil || len(cells) < 2 {
		return false
	}
	r := &aal.Reassembler{}
	for i := len(cells) - 1; i >= 0; i-- {
		out, err := r.Add(cells[i])
		if err == nil && out != nil && bytes.Equal(out, payload) {
			return true
		}
	}
	return false
}

// probeAAL34: the 4-bit SN requires in-order arrival within a MID;
// reversed cells trip the sequence check.
func probeAAL34(seed int64) bool {
	payload := make([]byte, 150)
	rand.New(rand.NewSource(seed)).Read(payload)
	cells := aal.Segment34(1, 0, payload)
	if len(cells) < 2 {
		return false
	}
	r := aal.NewReassembler34()
	for i := len(cells) - 1; i >= 0; i-- {
		_, out, err := r.Add(cells[i])
		if err == nil && out != nil && bytes.Equal(out, payload) {
			return true
		}
	}
	return false
}

// Compare builds the full Appendix B table.
func Compare(seed int64) []Row {
	return []Row{
		{
			Protocol:   "chunks",
			Framing:    "TYPE, SIZE, LEN and all three (ID, SN, ST) tuples explicit",
			Disordered: probeResult(probeChunks(seed)),
			Notes:      "explicit framing at every level; format identical before/after fragmentation",
		},
		{
			Protocol:   "IP fragmentation [POST 81]",
			Framing:    "T.ID (identification), T.SN (fragment offset), T.ST (¬MF) explicit",
			Disordered: probeResult(probeIP(seed)),
			Notes:      "placement works, but upper-layer processing requires physical reassembly first",
		},
		{
			Protocol:   "XTP [XTP 90]",
			Framing:    "C.SN explicit (byte seq); BTAG/ETAG flags in the data stream; TYPE, T.* implicit",
			Disordered: probeResult(probeXTP(seed)),
			Notes:      "resizing requires full protocol knowledge at the resizing point; SUPER packet has a second format",
		},
		{
			Protocol:   "AAL type 5 [LYON 91]",
			Framing:    "one bit of framing (≈T.ST); LEN explicit; everything else positional",
			Disordered: probeResult(probeAAL5(seed)),
			Notes:      "no SN: a cell begins a frame iff the previous ended one — ordered links only",
		},
		{
			Protocol:   "AAL type 3/4 [DEPR 91]",
			Framing:    "C.ID (MID), 4-bit C.SN, BOM/COM/EOM explicit; X.* derived from C.SN; no C.ST",
			Disordered: probeResult(probeAAL34(seed)),
			Notes:      "messages interleave by MID but each MID stream is order-dependent; 16-cell-loss wrap hazard",
		},
		{
			Protocol:   "HDLC family",
			Framing:    "C.ID (address), C.SN explicit; frames flag-delimited; P/F bit ≈ X.ST; LEN implicit",
			Disordered: probeResult(probeHDLC(seed)),
			Notes:      "designed for non-misordering links; ED code found by position inside the flag-delimited frame",
		},
		{
			Protocol:   "URP [FRAS 89]",
			Framing:    "C.SN explicit; C.ID one-to-one with the network connection; BOT/BOTM markers ≈ X.ST/T.ST",
			Disordered: probeResult(probeURP(seed)),
			Notes:      "cells sequenced on a virtual circuit; in-stream delimiters require parsing in order",
		},
		{
			Protocol:   "VMTP [CHER 86]",
			Framing:    "X.ID (transaction), X.SN (segOffset), X.ST (end-of-message) explicit; per-packet ED",
			Disordered: probeResult(probeVMTP(seed)),
			Notes:      "per-packet error detection makes T.* implicit; LEN implicit",
		},
		{
			Protocol:   "Axon [STER 90]",
			Framing:    "SN (index) and ST (limit) at several levels; not all levels have IDs (nested frames)",
			Disordered: probeResult(probeAxon(seed)),
			Notes:      "placement-oriented; ED checksum located positionally, so processing functions are framing-bound",
		},
		{
			Protocol:   "Delta-t [WATS 83]",
			Framing:    "C.ID, large C.SN explicit; B/E symbols in the data stream ≈ X bounds",
			Disordered: probeDeltaTResult(seed),
			Notes:      "connection level reorders; higher-level frames need in-stream symbol scanning",
		},
	}
}

// String renders a row compactly.
func (r Row) String() string {
	return fmt.Sprintf("%-28s %-10s %s", r.Protocol, r.Disordered, r.Framing)
}
