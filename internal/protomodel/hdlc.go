package protomodel

import (
	"errors"
)

// HDLC-family model (Appendix B): "The basic HDLC frame is delimited
// by flags, and the error detection code is found by its position in
// the frame; thus TYPE, T.ID, T.SN, and T.ST are implicit." This
// model implements flag delimiting with control-octet transparency
// (byte stuffing) and a CCITT FCS-16 trailer — enough to demonstrate
// that all framing is positional/in-stream, so the receiver is
// fundamentally a sequential scanner: disordered delivery destroys
// frames.

const (
	hdlcFlag = 0x7E
	hdlcEsc  = 0x7D
	hdlcXor  = 0x20
)

// ErrHDLCFCS reports a frame failing its FCS.
var ErrHDLCFCS = errors.New("protomodel: hdlc FCS mismatch")

// fcs16 computes the CCITT CRC-16 (X.25 FCS) of data.
func fcs16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0x8408
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// HDLCFrame encodes one frame: FLAG, stuffed(payload+FCS), FLAG.
func HDLCFrame(payload []byte) []byte {
	fcs := fcs16(payload)
	body := append(append([]byte{}, payload...), byte(fcs), byte(fcs>>8))
	out := []byte{hdlcFlag}
	for _, b := range body {
		if b == hdlcFlag || b == hdlcEsc {
			out = append(out, hdlcEsc, b^hdlcXor)
		} else {
			out = append(out, b)
		}
	}
	return append(out, hdlcFlag)
}

// HDLCScanner decodes a byte stream into frames. It is strictly
// sequential: framing lives IN the stream, so there is no way to hand
// it bytes out of order.
type HDLCScanner struct {
	buf     []byte
	inFrame bool
	esc     bool
}

// Feed consumes stream bytes and returns completed, FCS-verified
// frames; frames failing the FCS are counted in bad.
func (s *HDLCScanner) Feed(stream []byte) (frames [][]byte, bad int) {
	for _, b := range stream {
		if b == hdlcFlag {
			if s.inFrame && len(s.buf) > 0 {
				if len(s.buf) >= 2 {
					n := len(s.buf) - 2
					want := uint16(s.buf[n]) | uint16(s.buf[n+1])<<8
					if fcs16(s.buf[:n]) == want {
						frames = append(frames, append([]byte(nil), s.buf[:n]...))
					} else {
						bad++
					}
				} else {
					bad++
				}
			}
			s.buf = s.buf[:0]
			s.inFrame = true
			s.esc = false
			continue
		}
		if !s.inFrame {
			continue
		}
		if b == hdlcEsc {
			s.esc = true
			continue
		}
		if s.esc {
			b ^= hdlcXor
			s.esc = false
		}
		s.buf = append(s.buf, b)
	}
	return frames, bad
}

// probeHDLC delivers an HDLC stream's segments in reverse order: the
// positional framing mis-frames, and nothing (or garbage caught by
// the FCS) comes out.
func probeHDLC(seed int64) bool {
	payloads := [][]byte{
		seededBytes(80, seed), seededBytes(60, seed+1), seededBytes(90, seed+2),
	}
	var stream []byte
	for _, p := range payloads {
		stream = append(stream, HDLCFrame(p)...)
	}
	// Cut the stream into 32-byte segments and reverse them.
	var segs [][]byte
	for off := 0; off < len(stream); off += 32 {
		end := off + 32
		if end > len(stream) {
			end = len(stream)
		}
		segs = append(segs, stream[off:end])
	}
	var sc HDLCScanner
	good := 0
	for i := len(segs) - 1; i >= 0; i-- {
		frames, _ := sc.Feed(segs[i])
		for _, f := range frames {
			for _, p := range payloads {
				if string(f) == string(p) {
					good++
				}
			}
		}
	}
	return good == len(payloads)
}
