package protomodel

import (
	"encoding/binary"
	"math/rand"
)

// seededBytes returns n deterministic bytes.
func seededBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// ---------------------------------------------------------------------------
// VMTP model (Appendix B): "VMTP provides an X.ID (transaction
// identifier), a X.SN (segOffset), and X.ST bit (End-of-Message)"
// with per-packet error detection. Explicit per-packet offsets make
// disordered placement work.

// VMTPPacket is one segment of a message transaction.
type VMTPPacket struct {
	Transaction uint64
	SegOffset   uint32
	EOM         bool
	Data        []byte
}

// VMTPSegment splits a message into packets of per bytes.
func VMTPSegment(tx uint64, msg []byte, per int) []VMTPPacket {
	var out []VMTPPacket
	for off := 0; off < len(msg); off += per {
		end := off + per
		if end > len(msg) {
			end = len(msg)
		}
		out = append(out, VMTPPacket{
			Transaction: tx, SegOffset: uint32(off),
			EOM: end == len(msg), Data: msg[off:end],
		})
	}
	return out
}

// vmtpCollector places segments by offset (like the paper's message
// transactions).
type vmtpCollector struct {
	buf   []byte
	have  int
	total int
}

func (c *vmtpCollector) add(p VMTPPacket) []byte {
	end := int(p.SegOffset) + len(p.Data)
	if end > len(c.buf) {
		grown := make([]byte, end)
		copy(grown, c.buf)
		c.buf = grown
	}
	copy(c.buf[p.SegOffset:end], p.Data)
	c.have += len(p.Data)
	if p.EOM {
		c.total = end
	}
	if c.total > 0 && c.have >= c.total {
		return c.buf[:c.total]
	}
	return nil
}

// probeVMTP: reversed segments still place — measured yes.
func probeVMTP(seed int64) bool {
	msg := seededBytes(500, seed)
	pkts := VMTPSegment(9, msg, 128)
	var c vmtpCollector
	var out []byte
	for i := len(pkts) - 1; i >= 0; i-- {
		if o := c.add(pkts[i]); o != nil {
			out = o
		}
	}
	return string(out) == string(msg)
}

// ---------------------------------------------------------------------------
// Axon model (Appendix B): "Each level of framing has an SN (index)
// and ST bit (limit). However, not all levels of framing have an ID,
// which means that some frames are assumed to be hierarchically
// nested." Two nested levels: block index within message, message
// index within association; only the association carries an ID.
// Placement of disordered packets into application memory works; the
// per-packet checksum is positional (trailing), which this model
// keeps.

// AxonPacket is one block of a nested Axon framing hierarchy.
type AxonPacket struct {
	Assoc    uint32 // association ID (top level only)
	MsgIdx   uint32 // message SN within the association
	MsgLast  bool   // message ST (limit)
	BlockIdx uint32 // block SN within the message
	BlkLast  bool   // block ST (limit)
	Data     []byte
	Check    uint32 // positional trailing checksum of Data
}

// axonCheck is the per-packet checksum (simple sum; the model point
// is its positional location, not its strength).
func axonCheck(data []byte) uint32 {
	var s uint32
	for i := 0; i+4 <= len(data); i += 4 {
		s += binary.BigEndian.Uint32(data[i : i+4])
	}
	return s
}

// AxonSegment splits a message into blocks.
func AxonSegment(assoc, msgIdx uint32, msgLast bool, msg []byte, per int) []AxonPacket {
	var out []AxonPacket
	n := (len(msg) + per - 1) / per
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if hi > len(msg) {
			hi = len(msg)
		}
		out = append(out, AxonPacket{
			Assoc: assoc, MsgIdx: msgIdx, MsgLast: msgLast,
			BlockIdx: uint32(i), BlkLast: i == n-1,
			Data:  msg[lo:hi],
			Check: axonCheck(msg[lo:hi]),
		})
	}
	return out
}

// probeAxon: nested indices place disordered blocks (assuming the
// fixed block size the hierarchy implies) — measured yes.
func probeAxon(seed int64) bool {
	msg := seededBytes(500, seed)
	const per = 128
	pkts := AxonSegment(1, 0, true, msg, per)
	buf := make([]byte, len(msg))
	got := 0
	for i := len(pkts) - 1; i >= 0; i-- {
		p := pkts[i]
		if axonCheck(p.Data) != p.Check {
			return false
		}
		copy(buf[int(p.BlockIdx)*per:], p.Data)
		got += len(p.Data)
	}
	return got == len(msg) && string(buf) == string(msg)
}

// ---------------------------------------------------------------------------
// Delta-t model (Appendix B): "has a C.ID and C.SN, with the C.SN
// large enough to allow reordering of disordered data. Within the
// data stream, Delta-t provides symbols that mark the beginning and
// end of a higher-level frame (the B and E symbols)." Placement by
// C.SN works on disordered packets; extracting frames requires an
// in-order scan for the escaped B/E symbols — "partial".

const (
	dtEsc = 0xDB
	dtB   = 0x01
	dtE   = 0x02
	dtLit = 0x03
)

// DeltaTEncode builds the escaped byte stream for a frame: B symbol,
// payload with dtEsc doubled, E symbol.
func DeltaTEncode(frames [][]byte) []byte {
	var out []byte
	for _, f := range frames {
		out = append(out, dtEsc, dtB)
		for _, b := range f {
			if b == dtEsc {
				out = append(out, dtEsc, dtLit)
			} else {
				out = append(out, b)
			}
		}
		out = append(out, dtEsc, dtE)
	}
	return out
}

// DeltaTScanFrames extracts frames from a CONTIGUOUS stream prefix.
func DeltaTScanFrames(stream []byte) [][]byte {
	var out [][]byte
	var cur []byte
	open := false
	for i := 0; i < len(stream); i++ {
		if stream[i] == dtEsc && i+1 < len(stream) {
			i++
			switch stream[i] {
			case dtB:
				open = true
				cur = cur[:0]
			case dtE:
				if open {
					out = append(out, append([]byte(nil), cur...))
					open = false
				}
			case dtLit:
				if open {
					cur = append(cur, dtEsc)
				}
			}
			continue
		}
		if open {
			cur = append(cur, stream[i])
		}
	}
	return out
}

// probeDeltaTPlacement: disordered (C.SN, data) packets place into
// the stream buffer — yes.
// probeDeltaTFraming: frames are only extractable from the in-order
// contiguous prefix — a missing early packet hides ALL later frames,
// even complete ones.
func probeDeltaT(seed int64) (placement, framesBeyondGap bool) {
	frames := [][]byte{seededBytes(100, seed), seededBytes(100, seed+1), seededBytes(100, seed+2)}
	stream := DeltaTEncode(frames)
	// Packetize with C.SN = byte offset.
	type pkt struct {
		sn   int
		data []byte
	}
	var pkts []pkt
	for off := 0; off < len(stream); off += 64 {
		end := off + 64
		if end > len(stream) {
			end = len(stream)
		}
		pkts = append(pkts, pkt{off, stream[off:end]})
	}
	// Reverse delivery; place by C.SN.
	buf := make([]byte, len(stream))
	for i := len(pkts) - 1; i >= 0; i-- {
		copy(buf[pkts[i].sn:], pkts[i].data)
	}
	placement = string(buf) == string(stream)

	// Drop packet 0 and scan only the in-order prefix (nothing): the
	// two complete later frames are invisible until the gap fills.
	got := DeltaTScanFrames(nil) // contiguous prefix is empty
	framesBeyondGap = len(got) > 0
	return placement, framesBeyondGap
}

// ---------------------------------------------------------------------------
// URP model (Appendix B): "URP uses a C.SN, but the C.ID is implicit
// because URP connections are mapped one-to-one onto network
// connections ... URP delimits messages with a BOT marker". The
// receiver runs on a virtual circuit and accepts cells only in
// sequence (the SN serves ARQ, not reordering); blocks are found by
// in-stream markers.

// URPCell is one sequenced cell on the circuit.
type URPCell struct {
	SN   uint32
	Data []byte
}

// URPReceiver accepts cells strictly in order; out-of-sequence cells
// are discarded (the link-layer ARQ would retransmit them).
type URPReceiver struct {
	next   uint32
	stream []byte
}

// Add ingests a cell; it reports whether the cell was accepted.
func (r *URPReceiver) Add(c URPCell) bool {
	if c.SN != r.next {
		return false
	}
	r.next++
	r.stream = append(r.stream, c.Data...)
	return true
}

// Stream returns the accepted in-order byte stream.
func (r *URPReceiver) Stream() []byte { return r.stream }

// probeURP: reversed cells are rejected by the sequencer — no
// disordered delivery.
func probeURP(seed int64) bool {
	msg := seededBytes(300, seed)
	var cells []URPCell
	for off := 0; off < len(msg); off += 50 {
		end := off + 50
		if end > len(msg) {
			end = len(msg)
		}
		cells = append(cells, URPCell{SN: uint32(off / 50), Data: msg[off:end]})
	}
	r := &URPReceiver{}
	for i := len(cells) - 1; i >= 0; i-- {
		r.Add(cells[i])
	}
	return string(r.Stream()) == string(msg)
}
