package protomodel

import (
	"strings"
	"testing"
)

func TestProbesMatchPaperClassification(t *testing.T) {
	rows := Compare(1)
	want := map[string]string{
		"chunks":                     "yes (measured)",
		"IP fragmentation [POST 81]": "yes (measured)",
		"XTP [XTP 90]":               "yes (measured)",
		"AAL type 5 [LYON 91]":       "no (measured)",
		"AAL type 3/4 [DEPR 91]":     "no (measured)",
		"HDLC family":                "no (measured)",
		"URP [FRAS 89]":              "no (measured)",
		"VMTP [CHER 86]":             "yes (measured)",
		"Axon [STER 90]":             "yes (measured)",
		"Delta-t [WATS 83]":          "partial (measured)",
	}
	seen := 0
	for _, r := range rows {
		if w, ok := want[r.Protocol]; ok {
			seen++
			if r.Disordered != w {
				t.Errorf("%s: probe says %q, want %q", r.Protocol, r.Disordered, w)
			}
		}
	}
	if seen != len(want) {
		t.Fatalf("probed %d of %d implemented protocols", seen, len(want))
	}
}

func TestTableShape(t *testing.T) {
	rows := Compare(2)
	if len(rows) != 10 {
		t.Fatalf("%d rows; Appendix B discusses 10 systems", len(rows))
	}
	for _, r := range rows {
		if r.Protocol == "" || r.Framing == "" || r.Disordered == "" || r.Notes == "" {
			t.Errorf("incomplete row: %+v", r)
		}
		if !strings.Contains(r.Disordered, "(measured)") {
			t.Errorf("%s: row not probe-backed: %q", r.Protocol, r.Disordered)
		}
	}
}

func TestProbesStableAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		if !probeChunks(seed) {
			t.Errorf("seed %d: chunks probe failed", seed)
		}
		if !probeIP(seed) {
			t.Errorf("seed %d: ip probe failed", seed)
		}
		if !probeXTP(seed) {
			t.Errorf("seed %d: xtp probe failed", seed)
		}
		if probeAAL5(seed) {
			t.Errorf("seed %d: aal5 probe wrongly succeeded", seed)
		}
		if probeAAL34(seed) {
			t.Errorf("seed %d: aal3/4 probe wrongly succeeded", seed)
		}
	}
}

func TestRowString(t *testing.T) {
	r := Compare(1)[0]
	if s := r.String(); !strings.Contains(s, "chunks") {
		t.Fatalf("String() = %q", s)
	}
}
