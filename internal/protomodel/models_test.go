package protomodel

import (
	"bytes"
	"testing"
)

func TestHDLCRoundTripInOrder(t *testing.T) {
	payloads := [][]byte{
		seededBytes(50, 1),
		{},                        // empty frame
		{hdlcFlag, hdlcEsc, 0x00}, // payload needing stuffing
		seededBytes(200, 2),
	}
	var stream []byte
	for _, p := range payloads {
		stream = append(stream, HDLCFrame(p)...)
	}
	var sc HDLCScanner
	frames, bad := sc.Feed(stream)
	if bad != 0 {
		t.Fatalf("%d bad frames", bad)
	}
	// All four frames round-trip; the empty frame still carries its
	// 2-byte FCS, so it is distinguishable from back-to-back flags.
	want := payloads
	if len(frames) != len(want) {
		t.Fatalf("decoded %d frames, want %d", len(frames), len(want))
	}
	for i := range want {
		if !bytes.Equal(frames[i], want[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestHDLCStuffingTransparency(t *testing.T) {
	// Wire bytes between the flags must contain no bare flag octets.
	p := bytes.Repeat([]byte{hdlcFlag}, 10)
	wire := HDLCFrame(p)
	for _, b := range wire[1 : len(wire)-1] {
		if b == hdlcFlag {
			t.Fatal("unescaped flag inside frame body")
		}
	}
}

func TestHDLCFCSCatchesCorruption(t *testing.T) {
	wire := HDLCFrame(seededBytes(64, 3))
	// Flip a payload byte (avoid flags and escapes).
	for i := 5; i < len(wire)-5; i++ {
		if wire[i] != hdlcFlag && wire[i] != hdlcEsc && wire[i-1] != hdlcEsc {
			wire[i] ^= 0x01
			break
		}
	}
	var sc HDLCScanner
	frames, bad := sc.Feed(wire)
	// Need a trailing flag pair to terminate; feed one more.
	f2, b2 := sc.Feed([]byte{hdlcFlag})
	frames = append(frames, f2...)
	bad += b2
	if len(frames) != 0 || bad == 0 {
		t.Fatalf("frames=%d bad=%d; FCS must reject the corrupted frame", len(frames), bad)
	}
}

func TestHDLCScannerFragmentedFeed(t *testing.T) {
	p := seededBytes(100, 4)
	wire := HDLCFrame(p)
	var sc HDLCScanner
	var frames [][]byte
	for _, b := range wire { // byte-at-a-time
		fs, bad := sc.Feed([]byte{b})
		if bad != 0 {
			t.Fatal("unexpected bad frame")
		}
		frames = append(frames, fs...)
	}
	if len(frames) != 1 || !bytes.Equal(frames[0], p) {
		t.Fatal("byte-wise feed failed")
	}
}

func TestURPInOrder(t *testing.T) {
	msg := seededBytes(120, 5)
	r := &URPReceiver{}
	for i := 0; i < len(msg); i += 40 {
		if !r.Add(URPCell{SN: uint32(i / 40), Data: msg[i : i+40]}) {
			t.Fatal("in-order cell rejected")
		}
	}
	if !bytes.Equal(r.Stream(), msg) {
		t.Fatal("URP stream mismatch")
	}
	if r.Add(URPCell{SN: 99, Data: []byte{1}}) {
		t.Fatal("out-of-sequence cell must be rejected")
	}
}

func TestVMTPCollector(t *testing.T) {
	msg := seededBytes(300, 6)
	pkts := VMTPSegment(1, msg, 100)
	if len(pkts) != 3 || !pkts[2].EOM || pkts[1].EOM {
		t.Fatalf("segmentation shape: %d packets", len(pkts))
	}
	var c vmtpCollector
	if c.add(pkts[1]) != nil {
		t.Fatal("incomplete message must not complete")
	}
	if c.add(pkts[2]) != nil {
		t.Fatal("still missing the first segment")
	}
	out := c.add(pkts[0])
	if !bytes.Equal(out, msg) {
		t.Fatal("VMTP reassembly mismatch")
	}
}

func TestAxonSegmentation(t *testing.T) {
	msg := seededBytes(300, 7)
	pkts := AxonSegment(2, 5, true, msg, 128)
	if len(pkts) != 3 {
		t.Fatalf("%d blocks", len(pkts))
	}
	if !pkts[2].BlkLast || pkts[0].BlkLast {
		t.Fatal("block limit bits wrong")
	}
	for _, p := range pkts {
		if p.Assoc != 2 || p.MsgIdx != 5 || !p.MsgLast {
			t.Fatal("message-level framing wrong")
		}
		if axonCheck(p.Data) != p.Check {
			t.Fatal("positional checksum wrong")
		}
	}
}

func TestDeltaTEncodeScan(t *testing.T) {
	frames := [][]byte{
		seededBytes(30, 8),
		{dtEsc, dtEsc, 0x00}, // payload containing the escape byte
		{},
	}
	stream := DeltaTEncode(frames)
	got := DeltaTScanFrames(stream)
	if len(got) != len(frames) {
		t.Fatalf("scanned %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d mismatch: %v vs %v", i, got[i], frames[i])
		}
	}
	// A gap (missing prefix) hides everything after it.
	if fs := DeltaTScanFrames(stream[3:]); len(fs) >= len(frames) {
		t.Fatal("truncated prefix must lose at least the first frame")
	}
}

func TestDeltaTProbeSplit(t *testing.T) {
	placement, beyondGap := probeDeltaT(9)
	if !placement {
		t.Fatal("Delta-t placement must succeed")
	}
	if beyondGap {
		t.Fatal("frames beyond a gap must be invisible")
	}
}
