package experiments

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"chunks/internal/batch"
	"chunks/internal/core"
	"chunks/internal/telemetry"
	"chunks/internal/transport"
)

// P10 — the batched receive fast path over loopback UDP. The paper's
// central claim is that per-unit bookkeeping, not data touching, caps
// protocol processing; on this implementation's receive side the
// dominant per-datagram bookkeeping left after the zero-alloc work is
// the kernel boundary itself — one recvfrom, one poller arm per
// datagram. P10 measures what amortising that boundary buys: the same
// seeded workload is blasted at a server in scalar mode
// (Config.RecvBatch=1, the legacy one-recvfrom-per-datagram loop) and
// batched mode (RecvBatch=32, recvmmsg on Linux), across reader counts
// and two datagram sizes. The size axis is the paper's argument made
// measurable: MTU-sized datagrams amortise the fixed per-datagram cost
// over ~1.4 KiB of copying, small datagrams are almost pure
// bookkeeping — so that is where batching pays most.
//
// Datagrams are counted at the server (telemetry "datagrams_in"), so
// blast-path losses don't inflate the rate, and each cell times only
// counter movement: from blast start until ingestion goes quiet.

// A RecvRow is one measured cell of the P10 sweep.
type RecvRow struct {
	Readers      int     `json:"readers"`
	RecvBatch    int     `json:"recv_batch"`
	Path         string  `json:"path"`         // "scalar" | "batched"
	DgramBytes   int     `json:"dgram_bytes"`  // average wire datagram size
	KernelBatch  bool    `json:"kernel_batch"` // recvmmsg active (Linux) on batched rows
	DgramsPerSec float64 `json:"dgrams_per_sec"`
	GBPerSec     float64 `json:"gb_per_sec"`
	Speedup      float64 `json:"speedup_vs_scalar,omitempty"` // batched rows only
}

// RecvResult is the BENCH_recv.json trajectory: the full P10 sweep
// plus the run's shape.
type RecvResult struct {
	Seed       int64     `json:"seed"`
	Quick      bool      `json:"quick"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Rows       []RecvRow `json:"rows"`
}

const (
	recvSockets = 16 // concurrent blast sockets = connections
	recvWriterW = 64 // sendmmsg window on the blast side
)

// A recvShape is one datagram-size point of the sweep: MTU plus a
// TPDU size in elements chosen so every TPDU spans many datagrams
// (per-TPDU work — ACK emission, verification finalisation — stays
// amortised and the cell measures per-datagram bookkeeping).
type recvShape struct {
	mtu       int
	tpduElems int
}

// buildRecvWorkload pre-builds the seeded per-socket datagram
// schedules: connection i+1 always leaves socket i. Returns the
// schedules and the total wire bytes of one full blast.
func buildRecvWorkload(seed int64, sh recvShape, totalDgrams int) ([][][]byte, int64, error) {
	perSock := make([][][]byte, recvSockets)
	var wire int64
	for i := 0; i < recvSockets; i++ {
		var out [][]byte
		s := transport.NewSender(transport.SenderConfig{
			CID: uint32(i + 1), MTU: sh.mtu, ElemSize: 4, TPDUElems: sh.tpduElems,
		}, func(d []byte) { out = append(out, append([]byte(nil), d...)) })
		payload := seededBytes(seed+int64(i), sh.tpduElems*4)
		for len(out) < totalDgrams/recvSockets {
			if err := s.Write(payload); err != nil {
				return nil, 0, err
			}
		}
		if err := s.Flush(); err != nil {
			return nil, 0, err
		}
		perSock[i] = out
		for _, d := range out {
			wire += int64(len(d))
		}
	}
	return perSock, wire, nil
}

// runRecvPass measures one pass of a (readers × recvBatch × shape)
// cell and returns the per-round ingestion rates. The schedules are
// blasted in bursts sized to fit the server's socket receive buffer,
// so each burst lands in the kernel queue quickly and the measured
// span is dominated by the server draining it — on a single-CPU host
// this keeps the blast side from co-scheduling against the reader
// being measured. Round zero establishes the connections (untimed);
// each measured round times ingestion from blast start until the
// server-side datagram counter stops moving. ACKs ride the real
// reverse path — the blast sockets drop them — so the cell includes
// the full receive-side duty cycle, not just placement.
func runRecvPass(perSock [][][]byte, wire int64, readers, recvBatch, totalDgrams int) ([]float64, int, error) {
	reg := telemetry.New(0)
	srv, err := core.Serve("127.0.0.1:0", core.Config{
		Shards:      8,
		Readers:     readers,
		RecvBatch:   recvBatch,
		Telemetry:   reg,
		IdleTimeout: 10 * time.Minute,
	})
	if err != nil {
		return nil, 0, err
	}
	defer srv.Shutdown()

	raddr, err := net.ResolveUDPAddr("udp", srv.Addr().String())
	if err != nil {
		return nil, 0, err
	}
	socks := make([]*net.UDPConn, recvSockets)
	for i := range socks {
		s, err := net.DialUDP("udp", nil, raddr)
		if err != nil {
			return nil, 0, err
		}
		_ = s.SetWriteBuffer(4 << 20)
		defer s.Close()
		socks[i] = s
	}
	writers := make([]*batch.Writer, recvSockets)
	for i := range writers {
		writers[i] = batch.NewWriter(socks[i], recvWriterW)
	}

	var sched int64
	for _, s := range perSock {
		sched += int64(len(s))
	}
	dgramBytes := int(wire / sched)

	// Burst size per socket: all sixteen bursts together stay under
	// the server's 8 MiB receive buffer (doubled by the kernel), so a
	// burst parks in the kernel queue and the round measures the server
	// draining it. Bursts are as large as the buffer allows — on a
	// single-CPU host the server drains concurrently with the blast, so
	// only the residual backlog at blast-end is timed, and a longer
	// residual keeps the 1 ms quiet poller's quantisation small against
	// the span. The burst is also capped so every cell gets at least
	// eight measured rounds — the row reports the median per-round
	// rate, which is robust against rounds slowed by scheduler or
	// hypervisor noise.
	burst := (6 << 20) / (recvSockets * dgramBytes)
	if cap8 := totalDgrams / (recvSockets * 8); burst > cap8 {
		burst = cap8
	}
	if burst < 1 {
		burst = 1
	}
	if burst > len(perSock[0]) {
		burst = len(perSock[0])
	}
	rounds := totalDgrams / (recvSockets * burst)
	if rounds < 1 {
		rounds = 1
	}

	// Direct atomic handle: the 1 ms quiet-detection poller must not
	// pay (or charge the cell for) a full registry snapshot per tick.
	dgramsIn := reg.Scope("server").Counter("datagrams_in")
	ctr := func() int64 { return dgramsIn.Load() }
	blast := func(off int) {
		var wg sync.WaitGroup
		for i := range socks {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if off >= len(perSock[i]) {
					return
				}
				end := off + burst
				if end > len(perSock[i]) {
					end = len(perSock[i])
				}
				_ = writers[i].Write(perSock[i][off:end])
			}(i)
		}
		wg.Wait()
	}

	// Each round is timed drain-only: the span starts when the blast
	// returns (writers idle, the burst parked in the kernel queue) and
	// ends at the last observed counter movement, so the rate is the
	// server's own drain throughput, not a blend with the blast side's
	// CPU — on loopback the sender syscall pays kernel delivery, and
	// charging that to the cell would dilute both paths equally and
	// compress the comparison. quiet is how long the counter must hold
	// still before a round is considered drained; the counter is
	// always re-read before declaring quiet (a starved poller must not
	// exit on a stale value), so starvation can only stretch a round,
	// never inflate its rate. Rounds whose backlog drained entirely
	// during the blast carry no drain signal and are skipped.
	const quiet = 30 * time.Millisecond
	var rates []float64
	off := 0
	for round := 0; round <= rounds; round++ {
		blast(off)
		start := time.Now() //lint:allow detrand measured timing column of the experiment table
		before := ctr()
		last := before
		lastMove := start
		for {
			time.Sleep(time.Millisecond)
			if c := ctr(); c != last {
				last = c
				lastMove = time.Now() //lint:allow detrand measured timing column of the experiment table
				continue
			}
			if time.Since(lastMove) >= quiet { //lint:allow detrand measured timing column of the experiment table
				break
			}
		}
		if round > 0 { // round zero establishes connections, untimed
			span := lastMove.Sub(start)
			if span > time.Millisecond && last > before {
				rates = append(rates, float64(last-before)/span.Seconds())
			}
		}
		off += burst
		if off >= len(perSock[0]) {
			off = 0
		}
	}
	return rates, dgramBytes, nil
}

// runRecvCell measures one (readers × shape) scalar/batched pair by
// interleaving passes — scalar, batched, scalar, batched, … — and
// reporting each path's median per-round rate across all of its
// passes. Interleaving matters on shared hosts: slow drift
// (hypervisor steal, frequency scaling) then lands on both paths
// alike instead of biasing whichever happened to run second.
func runRecvCell(perSock [][][]byte, wire int64, readers, totalDgrams, passes int) (RecvRow, RecvRow, error) {
	scalar := RecvRow{Readers: readers, RecvBatch: 1, Path: "scalar"}
	batched := RecvRow{Readers: readers, RecvBatch: 32, Path: "batched"}
	var sRates, bRates []float64
	for p := 0; p < passes; p++ {
		r, db, err := runRecvPass(perSock, wire, readers, 1, totalDgrams)
		if err != nil {
			return scalar, batched, err
		}
		scalar.DgramBytes = db
		sRates = append(sRates, r...)
		r, db, err = runRecvPass(perSock, wire, readers, 32, totalDgrams)
		if err != nil {
			return scalar, batched, err
		}
		batched.DgramBytes = db
		bRates = append(bRates, r...)
	}
	median := func(r []float64) float64 {
		if len(r) == 0 {
			return 0
		}
		sort.Float64s(r)
		return r[len(r)/2]
	}
	scalar.DgramsPerSec = median(sRates)
	batched.DgramsPerSec = median(bRates)
	scalar.GBPerSec = scalar.DgramsPerSec * float64(scalar.DgramBytes) / 1e9
	batched.GBPerSec = batched.DgramsPerSec * float64(batched.DgramBytes) / 1e9
	if scalar.DgramsPerSec > 0 {
		batched.Speedup = batched.DgramsPerSec / scalar.DgramsPerSec
	}
	return scalar, batched, nil
}

// kernelBatchActive probes whether this platform runs the recvmmsg
// fast path (as opposed to the portable deadline drain).
func kernelBatchActive() bool {
	s, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return false
	}
	defer s.Close()
	return batch.NewReader(s, 2, 2048).Batched()
}

// P10Run runs the sweep and returns both the rendered table and the
// raw rows for BENCH_recv.json.
func P10Run(seed int64, quick bool) (*Table, *RecvResult, error) {
	t := &Table{
		ID:     "P10",
		Title:  "batched receive fast path: scalar vs recvmmsg ingestion over loopback UDP (dgrams/sec, GB/s)",
		Header: []string{"readers", "dgram B", "path", "kernel", "dgram/s", "GB/s", "speedup"},
	}
	res := &RecvResult{Seed: seed, Quick: quick, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// Two datagram sizes: MTU-sized (copy-dominated) and small
	// (bookkeeping-dominated — the paper's regime). Both keep TPDUs
	// many datagrams long.
	shapes := []recvShape{
		{mtu: 1400, tpduElems: 4096}, // ≈ 12 × 1.4 KiB datagrams per TPDU
		{mtu: 256, tpduElems: 512},   // ≈ 9 × 256 B datagrams per TPDU
	}
	totalDgrams, passes := 48000, 5
	readerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	if quick {
		totalDgrams, passes = 8000, 1
		readerCounts = []int{1}
	}
	// Dedupe reader counts (GOMAXPROCS may be 1 or 4).
	uniq := readerCounts[:0]
	for _, r := range readerCounts {
		dup := false
		for _, u := range uniq {
			dup = dup || u == r
		}
		if !dup {
			uniq = append(uniq, r)
		}
	}
	readerCounts = uniq

	kernel := kernelBatchActive()
	for _, sh := range shapes {
		perSock, wire, err := buildRecvWorkload(seed, sh, totalDgrams)
		if err != nil {
			return nil, nil, err
		}
		for _, rd := range readerCounts {
			scalar, batched, err := runRecvCell(perSock, wire, rd, totalDgrams, passes)
			if err != nil {
				return nil, nil, err
			}
			batched.KernelBatch = kernel
			res.Rows = append(res.Rows, scalar, batched)
		}
	}

	for _, r := range res.Rows {
		kcell, speedup := "-", "-"
		if r.Path == "batched" {
			kcell = "drain"
			if r.KernelBatch {
				kcell = "recvmmsg"
			}
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		t.row(fmt.Sprintf("%d", r.Readers), fmt.Sprintf("%d", r.DgramBytes), r.Path, kcell,
			fmt.Sprintf("%.0f", r.DgramsPerSec), fmt.Sprintf("%.3f", r.GBPerSec), speedup)
	}
	t.note("scalar = Config.RecvBatch=1, the legacy one-recvfrom-per-datagram read loop; batched = RecvBatch=32 through internal/batch (one recvmmsg per wakeup on Linux, deadline drain elsewhere)")
	t.note("rates counted at the server (datagrams_in); each cell interleaves scalar/batched passes of buffer-sized bursts and reports the median per-round drain rate, so blast-path losses, scheduler-noise outliers, and slow host drift don't distort the comparison; ACKs ride the real reverse path")
	t.note("multi-datagram TPDUs amortise per-TPDU work, so cells measure per-datagram bookkeeping — small datagrams are almost pure bookkeeping, which is where the paper predicts (and batching delivers) the largest win")
	if quick {
		t.note("quick mode: reduced volume, one reader count — run `chunkbench -exp P10` for the full sweep and BENCH_recv.json")
	}
	return t, res, nil
}

// P10 is the table-only wrapper used by All/ByID.
func P10(seed int64, quick bool) (*Table, error) {
	t, _, err := P10Run(seed, quick)
	return t, err
}
