package experiments

import (
	"strconv"
	"strings"
	"testing"

	"chunks/internal/overlap"
)

// TestAllExperimentsRun executes the entire index once and checks that
// each table has rows and well-formed cells.
func TestAllExperimentsRun(t *testing.T) {
	tables, err := All(1)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"F1", "F2", "F3", "F4", "F5", "F6", "F7", "T1", "B1",
		"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "O1", "NET", "C1"}
	if len(tables) != len(wantIDs) {
		t.Fatalf("%d tables, want %d", len(tables), len(wantIDs))
	}
	for i, tb := range tables {
		if tb.ID != wantIDs[i] {
			t.Errorf("table %d id %s, want %s", i, tb.ID, wantIDs[i])
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.ID)
		}
		for _, r := range tb.Rows {
			if len(r.Cells) != len(tb.Header) {
				t.Errorf("%s: row width %d != header %d", tb.ID, len(r.Cells), len(tb.Header))
			}
		}
	}
}

func cell(t *testing.T, tb *Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row].Cells) {
		t.Fatalf("%s: no cell (%d,%d)", tb.ID, row, col)
	}
	return tb.Rows[row].Cells[col]
}

func numCell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(t, tb, row, col), "x")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tb.ID, row, col, s)
	}
	return v
}

// TestP1Shape asserts the paper's qualitative result: buffered path
// touches each byte 2x more and has nonzero wait.
func TestP1Shape(t *testing.T) {
	tb, err := P1(3)
	if err != nil {
		t.Fatal(err)
	}
	immTouch := numCell(t, tb, 0, 1)
	reoTouch := numCell(t, tb, 1, 1)
	bufTouch := numCell(t, tb, 2, 1)
	if bufTouch != 2*immTouch {
		t.Fatalf("touches: buffered %v vs immediate %v", bufTouch, immTouch)
	}
	if !(immTouch < reoTouch && reoTouch <= bufTouch) {
		t.Fatalf("reordering (%v) must sit between immediate (%v) and buffered (%v)", reoTouch, immTouch, bufTouch)
	}
	if numCell(t, tb, 0, 2) != 0 {
		t.Fatal("immediate wait must be zero")
	}
	if numCell(t, tb, 2, 2) <= 0 {
		t.Fatal("buffered wait must be positive")
	}
}

// TestT1AllDetected: every corruption row must be detected.
func TestT1AllDetected(t *testing.T) {
	tb, err := T1(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows[1:] { // row 0 is the baseline
		if r.Cells[4] != "true" {
			t.Errorf("%s/%s went undetected", r.Cells[0], r.Cells[1])
		}
	}
	if tb.Rows[0].Cells[3] != "ok" {
		t.Fatal("baseline must be clean")
	}
}

// TestP5Shape: WSC-2 order-independent and swap-detecting; CRC not
// order-independent; inet checksum blind to swaps; none miss the
// random corruptions in this trial budget.
func TestP5Shape(t *testing.T) {
	tb, err := P5(7, 300)
	if err != nil {
		t.Fatal(err)
	}
	get := func(row int, col int) string { return cell(t, tb, row, col) }
	if get(0, 1) != "true" || get(0, 2) != "true" {
		t.Fatal("WSC-2 must be order-independent and swap-detecting")
	}
	if get(1, 1) != "false" {
		t.Fatal("CRC-32 must be order-dependent")
	}
	if get(2, 1) != "true" || get(2, 2) != "false" {
		t.Fatal("Internet checksum: order-independent but swap-blind")
	}
	// WSC-2 and CRC-32 must catch every trial; the Internet checksum
	// MAY miss some (cancelling one's-complement flips) — its
	// weakness is the row's message, so no upper assertion there.
	if numCell(t, tb, 0, 3) != 0 {
		t.Error("WSC-2 missed corruptions")
	}
	if numCell(t, tb, 1, 3) != 0 {
		t.Error("CRC-32 missed corruptions")
	}
}

// TestP7Shape: compressed chunks must beat XTP resizing at every
// sweep point, and plain chunks must beat AAL5 when PDUs are large.
func TestP7Shape(t *testing.T) {
	tb, err := P7()
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		comp := numCell(t, tb, i, 3)
		xtpOH := numCell(t, tb, i, 5)
		if comp >= xtpOH {
			t.Errorf("row %d: compressed chunks (%v) not better than XTP (%v)", i, comp, xtpOH)
		}
	}
}

// TestP8Shape: adaptive sizing must end with a smaller TPDU under
// loss and never with a larger retransmit count blow-up.
func TestP8Shape(t *testing.T) {
	tb, err := P8(11)
	if err != nil {
		t.Fatal(err)
	}
	// Rows alternate fixed/adaptive; last pair is 30% loss.
	n := len(tb.Rows)
	fixedFinal := numCell(t, tb, n-2, 5)
	adaptFinal := numCell(t, tb, n-1, 5)
	if adaptFinal >= fixedFinal {
		t.Fatalf("adaptive TPDU (%v) must shrink below fixed (%v) at 30%% loss", adaptFinal, fixedFinal)
	}
}

// TestP4Shape: IP locks up, chunks don't.
func TestP4Shape(t *testing.T) {
	tb, err := P4(13)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tb, 0, 1) != "true" {
		t.Fatal("IP reassembler must lock up")
	}
	if !strings.HasPrefix(cell(t, tb, 1, 1), "false") {
		t.Fatal("chunk path must not lock up")
	}
}

// TestP6Shape: compression reduces header bytes on both workloads.
func TestP6Shape(t *testing.T) {
	tb, err := P6(17)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		if numCell(t, tb, i, 4) < 2 {
			t.Errorf("row %d: reduction below 2x", i)
		}
	}
}

// TestP9Shape: every kernel must agree with the scalar reference
// (parity column "ok" in every row). The throughput columns are
// wall-clock and not asserted here beyond being positive; the ≥4×
// acceptance ratio is recorded by BenchmarkP9ChecksumKernels and
// EXPERIMENTS.md.
func TestP9Shape(t *testing.T) {
	tb, err := P9(23)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tb.Rows {
		if r.Cells[6] != "ok" {
			t.Errorf("row %d (%s): parity %s", i, r.Cells[0], r.Cells[6])
		}
		for col := 1; col <= 4; col++ {
			if numCell(t, tb, i, col) <= 0 {
				t.Errorf("row %d col %d: non-positive throughput", i, col)
			}
		}
	}
}

// TestO1Shape enforces the acceptance claim at the experiment level:
// the detected column equals the smuggled count on every row (WSC-2
// flags every smuggled delivery), at least one row actually smuggles,
// and the modeled OS stacks genuinely disagree somewhere.
func TestO1Shape(t *testing.T) {
	tb, err := O1(29)
	if err != nil {
		t.Fatal(err)
	}
	sawSmuggled := false
	for i, r := range tb.Rows {
		smug := strings.SplitN(r.Cells[4], "/", 2)[0]
		det := strings.SplitN(r.Cells[5], "/", 2)
		if len(det) != 2 || det[0] != det[1] || det[1] != smug {
			t.Errorf("row %d (%s): smuggled %s but detected %s", i, r.Cells[0], r.Cells[4], r.Cells[5])
		}
		if smug != "0" {
			sawSmuggled = true
		}
	}
	if !sawSmuggled {
		t.Fatal("no schedule smuggled anything; the matrix proves nothing")
	}
	sum, err := overlap.Run(29)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DetectionRate != 1.0 {
		t.Fatalf("detection rate %v, want 1.0", sum.DetectionRate)
	}
	if sum.DisagreeSchedules < 1 {
		t.Fatal("modeled OS stacks never disagree")
	}
}

// TestC1Shape runs the quick sweep and checks its structure: both
// engine modes at every connection count, sane positive rates, and an
// idle-memory column that is measured on every pipe row.
func TestC1Shape(t *testing.T) {
	tb, res, err := C1Run(37, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(res.Rows) {
		t.Fatalf("table rows %d != result rows %d", len(tb.Rows), len(res.Rows))
	}
	byMode := map[string]int{}
	for _, r := range res.Rows {
		byMode[r.Mode]++
		if r.EstabPerSec <= 0 || r.DgramsPerSec <= 0 {
			t.Errorf("%s/%s/%d: non-positive rates %v %v", r.Transport, r.Mode, r.Conns, r.EstabPerSec, r.DgramsPerSec)
		}
		if r.Transport == "pipe" && r.BytesPerConn <= 0 {
			t.Errorf("%s/%d: idle memory not measured", r.Mode, r.Conns)
		}
		if r.AckP99Micros < r.AckP50Micros {
			t.Errorf("%s/%s/%d: p99 %v below p50 %v", r.Transport, r.Mode, r.Conns, r.AckP99Micros, r.AckP50Micros)
		}
	}
	if byMode["sharded"] != 2 || byMode["shards=1"] != 2 {
		t.Fatalf("quick sweep modes: %v, want 2 counts × both engine modes", byMode)
	}
	if byMode["shards=1+perconn-tel"] != 1 {
		t.Fatalf("missing the pre-PR per-conn-telemetry memory row: %v", byMode)
	}
}

// TestP10Shape runs the quick receive sweep and checks its structure:
// scalar and batched rows for every datagram size, positive rates, and
// a speedup recorded on every batched row. The ≥1.5× acceptance ratio
// is wall-clock-sensitive, so it is recorded by the full
// `chunkbench -exp P10` run and EXPERIMENTS.md, not asserted here.
func TestP10Shape(t *testing.T) {
	tb, res, err := P10Run(41, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(res.Rows) {
		t.Fatalf("table rows %d != result rows %d", len(tb.Rows), len(res.Rows))
	}
	byPath := map[string]int{}
	sizes := map[int]bool{}
	for _, r := range res.Rows {
		byPath[r.Path]++
		sizes[r.DgramBytes] = true
		if r.DgramsPerSec <= 0 || r.GBPerSec <= 0 {
			t.Errorf("%s/%dB: non-positive rate %v dgrams/s %v GB/s", r.Path, r.DgramBytes, r.DgramsPerSec, r.GBPerSec)
		}
		if r.Path == "batched" && r.Speedup <= 0 {
			t.Errorf("batched/%dB: speedup not recorded", r.DgramBytes)
		}
	}
	if len(sizes) != 2 {
		t.Fatalf("datagram sizes %v, want both the MTU-sized and small shapes", sizes)
	}
	if byPath["scalar"] != byPath["batched"] || byPath["scalar"] != len(sizes) {
		t.Fatalf("paths %v, want scalar and batched at every size", byPath)
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"F1", "F2", "F3", "F4", "F5", "F6", "F7",
		"T1", "B1", "P1", "P2", "P3", "P4", "P6", "P7", "O1", "NET"} {
		gen := ByID(id, 1)
		if gen == nil {
			t.Fatalf("ByID(%s) = nil", id)
		}
		if _, err := gen(); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if ByID("nope", 1) != nil {
		t.Fatal("unknown id must return nil")
	}
}

func TestF4Verifies(t *testing.T) {
	tb, err := F4(19)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		parts := strings.Split(r.Cells[4], "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Errorf("strategy %s: verification %s", r.Cells[0], r.Cells[4])
		}
	}
}

func TestFprint(t *testing.T) {
	tb, err := F5()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"=== F5", "16,384"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fprint output missing %q", want)
		}
	}
}
