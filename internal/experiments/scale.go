package experiments

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"chunks/internal/core"
	"chunks/internal/telemetry"
	"chunks/internal/transport"
)

// C1 — the concurrent-connection scale sweep over the sharded engine
// (internal/shard). Per-chunk self-description means the receive side
// keeps no shared reassembly state across connections, so shards are
// share-nothing: the sweep measures what that buys (and what Shards=1
// costs) as live connections grow from 1k to 100k.
//
// Two ingestion paths are driven:
//
//   - pipe: datagrams are injected in-process (Server.Inject +
//     Config.ControlOut), so the numbers isolate the engine — demux
//     hash, shard lock, receiver, timer wheel — from socket I/O.
//     ACK latency here is the synchronous span from datagram ingestion
//     to ACK emission.
//   - udp: real loopback sockets, establishment + steady-state rates
//     measured at the server, ACK latency as request→ACK round trips
//     on a probe connection.
//
// Every workload byte is seeded; the timing columns are the sanctioned
// wall-clock measurement of the experiment tables.

// A ScaleRow is one measured cell of the C1 sweep.
type ScaleRow struct {
	Transport    string  `json:"transport"` // "pipe" | "udp"
	Mode         string  `json:"mode"`      // "sharded" | "shards=1" | "shards=1+perconn-tel"
	Shards       int     `json:"shards"`
	Conns        int     `json:"conns"`
	EstabPerSec  float64 `json:"estab_per_sec"`
	DgramsPerSec float64 `json:"dgrams_per_sec"`
	AckP50Micros float64 `json:"ack_p50_us"`
	AckP99Micros float64 `json:"ack_p99_us"`
	BytesPerConn float64 `json:"bytes_per_idle_conn,omitempty"` // 0 = not measured on this row
}

// ScaleResult is the BENCH_scale.json trajectory: the full C1 sweep
// plus the run's shape.
type ScaleResult struct {
	Seed       int64      `json:"seed"`
	Quick      bool       `json:"quick"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Rows       []ScaleRow `json:"rows"`
}

type scaleMode struct {
	name    string
	shards  int
	perConn bool
}

// scaleWorkload is the pre-built seeded traffic for one connection
// count: per-connection establishment datagrams and a flat steady-state
// injection schedule over a hot subset.
type scaleWorkload struct {
	conns  int
	estab  []scaleInjection // one or two datagrams per connection
	steady []scaleInjection // round-robin over the hot subset
}

type scaleInjection struct {
	d    []byte
	peer *net.UDPAddr
}

const (
	scaleInjectors  = 8   // concurrent injector goroutines
	scaleHotConns   = 512 // steady-state subset
	scaleTPDUBytes  = 64  // one TPDU per write: TPDUElems=16 × ElemSize=4
	scaleProbeRTTs  = 128 // udp ACK round trips
	scaleUDPSockets = 32
)

func scalePeer(i int) *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 30000 + i%20000}
}

// buildScaleWorkload generates the seeded datagrams for one count:
// every connection gets a complete one-TPDU transfer (it verifies,
// ACKs, then goes quiescent — an idle connection holds no pending
// timer work), and the first scaleHotConns connections get steadyPer
// further TPDUs for the steady-state phase.
func buildScaleWorkload(seed int64, conns, steadyTotal int) (*scaleWorkload, error) {
	w := &scaleWorkload{conns: conns}
	hot := conns
	if hot > scaleHotConns {
		hot = scaleHotConns
	}
	steadyPer := (steadyTotal + hot - 1) / hot
	perConn := make([][][]byte, hot)
	for i := 0; i < conns; i++ {
		var out [][]byte
		s := transport.NewSender(transport.SenderConfig{
			CID: uint32(i + 1), TPDUElems: 16,
		}, func(d []byte) { out = append(out, append([]byte(nil), d...)) })
		if err := s.Write(seededBytes(seed+int64(i), scaleTPDUBytes)); err != nil {
			return nil, err
		}
		if err := s.Flush(); err != nil {
			return nil, err
		}
		peer := scalePeer(i)
		for _, d := range out {
			w.estab = append(w.estab, scaleInjection{d, peer})
		}
		if i < hot {
			mark := len(out)
			for k := 0; k < steadyPer; k++ {
				if err := s.Write(seededBytes(seed+int64(i)+int64(k)*7919, scaleTPDUBytes)); err != nil {
					return nil, err
				}
			}
			if err := s.Flush(); err != nil {
				return nil, err
			}
			perConn[i] = out[mark:]
		}
	}
	// Interleave the hot connections round-robin so concurrent
	// injectors spread over shards the way independent peers would.
	for k := 0; ; k++ {
		progressed := false
		for i := 0; i < hot; i++ {
			if k < len(perConn[i]) {
				w.steady = append(w.steady, scaleInjection{perConn[i][k], scalePeer(i)})
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return w, nil
}

func seededBytes(seed int64, n int) []byte {
	// Cheap seeded filler (xorshift) — the payload content is
	// irrelevant to the measurement but must be deterministic.
	b := make([]byte, n)
	x := uint64(seed)*2654435761 + 1
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}

// injectAll drives the schedule through srv.Inject from
// scaleInjectors goroutines (stride partition) and returns the
// wall-clock span and, optionally, every per-injection latency.
func injectAll(srv *core.Server, sched []scaleInjection, sample bool) (time.Duration, []time.Duration) {
	lat := make([][]time.Duration, scaleInjectors)
	var wg sync.WaitGroup
	start := time.Now() //lint:allow detrand measured timing column of the experiment table
	for g := 0; g < scaleInjectors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(sched); i += scaleInjectors {
				if sample {
					t0 := time.Now() //lint:allow detrand measured timing column of the experiment table
					srv.Inject(sched[i].d, sched[i].peer)
					lat[g] = append(lat[g], time.Since(t0)) //lint:allow detrand measured timing column of the experiment table
				} else {
					srv.Inject(sched[i].d, sched[i].peer)
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start) //lint:allow detrand measured timing column of the experiment table
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	return elapsed, all
}

func durPercentile(ds []time.Duration, p float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(p * float64(len(ds)-1))
	return float64(ds[idx]) / float64(time.Microsecond)
}

func heapInUse() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc)
}

// runScalePipe measures one (mode × count) cell on the in-process
// ingestion path.
func runScalePipe(w *scaleWorkload, m scaleMode) (ScaleRow, error) {
	row := ScaleRow{Transport: "pipe", Mode: m.name, Shards: m.shards, Conns: w.conns}
	baseline := heapInUse()
	srv, err := core.Serve("127.0.0.1:0", core.Config{
		Shards:           m.shards,
		PerConnTelemetry: m.perConn,
		Telemetry:        telemetry.New(0),
		IdleTimeout:      10 * time.Minute, // idle timers armed, never due in-run
		ControlOut:       func([]byte, *net.UDPAddr) {},
	})
	if err != nil {
		return row, err
	}
	defer srv.Shutdown()

	elapsed, _ := injectAll(srv, w.estab, false)
	if got := srv.ConnCount(); got != w.conns {
		return row, fmt.Errorf("C1 pipe: established %d conns, want %d", got, w.conns)
	}
	row.EstabPerSec = float64(w.conns) / elapsed.Seconds()
	row.BytesPerConn = (heapInUse() - baseline) / float64(w.conns)

	elapsed, lat := injectAll(srv, w.steady, true)
	row.DgramsPerSec = float64(len(w.steady)) / elapsed.Seconds()
	row.AckP50Micros = durPercentile(lat, 0.50)
	row.AckP99Micros = durPercentile(lat, 0.99)
	return row, nil
}

// runScaleUDP measures one (mode × count) cell over loopback UDP.
func runScaleUDP(w *scaleWorkload, m scaleMode) (ScaleRow, error) {
	row := ScaleRow{Transport: "udp", Mode: m.name, Shards: m.shards, Conns: w.conns}
	reg := telemetry.New(0)
	srv, err := core.Serve("127.0.0.1:0", core.Config{
		Shards:      m.shards,
		Telemetry:   reg,
		Readers:     4,
		IdleTimeout: 10 * time.Minute,
	})
	if err != nil {
		return row, err
	}
	defer srv.Shutdown()

	socks := make([]*net.UDPConn, scaleUDPSockets)
	raddr, err := net.ResolveUDPAddr("udp", srv.Addr().String())
	if err != nil {
		return row, err
	}
	for i := range socks {
		s, err := net.DialUDP("udp", nil, raddr)
		if err != nil {
			return row, err
		}
		_ = s.SetWriteBuffer(4 << 20)
		defer s.Close()
		socks[i] = s
	}
	send := func(sched []scaleInjection) time.Duration {
		var wg sync.WaitGroup
		start := time.Now() //lint:allow detrand measured timing column of the experiment table
		for g := 0; g < scaleInjectors; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(sched); i += scaleInjectors {
					// A connection's datagrams always leave the same
					// socket: (C.ID, source) must stay stable.
					_, _ = socks[sched[i].peer.Port%scaleUDPSockets].Write(sched[i].d)
				}
			}(g)
		}
		wg.Wait()
		return time.Since(start) //lint:allow detrand measured timing column of the experiment table
	}

	// Establishment: blast, then resend until every connection exists
	// (loopback can still drop under burst; establishment datagrams are
	// idempotent re-injections for live connections).
	start := time.Now() //lint:allow detrand measured timing column of the experiment table
	deadline := start.Add(30 * time.Second)
	send(w.estab)
	for srv.ConnCount() < w.conns {
		if time.Now().After(deadline) { //lint:allow detrand measured timing column of the experiment table
			return row, fmt.Errorf("C1 udp: only %d/%d conns established", srv.ConnCount(), w.conns)
		}
		time.Sleep(20 * time.Millisecond)
		if srv.ConnCount() < w.conns {
			send(w.estab)
		}
	}
	row.EstabPerSec = float64(w.conns) / time.Since(start).Seconds() //lint:allow detrand measured timing column of the experiment table

	// Steady state: rate at which the server ingests datagrams, counted
	// at the server (losses on the blast path don't inflate the rate).
	before := reg.Snapshot().Scopes["server"].Counters["datagrams_in"]
	elapsed := send(w.steady)
	for settle := 0; settle < 50; settle++ {
		a := reg.Snapshot().Scopes["server"].Counters["datagrams_in"]
		time.Sleep(10 * time.Millisecond)
		if reg.Snapshot().Scopes["server"].Counters["datagrams_in"] == a {
			break
		}
		elapsed += 10 * time.Millisecond
	}
	row.DgramsPerSec = float64(reg.Snapshot().Scopes["server"].Counters["datagrams_in"]-before) / elapsed.Seconds()

	// ACK latency: sequential request→ACK round trips on a fresh probe
	// connection.
	probe, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return row, err
	}
	defer probe.Close()
	var pd [][]byte
	ps := transport.NewSender(transport.SenderConfig{CID: uint32(w.conns + 7), TPDUElems: 16},
		func(d []byte) { pd = append(pd, append([]byte(nil), d...)) })
	var rtts []time.Duration
	buf := make([]byte, 2048)
	for i := 0; i < scaleProbeRTTs; i++ {
		pd = pd[:0]
		if err := ps.Write(seededBytes(int64(i), scaleTPDUBytes)); err != nil {
			return row, err
		}
		if err := ps.Flush(); err != nil {
			return row, err
		}
		t0 := time.Now() //lint:allow detrand measured timing column of the experiment table
		for _, d := range pd {
			if _, err := probe.Write(d); err != nil {
				return row, err
			}
		}
		_ = probe.SetReadDeadline(time.Now().Add(time.Second)) //lint:allow detrand measured timing column of the experiment table
		if _, err := probe.Read(buf); err != nil {
			continue // lost probe: skip the sample
		}
		rtts = append(rtts, time.Since(t0)) //lint:allow detrand measured timing column of the experiment table
	}
	row.AckP50Micros = durPercentile(rtts, 0.50)
	row.AckP99Micros = durPercentile(rtts, 0.99)
	return row, nil
}

// C1Run executes the sweep and returns both the table and the raw
// trajectory (cmd/chunkbench writes the latter to BENCH_scale.json).
func C1Run(seed int64, quick bool) (*Table, *ScaleResult, error) {
	t := &Table{
		ID:    "C1",
		Title: "concurrent-connection scale: sharded engine vs Shards=1 (conns/sec, steady dgrams/sec, ACK latency, idle memory)",
		Header: []string{"transport", "mode", "conns", "estab/s", "steady dgram/s",
			"ack p50 (µs)", "ack p99 (µs)", "B/idle conn"},
	}
	res := &ScaleResult{Seed: seed, Quick: quick, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	counts := []int{1000, 10000, 50000, 100000}
	steadyTotal := 50000
	udpCounts := []int{1000, 10000}
	if quick {
		counts = []int{200, 1000}
		steadyTotal = 5000
		udpCounts = nil
	}
	modes := []scaleMode{
		{"sharded", 8, false},
		{"shards=1", 1, false},
	}

	memCmpCount := counts[len(counts)/2] // mid-sweep count for the telemetry-mode memory row
	for _, n := range counts {
		w, err := buildScaleWorkload(seed, n, steadyTotal)
		if err != nil {
			return nil, nil, err
		}
		for _, m := range modes {
			row, err := runScalePipe(w, m)
			if err != nil {
				return nil, nil, err
			}
			res.Rows = append(res.Rows, row)
		}
		if n == memCmpCount {
			// The pre-PR configuration: one telemetry scope per
			// connection. Only the idle-memory column is of interest.
			row, err := runScalePipe(w, scaleMode{"shards=1+perconn-tel", 1, true})
			if err != nil {
				return nil, nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	for _, n := range udpCounts {
		w, err := buildScaleWorkload(seed, n, steadyTotal)
		if err != nil {
			return nil, nil, err
		}
		for _, m := range modes {
			row, err := runScaleUDP(w, m)
			if err != nil {
				return nil, nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}

	for _, r := range res.Rows {
		mem := "-"
		if r.BytesPerConn > 0 {
			mem = fmt.Sprintf("%.0f", r.BytesPerConn)
		}
		t.row(r.Transport, r.Mode, fmt.Sprintf("%d", r.Conns),
			fmt.Sprintf("%.0f", r.EstabPerSec), fmt.Sprintf("%.0f", r.DgramsPerSec),
			fmt.Sprintf("%.1f", r.AckP50Micros), fmt.Sprintf("%.1f", r.AckP99Micros), mem)
	}
	t.note("share-nothing shards: chunk labels carry connection identity, so a datagram is processed to completion under one shard lock — no cross-connection state exists to share (GOMAXPROCS=%d here; shard wins grow with cores)", runtime.GOMAXPROCS(0))
	t.note("pipe = in-process ingestion (Server.Inject), isolating demux+shard+receiver+wheel from socket I/O; ACK latency there is the synchronous ingestion→ACK span")
	t.note("B/idle conn = heap delta per established-then-quiescent connection; shards=1+perconn-tel is the pre-PR default (one telemetry scope per connection)")
	if quick {
		t.note("quick mode: reduced counts, pipe path only — run `chunkbench -exp C1` for the full 1k→100k sweep and BENCH_scale.json")
	}
	return t, res, nil
}

// C1 is the table-only wrapper used by All/ByID.
func C1(seed int64, quick bool) (*Table, error) {
	t, _, err := C1Run(seed, quick)
	return t, err
}
