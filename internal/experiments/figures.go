package experiments

import (
	"fmt"

	"chunks/internal/chunk"
	"chunks/internal/compress"
	"chunks/internal/errdet"
	"chunks/internal/protomodel"
	"chunks/internal/wsc"
)

// F1 — Figure 1: one data stream under two independent framings.
func F1() (*Table, error) {
	t := &Table{
		ID:     "F1",
		Title:  "Figure 1: dividing a data stream into multiple PDUs (type 1: A|B|C; type 2: W)",
		Header: []string{"chunk", "T (type-1 PDU)", "X (type-2 PDU)", "elements"},
	}
	const pduW = 100
	var elems []chunk.Element
	csn := uint64(0)
	for _, seg := range []struct {
		id  uint32
		len int
	}{{1, 4}, {2, 5}, {3, 3}} {
		for i := 0; i < seg.len; i++ {
			elems = append(elems, chunk.Element{
				Type: chunk.TypeData, Data: []byte{byte(csn)},
				C: chunk.Tuple{ID: 9, SN: csn},
				T: chunk.Tuple{ID: seg.id, SN: uint64(i), ST: i == seg.len-1},
				X: chunk.Tuple{ID: pduW, SN: csn},
			})
			csn++
		}
	}
	elems[len(elems)-1].X.ST = true
	out, err := chunk.Form(1, elems)
	if err != nil {
		return nil, err
	}
	for i := range out {
		c := &out[i]
		t.row(fmt.Sprintf("%d", i), c.T.String(), c.X.String(), fmt.Sprintf("%d", c.Len))
	}
	t.note("a single element belongs to both a type-1 PDU and PDU W; each framing has its own (ID, SN, ST) tuple")
	return t, nil
}

// F2 — Figure 2: formation of the TPDU-Q data chunk.
func F2() (*Table, error) {
	t := &Table{
		ID:     "F2",
		Title:  "Figure 2: formation of a TPDU data chunk (golden values from the paper)",
		Header: []string{"field", "formed chunk", "paper"},
	}
	elems := figure2Elements()
	out, err := chunk.Form(1, elems)
	if err != nil {
		return nil, err
	}
	if len(out) != 3 {
		return nil, fmt.Errorf("F2: formed %d chunks, want 3", len(out))
	}
	q := out[1]
	t.row("TYPE", q.Type.String(), "D")
	t.row("SIZE", fmt.Sprintf("%d", q.Size), "1")
	t.row("LEN", fmt.Sprintf("%d", q.Len), "7")
	t.row("C (ID,SN,ST)", q.C.String(), "(A,36,0)")
	t.row("T (ID,SN,ST)", q.T.String(), "(Q,0,1)")
	t.row("X (ID,SN,ST)", q.X.String(), "(C,24,0)")
	return t, nil
}

// figure2Elements mirrors the chunk-package golden test.
func figure2Elements() []chunk.Element {
	const (
		connA = 0xA
		tpduP = 0xF0
		tpduQ = 0xF1
		tpduR = 0xF2
		xpduC = 0xC
	)
	rows := []struct {
		tID      uint32
		tSN, cSN uint64
		xSN      uint64
		tST      bool
	}{
		{tpduP, 6, 35, 23, true},
		{tpduQ, 0, 36, 24, false}, {tpduQ, 1, 37, 25, false}, {tpduQ, 2, 38, 26, false},
		{tpduQ, 3, 39, 27, false}, {tpduQ, 4, 40, 28, false}, {tpduQ, 5, 41, 29, false},
		{tpduQ, 6, 42, 30, true},
		{tpduR, 0, 43, 31, false},
	}
	elems := make([]chunk.Element, len(rows))
	for i, r := range rows {
		elems[i] = chunk.Element{
			Type: chunk.TypeData, Data: []byte{byte(i)},
			C: chunk.Tuple{ID: connA, SN: r.cSN},
			T: chunk.Tuple{ID: r.tID, SN: r.tSN, ST: r.tST},
			X: chunk.Tuple{ID: xpduC, SN: r.xSN},
		}
	}
	return elems
}

// F3 — Figure 3: splitting the Figure 2 chunk and packing packets.
func F3() (*Table, error) {
	t := &Table{
		ID:     "F3",
		Title:  "Figure 3: TPDU chunks and their mapping onto packets",
		Header: []string{"item", "C.SN", "T.SN", "X.SN", "ST (C,T,X)", "LEN"},
	}
	data := chunk.Chunk{
		Type: chunk.TypeData, Size: 1, Len: 7,
		C:       chunk.Tuple{ID: 0xA, SN: 36},
		T:       chunk.Tuple{ID: 0xF1, SN: 0, ST: true},
		X:       chunk.Tuple{ID: 0xC, SN: 24},
		Payload: []byte{1, 2, 3, 4, 5, 6, 7},
	}
	first, second, err := data.Split(4)
	if err != nil {
		return nil, err
	}
	st := func(c *chunk.Chunk) string {
		b := func(v bool) byte {
			if v {
				return '1'
			}
			return '0'
		}
		return fmt.Sprintf("%c%c%c", b(c.C.ST), b(c.T.ST), b(c.X.ST))
	}
	t.row("original", "36", "0", "24", st(&data), "7")
	t.row("split 1 (packet 1)", fmt.Sprintf("%d", first.C.SN), fmt.Sprintf("%d", first.T.SN),
		fmt.Sprintf("%d", first.X.SN), st(&first), fmt.Sprintf("%d", first.Len))
	t.row("split 2 (packet 2, + ED chunk)", fmt.Sprintf("%d", second.C.SN), fmt.Sprintf("%d", second.T.SN),
		fmt.Sprintf("%d", second.X.SN), st(&second), fmt.Sprintf("%d", second.Len))
	t.note("paper values: split chunks carry SN 36/0/24 ST 000 and SN 40/4/28 ST 010; the ED chunk shares packet 2")
	return t, nil
}

// F5 — Figure 5: the TPDU invariant layout.
func F5() (*Table, error) {
	t := &Table{
		ID:     "F5",
		Title:  "Figure 5: TPDU invariant positions in the WSC-2 code space",
		Header: []string{"component", "position(s)", "paper"},
	}
	l := errdet.DefaultLayout()
	t.row("TPDU data", fmt.Sprintf("0 .. %d", l.DataSymbols-1), "0 .. 16,383")
	t.row("T.ID", fmt.Sprintf("%d", l.TIDPos()), "16,384")
	t.row("C.ID", fmt.Sprintf("%d", l.CIDPos()), "16,385")
	t.row("C.ST", fmt.Sprintf("%d", l.CSTPos()), "16,386")
	t.row("(X.ID, X.ST) pairs", fmt.Sprintf("2*T.SN + %d", l.DataSymbols+3), "2*T.SN + 16,387")
	t.row("code space bound", fmt.Sprintf("%d", wsc.MaxPosition), "2^29 - 2")
	return t, nil
}

// F6 — Figure 6: which boundary triggers each X.ID encoding.
func F6() (*Table, error) {
	t := &Table{
		ID:     "F6",
		Title:  "Figure 6: encoding of the X.ID and X.ST fields (TPDU spanning external PDUs A, B, C)",
		Header: []string{"external PDU", "trigger", "trigger element T.SN", "pair position"},
	}
	l := errdet.DefaultLayout()
	// A ends at T.SN 2 (X.ST), B at 5 (X.ST), C continues (T.ST at 8).
	rows := []struct {
		name    string
		trigger string
		tsn     uint64
	}{
		{"A", "X.ST", 2},
		{"B", "X.ST", 5},
		{"C (begins, does not end)", "T.ST", 8},
	}
	for _, r := range rows {
		t.row(r.name, r.trigger, fmt.Sprintf("%d", r.tsn), fmt.Sprintf("%d", l.XPairPos(r.tsn)))
	}
	t.note("each X.ID appears exactly once in the code space; the X.ST value is encoded beside it to catch X.ST corruption when X.ST and T.ST coincide")
	return t, nil
}

// F7 — Figure 7: deriving the implicit T.ID.
func F7() (*Table, error) {
	t := &Table{
		ID:     "F7",
		Title:  "Figure 7: implicit T.ID = C.SN - T.SN",
		Header: []string{"C.SN", "T.SN", "T.ST", "implicit T.ID"},
	}
	csn := []uint64{35, 36, 37, 38, 39, 40, 41, 42}
	tsn := []uint64{5, 0, 1, 2, 3, 4, 5, 0}
	tst := []bool{true, false, false, false, false, false, true, false}
	for i := range csn {
		t.row(fmt.Sprintf("%d", csn[i]), fmt.Sprintf("%d", tsn[i]),
			fmt.Sprintf("%v", tst[i]),
			fmt.Sprintf("%d", compress.DeriveImplicitTID(csn[i], tsn[i])))
	}
	t.note("the difference is constant within each TPDU (30, then 36, then 42), so the explicit T.ID field can be elided")
	return t, nil
}

// B1 — Appendix B: comparison of chunks with other protocols, with
// measured disordered-delivery probes for every system this
// repository implements.
func B1(seed int64) (*Table, error) {
	t := &Table{
		ID:     "B1",
		Title:  "Appendix B: framing comparison (probes measured where a model exists)",
		Header: []string{"protocol", "disordered delivery?", "explicit framing", "notes"},
	}
	for _, r := range protomodel.Compare(seed) {
		t.row(r.Protocol, r.Disordered, r.Framing, r.Notes)
	}
	t.note("chunks 'provide the best of both worlds': header-field framing (no data-stream flag parsing) AND multiple frames per packet")
	return t, nil
}

// All runs every experiment in index order.
func All(seed int64) ([]*Table, error) {
	type gen func() (*Table, error)
	seeded := func(f func(int64) (*Table, error)) gen {
		return func() (*Table, error) { return f(seed) }
	}
	gens := []gen{
		F1, F2, F3, seeded(F4), F5, F6, F7,
		seeded(T1), seeded(B1),
		seeded(P1), seeded(P2), seeded(P3), seeded(P4),
		func() (*Table, error) { return P5(seed, 2000) },
		seeded(P6), P7, seeded(P8), seeded(P9),
		// The index runs P10 in quick mode; `chunkbench -exp P10` runs
		// the full sweep and writes BENCH_recv.json.
		func() (*Table, error) { return P10(seed, true) },
		seeded(O1),
		seeded(Disordering),
		// The index runs C1 in quick mode (reduced counts, pipe path
		// only); `chunkbench -exp C1` runs the full 1k→100k sweep.
		func() (*Table, error) { return C1(seed, true) },
	}
	var out []*Table
	for _, g := range gens {
		tb, err := g()
		if err != nil {
			return nil, err
		}
		out = append(out, tb)
	}
	return out, nil
}

// ByID returns the generator for one experiment id ("F1".."P10",
// "T1", "O1", "NET", "C1"), or nil.
func ByID(id string, seed int64) func() (*Table, error) {
	switch id {
	case "F1":
		return F1
	case "F2":
		return F2
	case "F3":
		return F3
	case "F4":
		return func() (*Table, error) { return F4(seed) }
	case "F5":
		return F5
	case "F6":
		return F6
	case "F7":
		return F7
	case "T1":
		return func() (*Table, error) { return T1(seed) }
	case "B1":
		return func() (*Table, error) { return B1(seed) }
	case "P1":
		return func() (*Table, error) { return P1(seed) }
	case "P2":
		return func() (*Table, error) { return P2(seed) }
	case "P3":
		return func() (*Table, error) { return P3(seed) }
	case "P4":
		return func() (*Table, error) { return P4(seed) }
	case "P5":
		return func() (*Table, error) { return P5(seed, 2000) }
	case "P6":
		return func() (*Table, error) { return P6(seed) }
	case "P7":
		return P7
	case "P8":
		return func() (*Table, error) { return P8(seed) }
	case "P9":
		return func() (*Table, error) { return P9(seed) }
	case "P10":
		// Quick variant; cmd/chunkbench drives the full sweep through
		// P10Run directly (and writes BENCH_recv.json).
		return func() (*Table, error) { return P10(seed, true) }
	case "O1":
		return func() (*Table, error) { return O1(seed) }
	case "NET":
		return func() (*Table, error) { return Disordering(seed) }
	case "C1":
		// Quick variant; cmd/chunkbench drives the full sweep through
		// C1Run directly (and writes BENCH_scale.json).
		return func() (*Table, error) { return C1(seed, true) }
	}
	return nil
}
