// Package experiments implements the reproduction harness: one
// function per experiment in DESIGN.md's index (F1–F7 figure
// demonstrations, the Table 1 matrix, and the P1–P9 performance
// claims). cmd/chunkbench prints the rows; the module-root benchmarks
// time the same code under testing.B.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"chunks/internal/aal"
	"chunks/internal/chunk"
	"chunks/internal/compress"
	"chunks/internal/errdet"
	"chunks/internal/faults"
	"chunks/internal/gf"
	"chunks/internal/ilp"
	"chunks/internal/ipfrag"
	"chunks/internal/netsim"
	"chunks/internal/overlap"
	"chunks/internal/packet"
	"chunks/internal/telemetry"
	"chunks/internal/trace"
	"chunks/internal/transport"
	"chunks/internal/vr"
	"chunks/internal/wsc"
	"chunks/internal/xtp"
)

// A Row is one table line of an experiment's output.
type Row struct {
	Cells []string
}

// A Table is a titled experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   []Row
	Notes  []string
}

func (t *Table) row(cells ...string) { t.Rows = append(t.Rows, Row{Cells: cells}) }
func (t *Table) note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table in the chunkbench text format.
func (t *Table) Fprint(out io.Writer) {
	fmt.Fprintf(out, "\n=== %s — %s ===\n", t.ID, t.Title)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	fmt.Fprintln(w, strings.Repeat("-", 8))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r.Cells, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(out, "  note: %s\n", n)
	}
}

// P1 — immediate (ILP) vs buffered processing: bus touches per byte
// and waiting latency (Section 1's motivation).
func P1(seed int64) (*Table, error) {
	t := &Table{
		ID:     "P1",
		Title:  "immediate vs buffered processing (bus touches per payload byte, chunk wait latency)",
		Header: []string{"path", "touches/byte", "mean wait (ticks)", "p99 wait", "peak buffer (B)"},
	}
	arrivals, payload, cipher, err := p1Arrivals(seed)
	if err != nil {
		return nil, err
	}
	imm := ilp.RunImmediate(arrivals, cipher, payload, 0)
	reo := ilp.RunReordering(arrivals, cipher, payload, 0)
	buf := ilp.RunBuffered(arrivals, cipher, payload, 0)
	add := func(name string, r *ilp.Result) {
		t.row(name,
			fmt.Sprintf("%.1f", r.Touches.PerByte(int64(payload))),
			fmt.Sprintf("%.1f", r.Latency.Mean()),
			fmt.Sprintf("%d", r.Latency.Percentile(99)),
			fmt.Sprintf("%d", r.Buffer.Peak()))
	}
	add("immediate (chunks+ILP)", imm)
	add("reorder-then-process", reo)
	add("buffered (reassemble-first)", buf)
	t.note("paper (Sections 1, 3.3): buffering moves data across the bus twice and adds latency; reordering 'is somewhere in-between' depending on network disorder")
	return t, nil
}

// p1Arrivals builds the shared P1 workload: encrypted, fragmented,
// disordered TPDUs.
func p1Arrivals(seed int64) ([]ilp.Arrival, int, ilp.Cipher, error) {
	const tpdus, elems, perFrag = 16, 256, 32
	cipher := ilp.Cipher{Key: 0x51}
	rng := rand.New(rand.NewSource(seed))
	stream := make([]byte, tpdus*elems*4)
	rng.Read(stream)
	var arrivals []ilp.Arrival
	for i := 0; i < tpdus; i++ {
		csn := uint64(i * elems)
		enc := make([]byte, elems*4)
		cipher.XORKeyStreamAt(enc, stream[i*elems*4:(i+1)*elems*4], csn*4)
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: 4, Len: elems,
			C: chunk.Tuple{ID: 1, SN: csn}, T: chunk.Tuple{ID: uint32(i), ST: true},
			X: chunk.Tuple{ID: 1, SN: csn}, Payload: enc,
		}
		frags, err := c.SplitToFit(chunk.HeaderSize + perFrag*4)
		if err != nil {
			return nil, 0, cipher, err
		}
		for _, f := range frags {
			arrivals = append(arrivals, ilp.Arrival{C: f.Clone()})
		}
	}
	rng.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })
	for i := range arrivals {
		arrivals[i].Tick = int64(i)
	}
	return arrivals, len(stream), cipher, nil
}

// P2 — multi-stage fragmentation: chunks always reassemble in ONE
// MergeAll pass; IP buffers everything and reassembles per stage
// format (Section 3.1).
func P2(seed int64) (*Table, error) {
	t := &Table{
		ID:     "P2",
		Title:  "reassembly after N fragmentation stages (64 KiB PDU)",
		Header: []string{"stages", "chunk frags", "chunk merge (µs)", "chunk steps", "ip frags", "ip reassemble (µs)", "ip steps"},
	}
	rng := rand.New(rand.NewSource(seed))
	payload := make([]byte, 64*1024)
	rng.Read(payload)

	for stages := 1; stages <= 4; stages++ {
		mtus := []int{8192, 2048, 512, 296}[:stages]

		// Chunks: refragment through each stage.
		orig := chunk.Chunk{
			Type: chunk.TypeData, Size: 4, Len: uint32(len(payload) / 4),
			C: chunk.Tuple{ID: 1}, T: chunk.Tuple{ID: 2, ST: true}, X: chunk.Tuple{ID: 3},
			Payload: payload,
		}
		pieces := []chunk.Chunk{orig}
		for _, mtu := range mtus {
			var next []chunk.Chunk
			for i := range pieces {
				ps, err := pieces[i].SplitToFit(mtu)
				if err != nil {
					return nil, err
				}
				next = append(next, ps...)
			}
			pieces = next
		}
		rng.Shuffle(len(pieces), func(i, j int) { pieces[i], pieces[j] = pieces[j], pieces[i] })
		start := time.Now() //lint:allow detrand measured timing column of the experiment table
		merged := chunk.MergeAll(pieces)
		chunkNS := time.Since(start) //lint:allow detrand measured timing column of the experiment table
		if len(merged) != 1 || !merged[0].Equal(&orig) {
			return nil, fmt.Errorf("P2: chunk reassembly failed at %d stages", stages)
		}

		// IP: refragment through each stage, then reassemble.
		frags, err := ipfrag.Split(1, payload, mtus[0])
		if err != nil {
			return nil, err
		}
		for _, mtu := range mtus[1:] {
			var next []ipfrag.Fragment
			for _, f := range frags {
				refs, err := ipfrag.Refragment(f, mtu)
				if err != nil {
					return nil, err
				}
				next = append(next, refs...)
			}
			frags = next
		}
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		start = time.Now() //lint:allow detrand measured timing column of the experiment table
		r := ipfrag.NewReassembler(0)
		var out []byte
		for _, f := range frags {
			o, err := r.Add(f)
			if err != nil {
				return nil, err
			}
			if o != nil {
				out = o
			}
		}
		ipNS := time.Since(start) //lint:allow detrand measured timing column of the experiment table
		if out == nil {
			return nil, fmt.Errorf("P2: ip reassembly failed at %d stages", stages)
		}

		t.row(fmt.Sprintf("%d", stages),
			fmt.Sprintf("%d", len(pieces)), fmt.Sprintf("%.1f", float64(chunkNS.Microseconds())), "1",
			fmt.Sprintf("%d", len(frags)), fmt.Sprintf("%.1f", float64(ipNS.Microseconds())),
			"1 + in-order delivery")
	}
	t.note("paper (Section 3.1): chunks reassemble in one step regardless of stages; IP additionally buffers every fragment before ANY processing")
	return t, nil
}

// P3 — demultiplexing cost: chunks are processed identically whether
// or not fragmentation occurred; an IP receiver must branch on
// fragment-vs-whole and route through the reassembler.
func P3(seed int64) (*Table, error) {
	t := &Table{
		ID:     "P3",
		Title:  "receive-path dispatch over a mixed whole/fragmented arrival stream (4096 PDUs of 1 KiB, half fragmented)",
		Header: []string{"system", "dispatch+process time (ms)", "paths in receiver"},
	}
	rng := rand.New(rand.NewSource(seed))
	const pdus = 4096
	payload := make([]byte, 1024)
	rng.Read(payload)

	// Chunk stream: half the PDUs pre-fragmented.
	var chs []chunk.Chunk
	for i := 0; i < pdus; i++ {
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: 4, Len: 256,
			C: chunk.Tuple{ID: 1, SN: uint64(i * 256)}, T: chunk.Tuple{ID: uint32(i), ST: true},
			X:       chunk.Tuple{ID: 1, SN: uint64(i * 256)},
			Payload: payload,
		}
		if i%2 == 0 {
			ps, err := c.SplitToFit(chunk.HeaderSize + 512)
			if err != nil {
				return nil, err
			}
			chs = append(chs, ps...)
		} else {
			chs = append(chs, c)
		}
	}
	start := time.Now() //lint:allow detrand measured timing column of the experiment table
	var track vr.Tracker
	for i := range chs {
		key := vr.Key{Level: vr.LevelT, ID: chs[i].T.ID}
		if _, err := track.Add(key, chs[i].T.SN, uint64(chs[i].Len), chs[i].T.ST); err != nil {
			return nil, err
		}
		if track.Complete(key) {
			track.Retire(key)
		}
	}
	chunkMS := time.Since(start) //lint:allow detrand measured timing column of the experiment table

	// IP stream: same mixture as raw datagram payloads.
	var frags []ipfrag.Fragment
	for i := 0; i < pdus; i++ {
		if i%2 == 0 {
			fs, err := ipfrag.Split(uint32(i), payload, 512+ipfrag.HeaderSize)
			if err != nil {
				return nil, err
			}
			frags = append(frags, fs...)
		} else {
			frags = append(frags, ipfrag.Fragment{ID: uint32(i), Offset: 0, More: false, Data: payload})
		}
	}
	start = time.Now() //lint:allow detrand measured timing column of the experiment table
	r := ipfrag.NewReassembler(0)
	for _, f := range frags {
		// The demux branch: whole datagrams bypass the reassembler.
		if !f.More && f.Offset == 0 {
			continue // fast path: deliver directly
		}
		if _, err := r.Add(f); err != nil {
			return nil, err
		}
	}
	ipMS := time.Since(start) //lint:allow detrand measured timing column of the experiment table

	t.row("chunks", fmt.Sprintf("%.2f", float64(chunkMS.Microseconds())/1000), "1 (uniform)")
	t.row("ip fragmentation", fmt.Sprintf("%.2f", float64(ipMS.Microseconds())/1000), "2 (whole vs fragment)")
	t.note("paper (Section 3.2): 'Chunks are processed identically regardless of whether network fragmentation has occurred'")
	return t, nil
}

// P4 — reassembly buffer lock-up (Section 3.3): the IP reassembler
// deadlocks on a full buffer; the chunk receiver has no reassembly
// buffer to lock.
func P4(seed int64) (*Table, error) {
	t := &Table{
		ID:     "P4",
		Title:  "reassembly buffer lock-up (capacity 64 KiB, interleaved half-finished PDUs)",
		Header: []string{"system", "locked up?", "buffered payload (B)", "PDUs lost to eviction", "chunk data placed (B)"},
	}
	const capacity = 64 * 1024
	rng := rand.New(rand.NewSource(seed))
	payload := make([]byte, 2048)
	rng.Read(payload)

	// IP: first fragment of many datagrams, none completable.
	r := ipfrag.NewReassembler(capacity)
	id := uint32(0)
	for {
		f := ipfrag.Fragment{ID: id, Offset: 0, More: true, Data: payload}
		if _, err := r.Add(f); err == ipfrag.ErrBufferFull {
			break
		} else if err != nil {
			return nil, err
		}
		id++
	}
	locked := r.LockedUp()
	used := r.Used()
	evictions := 0
	for r.LockedUp() {
		if _, ok := r.Evict(); !ok {
			break
		}
		evictions++
	}

	// Chunks: the same half-PDUs are placed immediately; no buffer
	// exists to fill.
	placed := 0
	buf := make([]byte, int(id+1)*len(payload))
	placer := ilp.Placer{Buf: buf}
	var track vr.Tracker
	for i := uint32(0); i <= id; i++ {
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: 4, Len: uint32(len(payload) / 4),
			C:       chunk.Tuple{ID: 1, SN: uint64(i) * uint64(len(payload)/4)},
			T:       chunk.Tuple{ID: i},
			X:       chunk.Tuple{ID: 1},
			Payload: payload,
		}
		placer.Place(&c)
		placed += len(payload)
		if _, err := track.Add(vr.Key{Level: vr.LevelT, ID: i}, 0, uint64(c.Len), false); err != nil {
			return nil, err
		}
	}

	t.row("ip fragmentation", fmt.Sprintf("%v", locked), fmt.Sprintf("%d", used),
		fmt.Sprintf("%d", evictions), "-")
	t.row("chunks", "false (no reassembly buffer)", "0", "0", fmt.Sprintf("%d", placed))
	t.note("paper (Section 3.3): 'Chunks eliminate this problem because they can be processed and moved to their final destination as they arrive'")
	return t, nil
}

// P5 — error detection codes on disordered data: WSC-2 accumulates in
// any order; CRC-32 cannot; the Internet checksum can but is weaker
// (Section 4, footnote 11).
func P5(seed int64, trials int) (*Table, error) {
	t := &Table{
		ID:     "P5",
		Title:  fmt.Sprintf("error detection codes over disordered fragments (64 KiB block, %d corruption trials)", trials),
		Header: []string{"code", "order-independent?", "detects word swap?", "random corruptions missed", "throughput (MB/s)"},
	}
	rng := rand.New(rand.NewSource(seed))
	block := make([]byte, 64*1024)
	rng.Read(block)

	// Order independence: checksum fragments in shuffled order.
	fragSize := 4096
	type frag struct {
		off  int
		data []byte
	}
	var frs []frag
	for off := 0; off < len(block); off += fragSize {
		frs = append(frs, frag{off, block[off : off+fragSize]})
	}
	shuffled := append([]frag(nil), frs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	wholeWSC, err := wsc.EncodeBytes(block)
	if err != nil {
		return nil, err
	}
	var acc wsc.Accumulator
	for _, f := range shuffled {
		if err := acc.AddBytes(uint64(f.off/4), f.data); err != nil {
			return nil, err
		}
	}
	wscOrderOK := acc.Parity() == wholeWSC

	crcWhole := wsc.CRC32(block)
	crcShuffled := uint32(0)
	{
		var cat []byte
		for _, f := range shuffled {
			cat = append(cat, f.data...)
		}
		crcShuffled = wsc.CRC32(cat)
	}
	crcOrderOK := crcWhole == crcShuffled

	inetWhole := wsc.InternetChecksum(block)
	inetAcc := uint16(0)
	for _, f := range shuffled {
		inetAcc = wsc.InternetChecksumCombine(inetAcc, wsc.InternetChecksum(f.data))
	}
	inetOrderOK := inetAcc == inetWhole

	// Word-swap sensitivity.
	swapped := append([]byte(nil), block...)
	copy(swapped[0:2], block[2:4])
	copy(swapped[2:4], block[0:2])
	wscSwapped, _ := wsc.EncodeBytes(swapped)
	wscSwap := wscSwapped != wholeWSC
	inetSwap := wsc.InternetChecksum(swapped) != inetWhole
	crcSwap := wsc.CRC32(swapped) != crcWhole

	// Random corruption detection power.
	missWSC, missCRC, missInet := 0, 0, 0
	work := append([]byte(nil), block...)
	for i := 0; i < trials; i++ {
		// Flip 1-4 random bytes.
		n := 1 + rng.Intn(4)
		type mut struct {
			pos int
			old byte
		}
		var muts []mut
		for j := 0; j < n; j++ {
			p := rng.Intn(len(work))
			muts = append(muts, mut{p, work[p]})
			work[p] ^= byte(1 + rng.Intn(255))
		}
		if p, _ := wsc.EncodeBytes(work); p == wholeWSC {
			missWSC++
		}
		if wsc.CRC32(work) == crcWhole {
			missCRC++
		}
		if wsc.InternetChecksum(work) == inetWhole {
			missInet++
		}
		for k := len(muts) - 1; k >= 0; k-- {
			work[muts[k].pos] = muts[k].old
		}
	}

	mbps := func(f func()) string {
		const reps = 16
		start := time.Now() //lint:allow detrand measured timing column of the experiment table
		for i := 0; i < reps; i++ {
			f()
		}
		sec := time.Since(start).Seconds() //lint:allow detrand measured timing column of the experiment table
		return fmt.Sprintf("%.0f", float64(len(block)*reps)/1e6/sec)
	}
	wscRate := mbps(func() { _, _ = wsc.EncodeBytes(block) })
	crcRate := mbps(func() { _ = wsc.CRC32(block) })
	inetRate := mbps(func() { _ = wsc.InternetChecksum(block) })

	t.row("WSC-2", fmt.Sprintf("%v", wscOrderOK), fmt.Sprintf("%v", wscSwap), fmt.Sprintf("%d", missWSC), wscRate)
	t.row("CRC-32", fmt.Sprintf("%v", crcOrderOK), fmt.Sprintf("%v", crcSwap), fmt.Sprintf("%d", missCRC), crcRate)
	t.row("Internet checksum", fmt.Sprintf("%v", inetOrderOK), fmt.Sprintf("%v", inetSwap), fmt.Sprintf("%d", missInet), inetRate)
	t.note("paper (footnote 11): TCP checksum computes on disordered data but is weaker; 'A CRC cannot be computed on disordered data'; WSC-2 gives both")
	return t, nil
}

// P6 — Appendix A header compression on bulk and video workloads.
func P6(seed int64) (*Table, error) {
	t := &Table{
		ID:     "P6",
		Title:  "invertible header compression (Appendix A transformations)",
		Header: []string{"workload", "chunks", "fixed hdr bytes", "compressed hdr bytes", "reduction"},
	}
	run := func(name string, chs []chunk.Chunk, cid uint32) {
		ctx := compress.NewContext(cid, map[chunk.Type]uint16{chunk.TypeData: 4, chunk.TypeED: 8})
		fixed, comp := compress.Savings(*ctx, chs)
		payload := 0
		for i := range chs {
			payload += len(chs[i].Payload)
		}
		fh, ch := fixed-payload, comp-payload
		t.row(name, fmt.Sprintf("%d", len(chs)), fmt.Sprintf("%d", fh), fmt.Sprintf("%d", ch),
			fmt.Sprintf("%.1fx", float64(fh)/float64(ch)))
	}
	bulk, err := trace.Bulk(trace.BulkConfig{Seed: seed, Bytes: 256 * 1024, ElemSize: 4, TPDUElems: 256, CID: 0xA})
	if err != nil {
		return nil, err
	}
	run("bulk 256KiB", bulk.All(), 0xA)
	video, err := trace.Video(trace.VideoConfig{Seed: seed, Frames: 30, FrameElems: 900, ElemSize: 4, TPDUElems: 700, CID: 0xB})
	if err != nil {
		return nil, err
	}
	run("video 30 frames", video.All(), 0xB)
	t.note("paper (Appendix A): implicit T.ID, SIZE by signaling, SN suppression with per-PDU resync, X.ID delta coding — all invertible")
	return t, nil
}

// P7 — per-system wire overhead across a PDU-size/MTU sweep.
func P7() (*Table, error) {
	t := &Table{
		ID:     "P7",
		Title:  "wire overhead: header+padding bytes per 64 KiB of payload",
		Header: []string{"PDU size", "MTU", "chunks(combine)", "chunks(compressed)", "ip frag", "xtp resize", "aal5 cells"},
	}
	const total = 64 * 1024
	payload := make([]byte, total)
	for _, cfg := range []struct{ pdu, mtu int }{
		{16384, 1500}, {16384, 296}, {4096, 1500}, {4096, 296}, {65536, 9000},
	} {
		nPDU := total / cfg.pdu

		// Chunks: one chunk per PDU, packed with combining.
		var chs []chunk.Chunk
		for i := 0; i < nPDU; i++ {
			chs = append(chs, chunk.Chunk{
				Type: chunk.TypeData, Size: 4, Len: uint32(cfg.pdu / 4),
				C:       chunk.Tuple{ID: 1, SN: uint64(i * cfg.pdu / 4)},
				T:       chunk.Tuple{ID: uint32(i), ST: true},
				X:       chunk.Tuple{ID: 1, SN: uint64(i * cfg.pdu / 4)},
				Payload: payload[i*cfg.pdu : (i+1)*cfg.pdu],
			})
		}
		pk := packet.Packer{MTU: cfg.mtu}
		pkts, err := pk.Pack(chs)
		if err != nil {
			return nil, err
		}
		wire, _, _ := packet.Overhead(pkts)
		chunkOH := wire - total

		// Chunks with Appendix A compression: recount chunk headers
		// using the compressed codec (packet envelopes unchanged).
		ctx := compress.NewContext(1, map[chunk.Type]uint16{chunk.TypeData: 4})
		compOH := 0
		var cbuf []byte
		for i := range pkts {
			compOH += packet.HeaderSize
			for j := range pkts[i].Chunks {
				cbuf = ctx.Append(cbuf[:0], &pkts[i].Chunks[j])
				compOH += len(cbuf) - len(pkts[i].Chunks[j].Payload)
			}
		}

		// IP fragmentation.
		ipOH := 0
		for i := 0; i < nPDU; i++ {
			frags, err := ipfrag.Split(uint32(i), payload[:cfg.pdu], cfg.mtu)
			if err != nil {
				return nil, err
			}
			ipOH += len(frags) * ipfrag.HeaderSize
		}

		// XTP resizing.
		xtpOH := 0
		for i := 0; i < nPDU; i++ {
			small, err := xtp.Resize(xtp.PDU{Key: 1, Seq: uint64(i * cfg.pdu), EOM: true, Data: payload[:cfg.pdu]}, cfg.mtu)
			if err != nil {
				return nil, err
			}
			xtpOH += len(small) * xtp.HeaderSize
		}

		// AAL5 cells.
		aalOH := nPDU*aal.Overhead(cfg.pdu) - total

		t.row(fmt.Sprintf("%d", cfg.pdu), fmt.Sprintf("%d", cfg.mtu),
			fmt.Sprintf("%d", chunkOH), fmt.Sprintf("%d", compOH),
			fmt.Sprintf("%d", ipOH), fmt.Sprintf("%d", xtpOH), fmt.Sprintf("%d", aalOH))
	}
	t.note("simple fixed-field chunk headers are large (the paper admits this); Appendix A compression recovers the gap while keeping explicit labels")
	t.note("XTP repeats the FULL transport header per packet; AAL5 pays per-cell framing + padding; IP is lean but cannot process fragments on arrival")
	return t, nil
}

// P8 — fragment-loss response (Kent & Mogul discussion): fixed vs
// adaptive TPDU sizing across a loss sweep.
func P8(seed int64) (*Table, error) {
	t := &Table{
		ID:     "P8",
		Title:  "loss response: fixed vs adaptive TPDU sizing (64 KiB transfer, TPDU 512 elems, MTU 512)",
		Header: []string{"loss", "mode", "rounds", "retransmits", "data datagrams", "final TPDU elems"},
	}
	for _, loss := range []float64{0.0, 0.1, 0.3} {
		for _, adapt := range []bool{false, true} {
			p, err := transport.NewPump(
				transport.SenderConfig{CID: 1, MTU: 512, ElemSize: 4, TPDUElems: 512, MinTPDUElems: 16, Adapt: adapt},
				transport.ReceiverConfig{},
				transport.PumpConfig{Seed: seed, LossData: loss, MaxRounds: 2000})
			if err != nil {
				return nil, err
			}
			data := make([]byte, 64*1024)
			rand.New(rand.NewSource(seed)).Read(data)
			if err := p.S.Write(data); err != nil {
				return nil, err
			}
			if err := p.S.Close(); err != nil {
				return nil, err
			}
			res, err := p.Run()
			if err != nil {
				return nil, err
			}
			if !res.Drained {
				return nil, fmt.Errorf("P8: loss %.1f adapt=%v never drained", loss, adapt)
			}
			mode := "fixed"
			if adapt {
				mode = "adaptive"
			}
			t.row(fmt.Sprintf("%.0f%%", loss*100), mode,
				fmt.Sprintf("%d", res.Rounds), fmt.Sprintf("%d", p.S.Retransmits),
				fmt.Sprintf("%d", res.DataDatagrams), fmt.Sprintf("%d", p.S.Config().TPDUElems))
		}
	}
	t.note("paper (Section 3): 'a good transport protocol implementation should reduce its TPDU size to match the observed network error rate'")
	return t, nil
}

// P9 — checksum kernel throughput: the pinned scalar WSC-2 kernel
// against the portable shift-tree table kernel, the dispatched best
// kernel (CLMUL/AVX2 where the CPU has it), and a forced 4-way shard
// fan-out, across block sizes. Every cell is cross-checked for parity
// equality before timing — the fast kernels are only admissible
// because they are bit-identical to the scalar reference.
//
// The timing columns are the repo's one sanctioned use of wall-clock
// time; the parities and the workload itself are seeded.
func P9(seed int64) (*Table, error) {
	kernel := "table"
	if gf.HasCLMUL() {
		kernel = "clmul/avx2"
	}
	t := &Table{
		ID:     "P9",
		Title:  "WSC-2 checksum kernel throughput (MB/s)",
		Header: []string{"block", "scalar", "table", "best (" + kernel + ")", "sharded x4", "best/scalar", "parity"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, size := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		b := make([]byte, size)
		rng.Read(b)
		ref, err := wsc.EncodeBytesScalar(b)
		if err != nil {
			return nil, err
		}
		match := "ok"
		kernels := []struct {
			name string
			f    func([]byte) (wsc.Parity, error)
		}{
			{"scalar", wsc.EncodeBytesScalar},
			{"table", wsc.EncodeBytesTable},
			{"best", wsc.EncodeBytes},
			{"sharded", func(b []byte) (wsc.Parity, error) { return wsc.EncodeBytesParallel(b, 4) }},
		}
		mbps := make([]float64, len(kernels))
		for i, k := range kernels {
			par, err := k.f(b)
			if err != nil {
				return nil, fmt.Errorf("P9: %s at %d B: %w", k.name, size, err)
			}
			if par != ref {
				match = "MISMATCH vs scalar: " + k.name
			}
			mbps[i] = throughput(size, func() {
				if _, err := k.f(b); err != nil {
					panic(err)
				}
			})
		}
		t.row(sizeLabel(size),
			fmt.Sprintf("%.0f", mbps[0]), fmt.Sprintf("%.0f", mbps[1]),
			fmt.Sprintf("%.0f", mbps[2]), fmt.Sprintf("%.0f", mbps[3]),
			fmt.Sprintf("%.1fx", mbps[2]/mbps[0]), match)
	}
	t.note("paper (Section 4): WSC-2 'can be computed incrementally as the chunks arrive'; the kernels keep the per-byte cost low enough that checksumming rides the single ILP data pass")
	t.note("scalar = pinned one-MulAlpha-per-symbol reference; table = portable shift-tree byte kernel; best = runtime dispatch (CLMUL/AVX2 folding when available); sharded = forced 4-goroutine Combine fan-out")
	return t, nil
}

// throughput measures f's sustained rate in MB/s by doubling the
// iteration count until the timed window is long enough to trust.
func throughput(bytes int, f func()) float64 {
	f() // warm caches and lazy tables
	const window = 20 * time.Millisecond
	for iters := 1; ; iters *= 2 {
		start := time.Now() //lint:allow detrand measured timing column of the experiment table
		for i := 0; i < iters; i++ {
			f()
		}
		if el := time.Since(start); el >= window || iters >= 1<<22 { //lint:allow detrand measured timing column of the experiment table
			return float64(bytes) * float64(iters) / el.Seconds() / 1e6
		}
	}
}

func sizeLabel(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%d MiB", n>>20)
	}
	return fmt.Sprintf("%d KiB", n>>10)
}

// T1 — the Table 1 corruption matrix.
func T1(seed int64) (*Table, error) {
	t := &Table{
		ID:     "T1",
		Title:  "Table 1: how corruption of each chunk field is detected",
		Header: []string{"field", "mode", "paper says", "measured", "detected"},
	}
	base, err := faults.Baseline(seed)
	if err != nil {
		return nil, err
	}
	t.row("(none)", "baseline", "ok", base.String(), "-")
	outcomes, err := faults.RunAll(seed)
	if err != nil {
		return nil, err
	}
	for _, o := range outcomes {
		t.row(o.Field, o.Mode.String(), o.Paper.String(), o.Got.String(), fmt.Sprintf("%v", o.Detected))
	}
	t.note("per-fragment identity corruption is caught by demux/agreement checks before the code compare; the paper's ED-code attribution assumes a systematic label error (the whole-label rows)")
	return t, nil
}

// F4 — Figure 4 gateway strategies.
func F4(seed int64) (*Table, error) {
	t := &Table{
		ID:     "F4",
		Title:  "Figure 4: moving chunks between packet sizes (256 KiB through MTU 1500 -> 296 -> 4352)",
		Header: []string{"gateway strategy", "packets out", "wire bytes", "chunks out", "TPDUs verified"},
	}
	w, err := trace.Bulk(trace.BulkConfig{Seed: seed, Bytes: 256 * 1024, ElemSize: 4, TPDUElems: 2048, CID: 5})
	if err != nil {
		return nil, err
	}
	src := packet.Packer{MTU: 1500}
	pkts, err := src.Pack(w.All())
	if err != nil {
		return nil, err
	}
	narrow, err := packet.Repack(pkts, 296, packet.Combine)
	if err != nil {
		return nil, err
	}
	for _, s := range []packet.Strategy{packet.OnePerPacket, packet.Combine, packet.Reassemble} {
		wide, err := packet.Repack(narrow, 4352, s)
		if err != nil {
			return nil, err
		}
		wire, _, _ := packet.Overhead(wide)
		recv, err := errdet.NewReceiver(errdet.DefaultLayout())
		if err != nil {
			return nil, err
		}
		nChunks := 0
		for i := range wide {
			for j := range wide[i].Chunks {
				nChunks++
				if err := recv.Ingest(&wide[i].Chunks[j]); err != nil {
					return nil, err
				}
			}
		}
		ok := 0
		for i := range w.Chunks {
			if recv.Verdict(w.Chunks[i].T.ID) == errdet.VerdictOK {
				ok++
			}
		}
		t.row(s.String(), fmt.Sprintf("%d", len(wide)), fmt.Sprintf("%d", wire),
			fmt.Sprintf("%d", nChunks), fmt.Sprintf("%d/%d", ok, len(w.Chunks)))
	}
	t.note("all three methods are transparent to the receiver; combining is 'almost as efficient as chunk reassembly'")
	return t, nil
}

// O1 — adversarial overlap: the differential reassembly matrix.
// Identical seeded overlap-smuggling schedules run through vr and
// ipfrag under each explicit policy and through byte-granularity
// models of the OS stacks the reassembly-gap papers catalogue; each
// delivery is checked against the sender's WSC-2 parity. This extends
// Table 1 into adversarial territory: the pinned claim is that the
// end-to-end check flags every smuggled delivery any policy admits.
func O1(seed int64) (*Table, error) {
	t := &Table{
		ID:    "O1",
		Title: "adversarial overlap: reassembly-policy disagreement × WSC-2 end-to-end detection",
		Header: []string{"schedule", "vr f/l/r", "ipfrag f/l/r",
			"os first/last/bsd/bsdR/linux", "smuggled", "detected"},
	}
	sum, err := overlap.Run(seed)
	if err != nil {
		return nil, err
	}
	code := func(c overlap.Cell) string {
		switch c.Outcome {
		case overlap.OutcomeGenuine:
			return "G"
		case overlap.OutcomeSmuggled:
			return "S"
		}
		return "R"
	}
	var names []string
	byName := make(map[string][]overlap.Cell)
	for _, c := range sum.Cells {
		if _, ok := byName[c.Schedule]; !ok {
			names = append(names, c.Schedule)
		}
		byName[c.Schedule] = append(byName[c.Schedule], c)
	}
	for _, name := range names {
		var vrCodes, ipCodes, osCodes []string
		smug, det := 0, 0
		for _, c := range byName[name] {
			switch {
			case strings.HasPrefix(c.System, "vr/"):
				vrCodes = append(vrCodes, code(c))
			case strings.HasPrefix(c.System, "ipfrag/"):
				ipCodes = append(ipCodes, code(c))
			default:
				osCodes = append(osCodes, code(c))
			}
			if c.Smuggled {
				smug++
			}
			if c.Detected {
				det++
			}
		}
		t.row(name, strings.Join(vrCodes, " "), strings.Join(ipCodes, " "),
			strings.Join(osCodes, " "),
			fmt.Sprintf("%d/%d", smug, len(byName[name])), fmt.Sprintf("%d/%d", det, smug))
	}
	t.note("G = delivered genuine, S = delivered smuggled (forged bytes won), R = rejected; f/l/r = first-wins/last-wins/reject-pdu")
	t.note("os-* are byte-granularity models of shipping stacks (reassembly-gap catalogues); reject-conn equals reject-pdu at this layer — the transport teardown is exercised in internal/chaos")
	t.note("detection rate %.2f: WSC-2 flags all %d smuggled deliveries and no genuine one (%d delivered, %d rejected); %d/%d schedules split the modeled stacks",
		sum.DetectionRate, sum.Smuggled, sum.Delivered, sum.Rejected,
		sum.DisagreeSchedules, sum.Schedules)
	return t, nil
}

// Disordering — quantifies the Section 1 disordering sources with the
// netsim substrate (supporting table for the simulator substitution),
// then folds in a telemetry view of the same hostile conditions: a
// seeded transport pump under loss + reorder, reported through the
// runtime registry. Both halves are deterministic in the seed.
func Disordering(seed int64) (*Table, error) {
	t := &Table{
		ID:     "NET",
		Title:  "netsim: disorder produced by the Section 1 mechanisms (1000 packets) + telemetry fold",
		Header: []string{"mechanism / metric", "value"},
	}
	mk := func(name string, cfg netsim.LinkConfig) {
		link := netsim.NewLink(cfg)
		pkts := make([][]byte, 1000)
		for i := range pkts {
			pkts[i] = []byte{byte(i)}
		}
		out := link.Transit(netsim.SendAll(pkts, 0, 1))
		t.row(name, fmt.Sprintf("%.1f%%", 100*netsim.Disorder(out)))
	}
	mk("in-order link", netsim.LinkConfig{Seed: seed, BaseDelay: 10})
	mk("8-path multipath skew", netsim.LinkConfig{Seed: seed, Paths: 8, BaseDelay: 100, SkewPerPath: 40})
	mk("route change (fast new route)", netsim.LinkConfig{Seed: seed, BaseDelay: 500, RouteChangeTick: 400, RouteChangeDelay: 20})
	mk("loss 10% + retransmit model", netsim.LinkConfig{Seed: seed, BaseDelay: 10, LossProb: 0.1, DupProb: 0.1, JitterMax: 30})

	// Telemetry fold: a 32 KiB transfer through a 10%-loss reordering
	// pump, instrumented end to end through one registry.
	reg := telemetry.New(0)
	p, err := transport.NewPump(
		transport.SenderConfig{CID: 1, MTU: 512, ElemSize: 4, TPDUElems: 256, Tel: reg.Sink("send")},
		transport.ReceiverConfig{Tel: reg.Sink("recv")},
		transport.PumpConfig{Seed: seed, LossData: 0.10, LossCtrl: 0.05, Reorder: true, MaxRounds: 2000})
	if err != nil {
		return nil, err
	}
	data := make([]byte, 32*1024)
	rand.New(rand.NewSource(seed)).Read(data)
	if err := p.S.Write(data); err != nil {
		return nil, err
	}
	if err := p.S.Close(); err != nil {
		return nil, err
	}
	res, err := p.Run()
	if err != nil {
		return nil, err
	}
	snap := reg.Snapshot()
	send, recv := snap.Scopes["send"], snap.Scopes["recv"]
	t.row("telemetry: TPDUs sent / retransmits",
		fmt.Sprintf("%d / %d", send.Counters["tpdus_sent"], send.Counters["retransmits"]))
	t.row("telemetry: TPDUs verified / reaped",
		fmt.Sprintf("%d / %d", recv.Counters["tpdus_verified"], recv.Counters["tpdus_reaped"]))
	t.row("telemetry: envelope fill", send.Histograms["envelope_fill_pct"].String())
	t.row("telemetry: reassembly interval set", recv.Histograms["reassembly_intervals"].String())
	t.row("telemetry: wsc bytes checksummed", fmt.Sprintf("%d", recv.Counters["wsc_bytes"]))
	t.row("telemetry: wsc run sizes (B)", recv.Histograms["wsc_run_bytes"].String())
	t.row("telemetry: overlap conflicts / rejects",
		fmt.Sprintf("%d / %d", recv.Counters["overlap_conflicts"], recv.Counters["overlap_rejects"]))
	t.row("telemetry: lifecycle events",
		fmt.Sprintf("sent=%d retransmit=%d complete=%d (drained=%v, %d rounds)",
			snap.EventCounts[telemetry.EvSent.String()],
			snap.EventCounts[telemetry.EvRetransmit.String()],
			snap.EventCounts[telemetry.EvComplete.String()],
			res.Drained, res.Rounds))
	return t, nil
}
