package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// advanceTo runs the wheel to the given tick, returning every timer
// fired along the way tagged with its firing tick.
func advanceTo(w *wheel, tick uint64) map[uint64][]*timer {
	fired := make(map[uint64][]*timer)
	for w.now < tick {
		if due := w.advance(); len(due) > 0 {
			fired[w.now] = append(fired[w.now], due...)
		}
	}
	return fired
}

// TestWheelFiresExactlyAtDeadline schedules timers at deltas that
// straddle every level boundary and checks each fires at exactly its
// deadline — neither early nor late — including the cascade paths.
func TestWheelFiresExactlyAtDeadline(t *testing.T) {
	deltas := []uint64{
		1, 2, 63, 64, 65, // level 0 ↔ 1 boundary
		127, 128, 4095, 4096, 4097, // level 1 ↔ 2 boundary
		262143, 262144, 262145, // level 2 ↔ 3 boundary
		1 << 20,
	}
	w := &wheel{}
	timers := make(map[*timer]uint64)
	for _, d := range deltas {
		tm := &timer{key: Key{CID: uint32(d)}}
		w.schedule(tm, w.now+d)
		timers[tm] = w.now + d
	}
	fired := advanceTo(w, 1<<20+8)
	seen := 0
	for tick, due := range fired {
		for _, tm := range due {
			want, ok := timers[tm]
			if !ok {
				t.Fatalf("unknown timer fired at tick %d", tick)
			}
			if tick != want {
				t.Errorf("timer delta=%d fired at tick %d, want %d", want, tick, want)
			}
			seen++
		}
	}
	if seen != len(deltas) {
		t.Fatalf("fired %d timers, want %d", seen, len(deltas))
	}
	if w.pending != 0 {
		t.Fatalf("pending = %d after all fired, want 0", w.pending)
	}
}

// TestWheelRandomizedDeadlines cross-checks the wheel against a naive
// sorted list over seeded random schedules, including reschedules and
// cancellations.
func TestWheelRandomizedDeadlines(t *testing.T) {
	rng := rand.New(rand.NewSource(7)) // seeded: deterministic run
	w := &wheel{}
	const n = 500
	timers := make([]*timer, n)
	want := make(map[*timer]uint64) // expected firing tick; absent = cancelled
	for i := range timers {
		timers[i] = &timer{key: Key{CID: uint32(i)}}
		when := w.now + 1 + uint64(rng.Intn(1<<18))
		w.schedule(timers[i], when)
		want[timers[i]] = when
	}
	// Perturb: reschedule a third, cancel a tenth.
	for i := 0; i < n; i++ {
		switch {
		case i%3 == 0:
			when := w.now + 1 + uint64(rng.Intn(1<<18))
			w.schedule(timers[i], when)
			want[timers[i]] = when
		case i%10 == 9:
			w.cancel(timers[i])
			delete(want, timers[i])
		}
	}
	fired := advanceTo(w, 1<<18+2)
	got := make(map[*timer]uint64)
	for tick, due := range fired {
		for _, tm := range due {
			if _, dup := got[tm]; dup {
				t.Fatalf("timer %v fired twice", tm.key)
			}
			got[tm] = tick
		}
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d timers, want %d", len(got), len(want))
	}
	for tm, w0 := range want {
		if got[tm] != w0 {
			t.Errorf("timer %v fired at %d, want %d", tm.key, got[tm], w0)
		}
	}
}

// TestWheelScheduleClampsPast verifies that a deadline at or before the
// current tick fires on the next tick, never in the scheduling tick and
// never silently dropped.
func TestWheelScheduleClampsPast(t *testing.T) {
	w := &wheel{}
	advanceTo(w, 100)
	tm := &timer{}
	w.schedule(tm, 50) // in the past
	due := w.advance()
	if len(due) != 1 || due[0] != tm {
		t.Fatalf("past-deadline timer did not fire on the next tick: due=%v", due)
	}
}

// TestWheelCancelIdempotent checks cancel on unscheduled and fired
// timers is a safe no-op and pending bookkeeping stays exact.
func TestWheelCancelIdempotent(t *testing.T) {
	w := &wheel{}
	tm := &timer{}
	w.cancel(tm) // never scheduled
	w.schedule(tm, 5)
	w.cancel(tm)
	w.cancel(tm) // double cancel
	if w.pending != 0 {
		t.Fatalf("pending = %d, want 0", w.pending)
	}
	if fired := advanceTo(w, 10); len(fired) != 0 {
		t.Fatalf("cancelled timer fired: %v", fired)
	}
	w.schedule(tm, w.now+3)
	if fired := advanceTo(w, w.now+5); len(fired) != 1 {
		t.Fatalf("rescheduled-after-cancel timer did not fire: %v", fired)
	}
}

// TestWheelTickOrdering pins the engine's per-tick servicing order to
// the old server's sorted-scan semantics: due timers for one tick are
// handled in (C.ID, Addr) order with a connection's idle check before
// its poll, regardless of which shard or insertion order produced them.
func TestWheelTickOrdering(t *testing.T) {
	eng := New(Config[int]{
		Shards:    4,
		IdleTicks: 3,
		Poll:      func(Key, int) bool { return false },
	})
	// Establish in scrambled key order across shards so insertion order
	// disagrees with key order.
	keys := []Key{
		{CID: 9, Addr: "b"}, {CID: 2, Addr: "z"}, {CID: 2, Addr: "a"},
		{CID: 40, Addr: "x"}, {CID: 1, Addr: "q"}, {CID: 9, Addr: "a"},
	}
	for _, k := range keys {
		sh := eng.Shard(k)
		sh.Lock()
		if _, err := sh.Establish(k, func() (int, error) { return 0, nil }); err != nil {
			t.Fatal(err)
		}
		sh.ArmPoll(k) // poll due at tick 1, idle at tick 3
		sh.Unlock()
	}

	var order []string
	eng2 := New(Config[int]{
		Shards:    4,
		IdleTicks: 1,
		Poll: func(k Key, _ int) bool {
			order = append(order, fmt.Sprintf("poll:%d@%s", k.CID, k.Addr))
			return false
		},
	})
	for _, k := range keys {
		sh := eng2.Shard(k)
		sh.Lock()
		if _, err := sh.Establish(k, func() (int, error) { return 0, nil }); err != nil {
			t.Fatal(err)
		}
		sh.ArmPoll(k)
		sh.Unlock()
	}
	// Tick 1: every connection has idle (IdleTicks=1, untouched) and
	// poll due in the same tick. Old scan: sorted by key, and an expired
	// connection is deleted before its poll ran.
	expired := eng2.Tick()
	for _, e := range expired {
		order = append(order, fmt.Sprintf("idle:%d@%s", e.Key.CID, e.Key.Addr))
	}

	// Expired events must come back key-sorted.
	sortedKeys := append([]Key(nil), keys...)
	sort.Slice(sortedKeys, func(i, j int) bool { return sortedKeys[i].less(sortedKeys[j]) })
	if len(expired) != len(keys) {
		t.Fatalf("expired %d conns, want %d (idle should beat poll in the same tick)", len(expired), len(keys))
	}
	for i, e := range expired {
		if e.Key != sortedKeys[i] {
			t.Errorf("expired[%d] = %v, want %v (key-sorted merge)", i, e.Key, sortedKeys[i])
		}
	}
	// And no poll hook may have fired for an expired connection — the
	// idle check ran first, exactly like the old scan's delete-then-poll
	// pass.
	for _, o := range order {
		if len(o) >= 5 && o[:5] == "poll:" {
			t.Errorf("poll fired for a connection expired in the same tick: %s", o)
		}
	}

	// Back on eng (IdleTicks=3): tick 1 fires the polls only, key-sorted.
	var polled []Key
	eng.cfg.Poll = func(k Key, _ int) bool {
		polled = append(polled, k)
		return false
	}
	if exp := eng.Tick(); len(exp) != 0 {
		t.Fatalf("unexpected expiry at tick 1: %v", exp)
	}
	if len(polled) != len(keys) {
		t.Fatalf("polled %d conns, want %d", len(polled), len(keys))
	}
	for i, k := range polled {
		if k != sortedKeys[i] {
			t.Errorf("polled[%d] = %v, want %v (key-sorted merge)", i, k, sortedKeys[i])
		}
	}
}
