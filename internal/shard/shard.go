// Package shard is the horizontal-scale substrate of the server: N
// independent connection shards, each owning its own table, mutex and
// hierarchical timer wheel, with connections hashed to shards by
// FNV-1a over their (C.ID, source) identity.
//
// The design leans directly on the paper's thesis. Because every
// chunk is self-describing — its labels carry the connection, TPDU
// and stream positions — the receive side needs no shared reassembly
// state across connections: a datagram for connection K can be
// processed to completion while touching only K's shard. Steady-state
// datagram handling therefore takes exactly one shard lock and no
// cross-shard state, so throughput scales with shards until the
// hardware runs out of cores (experiment C1).
//
// Determinism: shard assignment is a pure hash of the key, ticks are
// counted (never read from a clock), and every cross-shard aggregate
// — Tick's due set, Range, WithPrimary — merges shards in a fixed
// order with key-sorted tie-breaking, so a seeded run is
// bit-reproducible at any shard count.
package shard

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// A Key identifies one connection: the connection ID carried in the
// chunk labels and the source address it was established from.
type Key struct {
	CID  uint32
	Addr string
}

// less orders keys the way the old server's poll/expiry scan did:
// by connection ID, then source address.
func (k Key) less(o Key) bool {
	if k.CID != o.CID {
		return k.CID < o.CID
	}
	return k.Addr < o.Addr
}

// FNV-1a, the demux hash: cheap, stateless, and well-spread over the
// small-integer C.IDs and textual addresses that make up a Key.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (k Key) hash() uint64 {
	h := uint64(fnvOffset)
	h = (h ^ uint64(k.CID&0xff)) * fnvPrime
	h = (h ^ uint64(k.CID>>8&0xff)) * fnvPrime
	h = (h ^ uint64(k.CID>>16&0xff)) * fnvPrime
	h = (h ^ uint64(k.CID>>24&0xff)) * fnvPrime
	for i := 0; i < len(k.Addr); i++ {
		h = (h ^ uint64(k.Addr[i])) * fnvPrime
	}
	return h
}

// ErrMaxConns reports that admission control refused a new connection:
// the engine-wide live count is at Config.MaxConns.
var ErrMaxConns = errors.New("shard: connection limit reached")

// Config parameterises an Engine over its connection type C.
type Config[C any] struct {
	// Shards is the shard count; 0 means runtime.GOMAXPROCS(0).
	Shards int
	// MaxConns bounds live connections across all shards; 0 means
	// unlimited. Establish fails with ErrMaxConns at the cap.
	MaxConns int
	// IdleTicks expires a connection that is not Touched for that many
	// ticks; 0 disables idle expiry.
	IdleTicks uint64
	// Poll is invoked under the owning shard's lock for every due poll
	// timer; returning true reschedules the poll one tick later.
	// Required when ArmPoll is used.
	Poll func(k Key, c C) bool
}

// entry is the engine's per-connection bookkeeping around the caller's
// connection value.
type entry[C any] struct {
	val         C
	established int64  // engine-wide arrival order (primary selection)
	lastActive  uint64 // tick of the last Touch (idle expiry)
	pollArmed   bool   // a poll timer is scheduled or in flight
	poll        timer
	idle        timer
}

// A Shard owns one slice of the connection space: its table, its lock
// and its timer wheel. Callers lock a shard explicitly, perform any
// number of operations, and unlock — a datagram touching one
// connection costs one Lock/Unlock pair regardless of engine size.
type Shard[C any] struct {
	eng   *Engine[C]
	mu    sync.Mutex
	conns map[Key]*entry[C] // guarded by mu
	wheel wheel             // guarded by mu
}

// An Engine demultiplexes connections over independent shards.
type Engine[C any] struct {
	cfg    Config[C]
	shards []*Shard[C]
	mask   uint64 // len(shards)-1 when power of two, else 0

	seq     atomic.Int64 // establishment order, engine-wide
	live    atomic.Int64 // live connections (admission control)
	refused atomic.Int64 // establishments refused by MaxConns

	// due is Tick's reusable drain scratch: after the first few ticks
	// its backing array stops growing and Tick runs allocation-free.
	// Only Tick touches it, and Tick is single-caller by contract.
	due []dueTimer[C]
}

// dueTimer pairs a due timer with its owning shard between Tick's
// drain and service passes.
type dueTimer[C any] struct {
	sh *Shard[C]
	t  *timer
}

// New builds an engine with cfg.Shards independent shards.
func New[C any](cfg Config[C]) *Engine[C] {
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e := &Engine[C]{cfg: cfg, shards: make([]*Shard[C], n)}
	if n&(n-1) == 0 {
		e.mask = uint64(n - 1)
	}
	for i := range e.shards {
		e.shards[i] = &Shard[C]{eng: e, conns: make(map[Key]*entry[C])}
	}
	return e
}

// ShardCount returns the number of shards.
func (e *Engine[C]) ShardCount() int { return len(e.shards) }

// ShardIndex returns the shard index k hashes to.
func (e *Engine[C]) ShardIndex(k Key) int {
	h := k.hash()
	if e.mask != 0 {
		return int(h & e.mask)
	}
	return int(h % uint64(len(e.shards)))
}

// Shard returns the shard owning k.
func (e *Engine[C]) Shard(k Key) *Shard[C] { return e.shards[e.ShardIndex(k)] }

// Live returns the engine-wide live connection count.
func (e *Engine[C]) Live() int { return int(e.live.Load()) }

// Refused returns how many establishments admission control refused.
func (e *Engine[C]) Refused() int { return int(e.refused.Load()) }

// Lock acquires the shard's mutex. Every per-connection operation
// (Get, Establish, Remove, Touch, ArmPoll) requires it.
func (s *Shard[C]) Lock() { s.mu.Lock() }

// Unlock releases the shard's mutex.
func (s *Shard[C]) Unlock() { s.mu.Unlock() }

// Get returns the connection for k. Lock held.
func (s *Shard[C]) Get(k Key) (C, bool) {
	if en, ok := s.conns[k]; ok {
		return en.val, true
	}
	var zero C
	return zero, false
}

// Establish admits and inserts a new connection for k, built by mk
// only after admission succeeds. It fails with ErrMaxConns at the
// engine-wide cap, or with mk's error. Lock held; k must not be
// present (Get first).
func (s *Shard[C]) Establish(k Key, mk func() (C, error)) (C, error) {
	var zero C
	if max := s.eng.cfg.MaxConns; max > 0 && s.eng.live.Add(1) > int64(max) {
		s.eng.live.Add(-1)
		s.eng.refused.Add(1)
		return zero, ErrMaxConns
	} else if max <= 0 {
		s.eng.live.Add(1)
	}
	val, err := mk()
	if err != nil {
		s.eng.live.Add(-1)
		return zero, err
	}
	en := &entry[C]{
		val:         val,
		established: s.eng.seq.Add(1),
		lastActive:  s.wheel.now,
	}
	en.poll = timer{key: k, kind: kindPoll}
	en.idle = timer{key: k, kind: kindIdle}
	s.conns[k] = en
	if it := s.eng.cfg.IdleTicks; it > 0 {
		s.wheel.schedule(&en.idle, s.wheel.now+it)
	}
	return val, nil
}

// Remove deletes k's connection and cancels its timers. Lock held.
// It reports whether the connection existed.
func (s *Shard[C]) Remove(k Key) bool {
	en, ok := s.conns[k]
	if !ok {
		return false
	}
	s.wheel.cancel(&en.poll)
	s.wheel.cancel(&en.idle)
	delete(s.conns, k)
	s.eng.live.Add(-1)
	return true
}

// Touch marks k active at the current tick (idle expiry restarts).
// The idle timer is not rescheduled here — expiry is lazy: when the
// timer fires, a touched connection is pushed out by its remaining
// lease instead of expired — so the datagram hot path never pays
// timer churn. Lock held.
func (s *Shard[C]) Touch(k Key) {
	if en, ok := s.conns[k]; ok {
		en.lastActive = s.wheel.now
	}
}

// ArmPoll schedules a poll for k at the next tick if none is pending.
// Lock held.
func (s *Shard[C]) ArmPoll(k Key) {
	en, ok := s.conns[k]
	if !ok || en.pollArmed {
		return
	}
	en.pollArmed = true
	s.wheel.schedule(&en.poll, s.wheel.now+1)
}

// Len returns the shard's connection count. Lock held.
func (s *Shard[C]) Len() int { return len(s.conns) }

// An Expired record reports one connection reaped by idle expiry.
type Expired[C any] struct {
	Key Key
	Val C
}

// Tick advances every shard's wheel by one tick and serves the due
// timers: idle checks (expiring or re-leasing), then poll hooks. Due
// timers fire in sorted key order — (C.ID, addr), idle before poll —
// across all shards, pinning the old single-table sorted-scan
// semantics regardless of shard count. Expired connections are
// removed and returned (key-sorted) for the caller's callbacks; the
// caller fires those outside any shard lock.
//
// The drain pass merges into a reused, insertion-sorted scratch
// rather than sort.Slice: the comparison closure there boxes the
// slice header onto the heap, and Tick sits on the server's tick
// loop, which must stay allocation-free in steady state.
//
//lint:hot
func (e *Engine[C]) Tick() []Expired[C] {
	due := e.due[:0]
	for _, sh := range e.shards {
		sh.mu.Lock()
		for _, t := range sh.wheel.advance() {
			due = insertDue(due, dueTimer[C]{sh, t})
		}
		sh.mu.Unlock()
	}
	e.due = due
	var expired []Expired[C]
	for _, d := range due {
		sh, t := d.sh, d.t
		sh.mu.Lock()
		en, ok := sh.conns[t.key]
		if !ok {
			sh.mu.Unlock()
			continue // removed between drain and service
		}
		switch t.kind {
		case kindIdle:
			if lease := en.lastActive + e.cfg.IdleTicks; lease > sh.wheel.now {
				// Touched since scheduling: renew for the remainder.
				sh.wheel.schedule(&en.idle, lease)
			} else {
				sh.wheel.cancel(&en.poll)
				delete(sh.conns, t.key)
				e.live.Add(-1)
				expired = append(expired, Expired[C]{Key: t.key, Val: en.val})
			}
		case kindPoll:
			if e.cfg.Poll != nil && e.cfg.Poll(t.key, en.val) {
				sh.wheel.schedule(&en.poll, sh.wheel.now+1)
			} else {
				en.pollArmed = false
			}
		}
		sh.mu.Unlock()
	}
	return expired
}

// insertDue appends d keeping due sorted by (key, kind): an insertion
// sort against an already-sorted prefix, so each drain merge is one
// scan from the tail. Per-shard advance yields few timers per tick,
// and reusing the backing array keeps the merge allocation-free.
func insertDue[C any](due []dueTimer[C], d dueTimer[C]) []dueTimer[C] {
	due = append(due, d)
	i := len(due) - 1
	for i > 0 && dueLess(d, due[i-1]) {
		due[i] = due[i-1]
		i--
	}
	due[i] = d
	return due
}

func dueLess[C any](a, b dueTimer[C]) bool {
	if a.t.key != b.t.key {
		return a.t.key.less(b.t.key)
	}
	return a.t.kind < b.t.kind
}

// Range calls fn for every live connection under its shard's lock,
// shards in index order. Connections within a shard are visited in
// map order: fn must be order-free (sums, counts) — anything
// order-sensitive belongs in WithPrimary or a sorted collect.
func (e *Engine[C]) Range(fn func(k Key, c C)) {
	for _, sh := range e.shards {
		sh.mu.Lock()
		for k, en := range sh.conns { //lint:allow maprange callers are restricted to order-free bodies (see doc comment)
			fn(k, en.val)
		}
		sh.mu.Unlock()
	}
}

// WithPrimary runs fn on the earliest-established live connection
// while holding every shard lock (so the value cannot change or
// disappear underneath fn), and reports whether one existed. fn must
// not call back into the engine. Establishment order is an engine-wide
// sequence, so the minimum is unique and the scan order-independent.
func (e *Engine[C]) WithPrimary(fn func(c C)) bool {
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range e.shards {
			sh.mu.Unlock()
		}
	}()
	var best *entry[C]
	for _, sh := range e.shards {
		//lint:allow locked every shard's mutex is held: acquired across the preceding loop, released by the deferred loop
		for _, en := range sh.conns { //lint:allow maprange min-reduction over the unique establishment sequence; order-independent
			if best == nil || en.established < best.established {
				best = en
			}
		}
	}
	if best == nil {
		return false
	}
	fn(best.val)
	return true
}
