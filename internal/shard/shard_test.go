package shard

import (
	"errors"
	"fmt"
	"testing"
)

func establish(t *testing.T, e *Engine[int], k Key, v int) {
	t.Helper()
	sh := e.Shard(k)
	sh.Lock()
	defer sh.Unlock()
	if _, err := sh.Establish(k, func() (int, error) { return v, nil }); err != nil {
		t.Fatalf("establish %v: %v", k, err)
	}
}

// TestShardSpread checks the FNV-1a demux actually spreads realistic
// keys (small CIDs × few source addresses) over the shards instead of
// clumping, and that assignment is a pure function of the key.
func TestShardSpread(t *testing.T) {
	e := New(Config[int]{Shards: 8})
	counts := make([]int, e.ShardCount())
	const n = 4096
	for i := 0; i < n; i++ {
		k := Key{CID: uint32(i % 64), Addr: fmt.Sprintf("127.0.0.1:%d", 40000+i)}
		idx := e.ShardIndex(k)
		if idx != e.ShardIndex(k) {
			t.Fatalf("unstable shard index for %v", k)
		}
		counts[idx]++
	}
	for i, c := range counts {
		// Perfectly uniform would be n/8 = 512; allow a wide band.
		if c < n/16 || c > n/4 {
			t.Errorf("shard %d holds %d of %d keys — demux is clumping: %v", i, c, n, counts)
		}
	}
}

// TestMaxConnsAdmission verifies the engine-wide cap: establishment
// past MaxConns fails with ErrMaxConns, counts as refused, builds no
// connection value, and capacity freed by Remove is reusable.
func TestMaxConnsAdmission(t *testing.T) {
	e := New(Config[int]{Shards: 4, MaxConns: 3})
	keys := []Key{{1, "a"}, {2, "b"}, {3, "c"}}
	for i, k := range keys {
		establish(t, e, k, i)
	}
	if e.Live() != 3 {
		t.Fatalf("Live = %d, want 3", e.Live())
	}
	over := Key{4, "d"}
	sh := e.Shard(over)
	sh.Lock()
	built := false
	_, err := sh.Establish(over, func() (int, error) { built = true; return 0, nil })
	sh.Unlock()
	if !errors.Is(err, ErrMaxConns) {
		t.Fatalf("over-cap Establish err = %v, want ErrMaxConns", err)
	}
	if built {
		t.Fatal("constructor ran for a refused establishment")
	}
	if e.Refused() != 1 {
		t.Fatalf("Refused = %d, want 1", e.Refused())
	}
	if e.Live() != 3 {
		t.Fatalf("Live = %d after refusal, want 3", e.Live())
	}
	// Free a slot; the refused key now fits.
	sh0 := e.Shard(keys[0])
	sh0.Lock()
	if !sh0.Remove(keys[0]) {
		t.Fatal("Remove of live conn reported false")
	}
	sh0.Unlock()
	establish(t, e, over, 9)
	if e.Live() != 3 {
		t.Fatalf("Live = %d after backfill, want 3", e.Live())
	}
}

// TestEstablishConstructorError verifies a failed constructor leaves no
// state behind: no table entry, no live count, capacity not leaked.
func TestEstablishConstructorError(t *testing.T) {
	e := New(Config[int]{Shards: 2, MaxConns: 1})
	k := Key{7, "x"}
	boom := errors.New("boom")
	sh := e.Shard(k)
	sh.Lock()
	if _, err := sh.Establish(k, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := sh.Get(k); ok {
		t.Fatal("failed establishment left a table entry")
	}
	sh.Unlock()
	if e.Live() != 0 {
		t.Fatalf("Live = %d after failed establish, want 0", e.Live())
	}
	// The reserved slot must have been released: the cap still admits one.
	establish(t, e, k, 1)
}

// TestIdleExpiryLazyRenewal pins the lazy-lease semantics: Touch never
// reschedules, but a touched connection survives its idle timer and is
// pushed out by the remaining lease; an untouched one expires exactly
// IdleTicks after establishment.
func TestIdleExpiryLazyRenewal(t *testing.T) {
	e := New(Config[int]{Shards: 2, IdleTicks: 5})
	idle := Key{1, "idle"}
	busy := Key{2, "busy"}
	establish(t, e, idle, 0)
	establish(t, e, busy, 0)

	for tick := 1; tick <= 3; tick++ {
		if exp := e.Tick(); len(exp) != 0 {
			t.Fatalf("tick %d: early expiry %v", tick, exp)
		}
		// Keep `busy` warm every tick.
		sh := e.Shard(busy)
		sh.Lock()
		sh.Touch(busy)
		sh.Unlock()
	}
	// Tick 4: nothing due yet. Tick 5: idle's lease is up.
	if exp := e.Tick(); len(exp) != 0 {
		t.Fatalf("tick 4: early expiry %v", exp)
	}
	exp := e.Tick()
	if len(exp) != 1 || exp[0].Key != idle {
		t.Fatalf("tick 5: expired %v, want exactly %v", exp, idle)
	}
	// busy was last touched at tick 3 → expires at tick 8, not before.
	for tick := 6; tick <= 7; tick++ {
		if exp := e.Tick(); len(exp) != 0 {
			t.Fatalf("tick %d: touched conn expired early: %v", tick, exp)
		}
	}
	exp = e.Tick()
	if len(exp) != 1 || exp[0].Key != busy {
		t.Fatalf("tick 8: expired %v, want %v", exp, busy)
	}
	if e.Live() != 0 {
		t.Fatalf("Live = %d after both expiries, want 0", e.Live())
	}
}

// TestPollRearm verifies poll-timer lifecycle: ArmPoll is idempotent,
// a true return reschedules next tick, false disarms until the next
// ArmPoll.
func TestPollRearm(t *testing.T) {
	polls := 0
	keep := true
	e := New(Config[int]{Shards: 1, Poll: func(Key, int) bool { polls++; return keep }})
	k := Key{3, "p"}
	establish(t, e, k, 0)
	sh := e.Shard(k)
	sh.Lock()
	sh.ArmPoll(k)
	sh.ArmPoll(k) // idempotent: must not double-schedule
	sh.Unlock()
	e.Tick()
	if polls != 1 {
		t.Fatalf("polls = %d after tick 1, want 1 (ArmPoll must be idempotent)", polls)
	}
	e.Tick() // keep=true rescheduled it
	if polls != 2 {
		t.Fatalf("polls = %d after tick 2, want 2 (true must re-arm)", polls)
	}
	keep = false
	e.Tick()
	e.Tick() // disarmed: no further polls
	if polls != 3 {
		t.Fatalf("polls = %d, want 3 (false must disarm)", polls)
	}
	sh.Lock()
	sh.ArmPoll(k)
	sh.Unlock()
	e.Tick()
	if polls != 4 {
		t.Fatalf("polls = %d, want 4 (re-arm after disarm)", polls)
	}
}

// TestPrimarySelection pins primary = earliest established still live,
// independent of shard layout and removal order.
func TestPrimarySelection(t *testing.T) {
	for _, shards := range []int{1, 8} {
		e := New(Config[int]{Shards: shards})
		keys := []Key{{30, "c"}, {10, "a"}, {20, "b"}}
		for i, k := range keys {
			establish(t, e, k, i) // values 0,1,2 in establishment order
		}
		got := -1
		if !e.WithPrimary(func(v int) { got = v }) {
			t.Fatal("WithPrimary found nothing")
		}
		if got != 0 {
			t.Fatalf("shards=%d: primary = %d, want first-established (0)", shards, got)
		}
		sh := e.Shard(keys[0])
		sh.Lock()
		sh.Remove(keys[0])
		sh.Unlock()
		if !e.WithPrimary(func(v int) { got = v }) {
			t.Fatal("WithPrimary found nothing after removal")
		}
		if got != 1 {
			t.Fatalf("shards=%d: primary after removal = %d, want 1", shards, got)
		}
	}
	e := New(Config[int]{Shards: 2})
	if e.WithPrimary(func(int) {}) {
		t.Fatal("WithPrimary on empty engine reported true")
	}
}

// TestRangeCoversAll checks Range visits every live connection exactly
// once across shards.
func TestRangeCoversAll(t *testing.T) {
	e := New(Config[int]{Shards: 4})
	want := make(map[Key]bool)
	for i := 0; i < 100; i++ {
		k := Key{CID: uint32(i), Addr: "r"}
		establish(t, e, k, i)
		want[k] = true
	}
	seen := make(map[Key]int)
	e.Range(func(k Key, v int) { seen[k]++ })
	if len(seen) != len(want) {
		t.Fatalf("Range visited %d conns, want %d", len(seen), len(want))
	}
	for k, n := range seen {
		if n != 1 || !want[k] {
			t.Fatalf("Range visited %v %d times", k, n)
		}
	}
}

// TestDefaultShardCount checks the GOMAXPROCS default and that any
// shard count (power of two or not) routes keys in range.
func TestDefaultShardCount(t *testing.T) {
	if n := New(Config[int]{}).ShardCount(); n < 1 {
		t.Fatalf("default ShardCount = %d", n)
	}
	for _, n := range []int{1, 3, 8, 13} {
		e := New(Config[int]{Shards: n})
		if e.ShardCount() != n {
			t.Fatalf("ShardCount = %d, want %d", e.ShardCount(), n)
		}
		for i := 0; i < 1000; i++ {
			k := Key{CID: uint32(i), Addr: "z"}
			if idx := e.ShardIndex(k); idx < 0 || idx >= n {
				t.Fatalf("ShardIndex(%v) = %d out of range [0,%d)", k, idx, n)
			}
		}
	}
}
