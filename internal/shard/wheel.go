package shard

// The hierarchical timer wheel: every per-connection deadline (the
// next receiver poll round, the idle-expiry check) is a timer hashed
// into a slot of one of wheelLevels wheels by its remaining delay.
// Advancing the wheel one tick touches exactly one level-0 slot plus
// an amortised-O(1) cascade from the higher levels — independent of
// how many connections exist — which replaces the old server's
// per-tick sort-all-keys scan over the whole connection table.
//
// Determinism: the wheel itself never reads a clock; ticks are counted
// by the caller (the engine's Tick). Timers drained from a slot come
// back in insertion order, and the engine re-sorts every tick's due
// set by connection key before acting, pinning the firing order to the
// old sorted-scan semantics (see TestWheelTickOrdering).

const (
	wheelBits   = 6 // 64 slots per level
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4 // covers 64^4 ≈ 16.7M ticks (~3.9 days at 20ms/tick)
)

// timerKind orders a connection's deadlines within one tick: the idle
// check runs before the poll, mirroring the old scan (an expired
// connection was deleted and never polled).
type timerKind uint8

const (
	kindIdle timerKind = iota
	kindPoll
)

// A timer is one scheduled deadline, intrusively linked into its slot.
type timer struct {
	key  Key
	kind timerKind
	when uint64 // absolute tick

	next, prev *timer
	list       *timerList // slot the timer currently occupies, nil if unscheduled
}

// timerList is a doubly-linked slot of timers (insertion-ordered).
type timerList struct {
	head, tail *timer
}

func (l *timerList) push(t *timer) {
	t.prev = l.tail
	t.next = nil
	if l.tail != nil {
		l.tail.next = t
	} else {
		l.head = t
	}
	l.tail = t
	t.list = l
}

func (l *timerList) remove(t *timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		l.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		l.tail = t.prev
	}
	t.next, t.prev, t.list = nil, nil, nil
}

// drain unlinks and returns the whole slot in insertion order.
func (l *timerList) drain() []*timer {
	var out []*timer
	for t := l.head; t != nil; {
		next := t.next
		t.next, t.prev, t.list = nil, nil, nil
		out = append(out, t)
		t = next
	}
	l.head, l.tail = nil, nil
	return out
}

// wheel is one shard's hierarchical timer wheel. All methods are
// called with the shard lock held.
type wheel struct {
	now     uint64
	level   [wheelLevels][wheelSlots]timerList
	pending int // scheduled timers (diagnostics)
}

// schedule (re)inserts t to fire at the absolute tick `when`. A past
// or current deadline is clamped to the next tick: the wheel never
// fires a timer in the tick that scheduled it.
func (w *wheel) schedule(t *timer, when uint64) {
	w.cancel(t)
	if when <= w.now {
		when = w.now + 1
	}
	t.when = when
	w.insert(t)
	w.pending++
}

// insert places t by its remaining delay; a delay of zero lands in the
// current level-0 slot (only the cascade path produces that, and it
// drains the slot immediately afterwards).
func (w *wheel) insert(t *timer) {
	delta := t.when - w.now
	for l := 0; l < wheelLevels; l++ {
		if delta < 1<<(uint(l+1)*wheelBits) || l == wheelLevels-1 {
			w.level[l][(t.when>>(uint(l)*wheelBits))&wheelMask].push(t)
			return
		}
	}
}

// cancel unlinks t if scheduled (O(1); no-op otherwise).
func (w *wheel) cancel(t *timer) {
	if t.list == nil {
		return
	}
	t.list.remove(t)
	w.pending--
}

// advance moves the wheel one tick forward and returns the timers due
// at the new tick, in insertion order. Higher levels cascade into
// lower ones exactly when the lower level completes a revolution, so
// a due timer is always found in level 0 at its deadline.
func (w *wheel) advance() []*timer {
	w.now++
	for l := 1; l < wheelLevels; l++ {
		if w.now&(1<<(uint(l)*wheelBits)-1) != 0 {
			break
		}
		slot := (w.now >> (uint(l) * wheelBits)) & wheelMask
		for _, t := range w.level[l][slot].drain() {
			w.insert(t) // delay 0 lands in the level-0 slot drained below
		}
	}
	due := w.level[0][w.now&wheelMask].drain()
	kept := due[:0]
	for _, t := range due {
		if t.when > w.now {
			// A far-future timer clamped into the top level can come
			// around with ticks still to serve; put it back.
			w.insert(t)
			continue
		}
		w.pending--
		kept = append(kept, t)
	}
	return kept
}
