package aal

import (
	"testing"
	"testing/quick"
)

// TestReassemblerArbitraryCells: any sequence of arbitrary cells must
// be safe; emitted frames always carry a verified CRC.
func TestReassemblerArbitraryCells(t *testing.T) {
	f := func(cells [][]byte) bool {
		r := &Reassembler{}
		for _, c := range cells {
			if len(c) > CellSize {
				c = c[:CellSize]
			}
			for len(c) < CellSize {
				c = append(c, 0)
			}
			out, err := r.Add(c)
			if err != nil {
				continue
			}
			_ = out
		}
		return r.Pending() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
