// Package aal models the type 5 ATM Adaptation Layer [LYON 91], the
// Appendix B comparison point for implicit framing: AAL5 provides "a
// single bit of higher-layer framing information in the ATM cell
// header" (equivalent to the chunk T.ST bit) and nothing else —
// "no explicit ID, SN, or TYPE fields are needed because ATM links do
// not misorder". A cell is the start of a frame iff the previous cell
// ended one; the error detection code and length live in a trailer
// found by position.
//
// The package demonstrates both sides of the paper's argument: on an
// ordered channel the one-bit scheme reassembles perfectly with
// minimal overhead; under ANY misordering or loss the implicit
// framing silently mis-frames, and only the trailer CRC saves the day
// — which is exactly why chunks carry explicit labels.
package aal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// CellPayload is the ATM cell payload size.
const CellPayload = 48

// CellSize is payload plus the 1-byte header our model uses (real ATM
// has 5 header bytes; only the end-of-frame bit matters here).
const CellSize = CellPayload + 1

// TrailerSize is the AAL5 frame trailer: 4-byte length + 4-byte CRC.
const TrailerSize = 8

// Errors reported by reassembly.
var (
	ErrBadCell     = errors.New("aal: cell is not CellSize bytes")
	ErrBadCRC      = errors.New("aal: frame CRC mismatch")
	ErrBadLen      = errors.New("aal: frame length field out of range")
	ErrFrameTooBig = errors.New("aal: frame exceeds maximum length")
)

// MaxFrame bounds a frame to keep a broken stream from buffering
// forever.
const MaxFrame = 1 << 20

// Segment converts one frame into cells: payload + trailer (length,
// CRC-32), zero-padded to a cell multiple, with the end-of-frame bit
// set on the last cell.
func Segment(frame []byte) ([][]byte, error) {
	if len(frame) > MaxFrame {
		return nil, ErrFrameTooBig
	}
	body := make([]byte, 0, len(frame)+TrailerSize)
	body = append(body, frame...)
	body = binary.BigEndian.AppendUint32(body, uint32(len(frame)))
	body = binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(frame))
	// Pad so the trailer ends exactly at a cell boundary: pad BEFORE
	// the trailer per AAL5.
	pad := (CellPayload - len(body)%CellPayload) % CellPayload
	if pad > 0 {
		padded := make([]byte, 0, len(body)+pad)
		padded = append(padded, frame...)
		padded = append(padded, make([]byte, pad)...)
		padded = binary.BigEndian.AppendUint32(padded, uint32(len(frame)))
		padded = binary.BigEndian.AppendUint32(padded, crc32.ChecksumIEEE(frame))
		body = padded
	}
	var cells [][]byte
	for off := 0; off < len(body); off += CellPayload {
		cell := make([]byte, CellSize)
		copy(cell[1:], body[off:off+CellPayload])
		if off+CellPayload == len(body) {
			cell[0] = 1 // end-of-frame bit
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// A Reassembler consumes cells IN ORDER and emits frames. It has no
// per-cell identity to check — the implicit-framing property under
// test.
type Reassembler struct {
	buf []byte
}

// Add ingests one cell. When the cell carries the end-of-frame bit,
// the accumulated frame is validated against its trailer and
// returned; a CRC or length failure returns an error (and drops the
// broken frame), which is how AAL5 discovers that cells were lost or
// disordered — after the fact, with no way to tell which cells were
// wrong.
func (r *Reassembler) Add(cell []byte) ([]byte, error) {
	if len(cell) != CellSize {
		return nil, ErrBadCell
	}
	r.buf = append(r.buf, cell[1:]...)
	if len(r.buf) > MaxFrame+TrailerSize+CellPayload {
		r.buf = r.buf[:0]
		return nil, ErrFrameTooBig
	}
	if cell[0]&1 == 0 {
		return nil, nil
	}
	body := r.buf
	r.buf = nil
	if len(body) < TrailerSize {
		return nil, ErrBadLen
	}
	n := int(binary.BigEndian.Uint32(body[len(body)-8 : len(body)-4]))
	crc := binary.BigEndian.Uint32(body[len(body)-4:])
	if n > len(body)-TrailerSize {
		return nil, ErrBadLen
	}
	frame := body[:n]
	if crc32.ChecksumIEEE(frame) != crc {
		return nil, ErrBadCRC
	}
	return frame, nil
}

// Pending returns buffered bytes of the in-progress frame.
func (r *Reassembler) Pending() int { return len(r.buf) }

// Overhead returns the wire bytes needed to carry a frame of n bytes:
// ceil((n+trailer)/48) cells of 49 bytes. Used by experiment P7.
func Overhead(n int) int {
	cells := (n + TrailerSize + CellPayload - 1) / CellPayload
	return cells * CellSize
}
