package aal

import (
	"bytes"
	"math/rand"
	"testing"
)

func frame(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestSegmentShape(t *testing.T) {
	cells, err := Segment(frame(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	// 100 + 8 trailer = 108 -> 3 cells of 48.
	if len(cells) != 3 {
		t.Fatalf("%d cells", len(cells))
	}
	for i, c := range cells {
		if len(c) != CellSize {
			t.Fatalf("cell %d is %d bytes", i, len(c))
		}
		if (c[0]&1 != 0) != (i == len(cells)-1) {
			t.Fatalf("cell %d end bit = %d", i, c[0]&1)
		}
	}
}

func TestRoundTripInOrder(t *testing.T) {
	r := &Reassembler{}
	for _, n := range []int{0, 1, 40, 48, 100, 1000} {
		f := frame(n, int64(n))
		cells, err := Segment(f)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		done := false
		for _, c := range cells {
			out, err := r.Add(c)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if out != nil {
				got, done = out, true
			}
		}
		if !done || !bytes.Equal(got, f) {
			t.Fatalf("n=%d: round trip failed", n)
		}
		if r.Pending() != 0 {
			t.Fatal("buffer must drain at frame end")
		}
	}
}

func TestBackToBackFrames(t *testing.T) {
	// "A cell is considered to contain the beginning of a frame if the
	// previous cell was the end of a frame."
	r := &Reassembler{}
	var frames int
	for i := 0; i < 5; i++ {
		cells, _ := Segment(frame(70, int64(i)))
		for _, c := range cells {
			if out, err := r.Add(c); err != nil {
				t.Fatal(err)
			} else if out != nil {
				frames++
			}
		}
	}
	if frames != 5 {
		t.Fatalf("reassembled %d of 5 frames", frames)
	}
}

// TestMisorderingBreaksImplicitFraming is the paper's point: with no
// explicit labels, swapped cells silently corrupt the frame, caught
// only by the trailer CRC.
func TestMisorderingBreaksImplicitFraming(t *testing.T) {
	f := frame(150, 9)
	cells, _ := Segment(f)
	if len(cells) < 4 {
		t.Fatal("need several cells")
	}
	cells[0], cells[1] = cells[1], cells[0] // in-frame swap
	r := &Reassembler{}
	var sawErr error
	for _, c := range cells {
		if _, err := r.Add(c); err != nil {
			sawErr = err
		}
	}
	if sawErr != ErrBadCRC {
		t.Fatalf("swap must surface as CRC failure, got %v", sawErr)
	}
}

// TestCellLossMergesFrames: losing an end-of-frame cell splices two
// frames together; the CRC catches it but BOTH frames are lost —
// loss amplification absent in chunk framing.
func TestCellLossMergesFrames(t *testing.T) {
	c1, _ := Segment(frame(60, 1))
	c2, _ := Segment(frame(60, 2))
	stream := append(c1[:len(c1)-1], c2...) // drop frame 1's last cell
	r := &Reassembler{}
	var frames int
	var errs int
	for _, c := range stream {
		out, err := r.Add(c)
		if err != nil {
			errs++
		}
		if out != nil {
			frames++
		}
	}
	if frames != 0 || errs == 0 {
		t.Fatalf("frames=%d errs=%d; expected both frames destroyed", frames, errs)
	}
}

func TestBadCell(t *testing.T) {
	r := &Reassembler{}
	if _, err := r.Add(make([]byte, 10)); err != ErrBadCell {
		t.Fatal("wrong cell size must be rejected")
	}
}

func TestHugeFrame(t *testing.T) {
	if _, err := Segment(frame(MaxFrame+1, 1)); err != ErrFrameTooBig {
		t.Fatal("oversize frame must be rejected at segmentation")
	}
	// A stream that never ends a frame must not buffer unboundedly.
	r := &Reassembler{}
	cell := make([]byte, CellSize) // end bit clear
	var sawErr error
	for i := 0; i < (MaxFrame/CellPayload)+3; i++ {
		if _, err := r.Add(cell); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr != ErrFrameTooBig {
		t.Fatalf("runaway frame: %v", sawErr)
	}
}

func TestOverhead(t *testing.T) {
	// 100-byte frame: 108 body bytes -> 3 cells -> 147 wire bytes.
	if got := Overhead(100); got != 3*CellSize {
		t.Fatalf("Overhead(100) = %d", got)
	}
	if got := Overhead(40); got != CellSize {
		t.Fatalf("Overhead(40) = %d", got)
	}
}

func BenchmarkSegmentReassemble64K(b *testing.B) {
	f := frame(64*1024, 1)
	b.SetBytes(int64(len(f)))
	for i := 0; i < b.N; i++ {
		cells, err := Segment(f)
		if err != nil {
			b.Fatal(err)
		}
		r := &Reassembler{}
		var out []byte
		for _, c := range cells {
			if o, err := r.Add(c); err != nil {
				b.Fatal(err)
			} else if o != nil {
				out = o
			}
		}
		if out == nil {
			b.Fatal("no frame")
		}
	}
}
