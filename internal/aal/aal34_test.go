package aal

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestSegment34Shapes(t *testing.T) {
	// Single cell: SSM.
	cells := Segment34(1, 0, frame(10, 1))
	if len(cells) != 1 || cells[0][0]>>4 != SSM {
		t.Fatalf("small message: %d cells, type %d", len(cells), cells[0][0]>>4)
	}
	// Multi-cell: BOM, COM..., EOM.
	cells = Segment34(1, 0, frame(100, 2))
	if len(cells) != 3 {
		t.Fatalf("%d cells", len(cells))
	}
	types := []byte{cells[0][0] >> 4, cells[1][0] >> 4, cells[2][0] >> 4}
	if types[0] != BOM || types[1] != COM || types[2] != EOM {
		t.Fatalf("segment types: %v", types)
	}
	// SNs increment modulo 16 from the start value.
	if cells[0][0]&0x0F != 0 || cells[1][0]&0x0F != 1 || cells[2][0]&0x0F != 2 {
		t.Fatal("SN sequence wrong")
	}
	cells = Segment34(1, 15, frame(100, 3))
	if cells[1][0]&0x0F != 0 {
		t.Fatal("SN must wrap modulo 16")
	}
	// Empty message: one SSM cell of zero length.
	cells = Segment34(1, 0, nil)
	if len(cells) != 1 || cells[0][2] != 0 {
		t.Fatal("empty message")
	}
}

func TestReassemble34RoundTrip(t *testing.T) {
	r := NewReassembler34()
	sn := uint8(0)
	for _, n := range []int{10, 44, 45, 200, 0} {
		msg := frame(n, int64(n))
		cells := Segment34(5, sn, msg)
		sn = (sn + uint8(len(cells))) & 0x0F
		var got []byte
		done := false
		for _, c := range cells {
			mid, out, err := r.Add(c)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if out != nil {
				if mid != 5 {
					t.Fatal("wrong MID")
				}
				got, done = out, true
			}
		}
		if !done || !bytes.Equal(got, msg) {
			t.Fatalf("n=%d round trip failed", n)
		}
	}
}

// TestInterleavedMIDs is the AAL3/4 capability AAL5 lacks: messages
// from different MIDs interleave cell-by-cell on one VC.
func TestInterleavedMIDs(t *testing.T) {
	m1, m2 := frame(150, 1), frame(150, 2)
	c1 := Segment34(1, 0, m1)
	c2 := Segment34(2, 0, m2)
	r := NewReassembler34()
	got := map[uint8][]byte{}
	for i := 0; i < len(c1) || i < len(c2); i++ {
		for _, c := range [][]byte{pick(c1, i), pick(c2, i)} {
			if c == nil {
				continue
			}
			mid, out, err := r.Add(c)
			if err != nil {
				t.Fatal(err)
			}
			if out != nil {
				got[mid] = out
			}
		}
	}
	if !bytes.Equal(got[1], m1) || !bytes.Equal(got[2], m2) {
		t.Fatal("interleaved reassembly failed")
	}
}

func pick(cells [][]byte, i int) []byte {
	if i < len(cells) {
		return cells[i]
	}
	return nil
}

// TestSNGapDetected: a lost cell breaks the SN sequence and the
// message is abandoned.
func TestSNGapDetected(t *testing.T) {
	cells := Segment34(1, 0, frame(150, 4))
	r := NewReassembler34()
	if _, _, err := r.Add(cells[0]); err != nil {
		t.Fatal(err)
	}
	// Cell 1 lost; cell 2 arrives.
	if _, _, err := r.Add(cells[2]); !errors.Is(err, ErrSeq34) {
		t.Fatalf("want ErrSeq34, got %v", err)
	}
	if r.Pending() != 0 {
		t.Fatal("broken message must be abandoned")
	}
}

// TestSNWrapHazard: the paper-era weakness of a 4-bit SN — losing
// exactly 16 consecutive cells goes UNDETECTED by the sequence check,
// splicing two messages (only higher-layer checks could catch it).
// Chunks, with full-width explicit SNs, cannot suffer this.
func TestSNWrapHazard(t *testing.T) {
	msg := frame(44*18, 7) // 18 cells
	cells := Segment34(1, 0, msg)
	r := NewReassembler34()
	if _, _, err := r.Add(cells[0]); err != nil {
		t.Fatal(err)
	}
	// Drop cells 1..16 (16 cells): SN wraps back to the expected
	// value.
	_, out, err := r.Add(cells[17])
	if err != nil {
		t.Fatalf("wrap-gap was detected?! %v", err)
	}
	if out == nil {
		t.Fatal("EOM must (wrongly) complete the spliced message")
	}
	if bytes.Equal(out, msg) {
		t.Fatal("spliced message should be wrong")
	}
	if len(out) != 2*Cell34Payload {
		t.Fatalf("spliced message is %d bytes", len(out))
	}
}

func TestFramingViolations(t *testing.T) {
	r := NewReassembler34()
	com := Segment34(1, 0, frame(150, 8))[1]
	if _, _, err := r.Add(com); !errors.Is(err, ErrProto34) {
		t.Fatal("COM without BOM")
	}
	r = NewReassembler34()
	bomCells := Segment34(2, 0, frame(150, 9))
	if _, _, err := r.Add(bomCells[0]); err != nil {
		t.Fatal(err)
	}
	// Second BOM with the right SN while open.
	bom2 := Segment34(2, 1, frame(150, 10))[0]
	if _, _, err := r.Add(bom2); !errors.Is(err, ErrProto34) {
		t.Fatal("BOM while open")
	}
	if _, _, err := r.Add(make([]byte, 5)); !errors.Is(err, ErrBadCell34) {
		t.Fatal("short cell")
	}
	bad := make([]byte, Cell34Size)
	bad[2] = Cell34Payload + 1
	if _, _, err := r.Add(bad); !errors.Is(err, ErrProto34) {
		t.Fatal("oversize length field")
	}
}

func TestDeriveX(t *testing.T) {
	xid, xsn := DeriveX(100, 3) // BOM was at connection cell 97
	if xid != 97 || xsn != 3 {
		t.Fatalf("DeriveX = %d, %d", xid, xsn)
	}
}

func TestReassembler34Arbitrary(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := NewReassembler34()
	for i := 0; i < 2000; i++ {
		cell := make([]byte, Cell34Size)
		rng.Read(cell)
		cell[2] = byte(rng.Intn(Cell34Payload + 1))
		_, _, _ = r.Add(cell) // must not panic
	}
}
