package aal

import "errors"

// Type 3/4 AAL model (Appendix B): "The type 4 AAL protocol uses a
// C.ID (MID), a 4-bit C.SN, and framing information denoting the
// beginning, continuation, or end of message (BOM, COM, EOM)". Unlike
// AAL5's single bit, the MID lets messages from different sources
// interleave on one VC and the per-cell SN detects cell loss — but
// only modulo 16, the wrap hazard demonstrated in the tests. EOM is
// equivalent to the chunk X.ST; with BOM, X.ID and X.SN are derived
// from the C.SN; no C.ST is used; LEN is explicit.

// Segment types of the AAL3/4 cell header.
const (
	// BOM begins a message.
	BOM = 1
	// COM continues a message.
	COM = 0
	// EOM ends a message.
	EOM = 2
	// SSM is a single-segment message.
	SSM = 3
)

// Cell34Payload is the data per cell after the 2-byte model header
// (real AAL3/4 has 44 bytes after its SAR header/trailer; the model
// keeps the same shape with a compact header: type(2b)+SN(4b) packed
// in one byte, MID in the next, then a length byte).
const Cell34Payload = 44

// Cell34Size is the full cell size of the model.
const Cell34Size = Cell34Payload + 3

// AAL3/4 errors.
var (
	ErrBadCell34 = errors.New("aal: type 3/4 cell is not Cell34Size bytes")
	ErrSeq34     = errors.New("aal: type 3/4 sequence number gap")
	ErrProto34   = errors.New("aal: type 3/4 framing violation")
)

// Segment34 splits a message into AAL3/4 cells for the given MID,
// starting at sequence number startSN (each message continues the
// per-MID modulo-16 SN stream).
func Segment34(mid uint8, startSN uint8, msg []byte) [][]byte {
	n := (len(msg) + Cell34Payload - 1) / Cell34Payload
	if n == 0 {
		n = 1
	}
	cells := make([][]byte, 0, n)
	sn := startSN
	for i := 0; i < n; i++ {
		lo := i * Cell34Payload
		hi := lo + Cell34Payload
		if hi > len(msg) {
			hi = len(msg)
		}
		var st byte
		switch {
		case n == 1:
			st = SSM
		case i == 0:
			st = BOM
		case i == n-1:
			st = EOM
		default:
			st = COM
		}
		cell := make([]byte, Cell34Size)
		cell[0] = st<<4 | (sn & 0x0F)
		cell[1] = mid
		cell[2] = byte(hi - lo)
		copy(cell[3:], msg[lo:hi])
		cells = append(cells, cell)
		sn = (sn + 1) & 0x0F
	}
	return cells
}

// perMID is the reassembly state of one message stream.
type perMID struct {
	buf    []byte
	nextSN uint8
	open   bool
	haveSN bool
}

// Reassembler34 reassembles interleaved AAL3/4 messages. Cells of
// different MIDs may interleave freely (the capability AAL5 lacks);
// within one MID, cells must arrive in order and the 4-bit SN detects
// gaps — unless a multiple of 16 consecutive cells vanish.
type Reassembler34 struct {
	mids map[uint8]*perMID
}

// NewReassembler34 returns an empty reassembler.
func NewReassembler34() *Reassembler34 {
	return &Reassembler34{mids: make(map[uint8]*perMID)}
}

// Add ingests one cell; it returns (mid, message) when a message
// completes. SN gaps and framing violations abandon the in-progress
// message for that MID and return an error.
func (r *Reassembler34) Add(cell []byte) (uint8, []byte, error) {
	if len(cell) != Cell34Size {
		return 0, nil, ErrBadCell34
	}
	st := cell[0] >> 4
	sn := cell[0] & 0x0F
	mid := cell[1]
	n := int(cell[2])
	if n > Cell34Payload {
		return mid, nil, ErrProto34
	}
	data := cell[3 : 3+n]

	m := r.mids[mid]
	if m == nil {
		m = &perMID{}
		r.mids[mid] = m
	}
	if m.haveSN && sn != m.nextSN {
		m.open = false
		m.buf = nil
		m.haveSN = false
		return mid, nil, ErrSeq34
	}
	m.nextSN = (sn + 1) & 0x0F
	m.haveSN = true

	switch st {
	case SSM:
		if m.open {
			m.open = false
			m.buf = nil
			return mid, nil, ErrProto34
		}
		out := make([]byte, len(data))
		copy(out, data)
		return mid, out, nil
	case BOM:
		if m.open {
			m.open = false
			m.buf = nil
			return mid, nil, ErrProto34
		}
		m.open = true
		m.buf = append(m.buf[:0], data...)
		return mid, nil, nil
	case COM:
		if !m.open {
			return mid, nil, ErrProto34
		}
		m.buf = append(m.buf, data...)
		return mid, nil, nil
	case EOM:
		if !m.open {
			return mid, nil, ErrProto34
		}
		m.open = false
		out := make([]byte, 0, len(m.buf)+len(data))
		out = append(out, m.buf...)
		out = append(out, data...)
		m.buf = nil
		return mid, out, nil
	}
	return mid, nil, ErrProto34
}

// Pending returns the number of open (incomplete) messages.
func (r *Reassembler34) Pending() int {
	n := 0
	for _, m := range r.mids {
		if m.open {
			n++
		}
	}
	return n
}

// DeriveX demonstrates the Appendix B claim that "with BOM, the X.ID
// and X.SN can be derived from the C.SN": given the connection cell
// counter at a BOM cell, the message identity is that counter value
// and in-message positions follow from it.
func DeriveX(connSN uint64, cellsSinceBOM uint64) (xid uint64, xsn uint64) {
	return connSN - cellsSinceBOM, cellsSinceBOM
}
