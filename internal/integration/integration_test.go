// Package integration holds cross-module end-to-end tests: workloads
// from trace, packed by packet, carried by netsim (with loss,
// duplication, corruption, multipath skew and route flaps), verified
// by errdet, demultiplexed by mux, placed by ilp. These are the
// "would a downstream user trust it" tests.
package integration

import (
	"bytes"
	"math/rand"
	"testing"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/ilp"
	"chunks/internal/mux"
	"chunks/internal/netsim"
	"chunks/internal/packet"
	"chunks/internal/trace"
)

// sendThrough packs a workload and pushes it through the given hops,
// returning the decoded packets that survive (undecodable packets —
// e.g. corrupted framing — are dropped, like a bad link-layer CRC).
func sendThrough(t *testing.T, w *trace.Workload, mtu int, hops ...netsim.Hop) []packet.Packet {
	t.Helper()
	pk := packet.Packer{MTU: mtu}
	datagrams, err := pk.Encode(w.All())
	if err != nil {
		t.Fatal(err)
	}
	deliveries := netsim.Run(netsim.SendAll(datagrams, 0, 1), hops...)
	var out []packet.Packet
	for _, d := range deliveries {
		p, err := packet.Decode(d.Data)
		if err != nil {
			continue
		}
		out = append(out, p.Clone())
	}
	return out
}

// TestVerifiedMeansCorrect is the reproduction's central safety
// property: on a network that corrupts, duplicates AND disorders,
// every TPDU the receiver marks VerdictOK is byte-identical to what
// was sent. Corrupted TPDUs may fail or stay pending — but they must
// never verify.
func TestVerifiedMeansCorrect(t *testing.T) {
	const elemSize = 4
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		w, err := trace.Bulk(trace.BulkConfig{
			Seed: seed, Bytes: 128 * 1024, ElemSize: elemSize, TPDUElems: 512, CID: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		pkts := sendThrough(t, w, 512, netsim.NewLink(netsim.LinkConfig{
			Seed: seed * 11, Paths: 8, BaseDelay: 100, SkewPerPath: 31,
			LossProb: 0.05, DupProb: 0.05, CorruptProb: 0.10, JitterMax: 17,
		}))

		recv, err := errdet.NewReceiver(errdet.DefaultLayout())
		if err != nil {
			t.Fatal(err)
		}
		stream := make([]byte, len(w.Data))
		placer := ilp.Placer{Buf: stream}
		for i := range pkts {
			for j := range pkts[i].Chunks {
				c := &pkts[i].Chunks[j]
				if c.Type == chunk.TypeData {
					placer.Place(c)
				}
				if err := recv.Ingest(c); err != nil {
					t.Fatal(err)
				}
			}
		}

		okCount, badCount := 0, 0
		for i := range w.Chunks {
			tc := &w.Chunks[i]
			v := recv.Verdict(tc.T.ID)
			lo := tc.C.SN * elemSize
			hi := lo + uint64(len(tc.Payload))
			if v == errdet.VerdictOK {
				okCount++
				if !bytes.Equal(stream[lo:hi], tc.Payload) {
					t.Fatalf("seed %d: TPDU %d verified OK but bytes differ", seed, tc.T.ID)
				}
			} else {
				badCount++
			}
		}
		if okCount == 0 {
			t.Fatalf("seed %d: nothing verified — workload too hostile to be meaningful", seed)
		}
		t.Logf("seed %d: %d verified, %d failed/pending, findings %d",
			seed, okCount, badCount, len(recv.Findings()))
	}
}

// TestCleanMultipathAllVerify: heavy disorder but NO corruption or
// loss: every TPDU must verify and the stream must be perfect —
// disorder alone costs nothing.
func TestCleanMultipathAllVerify(t *testing.T) {
	w, err := trace.Bulk(trace.BulkConfig{
		Seed: 9, Bytes: 64 * 1024, ElemSize: 4, TPDUElems: 256, CID: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pkts := sendThrough(t, w, 296, netsim.NewLink(netsim.LinkConfig{
		Seed: 5, Paths: 8, BaseDelay: 200, SkewPerPath: 57, JitterMax: 41,
	}))
	recv, _ := errdet.NewReceiver(errdet.DefaultLayout())
	stream := make([]byte, len(w.Data))
	placer := ilp.Placer{Buf: stream}
	for i := range pkts {
		for j := range pkts[i].Chunks {
			c := &pkts[i].Chunks[j]
			if c.Type == chunk.TypeData {
				placer.Place(c)
			}
			_ = recv.Ingest(c)
		}
	}
	for i := range w.Chunks {
		if v := recv.Verdict(w.Chunks[i].T.ID); v != errdet.VerdictOK {
			t.Fatalf("TPDU %d: %v; findings %v", w.Chunks[i].T.ID, v, recv.Findings())
		}
	}
	if !bytes.Equal(stream, w.Data) {
		t.Fatal("stream mismatch on a lossless network")
	}
}

// TestGatewayChainWithRouteFlap: bulk data through two chunk-aware
// gateways with a route change between them; receiver verifies all.
func TestGatewayChainWithRouteFlap(t *testing.T) {
	w, err := trace.Bulk(trace.BulkConfig{
		Seed: 4, Bytes: 64 * 1024, ElemSize: 4, TPDUElems: 1024, CID: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	refragment := func(mtu int) *netsim.Router {
		return &netsim.Router{
			Transform: func(b []byte) [][]byte {
				p, err := packet.Decode(b)
				if err != nil {
					return nil
				}
				rep, err := packet.Repack([]packet.Packet{p.Clone()}, mtu, packet.Combine)
				if err != nil {
					return nil
				}
				var out [][]byte
				for i := range rep {
					enc, err := rep[i].AppendTo(nil, 0)
					if err != nil {
						return nil
					}
					out = append(out, enc)
				}
				return out
			},
			ProcDelay: 2,
		}
	}
	pkts := sendThrough(t, w, 1400,
		netsim.NewLink(netsim.LinkConfig{Seed: 6, BaseDelay: 50}),
		refragment(296), // narrow hop fragments every chunk
		netsim.NewLink(netsim.LinkConfig{Seed: 7, BaseDelay: 400, RouteChangeTick: 100, RouteChangeDelay: 40}),
		refragment(4352), // wide hop reassembles into jumbo envelopes
		netsim.NewLink(netsim.LinkConfig{Seed: 8, BaseDelay: 30}),
	)
	recv, _ := errdet.NewReceiver(errdet.DefaultLayout())
	for i := range pkts {
		for j := range pkts[i].Chunks {
			_ = recv.Ingest(&pkts[i].Chunks[j])
		}
	}
	for i := range w.Chunks {
		if v := recv.Verdict(w.Chunks[i].T.ID); v != errdet.VerdictOK {
			t.Fatalf("TPDU %d: %v; findings %v", w.Chunks[i].T.ID, v, recv.Findings())
		}
	}
}

// TestMuxedConnectionsOverLossyNet: two connections share packets via
// mux across a lossy link; per-connection verdicts remain correct and
// isolated.
func TestMuxedConnectionsOverLossyNet(t *testing.T) {
	w1, err := trace.Bulk(trace.BulkConfig{Seed: 21, Bytes: 32 * 1024, ElemSize: 4, TPDUElems: 256, CID: 1})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := trace.Video(trace.VideoConfig{Seed: 22, Frames: 10, FrameElems: 512, ElemSize: 4, TPDUElems: 400, CID: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := mux.NewMux(512)
	c1, c2 := w1.All(), w2.All()
	for i := 0; i < len(c1) || i < len(c2); i++ {
		if i < len(c1) {
			m.Enqueue(c1[i])
		}
		if i < len(c2) {
			m.Enqueue(c2[i])
		}
	}
	datagrams, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	link := netsim.NewLink(netsim.LinkConfig{Seed: 23, Paths: 4, SkewPerPath: 19, LossProb: 0.02})
	deliveries := link.Transit(netsim.SendAll(datagrams, 0, 1))

	r1, _ := errdet.NewReceiver(errdet.DefaultLayout())
	r2, _ := errdet.NewReceiver(errdet.DefaultLayout())
	d := mux.NewDemux()
	d.Register(1, r1.Ingest)
	d.Register(2, r2.Ingest)
	for _, dv := range deliveries {
		if err := d.HandlePacket(dv.Data); err != nil {
			t.Fatal(err)
		}
	}
	// With 2% loss most TPDUs verify; NONE may verify wrongly and
	// cross-connection contamination must be impossible.
	ok1, ok2 := 0, 0
	for i := range w1.Chunks {
		if r1.Verdict(w1.Chunks[i].T.ID) == errdet.VerdictOK {
			ok1++
		}
	}
	seen := map[uint32]bool{}
	for i := range w2.Chunks {
		tid := w2.Chunks[i].T.ID
		if !seen[tid] {
			seen[tid] = true
			if r2.Verdict(tid) == errdet.VerdictOK {
				ok2++
			}
		}
	}
	if ok1 == 0 || ok2 == 0 {
		t.Fatalf("verified: conn1 %d, conn2 %d", ok1, ok2)
	}
	for _, f := range r1.Findings() {
		if f.Class == errdet.VerdictEDMismatch {
			t.Fatalf("loss alone must not cause parity mismatch: %v", f)
		}
	}
}

// TestDisorderedDecryptPlaceVerify exercises ILP + errdet together:
// encrypted chunks over a disordering network, decrypted and placed
// on arrival, all TPDUs verified against parities computed over the
// ciphertext (encryption below error detection, as in a real stack).
func TestDisorderedDecryptPlaceVerify(t *testing.T) {
	const elems = 4096
	rng := rand.New(rand.NewSource(31))
	plain := make([]byte, elems*4)
	rng.Read(plain)
	cipher := ilp.Cipher{Key: 0xD00D}

	// Build encrypted TPDU chunks directly.
	var chs []chunk.Chunk
	var eds []chunk.Chunk
	const perTPDU = 1024
	for start := 0; start < elems; start += perTPDU {
		enc := make([]byte, perTPDU*4)
		cipher.XORKeyStreamAt(enc, plain[start*4:(start+perTPDU)*4], uint64(start*4))
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: 4, Len: perTPDU,
			C:       chunk.Tuple{ID: 1, SN: uint64(start)},
			T:       chunk.Tuple{ID: uint32(start), ST: true},
			X:       chunk.Tuple{ID: 1, SN: uint64(start)},
			Payload: enc,
		}
		par, err := errdet.Encode(errdet.DefaultLayout(), []chunk.Chunk{c})
		if err != nil {
			t.Fatal(err)
		}
		chs = append(chs, c)
		eds = append(eds, errdet.EDChunk(1, c.T.ID, c.C.SN, par))
	}

	pk := packet.Packer{MTU: 640}
	datagrams, err := pk.Encode(append(chs, eds...))
	if err != nil {
		t.Fatal(err)
	}
	link := netsim.NewLink(netsim.LinkConfig{Seed: 33, Paths: 8, SkewPerPath: 23})
	out := make([]byte, len(plain))
	recv, _ := errdet.NewReceiver(errdet.DefaultLayout())
	for _, d := range link.Transit(netsim.SendAll(datagrams, 0, 1)) {
		p, err := packet.Decode(d.Data)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Chunks {
			c := p.Chunks[i].Clone()
			if err := recv.Ingest(&c); err != nil {
				t.Fatal(err)
			}
			if c.Type != chunk.TypeData {
				continue
			}
			// One-pass ILP: decrypt in place, then place.
			cipher.XORKeyStreamAt(c.Payload, c.Payload, ilp.StreamPos(&c))
			(&ilp.Placer{Buf: out}).Place(&c)
		}
	}
	if !bytes.Equal(out, plain) {
		t.Fatal("decrypt-on-arrival produced wrong plaintext")
	}
	for i := range chs {
		if v := recv.Verdict(chs[i].T.ID); v != errdet.VerdictOK {
			t.Fatalf("TPDU %d: %v", chs[i].T.ID, v)
		}
	}
}
