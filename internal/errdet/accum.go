package errdet

import (
	"fmt"

	"chunks/internal/chunk"
	"chunks/internal/vr"
	"chunks/internal/wsc"
)

// blockAccumulator folds chunk contributions into one TPDU's WSC-2
// code block. It is shared by the transmitter (Encode) and the
// receiver (Receiver); both must add exactly the same symbols for the
// invariant to hold.
type blockAccumulator struct {
	layout Layout
	acc    wsc.Accumulator
}

// addData accumulates the data symbols of elements [lo, hi) (absolute
// T.SNs) taken from c's payload.
func (b *blockAccumulator) addData(c *chunk.Chunk, lo, hi uint64) error {
	if hi <= lo {
		return nil
	}
	spe := SymbolsPerElement(c.Size)
	if hi*spe > b.layout.DataSymbols {
		return fmt.Errorf("%w: elements [%d,%d) of size %d", ErrLayout, lo, hi, c.Size) //lint:allow hotalloc cold error path: fmt boxes its operands
	}
	off := int(lo-c.T.SN) * int(c.Size)
	if c.Size%wsc.SymbolSize == 0 {
		// Elements pack exactly into symbols: one contiguous run.
		n := int(hi-lo) * int(c.Size)
		return b.acc.AddBytes(lo*spe, c.Payload[off:off+n])
	}
	// Pad each element independently to its symbol slots.
	var buf [8 * wsc.SymbolSize]byte //lint:allow hotalloc heap-moved only on the symbol-unaligned branch; steady-state elements are symbol-aligned
	var pad []byte
	if spe <= uint64(len(buf))/wsc.SymbolSize {
		pad = buf[:spe*wsc.SymbolSize]
	} else {
		pad = make([]byte, spe*wsc.SymbolSize) //lint:allow hotalloc padding slow path for elements wider than 8 symbols
	}
	for sn := lo; sn < hi; sn++ {
		for i := range pad {
			pad[i] = 0
		}
		copy(pad, c.Payload[off:off+int(c.Size)])
		off += int(c.Size)
		if err := b.acc.AddBytes(sn*spe, pad); err != nil {
			return err
		}
	}
	return nil
}

// addRaw accumulates raw bytes as the data symbols of elements
// [sn, sn+len(data)/size), mirroring addData without a chunk. Because
// the accumulator is XOR-linear, adding bytes that were already
// accumulated cancels them — this is the LastWins replacement
// primitive: add the old bytes (cancel), then add the new.
func (b *blockAccumulator) addRaw(sn uint64, size uint16, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	n := uint64(len(data)) / uint64(size)
	spe := SymbolsPerElement(size)
	if (sn+n)*spe > b.layout.DataSymbols {
		return fmt.Errorf("%w: elements [%d,%d) of size %d", ErrLayout, sn, sn+n, size) //lint:allow hotalloc cold error path: fmt boxes its operands
	}
	if size%wsc.SymbolSize == 0 {
		return b.acc.AddBytes(sn*spe, data)
	}
	var buf [8 * wsc.SymbolSize]byte //lint:allow hotalloc conflict-replacement path only: AddBytes sharding keeps the scratch alive
	var pad []byte
	if spe <= uint64(len(buf))/wsc.SymbolSize {
		pad = buf[:spe*wsc.SymbolSize]
	} else {
		pad = make([]byte, spe*wsc.SymbolSize) //lint:allow hotalloc oversize-element fallback, off the steady path
	}
	off := 0
	for i := uint64(0); i < n; i++ {
		for j := range pad {
			pad[j] = 0
		}
		copy(pad, data[off:off+int(size)])
		off += int(size)
		if err := b.acc.AddBytes((sn+i)*spe, pad); err != nil {
			return err
		}
	}
	return nil
}

// addTrigger encodes the (X.ID, X.ST) pair for the trigger element of
// c — its LAST element — if that element carries X.ST or T.ST
// (Figure 6). Callers must ensure the trigger element is fresh (not a
// duplicate) before calling, since re-adding would cancel the pair.
func (b *blockAccumulator) addTrigger(c *chunk.Chunk) error {
	if !c.X.ST && !c.T.ST {
		return nil
	}
	lastTSN := c.T.SN + uint64(c.Len) - 1
	pos := b.layout.XPairPos(lastTSN)
	if err := b.acc.AddSymbol(pos, c.X.ID); err != nil {
		return err
	}
	var xst uint32
	if c.X.ST {
		xst = 1
	}
	return b.acc.AddSymbol(pos+1, xst)
}

// addIdentity encodes the per-TPDU constants: T.ID, C.ID and the C.ST
// value. Called exactly once per TPDU (order does not matter, so both
// sides defer it until the values are settled).
func (b *blockAccumulator) addIdentity(tid, cid uint32, cst bool) error {
	if err := b.acc.AddSymbol(b.layout.TIDPos(), tid); err != nil {
		return err
	}
	if err := b.acc.AddSymbol(b.layout.CIDPos(), cid); err != nil {
		return err
	}
	var v uint32
	if cst {
		v = 1
	}
	return b.acc.AddSymbol(b.layout.CSTPos(), v)
}

func (b *blockAccumulator) parity() wsc.Parity { return b.acc.Parity() }

// Encode computes the transmitter-side invariant parity of one TPDU
// from its chunks in any fragmentation state: the result is identical
// whether chs is the single pre-fragmentation chunk or any split of it
// — that identity is the fragmentation invariance the system rests on.
// All chunks must be TypeData, share T.ID, C.ID and SIZE, and be
// disjoint in T.SN.
//
// The overwhelmingly common caller hands chunks sorted by T.SN (a
// sender fragments in order), where disjointness is a single running
// comparison; the vr.IntervalSet and its allocations are only brought
// in when an out-of-order chunk appears.
func Encode(layout Layout, chs []chunk.Chunk) (wsc.Parity, error) {
	if err := layout.Validate(); err != nil {
		return wsc.Parity{}, err
	}
	if len(chs) == 0 {
		return wsc.Parity{}, fmt.Errorf("errdet: empty TPDU")
	}
	b := blockAccumulator{layout: layout}
	var seen *vr.IntervalSet
	sorted, prevHi := true, uint64(0)
	tid, cid := chs[0].T.ID, chs[0].C.ID
	cst := false
	for i := range chs {
		c := &chs[i]
		if c.Type != chunk.TypeData {
			return wsc.Parity{}, fmt.Errorf("errdet: chunk %d is %v, want data", i, c.Type) //lint:allow hotalloc cold error path: fmt boxes its operands
		}
		if c.T.ID != tid || c.C.ID != cid {
			return wsc.Parity{}, fmt.Errorf("errdet: chunk %d belongs to a different PDU", i) //lint:allow hotalloc cold error path: fmt boxes its operands
		}
		lo, hi := c.T.SN, c.T.SN+uint64(c.Len)
		if sorted && (i == 0 || lo >= prevHi) {
			prevHi = hi
		} else {
			if sorted {
				// First out-of-order chunk: replay the sorted prefix
				// into an interval set and continue on the slow path.
				sorted = false
				seen = new(vr.IntervalSet) //lint:allow hotalloc out-of-order slow path; sorted steady-state TPDUs never build the interval set
				for j := 0; j < i; j++ {
					seen.Add(chs[j].T.SN, chs[j].T.SN+uint64(chs[j].Len))
				}
			}
			if fresh := seen.Add(lo, hi); len(fresh) != 1 || fresh[0] != (vr.Interval{Lo: lo, Hi: hi}) {
				return wsc.Parity{}, fmt.Errorf("errdet: chunk %d overlaps another chunk", i) //lint:allow hotalloc cold error path: fmt boxes its operands
			}
		}
		if err := b.addData(c, lo, hi); err != nil {
			return wsc.Parity{}, err
		}
		if err := b.addTrigger(c); err != nil {
			return wsc.Parity{}, err
		}
		if c.C.ST {
			cst = true
		}
	}
	if err := b.addIdentity(tid, cid, cst); err != nil {
		return wsc.Parity{}, err
	}
	return b.parity(), nil
}
