package errdet

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"chunks/internal/chunk"
)

// runCorrupted fragments a TPDU, applies corrupt to the fragment
// payloads (and the mirrored placed stream), and ingests everything.
// It returns the receiver, the corrupted stream, the clean stream,
// and the TPDU id.
func runCorrupted(t *testing.T, seed int64, corrupt func(stream []byte)) (*Receiver, []byte, []byte, uint32) {
	t.Helper()
	const tid = 9
	orig := makeTPDU(tid, 64, 4, seed)
	clean := append([]byte(nil), orig.Payload...)
	l := DefaultLayout()
	par, err := Encode(l, []chunk.Chunk{orig})
	if err != nil {
		t.Fatal(err)
	}
	ed := EDChunk(orig.C.ID, tid, orig.C.SN, par)

	// Corrupt the payload (the fragments alias it, as on the wire).
	corrupt(orig.Payload)
	frags, err := orig.SplitToFit(chunk.HeaderSize + 8*4)
	if err != nil {
		t.Fatal(err)
	}
	r := newReceiver(t)
	for i := range frags {
		_ = r.Ingest(&frags[i])
	}
	_ = r.Ingest(&ed)
	return r, orig.Payload, clean, tid
}

func TestRepairSingleSymbol(t *testing.T) {
	const badElem = 37
	var mask uint32 = 0x00A50001
	r, stream, clean, tid := runCorrupted(t, 1, func(s []byte) {
		v := binary.BigEndian.Uint32(s[badElem*4:])
		binary.BigEndian.PutUint32(s[badElem*4:], v^mask)
	})
	if r.Verdict(tid) != VerdictEDMismatch {
		t.Fatalf("verdict = %v", r.Verdict(tid))
	}
	cor, ok := r.Repair(tid)
	if !ok {
		t.Fatal("single-symbol error must be repairable")
	}
	if cor.TSN != badElem || cor.XOR != mask || cor.Offset != 0 {
		t.Fatalf("correction = %+v", cor)
	}
	if r.Verdict(tid) != VerdictOK {
		t.Fatalf("post-repair verdict = %v", r.Verdict(tid))
	}
	// Apply to the placed stream; makeTPDU uses C.SN 5000, so give
	// Apply a buffer window covering it.
	buf := make([]byte, (5000+64)*4)
	copy(buf[5000*4:], stream)
	cor.Apply(buf, 4)
	if !bytes.Equal(buf[5000*4:], clean) {
		t.Fatal("Apply did not restore the stream")
	}
}

func TestRepairRefusesMultiSymbol(t *testing.T) {
	r, _, _, tid := runCorrupted(t, 2, func(s []byte) {
		s[0] ^= 0xFF
		s[40] ^= 0x55 // second symbol
	})
	if r.Verdict(tid) != VerdictEDMismatch {
		t.Fatalf("verdict = %v", r.Verdict(tid))
	}
	if _, ok := r.Repair(tid); ok {
		t.Fatal("two-symbol corruption must not be 'repaired'")
	}
	if r.Verdict(tid) != VerdictEDMismatch {
		t.Fatal("failed repair must leave the mismatch verdict intact")
	}
}

func TestRepairRefusesWrongStates(t *testing.T) {
	r := newReceiver(t)
	if _, ok := r.Repair(5); ok {
		t.Fatal("unknown TPDU")
	}
	// Healthy TPDU: nothing to repair.
	frags, ed := buildTPDU(t, 3, 24, 6)
	ingestAll(t, r, frags)
	_ = r.Ingest(&ed)
	if _, ok := r.Repair(3); ok {
		t.Fatal("OK TPDU must not repair")
	}
}

// TestRepairRandomized: any single bit flip anywhere in the data is
// repairable; the repaired stream always matches the ground truth.
func TestRepairRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		pos := rng.Intn(64 * 4)
		bit := byte(1 << rng.Intn(8))
		r, stream, clean, tid := runCorrupted(t, int64(trial+10), func(s []byte) {
			s[pos] ^= bit
		})
		cor, ok := r.Repair(tid)
		if !ok {
			t.Fatalf("trial %d: flip at byte %d not repaired", trial, pos)
		}
		buf := make([]byte, (5000+64)*4)
		copy(buf[5000*4:], stream)
		cor.Apply(buf, 4)
		if !bytes.Equal(buf[5000*4:], clean) {
			t.Fatalf("trial %d: stream not restored", trial)
		}
	}
}

// TestRepairOddElementSize: SIZE=5 elements pad to two symbols; a
// flip within the real bytes is still locatable and Apply clips to
// the element.
func TestRepairOddElementSize(t *testing.T) {
	const tid = 4
	orig := makeTPDU(tid, 20, 5, 3) // SIZE 5 -> spe 2
	clean := append([]byte(nil), orig.Payload...)
	l := DefaultLayout()
	par, err := Encode(l, []chunk.Chunk{orig})
	if err != nil {
		t.Fatal(err)
	}
	ed := EDChunk(orig.C.ID, tid, orig.C.SN, par)
	// Corrupt byte 4 of element 7: second symbol of the element,
	// first (and only real) byte.
	orig.Payload[7*5+4] ^= 0x3C
	r := newReceiver(t)
	o := orig
	_ = r.Ingest(&o)
	_ = r.Ingest(&ed)
	cor, ok := r.Repair(tid)
	if !ok {
		t.Fatal("odd-size single-symbol error must repair")
	}
	if cor.TSN != 7 || cor.Offset != 4 {
		t.Fatalf("correction = %+v", cor)
	}
	buf := make([]byte, (5000+20)*5)
	copy(buf[5000*5:], orig.Payload)
	cor.Apply(buf, 5)
	if !bytes.Equal(buf[5000*5:], clean) {
		t.Fatal("odd-size Apply failed")
	}
}

func TestApplyClipsBuffer(t *testing.T) {
	cor := Correction{CSN: 10, Offset: 0, XOR: 0xFFFFFFFF}
	short := make([]byte, 42) // element 10 (size 4) starts at byte 40; only 2 bytes present
	cor.Apply(short, 4)
	if short[40] != 0xFF || short[41] != 0xFF {
		t.Fatal("in-buffer bytes must be corrected")
	}
}

func BenchmarkRepair(b *testing.B) {
	const tid = 9
	orig := makeTPDU(tid, 64, 4, 1)
	l := DefaultLayout()
	par, _ := Encode(l, []chunk.Chunk{orig})
	ed := EDChunk(orig.C.ID, tid, orig.C.SN, par)
	orig.Payload[100] ^= 0x5A
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := NewReceiver(l)
		o := orig
		_ = r.Ingest(&o)
		_ = r.Ingest(&ed)
		if _, ok := r.Repair(tid); !ok {
			b.Fatal("repair failed")
		}
	}
}
