package errdet

import (
	"math/rand"
	"testing"

	"chunks/internal/chunk"
)

// buildTPDU returns the fragments of one TPDU (fragmented with the
// given per-chunk element budget) plus its ED chunk.
func buildTPDU(t *testing.T, tid uint32, elems, perFrag int) ([]chunk.Chunk, chunk.Chunk) {
	t.Helper()
	orig := makeTPDU(tid, elems, 4, int64(tid))
	l := DefaultLayout()
	par, err := Encode(l, []chunk.Chunk{orig})
	if err != nil {
		t.Fatal(err)
	}
	frags, err := orig.SplitToFit(chunk.HeaderSize + perFrag*4)
	if err != nil {
		t.Fatal(err)
	}
	return frags, EDChunk(orig.C.ID, tid, orig.C.SN, par)
}

func ingestAll(t *testing.T, r *Receiver, chs []chunk.Chunk) {
	t.Helper()
	for i := range chs {
		if err := r.Ingest(&chs[i]); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
}

func newReceiver(t *testing.T) *Receiver {
	t.Helper()
	r, err := NewReceiver(DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReceiverHappyPathInOrder(t *testing.T) {
	frags, ed := buildTPDU(t, 1, 40, 8)
	r := newReceiver(t)
	ingestAll(t, r, frags)
	if r.Verdict(1) != VerdictPending {
		t.Fatal("verdict must be pending before the ED chunk")
	}
	_ = r.Ingest(&ed)
	if r.Verdict(1) != VerdictOK {
		t.Fatalf("verdict = %v, findings: %v", r.Verdict(1), r.Findings())
	}
	if len(r.Findings()) != 0 {
		t.Fatalf("unexpected findings: %v", r.Findings())
	}
}

// TestReceiverDisordered: verification succeeds over ANY arrival
// order, including the ED chunk arriving first — the "processing of
// disordered data" the whole paper is about.
func TestReceiverDisordered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		frags, ed := buildTPDU(t, 1, 40, 7)
		all := append(append([]chunk.Chunk{}, frags...), ed)
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		r := newReceiver(t)
		ingestAll(t, r, all)
		if r.Verdict(1) != VerdictOK {
			t.Fatalf("trial %d: verdict = %v, findings: %v", trial, r.Verdict(1), r.Findings())
		}
	}
}

// TestReceiverDuplicates: retransmitted chunks (same identifiers, per
// Section 3.3) must not disturb the incremental parity.
func TestReceiverDuplicates(t *testing.T) {
	frags, ed := buildTPDU(t, 1, 40, 8)
	r := newReceiver(t)
	ingestAll(t, r, frags)
	ingestAll(t, r, frags) // full retransmission
	_ = r.Ingest(&ed)
	_ = r.Ingest(&ed) // duplicate ED
	if r.Verdict(1) != VerdictOK {
		t.Fatalf("verdict = %v, findings: %v", r.Verdict(1), r.Findings())
	}
}

// TestReceiverOverlappingRetransmission: a retransmission with
// DIFFERENT fragmentation boundaries (re-fragmented on a new route)
// partially overlaps data already received; only the fresh parts may
// be accumulated.
func TestReceiverOverlappingRetransmission(t *testing.T) {
	orig := makeTPDU(2, 48, 4, 2)
	l := DefaultLayout()
	par, _ := Encode(l, []chunk.Chunk{orig})
	ed := EDChunk(orig.C.ID, 2, orig.C.SN, par)

	fragsA, _ := orig.SplitToFit(chunk.HeaderSize + 7*4)
	fragsB, _ := orig.SplitToFit(chunk.HeaderSize + 11*4)

	r := newReceiver(t)
	// Lose half of A's fragments, then "retransmit" as B's framing.
	for i := range fragsA {
		if i%2 == 0 {
			_ = r.Ingest(&fragsA[i])
		}
	}
	ingestAll(t, r, fragsB)
	_ = r.Ingest(&ed)
	if r.Verdict(2) != VerdictOK {
		t.Fatalf("verdict = %v, findings: %v", r.Verdict(2), r.Findings())
	}
}

func TestReceiverLossDetected(t *testing.T) {
	frags, ed := buildTPDU(t, 1, 40, 8)
	r := newReceiver(t)
	for i := range frags {
		if i == 2 {
			continue // lost fragment
		}
		_ = r.Ingest(&frags[i])
	}
	_ = r.Ingest(&ed)
	if r.Verdict(1) != VerdictPending {
		t.Fatal("incomplete TPDU must stay pending")
	}
	if miss := r.Missing(1); len(miss) != 1 {
		t.Fatalf("Missing = %v", miss)
	}
	verdicts := r.Finalize()
	if verdicts[1] != VerdictReassembly {
		t.Fatalf("finalized verdict = %v", verdicts[1])
	}
}

func TestReceiverLostEDChunk(t *testing.T) {
	frags, _ := buildTPDU(t, 1, 40, 8)
	r := newReceiver(t)
	ingestAll(t, r, frags)
	verdicts := r.Finalize()
	if verdicts[1] != VerdictReassembly {
		t.Fatalf("verdict without ED chunk = %v", verdicts[1])
	}
}

func TestReceiverDataCorruption(t *testing.T) {
	frags, ed := buildTPDU(t, 1, 40, 8)
	frags[3].Payload = append([]byte(nil), frags[3].Payload...)
	frags[3].Payload[0] ^= 0xFF
	r := newReceiver(t)
	ingestAll(t, r, frags)
	_ = r.Ingest(&ed)
	if r.Verdict(1) != VerdictEDMismatch {
		t.Fatalf("verdict = %v", r.Verdict(1))
	}
}

func TestReceiverCSNCorruption(t *testing.T) {
	frags, ed := buildTPDU(t, 1, 40, 8)
	frags[3].C.SN += 5 // breaks C.SN - T.SN constancy
	r := newReceiver(t)
	ingestAll(t, r, frags)
	_ = r.Ingest(&ed)
	found := false
	for _, f := range r.Findings() {
		if f.Class == VerdictConsistency {
			found = true
		}
	}
	if !found {
		t.Fatalf("C.SN corruption must trip the consistency check: %v", r.Findings())
	}
}

func TestReceiverXSNCorruption(t *testing.T) {
	frags, ed := buildTPDU(t, 1, 40, 8)
	frags[3].X.SN += 2 // breaks C.SN - X.SN constancy
	r := newReceiver(t)
	ingestAll(t, r, frags)
	_ = r.Ingest(&ed)
	found := false
	for _, f := range r.Findings() {
		if f.Class == VerdictConsistency {
			found = true
		}
	}
	if !found {
		t.Fatalf("X.SN corruption must trip the consistency check: %v", r.Findings())
	}
}

func TestReceiverMultipleTPDUs(t *testing.T) {
	r := newReceiver(t)
	var eds []chunk.Chunk
	for tid := uint32(1); tid <= 4; tid++ {
		frags, ed := buildTPDU(t, tid, 24, 5)
		ingestAll(t, r, frags)
		eds = append(eds, ed)
	}
	ingestAll(t, r, eds)
	for tid := uint32(1); tid <= 4; tid++ {
		if r.Verdict(tid) != VerdictOK {
			t.Fatalf("TPDU %d verdict = %v", tid, r.Verdict(tid))
		}
	}
}

func TestReceiverXComplete(t *testing.T) {
	frags, ed := buildTPDU(t, 1, 40, 8)
	xid := frags[0].X.ID
	r := newReceiver(t)
	if r.XComplete(xid) {
		t.Fatal("X PDU cannot be complete before data")
	}
	ingestAll(t, r, frags)
	_ = r.Ingest(&ed)
	if !r.XComplete(xid) {
		t.Fatal("X PDU must be complete")
	}
}

func TestReceiverIgnoresTransportControl(t *testing.T) {
	r := newReceiver(t)
	sig := chunk.Chunk{Type: chunk.TypeSignal, Size: 1, Len: 1, Payload: []byte{1}}
	ack := chunk.Chunk{Type: chunk.TypeAck, Size: 1, Len: 1, Payload: []byte{1}}
	if err := r.Ingest(&sig); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest(&ack); err != nil {
		t.Fatal(err)
	}
	bad := chunk.Chunk{Type: chunk.Type(99), Size: 1, Len: 1, Payload: []byte{1}}
	if err := r.Ingest(&bad); err == nil {
		t.Fatal("unknown type must error")
	}
}

func TestReceiverMalformedED(t *testing.T) {
	r := newReceiver(t)
	bad := chunk.Chunk{Type: chunk.TypeED, Size: 4, Len: 1, Payload: []byte{1, 2, 3, 4}}
	_ = r.Ingest(&bad)
	fs := r.Findings()
	if len(fs) != 1 || fs[0].Class != VerdictReassembly {
		t.Fatalf("findings = %v", fs)
	}
}

func TestReceiverLateChunkAfterFinalize(t *testing.T) {
	frags, ed := buildTPDU(t, 1, 40, 8)
	r := newReceiver(t)
	ingestAll(t, r, frags)
	_ = r.Ingest(&ed)
	// Late duplicates after the verdict must be inert.
	_ = r.Ingest(&frags[0])
	_ = r.Ingest(&ed)
	if r.Verdict(1) != VerdictOK {
		t.Fatalf("verdict = %v", r.Verdict(1))
	}
}

// TestReceiverSpansTPDUs: an external PDU spanning two TPDUs (like
// Figure 6's PDU C) completes only when its tail arrives in the next
// TPDU, while both TPDUs verify independently.
func TestReceiverSpansTPDUs(t *testing.T) {
	const cid, xid = 0xA, 0x77
	l := DefaultLayout()
	mk := func(tid uint32, csn, xsn uint64, tst, xst bool, n int, seed int64) chunk.Chunk {
		rng := rand.New(rand.NewSource(seed))
		p := make([]byte, n*4)
		rng.Read(p)
		return chunk.Chunk{
			Type: chunk.TypeData, Size: 4, Len: uint32(n),
			C:       chunk.Tuple{ID: cid, SN: csn},
			T:       chunk.Tuple{ID: tid, SN: 0, ST: tst},
			X:       chunk.Tuple{ID: xid, SN: xsn, ST: xst},
			Payload: p,
		}
	}
	// TPDU 1: elements 0-9 of X PDU (X continues). TPDU 2: elements
	// 10-15, X ends.
	t1 := mk(1, 100, 0, true, false, 10, 1)
	t2 := mk(2, 110, 10, true, true, 6, 2)
	p1, err := Encode(l, []chunk.Chunk{t1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Encode(l, []chunk.Chunk{t2})
	if err != nil {
		t.Fatal(err)
	}
	r := newReceiver(t)
	_ = r.Ingest(&t1)
	ed1 := EDChunk(cid, 1, 100, p1)
	_ = r.Ingest(&ed1)
	if r.Verdict(1) != VerdictOK {
		t.Fatalf("TPDU 1: %v, findings %v", r.Verdict(1), r.Findings())
	}
	if r.XComplete(xid) {
		t.Fatal("X PDU must not be complete after TPDU 1")
	}
	_ = r.Ingest(&t2)
	ed2 := EDChunk(cid, 2, 110, p2)
	_ = r.Ingest(&ed2)
	if r.Verdict(2) != VerdictOK {
		t.Fatalf("TPDU 2: %v, findings %v", r.Verdict(2), r.Findings())
	}
	if !r.XComplete(xid) {
		t.Fatal("X PDU must complete with TPDU 2")
	}
	if len(r.Finalize()) != 2 {
		t.Fatal("two TPDUs expected")
	}
	for _, f := range r.Findings() {
		t.Fatalf("unexpected finding: %v", f)
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictPending: "pending", VerdictOK: "ok",
		VerdictEDMismatch:  "error-detection-code",
		VerdictConsistency: "consistency-check",
		VerdictReassembly:  "reassembly-error",
		Verdict(42):        "unknown",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
	if VerdictOK.Detected() || VerdictPending.Detected() {
		t.Fatal("ok/pending are not detections")
	}
	if !VerdictEDMismatch.Detected() || !VerdictConsistency.Detected() || !VerdictReassembly.Detected() {
		t.Fatal("error verdicts are detections")
	}
}

func TestNewReceiverBadLayout(t *testing.T) {
	if _, err := NewReceiver(Layout{}); err == nil {
		t.Fatal("invalid layout must be rejected")
	}
}

func BenchmarkReceiverTPDU64K(b *testing.B) {
	orig := makeTPDU(1, 16384, 4, 1) // 64 KiB TPDU
	l := DefaultLayout()
	par, err := Encode(l, []chunk.Chunk{orig})
	if err != nil {
		b.Fatal(err)
	}
	ed := EDChunk(orig.C.ID, 1, orig.C.SN, par)
	frags, err := orig.SplitToFit(1400)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(orig.Payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := NewReceiver(l)
		for j := range frags {
			_ = r.Ingest(&frags[j])
		}
		_ = r.Ingest(&ed)
		if r.Verdict(1) != VerdictOK {
			b.Fatal("verification failed")
		}
	}
}

func BenchmarkEncodeTPDU64K(b *testing.B) {
	orig := makeTPDU(1, 16384, 4, 1)
	l := DefaultLayout()
	b.SetBytes(int64(len(orig.Payload)))
	for i := 0; i < b.N; i++ {
		if _, err := Encode(l, []chunk.Chunk{orig}); err != nil {
			b.Fatal(err)
		}
	}
}
