package errdet

import (
	"math/rand"
	"testing"

	"chunks/internal/chunk"
	"chunks/internal/gf"
	"chunks/internal/wsc"
)

// makeTPDU builds a single-chunk TPDU: elems elements of size bytes,
// X framing = one external PDU aligned with the TPDU.
func makeTPDU(tid uint32, elems int, size uint16, seed int64) chunk.Chunk {
	rng := rand.New(rand.NewSource(seed))
	payload := make([]byte, elems*int(size))
	rng.Read(payload)
	return chunk.Chunk{
		Type: chunk.TypeData, Size: size, Len: uint32(elems),
		C:       chunk.Tuple{ID: 0xA, SN: 5000},
		T:       chunk.Tuple{ID: tid, SN: 0, ST: true},
		X:       chunk.Tuple{ID: 0xC0 + tid, SN: 0, ST: true},
		Payload: payload,
	}
}

// TestEncodeFragmentationInvariance is the core Section 4 property:
// the invariant parity is IDENTICAL whether computed over the original
// chunk or over any fragmentation of it.
func TestEncodeFragmentationInvariance(t *testing.T) {
	l := DefaultLayout()
	rng := rand.New(rand.NewSource(17))
	for _, size := range []uint16{1, 3, 4, 5, 8} {
		orig := makeTPDU(1, 60, size, int64(size))
		want, err := Encode(l, []chunk.Chunk{orig})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			pieces := []chunk.Chunk{orig}
			for round := 0; round < 4; round++ {
				var next []chunk.Chunk
				for _, p := range pieces {
					if p.Len > 1 && rng.Intn(2) == 0 {
						at := 1 + uint32(rng.Intn(int(p.Len-1)))
						a, b, err := p.Split(at)
						if err != nil {
							t.Fatal(err)
						}
						next = append(next, a, b)
					} else {
						next = append(next, p)
					}
				}
				pieces = next
			}
			rng.Shuffle(len(pieces), func(i, j int) { pieces[i], pieces[j] = pieces[j], pieces[i] })
			got, err := Encode(l, pieces)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("size=%d trial=%d: parity over %d fragments %+v != whole %+v",
					size, trial, len(pieces), got, want)
			}
		}
	}
}

// TestFigure6XIDEncoding (experiment F6) reproduces Figure 6: a TPDU
// containing pieces of three external PDUs. A's X.ID is encoded where
// A's X.ST fires, B's where B's X.ST fires, and C's — which begins but
// does not end in the TPDU — where the TPDU's T.ST fires.
func TestFigure6XIDEncoding(t *testing.T) {
	const (
		xA, xB, xC = 0xA1, 0xB2, 0xC3
		tid        = 7
		cid        = 0xA
	)
	l := DefaultLayout()
	// 9 elements: A covers T.SN 0-2 (A ends at 2), B covers 3-5 (ends
	// at 5), C covers 6-8 (continues beyond the TPDU; T.ST at 8).
	mk := func(tsn, n uint64, xid uint32, xsn uint64, xst, tst bool) chunk.Chunk {
		p := make([]byte, n*4)
		for i := range p {
			p[i] = byte(tsn)*16 + byte(i)
		}
		return chunk.Chunk{
			Type: chunk.TypeData, Size: 4, Len: uint32(n),
			C:       chunk.Tuple{ID: cid, SN: 100 + tsn},
			T:       chunk.Tuple{ID: tid, SN: tsn, ST: tst},
			X:       chunk.Tuple{ID: xid, SN: xsn, ST: xst},
			Payload: p,
		}
	}
	chs := []chunk.Chunk{
		mk(0, 3, xA, 50, true, false), // tail of A; X.ST fires at T.SN 2
		mk(3, 3, xB, 0, true, false),  // all of B; X.ST fires at T.SN 5
		mk(6, 3, xC, 0, false, true),  // head of C; T.ST fires at T.SN 8
	}
	got, err := Encode(l, chs)
	if err != nil {
		t.Fatal(err)
	}

	// Hand-build the expected parity from wsc primitives.
	var a wsc.Accumulator
	for _, c := range chs {
		if err := a.AddBytes(c.T.SN, c.Payload); err != nil { // SIZE=4: spe=1
			t.Fatal(err)
		}
	}
	// Trigger pairs: (A,1)@2*2+16387, (B,1)@2*5+16387, (C,0)@2*8+16387.
	pairs := []struct {
		tsn uint64
		xid uint32
		xst uint32
	}{{2, xA, 1}, {5, xB, 1}, {8, xC, 0}}
	for _, p := range pairs {
		pos := 2*p.tsn + 16387
		if err := a.AddSymbol(pos, p.xid); err != nil {
			t.Fatal(err)
		}
		if err := a.AddSymbol(pos+1, p.xst); err != nil {
			t.Fatal(err)
		}
	}
	// Identity symbols.
	_ = a.AddSymbol(16384, tid)
	_ = a.AddSymbol(16385, cid)
	_ = a.AddSymbol(16386, 0) // C.ST clear

	if got != a.Parity() {
		t.Fatalf("Encode = %+v, hand-computed = %+v", got, a.Parity())
	}

	// Each X.ID must appear EXACTLY once in the code space: encoding a
	// fourth chunk that (wrongly) re-triggers A would change the
	// parity — guard that the three-pair encoding is what we think.
	var b wsc.Accumulator
	_ = b.AddSymbol(2*2+16387, xA)
	if gf.Add(got.P1, 0) == b.Parity().P1 {
		t.Fatal("sanity: pair contributions must be position-weighted")
	}
}

func TestEncodeRejects(t *testing.T) {
	l := DefaultLayout()
	if _, err := Encode(l, nil); err == nil {
		t.Fatal("empty TPDU must fail")
	}
	ed := EDChunk(1, 2, 0, wsc.Parity{})
	if _, err := Encode(l, []chunk.Chunk{ed}); err == nil {
		t.Fatal("control chunk must fail")
	}
	a := makeTPDU(1, 4, 4, 1)
	b := makeTPDU(2, 4, 4, 2) // different T.ID
	if _, err := Encode(l, []chunk.Chunk{a, b}); err == nil {
		t.Fatal("mixed TPDUs must fail")
	}
	dup := []chunk.Chunk{a, a}
	if _, err := Encode(l, dup); err == nil {
		t.Fatal("overlapping chunks must fail")
	}
	if _, err := Encode(Layout{}, []chunk.Chunk{a}); err == nil {
		t.Fatal("invalid layout must fail")
	}
	// TPDU larger than the data region.
	big := makeTPDU(1, 20000, 4, 3)
	if _, err := Encode(l, []chunk.Chunk{big}); err == nil {
		t.Fatal("oversized TPDU must fail")
	}
}

// TestEncodeCSTEncoded: a set C.ST changes the parity via position
// 16386.
func TestEncodeCSTEncoded(t *testing.T) {
	l := DefaultLayout()
	a := makeTPDU(1, 8, 4, 9)
	p1, err := Encode(l, []chunk.Chunk{a})
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	b.C.ST = true
	p2, err := Encode(l, []chunk.Chunk{b})
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("C.ST must be covered by the code")
	}
	diff := p1.Xor(p2)
	if diff.P0 != 1 || diff.P1 != gf.AlphaPow(16386) {
		t.Fatalf("C.ST difference not at position 16386: %+v", diff)
	}
}

func TestEDChunkRoundTrip(t *testing.T) {
	par := wsc.Parity{P0: 0xDEAD, P1: 0xBEEF}
	ed := EDChunk(0xA, 7, 123, par)
	if err := ed.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseED(&ed)
	if err != nil || got != par {
		t.Fatalf("ParseED = %+v, %v", got, err)
	}
	bad := makeTPDU(1, 4, 4, 1)
	if _, err := ParseED(&bad); err != ErrNotED {
		t.Fatalf("want ErrNotED, got %v", err)
	}
}

// TestEncodeLargeOddElementSize: elements bigger than the stack pad
// buffer (size > 32, not a multiple of 4) must encode without panic
// and stay fragmentation-invariant.
func TestEncodeLargeOddElementSize(t *testing.T) {
	l := DefaultLayout()
	orig := makeTPDU(3, 10, 37, 5) // spe = 10 > the 8-symbol stack buffer
	want, err := Encode(l, []chunk.Chunk{orig})
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := orig.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Encode(l, []chunk.Chunk{b, a})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("large odd-size elements broke fragmentation invariance")
	}
	// And through the receiver.
	ed := EDChunk(orig.C.ID, 3, orig.C.SN, want)
	r := newReceiverForEncode(t)
	_ = r.Ingest(&a)
	_ = r.Ingest(&b)
	_ = r.Ingest(&ed)
	if r.Verdict(3) != VerdictOK {
		t.Fatalf("verdict %v", r.Verdict(3))
	}
}

func newReceiverForEncode(t *testing.T) *Receiver {
	t.Helper()
	r, err := NewReceiver(DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	return r
}
