package errdet_test

import (
	"fmt"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
)

// Example shows the complete Section 4 flow: encode a TPDU's
// invariant parity, fragment the TPDU, verify the disordered
// fragments incrementally, and catch a corruption.
func Example() {
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	tpdu := chunk.Chunk{
		Type: chunk.TypeData, Size: 4, Len: 16,
		C:       chunk.Tuple{ID: 0xA, SN: 100},
		T:       chunk.Tuple{ID: 7, SN: 0, ST: true},
		X:       chunk.Tuple{ID: 3, SN: 0, ST: true},
		Payload: payload,
	}
	layout := errdet.DefaultLayout()
	parity, _ := errdet.Encode(layout, []chunk.Chunk{tpdu})
	ed := errdet.EDChunk(tpdu.C.ID, tpdu.T.ID, tpdu.C.SN, parity)

	frags, _ := tpdu.SplitToFit(chunk.HeaderSize + 16)
	recv, _ := errdet.NewReceiver(layout)
	// Reverse order: chunks verify no matter how they arrive.
	_ = recv.Ingest(&ed)
	for i := len(frags) - 1; i >= 0; i-- {
		_ = recv.Ingest(&frags[i])
	}
	fmt.Println("clean:", recv.Verdict(7))

	// One flipped payload bit in one fragment.
	recv2, _ := errdet.NewReceiver(layout)
	bad := frags[1].Clone()
	bad.Payload[0] ^= 1
	_ = recv2.Ingest(&frags[0])
	_ = recv2.Ingest(&bad)
	for i := 2; i < len(frags); i++ {
		_ = recv2.Ingest(&frags[i])
	}
	_ = recv2.Ingest(&ed)
	fmt.Println("corrupted:", recv2.Verdict(7))

	// The WSC-2 syndrome localizes a single bad symbol: repair it
	// instead of retransmitting.
	cor, ok := recv2.Repair(7)
	fmt.Printf("repaired: %v (element %d), verdict now %v\n", ok, cor.TSN, recv2.Verdict(7))
	// Output:
	// clean: ok
	// corrupted: error-detection-code
	// repaired: true (element 4), verdict now ok
}
