package errdet

import (
	"errors"
	"fmt"
	"sort"

	"chunks/internal/chunk"
	"chunks/internal/telemetry"
	"chunks/internal/vr"
	"chunks/internal/wsc"
)

// A Finding is one detected anomaly, classified by the Table 1
// mechanism that caught it.
type Finding struct {
	Class Verdict
	TID   uint32 // TPDU involved, when known
	Err   error
}

func (f Finding) String() string { return fmt.Sprintf("%v (TPDU %d): %v", f.Class, f.TID, f.Err) }

// tpduState is the receive-side verification state of one TPDU.
type tpduState struct {
	blk       blockAccumulator
	t         vr.PDU
	size      uint16
	cid       uint32
	haveMeta  bool
	delta     uint64 // C.SN - T.SN, constant across the TPDU's chunks
	cst       bool   // C.ST observed on the TPDU boundary element
	want      wsc.Parity
	haveWant  bool
	finalized bool
	verdict   Verdict
}

// reset returns the state to the fresh-TPDU condition, keeping the
// virtual-reassembly interval capacity — the recycling half of the
// freelist that makes long-running receivers allocation-free per TPDU.
func (t *tpduState) reset(layout Layout) {
	t.t.Reset()
	t.blk = blockAccumulator{layout: layout}
	t.size, t.cid, t.haveMeta = 0, 0, false
	t.delta, t.cst = 0, false
	t.want, t.haveWant = wsc.Parity{}, false
	t.finalized, t.verdict = false, VerdictPending
}

// xState is the connection-scope verification state of one external
// PDU (external PDUs may span TPDUs, so they live beside, not inside,
// tpduState).
type xState struct {
	pdu       vr.PDU
	delta     uint64 // C.SN - X.SN, constant across the external PDU's chunks
	haveDelta bool
}

// A Receiver performs incremental end-to-end verification for one
// connection: chunks are ingested in ANY order, exactly as they fall
// out of arriving packets, with no reordering or physical reassembly.
// Each TPDU's parity is accumulated as fresh data arrives; when the
// TPDU's virtual reassembly completes and its ED chunk is in hand, the
// parities are compared.
type Receiver struct {
	layout   Layout
	tpdus    map[uint32]*tpduState
	xs       map[uint32]*xState
	findings []Finding
	// free and xfree hold retired state records for reuse (see Retire
	// and RetireX): a steady verify → ack → retire cycle allocates no
	// per-TPDU or per-frame state.
	free  []*tpduState
	xfree []*xState

	// policy is the conflicting-overlap policy applied at T-level
	// virtual reassembly; prior supplies the previously accepted bytes
	// for an element interval in connection-stream (C.SN) space.
	// Conflict detection is active only when prior is set — virtual
	// reassembly stores no payload, so the payload owner must lend its
	// view (Section 3.3).
	policy vr.Policy
	prior  vr.View
	// shifted is the T.SN → C.SN shifting adapter over prior, built
	// once in SetOverlapPolicy so the per-chunk hot path does not
	// allocate a fresh closure; viewDelta is the shift it applies.
	shifted   vr.View
	viewDelta uint64

	// Checksum-kernel instruments (nil until SetTelemetry): how many
	// payload bytes went through the WSC-2 kernels and the size
	// distribution of the contiguous runs they arrived in — the run
	// length decides which kernel tier (scalar, table, SIMD) does the
	// work, so the histogram is the capacity-planning view of the P9
	// experiment.
	wscBytes    *telemetry.Counter
	wscRunBytes *telemetry.Histogram
	// Overlap-policy instruments: conflicting-overlap runs observed and
	// chunks refused by a rejecting policy, within this receiver's
	// (hence this policy's) scope.
	overlapConflicts *telemetry.Counter
	overlapRejects   *telemetry.Counter
}

// SetOverlapPolicy selects the conflicting-overlap policy and installs
// the prior-bytes view that feeds conflict detection. The view is
// queried with element intervals in connection-stream (C.SN) space and
// must return the bytes previously placed there, or nil to decline.
// With a nil view conflicts are undetectable and every policy behaves
// like vr.FirstWins (the paper's silent duplicate discard).
func (r *Receiver) SetOverlapPolicy(pol vr.Policy, prior vr.View) {
	r.policy = pol
	r.prior = prior
	if prior == nil {
		r.shifted = nil
		return
	}
	r.shifted = func(iv vr.Interval) []byte {
		return r.prior(vr.Interval{Lo: iv.Lo + r.viewDelta, Hi: iv.Hi + r.viewDelta})
	}
}

// SetTelemetry attaches checksum instruments resolved from the sink's
// scope: counter "wsc_bytes" and histogram "wsc_run_bytes". Safe to
// call with the zero Sink (disables instrumentation).
func (r *Receiver) SetTelemetry(tel telemetry.Sink) {
	if !tel.Enabled() {
		r.wscBytes, r.wscRunBytes = nil, nil
		r.overlapConflicts, r.overlapRejects = nil, nil
		return
	}
	r.wscBytes = tel.Counter("wsc_bytes")
	r.wscRunBytes = tel.Histogram("wsc_run_bytes")
	r.overlapConflicts = tel.Counter("overlap_conflicts")
	r.overlapRejects = tel.Counter("overlap_rejects")
}

// NewReceiver returns a Receiver using the given invariant layout.
func NewReceiver(layout Layout) (*Receiver, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	return &Receiver{
		layout: layout,
		tpdus:  make(map[uint32]*tpduState),
		xs:     make(map[uint32]*xState),
	}, nil
}

//lint:hot
func (r *Receiver) tpdu(tid uint32) *tpduState {
	t := r.tpdus[tid]
	if t == nil {
		if n := len(r.free); n > 0 {
			t = r.free[n-1]
			r.free[n-1] = nil
			r.free = r.free[:n-1]
		} else {
			t = &tpduState{blk: blockAccumulator{layout: r.layout}} //lint:allow hotalloc pool miss: the steady state recycles retired TPDU records
		}
		r.tpdus[tid] = t
	}
	return t
}

func (r *Receiver) flag(class Verdict, tid uint32, format string, args ...any) {
	r.findings = append(r.findings, Finding{Class: class, TID: tid, Err: fmt.Errorf(format, args...)})
}

// Ingest processes one received chunk. Data and ED chunks are
// verified; other control types are ignored (they belong to the
// transport, not to error detection). Ingest never fails on corrupted
// content — corruption becomes findings and verdicts; the returned
// error only reports chunks this receiver cannot interpret at all.
func (r *Receiver) Ingest(c *chunk.Chunk) error {
	_, err := r.IngestFresh(c)
	return err
}

// IngestFresh is Ingest, additionally returning the chunk's FRESH
// element intervals (T.SN space) for data chunks: the sub-ranges not
// previously received and accepted by the checks. Placement must use
// exactly these ranges — the paper's duplicate-rejection rule exists
// "to prevent a corrupted duplicate from overwriting uncorrupted data
// that has already been received" (Section 3.3), and a placer that
// blindly overwrites could diverge from the verified parity.
func (r *Receiver) IngestFresh(c *chunk.Chunk) ([]vr.Interval, error) {
	fresh, _, err := r.IngestPlaced(c)
	if errors.Is(err, vr.ErrConflictingData) {
		// A policy rejection is corruption handling (a finding), not an
		// interpretation failure; IngestFresh keeps its old contract.
		err = nil
	}
	return fresh, err
}

// IngestPlaced is IngestFresh for the caller that owns the placed
// payload (the transport). Beyond fresh it returns replace: under
// vr.LastWins, the conflicting duplicate intervals whose placed bytes
// must be overwritten with c's bytes (the receiver has already swapped
// their parity contribution); nil under every other policy. When a
// rejecting policy refuses the chunk the error wraps
// vr.ErrConflictingData so the caller can escalate — tearing the
// connection down under vr.RejectConnection.
func (r *Receiver) IngestPlaced(c *chunk.Chunk) (fresh, replace []vr.Interval, err error) {
	switch c.Type {
	case chunk.TypeData:
		fresh, replace, err = r.ingestData(c)
		return fresh, replace, err
	case chunk.TypeED:
		r.ingestED(c)
		return nil, nil, nil
	case chunk.TypeSignal, chunk.TypeAck, chunk.TypeNack:
		return nil, nil, nil
	default:
		return nil, nil, chunk.ErrBadType
	}
}

func (r *Receiver) ingestData(c *chunk.Chunk) (freshOut, replaceOut []vr.Interval, errOut error) {
	t := r.tpdu(c.T.ID) //lint:allow hotalloc inlined pool miss: the steady state recycles retired TPDU records
	if t.finalized {
		if t.verdict != VerdictEDMismatch {
			return nil, nil, nil // late duplicate of a verified TPDU
		}
		// A TPDU that failed the parity compare gets a fresh chance
		// when data is retransmitted: rebuild its verification state
		// from scratch (the retransmission reuses the original
		// identifiers, Section 3.3, so the rebuild is transparent).
		t.reset(r.layout)
	}

	// Per-TPDU consistency: SIZE, C.ID and (C.SN - T.SN) must agree
	// across every chunk of the TPDU (Section 4: "If the C.SN is
	// uncorrupted, the value of (C.SN - T.SN) is constant for all
	// chunks of a TPDU").
	delta := c.C.SN - c.T.SN
	if !t.haveMeta {
		t.size, t.cid, t.delta, t.haveMeta = c.Size, c.C.ID, delta, true
	} else {
		if c.Size != t.size {
			r.flag(VerdictReassembly, c.T.ID, "SIZE %d conflicts with %d", c.Size, t.size) //lint:allow hotalloc cold finding path: the variadic call boxes its operands
			return nil, nil, nil
		}
		if c.C.ID != t.cid {
			r.flag(VerdictConsistency, c.T.ID, "C.ID %d conflicts with %d", c.C.ID, t.cid) //lint:allow hotalloc cold finding path: the variadic call boxes its operands
			return nil, nil, nil
		}
		if delta != t.delta {
			r.flag(VerdictConsistency, c.T.ID, "C.SN-T.SN %d conflicts with %d", delta, t.delta) //lint:allow hotalloc cold finding path: the variadic call boxes its operands
			return nil, nil, nil
		}
	}

	// External-PDU consistency: (C.SN - X.SN) constant per X.ID.
	x := r.xs[c.X.ID]
	xdelta := c.C.SN - c.X.SN
	if x == nil {
		if n := len(r.xfree); n > 0 {
			x = r.xfree[n-1]
			r.xfree[n-1] = nil
			r.xfree = r.xfree[:n-1]
			x.delta, x.haveDelta = xdelta, true
		} else {
			x = &xState{delta: xdelta, haveDelta: true} //lint:allow hotalloc pool miss: the steady state recycles retired external-PDU records
		}
		r.xs[c.X.ID] = x
	} else if x.haveDelta && x.delta != xdelta {
		r.flag(VerdictConsistency, c.T.ID, "C.SN-X.SN %d conflicts with %d for X.ID %d", xdelta, x.delta, c.X.ID) //lint:allow hotalloc cold finding path: the variadic call boxes its operands
		return nil, nil, nil
	}

	// Transport-level virtual reassembly with duplicate rejection and
	// the configured conflicting-overlap policy. The prior view (if
	// any) is queried in C.SN space: shift by this TPDU's verified
	// (C.SN - T.SN) delta.
	n := uint64(c.Len)
	var view vr.View
	if r.shifted != nil {
		r.viewDelta = t.delta
		view = r.shifted
	}
	fresh, conflicts, err := t.t.AddChecked(c.T.SN, n, c.T.ST, r.policy, c.Payload, int(c.Size), view)
	if len(conflicts) > 0 {
		r.overlapConflicts.Add(int64(len(conflicts)))
		for _, iv := range conflicts {
			r.flag(VerdictConsistency, c.T.ID, "overlap conflict: duplicate %v carries different bytes (%v)", iv, r.policy) //lint:allow hotalloc cold finding path: the variadic call boxes its operands
		}
	}
	if err != nil {
		if errors.Is(err, vr.ErrConflictingData) {
			r.overlapRejects.Inc()
			if r.policy == vr.RejectPDU {
				// Abandon the TPDU entirely: its state is discarded so
				// honest retransmissions rebuild it from scratch. (The
				// placed stream bytes are the caller's; retransmitted
				// fresh intervals will overwrite them.)
				delete(r.tpdus, c.T.ID)
			}
			r.flag(VerdictReassembly, c.T.ID, "T-level reassembly: %v (%v)", err, r.policy) //lint:allow hotalloc cold finding path: the variadic call boxes its operands
			return nil, nil, err
		}
		r.flag(VerdictReassembly, c.T.ID, "T-level reassembly: %v", err)
		return nil, nil, nil
	}
	if r.policy == vr.LastWins && len(conflicts) > 0 && view != nil {
		// Swap the conflicting elements' parity contribution: re-add
		// the old bytes (XOR-cancel), then add the replacement. The
		// caller overwrites the placed bytes for exactly these
		// intervals (replaceOut), keeping stream and parity in step.
		for _, iv := range conflicts {
			old := view(iv)
			if old == nil {
				continue
			}
			if err := t.blk.addRaw(iv.Lo, c.Size, old); err != nil {
				r.flag(VerdictReassembly, c.T.ID, "overlap replace: %v", err)
				return nil, nil, nil
			}
			if err := t.blk.addData(c, iv.Lo, iv.Hi); err != nil {
				r.flag(VerdictReassembly, c.T.ID, "overlap replace: %v", err)
				return nil, nil, nil
			}
			replaceOut = append(replaceOut, iv)
		}
	}

	// External-level virtual reassembly (ALF frame completion).
	if _, err := x.pdu.Add(c.X.SN, n, c.X.ST); err != nil {
		r.flag(VerdictReassembly, c.T.ID, "X-level reassembly (X.ID %d): %v", c.X.ID, err) //lint:allow hotalloc cold finding path: the variadic call boxes its operands
	}

	// Accumulate only the fresh data into the parity — processing the
	// same piece twice "may cause the checksum to be incorrect even if
	// no data corruption has occurred" (Section 3.3).
	for _, iv := range fresh {
		if err := t.blk.addData(c, iv.Lo, iv.Hi); err != nil {
			r.flag(VerdictReassembly, c.T.ID, "data outside layout: %v", err)
			return nil, nil, nil
		}
		run := int64(iv.Hi-iv.Lo) * int64(c.Size)
		r.wscBytes.Add(run)
		r.wscRunBytes.Observe(run)
	}

	// Trigger encoding: only if the trigger element (the chunk's last)
	// was fresh, so retransmissions do not cancel the pair.
	lastSN := c.T.SN + n - 1
	if freshContains(fresh, lastSN) {
		if err := t.blk.addTrigger(c); err != nil {
			r.flag(VerdictReassembly, c.T.ID, "trigger outside layout: %v", err)
			return nil, nil, nil
		}
		if c.C.ST {
			t.cst = true
		}
	}

	r.maybeFinalize(c.T.ID, t)
	return fresh, replaceOut, nil
}

func (r *Receiver) ingestED(c *chunk.Chunk) {
	par, err := ParseED(c)
	if err != nil {
		r.flag(VerdictReassembly, c.T.ID, "malformed ED chunk: %v", err)
		return
	}
	t := r.tpdu(c.T.ID) //lint:allow hotalloc inlined pool miss: the steady state recycles retired TPDU records
	if t.finalized {
		if t.verdict != VerdictEDMismatch {
			return
		}
		t.reset(r.layout)
	}
	if t.haveMeta && c.C.ID != t.cid {
		r.flag(VerdictConsistency, c.T.ID, "ED chunk C.ID %d conflicts with %d", c.C.ID, t.cid) //lint:allow hotalloc cold finding path: the variadic call boxes its operands
		return
	}
	if t.haveWant {
		if t.want != par {
			r.flag(VerdictConsistency, c.T.ID, "duplicate ED chunks disagree")
		}
		return
	}
	t.want, t.haveWant = par, true
	r.maybeFinalize(c.T.ID, t)
}

func (r *Receiver) maybeFinalize(tid uint32, t *tpduState) {
	if t.finalized || !t.haveWant || !t.t.Complete() {
		return
	}
	t.finalized = true
	if err := t.blk.addIdentity(tid, t.cid, t.cst); err != nil {
		t.verdict = VerdictReassembly
		r.flag(VerdictReassembly, tid, "identity outside layout: %v", err)
		return
	}
	if wsc.Verify(t.blk.parity(), t.want) {
		t.verdict = VerdictOK
		return
	}
	t.verdict = VerdictEDMismatch
	r.flag(VerdictEDMismatch, tid, "WSC-2 parity mismatch: got %+v want %+v", t.blk.parity(), t.want) //lint:allow hotalloc cold finding path: the variadic call boxes its operands
}

func freshContains(ivs []vr.Interval, sn uint64) bool {
	for _, iv := range ivs {
		if sn >= iv.Lo && sn < iv.Hi {
			return true
		}
	}
	return false
}

// ResetTPDU discards all verification state of one TPDU so that a
// retransmission can rebuild it from scratch. Detection state (the
// findings log) is retained. This is the recovery escape hatch for a
// TPDU whose state was poisoned by corruption on its FIRST-arriving
// chunk (which seeds the consistency baselines) or rebuilt from a
// corrupted duplicate: the receiver requests a full retransmission
// and starts the TPDU over.
func (r *Receiver) ResetTPDU(tid uint32) {
	r.Retire(tid)
}

// Retire releases the verification state of a TPDU the caller is done
// with (typically verified and acknowledged), recycling the record for
// the next TPDU. Together with the map's insert/delete balance this
// bounds receiver memory over a long connection and keeps the steady
// receive path allocation-free. A later duplicate of a retired TPDU
// restarts tracking from scratch; callers that care (the transport)
// must drop such chunks themselves.
//
//lint:hot
func (r *Receiver) Retire(tid uint32) {
	t := r.tpdus[tid]
	if t == nil {
		return
	}
	delete(r.tpdus, tid)
	t.reset(r.layout)
	r.free = append(r.free, t)
}

// RetireX releases the virtual-reassembly state of one external PDU
// (after its ALF frame has been delivered) — the X-level half of the
// memory bound Retire provides at T level.
//
//lint:hot
func (r *Receiver) RetireX(xid uint32) {
	x := r.xs[xid]
	if x == nil {
		return
	}
	delete(r.xs, xid)
	x.pdu.Reset()
	x.delta, x.haveDelta = 0, false
	r.xfree = append(r.xfree, x)
}

// TPDUExtent returns the connection-stream (C.SN) element range
// [lo, hi) occupied by a TPDU whose end is known — what a stream
// manager needs to trim delivered bytes when the TPDU retires. ok is
// false when the TPDU is unknown or its T.ST element has not arrived.
//
//lint:hot
func (r *Receiver) TPDUExtent(tid uint32) (lo, hi uint64, ok bool) {
	t := r.tpdus[tid]
	if t == nil || !t.haveMeta {
		return 0, 0, false
	}
	end, haveEnd := t.t.End()
	if !haveEnd {
		return 0, 0, false
	}
	return t.delta, t.delta + end, true
}

// Verdict returns the current verdict for a TPDU.
func (r *Receiver) Verdict(tid uint32) Verdict {
	t := r.tpdus[tid]
	if t == nil || !t.finalized {
		return VerdictPending
	}
	return t.verdict
}

// Findings returns every anomaly detected so far, in detection order.
func (r *Receiver) Findings() []Finding {
	return append([]Finding(nil), r.findings...)
}

// TPDUFindings returns the findings attributed to one TPDU.
func (r *Receiver) TPDUFindings(tid uint32) []Finding {
	var out []Finding
	for _, f := range r.findings {
		if f.TID == tid {
			out = append(out, f)
		}
	}
	return out
}

// XComplete reports whether external PDU xid has fully arrived — the
// ALF-frame-ready signal an application consumes.
func (r *Receiver) XComplete(xid uint32) bool {
	x := r.xs[xid]
	return x != nil && x.pdu.Complete()
}

// TPDUStatus reports the virtual-reassembly state of a TPDU for
// retransmission decisions: whether its end (T.ST) has been seen, and
// one past the highest element received.
func (r *Receiver) TPDUStatus(tid uint32) (haveEnd bool, high uint64) {
	t := r.tpdus[tid]
	if t == nil {
		return false, 0
	}
	_, haveEnd = t.t.End()
	return haveEnd, t.t.High()
}

// Fragments returns the current interval count of TPDU tid's virtual
// reassembly — the per-TPDU state footprint the §3.3 discussion
// bounds. 0 for unknown TPDUs.
func (r *Receiver) Fragments(tid uint32) int {
	t := r.tpdus[tid]
	if t == nil {
		return 0
	}
	return t.t.Fragments()
}

// Missing returns the T.SN gaps of an unfinished TPDU (NACK input).
func (r *Receiver) Missing(tid uint32) []vr.Interval {
	t := r.tpdus[tid]
	if t == nil {
		return nil
	}
	return t.t.Missing()
}

// Finalize ends the receive phase (end of input or retransmission
// timeout): every TPDU still pending is flagged as a reassembly
// failure, per the paper's model where reassembly "never completes".
// It returns the final verdict per TPDU.
func (r *Receiver) Finalize() map[uint32]Verdict {
	out := make(map[uint32]Verdict, len(r.tpdus))
	// Walk TPDUs in sorted order: the findings appended below are part
	// of the receiver's observable output, and map order would make
	// their sequence differ run to run (determinism invariant).
	tids := make([]uint32, 0, len(r.tpdus))
	for tid := range r.tpdus {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		t := r.tpdus[tid]
		if !t.finalized {
			t.finalized = true
			t.verdict = VerdictReassembly
			switch {
			case !t.t.Complete():
				r.flag(VerdictReassembly, tid, "input ended with TPDU incomplete; missing %v", t.t.Missing())
			default:
				r.flag(VerdictReassembly, tid, "input ended without ED chunk")
			}
		}
		out[tid] = t.verdict
	}
	// External PDUs with gaps (or a known end not reached) are
	// reassembly failures too: the ALF frame never becomes ready.
	// Sorted for the same reason as the TPDU walk above.
	xids := make([]uint32, 0, len(r.xs))
	for xid := range r.xs {
		xids = append(xids, xid)
	}
	sort.Slice(xids, func(i, j int) bool { return xids[i] < xids[j] })
	for _, xid := range xids {
		x := r.xs[xid]
		if end, ok := x.pdu.End(); ok && !x.pdu.Complete() {
			r.findings = append(r.findings, Finding{
				Class: VerdictReassembly,
				Err:   fmt.Errorf("external PDU %d incomplete: %d of %d elements", xid, x.pdu.Received(), end),
			})
		} else if !ok && len(x.pdu.Missing()) > 0 {
			r.findings = append(r.findings, Finding{
				Class: VerdictReassembly,
				Err:   fmt.Errorf("external PDU %d has internal gaps %v", xid, x.pdu.Missing()),
			})
		}
	}
	return out
}
