package errdet

import (
	"testing"

	"chunks/internal/wsc"
)

// TestFigure5InvariantLayout (experiment F5) pins the default layout
// to the paper's exact positions: data symbols 0..16383, T.ID at
// 16384, C.ID at 16385, C.ST at 16386, and (X.ID, X.ST) pairs at
// 2*T.SN + 16387.
func TestFigure5InvariantLayout(t *testing.T) {
	l := DefaultLayout()
	if l.DataSymbols != 16384 {
		t.Fatalf("DataSymbols = %d", l.DataSymbols)
	}
	if l.TIDPos() != 16384 {
		t.Fatalf("TIDPos = %d", l.TIDPos())
	}
	if l.CIDPos() != 16385 {
		t.Fatalf("CIDPos = %d", l.CIDPos())
	}
	if l.CSTPos() != 16386 {
		t.Fatalf("CSTPos = %d", l.CSTPos())
	}
	for _, tsn := range []uint64{0, 1, 7, 16383} {
		if got, want := l.XPairPos(tsn), 2*tsn+16387; got != want {
			t.Fatalf("XPairPos(%d) = %d, want %d", tsn, got, want)
		}
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutValidate(t *testing.T) {
	if (Layout{}).Validate() == nil {
		t.Fatal("zero layout must be invalid")
	}
	if (Layout{DataSymbols: wsc.MaxPosition}).Validate() == nil {
		t.Fatal("layout overflowing code space must be invalid")
	}
}

func TestSymbolsPerElement(t *testing.T) {
	for size, want := range map[uint16]uint64{1: 1, 3: 1, 4: 1, 5: 2, 8: 2, 9: 3, 64: 16} {
		if got := SymbolsPerElement(size); got != want {
			t.Errorf("SymbolsPerElement(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestMaxElements(t *testing.T) {
	l := DefaultLayout()
	// SIZE=4: one symbol per element, bounded by the data region.
	if got := l.MaxElements(4); got != 16384 {
		t.Fatalf("MaxElements(4) = %d", got)
	}
	// SIZE=64: sixteen symbols per element.
	if got := l.MaxElements(64); got != 1024 {
		t.Fatalf("MaxElements(64) = %d", got)
	}
	// The paper's own bound: "we assume that the TPDU data is limited
	// to 16,384 32-bit symbols". Pair positions for those elements
	// must fit the 2^29-2 code space with room to spare.
	if l.XPairPos(l.MaxElements(4)-1)+1 > wsc.MaxPosition {
		t.Fatal("pair positions overflow the code space")
	}
	// A huge layout must be clipped by the pair region instead.
	big := Layout{DataSymbols: wsc.MaxPosition - 4}
	if got := big.MaxElements(4); got >= big.DataSymbols {
		t.Fatalf("pair clipping failed: %d", got)
	}
}
