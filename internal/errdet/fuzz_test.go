package errdet

import (
	"testing"
	"testing/quick"

	"chunks/internal/chunk"
)

// TestIngestArbitraryChunks: a receiver fed structurally valid but
// semantically arbitrary chunks must never panic; every anomaly ends
// up as a finding or pending state, never silent acceptance of a
// verified verdict without a matching ED chunk.
func TestIngestArbitraryChunks(t *testing.T) {
	r, err := NewReceiver(DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	f := func(typ uint8, size uint8, n uint8, cid, tid, xid uint32, csn, tsn, xsn uint32, flags uint8) bool {
		ct := chunk.Type(1 + typ%5)
		s := uint16(size)%64 + 1
		ln := uint32(n)%32 + 1
		c := chunk.Chunk{
			Type: ct, Size: s, Len: ln,
			C:       chunk.Tuple{ID: cid, SN: uint64(csn), ST: flags&1 != 0},
			T:       chunk.Tuple{ID: tid, SN: uint64(tsn) % 1024, ST: flags&2 != 0},
			X:       chunk.Tuple{ID: xid, SN: uint64(xsn), ST: flags&4 != 0},
			Payload: make([]byte, int(s)*int(ln)),
		}
		_ = r.Ingest(&c) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
	// No TPDU may have reached VerdictOK: no valid ED parity was ever
	// supplied (a random 8-byte ED payload matching the accumulated
	// parity is a 2^-64 event).
	for tid, v := range r.Finalize() {
		if v == VerdictOK {
			t.Fatalf("TPDU %d verified without a consistent ED chunk", tid)
		}
	}
}
