// Package errdet implements the paper's end-to-end error detection
// system (Section 4): a WSC-2 parity computed over an invariant of the
// TPDU under chunk fragmentation.
//
// Chunk headers are legitimately rewritten by routers (SNs advance, ST
// bits move, LEN shrinks), so the error detection code cannot simply
// cover the bytes on the wire. Instead both ends encode, into one
// WSC-2 code block, exactly the information that fragmentation
// preserves (Figure 5):
//
//   - the TPDU's data symbols at positions 0 .. DataSymbols-1, indexed
//     by T.SN;
//   - T.ID at position DataSymbols, C.ID at DataSymbols+1;
//   - the C.ST value at DataSymbols+2 (a set C.ST can occur at most
//     once per TPDU, on a TPDU boundary);
//   - one (X.ID, X.ST-value) pair per external PDU, at positions
//     DataSymbols+3+2·T.SN, where T.SN is that of the data element
//     whose X.ST or T.ST bit is set (Figure 6's trigger rule: the X.ST
//     bit fires once per external PDU, and the T.ST bit covers the
//     external PDU that begins but does not end inside the TPDU).
//
// Fields that fragmentation rewrites are protected differently:
// C.SN and X.SN by consistency checks ((C.SN − T.SN) constant across a
// TPDU's chunks; (C.SN − X.SN) constant across an external PDU's
// chunks), and T.SN, T.ST, TYPE, LEN, SIZE by virtual reassembly
// failing or completing incorrectly (Table 1).
package errdet

import (
	"errors"

	"chunks/internal/wsc"
)

// DefaultDataSymbols is the paper's TPDU data budget: 16,384 32-bit
// symbols (64 KiB of TPDU payload).
const DefaultDataSymbols = 16384

// Layout fixes where each invariant component lives in the WSC-2 code
// space. Transmitter and receiver must agree on it (it is part of the
// protocol specification, like the paper's constants).
type Layout struct {
	// DataSymbols is the number of code-space positions reserved for
	// TPDU data. Positions DataSymbols.. hold metadata.
	DataSymbols uint64
}

// DefaultLayout returns the paper's Figure 5 layout.
func DefaultLayout() Layout { return Layout{DataSymbols: DefaultDataSymbols} }

// ErrLayout reports an element that does not fit the layout's code
// space (TPDU larger than the data budget, or pair positions beyond
// the WSC-2 maximum).
var ErrLayout = errors.New("errdet: element outside code-space layout")

// TIDPos returns the position encoding T.ID.
func (l Layout) TIDPos() uint64 { return l.DataSymbols }

// CIDPos returns the position encoding C.ID.
func (l Layout) CIDPos() uint64 { return l.DataSymbols + 1 }

// CSTPos returns the position encoding the C.ST value.
func (l Layout) CSTPos() uint64 { return l.DataSymbols + 2 }

// XPairPos returns the position of the (X.ID, X.ST) pair triggered by
// the data element with the given T.SN; the pair occupies XPairPos and
// XPairPos+1.
func (l Layout) XPairPos(tsn uint64) uint64 { return l.DataSymbols + 3 + 2*tsn }

// SymbolsPerElement returns how many 32-bit symbols one data element
// of the given SIZE occupies (the last symbol zero-padded).
func SymbolsPerElement(size uint16) uint64 { return (uint64(size) + 3) / 4 }

// MaxElements returns the largest element count a TPDU may have under
// this layout for the given element SIZE: both the data region and the
// trigger-pair region must fit.
func (l Layout) MaxElements(size uint16) uint64 {
	spe := SymbolsPerElement(size)
	byData := l.DataSymbols / spe
	// Highest pair position must stay within the code space.
	byPairs := (wsc.MaxPosition - 1 - (l.DataSymbols + 3)) / 2
	if byPairs+1 < byData {
		return byPairs + 1
	}
	return byData
}

// Validate reports whether the layout itself fits the code space.
func (l Layout) Validate() error {
	if l.DataSymbols == 0 || l.DataSymbols+3 >= wsc.MaxPosition {
		return ErrLayout
	}
	return nil
}
