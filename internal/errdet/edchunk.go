package errdet

import (
	"errors"

	"chunks/internal/chunk"
	"chunks/internal/wsc"
)

// The ED control chunk carries a TPDU's WSC-2 parity (Figure 3 shows
// one packed beside the TPDU's final data chunk). It shares the
// TPDU's C.ID and T.ID so the receiver can bind it to the right code
// block; being a control chunk it is indivisible and travels whole.

// ErrNotED reports a chunk that is not a well-formed ED chunk.
var ErrNotED = errors.New("errdet: not an ED chunk")

// EDChunk builds the error detection control chunk for a TPDU.
func EDChunk(cid, tid uint32, csn uint64, par wsc.Parity) chunk.Chunk {
	return EDChunkAppend(cid, tid, csn, par, nil)
}

// EDChunkAppend is EDChunk with caller-owned payload storage: the
// parity is encoded into buf's capacity (buf[:0]), so a sender that
// recycles its per-TPDU scratch buffers builds ED chunks without
// allocating. The returned chunk's payload aliases buf.
func EDChunkAppend(cid, tid uint32, csn uint64, par wsc.Parity, buf []byte) chunk.Chunk {
	return chunk.Chunk{
		Type:    chunk.TypeED,
		Size:    wsc.ParitySize,
		Len:     1,
		C:       chunk.Tuple{ID: cid, SN: csn},
		T:       chunk.Tuple{ID: tid},
		Payload: par.AppendBinary(buf[:0]),
	}
}

// ParseED extracts the parity from an ED chunk.
func ParseED(c *chunk.Chunk) (wsc.Parity, error) {
	if c.Type != chunk.TypeED || c.Len != 1 || c.Size != wsc.ParitySize {
		return wsc.Parity{}, ErrNotED
	}
	return wsc.DecodeParity(c.Payload)
}
