package errdet

import (
	"testing"

	"chunks/internal/chunk"
	"chunks/internal/telemetry"
	"chunks/internal/wsc"
)

// The sorted fast path of Encode must detect overlaps even when the
// overlapping chunk arrives after an out-of-order one (the replayed
// interval-set path).
func TestEncodeUnsortedOverlapRejected(t *testing.T) {
	l := DefaultLayout()
	orig := makeTPDU(9, 12, 4, 9)
	a, b, err := orig.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2, err := b.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	// Out of order (forces the slow path), then a duplicate of b2.
	if _, err := Encode(l, []chunk.Chunk{b2, a, b1, b2}); err == nil {
		t.Fatal("Encode accepted an overlapping chunk after unsorted input")
	}
}

// TestEDChunkAppendReusesBuffer pins the zero-alloc contract: the ED
// payload is built inside the caller's buffer.
func TestEDChunkAppendReusesBuffer(t *testing.T) {
	par := wsc.Parity{P0: 0xDEADBEEF, P1: 0x12345678}
	buf := make([]byte, 0, wsc.ParitySize)
	c := EDChunkAppend(7, 8, 99, par, buf)
	if got, err := ParseED(&c); err != nil || got != par {
		t.Fatalf("ParseED = %+v, %v; want %+v", got, err, par)
	}
	if &c.Payload[0] != &buf[:1][0] {
		t.Fatal("EDChunkAppend did not reuse the caller's buffer")
	}
	ref := EDChunk(7, 8, 99, par)
	if got, _ := ParseED(&ref); got != par {
		t.Fatalf("EDChunk changed behaviour: %+v", got)
	}
}

// TestReceiverWSCTelemetry checks the wsc_bytes counter and the
// run-size histogram fill as fresh data flows through ingestData.
func TestReceiverWSCTelemetry(t *testing.T) {
	reg := telemetry.New(0)
	r := newReceiver(t)
	sink := telemetry.Sink{Scope: reg.Scope("errdet")}
	r.SetTelemetry(sink)

	frags, ed := buildTPDU(t, 3, 16, 4)
	ingestAll(t, r, frags)
	if err := r.Ingest(&ed); err != nil {
		t.Fatal(err)
	}
	// Duplicates must not count: only fresh runs hit the kernel.
	ingestAll(t, r, frags)

	want := int64(16 * 4)
	if got := sink.Counter("wsc_bytes").Load(); got != want {
		t.Fatalf("wsc_bytes = %d, want %d", got, want)
	}
	if got := sink.Histogram("wsc_run_bytes").Count(); got != int64(len(frags)) {
		t.Fatalf("wsc_run_bytes count = %d, want %d runs", got, len(frags))
	}
}
