package errdet

// Verdict is the state of one TPDU's end-to-end verification.
type Verdict int

const (
	// VerdictPending: virtual reassembly or the ED chunk is still
	// outstanding.
	VerdictPending Verdict = iota
	// VerdictOK: the TPDU completed and the accumulated parity
	// matched the transmitted parity.
	VerdictOK
	// VerdictEDMismatch: the TPDU completed but the parities differ —
	// Table 1's "Error Detection Code" detection.
	VerdictEDMismatch
	// VerdictConsistency: a header consistency check failed — Table
	// 1's "Consistency Check" detection ((C.SN − T.SN) or
	// (C.SN − X.SN) not constant, or chunks of one TPDU disagreeing
	// on identity fields).
	VerdictConsistency
	// VerdictReassembly: virtual reassembly failed (conflicting or
	// exceeded PDU end, or the input ended before the TPDU
	// completed) — Table 1's "Reassembly Error" detection.
	VerdictReassembly
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictPending:
		return "pending"
	case VerdictOK:
		return "ok"
	case VerdictEDMismatch:
		return "error-detection-code"
	case VerdictConsistency:
		return "consistency-check"
	case VerdictReassembly:
		return "reassembly-error"
	}
	return "unknown"
}

// Detected reports whether the verdict represents a detected error.
func (v Verdict) Detected() bool {
	return v == VerdictEDMismatch || v == VerdictConsistency || v == VerdictReassembly
}
