package errdet

import "chunks/internal/wsc"

// Single-symbol error correction — an extension beyond the paper's
// detection-only design. WSC-2 is effectively a distance-3 code: for
// a single corrupted 32-bit symbol the syndrome (accumulated parity
// XOR transmitted parity) determines both the position
// (log_α(S1/S0)) and the error value (S0). When a TPDU finalizes
// with VerdictEDMismatch, Repair attempts that decoding; if the
// located position falls in the data region, the receiver can fix
// the placed bytes instead of requesting retransmission — attractive
// on the long-latency gigabit paths the paper targets.

// A Correction tells the data owner which placed bytes to fix.
type Correction struct {
	// TID is the repaired TPDU.
	TID uint32
	// TSN is the element index within the TPDU holding the bad
	// symbol; CSN is the same element in connection space
	// (TSN + the TPDU's C.SN−T.SN delta).
	TSN, CSN uint64
	// Offset is the byte offset of the symbol within the element.
	Offset int
	// XOR is the big-endian 32-bit mask to XOR over the element bytes
	// at Offset (clipped to the element's real length when SIZE is
	// not a multiple of 4 — the clipped bytes were zero padding).
	XOR uint32
}

// Repair attempts single-symbol correction of a TPDU that finalized
// with VerdictEDMismatch. On success it fixes the receiver's own
// parity state, flips the verdict to VerdictOK, records a finding,
// and returns the Correction the caller must apply to its placed
// data. It returns ok=false when the TPDU is not in the mismatch
// state or the syndrome is not consistent with a single symbol error
// inside the data region (multi-symbol corruption, or corruption of
// an identity/trigger position, still requires retransmission).
func (r *Receiver) Repair(tid uint32) (Correction, bool) {
	t := r.tpdus[tid]
	if t == nil || !t.finalized || t.verdict != VerdictEDMismatch {
		return Correction{}, false
	}
	syndrome := t.blk.parity().Xor(t.want)
	pos, val, ok := wsc.LocateSingleError(syndrome)
	if !ok || pos >= r.layout.DataSymbols {
		return Correction{}, false
	}
	spe := SymbolsPerElement(t.size)
	tsn := pos / spe
	// The symbol must belong to a received element.
	if end, known := t.t.End(); !known || tsn >= end {
		return Correction{}, false
	}
	// Fix our own accumulator and verdict.
	if err := t.blk.acc.AddSymbol(pos, val); err != nil {
		return Correction{}, false
	}
	if !wsc.Verify(t.blk.parity(), t.want) {
		// Should be impossible; restore the mismatch state.
		_ = t.blk.acc.AddSymbol(pos, val)
		return Correction{}, false
	}
	t.verdict = VerdictOK
	r.flag(VerdictOK, tid, "repaired single-symbol error at data position %d (T.SN %d)", pos, tsn) //lint:allow hotalloc cold repair path: fmt boxes its operands
	return Correction{
		TID:    tid,
		TSN:    tsn,
		CSN:    tsn + t.delta,
		Offset: int(pos%spe) * wsc.SymbolSize,
		XOR:    val,
	}, true
}

// Apply XORs the correction into an application buffer whose byte 0
// is connection element 0 (i.e. stream position CSN*size + Offset).
// It is a convenience for stream-placed receivers; frame-placed
// receivers can compute their own offset from TSN.
func (c Correction) Apply(stream []byte, size uint16) {
	base := c.CSN*uint64(size) + uint64(c.Offset)
	for i := 0; i < wsc.SymbolSize; i++ {
		// Clip to the element (zero padding is virtual) and to the
		// buffer.
		if c.Offset+i >= int(size) {
			break
		}
		p := base + uint64(i)
		if p >= uint64(len(stream)) {
			break
		}
		stream[p] ^= byte(c.XOR >> (8 * (wsc.SymbolSize - 1 - i)))
	}
}
