// Package overlap is a differential reassembly harness for
// conflicting-overlap ("overlap smuggling") attacks: identical seeded
// delivery schedules — honest fragments interleaved with forged
// fragments carrying different bytes for the same positions — are
// replayed through this module's two reassemblers (vr virtual
// reassembly and ipfrag physical reassembly, each under its explicit
// overlap policies) and through byte-granularity models of the
// resolution behaviors real OS stacks ship (the reassembly-gap
// catalogues: first-wins Windows/Solaris style, last-wins Cisco style,
// left-favoring BSD, right-favoring BSD variant, Linux tie-breaking).
//
// The harness records two things per (schedule, system) cell: whether
// the system delivered forged bytes ("smuggled") or refused, and
// whether the paper's WSC-2 end-to-end check flags the delivery. The
// claim pinned by experiment O1 — Table 1 extended into adversarial
// territory — is that detection is exact: every smuggled outcome any
// policy admits mismatches the sender's parity, and no genuine
// delivery does.
package overlap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"chunks/internal/ipfrag"
	"chunks/internal/vr"
	"chunks/internal/wsc"
)

// A Segment is one fragment delivery in a schedule: Data bytes placed
// at stream offset Off. Forged segments are the attacker's copies —
// bytes that differ from the genuine stream over the same positions.
// Last marks the honest segment that carries the end-of-PDU signal
// (ST bit for vr, cleared more-fragments for ipfrag); forged segments
// never claim the end, matching what the chaos forger emits.
type Segment struct {
	Off    int
	Data   []byte
	Forged bool
	Last   bool
}

// A Schedule is one seeded adversarial delivery sequence over a
// genuine stream of Total bytes. The honest segments alone cover
// [0, Total) and arrive with the end marker last, so every system
// that does not reject completes reassembly.
type Schedule struct {
	Name    string
	Total   int
	Genuine []byte
	Segs    []Segment
}

// builder assembles a schedule from honest and forged ranges.
type builder struct {
	s   Schedule
	rng *rand.Rand
}

func newSchedule(name string, rng *rand.Rand, total int) *builder {
	g := make([]byte, total)
	rng.Read(g)
	return &builder{s: Schedule{Name: name, Total: total, Genuine: g}, rng: rng}
}

func (b *builder) honest(lo, hi int) *builder {
	b.s.Segs = append(b.s.Segs, Segment{
		Off: lo, Data: b.s.Genuine[lo:hi], Last: hi == b.s.Total,
	})
	return b
}

// forged adds the attacker's copy of [lo, hi): every byte differs from
// the genuine stream (a payload substitution), so any overlap with
// accepted data is a conflict and never a mere duplicate.
func (b *builder) forged(lo, hi int) *builder {
	d := append([]byte(nil), b.s.Genuine[lo:hi]...)
	for i := range d {
		d[i] ^= byte(1 + b.rng.Intn(255))
	}
	b.s.Segs = append(b.s.Segs, Segment{Off: lo, Data: d, Forged: true})
	return b
}

// Schedules returns the seeded attack catalogue. The named shapes are
// the classic overlap-smuggling deliveries from the reassembly-gap
// literature; the rand-N schedules add seeded breadth on top.
func Schedules(seed int64) []Schedule {
	rng := rand.New(rand.NewSource(seed))
	const total = 32
	var out []Schedule
	add := func(b *builder) { out = append(out, b.s) }

	// The forged copy duplicates an already-accepted span exactly.
	b := newSchedule("same-span-dup", rng, total)
	add(b.honest(0, 16).forged(0, 16).honest(16, 32))

	// The forgery races ahead of the honest copy (what the chaos
	// relay's ForgeOverlap fault does): first-wins systems keep it.
	b = newSchedule("forged-first", rng, total)
	add(b.forged(8, 16).honest(0, 16).honest(16, 32))

	// The forgery overlaps the tail of accepted data and pre-claims
	// bytes no honest fragment has delivered yet.
	b = newSchedule("forward-shift", rng, total)
	add(b.honest(0, 16).forged(12, 24).honest(16, 32))

	// Teardrop: the forgery is fully enclosed by an accepted span.
	b = newSchedule("teardrop", rng, total)
	add(b.honest(0, 16).forged(4, 12).honest(16, 32))

	// The forgery begins before the fragment it overlaps — the shape
	// that splits left-favoring stacks (BSD/Linux take the head) from
	// strict first-wins ones.
	b = newSchedule("head-smuggle", rng, total)
	add(b.honest(8, 16).forged(0, 12).honest(0, 8).honest(16, 32))

	// The forgery begins inside accepted data and runs past it — the
	// mirror shape that right-favoring stacks accept.
	b = newSchedule("tail-smuggle", rng, total)
	add(b.honest(0, 8).forged(4, 12).honest(8, 32))

	// Same offset, same length: the pure tie-break probe (BSD keeps
	// the original, Linux takes the replacement).
	b = newSchedule("tie-break", rng, total)
	add(b.honest(0, 8).forged(0, 8).honest(8, 32))

	// Seeded random shapes: honest coverage in three pieces with 1–3
	// forged overlaps thrown anywhere before the honest tail.
	for i := 0; i < 3; i++ {
		b = newSchedule(fmt.Sprintf("rand-%d", i), rng, total)
		cut1 := 8 + rng.Intn(8)
		cut2 := 16 + rng.Intn(8)
		b.honest(0, cut1).honest(cut1, cut2)
		for j, n := 0, 1+rng.Intn(3); j < n; j++ {
			lo := rng.Intn(cut2 - 2)
			hi := lo + 2 + rng.Intn(total-lo-2)
			b.forged(lo, hi)
		}
		add(b.honest(cut2, total))
	}
	return out
}

// An OSModel is a byte-granularity model of one resolution behavior
// the reassembly-gap catalogues attribute to shipping stacks. Models
// never reject: they always deliver something, which is exactly why
// conflicting overlaps smuggle data through them.
type OSModel uint8

const (
	// ModelFirst keeps the first writer of every byte (Windows,
	// Solaris style) — also this module's FirstWins.
	ModelFirst OSModel = iota
	// ModelLast keeps the last writer (Cisco IOS style).
	ModelLast
	// ModelBSD is left-favoring: the fragment with the lower offset
	// owns the overlap; ties keep the original.
	ModelBSD
	// ModelBSDRight is right-favoring: the fragment with the higher
	// offset owns the overlap; ties take the new fragment.
	ModelBSDRight
	// ModelLinux is left-favoring like BSD but ties take the new
	// fragment — the classic BSD/Linux disagreement.
	ModelLinux
)

func (m OSModel) String() string {
	switch m {
	case ModelFirst:
		return "os-first"
	case ModelLast:
		return "os-last"
	case ModelBSD:
		return "os-bsd"
	case ModelBSDRight:
		return "os-bsdright"
	case ModelLinux:
		return "os-linux"
	}
	return "os-?"
}

// OSModels lists the modeled stacks in matrix order.
func OSModels() []OSModel {
	return []OSModel{ModelFirst, ModelLast, ModelBSD, ModelBSDRight, ModelLinux}
}

// wins reports whether an incoming fragment starting at newOff takes a
// byte currently owned by a fragment starting at oldOff.
func (m OSModel) wins(newOff, oldOff int) bool {
	switch m {
	case ModelLast:
		return true
	case ModelBSD:
		return newOff < oldOff
	case ModelBSDRight:
		return newOff >= oldOff
	case ModelLinux:
		return newOff <= oldOff
	}
	return false // ModelFirst
}

// ReplayModel runs one schedule through one OS model and returns the
// delivered stream.
func ReplayModel(s Schedule, m OSModel) []byte {
	buf := make([]byte, s.Total)
	owner := make([]int, s.Total) // fragment offset owning each byte
	for i := range owner {
		owner[i] = -1
	}
	for _, seg := range s.Segs {
		for i, by := range seg.Data {
			pos := seg.Off + i
			if pos >= s.Total {
				break
			}
			if owner[pos] < 0 || m.wins(seg.Off, owner[pos]) {
				buf[pos] = by
				owner[pos] = seg.Off
			}
		}
	}
	return buf
}

// An Outcome is what one reassembler delivered for one schedule.
type Outcome struct {
	// Final is the delivered stream; nil when the schedule was
	// rejected before completing.
	Final []byte
	// Rejected reports that a rejecting policy abandoned the PDU.
	Rejected bool
	// Conflicts counts the conflicting-overlap runs the reassembler
	// observed along the way.
	Conflicts int
}

// ReplayVR runs one schedule through virtual reassembly (one byte per
// element) under the given policy, applying placement the way the real
// receiver does: fresh intervals are placed as they arrive, and under
// LastWins the conflicting intervals are re-placed with the new bytes.
func ReplayVR(s Schedule, pol vr.Policy) (Outcome, error) {
	var p vr.PDU
	buf := make([]byte, s.Total)
	view := func(iv vr.Interval) []byte {
		if iv.Hi > uint64(s.Total) {
			return nil
		}
		return buf[iv.Lo:iv.Hi]
	}
	var out Outcome
	for _, seg := range s.Segs {
		off := uint64(seg.Off)
		fresh, conf, err := p.AddChecked(off, uint64(len(seg.Data)), seg.Last, pol, seg.Data, 1, view)
		out.Conflicts += len(conf)
		if err != nil {
			if errors.Is(err, vr.ErrConflictingData) {
				out.Rejected = true
				return out, nil
			}
			return out, fmt.Errorf("overlap: vr replay of %s: %w", s.Name, err)
		}
		for _, iv := range fresh {
			copy(buf[iv.Lo:iv.Hi], seg.Data[iv.Lo-off:iv.Hi-off])
		}
		if pol == vr.LastWins {
			for _, iv := range conf {
				copy(buf[iv.Lo:iv.Hi], seg.Data[iv.Lo-off:iv.Hi-off])
			}
		}
	}
	if !p.Complete() {
		return out, fmt.Errorf("overlap: vr replay of %s did not complete", s.Name)
	}
	out.Final = buf
	return out, nil
}

// ReplayIPFrag runs one schedule through the ipfrag reassembler under
// the given policy.
func ReplayIPFrag(s Schedule, pol vr.Policy) (Outcome, error) {
	r := ipfrag.NewReassembler(0)
	r.Policy = pol
	var out Outcome
	for _, seg := range s.Segs {
		done, err := r.Add(ipfrag.Fragment{
			ID: 1, Offset: uint32(seg.Off), More: !seg.Last, Data: seg.Data,
		})
		if err != nil {
			if errors.Is(err, ipfrag.ErrConflictingOverlap) {
				out.Rejected = true
				out.Conflicts = r.Conflicts()
				return out, nil
			}
			return out, fmt.Errorf("overlap: ipfrag replay of %s: %w", s.Name, err)
		}
		if done != nil && out.Final == nil {
			out.Final = append([]byte(nil), done...)
		}
	}
	out.Conflicts = r.Conflicts()
	if out.Final == nil {
		return out, fmt.Errorf("overlap: ipfrag replay of %s did not complete", s.Name)
	}
	return out, nil
}

// Cell outcomes.
const (
	// OutcomeGenuine: the system delivered exactly the honest stream.
	OutcomeGenuine = "genuine"
	// OutcomeSmuggled: the system delivered forged bytes.
	OutcomeSmuggled = "smuggled"
	// OutcomeRejected: a rejecting policy refused to deliver.
	OutcomeRejected = "rejected"
)

// A Cell is one (schedule, system) entry of the differential matrix.
type Cell struct {
	Schedule string `json:"schedule"`
	System   string `json:"system"`
	Outcome  string `json:"outcome"`
	Smuggled bool   `json:"smuggled"`
	// Detected reports that the WSC-2 parity of the delivered stream
	// differs from the sender's parity of the genuine stream — the
	// end-to-end check firing. Always false for rejected cells
	// (nothing was delivered to check).
	Detected bool `json:"wsc2_detected"`
}

// A Summary is the full matrix plus the aggregates experiment O1
// reports and the acceptance tests pin.
type Summary struct {
	Seed      int64 `json:"seed"`
	Schedules int   `json:"schedules"`
	Systems   int   `json:"systems"`
	Delivered int   `json:"delivered"`
	Rejected  int   `json:"rejected"`
	Smuggled  int   `json:"smuggled"`
	Detected  int   `json:"detected"`
	// DetectionRate is Detected/Smuggled — the pinned claim is 1.0.
	DetectionRate float64 `json:"detection_rate"`
	// DisagreeSchedules counts schedules on which at least two OS
	// models deliver different streams — the reassembly gap itself.
	DisagreeSchedules int    `json:"model_disagreement_schedules"`
	Cells             []Cell `json:"matrix"`
}

// Policies lists the vr/ipfrag policies the matrix exercises.
// RejectConnection is omitted: at the reassembly layer it behaves
// exactly like RejectPDU (the difference — tearing the connection down
// — lives in transport/core and is exercised by the chaos tests).
func Policies() []vr.Policy {
	return []vr.Policy{vr.FirstWins, vr.LastWins, vr.RejectPDU}
}

// Run replays every schedule through every system and returns the
// matrix with its aggregates. Deterministic in seed.
func Run(seed int64) (*Summary, error) {
	sum := &Summary{Seed: seed}
	for _, s := range Schedules(seed) {
		sum.Schedules++
		genuine, err := wsc.EncodeBytes(s.Genuine)
		if err != nil {
			return nil, err
		}
		record := func(system string, final []byte, rejected bool) error {
			c := Cell{Schedule: s.Name, System: system, Outcome: OutcomeRejected}
			if rejected {
				sum.Rejected++
			} else {
				sum.Delivered++
				par, err := wsc.EncodeBytes(final)
				if err != nil {
					return err
				}
				c.Smuggled = !bytes.Equal(final, s.Genuine)
				c.Detected = !wsc.Verify(par, genuine)
				c.Outcome = OutcomeGenuine
				if c.Smuggled {
					c.Outcome = OutcomeSmuggled
					sum.Smuggled++
				}
				if c.Detected {
					sum.Detected++
				}
			}
			sum.Cells = append(sum.Cells, c)
			return nil
		}
		for _, pol := range Policies() {
			o, err := ReplayVR(s, pol)
			if err != nil {
				return nil, err
			}
			if err := record("vr/"+pol.String(), o.Final, o.Rejected); err != nil {
				return nil, err
			}
			o, err = ReplayIPFrag(s, pol)
			if err != nil {
				return nil, err
			}
			if err := record("ipfrag/"+pol.String(), o.Final, o.Rejected); err != nil {
				return nil, err
			}
		}
		finals := make(map[string]struct{})
		for _, m := range OSModels() {
			final := ReplayModel(s, m)
			finals[string(final)] = struct{}{}
			if err := record(m.String(), final, false); err != nil {
				return nil, err
			}
		}
		if len(finals) > 1 {
			sum.DisagreeSchedules++
		}
	}
	sum.Systems = 2*len(Policies()) + len(OSModels())
	if sum.Smuggled > 0 {
		sum.DetectionRate = float64(sum.Detected) / float64(sum.Smuggled)
	}
	return sum, nil
}
