package overlap

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"chunks/internal/vr"
)

const testSeed = 1

// TestSchedulesWellFormed: honest segments cover the stream and end
// with the end marker; forged segments stay in bounds and differ from
// the genuine stream in every byte (substitutions, never duplicates).
func TestSchedulesWellFormed(t *testing.T) {
	scheds := Schedules(testSeed)
	if len(scheds) == 0 {
		t.Fatal("empty catalogue")
	}
	for _, s := range scheds {
		if len(s.Genuine) != s.Total {
			t.Fatalf("%s: genuine len %d != total %d", s.Name, len(s.Genuine), s.Total)
		}
		var cover vr.IntervalSet
		sawForged := false
		for i, seg := range s.Segs {
			if seg.Off < 0 || seg.Off+len(seg.Data) > s.Total {
				t.Fatalf("%s: segment %d out of bounds", s.Name, i)
			}
			if seg.Forged {
				sawForged = true
				if seg.Last {
					t.Fatalf("%s: forged segment %d claims the end", s.Name, i)
				}
				for j, by := range seg.Data {
					if by == s.Genuine[seg.Off+j] {
						t.Fatalf("%s: forged segment %d agrees with genuine at %d", s.Name, i, seg.Off+j)
					}
				}
				continue
			}
			if !bytes.Equal(seg.Data, s.Genuine[seg.Off:seg.Off+len(seg.Data)]) {
				t.Fatalf("%s: honest segment %d does not carry genuine bytes", s.Name, i)
			}
			cover.Add(uint64(seg.Off), uint64(seg.Off+len(seg.Data)))
		}
		if !sawForged {
			t.Fatalf("%s: no forged segment", s.Name)
		}
		if !cover.Covered(0, uint64(s.Total)) {
			t.Fatalf("%s: honest segments do not cover the stream", s.Name)
		}
		if last := s.Segs[len(s.Segs)-1]; !last.Last || last.Forged {
			t.Fatalf("%s: schedule does not end with the honest tail", s.Name)
		}
	}
}

// TestRunExactDetection pins the acceptance claim — Table 1 extended
// into adversarial territory. For every delivered cell the WSC-2
// end-to-end check fires exactly when forged bytes were smuggled:
// detection rate 1.0 over smuggled outcomes, zero false alarms over
// genuine ones. Rejecting policies never deliver forged bytes at all.
func TestRunExactDetection(t *testing.T) {
	sum, err := Run(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Smuggled == 0 {
		t.Fatal("catalogue produced no smuggled outcome; the matrix proves nothing")
	}
	for _, c := range sum.Cells {
		if c.Outcome == OutcomeRejected {
			if c.Smuggled || c.Detected {
				t.Fatalf("%s/%s: rejected cell carries smuggled=%v detected=%v", c.Schedule, c.System, c.Smuggled, c.Detected)
			}
			continue
		}
		if c.Smuggled != c.Detected {
			t.Fatalf("%s/%s: smuggled=%v but detected=%v — WSC-2 must flag exactly the smuggled deliveries",
				c.Schedule, c.System, c.Smuggled, c.Detected)
		}
	}
	if sum.DetectionRate != 1.0 {
		t.Fatalf("detection rate %v, want 1.0", sum.DetectionRate)
	}
	if sum.Detected != sum.Smuggled {
		t.Fatalf("detected %d != smuggled %d", sum.Detected, sum.Smuggled)
	}
	if sum.Delivered+sum.Rejected != len(sum.Cells) {
		t.Fatalf("delivered %d + rejected %d != %d cells", sum.Delivered, sum.Rejected, len(sum.Cells))
	}
}

// TestRejectingPoliciesRejectEverySchedule: every catalogue schedule
// carries a genuine conflict, so reject-pdu refuses all of them in
// both reassemblers — the conservative end of the policy space.
func TestRejectingPoliciesRejectEverySchedule(t *testing.T) {
	for _, s := range Schedules(testSeed) {
		o, err := ReplayVR(s, vr.RejectPDU)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Rejected {
			t.Fatalf("%s: vr reject-pdu delivered", s.Name)
		}
		o, err = ReplayIPFrag(s, vr.RejectPDU)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Rejected {
			t.Fatalf("%s: ipfrag reject-pdu delivered", s.Name)
		}
	}
}

// TestVRAgreesWithIPFrag is the differential pin: the two reassemblers
// implement the same policies over different machinery (interval
// tracking + caller-owned bytes vs a physical buffer) and must agree
// cell for cell.
func TestVRAgreesWithIPFrag(t *testing.T) {
	for _, s := range Schedules(testSeed) {
		for _, pol := range Policies() {
			a, err := ReplayVR(s, pol)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ReplayIPFrag(s, pol)
			if err != nil {
				t.Fatal(err)
			}
			if a.Rejected != b.Rejected {
				t.Fatalf("%s/%v: vr rejected=%v, ipfrag rejected=%v", s.Name, pol, a.Rejected, b.Rejected)
			}
			if !bytes.Equal(a.Final, b.Final) {
				t.Fatalf("%s/%v: vr delivered %x, ipfrag delivered %x", s.Name, pol, a.Final, b.Final)
			}
		}
	}
}

// TestPolicyModelCorrespondence: vr under FirstWins/LastWins must
// deliver byte-for-byte what the corresponding OS models deliver.
func TestPolicyModelCorrespondence(t *testing.T) {
	for _, s := range Schedules(testSeed) {
		first, err := ReplayVR(s, vr.FirstWins)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Final, ReplayModel(s, ModelFirst)) {
			t.Fatalf("%s: vr first-wins disagrees with os-first", s.Name)
		}
		last, err := ReplayVR(s, vr.LastWins)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(last.Final, ReplayModel(s, ModelLast)) {
			t.Fatalf("%s: vr last-wins disagrees with os-last", s.Name)
		}
	}
}

// TestModelsPairwiseDistinct: the catalogue separates every pair of
// modeled stacks — for each pair there is at least one schedule on
// which they deliver different streams. This is the reassembly gap the
// papers document, reproduced end to end.
func TestModelsPairwiseDistinct(t *testing.T) {
	scheds := Schedules(testSeed)
	models := OSModels()
	for i := 0; i < len(models); i++ {
		for j := i + 1; j < len(models); j++ {
			split := ""
			for _, s := range scheds {
				if !bytes.Equal(ReplayModel(s, models[i]), ReplayModel(s, models[j])) {
					split = s.Name
					break
				}
			}
			if split == "" {
				t.Errorf("no schedule separates %v from %v", models[i], models[j])
			}
		}
	}
}

// TestTieBreakSplitsBSDFromLinux pins the canonical disagreement: an
// exact-duplicate forgery is kept by BSD (tie keeps the original) and
// taken by Linux (tie takes the replacement).
func TestTieBreakSplitsBSDFromLinux(t *testing.T) {
	for _, s := range Schedules(testSeed) {
		if s.Name != "tie-break" {
			continue
		}
		bsd := ReplayModel(s, ModelBSD)
		linux := ReplayModel(s, ModelLinux)
		if !bytes.Equal(bsd, s.Genuine) {
			t.Fatal("os-bsd must keep the original on a tie")
		}
		if bytes.Equal(linux, s.Genuine) {
			t.Fatal("os-linux must take the forged copy on a tie")
		}
		return
	}
	t.Fatal("tie-break schedule missing from catalogue")
}

// TestRunDeterminism: the whole matrix is a pure function of the seed.
func TestRunDeterminism(t *testing.T) {
	a, err := Run(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Run(7) is not deterministic")
	}
	c, err := Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Cells, c.Cells) {
		t.Fatal("different seeds produced identical matrices; seeding is broken")
	}
}

// TestSummaryDisagreement: the aggregate the experiment reports must
// show the gap (at least one schedule where modeled stacks disagree).
func TestSummaryDisagreement(t *testing.T) {
	sum, err := Run(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DisagreeSchedules < 1 {
		t.Fatal("no model disagreement in the matrix")
	}
	if sum.Systems != 2*len(Policies())+len(OSModels()) {
		t.Fatalf("systems = %d", sum.Systems)
	}
	if want := sum.Schedules * sum.Systems; len(sum.Cells) != want {
		t.Fatalf("%d cells, want %d", len(sum.Cells), want)
	}
}

func TestOSModelString(t *testing.T) {
	for _, m := range OSModels() {
		if s := m.String(); s == "os-?" || s == "" {
			t.Fatalf("model %d has no name", m)
		}
	}
	if OSModel(99).String() != "os-?" {
		t.Fatal("unknown model must stringify as os-?")
	}
}

func ExampleRun() {
	sum, _ := Run(1)
	fmt.Printf("detection %.1f over %d smuggled outcomes\n", sum.DetectionRate, sum.Smuggled)
	// Output: detection 1.0 over 71 smuggled outcomes
}
