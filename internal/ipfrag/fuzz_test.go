package ipfrag

import (
	"testing"
	"testing/quick"
)

func TestDecodeArbitraryBytes(t *testing.T) {
	f := func(b []byte) bool {
		frag, err := Decode(b)
		if err != nil {
			return true
		}
		return len(frag.Data)+HeaderSize <= len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestReassemblerArbitraryFragments: random fragments must never
// panic the reassembler, and completed datagrams must match their
// declared extent.
func TestReassemblerArbitraryFragments(t *testing.T) {
	f := func(frags []struct {
		ID     uint8
		Offset uint16
		More   bool
		Len    uint8
	}) bool {
		r := NewReassembler(1 << 20)
		for _, fr := range frags {
			data := make([]byte, int(fr.Len)%64+1)
			out, err := r.Add(Fragment{
				ID: uint32(fr.ID), Offset: uint32(fr.Offset) % 4096,
				More: fr.More, Data: data,
			})
			if err != nil && err != ErrBufferFull {
				return false
			}
			if out != nil && len(out) == 0 {
				return false
			}
		}
		return r.Used() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
