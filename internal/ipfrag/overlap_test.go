package ipfrag

import (
	"bytes"
	"errors"
	"testing"

	"chunks/internal/vr"
)

// conflictPair builds the canonical conflicting overlap: fragment A
// covers [0,4) with 0x11s, fragment B covers [2,6) with 0x22s and ends
// the datagram — bytes [2,4) disagree.
func conflictPair() (Fragment, Fragment) {
	a := Fragment{ID: 1, Offset: 0, More: true, Data: []byte{0x11, 0x11, 0x11, 0x11}}
	b := Fragment{ID: 1, Offset: 2, More: false, Data: []byte{0x22, 0x22, 0x22, 0x22}}
	return a, b
}

func TestOverlapFirstWins(t *testing.T) {
	r := NewReassembler(1 << 16) // zero-value policy = first-wins
	a, b := conflictPair()
	if _, err := r.Add(a); err != nil {
		t.Fatal(err)
	}
	out, err := r.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x11, 0x11, 0x11, 0x11, 0x22, 0x22}
	if !bytes.Equal(out, want) {
		t.Fatalf("first-wins datagram = %x, want %x", out, want)
	}
	if r.Conflicts() != 1 || r.Rejects() != 0 {
		t.Fatalf("conflicts=%d rejects=%d", r.Conflicts(), r.Rejects())
	}
}

func TestOverlapLastWins(t *testing.T) {
	r := NewReassembler(1 << 16)
	r.Policy = vr.LastWins
	a, b := conflictPair()
	_, _ = r.Add(a)
	out, err := r.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x11, 0x11, 0x22, 0x22, 0x22, 0x22}
	if !bytes.Equal(out, want) {
		t.Fatalf("last-wins datagram = %x, want %x", out, want)
	}
	if r.Conflicts() != 1 {
		t.Fatalf("conflicts = %d", r.Conflicts())
	}
}

func TestOverlapReject(t *testing.T) {
	for _, pol := range []vr.Policy{vr.RejectPDU, vr.RejectConnection} {
		r := NewReassembler(1 << 16)
		r.Policy = pol
		a, b := conflictPair()
		if _, err := r.Add(a); err != nil {
			t.Fatal(err)
		}
		out, err := r.Add(b)
		if !errors.Is(err, ErrConflictingOverlap) {
			t.Fatalf("%v: want ErrConflictingOverlap, got %v", pol, err)
		}
		if out != nil {
			t.Fatalf("%v: rejected add returned data", pol)
		}
		if r.Pending() != 0 || r.Used() != 0 {
			t.Fatalf("%v: datagram not discarded: pending=%d used=%d", pol, r.Pending(), r.Used())
		}
		if r.Rejects() != 1 || r.Conflicts() != 1 {
			t.Fatalf("%v: conflicts=%d rejects=%d", pol, r.Conflicts(), r.Rejects())
		}
		// The datagram can start over after the reject.
		if _, err := r.Add(a); err != nil {
			t.Fatalf("%v: restart after reject: %v", pol, err)
		}
	}
}

// TestOverlapIdenticalBytes: a byte-identical overlap is not a
// conflict under any policy.
func TestOverlapIdenticalBytes(t *testing.T) {
	for _, pol := range []vr.Policy{vr.FirstWins, vr.LastWins, vr.RejectPDU, vr.RejectConnection} {
		r := NewReassembler(1 << 16)
		r.Policy = pol
		if _, err := r.Add(Fragment{ID: 1, Offset: 0, More: true, Data: []byte{5, 6, 7, 8}}); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		out, err := r.Add(Fragment{ID: 1, Offset: 2, More: false, Data: []byte{7, 8, 9, 10}})
		if err != nil {
			t.Fatalf("%v: identical overlap rejected: %v", pol, err)
		}
		if !bytes.Equal(out, []byte{5, 6, 7, 8, 9, 10}) {
			t.Fatalf("%v: datagram = %v", pol, out)
		}
		if r.Conflicts() != 0 {
			t.Fatalf("%v: spurious conflict", pol)
		}
	}
}

// TestOverlapSandwich: a late fragment bridging two buffered spans,
// conflicting with both edges — two conflict runs in one Add, and the
// first-wins result keeps both buffered edges.
func TestOverlapSandwich(t *testing.T) {
	r := NewReassembler(1 << 16)
	_, _ = r.Add(Fragment{ID: 9, Offset: 0, More: true, Data: []byte{1, 1}})
	_, _ = r.Add(Fragment{ID: 9, Offset: 4, More: false, Data: []byte{3, 3}})
	// Bridges [0,6) with 9s: conflicts with [0,2) and [4,6), fills [2,4).
	out, err := r.Add(Fragment{ID: 9, Offset: 0, More: true, Data: []byte{9, 9, 9, 9, 9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 1, 9, 9, 3, 3}
	if !bytes.Equal(out, want) {
		t.Fatalf("datagram = %v, want %v", out, want)
	}
	if r.Conflicts() != 2 {
		t.Fatalf("conflicts = %d, want 2", r.Conflicts())
	}
}

// FuzzReassemblerOverlap drives the policy code with arbitrary
// two-fragment schedules, seeded with conflicting overlaps (same
// offset range, different payload bytes) per the issue's satellite.
func FuzzReassemblerOverlap(f *testing.F) {
	// Exact conflicting overlap: same range, different bytes.
	f.Add(uint8(0), uint32(0), []byte{1, 1, 1, 1}, uint32(0), []byte{2, 2, 2, 2})
	f.Add(uint8(1), uint32(0), []byte{1, 1, 1, 1}, uint32(0), []byte{2, 2, 2, 2})
	f.Add(uint8(2), uint32(0), []byte{1, 1, 1, 1}, uint32(0), []byte{2, 2, 2, 2})
	f.Add(uint8(3), uint32(0), []byte{1, 1, 1, 1}, uint32(0), []byte{2, 2, 2, 2})
	// Shifted partial conflict and a teardrop-style enclosure.
	f.Add(uint8(0), uint32(0), []byte{1, 2, 3, 4, 5, 6}, uint32(2), []byte{9, 9})
	f.Add(uint8(2), uint32(2), []byte{9, 9}, uint32(0), []byte{1, 2, 3, 4, 5, 6})
	// Identical duplicate (must never conflict).
	f.Add(uint8(3), uint32(4), []byte{7, 7, 7}, uint32(4), []byte{7, 7, 7})

	f.Fuzz(func(t *testing.T, pol uint8, off1 uint32, d1 []byte, off2 uint32, d2 []byte) {
		r := NewReassembler(1 << 16)
		r.Policy = vr.Policy(pol % 4)
		rejecting := r.Policy == vr.RejectPDU || r.Policy == vr.RejectConnection
		for _, fr := range []Fragment{
			{ID: 1, Offset: off1 % 4096, More: true, Data: d1},
			{ID: 1, Offset: off2 % 4096, More: true, Data: d2},
		} {
			_, err := r.Add(fr)
			switch {
			case err == nil || errors.Is(err, ErrBufferFull):
			case errors.Is(err, ErrConflictingOverlap):
				if !rejecting {
					t.Fatalf("policy %v returned %v", r.Policy, err)
				}
			default:
				t.Fatalf("unexpected error %v", err)
			}
		}
		if r.Used() < 0 {
			t.Fatalf("Used = %d", r.Used())
		}
		if rejecting && r.Rejects() > 0 && r.Conflicts() == 0 {
			t.Fatal("reject without a recorded conflict")
		}
	})
}
