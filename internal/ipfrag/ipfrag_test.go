package ipfrag

import (
	"bytes"
	"math/rand"
	"testing"
)

func payload(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestSplitAndReassemble(t *testing.T) {
	p := payload(1000, 1)
	frags, err := Split(7, p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 5 { // ceil(1000/244)
		t.Fatalf("split into %d fragments", len(frags))
	}
	for i, f := range frags {
		if f.More != (i < len(frags)-1) {
			t.Fatalf("fragment %d MF = %v", i, f.More)
		}
		if len(f.Data)+HeaderSize > 256 {
			t.Fatalf("fragment %d oversize", i)
		}
	}
	r := NewReassembler(0)
	for i, f := range frags {
		out, err := r.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if (out != nil) != (i == len(frags)-1) {
			t.Fatalf("completion at fragment %d", i)
		}
		if out != nil && !bytes.Equal(out, p) {
			t.Fatal("reassembled payload differs")
		}
	}
	if r.Pending() != 0 || r.Used() != 0 {
		t.Fatal("reassembler must be empty after completion")
	}
}

func TestSplitSmallPayload(t *testing.T) {
	frags, err := Split(1, []byte{1, 2, 3}, 256)
	if err != nil || len(frags) != 1 || frags[0].More {
		t.Fatalf("small payload: %v %v", frags, err)
	}
	if _, err := Split(1, []byte{1}, HeaderSize); err != ErrTinyMTU {
		t.Fatalf("tiny MTU: %v", err)
	}
}

func TestWireRoundTrip(t *testing.T) {
	f := Fragment{ID: 9, Offset: 244, More: true, Data: []byte{1, 2, 3}}
	b := f.AppendTo(nil)
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 9 || got.Offset != 244 || !got.More || !bytes.Equal(got.Data, f.Data) {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := Decode(b[:HeaderSize-1]); err != ErrShortBuffer {
		t.Fatal("short header")
	}
	if _, err := Decode(b[:len(b)-1]); err != ErrShortBuffer {
		t.Fatal("short data")
	}
}

func TestReassembleDisordered(t *testing.T) {
	p := payload(800, 2)
	frags, _ := Split(3, p, 128)
	rng := rand.New(rand.NewSource(9))
	rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
	r := NewReassembler(0)
	var got []byte
	for _, f := range frags {
		out, err := r.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, p) {
		t.Fatal("disordered reassembly failed")
	}
}

func TestReassembleDuplicates(t *testing.T) {
	p := payload(300, 3)
	frags, _ := Split(4, p, 128)
	r := NewReassembler(0)
	_, _ = r.Add(frags[0])
	_, _ = r.Add(frags[0]) // duplicate must not double-count occupancy
	used := r.Used()
	if used != len(frags[0].Data) {
		t.Fatalf("Used = %d, want %d", used, len(frags[0].Data))
	}
	for _, f := range frags[1:] {
		if out, _ := r.Add(f); out != nil && !bytes.Equal(out, p) {
			t.Fatal("payload mismatch")
		}
	}
}

// TestMultiStageRefragmentation: an internet path that fragments twice
// (two MTU reductions). IP still reassembles because offsets are
// byte-based, but ALL fragments buffer at the receiver until the
// whole datagram is in — contrast with chunk immediate processing.
func TestMultiStageRefragmentation(t *testing.T) {
	p := payload(2000, 4)
	stage1, _ := Split(5, p, 512)
	var stage2 []Fragment
	for _, f := range stage1 {
		refs, err := Refragment(f, 128)
		if err != nil {
			t.Fatal(err)
		}
		stage2 = append(stage2, refs...)
	}
	if len(stage2) <= len(stage1) {
		t.Fatal("second stage must increase fragment count")
	}
	r := NewReassembler(0)
	var got []byte
	for _, f := range stage2 {
		out, err := r.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, p) {
		t.Fatal("two-stage reassembly failed")
	}
}

func TestRefragmentPassThrough(t *testing.T) {
	f := Fragment{ID: 1, Offset: 0, Data: []byte{1, 2}}
	out, err := Refragment(f, 128)
	if err != nil || len(out) != 1 {
		t.Fatalf("small fragment: %v %v", out, err)
	}
	if _, err := Refragment(Fragment{Data: payload(100, 5)}, HeaderSize); err != ErrTinyMTU {
		t.Fatal("tiny MTU")
	}
}

// TestBufferLockup (experiment P4): interleave fragments of many
// datagrams, none completable, until the buffer fills — the Section
// 3.3 lock-up. Then show Evict breaks the deadlock at the cost of
// whole datagrams.
func TestBufferLockup(t *testing.T) {
	const capacity = 1024
	r := NewReassembler(capacity)
	// First fragment (of 2) from many datagrams; none can complete.
	id := uint32(0)
	for {
		f := Fragment{ID: id, Offset: 0, More: true, Data: payload(128, int64(id))}
		_, err := r.Add(f)
		if err == ErrBufferFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		id++
		if id > 100 {
			t.Fatal("buffer never filled")
		}
	}
	if !r.LockedUp() {
		t.Fatal("reassembler must report lock-up")
	}
	before := r.Pending()
	victim, ok := r.Evict()
	if !ok || r.Pending() != before-1 {
		t.Fatal("evict must discard one datagram")
	}
	if r.LockedUp() {
		t.Fatal("evict must free space")
	}
	// The evicted datagram's tail now completes nothing: its data is
	// gone (loss amplification).
	tail := Fragment{ID: victim, Offset: 128, More: false, Data: payload(8, 99)}
	out, err := r.Add(tail)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Fatal("evicted datagram must not complete")
	}
}

func TestEvictEmpty(t *testing.T) {
	r := NewReassembler(10)
	if _, ok := r.Evict(); ok {
		t.Fatal("nothing to evict")
	}
}

func TestReassemblySteps(t *testing.T) {
	if s := ReassemblySteps(2); len(s) == 0 {
		t.Fatal("empty description")
	}
}

func BenchmarkReassemble64K(b *testing.B) {
	p := payload(64*1024, 1)
	frags, _ := Split(1, p, 1400)
	b.SetBytes(int64(len(p)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReassembler(0)
		var out []byte
		for _, f := range frags {
			if o, err := r.Add(f); err != nil {
				b.Fatal(err)
			} else if o != nil {
				out = o
			}
		}
		if out == nil {
			b.Fatal("no datagram")
		}
	}
}
