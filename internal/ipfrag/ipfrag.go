// Package ipfrag implements IP-style fragmentation and reassembly
// [POST 81], the primary comparison system of Section 3.2. An IP
// fragment carries a single level of framing — (identification,
// fragment offset, more-fragments bit) — so a fragment cannot be
// processed until its whole datagram has been physically reassembled:
// "fragments must be reassembled into PDUs at the receiver before they
// can be processed as usual". Reassembly needs one step per
// fragmentation format, buffers fragments (extra data movement), and
// its buffer can lock up (Section 3.3, [KENT 87]).
package ipfrag

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"chunks/internal/vr"
)

// Wire layout of a fragment:
//
//	offset size field
//	0      4    identification (datagram ID)
//	4      4    fragment offset in bytes
//	8      2    data length
//	10     1    flags (bit0 = more fragments)
//	11     1    reserved
//	12     -    data
const (
	// HeaderSize is the per-fragment header length.
	HeaderSize = 12
	flagMF     = 1 << 0
)

// Errors reported by the fragmenter and reassembler.
var (
	ErrShortBuffer = errors.New("ipfrag: truncated fragment")
	ErrTinyMTU     = errors.New("ipfrag: MTU cannot hold any data")
	ErrBufferFull  = errors.New("ipfrag: reassembly buffer full")
	// ErrConflictingOverlap reports a fragment whose bytes disagree
	// with already-buffered bytes for the same offsets, under a
	// rejecting overlap policy. The whole datagram is discarded.
	ErrConflictingOverlap = errors.New("ipfrag: conflicting overlap")
)

// A Fragment is one piece of a datagram.
type Fragment struct {
	ID     uint32
	Offset uint32
	More   bool
	Data   []byte
}

// AppendTo appends the wire encoding.
func (f *Fragment) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, f.ID)
	b = binary.BigEndian.AppendUint32(b, f.Offset)
	b = binary.BigEndian.AppendUint16(b, uint16(len(f.Data)))
	var fl byte
	if f.More {
		fl |= flagMF
	}
	b = append(b, fl, 0)
	return append(b, f.Data...)
}

// Decode parses one fragment; Data aliases b.
func Decode(b []byte) (Fragment, error) {
	if len(b) < HeaderSize {
		return Fragment{}, ErrShortBuffer
	}
	n := int(binary.BigEndian.Uint16(b[8:10]))
	if len(b) < HeaderSize+n {
		return Fragment{}, ErrShortBuffer
	}
	return Fragment{
		ID:     binary.BigEndian.Uint32(b[0:4]),
		Offset: binary.BigEndian.Uint32(b[4:8]),
		More:   b[10]&flagMF != 0,
		Data:   b[HeaderSize : HeaderSize+n : HeaderSize+n],
	}, nil
}

// Fragment splits a datagram payload into fragments whose encoded size
// fits mtu. The final fragment has More=false.
func Split(id uint32, payload []byte, mtu int) ([]Fragment, error) {
	per := mtu - HeaderSize
	if per < 1 {
		return nil, ErrTinyMTU
	}
	var out []Fragment
	for off := 0; ; off += per {
		end := off + per
		if end >= len(payload) {
			out = append(out, Fragment{ID: id, Offset: uint32(off), More: false, Data: payload[off:]})
			return out, nil
		}
		out = append(out, Fragment{ID: id, Offset: uint32(off), More: true, Data: payload[off:end]})
	}
}

// Refragment splits an existing fragment for a smaller MTU — IP's
// fragments-of-fragments. Unlike chunks, this ADDS a reassembly
// relationship the receiver must resolve with the same single-level
// (ID, offset, MF) namespace.
func Refragment(f Fragment, mtu int) ([]Fragment, error) {
	per := mtu - HeaderSize
	if per < 1 {
		return nil, ErrTinyMTU
	}
	if len(f.Data) <= per {
		return []Fragment{f}, nil
	}
	var out []Fragment
	for off := 0; off < len(f.Data); off += per {
		end := off + per
		last := false
		if end >= len(f.Data) {
			end = len(f.Data)
			last = true
		}
		out = append(out, Fragment{
			ID:     f.ID,
			Offset: f.Offset + uint32(off),
			More:   f.More || !last,
			Data:   f.Data[off:end],
		})
	}
	return out, nil
}

// pending is one datagram under reassembly.
type pending struct {
	data  []byte
	have  []span
	total int // -1 until the final fragment arrives
	bytes int // buffered payload bytes (occupancy accounting)
}

type span struct{ lo, hi int }

// A Reassembler performs receiver-side datagram reassembly with a
// bounded buffer — the structure whose lock-up Section 3.3 describes:
// "reassembly buffer lock-up occurs when the reassembly buffer is
// filled completely and yet no single PDU is complete."
type Reassembler struct {
	// Capacity bounds total buffered payload bytes; 0 means unbounded.
	Capacity int

	// Policy selects the conflicting-overlap behavior. The zero value
	// (vr.FirstWins) keeps the bytes first buffered; vr.LastWins
	// overwrites (the historic behavior of this reassembler, and of
	// several real IP stacks); vr.RejectPDU and vr.RejectConnection
	// both discard the whole datagram with ErrConflictingOverlap — IP
	// reassembly has no connection to tear down, so the distinction is
	// the caller's.
	Policy vr.Policy

	pend      map[uint32]*pending
	used      int
	conflicts int
	rejects   int
}

// NewReassembler returns a reassembler with the given buffer capacity.
func NewReassembler(capacity int) *Reassembler {
	return &Reassembler{Capacity: capacity, pend: make(map[uint32]*pending)}
}

// Used returns the buffered payload bytes.
func (r *Reassembler) Used() int { return r.used }

// Conflicts returns the number of conflicting-overlap runs observed
// (fragments carrying bytes that disagreed with buffered bytes).
func (r *Reassembler) Conflicts() int { return r.conflicts }

// Rejects returns the number of datagrams discarded by a rejecting
// overlap policy.
func (r *Reassembler) Rejects() int { return r.rejects }

// Pending returns the number of incomplete datagrams.
func (r *Reassembler) Pending() int { return len(r.pend) }

// LockedUp reports the Section 3.3 condition: the buffer is full but
// no datagram is complete, so no progress is possible without
// discarding partial datagrams.
func (r *Reassembler) LockedUp() bool {
	return r.Capacity > 0 && r.used >= r.Capacity
}

// Add ingests one fragment. It returns the completed datagram payload
// when f finishes one, or nil. ErrBufferFull reports that buffering
// this fragment would exceed capacity — the caller must drop it (and,
// per Kent & Mogul, the rest of its datagram is then doomed to time
// out).
func (r *Reassembler) Add(f Fragment) ([]byte, error) {
	p := r.pend[f.ID]
	if p == nil {
		p = &pending{total: -1}
		r.pend[f.ID] = p
	}
	lo, hi := int(f.Offset), int(f.Offset)+len(f.Data)

	fresh := hi - lo
	for _, s := range p.have {
		if lo >= s.lo && hi <= s.hi {
			fresh = 0 // duplicate
			break
		}
	}
	if fresh > 0 && r.Capacity > 0 && r.used+fresh > r.Capacity {
		if len(p.have) == 0 {
			delete(r.pend, f.ID)
		}
		return nil, ErrBufferFull
	}

	// Conflicting-overlap handling: compare the fragment's bytes with
	// what is already buffered wherever the ranges intersect. (The
	// pre-policy reassembler copied unconditionally — silent last-wins.)
	dups := overlapSpans(p.have, lo, hi)
	nConflicts := 0
	for _, d := range dups {
		nConflicts += len(diffRuns(p.data[d.lo:d.hi], f.Data[d.lo-lo:d.hi-lo]))
	}
	if nConflicts > 0 {
		r.conflicts += nConflicts
		if r.Policy == vr.RejectPDU || r.Policy == vr.RejectConnection {
			r.used -= p.bytes
			delete(r.pend, f.ID)
			r.rejects++
			return nil, ErrConflictingOverlap
		}
	}

	if hi > len(p.data) {
		grown := make([]byte, hi)
		copy(grown, p.data)
		p.data = grown
	}
	if len(dups) == 0 || r.Policy == vr.LastWins {
		copy(p.data[lo:hi], f.Data)
	} else {
		// FirstWins: write only the uncovered sub-ranges; buffered
		// bytes keep their first-accepted values.
		for _, g := range gapsIn(dups, lo, hi) {
			copy(p.data[g.lo:g.hi], f.Data[g.lo-lo:g.hi-lo])
		}
	}
	p.have = append(p.have, span{lo, hi})
	if fresh > 0 {
		p.bytes += fresh
		r.used += fresh
	}
	if !f.More {
		p.total = hi
	}
	if p.total >= 0 && covered(p.have, p.total) {
		out := p.data[:p.total]
		r.used -= p.bytes
		delete(r.pend, f.ID)
		return out, nil
	}
	return nil, nil
}

// Evict discards one incomplete datagram (smallest ID for
// determinism), freeing its buffer space; the datagram's already-
// received fragments are lost — the loss-amplification cost of
// breaking a lock-up. It reports whether anything was evicted.
func (r *Reassembler) Evict() (uint32, bool) {
	var victim uint32
	found := false
	for id := range r.pend { //lint:allow maprange min-reduction over unique keys; result is iteration-order independent
		if !found || id < victim {
			victim, found = id, true
		}
	}
	if !found {
		return 0, false
	}
	r.used -= r.pend[victim].bytes
	delete(r.pend, victim)
	return victim, true
}

// overlapSpans returns the merged sub-ranges of [lo, hi) already
// covered by have — the duplicate portions of an incoming fragment.
func overlapSpans(have []span, lo, hi int) []span {
	var out []span
	for _, s := range have {
		a, b := max(s.lo, lo), min(s.hi, hi)
		if a < b {
			out = append(out, span{a, b})
		}
	}
	if len(out) < 2 {
		return out
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
	merged := out[:1]
	for _, s := range out[1:] {
		last := &merged[len(merged)-1]
		if s.lo <= last.hi {
			if s.hi > last.hi {
				last.hi = s.hi
			}
		} else {
			merged = append(merged, s)
		}
	}
	return merged
}

// diffRuns returns the maximal runs where old and new disagree.
func diffRuns(old, new []byte) []span {
	if bytes.Equal(old, new) {
		return nil
	}
	var out []span
	runLo, inRun := 0, false
	for i := range old {
		same := old[i] == new[i]
		if !same && !inRun {
			runLo, inRun = i, true
		}
		if same && inRun {
			out = append(out, span{runLo, i})
			inRun = false
		}
	}
	if inRun {
		out = append(out, span{runLo, len(old)})
	}
	return out
}

// gapsIn returns the sub-ranges of [lo, hi) NOT covered by the merged
// span list — the genuinely fresh portions of an incoming fragment.
func gapsIn(covered []span, lo, hi int) []span {
	var out []span
	cur := lo
	for _, s := range covered {
		if cur < s.lo {
			out = append(out, span{cur, s.lo})
		}
		if s.hi > cur {
			cur = s.hi
		}
	}
	if cur < hi {
		out = append(out, span{cur, hi})
	}
	return out
}

// covered reports whether spans cover [0, total).
func covered(spans []span, total int) bool {
	// Merge-scan; span lists are tiny (fragments per datagram).
	cur := 0
	for cur < total {
		advanced := false
		for _, s := range spans {
			if s.lo <= cur && s.hi > cur {
				cur = s.hi
				advanced = true
			}
		}
		if !advanced {
			return false
		}
	}
	return true
}

// ReassemblySteps describes the two-step cost of Section 3: with IP, a
// transport PDU carried in fragments needs fragment→datagram
// reassembly, and the stream then needs datagram→stream ordering —
// one physical copy per step. Chunks do both in one step.
func ReassemblySteps(stages int) string {
	return fmt.Sprintf("ip: %d reassembly step(s) + 1 ordering step; chunks: 1 step total", stages)
}
