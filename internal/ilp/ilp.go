// Package ilp implements Integrated Layer Processing [CLAR 90] over
// chunks: every protocol function — decryption, error detection
// accumulation, placement into the application address space — runs in
// ONE pass over each chunk as it arrives, in any order, with no
// intermediate buffering.
//
// Section 1's performance argument is made measurable here: "buffering
// requires moving the data twice: once from network interface to
// memory (the buffer) and once from memory to the processor", and the
// bus is the bottleneck. The Immediate driver touches each payload
// byte twice (read from the interface, write to its final location);
// the Buffered baseline (reassemble-then-process) touches each byte
// at least three times and delays every byte of a PDU until the PDU's
// last chunk arrives.
//
// The cipher is the package's stand-in for the paper's
// disordered-data DES-CBC replacement [FELD 92]: a position-keyed
// stream cipher whose keystream depends only on the absolute byte
// position, so any fragment can be deciphered independently — the
// property chunk labels exist to enable. (It is a demonstration
// substrate, not a vetted cipher.)
package ilp

import (
	"chunks/internal/chunk"
	"chunks/internal/stats"
)

// Cipher is a position-tweaked XOR stream cipher. Identical Key and
// positions encrypt and decrypt (XOR is an involution).
type Cipher struct {
	Key uint64
}

// splitmix64 is the keystream PRF (public-domain constant mix).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// XORKeyStreamAt XORs src with the keystream for absolute byte
// positions [pos, pos+len(src)) into dst (dst may alias src).
func (c Cipher) XORKeyStreamAt(dst, src []byte, pos uint64) {
	for i := range src {
		p := pos + uint64(i)
		word := splitmix64(c.Key ^ p>>3)
		dst[i] = src[i] ^ byte(word>>(8*(p&7)))
	}
}

// StreamPos returns the connection-stream byte position of a data
// chunk's first payload byte: C.SN elements of SIZE bytes precede it.
// This is the "spatial reordering" coordinate — where the data lands
// in the application address space regardless of arrival order.
func StreamPos(c *chunk.Chunk) uint64 {
	return c.C.SN * uint64(c.Size)
}

// A Placer writes chunk payloads directly to their final location in
// the application address space (footnote: "reassembly in place"
// [STER 90]).
type Placer struct {
	// Buf is the application buffer; Base is the stream position of
	// Buf[0].
	Buf  []byte
	Base uint64
	// Touches, when non-nil, counts the bytes moved.
	Touches *stats.Touches
}

// Place copies the chunk payload to its stream position. Bytes
// falling outside Buf are ignored (the application asked for a
// window).
func (p *Placer) Place(c *chunk.Chunk) {
	pos := StreamPos(c)
	if pos < p.Base {
		return
	}
	off := pos - p.Base
	if off >= uint64(len(p.Buf)) {
		return
	}
	n := copy(p.Buf[off:], c.Payload)
	if p.Touches != nil {
		p.Touches.Move(n) // write to final location
	}
}
