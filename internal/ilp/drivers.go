package ilp

import (
	"sort"

	"chunks/internal/chunk"
	"chunks/internal/stats"
	"chunks/internal/vr"
	"chunks/internal/wsc"
)

// An Arrival is one data chunk at its receive time.
type Arrival struct {
	C    chunk.Chunk
	Tick int64
}

// Result aggregates the measurements of one receive-path run.
type Result struct {
	// Touches counts payload bytes moved across the bus.
	Touches stats.Touches
	// Latency samples, one per chunk: ticks between the chunk's
	// arrival and the moment its bytes reached their final location.
	Latency stats.Latency
	// Buffer is the reassembly-buffer occupancy (zero for the
	// immediate path, which has no reassembly buffer).
	Buffer stats.Occupancy
	// Parity is the incremental WSC-2 checksum of the deciphered
	// stream, accumulated by the integrated checksum stage (see
	// checksum). Because WSC-2 is order-independent, all three drivers
	// produce the same parity for the same stream — and it equals
	// wsc.EncodeBytes of the reassembled plaintext.
	Parity wsc.Parity
	// Out is the application buffer after the run.
	Out []byte
}

// checksum is the integrated error-detection stage ([CLAR 90]'s point
// applied to checksumming): it folds a chunk's deciphered payload into
// the run's WSC-2 accumulator during the same pass that deciphers and
// places it, while the bytes are already in cache — so it adds no bus
// crossings and Touches is unchanged. The symbol position is the
// chunk's connection-stream position; WSC-2's order independence is
// what lets the immediate and reordering drivers checksum chunks in
// raw arrival order, which a running CRC cannot do.
func checksum(acc *wsc.Accumulator, c *chunk.Chunk, payload []byte) {
	pos := StreamPos(c)
	if pos%wsc.SymbolSize != 0 || len(payload)%wsc.SymbolSize != 0 {
		return // only the symbol-aligned stream is covered
	}
	// The only failure mode is a position past MaxPosition (a stream
	// beyond 2 GiB); such data is simply outside the code block.
	_ = acc.AddBytes(pos/wsc.SymbolSize, payload)
}

// RunImmediate is the chunk receive path: each chunk is deciphered and
// placed the moment it arrives — one read from the interface, one
// write to the application address space, latency zero.
func RunImmediate(arrivals []Arrival, cipher Cipher, bufSize int, base uint64) *Result {
	res := &Result{Out: make([]byte, bufSize)}
	placer := Placer{Buf: res.Out, Base: base, Touches: &res.Touches}
	var acc wsc.Accumulator
	tmp := make([]byte, 0, 4096)
	for i := range arrivals {
		c := &arrivals[i].C
		res.Touches.Move(len(c.Payload)) // read from interface
		if cap(tmp) < len(c.Payload) {
			tmp = make([]byte, len(c.Payload))
		}
		tmp = tmp[:len(c.Payload)]
		cipher.XORKeyStreamAt(tmp, c.Payload, StreamPos(c))
		dec := *c
		dec.Payload = tmp
		checksum(&acc, c, tmp)
		placer.Place(&dec) // write to final location
		res.Latency.Record(0)
	}
	res.Parity = acc.Parity()
	return res
}

// RunBuffered is the conventional receive path: chunks are buffered
// until their TPDU is complete, then the TPDU is sorted, deciphered
// and placed — two extra bus crossings per byte and a latency equal to
// the wait for the PDU's last chunk.
func RunBuffered(arrivals []Arrival, cipher Cipher, bufSize int, base uint64) *Result {
	res := &Result{Out: make([]byte, bufSize)}
	placer := Placer{Buf: res.Out, Base: base, Touches: &res.Touches}
	var acc wsc.Accumulator

	type held struct {
		c    chunk.Chunk
		tick int64
	}
	pending := make(map[uint32][]held)
	var track vr.Tracker

	for i := range arrivals {
		a := &arrivals[i]
		c := a.C
		res.Touches.Move(len(c.Payload)) // read from interface
		// Copy into the reassembly buffer.
		buffered := c.Clone()
		res.Touches.Move(len(c.Payload)) // write into buffer
		res.Buffer.Grow(len(c.Payload))
		key := vr.Key{Level: vr.LevelT, ID: c.T.ID}
		pending[c.T.ID] = append(pending[c.T.ID], held{buffered, a.Tick})
		if _, err := track.Add(key, c.T.SN, uint64(c.Len), c.T.ST); err != nil {
			continue
		}
		if !track.Complete(key) {
			continue
		}
		// PDU complete: sort, decipher, place.
		hs := pending[c.T.ID]
		delete(pending, c.T.ID)
		track.Retire(key)
		sort.Slice(hs, func(x, y int) bool { return hs[x].c.T.SN < hs[y].c.T.SN })
		for _, h := range hs {
			res.Touches.Move(len(h.c.Payload)) // read from buffer
			cipher.XORKeyStreamAt(h.c.Payload, h.c.Payload, StreamPos(&h.c))
			checksum(&acc, &h.c, h.c.Payload)
			placer.Place(&h.c) // write to final location
			res.Buffer.Shrink(len(h.c.Payload))
			res.Latency.Record(a.Tick - h.tick)
		}
	}
	res.Parity = acc.Parity()
	return res
}

// RunReordering is the middle option of Section 3.3's three: data are
// REORDERED (not physically reassembled into PDUs) before processing.
// The receiver holds only out-of-order chunks: anything extending the
// in-order frontier of the connection stream is deciphered and placed
// immediately, while chunks beyond a gap wait in the reorder buffer.
// The paper: "Reordering is somewhere in-between and the number of
// times that data must be accessed depends on the amount of
// disordering in the network."
func RunReordering(arrivals []Arrival, cipher Cipher, bufSize int, base uint64) *Result {
	res := &Result{Out: make([]byte, bufSize)}
	placer := Placer{Buf: res.Out, Base: base, Touches: &res.Touches}
	var acc wsc.Accumulator

	type held struct {
		c    chunk.Chunk
		tick int64
	}
	// Out-of-order chunks keyed by their starting connection element.
	pending := make(map[uint64]held)
	// The in-order frontier starts at the stream head.
	var next uint64
	if len(arrivals) > 0 {
		next = arrivals[0].C.C.SN
		for i := range arrivals {
			if arrivals[i].C.C.SN < next {
				next = arrivals[i].C.C.SN
			}
		}
	}

	process := func(c *chunk.Chunk, waited int64) {
		res.Touches.Move(len(c.Payload)) // read (from interface or buffer)
		tmp := make([]byte, len(c.Payload))
		cipher.XORKeyStreamAt(tmp, c.Payload, StreamPos(c))
		dec := *c
		dec.Payload = tmp
		checksum(&acc, c, tmp)
		placer.Place(&dec) // write to final location
		res.Latency.Record(waited)
	}

	for i := range arrivals {
		a := &arrivals[i]
		c := a.C
		if c.C.SN == next {
			// In order: one-pass processing, like the immediate path.
			process(&c, 0)
			next += uint64(c.Len)
			// Drain any buffered chunks that are now in order.
			for {
				h, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				res.Buffer.Shrink(len(h.c.Payload))
				process(&h.c, a.Tick-h.tick)
				next += uint64(h.c.Len)
			}
			continue
		}
		// Out of order: buffer (extra write now, extra read later).
		res.Touches.Move(len(c.Payload)) // read from interface
		buffered := c.Clone()
		res.Touches.Move(len(c.Payload)) // write into reorder buffer
		res.Buffer.Grow(len(c.Payload))
		pending[c.C.SN] = held{buffered, a.Tick}
	}
	res.Parity = acc.Parity()
	return res
}
