package ilp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"chunks/internal/chunk"
	"chunks/internal/wsc"
)

func TestCipherInvolution(t *testing.T) {
	f := func(key uint64, data []byte, pos uint32) bool {
		c := Cipher{Key: key}
		enc := make([]byte, len(data))
		c.XORKeyStreamAt(enc, data, uint64(pos))
		dec := make([]byte, len(enc))
		c.XORKeyStreamAt(dec, enc, uint64(pos))
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCipherPositionIndependence: deciphering a fragment needs only
// its own position — encrypt a whole buffer, decrypt it in shuffled
// fragments.
func TestCipherPositionIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 1000)
	rng.Read(data)
	c := Cipher{Key: 0xFEED}
	enc := make([]byte, len(data))
	c.XORKeyStreamAt(enc, data, 0)

	dec := make([]byte, len(data))
	var offs []int
	for off := 0; off < len(data); off += 100 {
		offs = append(offs, off)
	}
	rng.Shuffle(len(offs), func(i, j int) { offs[i], offs[j] = offs[j], offs[i] })
	for _, off := range offs {
		c.XORKeyStreamAt(dec[off:off+100], enc[off:off+100], uint64(off))
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("fragment-wise decryption failed")
	}
}

func TestCipherPositionMatters(t *testing.T) {
	c := Cipher{Key: 1}
	src := bytes.Repeat([]byte{0xAA}, 64)
	a := make([]byte, 64)
	b := make([]byte, 64)
	c.XORKeyStreamAt(a, src, 0)
	c.XORKeyStreamAt(b, src, 64)
	if bytes.Equal(a, b) {
		t.Fatal("keystream must differ by position")
	}
	d := Cipher{Key: 2}
	b2 := make([]byte, 64)
	d.XORKeyStreamAt(b2, src, 0)
	if bytes.Equal(a, b2) {
		t.Fatal("keystream must differ by key")
	}
}

func TestStreamPos(t *testing.T) {
	c := chunk.Chunk{Size: 4, C: chunk.Tuple{SN: 10}}
	if StreamPos(&c) != 40 {
		t.Fatalf("StreamPos = %d", StreamPos(&c))
	}
}

func TestPlacerWindow(t *testing.T) {
	buf := make([]byte, 8)
	p := Placer{Buf: buf, Base: 16}
	mk := func(csn uint64, data ...byte) chunk.Chunk {
		return chunk.Chunk{Size: 1, Len: uint32(len(data)), C: chunk.Tuple{SN: csn}, Payload: data}
	}
	before := mk(10, 1, 2) // entirely before the window
	p.Place(&before)
	inside := mk(18, 7, 8) // positions 18,19 -> offsets 2,3
	p.Place(&inside)
	after := mk(30, 9) // beyond the window
	p.Place(&after)
	straddle := mk(22, 5, 5, 5) // offsets 6,7 fit; 8 clipped
	p.Place(&straddle)
	want := []byte{0, 0, 7, 8, 0, 0, 5, 5}
	if !bytes.Equal(buf, want) {
		t.Fatalf("buf = %v, want %v", buf, want)
	}
}

// arrivalsFor builds a TPDU stream: `tpdus` TPDUs of `elems` 4-byte
// elements, encrypted, fragmented, in the given arrival order.
func arrivalsFor(t *testing.T, tpdus, elems, perFrag int, shuffleSeed int64) ([]Arrival, []byte, Cipher) {
	t.Helper()
	cipher := Cipher{Key: 0xC0FFEE}
	rng := rand.New(rand.NewSource(7))
	stream := make([]byte, tpdus*elems*4)
	rng.Read(stream)

	var arrivals []Arrival
	for i := 0; i < tpdus; i++ {
		plain := stream[i*elems*4 : (i+1)*elems*4]
		enc := make([]byte, len(plain))
		csn := uint64(i * elems)
		cipher.XORKeyStreamAt(enc, plain, csn*4)
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: 4, Len: uint32(elems),
			C:       chunk.Tuple{ID: 1, SN: csn},
			T:       chunk.Tuple{ID: uint32(i), SN: 0, ST: true},
			X:       chunk.Tuple{ID: 1, SN: csn},
			Payload: enc,
		}
		frags, err := c.SplitToFit(chunk.HeaderSize + perFrag*4)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frags {
			arrivals = append(arrivals, Arrival{C: f.Clone(), Tick: int64(len(arrivals))})
		}
	}
	if shuffleSeed != 0 {
		sh := rand.New(rand.NewSource(shuffleSeed))
		sh.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })
		for i := range arrivals {
			arrivals[i].Tick = int64(i)
		}
	}
	return arrivals, stream, cipher
}

func TestImmediateCorrectDisordered(t *testing.T) {
	arrivals, want, cipher := arrivalsFor(t, 4, 32, 8, 99)
	res := RunImmediate(arrivals, cipher, len(want), 0)
	if !bytes.Equal(res.Out, want) {
		t.Fatal("immediate path produced wrong application data")
	}
	if res.Buffer.Peak() != 0 {
		t.Fatal("immediate path must not buffer")
	}
	if res.Latency.Max() != 0 {
		t.Fatal("immediate path has zero processing latency")
	}
}

func TestBufferedCorrectDisordered(t *testing.T) {
	arrivals, want, cipher := arrivalsFor(t, 4, 32, 8, 99)
	res := RunBuffered(arrivals, cipher, len(want), 0)
	if !bytes.Equal(res.Out, want) {
		t.Fatal("buffered path produced wrong application data")
	}
	if res.Buffer.Peak() == 0 {
		t.Fatal("buffered path must buffer")
	}
}

// TestImmediateHalvesBusTraffic (experiment P1): the buffered path
// moves every byte across the bus twice as many times and adds
// waiting-for-PDU latency.
func TestImmediateHalvesBusTraffic(t *testing.T) {
	arrivals, want, cipher := arrivalsFor(t, 8, 64, 8, 31)
	imm := RunImmediate(arrivals, cipher, len(want), 0)
	buf := RunBuffered(arrivals, cipher, len(want), 0)

	payload := int64(len(want))
	if got := imm.Touches.PerByte(payload); got != 2.0 {
		t.Fatalf("immediate touches/byte = %v, want 2", got)
	}
	if got := buf.Touches.PerByte(payload); got != 4.0 {
		t.Fatalf("buffered touches/byte = %v, want 4", got)
	}
	if buf.Latency.Mean() <= imm.Latency.Mean() {
		t.Fatal("buffering must add latency")
	}
	if buf.Latency.Max() == 0 {
		t.Fatal("disordered arrivals must make some chunk wait")
	}
}

func TestBufferedInOrderStillBuffers(t *testing.T) {
	// Even with perfectly ordered arrival the buffered path pays the
	// copies (its latency collapses, its bus cost does not).
	arrivals, want, cipher := arrivalsFor(t, 2, 32, 8, 0)
	buf := RunBuffered(arrivals, cipher, len(want), 0)
	if !bytes.Equal(buf.Out, want) {
		t.Fatal("in-order buffered path wrong")
	}
	if got := buf.Touches.PerByte(int64(len(want))); got != 4.0 {
		t.Fatalf("touches/byte = %v", got)
	}
}

func BenchmarkImmediateVsBuffered(b *testing.B) {
	cipher := Cipher{Key: 1}
	rng := rand.New(rand.NewSource(1))
	const tpdus, elems, perFrag = 4, 256, 64
	stream := make([]byte, tpdus*elems*4)
	rng.Read(stream)
	var arrivals []Arrival
	for i := 0; i < tpdus; i++ {
		csn := uint64(i * elems)
		enc := make([]byte, elems*4)
		cipher.XORKeyStreamAt(enc, stream[i*elems*4:(i+1)*elems*4], csn*4)
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: 4, Len: elems,
			C: chunk.Tuple{ID: 1, SN: csn}, T: chunk.Tuple{ID: uint32(i), ST: true}, X: chunk.Tuple{ID: 1, SN: csn},
			Payload: enc,
		}
		frags, _ := c.SplitToFit(chunk.HeaderSize + perFrag*4)
		for _, f := range frags {
			arrivals = append(arrivals, Arrival{C: f, Tick: int64(len(arrivals))})
		}
	}
	b.Run("immediate", func(b *testing.B) {
		b.SetBytes(int64(len(stream)))
		for i := 0; i < b.N; i++ {
			RunImmediate(arrivals, cipher, len(stream), 0)
		}
	})
	b.Run("buffered", func(b *testing.B) {
		b.SetBytes(int64(len(stream)))
		for i := 0; i < b.N; i++ {
			RunBuffered(arrivals, cipher, len(stream), 0)
		}
	})
}

func TestReorderingCorrectDisordered(t *testing.T) {
	arrivals, want, cipher := arrivalsFor(t, 4, 32, 8, 99)
	res := RunReordering(arrivals, cipher, len(want), 0)
	if !bytes.Equal(res.Out, want) {
		t.Fatal("reordering path produced wrong application data")
	}
	if res.Buffer.Peak() == 0 {
		t.Fatal("disordered arrivals must use the reorder buffer")
	}
}

func TestReorderingInOrderMatchesImmediate(t *testing.T) {
	// With zero disorder the reordering path degenerates to the
	// immediate path: 2 touches per byte, no buffer, no waiting.
	arrivals, want, cipher := arrivalsFor(t, 2, 32, 8, 0)
	res := RunReordering(arrivals, cipher, len(want), 0)
	if !bytes.Equal(res.Out, want) {
		t.Fatal("in-order reordering path wrong")
	}
	if got := res.Touches.PerByte(int64(len(want))); got != 2.0 {
		t.Fatalf("touches/byte = %v, want 2 with no disorder", got)
	}
	if res.Buffer.Peak() != 0 || res.Latency.Max() != 0 {
		t.Fatal("no disorder: no buffering, no waiting")
	}
}

// TestIntegratedChecksumAgreesAcrossDrivers: the incremental WSC-2
// stage produces the same parity no matter which driver ran and in
// what order the chunks arrived — and that parity equals a one-shot
// encode of the reassembled plaintext. This is the order-independence
// property that lets the checksum ride the single ILP pass.
func TestIntegratedChecksumAgreesAcrossDrivers(t *testing.T) {
	for _, seed := range []int64{0, 31, 99} {
		arrivals, want, cipher := arrivalsFor(t, 4, 32, 8, seed)
		ref, err := wsc.EncodeBytes(want)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Zero() {
			t.Fatal("degenerate reference parity")
		}
		imm := RunImmediate(arrivals, cipher, len(want), 0)
		buf := RunBuffered(arrivals, cipher, len(want), 0)
		reo := RunReordering(arrivals, cipher, len(want), 0)
		if imm.Parity != ref || buf.Parity != ref || reo.Parity != ref {
			t.Fatalf("seed %d: parity diverged: immediate=%+v buffered=%+v reordering=%+v want %+v",
				seed, imm.Parity, buf.Parity, reo.Parity, ref)
		}
	}
}

// TestIntegratedChecksumCatchesCorruption: flipping one payload bit in
// one arriving fragment changes the accumulated parity.
func TestIntegratedChecksumCatchesCorruption(t *testing.T) {
	arrivals, want, cipher := arrivalsFor(t, 2, 32, 8, 99)
	clean := RunImmediate(arrivals, cipher, len(want), 0)
	arrivals[3].C.Payload[5] ^= 0x10
	dirty := RunImmediate(arrivals, cipher, len(want), 0)
	if clean.Parity == dirty.Parity {
		t.Fatal("corrupted fragment left the parity unchanged")
	}
}

// TestReorderingIsInBetween reproduces the Section 3.3 sentence: the
// reordering path's bus cost sits between immediate processing and
// full reassembly, scaling with the amount of disorder.
func TestReorderingIsInBetween(t *testing.T) {
	arrivals, want, cipher := arrivalsFor(t, 8, 64, 8, 31)
	payload := int64(len(want))
	imm := RunImmediate(arrivals, cipher, len(want), 0).Touches.PerByte(payload)
	reo := RunReordering(arrivals, cipher, len(want), 0).Touches.PerByte(payload)
	buf := RunBuffered(arrivals, cipher, len(want), 0).Touches.PerByte(payload)
	if !(imm < reo && reo <= buf) {
		t.Fatalf("expected immediate(%v) < reordering(%v) <= buffered(%v)", imm, reo, buf)
	}
}
