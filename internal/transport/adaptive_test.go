package transport

import (
	"testing"
	"time"

	"chunks/internal/chunk"
	"chunks/internal/packet"
)

// adaptiveSender builds a sender on the adaptive (time-based) path,
// capturing every emitted datagram.
func adaptiveSender(t *testing.T, cfg SenderConfig, sink *[][]byte) *Sender {
	t.Helper()
	if cfg.ElemSize == 0 {
		cfg.ElemSize = 4
	}
	return NewSender(cfg, func(d []byte) {
		*sink = append(*sink, append([]byte(nil), d...))
	})
}

// TestBackoffMonotonic drives a sender into a black hole on a
// synthetic clock and asserts the acceptance property: retransmit
// intervals for one TPDU grow monotonically (exponential backoff) and
// the sender gives up with ErrPeerDead after MaxRetries.
func TestBackoffMonotonic(t *testing.T) {
	var out [][]byte
	s := adaptiveSender(t, SenderConfig{
		CID: 1, TPDUElems: 8,
		InitialRTO: 20 * time.Millisecond,
		MinRTO:     10 * time.Millisecond,
		MaxRTO:     10 * time.Second, // out of the way: pure doubling
		MaxRetries: 5,
	}, &out)
	if err := s.Write(make([]byte, 8*4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	var dead error
	for now := time.Duration(0); now < 10*time.Second; now += time.Millisecond {
		if err := s.PollAt(now); err != nil {
			dead = err
			break
		}
	}
	if dead != ErrPeerDead {
		t.Fatalf("black hole ended with %v, want ErrPeerDead", dead)
	}
	if !s.Dead() {
		t.Fatal("sender not marked dead")
	}
	if got := len(s.RetransmitLog); got != 5 {
		t.Fatalf("recorded %d retransmissions, want MaxRetries=5", got)
	}
	// Intervals between successive retransmissions of the same TPDU
	// must grow monotonically (strictly: pure doubling, no clamping).
	log := s.RetransmitLog
	for i := 1; i < len(log); i++ {
		if log[i].TID != log[0].TID {
			t.Fatalf("unexpected TID %d in log", log[i].TID)
		}
		prev, cur := log[i-1].RTO, log[i].RTO
		if cur != 2*prev {
			t.Fatalf("retransmission %d: RTO %v after %v, want doubling", i, cur, prev)
		}
		gap := log[i].At - log[i-1].At
		prevGap := log[i-1].At
		if i > 1 {
			prevGap = log[i-1].At - log[i-2].At
		}
		if gap <= prevGap && i > 1 {
			t.Fatalf("retransmission gap %v did not grow past %v", gap, prevGap)
		}
	}
	// Dead senders refuse further writes and keep reporting the error.
	if err := s.Write(make([]byte, 4)); err != ErrPeerDead {
		t.Fatalf("Write on dead sender = %v, want ErrPeerDead", err)
	}
	if err := s.PollAt(time.Hour); err != ErrPeerDead {
		t.Fatalf("PollAt on dead sender = %v, want ErrPeerDead", err)
	}
}

// TestRTTEstimatorConverges: ACKs arriving a fixed delay after each
// TPDU drive SRTT to that delay and the RTO toward SRTT + 4*RTTVAR.
func TestRTTEstimatorConverges(t *testing.T) {
	var out [][]byte
	s := adaptiveSender(t, SenderConfig{
		CID: 1, TPDUElems: 8,
		InitialRTO: 500 * time.Millisecond,
		MinRTO:     time.Millisecond,
		MaxRTO:     10 * time.Second,
	}, &out)
	const rtt = 40 * time.Millisecond
	now := time.Duration(0)
	for i := 0; i < 32; i++ {
		if err := s.Write(make([]byte, 8*4)); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		// Find the TPDU we just cut (the only unacked one) and ACK it
		// rtt later.
		var tid uint32
		for id := range s.unacked {
			tid = id
		}
		now += rtt
		ack := Ack(1, tid)
		if err := s.HandleControlAt(&ack, now); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.SRTT(); got < rtt-rtt/8 || got > rtt+rtt/8 {
		t.Fatalf("SRTT %v did not converge to %v", got, rtt)
	}
	// With constant samples RTTVAR decays toward 0, so RTO approaches
	// SRTT; it must certainly have left InitialRTO far behind.
	if got := s.RTO(); got > 3*rtt {
		t.Fatalf("RTO %v still far from SRTT %v", got, s.SRTT())
	}
}

// TestNackDoesNotBackOff: NACK-driven retransmissions prove the peer
// alive; they defer the timer but neither double the RTO nor count
// toward MaxRetries.
func TestNackDoesNotBackOff(t *testing.T) {
	var out [][]byte
	s := adaptiveSender(t, SenderConfig{
		CID: 1, TPDUElems: 8,
		InitialRTO: 50 * time.Millisecond,
		MaxRetries: 2,
	}, &out)
	if err := s.Write(make([]byte, 8*4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var tid uint32
	var rec *tpduRec
	for id, r := range s.unacked {
		tid, rec = id, r
	}
	// Many NACK rounds: far more than MaxRetries.
	for i := 0; i < 10; i++ {
		nack := Nack(1, tid, nil) // ED-only request
		if err := s.HandleControlAt(&nack, time.Duration(i)*10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if rec.retries != 0 {
		t.Fatalf("NACK retransmissions counted %d retries", rec.retries)
	}
	if rec.rto != 50*time.Millisecond {
		t.Fatalf("NACK retransmissions changed RTO to %v", rec.rto)
	}
	if s.Dead() {
		t.Fatal("NACK storm killed the sender")
	}
	if len(s.RetransmitLog) != 0 {
		t.Fatal("NACK retransmissions appeared in the timer log")
	}
}

// TestCloseSignalGivesUp: a peer that dies after all data is ACKed
// still gets detected through the close-signal backoff.
func TestCloseSignalGivesUp(t *testing.T) {
	var out [][]byte
	s := adaptiveSender(t, SenderConfig{
		CID: 1, TPDUElems: 8,
		InitialRTO: 10 * time.Millisecond,
		MaxRetries: 3,
	}, &out)
	if err := s.Close(); err != nil { // nothing written: close only
		t.Fatal(err)
	}
	var dead error
	for now := time.Duration(0); now < time.Minute; now += time.Millisecond {
		if err := s.PollAt(now); err != nil {
			dead = err
			break
		}
	}
	if dead != ErrPeerDead {
		t.Fatalf("unacked close ended with %v, want ErrPeerDead", dead)
	}
}

// TestKarnRuleSuppressesRetransmitSamples: an ACK for a retransmitted
// TPDU must not feed the RTT estimator (its timing is ambiguous).
func TestKarnRuleSuppressesRetransmitSamples(t *testing.T) {
	var out [][]byte
	s := adaptiveSender(t, SenderConfig{
		CID: 1, TPDUElems: 8,
		InitialRTO: 10 * time.Millisecond,
	}, &out)
	if err := s.Write(make([]byte, 8*4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var tid uint32
	for id := range s.unacked {
		tid = id
	}
	// Let the timer fire once (a retransmission), then ACK much later.
	if err := s.PollAt(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(s.RetransmitLog) != 1 {
		t.Fatalf("expected 1 timer retransmission, got %d", len(s.RetransmitLog))
	}
	ack := Ack(1, tid)
	if err := s.HandleControlAt(&ack, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if s.SRTT() != 0 {
		t.Fatalf("retransmitted TPDU fed the estimator: SRTT %v", s.SRTT())
	}
	if s.Unacked() != 0 {
		t.Fatal("ACK not applied")
	}
}

// TestReceiverReapsStaleTPDU: an incomplete TPDU with no arrivals for
// ReapAfter polls is dropped entirely, and a full retransmission later
// rebuilds and verifies it.
func TestReceiverReapsStaleTPDU(t *testing.T) {
	var senderOut [][]byte
	s := adaptiveSender(t, SenderConfig{CID: 1, TPDUElems: 16}, &senderOut)
	var ctrl [][]byte
	r, err := NewReceiver(ReceiverConfig{ReapAfter: 5}, func(d []byte) {
		ctrl = append(ctrl, append([]byte(nil), d...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(make([]byte, 16*4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Deliver only the first datagram's worth of chunks minus the ED
	// chunk, leaving the TPDU incomplete. Easiest: decode and drop the
	// ED chunk.
	for _, d := range senderOut {
		p, err := packet.Decode(d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Chunks {
			if p.Chunks[i].Type == chunk.TypeED {
				continue
			}
			cl := p.Chunks[i].Clone()
			if err := r.HandleChunk(&cl); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := r.PendingTPDUs(); got != 1 {
		t.Fatalf("pending TPDUs %d, want 1", got)
	}
	for i := 0; i < 5; i++ {
		r.Poll()
	}
	if got := r.Reaped(); got != 1 {
		t.Fatalf("reaped %d, want 1", got)
	}
	if got := r.PendingTPDUs(); got != 0 {
		t.Fatalf("pending TPDUs after reap %d, want 0", got)
	}
	if len(r.stale) != 0 || len(r.progress) != 0 || len(r.stalled) != 0 {
		t.Fatal("reap left tracking state behind")
	}

	// A full retransmission (all chunks incl. ED) rebuilds the TPDU.
	for _, d := range senderOut {
		if err := r.HandlePacket(d); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.VerifiedCount(); got != 1 {
		t.Fatalf("verified %d after rebuild, want 1", got)
	}
}

// TestReapDisabledByDefault: without ReapAfter an incomplete TPDU's
// state survives arbitrarily many polls (the pre-hardening behaviour).
func TestReapDisabledByDefault(t *testing.T) {
	var senderOut [][]byte
	s := adaptiveSender(t, SenderConfig{CID: 1, TPDUElems: 16}, &senderOut)
	r, err := NewReceiver(ReceiverConfig{}, func(d []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(make([]byte, 16*4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, d := range senderOut {
		p, err := packet.Decode(d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Chunks {
			if p.Chunks[i].Type == chunk.TypeED {
				continue
			}
			cl := p.Chunks[i].Clone()
			if err := r.HandleChunk(&cl); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 100; i++ {
		r.Poll()
	}
	if got := r.Reaped(); got != 0 {
		t.Fatalf("reaped %d with reaping disabled", got)
	}
	if got := r.PendingTPDUs(); got != 1 {
		t.Fatalf("pending TPDUs %d, want 1", got)
	}
}
