package transport

import (
	"testing"

	"chunks/internal/chunk"
	"chunks/internal/vr"
)

func TestSignalOpenRoundTrip(t *testing.T) {
	c := SignalOpen(0xAA, 4, 100)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	sig, err := ParseSignal(&c)
	if err != nil {
		t.Fatal(err)
	}
	if !sig.Open || sig.CID != 0xAA || sig.ElemSize != 4 || sig.CSN != 100 {
		t.Fatalf("sig = %+v", sig)
	}
}

func TestSignalCloseRoundTrip(t *testing.T) {
	c := SignalClose(0xAA, 5000)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.C.ST {
		t.Fatal("close signal must carry the C.ST position")
	}
	sig, err := ParseSignal(&c)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Open || sig.CSN != 5000 {
		t.Fatalf("sig = %+v", sig)
	}
}

func TestParseSignalErrors(t *testing.T) {
	bad := chunk.Chunk{Type: chunk.TypeData, Size: 1, Len: 1, Payload: []byte{1}}
	if _, err := ParseSignal(&bad); err != ErrBadControl {
		t.Fatal("wrong type")
	}
	short := chunk.Chunk{Type: chunk.TypeSignal, Size: 2, Len: 1, Payload: []byte{sigOpen, 0}}
	if _, err := ParseSignal(&short); err != ErrBadControl {
		t.Fatal("short open")
	}
	unk := chunk.Chunk{Type: chunk.TypeSignal, Size: 1, Len: 1, Payload: []byte{9}}
	if _, err := ParseSignal(&unk); err != ErrBadControl {
		t.Fatal("unknown op")
	}
}

func TestAckRoundTrip(t *testing.T) {
	c := Ack(1, 77)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	tid, err := ParseAck(&c)
	if err != nil || tid != 77 {
		t.Fatalf("tid=%d err=%v", tid, err)
	}
	bad := chunk.Chunk{Type: chunk.TypeAck, Size: 2, Len: 1, Payload: []byte{0, 1}}
	if _, err := ParseAck(&bad); err != ErrBadControl {
		t.Fatal("short ack")
	}
}

func TestNackRoundTrip(t *testing.T) {
	miss := []vr.Interval{{Lo: 3, Hi: 9}, {Lo: 20, Hi: 21}}
	c := Nack(1, 42, miss)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	tid, got, err := ParseNack(&c)
	if err != nil || tid != 42 {
		t.Fatalf("tid=%d err=%v", tid, err)
	}
	if len(got) != 2 || got[0] != miss[0] || got[1] != miss[1] {
		t.Fatalf("missing = %v", got)
	}
	// Empty interval list = "resend ED only".
	c = Nack(1, 42, nil)
	tid, got, err = ParseNack(&c)
	if err != nil || tid != 42 || len(got) != 0 {
		t.Fatalf("empty nack: %d %v %v", tid, got, err)
	}
}

func TestParseNackErrors(t *testing.T) {
	bad := chunk.Chunk{Type: chunk.TypeNack, Size: 3, Len: 1, Payload: []byte{0, 0, 0}}
	if _, _, err := ParseNack(&bad); err != ErrBadControl {
		t.Fatal("short nack")
	}
	// Count claims more intervals than present.
	p := append([]byte{0, 0, 0, 7}, 0, 2)
	c := chunk.Chunk{Type: chunk.TypeNack, Size: uint16(len(p)), Len: 1, Payload: p}
	if _, _, err := ParseNack(&c); err != ErrBadControl {
		t.Fatal("count mismatch")
	}
}

func TestSubChunk(t *testing.T) {
	c := chunk.Chunk{
		Type: chunk.TypeData, Size: 2, Len: 10,
		C:       chunk.Tuple{ID: 1, SN: 100},
		T:       chunk.Tuple{ID: 2, SN: 20, ST: true},
		X:       chunk.Tuple{ID: 3, SN: 5, ST: true},
		Payload: make([]byte, 20),
	}
	for i := range c.Payload {
		c.Payload[i] = byte(i)
	}
	// Middle overlap: [23, 27) of T.SN space.
	sub, ok := subChunk(&c, vr.Interval{Lo: 23, Hi: 27})
	if !ok {
		t.Fatal("overlap expected")
	}
	if sub.Len != 4 || sub.T.SN != 23 || sub.C.SN != 103 || sub.X.SN != 8 {
		t.Fatalf("sub = %v", &sub)
	}
	if sub.T.ST || sub.X.ST || sub.C.ST {
		t.Fatal("non-tail sub-chunk must clear ST bits")
	}
	if sub.Payload[0] != 6 {
		t.Fatalf("payload offset wrong: %v", sub.Payload[:2])
	}
	// Tail overlap keeps the ST bits.
	sub, ok = subChunk(&c, vr.Interval{Lo: 28, Hi: 40})
	if !ok || sub.Len != 2 || !sub.T.ST || !sub.X.ST {
		t.Fatalf("tail sub = %v ok=%v", &sub, ok)
	}
	// No overlap.
	if _, ok := subChunk(&c, vr.Interval{Lo: 40, Hi: 50}); ok {
		t.Fatal("no overlap expected")
	}
}
