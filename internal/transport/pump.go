package transport

import (
	"math/rand"

	"chunks/internal/packet"
)

// PumpConfig parameterises the synchronous delivery loop that connects
// a Sender and Receiver in experiments: a lossy, optionally
// reordering, bidirectional datagram pipe with round-based timers.
type PumpConfig struct {
	Seed int64
	// LossData is the drop probability for sender->receiver
	// datagrams; LossCtrl for receiver->sender control datagrams.
	LossData float64
	LossCtrl float64
	// Reorder shuffles each round's in-flight datagrams.
	Reorder bool
	// MaxRounds bounds the retransmission loop; 0 means 100.
	MaxRounds int
}

// PumpResult summarises one pump run.
type PumpResult struct {
	// Rounds is the number of delivery rounds executed.
	Rounds int
	// DataDatagrams and CtrlDatagrams count deliveries (post-loss).
	DataDatagrams int
	CtrlDatagrams int
	// Drained reports whether every TPDU was acknowledged before
	// MaxRounds.
	Drained bool
}

// A Pump owns a Sender/Receiver pair wired back-to-back through the
// lossy pipe. Use S to write application data, then Run to drive
// delivery and retransmission to quiescence.
type Pump struct {
	S *Sender
	R *Receiver

	cfg    PumpConfig
	rng    *rand.Rand
	toRecv [][]byte
	toSend [][]byte
}

// NewPump builds the wired pair.
func NewPump(scfg SenderConfig, rcfg ReceiverConfig, pcfg PumpConfig) (*Pump, error) {
	if pcfg.MaxRounds == 0 {
		pcfg.MaxRounds = 100
	}
	p := &Pump{cfg: pcfg, rng: rand.New(rand.NewSource(pcfg.Seed))}
	p.S = NewSender(scfg, func(d []byte) { p.toRecv = append(p.toRecv, d) })
	r, err := NewReceiver(rcfg, func(d []byte) { p.toSend = append(p.toSend, d) })
	if err != nil {
		return nil, err
	}
	p.R = r
	return p, nil
}

// Step runs one delivery round and reports datagram counts.
func (p *Pump) Step() (data, ctrl int, err error) {
	outgoing := p.toRecv
	p.toRecv = nil
	if p.cfg.Reorder {
		p.rng.Shuffle(len(outgoing), func(i, j int) { outgoing[i], outgoing[j] = outgoing[j], outgoing[i] })
	}
	for _, d := range outgoing {
		if p.cfg.LossData > 0 && p.rng.Float64() < p.cfg.LossData {
			continue
		}
		data++
		if err := p.R.HandlePacket(d); err != nil {
			return data, ctrl, err
		}
	}

	incoming := p.toSend
	p.toSend = nil
	for _, d := range incoming {
		if p.cfg.LossCtrl > 0 && p.rng.Float64() < p.cfg.LossCtrl {
			continue
		}
		ctrl++
		pk, err := packet.Decode(d)
		if err != nil {
			return data, ctrl, err
		}
		for i := range pk.Chunks {
			if err := p.S.HandleControl(&pk.Chunks[i]); err != nil {
				return data, ctrl, err
			}
		}
	}

	p.R.Poll()
	if err := p.S.Poll(); err != nil {
		return data, ctrl, err
	}
	return data, ctrl, nil
}

// Run pumps rounds until every TPDU is acknowledged (and nothing is
// in flight) or MaxRounds elapse.
func (p *Pump) Run() (PumpResult, error) {
	var res PumpResult
	for res.Rounds = 0; res.Rounds < p.cfg.MaxRounds; res.Rounds++ {
		data, ctrl, err := p.Step()
		if err != nil {
			return res, err
		}
		res.DataDatagrams += data
		res.CtrlDatagrams += ctrl
		if p.S.Drained() && len(p.toRecv) == 0 && len(p.toSend) == 0 {
			res.Drained = true
			res.Rounds++
			return res, nil
		}
	}
	return res, nil
}
