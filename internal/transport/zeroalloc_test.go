package transport

import (
	"encoding/binary"
	"testing"

	"chunks/internal/chunk"
)

// newSteadySender builds a sender whose datagram consumer recycles
// every buffer immediately (the zero-alloc contract's opt-in side),
// plus a step function driving one full TPDU through the send path:
// write one TPDU's worth of elements, then acknowledge the TPDU the
// write cut. After warmup every step reuses pooled records, payload
// stores, the emit scratch and pooled datagram buffers.
func newSteadySender(tb testing.TB) (s *Sender, step func()) {
	tb.Helper()
	s = NewSender(SenderConfig{CID: 7, MTU: 1400, ElemSize: 4, TPDUElems: 256}, nil)
	s.out = func(d []byte) { s.Recycle(d) }

	payload := make([]byte, 256*4)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	ackPayload := make([]byte, 4)
	ack := chunk.Chunk{
		Type: chunk.TypeAck, Size: 4, Len: 1,
		C: chunk.Tuple{ID: 7}, Payload: ackPayload,
	}
	step = func() {
		// Write keeps one TPDU buffered (lazy cut), so the TPDU this
		// write cuts starts at the current bufStart.
		tid := uint32(s.bufStart)
		if err := s.Write(payload); err != nil {
			tb.Fatal(err)
		}
		binary.BigEndian.PutUint32(ackPayload, tid)
		ack.T.ID = tid
		if err := s.HandleControl(&ack); err != nil {
			tb.Fatal(err)
		}
	}
	return s, step
}

// TestSteadyStateSendZeroAlloc pins the per-TPDU allocation count of
// the steady-state send path — write, cut, checksum, envelope,
// transmit, acknowledge — at zero once the pools are primed.
func TestSteadyStateSendZeroAlloc(t *testing.T) {
	s, step := newSteadySender(t)
	for i := 0; i < 64; i++ { // prime buffers, pools and the unacked map
		step()
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; the alloc count is pinned in the uninstrumented build")
	}
	before := s.TPDUsSent
	allocs := testing.AllocsPerRun(100, step)
	if allocs != 0 {
		t.Errorf("steady-state send path allocates %.1f objects per TPDU, want 0", allocs)
	}
	if s.TPDUsSent == before {
		t.Fatal("measurement loop cut no TPDUs — the harness is broken")
	}
	if s.Unacked() > 1 {
		t.Fatalf("unacked backlog grew to %d; acks are not being consumed", s.Unacked())
	}
}

// BenchmarkSteadyStateSend reports the allocation profile and cost of
// one full TPDU round trip through the send path.
func BenchmarkSteadyStateSend(b *testing.B) {
	s, step := newSteadySender(b)
	for i := 0; i < 64; i++ {
		step()
	}
	b.SetBytes(256 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	_ = s
}
