// Package transport implements a chunk transport protocol: the error
// control protocol the paper assumes around its data labelling format.
// It provides connection signaling (Section 2: "the beginning of a
// connection is indicated with a special signaling message ... rather
// than an SN of zero"; Appendix A: the C.ST bit "could be sent as a
// signaling message, because it is used only when a connection
// closes"), per-TPDU end-to-end error detection (package errdet),
// selective retransmission that reuses the original identifiers
// (Section 3.3), acknowledgment chunks that ride in any packet
// (Appendix A's free piggybacking), and the adaptive TPDU sizing the
// paper offers against Kent & Mogul's fragment-loss argument: "a good
// transport protocol implementation should reduce its TPDU size to
// match the observed network error rate".
package transport

import (
	"encoding/binary"
	"errors"

	"chunks/internal/chunk"
	"chunks/internal/vr"
)

// Signaling operations carried in TypeSignal chunks.
const (
	sigOpen  = 1
	sigClose = 2
)

// CloseAckTID is the sentinel TPDU ID acknowledging the close signal
// (no real TPDU uses it: data T.IDs are truncated start C.SNs and a
// TPDU at that SN would exhaust the connection space first).
const CloseAckTID = ^uint32(0)

// Control codec errors.
var (
	ErrBadControl = errors.New("transport: malformed control chunk")
)

// openPayload is the connection-establishment message: op, element
// size, and the initial C.SN.
//
//	offset size field
//	0      1    op (sigOpen)
//	1      2    element SIZE
//	3      8    initial C.SN
const openPayloadSize = 11

// SignalOpen builds the connection-open signaling chunk.
func SignalOpen(cid uint32, elemSize uint16, firstCSN uint64) chunk.Chunk {
	p := make([]byte, 0, openPayloadSize) //lint:allow hotalloc one-shot connection-open signal, not steady state
	p = append(p, sigOpen)
	p = binary.BigEndian.AppendUint16(p, elemSize)
	p = binary.BigEndian.AppendUint64(p, firstCSN)
	return chunk.Chunk{
		Type: chunk.TypeSignal, Size: openPayloadSize, Len: 1,
		C:       chunk.Tuple{ID: cid, SN: firstCSN},
		Payload: p,
	}
}

// SignalClose builds the connection-close signaling chunk; finalCSN is
// the element SN just past the last data element (the C.ST position).
func SignalClose(cid uint32, finalCSN uint64) chunk.Chunk {
	p := make([]byte, 0, 9)
	p = append(p, sigClose)
	p = binary.BigEndian.AppendUint64(p, finalCSN)
	return chunk.Chunk{
		Type: chunk.TypeSignal, Size: 9, Len: 1,
		C:       chunk.Tuple{ID: cid, SN: finalCSN, ST: true},
		Payload: p,
	}
}

// Signal is a decoded signaling message.
type Signal struct {
	Open     bool
	CID      uint32
	ElemSize uint16
	CSN      uint64
}

// ParseSignal decodes a TypeSignal chunk.
func ParseSignal(c *chunk.Chunk) (Signal, error) {
	if c.Type != chunk.TypeSignal || len(c.Payload) < 1 {
		return Signal{}, ErrBadControl
	}
	switch c.Payload[0] {
	case sigOpen:
		if len(c.Payload) != openPayloadSize {
			return Signal{}, ErrBadControl
		}
		return Signal{
			Open:     true,
			CID:      c.C.ID,
			ElemSize: binary.BigEndian.Uint16(c.Payload[1:3]),
			CSN:      binary.BigEndian.Uint64(c.Payload[3:11]),
		}, nil
	case sigClose:
		if len(c.Payload) != 9 {
			return Signal{}, ErrBadControl
		}
		return Signal{
			Open: false,
			CID:  c.C.ID,
			CSN:  binary.BigEndian.Uint64(c.Payload[1:9]),
		}, nil
	}
	return Signal{}, ErrBadControl
}

// Ack builds an acknowledgment chunk: TPDU tid verified end-to-end.
func Ack(cid, tid uint32) chunk.Chunk {
	return AckWith(cid, tid, make([]byte, 0, 4))
}

// AckWith is Ack writing the 4-byte payload into buf (which needs
// capacity 4), the allocation-free form for the receive hot path: the
// receiver reuses one payload buffer across ACKs because the packer
// serialises the chunk before the next ACK is built.
//
//lint:hot
func AckWith(cid, tid uint32, buf []byte) chunk.Chunk {
	buf = binary.BigEndian.AppendUint32(buf[:0], tid)
	return chunk.Chunk{
		Type: chunk.TypeAck, Size: 4, Len: 1,
		C:       chunk.Tuple{ID: cid},
		T:       chunk.Tuple{ID: tid},
		Payload: buf,
	}
}

// ParseAck decodes an acknowledgment chunk.
func ParseAck(c *chunk.Chunk) (tid uint32, err error) {
	if c.Type != chunk.TypeAck || len(c.Payload) != 4 {
		return 0, ErrBadControl
	}
	return binary.BigEndian.Uint32(c.Payload), nil
}

// Nack builds a selective-retransmission request for TPDU tid: the
// listed element intervals are missing. An empty interval list asks
// for the ED chunk again (data complete, verdict pending).
//
//	payload: tid(4) count(2) then count * (lo(8) hi(8))
func Nack(cid, tid uint32, missing []vr.Interval) chunk.Chunk {
	p := binary.BigEndian.AppendUint32(nil, tid)
	p = binary.BigEndian.AppendUint16(p, uint16(len(missing)))
	for _, iv := range missing {
		p = binary.BigEndian.AppendUint64(p, iv.Lo)
		p = binary.BigEndian.AppendUint64(p, iv.Hi)
	}
	return chunk.Chunk{
		Type: chunk.TypeNack, Size: uint16(len(p)), Len: 1,
		C:       chunk.Tuple{ID: cid},
		T:       chunk.Tuple{ID: tid},
		Payload: p,
	}
}

// ParseNack decodes a retransmission request.
func ParseNack(c *chunk.Chunk) (tid uint32, missing []vr.Interval, err error) {
	if c.Type != chunk.TypeNack || len(c.Payload) < 6 {
		return 0, nil, ErrBadControl
	}
	tid = binary.BigEndian.Uint32(c.Payload[0:4])
	n := int(binary.BigEndian.Uint16(c.Payload[4:6]))
	if len(c.Payload) != 6+16*n {
		return 0, nil, ErrBadControl
	}
	off := 6
	for i := 0; i < n; i++ {
		missing = append(missing, vr.Interval{
			Lo: binary.BigEndian.Uint64(c.Payload[off : off+8]),
			Hi: binary.BigEndian.Uint64(c.Payload[off+8 : off+16]),
		})
		off += 16
	}
	return tid, missing, nil
}
