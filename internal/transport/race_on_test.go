//go:build race

package transport

// raceEnabled reports that the race detector is instrumenting this
// build: allocation-count assertions are skipped, since the detector
// itself allocates on instrumented paths.
const raceEnabled = true
