package transport

import (
	"testing"
	"testing/quick"

	"chunks/internal/chunk"
)

// TestParseControlArbitraryPayloads: the control codecs must reject
// malformed payloads without panicking, for every control type.
func TestParseControlArbitraryPayloads(t *testing.T) {
	f := func(typ uint8, payload []byte, cid uint32) bool {
		ct := chunk.Type(1 + typ%5)
		size := uint16(len(payload))
		if size == 0 {
			size = 1
			payload = []byte{0}
		}
		c := chunk.Chunk{Type: ct, Size: size, Len: 1, C: chunk.Tuple{ID: cid}, Payload: payload}
		// None of these may panic; errors are fine.
		_, _ = ParseSignal(&c)
		_, _ = ParseAck(&c)
		_, _, _ = ParseNack(&c)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestReceiverArbitraryPackets: the transport receiver must survive
// arbitrary datagrams (decode errors surface; nothing panics, and
// valid-but-nonsense chunks at most create pending TPDU state).
func TestReceiverArbitraryPackets(t *testing.T) {
	r, err := NewReceiver(ReceiverConfig{}, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	f := func(b []byte) bool {
		_ = r.HandlePacket(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestSenderArbitraryControl: the sender must survive arbitrary
// control chunks.
func TestSenderArbitraryControl(t *testing.T) {
	s := NewSender(SenderConfig{CID: 1}, func([]byte) {})
	if err := s.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	f := func(typ uint8, payload []byte, tid uint32) bool {
		ct := chunk.Type(1 + typ%5)
		size := uint16(len(payload))
		if size == 0 {
			size = 1
			payload = []byte{0}
		}
		c := chunk.Chunk{Type: ct, Size: size, Len: 1, T: chunk.Tuple{ID: tid}, Payload: payload}
		_ = s.HandleControl(&c) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// FuzzTransferLossMatrix drives a whole transfer under fuzzed loss
// parameters and insists on eventual byte-exact delivery.
func FuzzTransferLossMatrix(f *testing.F) {
	f.Add(uint8(10), uint8(20), int64(1))
	f.Add(uint8(0), uint8(0), int64(2))
	f.Fuzz(func(t *testing.T, lossData, lossCtrl uint8, seed int64) {
		ld := float64(lossData%50) / 100
		lc := float64(lossCtrl%50) / 100
		p, err := NewPump(
			SenderConfig{CID: 1, MTU: 256, ElemSize: 4, TPDUElems: 32},
			ReceiverConfig{},
			PumpConfig{Seed: seed, LossData: ld, LossCtrl: lc, Reorder: true, MaxRounds: 3000})
		if err != nil {
			t.Fatal(err)
		}
		data := appData(2048, seed)
		if err := p.S.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := p.S.Close(); err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Drained {
			t.Fatalf("loss (%.2f,%.2f) seed %d never drained", ld, lc, seed)
		}
		if string(p.R.Stream()) != string(data) {
			t.Fatal("stream mismatch")
		}
	})
}
