package transport

import (
	"testing"

	"chunks/internal/chunk"
	"chunks/internal/packet"
)

// TestNeedsPollLifecycle pins the pending-verdict counter behind
// NeedsPoll across the full TPDU lifecycle: quiescent → tracked →
// verdicted, and tracked → reaped → re-tracked on re-arrival. A
// timer-wheel caller (internal/shard) relies on this to disarm poll
// timers for quiescent receivers instead of scanning them every tick.
func TestNeedsPollLifecycle(t *testing.T) {
	var senderOut [][]byte
	s := adaptiveSender(t, SenderConfig{CID: 1, TPDUElems: 16}, &senderOut)
	r, err := NewReceiver(ReceiverConfig{ReapAfter: 5}, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if r.NeedsPoll() {
		t.Fatal("fresh receiver reports NeedsPoll")
	}
	if err := s.Write(make([]byte, 16*4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Deliver everything except the ED chunk: the TPDU is tracked but
	// unverdicted, so poll rounds must keep running.
	for _, d := range senderOut {
		p, err := packet.Decode(d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Chunks {
			if p.Chunks[i].Type == chunk.TypeED {
				continue
			}
			cl := p.Chunks[i].Clone()
			if err := r.HandleChunk(&cl); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !r.NeedsPoll() {
		t.Fatal("incomplete TPDU but NeedsPoll is false")
	}
	if got, want := r.NeedsPoll(), r.PendingTPDUs() > 0; got != want {
		t.Fatalf("NeedsPoll %v disagrees with PendingTPDUs %d", got, r.PendingTPDUs())
	}

	// Reap path: after ReapAfter stale polls the TPDU is dropped and
	// the receiver goes quiescent.
	for i := 0; i < 5; i++ {
		r.Poll()
	}
	if r.Reaped() != 1 {
		t.Fatalf("reaped %d, want 1", r.Reaped())
	}
	if r.NeedsPoll() {
		t.Fatal("NeedsPoll true after the only TPDU was reaped")
	}

	// Re-arrival after reap re-tracks, and a full delivery (with ED)
	// verdicts it: quiescent again.
	for _, d := range senderOut {
		if err := r.HandlePacket(d); err != nil {
			t.Fatal(err)
		}
	}
	if r.VerifiedCount() != 1 {
		t.Fatalf("verified %d, want 1", r.VerifiedCount())
	}
	if r.NeedsPoll() {
		t.Fatal("NeedsPoll true after the TPDU verdicted")
	}
}

// TestNeedsPollVerdictPath checks the common path: a complete TPDU
// delivered in order flips NeedsPoll true while chunks are in flight
// within a datagram boundary and false once the ED chunk closes it.
func TestNeedsPollVerdictPath(t *testing.T) {
	var senderOut [][]byte
	s := adaptiveSender(t, SenderConfig{CID: 2, TPDUElems: 8}, &senderOut)
	r, err := NewReceiver(ReceiverConfig{}, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(make([]byte, 8*4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	sawPending := false
	for _, d := range senderOut {
		p, err := packet.Decode(d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Chunks {
			cl := p.Chunks[i].Clone()
			if err := r.HandleChunk(&cl); err != nil {
				t.Fatal(err)
			}
			if r.NeedsPoll() {
				sawPending = true
			}
		}
	}
	if !sawPending {
		t.Fatal("NeedsPoll never went true while the TPDU was open")
	}
	if r.NeedsPoll() {
		t.Fatal("NeedsPoll still true after clean verification")
	}
	if got, want := r.NeedsPoll(), r.PendingTPDUs() > 0; got != want {
		t.Fatalf("NeedsPoll %v disagrees with PendingTPDUs %d", got, r.PendingTPDUs())
	}
}
