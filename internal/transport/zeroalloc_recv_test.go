package transport

import (
	"testing"

	"chunks/internal/packet"
)

// steadyRecvRing is the RetireVerified window used by the steady-state
// receive harness: small enough that retirement (state recycling +
// stream trimming) runs every step of the measurement loop.
const steadyRecvRing = 8

// newSteadyRecvPair wires a real sender to a receiver through
// in-memory datagram queues, plus a step function driving one full
// TPDU through the receive path: write one TPDU's worth of elements,
// deliver the resulting datagrams (data + ED) to the receiver — which
// decodes in place, verifies end-to-end and emits an ACK — run a
// quiescent Poll round, then deliver the ACK datagrams back to the
// sender. Both sides recycle every datagram buffer they consume, and
// RetireVerified keeps per-TPDU, per-frame and stream state bounded,
// so after warmup a step touches only pooled records.
func newSteadyRecvPair(tb testing.TB) (s *Sender, r *Receiver, step func()) {
	tb.Helper()
	var data, acks [][]byte
	s = NewSender(SenderConfig{CID: 7, MTU: 1400, ElemSize: 4, TPDUElems: 256}, nil)
	s.out = func(d []byte) { data = append(data, d) }
	r, err := NewReceiver(ReceiverConfig{MTU: 1400, RetireVerified: steadyRecvRing}, func(d []byte) { acks = append(acks, d) })
	if err != nil {
		tb.Fatal(err)
	}

	payload := make([]byte, 256*4)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	var ackPkt packet.Packet // control decode scratch, reused per step
	step = func() {
		if err := s.Write(payload); err != nil {
			tb.Fatal(err)
		}
		for _, d := range data {
			if err := r.HandlePacket(d); err != nil {
				tb.Fatal(err)
			}
			s.Recycle(d)
		}
		data = data[:0]
		r.Poll() // quiescent round: sorted scan, no NACKs
		for _, d := range acks {
			if err := packet.DecodeInto(d, &ackPkt); err != nil {
				tb.Fatal(err)
			}
			for i := range ackPkt.Chunks {
				if err := s.HandleControl(&ackPkt.Chunks[i]); err != nil {
					tb.Fatal(err)
				}
			}
			r.Recycle(d)
		}
		acks = acks[:0]
	}
	return s, r, step
}

// TestSteadyStateRecvZeroAlloc pins the per-TPDU allocation count of
// the steady-state receive path — envelope decode, chunk ingest,
// incremental WSC-2 verification, placement, ACK emission, retirement
// — at zero once the pools are primed. It is the receive twin of
// TestSteadyStateSendZeroAlloc.
func TestSteadyStateRecvZeroAlloc(t *testing.T) {
	s, r, step := newSteadyRecvPair(t)
	for i := 0; i < 64; i++ { // prime pools, maps, scratch and the stream
		step()
	}
	before := r.VerifiedCount()
	allocs := testing.AllocsPerRun(100, step)
	if allocs != 0 && !raceEnabled {
		t.Errorf("steady-state receive path allocates %.1f objects per TPDU, want 0", allocs)
	}
	// Harness sanity: the measurement loop really verified TPDUs, acks
	// really drained, and retirement really bounded state.
	if got := r.VerifiedCount() - before; got < 100 {
		t.Fatalf("measurement loop verified %d TPDUs — the harness is broken", got)
	}
	if s.Unacked() > 1 {
		t.Fatalf("unacked backlog grew to %d; acks are not being consumed", s.Unacked())
	}
	if got := len(r.tids); got > steadyRecvRing+1 {
		t.Fatalf("retirement is not bounding receive state: %d TPDUs still tracked", got)
	}
	if r.StreamBase() == 0 {
		t.Fatal("retirement never trimmed the delivered stream")
	}
}

// TestRetireVerifiedOffKeepsState pins the historical default: with
// RetireVerified unset nothing is retired or trimmed, and the full
// stream stays addressable.
func TestRetireVerifiedOffKeepsState(t *testing.T) {
	var acks [][]byte
	s := NewSender(SenderConfig{CID: 7, MTU: 1400, ElemSize: 4, TPDUElems: 64}, nil)
	r, err := NewReceiver(ReceiverConfig{MTU: 1400}, func(d []byte) { acks = append(acks, d) })
	if err != nil {
		t.Fatal(err)
	}
	var dgrams [][]byte
	s.out = func(d []byte) { dgrams = append(dgrams, d) }
	payload := make([]byte, 64*4)
	for i := range payload {
		payload[i] = byte(i)
	}
	const rounds = 10
	for i := 0; i < rounds; i++ {
		if err := s.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil { // cut the lazily buffered last TPDU
		t.Fatal(err)
	}
	for _, d := range dgrams {
		if err := r.HandlePacket(d); err != nil {
			t.Fatal(err)
		}
	}
	if r.StreamBase() != 0 {
		t.Fatalf("StreamBase = %d with retirement off, want 0", r.StreamBase())
	}
	if got := r.VerifiedCount(); got != rounds {
		t.Fatalf("VerifiedCount = %d, want %d", got, rounds)
	}
	if got, want := len(r.Stream()), rounds*len(payload); got != want {
		t.Fatalf("stream length = %d, want %d (nothing trimmed)", got, want)
	}
	for tid := range r.tids {
		if !r.Verified(tid) {
			t.Fatalf("TPDU %d not verified", tid)
		}
	}
}

// BenchmarkSteadyStateRecv reports the allocation profile and cost of
// one full TPDU round trip through the receive path.
func BenchmarkSteadyStateRecv(b *testing.B) {
	s, r, step := newSteadyRecvPair(b)
	for i := 0; i < 64; i++ {
		step()
	}
	b.SetBytes(256 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	_, _ = s, r
}
