package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/packet"
	"chunks/internal/telemetry"
	"chunks/internal/vr"
)

// SenderConfig parameterises a connection sender.
type SenderConfig struct {
	// CID is the connection ID (non-multiplexed, [FELD 90]).
	CID uint32
	// MTU bounds outgoing datagrams.
	MTU int
	// ElemSize is the atomic element size (Section 2's SIZE).
	ElemSize uint16
	// TPDUElems is the initial TPDU size in elements.
	TPDUElems int
	// MinTPDUElems floors adaptive shrinking; 0 means 8.
	MinTPDUElems int
	// Adapt enables Kent/Mogul-response sizing: halve the TPDU on
	// retransmission, grow it back on clean ACKs.
	Adapt bool
	// RetransmitAfter is the number of Poll rounds an unacked TPDU
	// waits before being retransmitted wholesale; 0 means 3. It
	// governs only the legacy round-based Poll path; the adaptive
	// time-based path (InitialRTO > 0, driven through PollAt) replaces
	// it with the RTT estimator below.
	RetransmitAfter int

	// InitialRTO, when > 0, enables the adaptive retransmission path:
	// the timeout for each TPDU is a Jacobson-style smoothed RTT +
	// 4*variance estimate seeded from ACK timing (Karn's rule: samples
	// are taken only from TPDUs that were never retransmitted), with
	// per-TPDU exponential backoff on successive timer-driven
	// retransmissions. InitialRTO is the timeout used before the first
	// RTT sample arrives. Drive the adaptive path with PollAt and
	// HandleControlAt, feeding a monotonic time offset.
	InitialRTO time.Duration
	// MinRTO and MaxRTO clamp the adaptive timeout; 0 means 5ms and
	// 3s respectively. MaxRTO also caps the per-TPDU backoff.
	MinRTO time.Duration
	MaxRTO time.Duration
	// MaxRetries bounds successive timer-driven retransmissions of a
	// single TPDU (and of the close signal). When a TPDU is about to
	// be retransmitted for the (MaxRetries+1)-th time the sender
	// declares the peer dead: PollAt returns ErrPeerDead, Write
	// refuses further data, and Dead reports true. 0 means unlimited
	// (the pre-backoff behaviour: spin forever).
	MaxRetries int

	// Layout is the error detection invariant layout.
	Layout errdet.Layout

	// Tel receives the sender's runtime metrics and lifecycle events.
	// The zero Sink disables instrumentation at no cost.
	Tel telemetry.Sink
}

func (c *SenderConfig) fill() {
	if c.ElemSize == 0 {
		c.ElemSize = 4
	}
	if c.TPDUElems == 0 {
		c.TPDUElems = 256
	}
	if c.MinTPDUElems == 0 {
		c.MinTPDUElems = 8
	}
	if c.RetransmitAfter == 0 {
		c.RetransmitAfter = 3
	}
	if c.InitialRTO > 0 {
		if c.MinRTO == 0 {
			c.MinRTO = 5 * time.Millisecond
		}
		if c.MaxRTO == 0 {
			c.MaxRTO = 3 * time.Second
		}
	}
	if c.Layout.DataSymbols == 0 {
		c.Layout = errdet.DefaultLayout()
	}
	if c.MTU == 0 {
		c.MTU = 1400
	}
}

// Sender errors.
var (
	ErrNotElemAligned = errors.New("transport: write not element-aligned")
	ErrClosed         = errors.New("transport: connection closed")
	ErrUnknownTPDU    = errors.New("transport: NACK for unknown TPDU")
	// ErrPeerDead reports that a TPDU (or the close signal) exhausted
	// MaxRetries timer-driven retransmissions without an acknowledgment.
	ErrPeerDead = errors.New("transport: peer dead (max retries exceeded)")
)

// tpduRec is the sender-side state of one in-flight TPDU. Records are
// recycled through recPool once acknowledged: the chunks slice, the
// payload copy they alias and the ED scratch buffer all keep their
// capacity across TPDUs, so the steady-state send path allocates
// nothing per TPDU.
type tpduRec struct {
	chunks   []chunk.Chunk // pre-fragmentation chunks (identifiers reused verbatim on retransmission)
	payload  []byte        // backing store the chunk payloads alias
	edbuf    []byte        // backing store of ed.Payload
	ed       chunk.Chunk
	lastSent int // Poll round of last (re)transmission (legacy path)

	// Adaptive-path state (InitialRTO > 0).
	sentAt        time.Duration // timeline position of last (re)transmission
	rto           time.Duration // current per-TPDU timeout (doubles on backoff)
	retries       int           // timer-driven retransmissions so far
	retransmitted bool          // Karn's rule: suppress RTT samples
}

var recPool = sync.Pool{New: func() any { return new(tpduRec) }}

// getRec returns a recycled record with buffers emptied but capacity
// retained, and all bookkeeping zeroed.
func getRec() *tpduRec {
	rec := recPool.Get().(*tpduRec)
	*rec = tpduRec{chunks: rec.chunks[:0], payload: rec.payload[:0], edbuf: rec.edbuf[:0]}
	return rec //lint:allow poolsafe getRec IS the ownership transfer; putRec recycles on ACK
}

// A RetransmitEvent records one timer-driven retransmission on the
// adaptive path, for backoff assertions and diagnostics.
type RetransmitEvent struct {
	TID uint32        // retransmitted TPDU (CloseAckTID for the close signal)
	At  time.Duration // timeline position of the retransmission
	RTO time.Duration // the timeout interval that expired
}

// A Sender is the transmit side of one chunk connection. It is
// single-goroutine (call sites serialize); output datagrams go to the
// Send callback.
type Sender struct {
	cfg  SenderConfig
	out  func(datagram []byte)
	pack packet.Packer

	buf        []byte   // application bytes not yet cut into a TPDU
	bufStart   uint64   // element SN of buf[0]
	frameCuts  []uint64 // absolute element SNs where a frame ends (exclusive)
	curXID     uint32
	frameStart uint64 // element SN where the current frame began

	csn        uint64 // next element SN to assign
	opened     bool
	closed     bool
	closeAcked bool
	round      int

	unacked map[uint32]*tpduRec

	// sendScratch is the reusable chunk slice handed to emit; it is
	// only alive during one emit call (pack.Encode copies the chunk
	// encodings into wire buffers before returning).
	sendScratch []chunk.Chunk

	initialTPDUElems int
	cleanAcks        int // consecutive ACKs since the last retransmission

	// Adaptive-path state (InitialRTO > 0). The timeline is a caller-
	// supplied monotonic offset (time.Since of a connection epoch for
	// real sockets, a synthetic clock in simulations) so that no
	// wall-clock reads happen inside protocol logic.
	now          time.Duration // latest observed timeline position
	srtt         time.Duration // smoothed RTT
	rttvar       time.Duration // RTT mean deviation
	haveRTT      bool
	dead         bool
	closeSentAt  time.Duration
	closeRTO     time.Duration
	closeRetries int

	// RetransmitLog records every timer-driven retransmission on the
	// adaptive path, in order.
	RetransmitLog []RetransmitEvent

	// Counters for experiments.
	TPDUsSent   int
	Retransmits int
	AcksSeen    int

	tel senderTel
}

// senderTel bundles the sender's pre-resolved instruments. With a
// disabled Sink every field is nil and every use is a no-op branch.
type senderTel struct {
	tpdus      *telemetry.Counter   // TPDUs cut
	retransmit *telemetry.Counter   // retransmissions (timer + NACK)
	acks       *telemetry.Counter   // ACKs processed
	bytes      *telemetry.Counter   // payload bytes cut into TPDUs
	rtt        *telemetry.Histogram // RTT samples, microseconds
	rto        *telemetry.Histogram // expired RTOs, microseconds
	elems      *telemetry.Histogram // TPDU sizes, elements
	dgram      *telemetry.Histogram // emitted datagram sizes, bytes
	retries    *telemetry.Histogram // per-TPDU retries at ACK time
	ring       *telemetry.Ring
}

func newSenderTel(t telemetry.Sink) senderTel {
	return senderTel{
		tpdus:      t.Counter("tpdus_sent"),
		retransmit: t.Counter("retransmits"),
		acks:       t.Counter("acks_seen"),
		bytes:      t.Counter("bytes_written"),
		rtt:        t.Histogram("rtt_us"),
		rto:        t.Histogram("rto_expired_us"),
		elems:      t.Histogram("tpdu_elems"),
		dgram:      t.Histogram("datagram_bytes"),
		retries:    t.Histogram("tpdu_retries"),
		ring:       t.Ring,
	}
}

// NewSender returns a Sender delivering datagrams via out.
func NewSender(cfg SenderConfig, out func([]byte)) *Sender {
	cfg.fill()
	return &Sender{
		cfg: cfg,
		out: out,
		pack: packet.Packer{
			MTU:     cfg.MTU,
			Fill:    cfg.Tel.Histogram("envelope_fill_pct"),
			Events:  cfg.Tel.Ring,
			Buffers: new(packet.BufferPool),
		},
		curXID:           1,
		unacked:          make(map[uint32]*tpduRec),
		initialTPDUElems: cfg.TPDUElems,
		tel:              newSenderTel(cfg.Tel),
	}
}

// Config returns the current configuration (TPDUElems changes under
// adaptation).
func (s *Sender) Config() SenderConfig { return s.cfg }

// Open emits the connection-establishment signal.
func (s *Sender) Open() error {
	if s.opened {
		return nil
	}
	s.opened = true
	return s.emit([]chunk.Chunk{SignalOpen(s.cfg.CID, s.cfg.ElemSize, s.csn)}) //lint:allow hotalloc one-shot connection-open signal, not steady state
}

// Write appends element-aligned application bytes to the stream,
// cutting and transmitting TPDUs as enough elements accumulate.
//
//lint:hot
func (s *Sender) Write(data []byte) error {
	if s.dead {
		return ErrPeerDead
	}
	if s.closed {
		return ErrClosed
	}
	if len(data)%int(s.cfg.ElemSize) != 0 {
		return ErrNotElemAligned
	}
	if err := s.Open(); err != nil {
		return err
	}
	s.buf = append(s.buf, data...)
	// Cut lazily — keep one full TPDU's worth buffered — so an
	// EndFrame landing exactly on a TPDU boundary can still mark the
	// pending chunk's X.ST bit.
	for s.bufElems() > s.cfg.TPDUElems {
		if err := s.cutTPDU(s.cfg.TPDUElems); err != nil {
			return err
		}
	}
	return nil
}

// EndFrame closes the current external PDU (ALF frame) at the current
// stream position; the next element starts a new frame.
func (s *Sender) EndFrame() {
	end := s.bufStart + uint64(s.bufElems())
	if end == s.frameStart {
		return // empty frame
	}
	if len(s.frameCuts) > 0 && s.frameCuts[len(s.frameCuts)-1] == end {
		return
	}
	s.frameCuts = append(s.frameCuts, end)
}

// Flush transmits any buffered elements as a final (short) TPDU.
func (s *Sender) Flush() error {
	if n := s.bufElems(); n > 0 {
		return s.cutTPDU(n)
	}
	return nil
}

// Close flushes and emits the connection-close signal (the C.ST
// position travels by signaling, Appendix A).
func (s *Sender) Close() error {
	if s.closed {
		return nil
	}
	if err := s.Flush(); err != nil {
		return err
	}
	s.closed = true
	s.closeSentAt = s.now
	s.closeRTO = s.currentRTO()
	return s.emit([]chunk.Chunk{SignalClose(s.cfg.CID, s.csn)})
}

func (s *Sender) bufElems() int { return len(s.buf) / int(s.cfg.ElemSize) }

// cutTPDU turns the first n buffered elements into one TPDU, splits it
// at frame boundaries, transmits it with its ED chunk, and records it
// for retransmission.
func (s *Sender) cutTPDU(n int) error {
	es := int(s.cfg.ElemSize)
	start := s.bufStart
	end := start + uint64(n)

	tid := uint32(start) // implicit-friendly T.ID (Figure 7)
	rec := getRec()
	// One copy of the TPDU bytes into the record's recycled backing
	// store; the chunk payloads are subslices of it.
	rec.payload = append(rec.payload, s.buf[:n*es]...)
	cur := start
	for cur < end {
		// Cut at the next frame boundary inside (cur, end].
		segEnd := end
		xst := false
		for _, cut := range s.frameCuts {
			if cut > cur && cut <= end {
				segEnd = cut
				xst = true
				break
			}
		}
		lo, hi := (cur-start)*uint64(es), (segEnd-start)*uint64(es)
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: s.cfg.ElemSize, Len: uint32(segEnd - cur),
			C:       chunk.Tuple{ID: s.cfg.CID, SN: cur},
			T:       chunk.Tuple{ID: tid, SN: cur - start, ST: segEnd == end},
			X:       chunk.Tuple{ID: s.curXID, SN: cur - s.frameStart, ST: xst},
			Payload: rec.payload[lo:hi:hi],
		}
		rec.chunks = append(rec.chunks, c)
		if xst {
			s.curXID++
			s.frameStart = segEnd
		}
		cur = segEnd
	}
	// Drop consumed frame cuts.
	var rest []uint64
	for _, cut := range s.frameCuts {
		if cut > end {
			rest = append(rest, cut)
		}
	}
	s.frameCuts = rest

	par, err := errdet.Encode(s.cfg.Layout, rec.chunks)
	if err != nil {
		recPool.Put(rec)
		return fmt.Errorf("transport: encode TPDU %d: %w", tid, err) //lint:allow hotalloc cold error path: fmt boxes its operands
	}
	rec.ed = errdet.EDChunkAppend(s.cfg.CID, tid, start, par, rec.edbuf)
	rec.edbuf = rec.ed.Payload

	rec.lastSent = s.round
	rec.sentAt = s.now
	rec.rto = s.currentRTO()
	s.unacked[tid] = rec
	// Compact instead of re-slicing so the buffer's capacity keeps
	// being reused and Write's append stays allocation-free once the
	// high-water mark is reached.
	s.buf = s.buf[:copy(s.buf, s.buf[n*es:])]
	s.bufStart = end
	s.csn = end
	s.TPDUsSent++
	s.tel.tpdus.Inc()
	s.tel.bytes.Add(int64(n * es))
	s.tel.elems.Observe(int64(n))
	s.tel.ring.Record(telemetry.EvSent, s.cfg.CID, tid, start, int64(n*es))

	return s.emit(s.withED(rec.chunks, rec.ed))
}

// withED assembles chunks + the ED chunk in the reusable send scratch.
// The slice is valid until the next withED or retransmit call; emit
// consumes it before returning.
func (s *Sender) withED(chs []chunk.Chunk, ed chunk.Chunk) []chunk.Chunk {
	s.sendScratch = append(append(s.sendScratch[:0], chs...), ed)
	return s.sendScratch
}

// emit packs chunks into datagrams and sends them.
func (s *Sender) emit(chs []chunk.Chunk) error {
	datagrams, err := s.pack.Encode(chs)
	if err != nil {
		return err
	}
	for _, d := range datagrams {
		s.tel.dgram.Observe(int64(len(d)))
		s.tel.ring.Record(telemetry.EvEnveloped, s.cfg.CID, 0, 0, int64(len(d)))
		s.out(d)
	}
	return nil
}

// HandleControl processes a control chunk (ACK/NACK) from the peer.
//
//lint:hot
func (s *Sender) HandleControl(c *chunk.Chunk) error {
	return s.HandleControlAt(c, s.now)
}

// HandleControlAt is HandleControl with an explicit timeline position,
// used by the adaptive path to derive RTT samples from ACK timing.
func (s *Sender) HandleControlAt(c *chunk.Chunk, now time.Duration) error {
	s.observe(now)
	switch c.Type {
	case chunk.TypeAck:
		tid, err := ParseAck(c)
		if err != nil {
			return err
		}
		if tid == CloseAckTID {
			s.closeAcked = true
			s.AcksSeen++
			s.tel.acks.Inc()
			return nil
		}
		if rec, ok := s.unacked[tid]; ok {
			if s.cfg.InitialRTO > 0 && !rec.retransmitted {
				s.sample(s.now - rec.sentAt)
			}
			s.tel.retries.Observe(int64(rec.retries))
			delete(s.unacked, tid)
			recPool.Put(rec)
			s.AcksSeen++
			s.tel.acks.Inc()
			s.grow()
		}
		return nil
	case chunk.TypeNack:
		tid, missing, err := ParseNack(c)
		if err != nil {
			return err
		}
		return s.retransmit(tid, missing)
	default:
		return nil // data/signal chunks are not sender business
	}
}

// retransmit re-sends the requested element intervals of a TPDU using
// the ORIGINAL identifiers (Section 3.3: "retransmitted data should
// use the same identifiers as the originally transmitted data"), plus
// the ED chunk. An empty interval list re-sends only the ED chunk.
func (s *Sender) retransmit(tid uint32, missing []vr.Interval) error {
	rec, ok := s.unacked[tid]
	if !ok {
		return nil // already acked; stale NACK
	}
	s.Retransmits++
	s.tel.retransmit.Inc()
	s.tel.ring.Record(telemetry.EvRetransmit, s.cfg.CID, tid, rec.chunks[0].C.SN, int64(len(missing)))
	s.adapt()
	out := s.sendScratch[:0]
	for _, iv := range missing {
		for i := range rec.chunks {
			if sub, ok := subChunk(&rec.chunks[i], iv); ok {
				out = append(out, sub)
			}
		}
	}
	out = append(out, rec.ed)
	s.sendScratch = out
	rec.lastSent = s.round
	// A NACK proves the peer is alive and requesting: defer the
	// retransmission timer but neither back off nor count a retry
	// (those are reserved for silence). Karn's rule still applies.
	rec.sentAt = s.now
	rec.retransmitted = true
	return s.emit(out)
}

// subChunk extracts the overlap of chunk c with T.SN interval iv,
// preserving identity per the Appendix C rules.
func subChunk(c *chunk.Chunk, iv vr.Interval) (chunk.Chunk, bool) {
	lo, hi := c.T.SN, c.T.SN+uint64(c.Len)
	if iv.Lo > lo {
		lo = iv.Lo
	}
	if iv.Hi < hi {
		hi = iv.Hi
	}
	if lo >= hi {
		return chunk.Chunk{}, false
	}
	off := lo - c.T.SN
	n := hi - lo
	isTail := hi == c.T.SN+uint64(c.Len)
	es := uint64(c.Size)
	sub := chunk.Chunk{
		Type: c.Type, Size: c.Size, Len: uint32(n),
		C:       chunk.Tuple{ID: c.C.ID, SN: c.C.SN + off, ST: isTail && c.C.ST},
		T:       chunk.Tuple{ID: c.T.ID, SN: lo, ST: isTail && c.T.ST},
		X:       chunk.Tuple{ID: c.X.ID, SN: c.X.SN + off, ST: isTail && c.X.ST},
		Payload: c.Payload[off*es : (off+n)*es],
	}
	return sub, true
}

// adapt shrinks the TPDU size in response to a retransmission —
// Kent & Mogul's objection answered: "reduce its TPDU size to match
// the observed network error rate".
func (s *Sender) adapt() {
	if !s.cfg.Adapt {
		return
	}
	s.cleanAcks = 0
	if s.cfg.TPDUElems/2 >= s.cfg.MinTPDUElems {
		s.cfg.TPDUElems /= 2
	}
}

// grow restores the TPDU size after sustained clean delivery: eight
// consecutive ACKs without a retransmission double it, up to the
// configured initial size.
func (s *Sender) grow() {
	if !s.cfg.Adapt || s.cfg.TPDUElems >= s.initialTPDUElems {
		return
	}
	s.cleanAcks++
	if s.cleanAcks >= 8 {
		s.cleanAcks = 0
		s.cfg.TPDUElems *= 2
		if s.cfg.TPDUElems > s.initialTPDUElems {
			s.cfg.TPDUElems = s.initialTPDUElems
		}
	}
}

// Poll advances the retransmission clock one round: unacked TPDUs
// older than RetransmitAfter rounds are re-sent whole (identifiers
// unchanged). Call it once per pump iteration.
func (s *Sender) Poll() error {
	s.round++
	// Signaling chunks are not covered by ACKs, so they are repeated
	// on the timer: the open signal until the first ACK proves the
	// peer is hearing us, the close signal for as long as we poll.
	if s.opened && s.AcksSeen == 0 && len(s.unacked) > 0 {
		if err := s.emit([]chunk.Chunk{SignalOpen(s.cfg.CID, s.cfg.ElemSize, 0)}); err != nil {
			return err
		}
	}
	if s.closed && !s.closeAcked {
		if err := s.emit([]chunk.Chunk{SignalClose(s.cfg.CID, s.csn)}); err != nil {
			return err
		}
	}
	for _, tid := range s.unackedTIDs() {
		rec := s.unacked[tid]
		if s.round-rec.lastSent >= s.cfg.RetransmitAfter {
			s.Retransmits++
			s.tel.retransmit.Inc()
			s.tel.ring.Record(telemetry.EvRetransmit, s.cfg.CID, tid, rec.chunks[0].C.SN, 0)
			s.adapt()
			rec.lastSent = s.round
			if err := s.emit(s.withED(rec.chunks, rec.ed)); err != nil {
				return err
			}
		}
	}
	return nil
}

// unackedTIDs returns the in-flight TPDU IDs in ascending order.
// Retransmission scans must not follow Go's randomized map iteration
// order: the emit order decides which datagrams a seeded lossy pipe
// drops, so map order would make seeded runs diverge run-to-run
// (determinism is a repo-wide test invariant).
func (s *Sender) unackedTIDs() []uint32 {
	tids := make([]uint32, 0, len(s.unacked))
	for tid := range s.unacked {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	return tids
}

// observe advances the sender's timeline; time never runs backwards.
func (s *Sender) observe(now time.Duration) {
	if now > s.now {
		s.now = now
	}
}

// sample feeds one RTT measurement into the Jacobson estimator:
// RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|, SRTT = 7/8 SRTT + 1/8 R.
func (s *Sender) sample(rtt time.Duration) {
	if rtt < 0 {
		return
	}
	s.tel.rtt.Observe(rtt.Microseconds())
	if !s.haveRTT {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.haveRTT = true
		return
	}
	diff := s.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	s.rttvar = (3*s.rttvar + diff) / 4
	s.srtt = (7*s.srtt + rtt) / 8
}

// currentRTO returns the timeout a freshly sent TPDU gets: SRTT +
// 4*RTTVAR clamped to [MinRTO, MaxRTO], or InitialRTO before the first
// sample. Zero while the adaptive path is disabled.
func (s *Sender) currentRTO() time.Duration {
	if s.cfg.InitialRTO == 0 {
		return 0
	}
	if !s.haveRTT {
		return s.clampRTO(s.cfg.InitialRTO)
	}
	return s.clampRTO(s.srtt + 4*s.rttvar)
}

func (s *Sender) clampRTO(d time.Duration) time.Duration {
	if d < s.cfg.MinRTO {
		return s.cfg.MinRTO
	}
	if d > s.cfg.MaxRTO {
		return s.cfg.MaxRTO
	}
	return d
}

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() time.Duration { return s.srtt }

// RTO returns the timeout the next transmission would get.
func (s *Sender) RTO() time.Duration { return s.currentRTO() }

// Dead reports that the sender gave up on the peer (MaxRetries).
func (s *Sender) Dead() bool { return s.dead }

// PollAt runs the adaptive retransmission pass at timeline position
// now: every unacked TPDU whose timeout expired is retransmitted whole
// (identifiers unchanged), its timeout doubled (clamped to MaxRTO) and
// its retry counted; a TPDU — or the close signal — about to exceed
// MaxRetries kills the connection instead and PollAt returns
// ErrPeerDead (and keeps returning it). Requires InitialRTO > 0.
func (s *Sender) PollAt(now time.Duration) error {
	if s.dead {
		return ErrPeerDead
	}
	s.observe(now)
	// Signaling chunks are not covered by ACKs: repeat the open signal
	// until the first ACK proves the peer hears us, and the close
	// signal on its own backoff schedule until acknowledged.
	if s.opened && s.AcksSeen == 0 && len(s.unacked) > 0 {
		if err := s.emit([]chunk.Chunk{SignalOpen(s.cfg.CID, s.cfg.ElemSize, 0)}); err != nil {
			return err
		}
	}
	if s.closed && !s.closeAcked && s.now >= s.closeSentAt+s.closeRTO {
		if s.cfg.MaxRetries > 0 && s.closeRetries >= s.cfg.MaxRetries {
			s.dead = true
			s.tel.ring.Record(telemetry.EvPeerDead, s.cfg.CID, CloseAckTID, s.csn, int64(s.closeRetries))
			return ErrPeerDead
		}
		s.closeRetries++
		s.RetransmitLog = append(s.RetransmitLog, RetransmitEvent{TID: CloseAckTID, At: s.now, RTO: s.closeRTO})
		s.closeSentAt = s.now
		s.closeRTO = s.clampRTO(2 * s.closeRTO)
		if err := s.emit([]chunk.Chunk{SignalClose(s.cfg.CID, s.csn)}); err != nil {
			return err
		}
	}
	for _, tid := range s.unackedTIDs() {
		rec := s.unacked[tid]
		if s.now < rec.sentAt+rec.rto {
			continue
		}
		if s.cfg.MaxRetries > 0 && rec.retries >= s.cfg.MaxRetries {
			s.dead = true
			s.tel.ring.Record(telemetry.EvPeerDead, s.cfg.CID, tid, rec.chunks[0].C.SN, int64(rec.retries))
			return ErrPeerDead
		}
		rec.retries++
		rec.retransmitted = true
		s.RetransmitLog = append(s.RetransmitLog, RetransmitEvent{TID: tid, At: s.now, RTO: rec.rto})
		s.tel.rto.Observe(rec.rto.Microseconds())
		s.tel.ring.Record(telemetry.EvRetransmit, s.cfg.CID, tid, rec.chunks[0].C.SN, int64(rec.retries))
		rec.sentAt = s.now
		rec.rto = s.clampRTO(2 * rec.rto)
		s.Retransmits++
		s.tel.retransmit.Inc()
		s.adapt()
		if err := s.emit(s.withED(rec.chunks, rec.ed)); err != nil {
			return err
		}
	}
	return nil
}

// Recycle hands a transmitted datagram's buffer back for reuse by a
// later send. It is strictly opt-in: a consumer that retains datagrams
// (the Pump does) simply never calls it and the sender allocates fresh
// buffers as before. Callers must not touch d after recycling it.
//
//lint:hot
func (s *Sender) Recycle(d []byte) { s.pack.Buffers.Put(d) }

// Unacked returns the number of TPDUs awaiting acknowledgment.
func (s *Sender) Unacked() int { return len(s.unacked) }

// Drained reports full quiescence: every TPDU acknowledged and, if the
// connection was closed, the close signal acknowledged too.
func (s *Sender) Drained() bool {
	return len(s.unacked) == 0 && (!s.closed || s.closeAcked)
}
