package transport

import (
	"errors"
	"fmt"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/packet"
	"chunks/internal/vr"
)

// SenderConfig parameterises a connection sender.
type SenderConfig struct {
	// CID is the connection ID (non-multiplexed, [FELD 90]).
	CID uint32
	// MTU bounds outgoing datagrams.
	MTU int
	// ElemSize is the atomic element size (Section 2's SIZE).
	ElemSize uint16
	// TPDUElems is the initial TPDU size in elements.
	TPDUElems int
	// MinTPDUElems floors adaptive shrinking; 0 means 8.
	MinTPDUElems int
	// Adapt enables Kent/Mogul-response sizing: halve the TPDU on
	// retransmission, grow it back on clean ACKs.
	Adapt bool
	// RetransmitAfter is the number of Poll rounds an unacked TPDU
	// waits before being retransmitted wholesale; 0 means 3.
	RetransmitAfter int
	// Layout is the error detection invariant layout.
	Layout errdet.Layout
}

func (c *SenderConfig) fill() {
	if c.ElemSize == 0 {
		c.ElemSize = 4
	}
	if c.TPDUElems == 0 {
		c.TPDUElems = 256
	}
	if c.MinTPDUElems == 0 {
		c.MinTPDUElems = 8
	}
	if c.RetransmitAfter == 0 {
		c.RetransmitAfter = 3
	}
	if c.Layout.DataSymbols == 0 {
		c.Layout = errdet.DefaultLayout()
	}
	if c.MTU == 0 {
		c.MTU = 1400
	}
}

// Sender errors.
var (
	ErrNotElemAligned = errors.New("transport: write not element-aligned")
	ErrClosed         = errors.New("transport: connection closed")
	ErrUnknownTPDU    = errors.New("transport: NACK for unknown TPDU")
)

// tpduRec is the sender-side state of one in-flight TPDU.
type tpduRec struct {
	chunks   []chunk.Chunk // pre-fragmentation chunks (identifiers reused verbatim on retransmission)
	ed       chunk.Chunk
	lastSent int // Poll round of last (re)transmission
}

// A Sender is the transmit side of one chunk connection. It is
// single-goroutine (call sites serialize); output datagrams go to the
// Send callback.
type Sender struct {
	cfg  SenderConfig
	out  func(datagram []byte)
	pack packet.Packer

	buf        []byte   // application bytes not yet cut into a TPDU
	bufStart   uint64   // element SN of buf[0]
	frameCuts  []uint64 // absolute element SNs where a frame ends (exclusive)
	curXID     uint32
	frameStart uint64 // element SN where the current frame began

	csn        uint64 // next element SN to assign
	opened     bool
	closed     bool
	closeAcked bool
	round      int

	unacked map[uint32]*tpduRec

	initialTPDUElems int
	cleanAcks        int // consecutive ACKs since the last retransmission

	// Counters for experiments.
	TPDUsSent   int
	Retransmits int
	AcksSeen    int
}

// NewSender returns a Sender delivering datagrams via out.
func NewSender(cfg SenderConfig, out func([]byte)) *Sender {
	cfg.fill()
	return &Sender{
		cfg:              cfg,
		out:              out,
		pack:             packet.Packer{MTU: cfg.MTU},
		curXID:           1,
		unacked:          make(map[uint32]*tpduRec),
		initialTPDUElems: cfg.TPDUElems,
	}
}

// Config returns the current configuration (TPDUElems changes under
// adaptation).
func (s *Sender) Config() SenderConfig { return s.cfg }

// Open emits the connection-establishment signal.
func (s *Sender) Open() error {
	if s.opened {
		return nil
	}
	s.opened = true
	return s.emit([]chunk.Chunk{SignalOpen(s.cfg.CID, s.cfg.ElemSize, s.csn)})
}

// Write appends element-aligned application bytes to the stream,
// cutting and transmitting TPDUs as enough elements accumulate.
func (s *Sender) Write(data []byte) error {
	if s.closed {
		return ErrClosed
	}
	if len(data)%int(s.cfg.ElemSize) != 0 {
		return ErrNotElemAligned
	}
	if err := s.Open(); err != nil {
		return err
	}
	s.buf = append(s.buf, data...)
	// Cut lazily — keep one full TPDU's worth buffered — so an
	// EndFrame landing exactly on a TPDU boundary can still mark the
	// pending chunk's X.ST bit.
	for s.bufElems() > s.cfg.TPDUElems {
		if err := s.cutTPDU(s.cfg.TPDUElems); err != nil {
			return err
		}
	}
	return nil
}

// EndFrame closes the current external PDU (ALF frame) at the current
// stream position; the next element starts a new frame.
func (s *Sender) EndFrame() {
	end := s.bufStart + uint64(s.bufElems())
	if end == s.frameStart {
		return // empty frame
	}
	if len(s.frameCuts) > 0 && s.frameCuts[len(s.frameCuts)-1] == end {
		return
	}
	s.frameCuts = append(s.frameCuts, end)
}

// Flush transmits any buffered elements as a final (short) TPDU.
func (s *Sender) Flush() error {
	if n := s.bufElems(); n > 0 {
		return s.cutTPDU(n)
	}
	return nil
}

// Close flushes and emits the connection-close signal (the C.ST
// position travels by signaling, Appendix A).
func (s *Sender) Close() error {
	if s.closed {
		return nil
	}
	if err := s.Flush(); err != nil {
		return err
	}
	s.closed = true
	return s.emit([]chunk.Chunk{SignalClose(s.cfg.CID, s.csn)})
}

func (s *Sender) bufElems() int { return len(s.buf) / int(s.cfg.ElemSize) }

// cutTPDU turns the first n buffered elements into one TPDU, splits it
// at frame boundaries, transmits it with its ED chunk, and records it
// for retransmission.
func (s *Sender) cutTPDU(n int) error {
	es := int(s.cfg.ElemSize)
	start := s.bufStart
	end := start + uint64(n)
	payload := s.buf[:n*es]

	tid := uint32(start) // implicit-friendly T.ID (Figure 7)
	var chs []chunk.Chunk
	cur := start
	for cur < end {
		// Cut at the next frame boundary inside (cur, end].
		segEnd := end
		xst := false
		for _, cut := range s.frameCuts {
			if cut > cur && cut <= end {
				segEnd = cut
				xst = true
				break
			}
		}
		lo, hi := (cur-start)*uint64(es), (segEnd-start)*uint64(es)
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: s.cfg.ElemSize, Len: uint32(segEnd - cur),
			C:       chunk.Tuple{ID: s.cfg.CID, SN: cur},
			T:       chunk.Tuple{ID: tid, SN: cur - start, ST: segEnd == end},
			X:       chunk.Tuple{ID: s.curXID, SN: cur - s.frameStart, ST: xst},
			Payload: append([]byte(nil), payload[lo:hi]...),
		}
		chs = append(chs, c)
		if xst {
			s.curXID++
			s.frameStart = segEnd
		}
		cur = segEnd
	}
	// Drop consumed frame cuts.
	var rest []uint64
	for _, cut := range s.frameCuts {
		if cut > end {
			rest = append(rest, cut)
		}
	}
	s.frameCuts = rest

	par, err := errdet.Encode(s.cfg.Layout, chs)
	if err != nil {
		return fmt.Errorf("transport: encode TPDU %d: %w", tid, err)
	}
	ed := errdet.EDChunk(s.cfg.CID, tid, start, par)

	s.unacked[tid] = &tpduRec{chunks: chs, ed: ed, lastSent: s.round}
	s.buf = s.buf[n*es:]
	s.bufStart = end
	s.csn = end
	s.TPDUsSent++

	return s.emit(append(append([]chunk.Chunk{}, chs...), ed))
}

// emit packs chunks into datagrams and sends them.
func (s *Sender) emit(chs []chunk.Chunk) error {
	datagrams, err := s.pack.Encode(chs)
	if err != nil {
		return err
	}
	for _, d := range datagrams {
		s.out(d)
	}
	return nil
}

// HandleControl processes a control chunk (ACK/NACK) from the peer.
func (s *Sender) HandleControl(c *chunk.Chunk) error {
	switch c.Type {
	case chunk.TypeAck:
		tid, err := ParseAck(c)
		if err != nil {
			return err
		}
		if tid == CloseAckTID {
			s.closeAcked = true
			s.AcksSeen++
			return nil
		}
		if _, ok := s.unacked[tid]; ok {
			delete(s.unacked, tid)
			s.AcksSeen++
			s.grow()
		}
		return nil
	case chunk.TypeNack:
		tid, missing, err := ParseNack(c)
		if err != nil {
			return err
		}
		return s.retransmit(tid, missing)
	default:
		return nil // data/signal chunks are not sender business
	}
}

// retransmit re-sends the requested element intervals of a TPDU using
// the ORIGINAL identifiers (Section 3.3: "retransmitted data should
// use the same identifiers as the originally transmitted data"), plus
// the ED chunk. An empty interval list re-sends only the ED chunk.
func (s *Sender) retransmit(tid uint32, missing []vr.Interval) error {
	rec, ok := s.unacked[tid]
	if !ok {
		return nil // already acked; stale NACK
	}
	s.Retransmits++
	s.adapt()
	var out []chunk.Chunk
	for _, iv := range missing {
		for i := range rec.chunks {
			if sub, ok := subChunk(&rec.chunks[i], iv); ok {
				out = append(out, sub)
			}
		}
	}
	out = append(out, rec.ed)
	rec.lastSent = s.round
	return s.emit(out)
}

// subChunk extracts the overlap of chunk c with T.SN interval iv,
// preserving identity per the Appendix C rules.
func subChunk(c *chunk.Chunk, iv vr.Interval) (chunk.Chunk, bool) {
	lo, hi := c.T.SN, c.T.SN+uint64(c.Len)
	if iv.Lo > lo {
		lo = iv.Lo
	}
	if iv.Hi < hi {
		hi = iv.Hi
	}
	if lo >= hi {
		return chunk.Chunk{}, false
	}
	off := lo - c.T.SN
	n := hi - lo
	isTail := hi == c.T.SN+uint64(c.Len)
	es := uint64(c.Size)
	sub := chunk.Chunk{
		Type: c.Type, Size: c.Size, Len: uint32(n),
		C:       chunk.Tuple{ID: c.C.ID, SN: c.C.SN + off, ST: isTail && c.C.ST},
		T:       chunk.Tuple{ID: c.T.ID, SN: lo, ST: isTail && c.T.ST},
		X:       chunk.Tuple{ID: c.X.ID, SN: c.X.SN + off, ST: isTail && c.X.ST},
		Payload: c.Payload[off*es : (off+n)*es],
	}
	return sub, true
}

// adapt shrinks the TPDU size in response to a retransmission —
// Kent & Mogul's objection answered: "reduce its TPDU size to match
// the observed network error rate".
func (s *Sender) adapt() {
	if !s.cfg.Adapt {
		return
	}
	s.cleanAcks = 0
	if s.cfg.TPDUElems/2 >= s.cfg.MinTPDUElems {
		s.cfg.TPDUElems /= 2
	}
}

// grow restores the TPDU size after sustained clean delivery: eight
// consecutive ACKs without a retransmission double it, up to the
// configured initial size.
func (s *Sender) grow() {
	if !s.cfg.Adapt || s.cfg.TPDUElems >= s.initialTPDUElems {
		return
	}
	s.cleanAcks++
	if s.cleanAcks >= 8 {
		s.cleanAcks = 0
		s.cfg.TPDUElems *= 2
		if s.cfg.TPDUElems > s.initialTPDUElems {
			s.cfg.TPDUElems = s.initialTPDUElems
		}
	}
}

// Poll advances the retransmission clock one round: unacked TPDUs
// older than RetransmitAfter rounds are re-sent whole (identifiers
// unchanged). Call it once per pump iteration.
func (s *Sender) Poll() error {
	s.round++
	// Signaling chunks are not covered by ACKs, so they are repeated
	// on the timer: the open signal until the first ACK proves the
	// peer is hearing us, the close signal for as long as we poll.
	if s.opened && s.AcksSeen == 0 && len(s.unacked) > 0 {
		if err := s.emit([]chunk.Chunk{SignalOpen(s.cfg.CID, s.cfg.ElemSize, 0)}); err != nil {
			return err
		}
	}
	if s.closed && !s.closeAcked {
		if err := s.emit([]chunk.Chunk{SignalClose(s.cfg.CID, s.csn)}); err != nil {
			return err
		}
	}
	for _, rec := range s.unacked {
		if s.round-rec.lastSent >= s.cfg.RetransmitAfter {
			s.Retransmits++
			s.adapt()
			rec.lastSent = s.round
			if err := s.emit(append(append([]chunk.Chunk{}, rec.chunks...), rec.ed)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Unacked returns the number of TPDUs awaiting acknowledgment.
func (s *Sender) Unacked() int { return len(s.unacked) }

// Drained reports full quiescence: every TPDU acknowledged and, if the
// connection was closed, the close signal acknowledged too.
func (s *Sender) Drained() bool {
	return len(s.unacked) == 0 && (!s.closed || s.closeAcked)
}
