package transport

import (
	"errors"
	"fmt"
	"slices"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/packet"
	"chunks/internal/telemetry"
	"chunks/internal/vr"
)

// ReceiverConfig parameterises the receive side of a connection.
type ReceiverConfig struct {
	// Layout must match the sender's invariant layout.
	Layout errdet.Layout
	// MTU bounds control datagrams.
	MTU int
	// OnFrame, when set, is called once per completed external PDU
	// (ALF frame) with the frame's bytes.
	OnFrame func(xid uint32, data []byte)
	// OnTPDU, when set, is called once per TPDU with its final
	// verdict.
	OnTPDU func(tid uint32, v errdet.Verdict)
	// Repair enables single-symbol error correction: a TPDU failing
	// the parity compare is repaired in place when the WSC-2 syndrome
	// identifies exactly one corrupted data symbol, avoiding a
	// retransmission round trip (extension; see errdet.Repair).
	Repair bool
	// OverlapPolicy selects what T-level virtual reassembly does with a
	// duplicate interval whose bytes differ from those already placed
	// (a conflicting overlap — the overlap-smuggling vector). The zero
	// value vr.FirstWins keeps the first-placed bytes (the paper's
	// Section 3.3 duplicate rule); vr.LastWins replaces bytes and
	// parity contribution together; vr.RejectPDU abandons the TPDU so
	// retransmissions rebuild it; vr.RejectConnection makes HandleChunk
	// return ErrConnectionRejected and the receiver refuse all further
	// input.
	OverlapPolicy vr.Policy
	// ReapAfter, when > 0, bounds the memory a lossy or dead peer can
	// pin in this receiver: an incomplete TPDU that makes no
	// reassembly progress for ReapAfter consecutive Poll rounds has
	// its verification state dropped entirely (the §3.3 buffer-lock-up
	// discussion applied to our own receiver). Data arriving later
	// rebuilds the TPDU from scratch via normal retransmission. 0
	// disables reaping.
	ReapAfter int
	// RetireVerified, when > 0, bounds the state of VERIFIED TPDUs the
	// way ReapAfter bounds incomplete ones: the receiver keeps the
	// most recent RetireVerified acknowledged TPDUs and retires older
	// ones — their verification state is recycled (not freed, so the
	// steady receive path allocates nothing) and, whenever the retiring
	// TPDU is the oldest data held, the delivered stream prefix is
	// trimmed in place. With retirement active Stream() returns only
	// the un-trimmed suffix (StreamBase says where it starts) and
	// OnFrame payloads are valid only during the callback. A duplicate
	// of a retired TPDU (a retransmission after a lost ACK) is simply
	// re-verified from scratch and re-acknowledged. 0 disables
	// retirement and keeps every TPDU's state for the connection's
	// lifetime (the historical behaviour).
	RetireVerified int

	// Tel receives the receiver's runtime metrics and lifecycle
	// events. The zero Sink disables instrumentation at no cost.
	Tel telemetry.Sink
}

// A Receiver is the receive side of one chunk connection: it places
// data immediately (no reassembly buffer), verifies each TPDU
// end-to-end, acknowledges verified TPDUs, and NACKs gaps.
type Receiver struct {
	cfg ReceiverConfig
	out func(datagram []byte)
	ed  *errdet.Receiver

	cid      uint32
	elemSize uint16
	opened   bool
	closed   bool
	rejected bool // vr.RejectConnection tripped; all input refused
	finalCSN uint64

	// stream is the application address space, placed by C.SN.
	// streamBase is the C.SN element offset of stream[0]: 0 until
	// retirement (RetireVerified) starts trimming delivered prefixes.
	stream     []byte
	streamBase uint64

	repaired  int
	reaped    int
	verified  int               // TPDUs acknowledged (survives retirement)
	pending   int               // TPDUs tracked without a final verdict (NeedsPoll)
	tids      map[uint32]bool   // every TPDU seen (for polling)
	progress  map[uint32]uint64 // reassembly fingerprint at last Poll
	stalled   map[uint32]int    // consecutive no-progress polls
	stale     map[uint32]int    // no-progress polls since last progress (for reaping)
	acked     map[uint32]bool
	notified  map[uint32]bool     // OnTPDU fired
	delivered map[uint32]bool     // frames delivered
	frames    map[uint32]frameRec // X.ID -> placement info

	// ackRing is the FIFO of acknowledged TPDUs awaiting retirement
	// (RetireVerified > 0); ringHead indexes its oldest live entry.
	ackRing  []uint32
	ringHead int

	round     int             // Poll rounds elapsed (telemetry timeline)
	firstSeen map[uint32]int  // Poll round a TPDU's first chunk arrived in
	verdicted map[uint32]bool // verdict telemetry closed out (once per TPDU)

	pack packet.Packer
	tel  recvTel

	// Hot-path scratch, reused across calls so the steady receive path
	// allocates nothing: dec is HandlePacket's envelope decode target,
	// ctrl and ackBuf build the single-ACK control emission, pollTids
	// is Poll's sorted-scan buffer.
	dec      packet.Packet
	ctrl     []chunk.Chunk
	ackBuf   []byte
	pollTids []uint32
}

// recvTel bundles the receiver's pre-resolved instruments. With a
// disabled Sink every field is nil and every use is a no-op branch.
type recvTel struct {
	chunks    *telemetry.Counter   // data chunks ingested
	placed    *telemetry.Counter   // payload bytes placed (fresh only)
	verified  *telemetry.Counter   // TPDUs with VerdictOK
	failed    *telemetry.Counter   // TPDUs with a non-OK final verdict
	repaired  *telemetry.Counter   // TPDUs fixed by WSC-2 repair
	reapedC   *telemetry.Counter   // stale TPDUs dropped
	nacks     *telemetry.Counter   // NACK chunks emitted
	chunkLen  *telemetry.Histogram // data chunk sizes, elements
	intervals *telemetry.Histogram // TPDU interval-set size per ingest
	polls     *telemetry.Histogram // Poll rounds from first chunk to verdict
	ring      *telemetry.Ring
}

func newRecvTel(t telemetry.Sink) recvTel {
	return recvTel{
		chunks:    t.Counter("chunks_received"),
		placed:    t.Counter("bytes_placed"),
		verified:  t.Counter("tpdus_verified"),
		failed:    t.Counter("tpdus_failed"),
		repaired:  t.Counter("tpdus_repaired"),
		reapedC:   t.Counter("tpdus_reaped"),
		nacks:     t.Counter("nacks_sent"),
		chunkLen:  t.Histogram("chunk_elems"),
		intervals: t.Histogram("reassembly_intervals"),
		polls:     t.Histogram("reassembly_polls"),
		ring:      t.Ring,
	}
}

// frameRec locates an external PDU within the connection stream.
type frameRec struct {
	startElem uint64 // C.SN of the frame's element 0 (C.SN - X.SN)
	endElems  uint64 // frame length in elements, once X.ST seen
	haveEnd   bool
}

// NewReceiver returns a Receiver; control datagrams (ACK/NACK packets)
// go to out.
func NewReceiver(cfg ReceiverConfig, out func([]byte)) (*Receiver, error) {
	if cfg.Layout.DataSymbols == 0 {
		cfg.Layout = errdet.DefaultLayout()
	}
	if cfg.MTU == 0 {
		cfg.MTU = 1400
	}
	ed, err := errdet.NewReceiver(cfg.Layout)
	if err != nil {
		return nil, err
	}
	ed.SetTelemetry(cfg.Tel)
	r := &Receiver{
		cfg:       cfg,
		out:       out,
		ed:        ed,
		tids:      make(map[uint32]bool),
		progress:  make(map[uint32]uint64),
		stalled:   make(map[uint32]int),
		stale:     make(map[uint32]int),
		acked:     make(map[uint32]bool),
		notified:  make(map[uint32]bool),
		delivered: make(map[uint32]bool),
		frames:    make(map[uint32]frameRec),
		firstSeen: make(map[uint32]int),
		verdicted: make(map[uint32]bool),
		pack:      packet.Packer{MTU: cfg.MTU, Buffers: new(packet.BufferPool)},
		tel:       newRecvTel(cfg.Tel),
		ackBuf:    make([]byte, 0, 4),
	}
	// The stream IS the prior-bytes view conflict detection needs:
	// virtual reassembly keeps no payload, so the placer lends its own.
	ed.SetOverlapPolicy(cfg.OverlapPolicy, r.priorBytes)
	return r, nil
}

// ErrConnectionRejected reports a conflicting overlap under
// vr.RejectConnection: the connection is dead and the caller (e.g. the
// core server) should tear it down.
var ErrConnectionRejected = fmt.Errorf("transport: conflicting overlap: connection rejected")

// Rejected reports whether the vr.RejectConnection policy tripped.
func (r *Receiver) Rejected() bool { return r.rejected }

// priorBytes returns the placed stream bytes for connection-stream
// elements [iv.Lo, iv.Hi), or nil when the range was never placed (or
// has been retired and trimmed away).
//
//lint:hot
func (r *Receiver) priorBytes(iv vr.Interval) []byte {
	if iv.Lo < r.streamBase {
		return nil
	}
	es := uint64(r.size())
	lo, hi := (iv.Lo-r.streamBase)*es, (iv.Hi-r.streamBase)*es
	if hi > uint64(len(r.stream)) || lo > hi {
		return nil
	}
	return r.stream[lo:hi]
}

// HandlePacket ingests one received datagram. The decode scratch is
// swapped out for the duration of the call, so a reentrant
// HandlePacket (an out callback looping a datagram straight back)
// stays correct — it just pays a fresh decode allocation.
//
//lint:hot
func (r *Receiver) HandlePacket(data []byte) error {
	dec := r.dec
	r.dec = packet.Packet{}
	err := packet.DecodeInto(data, &dec)
	if err == nil {
		for i := range dec.Chunks {
			if err = r.HandleChunk(&dec.Chunks[i]); err != nil {
				break
			}
		}
	}
	r.dec = dec
	return err
}

// HandleChunk ingests one chunk. Callers that demultiplex a datagram
// across several receivers (e.g. a multi-peer server keying connections
// by C.ID and source address) decode the packet once and route each
// chunk here; single-connection callers use HandlePacket.
//
//lint:hot
func (r *Receiver) HandleChunk(c *chunk.Chunk) error {
	if r.rejected {
		return ErrConnectionRejected
	}
	switch c.Type {
	case chunk.TypeSignal:
		sig, err := ParseSignal(c)
		if err != nil {
			return err
		}
		if sig.Open {
			r.cid = sig.CID
			r.elemSize = sig.ElemSize
			r.opened = true
		} else {
			r.closed = true
			r.finalCSN = sig.CSN
			// Acknowledge the close signal (repeated closes re-ACK:
			// a repeat means our previous ACK was lost).
			r.emitAck(CloseAckTID)
		}
		return nil
	case chunk.TypeData:
		r.trackFrame(c)
		r.tel.chunks.Inc()
		r.tel.chunkLen.Observe(int64(c.Len))
		r.tel.ring.Record(telemetry.EvReceived, c.C.ID, c.T.ID, c.T.SN, int64(c.Len))
		// Verification first: only FRESH, check-accepted element
		// ranges are placed, so a corrupted duplicate can never
		// overwrite good data (Section 3.3's duplicate rule) — except
		// under vr.LastWins, where the verifier hands back the
		// conflicting intervals to overwrite after swapping their
		// parity contribution.
		fresh, replace, err := r.ed.IngestPlaced(c)
		if err != nil {
			if errors.Is(err, vr.ErrConflictingData) {
				// The rejection is already a finding (and counted);
				// only vr.RejectConnection escalates past this chunk.
				if r.cfg.OverlapPolicy == vr.RejectConnection {
					r.rejected = true
					return ErrConnectionRejected
				}
				r.seen(c.T.ID)
				return nil
			}
			return err
		}
		for _, iv := range fresh {
			r.place(c, iv.Lo, iv.Hi)
			r.tel.placed.Add(int64((iv.Hi - iv.Lo) * uint64(c.Size)))
			r.tel.ring.Record(telemetry.EvPlaced, c.C.ID, c.T.ID, iv.Lo, int64(iv.Hi-iv.Lo))
		}
		for _, iv := range replace {
			r.place(c, iv.Lo, iv.Hi)
			r.tel.ring.Record(telemetry.EvPlaced, c.C.ID, c.T.ID, iv.Lo, int64(iv.Hi-iv.Lo))
		}
		r.seen(c.T.ID)
		r.tel.intervals.Observe(int64(r.ed.Fragments(c.T.ID)))
		r.after(c.T.ID)
		r.deliverFrames(c.X.ID)
		return nil
	case chunk.TypeED:
		if err := r.ed.Ingest(c); err != nil {
			return err
		}
		r.seen(c.T.ID)
		r.after(c.T.ID)
		return nil
	case chunk.TypeAck, chunk.TypeNack:
		return nil // peer's control towards its own sender role
	default:
		return fmt.Errorf("transport: unexpected chunk type %v", c.Type) //lint:allow hotalloc cold error path: fmt boxes its operands
	}
}

// place writes the chunk's elements [lo, hi) (T.SN space) at their
// connection-stream positions — immediate placement, the
// latency/throughput win of Section 1. Elements below streamBase are
// duplicates of already-retired data and are dropped.
//
//lint:hot
func (r *Receiver) place(c *chunk.Chunk, lo, hi uint64) {
	es := uint64(c.Size)
	abs := c.C.SN + (lo - c.T.SN)
	if abs < r.streamBase {
		return
	}
	off := (lo - c.T.SN) * es
	n := (hi - lo) * es
	dst := (abs - r.streamBase) * es
	if dst+n > uint64(len(r.stream)) {
		if dst+n <= uint64(cap(r.stream)) {
			// Room left behind by a retirement trim: re-extend in
			// place, zeroing the reclaimed tail (it holds stale bytes
			// from the copy-down).
			old := len(r.stream)
			r.stream = r.stream[:dst+n]
			clear(r.stream[old:])
		} else {
			// Grow geometrically: exact-size growth would reallocate
			// (and zero) the whole stream once per arriving datagram.
			newCap := max(2*uint64(cap(r.stream)), dst+n)
			grown := make([]byte, dst+n, newCap) //lint:allow hotalloc stream growth; retirement (RetireVerified) caps it in steady state
			copy(grown, r.stream)
			r.stream = grown
		}
	}
	copy(r.stream[dst:dst+n], c.Payload[off:off+n])
}

// trackFrame records where external PDU c.X.ID sits in the stream.
//
//lint:hot
func (r *Receiver) trackFrame(c *chunk.Chunk) {
	f, ok := r.frames[c.X.ID]
	if !ok {
		f = frameRec{startElem: c.C.SN - c.X.SN}
	}
	if c.X.ST {
		f.endElems = c.X.SN + uint64(c.Len)
		f.haveEnd = true
	}
	r.frames[c.X.ID] = f
}

// seen marks a TPDU as alive (not stale) and stamps the Poll round its
// first chunk arrived in, for the reassembly-latency histogram.
func (r *Receiver) seen(tid uint32) {
	r.tids[tid] = true
	delete(r.stale, tid) // arrival: the TPDU is not stale
	// Don't restart the latency clock for duplicates of a TPDU whose
	// verdict telemetry already closed out (a retransmission after a
	// lost ACK) — that would double-count the verdict in after().
	if _, ok := r.firstSeen[tid]; !ok && !r.verdicted[tid] {
		r.firstSeen[tid] = r.round
		r.pending++
	}
}

// after runs completion actions once a TPDU reaches a verdict:
// acknowledge verified TPDUs (the ACK may be piggybacked by the packer
// with other control, Appendix A).
//
//lint:hot
func (r *Receiver) after(tid uint32) {
	v := r.ed.Verdict(tid)
	if v == errdet.VerdictPending {
		return
	}
	if v == errdet.VerdictEDMismatch && r.cfg.Repair {
		if cor, ok := r.ed.Repair(tid); ok {
			cor.Apply(r.stream, r.size())
			r.repaired++
			r.tel.repaired.Inc()
			v = r.ed.Verdict(tid)
		}
	}
	if r.cfg.OnTPDU != nil && !r.notified[tid] {
		r.notified[tid] = true
		r.cfg.OnTPDU(tid, v)
	}
	// First time this TPDU reaches a verdict: close out its telemetry
	// (reassembly latency in Poll rounds, verified/failed counts, the
	// TPDU-complete lifecycle event).
	if first, ok := r.firstSeen[tid]; ok {
		delete(r.firstSeen, tid)
		r.verdicted[tid] = true
		r.pending--
		r.tel.polls.Observe(int64(r.round - first))
		if v == errdet.VerdictOK {
			r.tel.verified.Inc()
			r.tel.ring.Record(telemetry.EvComplete, r.cid, tid, uint64(tid), 0)
		} else {
			r.tel.failed.Inc()
		}
	}
	if v == errdet.VerdictOK {
		// ACK on first completion AND on every later duplicate: a
		// duplicate means the sender retransmitted, which means the
		// previous ACK was lost.
		if !r.acked[tid] {
			r.acked[tid] = true
			r.verified++
			if r.cfg.RetireVerified > 0 {
				r.ackRing = append(r.ackRing, tid)
				for len(r.ackRing)-r.ringHead > r.cfg.RetireVerified {
					old := r.ackRing[r.ringHead]
					r.ackRing[r.ringHead] = 0
					r.ringHead++
					r.retire(old)
				}
				// Compact the ring once the dead prefix dominates, so
				// the FIFO stays O(RetireVerified) without per-ACK
				// reallocation.
				if r.ringHead >= 64 && r.ringHead*2 >= len(r.ackRing) {
					n := copy(r.ackRing, r.ackRing[r.ringHead:])
					r.ackRing = r.ackRing[:n]
					r.ringHead = 0
				}
			}
		}
		r.emitAck(tid)
	}
}

// retire drops every trace of a verified, acknowledged TPDU, recycling
// its verification state, and trims the delivered stream prefix when
// tid is the oldest data held (out-of-order verification just delays
// the trim until the gap retires). A retransmission of a retired TPDU
// arriving later (lost ACK) is re-verified from scratch; its placement
// below streamBase is dropped by place.
//
//lint:hot
func (r *Receiver) retire(tid uint32) {
	if lo, hi, ok := r.ed.TPDUExtent(tid); ok && lo == r.streamBase {
		n := (hi - lo) * uint64(r.size())
		if n <= uint64(len(r.stream)) {
			rem := copy(r.stream, r.stream[n:])
			r.stream = r.stream[:rem]
			r.streamBase = hi
		}
	}
	r.ed.Retire(tid)
	delete(r.tids, tid)
	delete(r.progress, tid)
	delete(r.stalled, tid)
	delete(r.stale, tid)
	delete(r.acked, tid)
	delete(r.notified, tid)
	delete(r.firstSeen, tid)
	delete(r.verdicted, tid)
}

// size returns the connection element size (signaled, defaulting to 4).
func (r *Receiver) size() uint16 {
	if r.elemSize == 0 {
		return 4
	}
	return r.elemSize
}

// deliverFrames fires OnFrame for completed external PDUs. Under
// RetireVerified the frame's tracking state is retired right after
// completion (delivered or not), so per-frame state is recycled in
// step with per-TPDU state.
//
//lint:hot
func (r *Receiver) deliverFrames(xid uint32) {
	f, ok := r.frames[xid]
	if !ok || !f.haveEnd || !r.ed.XComplete(xid) {
		return
	}
	if r.cfg.OnFrame != nil && !r.delivered[xid] {
		r.delivered[xid] = true
		es := uint64(r.size())
		if f.startElem >= r.streamBase {
			lo := (f.startElem - r.streamBase) * es
			hi := lo + f.endElems*es
			if hi <= uint64(len(r.stream)) {
				r.cfg.OnFrame(xid, r.stream[lo:hi])
			}
		}
	}
	if r.cfg.RetireVerified > 0 {
		r.ed.RetireX(xid)
		delete(r.frames, xid)
		delete(r.delivered, xid)
	}
}

// Poll emits NACKs for every known-but-incomplete TPDU: missing data
// intervals (plus an open-ended tail request while the TPDU's end is
// unknown), or an empty interval list when only the ED chunk is
// outstanding. Call once per pump round.
func (r *Receiver) Poll() {
	r.round++
	var ctrl []chunk.Chunk
	// Sorted scan: NACK emission order decides how control chunks pack
	// into datagrams, so map iteration order would break seeded-run
	// determinism. The tid buffer is receiver-owned scratch and
	// slices.Sort needs no closure, keeping quiescent polls
	// allocation-free.
	tids := r.pollTids[:0]
	for tid := range r.tids {
		tids = append(tids, tid)
	}
	slices.Sort(tids)
	r.pollTids = tids
	for _, tid := range tids {
		if r.acked[tid] || r.ed.Verdict(tid) != errdet.VerdictPending {
			continue
		}
		miss := r.ed.Missing(tid)
		haveEnd, high := r.ed.TPDUStatus(tid)
		// Progress suppression: while data for this TPDU is still
		// flowing in, hold the NACK — request retransmission only
		// when a poll interval passes with no change.
		fp := high<<16 ^ uint64(len(miss))<<1
		if haveEnd {
			fp |= 1
		}
		// Reaping: an incomplete TPDU with no chunk arrivals for
		// ReapAfter polls (r.stale is zeroed on every arrival) is
		// given up on entirely — its verification state is dropped so
		// a lossy or dead peer cannot pin receiver memory without
		// bound. A retransmission arriving later rebuilds it from
		// scratch.
		r.stale[tid]++
		if r.cfg.ReapAfter > 0 && r.stale[tid] >= r.cfg.ReapAfter {
			if _, ok := r.firstSeen[tid]; ok {
				r.pending--
			}
			r.ed.ResetTPDU(tid)
			delete(r.tids, tid)
			delete(r.progress, tid)
			delete(r.stalled, tid)
			delete(r.stale, tid)
			delete(r.firstSeen, tid)
			delete(r.verdicted, tid)
			r.reaped++
			r.tel.reapedC.Inc()
			r.tel.ring.Record(telemetry.EvReaped, r.cid, tid, uint64(tid), 0)
			continue
		}
		if prev, ok := r.progress[tid]; !ok || prev != fp {
			r.progress[tid] = fp
			r.stalled[tid] = 0
			continue
		}
		// Stall escalation: a TPDU that keeps receiving
		// retransmissions without converging had its verification
		// state poisoned (e.g. a corrupted first chunk seeded wrong
		// consistency baselines). Reset it and rebuild from the next
		// retransmission.
		r.stalled[tid]++
		if r.stalled[tid] >= 4 {
			r.stalled[tid] = 0
			delete(r.progress, tid)
			r.ed.ResetTPDU(tid)
			ctrl = append(ctrl, Nack(r.cid, tid, []vr.Interval{{Lo: 0, Hi: ^uint64(0)}}))
			continue
		}
		if !haveEnd {
			// The T.ST chunk is lost: ask for everything from the
			// highest element seen onward; the sender clips the
			// request to the TPDU's real extent.
			miss = append(miss, vr.Interval{Lo: high, Hi: ^uint64(0)})
		}
		ctrl = append(ctrl, Nack(r.cid, tid, miss))
	}
	if len(ctrl) > 0 {
		r.tel.nacks.Add(int64(len(ctrl)))
		r.emit(ctrl)
	}
}

//lint:hot
func (r *Receiver) emit(chs []chunk.Chunk) {
	datagrams, err := r.pack.Encode(chs)
	if err != nil {
		return
	}
	for _, d := range datagrams {
		r.out(d)
	}
}

// emitAck emits a single ACK chunk through the receiver's reusable
// control scratch: the one-chunk slice and the 4-byte ACK payload are
// receiver fields, re-filled per call, so the verify → ACK steady path
// allocates nothing.
//
//lint:hot
func (r *Receiver) emitAck(tid uint32) {
	r.ctrl = append(r.ctrl[:0], AckWith(r.cid, tid, r.ackBuf))
	r.emit(r.ctrl)
}

// Recycle returns a control datagram previously handed to out to the
// receiver's buffer pool. Opt-in, exactly like Sender.Recycle: callers
// that copy or retain datagrams simply never call it.
//
//lint:hot
func (r *Receiver) Recycle(d []byte) { r.pack.Buffers.Put(d) }

// Stream returns the application byte stream placed so far — all of it
// with retirement off, the un-trimmed suffix starting at element
// StreamBase otherwise.
func (r *Receiver) Stream() []byte { return r.stream }

// StreamBase returns the connection-stream element offset of
// Stream()[0]: how many elements retirement has trimmed. Always 0 with
// RetireVerified unset.
func (r *Receiver) StreamBase() uint64 { return r.streamBase }

// Opened and Closed report signaling state.
func (r *Receiver) Opened() bool { return r.opened }

// Closed reports whether the close signal has arrived.
func (r *Receiver) Closed() bool { return r.closed }

// FinalCSN returns the element SN past the last data element, valid
// once Closed.
func (r *Receiver) FinalCSN() uint64 { return r.finalCSN }

// Verified reports whether TPDU tid verified OK (and its state is
// still held: a retired TPDU reports false).
func (r *Receiver) Verified(tid uint32) bool { return r.acked[tid] }

// VerifiedCount returns how many TPDUs verified OK, including ones
// since retired.
func (r *Receiver) VerifiedCount() int { return r.verified }

// Findings exposes the error detection findings (for experiments).
func (r *Receiver) Findings() []errdet.Finding { return r.ed.Findings() }

// Repaired returns the number of TPDUs fixed by single-symbol error
// correction (only nonzero when ReceiverConfig.Repair is set).
func (r *Receiver) Repaired() int { return r.repaired }

// Reaped returns the number of stale incomplete TPDUs whose state was
// dropped (only nonzero when ReceiverConfig.ReapAfter is set).
func (r *Receiver) Reaped() int { return r.reaped }

// NeedsPoll reports whether the receiver has timer-driven work left:
// at least one tracked TPDU awaits its final verdict, so Poll rounds
// must keep running (NACK emission, stall escalation, reaping). A
// receiver with no pending verdicts is quiescent — a timer-wheel
// caller (internal/shard) disarms its poll timer instead of scanning
// it every tick, and re-arms on the next arrival.
func (r *Receiver) NeedsPoll() bool { return r.pending > 0 }

// PendingTPDUs returns the number of TPDUs currently holding receive
// state without a final verdict — the quantity reaping bounds.
func (r *Receiver) PendingTPDUs() int {
	n := 0
	for tid := range r.tids {
		if !r.acked[tid] && r.ed.Verdict(tid) == errdet.VerdictPending {
			n++
		}
	}
	return n
}
