package transport

import (
	"bytes"
	"testing"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/packet"
)

// corruptingPump wires a sender and receiver through a pipe that
// flips one payload bit in one data packet.
func runWithBitFlip(t *testing.T, repair bool) (*Receiver, *Sender, []byte) {
	t.Helper()
	data := appData(4096, 21)

	var toRecv, toSend [][]byte
	s := NewSender(SenderConfig{CID: 4, MTU: 512, ElemSize: 4, TPDUElems: 256},
		func(d []byte) { toRecv = append(toRecv, append([]byte(nil), d...)) })
	r, err := NewReceiver(ReceiverConfig{Repair: repair}, func(d []byte) {
		toSend = append(toSend, append([]byte(nil), d...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	flipped := false
	for round := 0; round < 50; round++ {
		out := toRecv
		toRecv = nil
		for _, d := range out {
			if !flipped {
				// Find a data chunk packet and flip one payload bit.
				if p, err := packet.Decode(d); err == nil && len(p.Chunks) > 0 &&
					p.Chunks[0].Type == 1 /* data */ && len(p.Chunks[0].Payload) > 8 {
					d[len(d)-5] ^= 0x10
					flipped = true
				}
			}
			if err := r.HandlePacket(d); err != nil {
				t.Fatal(err)
			}
		}
		in := toSend
		toSend = nil
		for _, d := range in {
			pk, err := packet.Decode(d)
			if err != nil {
				t.Fatal(err)
			}
			for i := range pk.Chunks {
				if err := s.HandleControl(&pk.Chunks[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		r.Poll()
		if err := s.Poll(); err != nil {
			t.Fatal(err)
		}
		if s.Drained() && len(toRecv) == 0 && len(toSend) == 0 {
			break
		}
	}
	if !flipped {
		t.Fatal("no packet was corrupted")
	}
	return r, s, data
}

// TestRepairAvoidsRetransmission: with Repair on, a single flipped
// bit is fixed locally — correct stream, zero retransmissions.
func TestRepairAvoidsRetransmission(t *testing.T) {
	r, s, data := runWithBitFlip(t, true)
	if r.Repaired() != 1 {
		t.Fatalf("Repaired = %d", r.Repaired())
	}
	if !bytes.Equal(r.Stream(), data) {
		t.Fatal("repaired stream differs")
	}
	if s.Retransmits != 0 {
		t.Fatalf("repair path should not retransmit, got %d", s.Retransmits)
	}
	if !s.Drained() {
		t.Fatal("sender must drain (repaired TPDU is ACKed)")
	}
}

// TestNoRepairRecoversByRetransmission: without Repair the corrupted
// TPDU fails the parity compare, the sender's timeout retransmits it
// wholesale (same identifiers), the receiver rebuilds the TPDU's
// verification state, and everything converges to a verified stream.
func TestNoRepairRecoversByRetransmission(t *testing.T) {
	r, s, data := runWithBitFlip(t, false)
	if r.Repaired() != 0 {
		t.Fatal("repair must be off")
	}
	mismatch := false
	for _, f := range r.Findings() {
		if f.Class == errdet.VerdictEDMismatch {
			mismatch = true
		}
	}
	if !mismatch {
		t.Fatal("corruption must be detected by the ED code")
	}
	if s.Retransmits == 0 {
		t.Fatal("recovery requires retransmission")
	}
	if !bytes.Equal(r.Stream(), data) {
		t.Fatal("retransmission must restore the stream")
	}
	if !s.Drained() {
		t.Fatal("rebuilt TPDU must verify and be ACKed")
	}
}

// TestCorruptedDuplicateCannotOverwrite reproduces the Section 3.3
// sentence verbatim: "Another reason to reject duplicates is to
// prevent a corrupted duplicate from overwriting uncorrupted data
// that has already been received." The good copy arrives first; a
// corrupted duplicate follows; the placed stream must keep the good
// bytes and the TPDU must verify.
func TestCorruptedDuplicateCannotOverwrite(t *testing.T) {
	data := appData(1024, 55)
	var toRecv [][]byte
	s := NewSender(SenderConfig{CID: 6, MTU: 2048, ElemSize: 4, TPDUElems: 256},
		func(d []byte) { toRecv = append(toRecv, append([]byte(nil), d...)) })
	r, err := NewReceiver(ReceiverConfig{}, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Deliver everything once (good copies)...
	for _, d := range toRecv {
		if err := r.HandlePacket(d); err != nil {
			t.Fatal(err)
		}
	}
	// ...then replay the data packet with corrupted payload bytes.
	for _, d := range toRecv {
		p, err := packet.Decode(d)
		if err != nil || len(p.Chunks) == 0 || p.Chunks[0].Type != chunk.TypeData {
			continue
		}
		bad := append([]byte(nil), d...)
		bad[len(bad)-1] ^= 0xFF
		bad[len(bad)-100] ^= 0xFF
		if err := r.HandlePacket(bad); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(r.Stream(), data) {
		t.Fatal("corrupted duplicate overwrote verified data")
	}
	if r.VerifiedCount() != 1 {
		t.Fatalf("verified %d TPDUs", r.VerifiedCount())
	}
}

// TestPoisonedFirstChunkRecovers: a corrupted T.SN on the FIRST
// fragment of a TPDU seeds wrong consistency baselines, so every
// genuine fragment is rejected. The receiver's stall escalation must
// reset the TPDU and let retransmissions rebuild it.
func TestPoisonedFirstChunkRecovers(t *testing.T) {
	data := appData(8192, 77)
	var toRecv, toSend [][]byte
	s := NewSender(SenderConfig{CID: 7, MTU: 512, ElemSize: 4, TPDUElems: 512},
		func(d []byte) { toRecv = append(toRecv, append([]byte(nil), d...)) })
	r, err := NewReceiver(ReceiverConfig{}, func(d []byte) {
		toSend = append(toSend, append([]byte(nil), d...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	poisoned := false
	for round := 0; round < 80; round++ {
		out := toRecv
		toRecv = nil
		for _, d := range out {
			if !poisoned {
				// Flip a high byte of the first data chunk's T.SN so
				// the poisoned fragment seeds the TPDU state.
				if p, err := packet.Decode(d); err == nil && len(p.Chunks) > 0 &&
					p.Chunks[0].Type == chunk.TypeData {
					d[packet.HeaderSize+26] ^= 0x80 // T.SN offset 24..31
					poisoned = true
				}
			}
			if err := r.HandlePacket(d); err != nil {
				t.Fatal(err)
			}
		}
		in := toSend
		toSend = nil
		for _, d := range in {
			pk, err := packet.Decode(d)
			if err != nil {
				t.Fatal(err)
			}
			for i := range pk.Chunks {
				if err := s.HandleControl(&pk.Chunks[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		r.Poll()
		if err := s.Poll(); err != nil {
			t.Fatal(err)
		}
		if s.Drained() && len(toRecv) == 0 && len(toSend) == 0 {
			break
		}
	}
	if !poisoned {
		t.Fatal("nothing was poisoned")
	}
	if !s.Drained() {
		t.Fatal("poisoned TPDU never recovered (stall escalation failed)")
	}
	if !bytes.Equal(r.Stream(), data) {
		t.Fatal("stream mismatch after recovery")
	}
}
