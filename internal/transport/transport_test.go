package transport

import (
	"bytes"
	"math/rand"
	"testing"

	"chunks/internal/errdet"
)

func appData(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func mustPump(t *testing.T, scfg SenderConfig, rcfg ReceiverConfig, pcfg PumpConfig) *Pump {
	t.Helper()
	p, err := NewPump(scfg, rcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCleanTransfer(t *testing.T) {
	data := appData(8192, 1)
	p := mustPump(t,
		SenderConfig{CID: 9, MTU: 512, ElemSize: 4, TPDUElems: 128},
		ReceiverConfig{}, PumpConfig{Seed: 1})
	if err := p.S.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := p.S.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatalf("not drained after %d rounds; unacked=%d", res.Rounds, p.S.Unacked())
	}
	if !bytes.Equal(p.R.Stream(), data) {
		t.Fatal("received stream differs")
	}
	if p.S.Retransmits != 0 {
		t.Fatalf("clean path retransmitted %d times", p.S.Retransmits)
	}
	if !p.R.Opened() || !p.R.Closed() {
		t.Fatal("signaling did not arrive")
	}
	if p.R.FinalCSN() != uint64(len(data)/4) {
		t.Fatalf("FinalCSN = %d", p.R.FinalCSN())
	}
	if p.R.VerifiedCount() != p.S.TPDUsSent {
		t.Fatalf("verified %d of %d TPDUs", p.R.VerifiedCount(), p.S.TPDUsSent)
	}
	if len(p.R.Findings()) != 0 {
		t.Fatalf("findings on clean run: %v", p.R.Findings())
	}
}

func TestShortFinalTPDU(t *testing.T) {
	data := appData(1000, 2) // 250 elements; TPDUElems 64 -> 3 full + 58
	p := mustPump(t,
		SenderConfig{CID: 1, MTU: 256, ElemSize: 4, TPDUElems: 64},
		ReceiverConfig{}, PumpConfig{Seed: 2})
	if err := p.S.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := p.S.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil || !res.Drained {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if !bytes.Equal(p.R.Stream(), data) {
		t.Fatal("stream mismatch")
	}
	if p.S.TPDUsSent != 4 {
		t.Fatalf("TPDUs sent = %d", p.S.TPDUsSent)
	}
}

func TestWriteErrors(t *testing.T) {
	p := mustPump(t, SenderConfig{CID: 1, ElemSize: 4}, ReceiverConfig{}, PumpConfig{})
	if err := p.S.Write([]byte{1, 2, 3}); err != ErrNotElemAligned {
		t.Fatalf("unaligned write: %v", err)
	}
	if err := p.S.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.S.Write([]byte{1, 2, 3, 4}); err != ErrClosed {
		t.Fatalf("write after close: %v", err)
	}
	if err := p.S.Close(); err != nil {
		t.Fatal("double close must be idempotent")
	}
}

func TestFrameDelivery(t *testing.T) {
	frames := [][]byte{appData(400, 3), appData(240, 4), appData(80, 5)}
	got := map[uint32][]byte{}
	p := mustPump(t,
		SenderConfig{CID: 2, MTU: 300, ElemSize: 4, TPDUElems: 50},
		ReceiverConfig{OnFrame: func(xid uint32, data []byte) {
			got[xid] = append([]byte(nil), data...)
		}},
		PumpConfig{Seed: 3})
	for _, f := range frames {
		if err := p.S.Write(f); err != nil {
			t.Fatal(err)
		}
		p.S.EndFrame()
	}
	if err := p.S.Close(); err != nil {
		t.Fatal(err)
	}
	if res, err := p.Run(); err != nil || !res.Drained {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if len(got) != len(frames) {
		t.Fatalf("delivered %d frames, want %d", len(got), len(frames))
	}
	for i, f := range frames {
		if !bytes.Equal(got[uint32(i+1)], f) {
			t.Fatalf("frame %d content mismatch", i+1)
		}
	}
}

func TestLossRecovery(t *testing.T) {
	data := appData(16384, 6)
	p := mustPump(t,
		SenderConfig{CID: 3, MTU: 512, ElemSize: 4, TPDUElems: 128},
		ReceiverConfig{}, PumpConfig{Seed: 6, LossData: 0.3, MaxRounds: 400})
	if err := p.S.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := p.S.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatalf("lossy transfer never drained (unacked %d)", p.S.Unacked())
	}
	if !bytes.Equal(p.R.Stream(), data) {
		t.Fatal("stream mismatch after loss recovery")
	}
	if p.S.Retransmits == 0 {
		t.Fatal("30% loss must force retransmissions")
	}
}

func TestControlLossRecovery(t *testing.T) {
	data := appData(4096, 7)
	p := mustPump(t,
		SenderConfig{CID: 4, MTU: 512, ElemSize: 4, TPDUElems: 64},
		ReceiverConfig{}, PumpConfig{Seed: 7, LossData: 0.2, LossCtrl: 0.5, MaxRounds: 600})
	if err := p.S.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := p.S.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil || !res.Drained {
		t.Fatalf("res=%+v err=%v unacked=%d", res, err, p.S.Unacked())
	}
	if !bytes.Equal(p.R.Stream(), data) {
		t.Fatal("stream mismatch")
	}
}

func TestReorderedDelivery(t *testing.T) {
	data := appData(8192, 8)
	p := mustPump(t,
		SenderConfig{CID: 5, MTU: 256, ElemSize: 4, TPDUElems: 64},
		ReceiverConfig{}, PumpConfig{Seed: 8, Reorder: true})
	if err := p.S.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := p.S.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil || !res.Drained {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if !bytes.Equal(p.R.Stream(), data) {
		t.Fatal("reordered delivery corrupted the stream")
	}
	if p.S.Retransmits != 0 {
		t.Fatal("pure reordering must not force retransmission")
	}
}

// TestAdaptiveTPDUSizing (experiment P8): under loss, the sender
// shrinks its TPDU to "match the observed network error rate".
func TestAdaptiveTPDUSizing(t *testing.T) {
	data := appData(32768, 9)
	p := mustPump(t,
		SenderConfig{CID: 6, MTU: 512, ElemSize: 4, TPDUElems: 512, MinTPDUElems: 16, Adapt: true},
		ReceiverConfig{}, PumpConfig{Seed: 9, LossData: 0.35, MaxRounds: 800})
	if err := p.S.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := p.S.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil || !res.Drained {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if got := p.S.Config().TPDUElems; got >= 512 {
		t.Fatalf("TPDU size did not adapt: %d", got)
	}
	if got := p.S.Config().TPDUElems; got < 16 {
		t.Fatalf("TPDU size fell below the floor: %d", got)
	}
	if !bytes.Equal(p.R.Stream(), data) {
		t.Fatal("stream mismatch")
	}
}

func TestOnTPDUCallback(t *testing.T) {
	verdicts := map[uint32]errdet.Verdict{}
	p := mustPump(t,
		SenderConfig{CID: 7, MTU: 512, ElemSize: 4, TPDUElems: 32},
		ReceiverConfig{OnTPDU: func(tid uint32, v errdet.Verdict) { verdicts[tid] = v }},
		PumpConfig{Seed: 10})
	if err := p.S.Write(appData(512, 10)); err != nil {
		t.Fatal(err)
	}
	if err := p.S.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != p.S.TPDUsSent {
		t.Fatalf("callbacks for %d of %d TPDUs", len(verdicts), p.S.TPDUsSent)
	}
	for tid, v := range verdicts {
		if v != errdet.VerdictOK {
			t.Fatalf("TPDU %d verdict %v", tid, v)
		}
	}
}

// TestFrameSpanningTPDUs: a frame larger than a TPDU spans several and
// is delivered once its last element arrives.
func TestFrameSpanningTPDUs(t *testing.T) {
	frame := appData(4096, 11) // 1024 elements over TPDUs of 128
	var got []byte
	p := mustPump(t,
		SenderConfig{CID: 8, MTU: 512, ElemSize: 4, TPDUElems: 128},
		ReceiverConfig{OnFrame: func(xid uint32, data []byte) { got = append([]byte(nil), data...) }},
		PumpConfig{Seed: 11})
	if err := p.S.Write(frame); err != nil {
		t.Fatal(err)
	}
	p.S.EndFrame()
	if err := p.S.Close(); err != nil {
		t.Fatal(err)
	}
	if res, err := p.Run(); err != nil || !res.Drained {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("spanning frame mismatch")
	}
}

func TestStaleNackIgnored(t *testing.T) {
	p := mustPump(t, SenderConfig{CID: 1, ElemSize: 4, TPDUElems: 8}, ReceiverConfig{}, PumpConfig{})
	if err := p.S.Write(appData(32, 12)); err != nil {
		t.Fatal(err)
	}
	if err := p.S.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	// All acked; a stale NACK must be harmless.
	n := Nack(1, 0, nil)
	if err := p.S.HandleControl(&n); err != nil {
		t.Fatal(err)
	}
	if p.S.Retransmits != 0 {
		t.Fatal("stale NACK must not retransmit")
	}
}

func TestEndFrameIdempotent(t *testing.T) {
	p := mustPump(t, SenderConfig{CID: 1, ElemSize: 4, TPDUElems: 8}, ReceiverConfig{}, PumpConfig{})
	p.S.EndFrame() // empty frame: no-op
	if err := p.S.Write(appData(16, 13)); err != nil {
		t.Fatal(err)
	}
	p.S.EndFrame()
	p.S.EndFrame() // duplicate: no-op
	if len(p.S.frameCuts) != 1 {
		t.Fatalf("frameCuts = %v", p.S.frameCuts)
	}
}

func BenchmarkTransfer1MB(b *testing.B) {
	data := appData(1<<20, 1)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		p, err := NewPump(
			SenderConfig{CID: 1, MTU: 1400, ElemSize: 4, TPDUElems: 4096},
			ReceiverConfig{}, PumpConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.S.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := p.S.Close(); err != nil {
			b.Fatal(err)
		}
		res, err := p.Run()
		if err != nil || !res.Drained {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// TestAdaptiveGrowsBack: after the loss clears, sustained clean ACKs
// restore the TPDU size toward its configured value.
func TestAdaptiveGrowsBack(t *testing.T) {
	p := mustPump(t,
		SenderConfig{CID: 9, MTU: 512, ElemSize: 4, TPDUElems: 256, MinTPDUElems: 16, Adapt: true},
		ReceiverConfig{}, PumpConfig{Seed: 40, LossData: 0.4, MaxRounds: 600})
	// Phase 1: lossy transfer shrinks the TPDU.
	if err := p.S.Write(appData(16384, 40)); err != nil {
		t.Fatal(err)
	}
	if err := p.S.Flush(); err != nil {
		t.Fatal(err)
	}
	if res, err := p.Run(); err != nil || !res.Drained {
		t.Fatalf("phase 1: %+v %v", res, err)
	}
	shrunk := p.S.Config().TPDUElems
	if shrunk >= 256 {
		t.Fatalf("phase 1 did not shrink: %d", shrunk)
	}
	// Phase 2: clean network; many small TPDUs ACK cleanly.
	p.cfg.LossData = 0
	if err := p.S.Write(appData(65536, 41)); err != nil {
		t.Fatal(err)
	}
	if err := p.S.Flush(); err != nil {
		t.Fatal(err)
	}
	if res, err := p.Run(); err != nil || !res.Drained {
		t.Fatalf("phase 2: %+v %v", res, err)
	}
	if got := p.S.Config().TPDUElems; got <= shrunk {
		t.Fatalf("TPDU size did not grow back: %d (was %d)", got, shrunk)
	}
}
