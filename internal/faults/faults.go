// Package faults is the fault-injection harness behind Table 1
// (experiment T1): it corrupts each chunk header field on the wire,
// runs the end-to-end error detection receiver, and reports WHICH
// mechanism detected the corruption — error detection code,
// consistency check, or reassembly error — alongside the paper's
// attribution.
//
// Two corruption modes are exercised:
//
//   - PerFragment: one fragment's field is corrupted in flight, the
//     common transmission-error case. Identity fields corrupted this
//     way make the fragment disagree with its siblings, so the
//     receiver's agreement checks or virtual reassembly catch them
//     before the code comparison can.
//   - WholeLabel: the field is corrupted consistently in every chunk
//     of the PDU (a systematic label error, e.g. corruption before
//     fragmentation). Agreement checks cannot see it; this is the
//     case the paper's "Error Detection Code" rows describe, caught
//     because the field is encoded in the TPDU invariant.
package faults

import (
	"fmt"
	"math/rand"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/packet"
)

// Mode selects how the corruption is applied.
type Mode int

const (
	// PerFragment corrupts the field in a single in-flight fragment.
	PerFragment Mode = iota
	// WholeLabel corrupts the field consistently in every chunk of
	// the affected PDU (including the ED chunk where it carries the
	// field).
	WholeLabel
)

func (m Mode) String() string {
	if m == PerFragment {
		return "per-fragment"
	}
	return "whole-label"
}

// A Case is one Table 1 row: a field, how to corrupt it, and the
// paper's attribution.
type Case struct {
	Field string
	Mode  Mode
	// Paper is the detection mechanism Table 1 attributes to this
	// field ("how detected?").
	Paper errdet.Verdict
	// Target selects which fragment to corrupt in PerFragment mode.
	Target TargetKind
	// Wire mutates the encoded chunk bytes (PerFragment mode).
	Wire func(b []byte)
	// Label mutates a decoded chunk (WholeLabel mode); applied to
	// every chunk for which it returns true.
	Label func(c *chunk.Chunk) bool
}

// TargetKind names which fragment a PerFragment corruption hits.
type TargetKind int

const (
	// MiddleFragment is a fragment with no ST bits set.
	MiddleFragment TargetKind = iota
	// TriggerFragment carries the X.ST bit (ends external PDU 1).
	TriggerFragment
	// FinalFragment carries the TPDU's T.ST bit.
	FinalFragment
	// EDFragment is the error detection control chunk itself.
	EDFragment
)

// An Outcome is one executed row: the mechanism that actually fired.
type Outcome struct {
	Case
	Got      errdet.Verdict
	Detected bool
	Dropped  bool // wire corruption made the packet unparseable
	Match    bool // Got == Paper
}

func (o Outcome) String() string {
	return fmt.Sprintf("%-8s %-12s paper=%-22v got=%-22v detected=%v",
		o.Field, o.Mode, o.Paper, o.Got, o.Detected)
}

// Wire-format field offsets (see chunk/wire.go).
const (
	offType  = 0
	offFlags = 1
	offSize  = 2
	offLen   = 4
	offCID   = 8
	offCSN   = 12
	offTID   = 20
	offTSN   = 24
	offXID   = 32
	offXSN   = 36
	offData  = chunk.HeaderSize
)

// Cases returns the full Table 1 matrix: every chunk field, in the
// mode(s) that exercise it.
func Cases() []Case {
	return []Case{
		// Fields whose corruption breaks parsing or demultiplexing:
		// detected as reassembly errors (paper agrees for all four).
		{Field: "TYPE", Mode: PerFragment, Paper: errdet.VerdictReassembly, Target: MiddleFragment,
			Wire: func(b []byte) { b[offType] = byte(chunk.TypeAck) }},
		{Field: "SIZE", Mode: PerFragment, Paper: errdet.VerdictReassembly, Target: MiddleFragment,
			Wire: func(b []byte) { b[offSize+1] ^= 0x01 }},
		{Field: "LEN", Mode: PerFragment, Paper: errdet.VerdictReassembly, Target: MiddleFragment,
			Wire: func(b []byte) { b[offLen+3] ^= 0x01 }},
		{Field: "T.SN", Mode: PerFragment, Paper: errdet.VerdictReassembly, Target: MiddleFragment,
			Wire: func(b []byte) { b[offTSN+7] ^= 0x03 }},
		{Field: "T.ST", Mode: PerFragment, Paper: errdet.VerdictReassembly, Target: FinalFragment,
			Wire: func(b []byte) { b[offFlags] ^= 0x02 }}, // 1 -> 0: end never learned
		{Field: "T.ST+", Mode: PerFragment, Paper: errdet.VerdictReassembly, Target: MiddleFragment,
			Wire: func(b []byte) { b[offFlags] ^= 0x02 }}, // 0 -> 1: conflicting end

		// SN fields changed by fragmentation: consistency checks
		// (paper agrees).
		{Field: "C.SN", Mode: PerFragment, Paper: errdet.VerdictConsistency, Target: MiddleFragment,
			Wire: func(b []byte) { b[offCSN+7] ^= 0xFF }},
		{Field: "X.SN", Mode: PerFragment, Paper: errdet.VerdictConsistency, Target: MiddleFragment,
			Wire: func(b []byte) { b[offXSN+7] ^= 0xFF }},

		// ST bits covered by the invariant: error detection code
		// (paper agrees).
		{Field: "C.ST", Mode: PerFragment, Paper: errdet.VerdictEDMismatch, Target: MiddleFragment,
			Wire: func(b []byte) { b[offFlags] ^= 0x01 }},
		{Field: "X.ST", Mode: PerFragment, Paper: errdet.VerdictEDMismatch, Target: MiddleFragment,
			Wire: func(b []byte) { b[offFlags] ^= 0x04 }}, // spurious pair
		{Field: "X.ST-", Mode: PerFragment, Paper: errdet.VerdictEDMismatch, Target: TriggerFragment,
			Wire: func(b []byte) { b[offFlags] ^= 0x04 }}, // missing pair

		// Payloads: error detection code (paper agrees).
		{Field: "Data", Mode: PerFragment, Paper: errdet.VerdictEDMismatch, Target: MiddleFragment,
			Wire: func(b []byte) { b[offData] ^= 0xFF }},
		{Field: "EDcode", Mode: PerFragment, Paper: errdet.VerdictEDMismatch, Target: EDFragment,
			Wire: func(b []byte) { b[offData] ^= 0xFF }},

		// Identity fields, per-fragment: in this implementation the
		// receiver's agreement checks / demultiplexing catch the
		// disagreeing fragment before the code comparison; the paper
		// attributes these to the ED code assuming the label error is
		// systematic — exercised by the WholeLabel rows below.
		{Field: "C.ID", Mode: PerFragment, Paper: errdet.VerdictEDMismatch, Target: MiddleFragment,
			Wire: func(b []byte) { b[offCID+3] ^= 0xFF }},
		{Field: "T.ID", Mode: PerFragment, Paper: errdet.VerdictEDMismatch, Target: MiddleFragment,
			Wire: func(b []byte) { b[offTID+3] ^= 0xFF }},
		{Field: "X.ID", Mode: PerFragment, Paper: errdet.VerdictEDMismatch, Target: MiddleFragment,
			Wire: func(b []byte) { b[offXID+3] ^= 0xFF }},

		// Identity fields, whole-label: the ED code is the detector
		// (paper's scenario, reproduced exactly).
		{Field: "C.ID", Mode: WholeLabel, Paper: errdet.VerdictEDMismatch,
			Label: func(c *chunk.Chunk) bool { c.C.ID ^= 0xFF; return true }},
		{Field: "T.ID", Mode: WholeLabel, Paper: errdet.VerdictEDMismatch,
			Label: func(c *chunk.Chunk) bool { c.T.ID ^= 0xFF; return true }},
		{Field: "X.ID", Mode: WholeLabel, Paper: errdet.VerdictEDMismatch,
			Label: func(c *chunk.Chunk) bool {
				if c.Type == chunk.TypeData && c.X.ID == xid1 {
					c.X.ID ^= 0xFF
					return true
				}
				return false
			}},
	}
}

// Scenario constants: one TPDU of 64 4-byte elements, external PDU 1
// covering elements 0..39 (ends inside the TPDU), external PDU 2
// covering 40..63 (continues past it).
const (
	cid  = 0xAA
	tid  = 0x51
	xid1 = 0xE1
	xid2 = 0xE2

	tpduElems = 64
	x1Elems   = 40
	elemSize  = 4
	perFrag   = 8 // elements per fragment
)

// scenario builds the TPDU fragments and ED chunk.
func scenario(seed int64) (frags []chunk.Chunk, ed chunk.Chunk, err error) {
	rng := rand.New(rand.NewSource(seed))
	p1 := make([]byte, x1Elems*elemSize)
	p2 := make([]byte, (tpduElems-x1Elems)*elemSize)
	rng.Read(p1)
	rng.Read(p2)
	c1 := chunk.Chunk{
		Type: chunk.TypeData, Size: elemSize, Len: x1Elems,
		C:       chunk.Tuple{ID: cid, SN: 9000},
		T:       chunk.Tuple{ID: tid, SN: 0},
		X:       chunk.Tuple{ID: xid1, SN: 0, ST: true},
		Payload: p1,
	}
	c2 := chunk.Chunk{
		Type: chunk.TypeData, Size: elemSize, Len: tpduElems - x1Elems,
		C:       chunk.Tuple{ID: cid, SN: 9000 + x1Elems},
		T:       chunk.Tuple{ID: tid, SN: x1Elems, ST: true},
		X:       chunk.Tuple{ID: xid2, SN: 0},
		Payload: p2,
	}
	layout := errdet.DefaultLayout()
	par, err := errdet.Encode(layout, []chunk.Chunk{c1, c2})
	if err != nil {
		return nil, chunk.Chunk{}, err
	}
	f1, err := c1.SplitToFit(chunk.HeaderSize + perFrag*elemSize)
	if err != nil {
		return nil, chunk.Chunk{}, err
	}
	f2, err := c2.SplitToFit(chunk.HeaderSize + perFrag*elemSize)
	if err != nil {
		return nil, chunk.Chunk{}, err
	}
	return append(f1, f2...), errdet.EDChunk(cid, tid, 9000, par), nil
}

// pickTarget returns the index (within frags, or -1 for the ED chunk)
// of the fragment the case targets.
func pickTarget(frags []chunk.Chunk, kind TargetKind) int {
	switch kind {
	case EDFragment:
		return -1
	case TriggerFragment:
		for i := range frags {
			if frags[i].X.ST {
				return i
			}
		}
	case FinalFragment:
		for i := range frags {
			if frags[i].T.ST {
				return i
			}
		}
	default: // MiddleFragment: no ST bits, not first
		for i := 1; i < len(frags); i++ {
			if !frags[i].T.ST && !frags[i].X.ST && !frags[i].C.ST {
				return i
			}
		}
	}
	return 0
}

// Run executes one case and classifies the outcome. The chunks travel
// one per packet; a corruption that breaks parsing drops its packet,
// exactly as a checksumming link layer would.
func Run(c Case, seed int64) (Outcome, error) {
	frags, ed, err := scenario(seed)
	if err != nil {
		return Outcome{}, err
	}
	all := append(append([]chunk.Chunk{}, frags...), ed)

	dropped := false
	switch c.Mode {
	case WholeLabel:
		for i := range all {
			c.Label(&all[i])
		}
	case PerFragment:
		idx := pickTarget(frags, c.Target)
		if idx == -1 {
			idx = len(all) - 1 // the ED chunk
		}
		// Corrupt on the wire inside the fragment's packet.
		p := packet.Packet{Chunks: []chunk.Chunk{all[idx]}}
		wire, err := p.AppendTo(nil, 0)
		if err != nil {
			return Outcome{}, err
		}
		c.Wire(wire[packet.HeaderSize:])
		dec, err := packet.Decode(wire)
		if err != nil || len(dec.Chunks) != 1 {
			// Unparseable: the packet is discarded in flight.
			all = append(all[:idx], all[idx+1:]...)
			dropped = true
		} else {
			all[idx] = dec.Chunks[0].Clone()
		}
	}

	r, err := errdet.NewReceiver(errdet.DefaultLayout())
	if err != nil {
		return Outcome{}, err
	}
	for i := range all {
		if err := r.Ingest(&all[i]); err != nil {
			// Unknown chunk type after corruption: treated as a drop.
			dropped = true
		}
	}
	verdicts := r.Finalize()

	got := classify(verdicts, r.Findings())
	return Outcome{
		Case:     c,
		Got:      got,
		Detected: got.Detected(),
		Dropped:  dropped,
		Match:    got == c.Paper,
	}, nil
}

// classify reduces verdicts and findings to the single strongest
// detection mechanism: ED code > consistency check > reassembly error.
// VerdictOK with no findings means the corruption went undetected.
func classify(verdicts map[uint32]errdet.Verdict, findings []errdet.Finding) errdet.Verdict {
	has := func(v errdet.Verdict) bool {
		for _, f := range findings {
			if f.Class == v {
				return true
			}
		}
		for _, fv := range verdicts { //lint:allow maprange existence scan; any iteration order yields the same boolean
			if fv == v {
				return true
			}
		}
		return false
	}
	switch {
	case has(errdet.VerdictEDMismatch):
		return errdet.VerdictEDMismatch
	case has(errdet.VerdictConsistency):
		return errdet.VerdictConsistency
	case has(errdet.VerdictReassembly):
		return errdet.VerdictReassembly
	}
	return errdet.VerdictOK
}

// RunAll executes the whole matrix.
func RunAll(seed int64) ([]Outcome, error) {
	var out []Outcome
	for _, c := range Cases() {
		o, err := Run(c, seed)
		if err != nil {
			return nil, fmt.Errorf("%s/%v: %w", c.Field, c.Mode, err)
		}
		out = append(out, o)
	}
	return out, nil
}

// Baseline verifies that with NO corruption the scenario verifies
// clean — the control row of the experiment.
func Baseline(seed int64) (errdet.Verdict, error) {
	frags, ed, err := scenario(seed)
	if err != nil {
		return errdet.VerdictPending, err
	}
	r, err := errdet.NewReceiver(errdet.DefaultLayout())
	if err != nil {
		return errdet.VerdictPending, err
	}
	for i := range frags {
		if err := r.Ingest(&frags[i]); err != nil {
			return errdet.VerdictPending, err
		}
	}
	if err := r.Ingest(&ed); err != nil {
		return errdet.VerdictPending, err
	}
	return classify(r.Finalize(), r.Findings()), nil
}
