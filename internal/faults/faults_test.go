package faults

import (
	"testing"

	"chunks/internal/errdet"
)

func TestBaselineClean(t *testing.T) {
	got, err := Baseline(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != errdet.VerdictOK {
		t.Fatalf("uncorrupted scenario classified %v", got)
	}
}

// TestTable1CorruptionMatrix (experiment T1) runs every Table 1 row
// and asserts two things:
//
//  1. EVERY corruption is detected — the paper's headline claim that
//     end-to-end error detection works despite fragmentation rewriting
//     chunk headers.
//  2. The detecting mechanism matches what we expect of this
//     implementation; rows where the paper's attribution differs
//     (identity fields corrupted per-fragment, where demultiplexing /
//     agreement checks fire before the code comparison can) are listed
//     explicitly and also exercised in WholeLabel mode, where the ED
//     code IS the detector, matching the paper.
func TestTable1CorruptionMatrix(t *testing.T) {
	outcomes, err := RunAll(7)
	if err != nil {
		t.Fatal(err)
	}

	// Mechanism this implementation is expected to fire, per row.
	want := map[string]errdet.Verdict{
		"TYPE/per-fragment": errdet.VerdictReassembly,
		"SIZE/per-fragment": errdet.VerdictReassembly,
		"LEN/per-fragment":  errdet.VerdictReassembly,
		// Paper: reassembly error. Here the C.SN-T.SN consistency
		// check sees a lone T.SN corruption first (the paper's own
		// check, applied eagerly); reassembly would also fail.
		"T.SN/per-fragment": errdet.VerdictConsistency,
		"T.ST/per-fragment": errdet.VerdictReassembly,
		// Paper: reassembly error. A spurious T.ST truncates the TPDU,
		// which "completes" early and then fails the parity compare;
		// beyond-end reassembly errors fire too, and classification
		// reports the strongest mechanism (the ED code).
		"T.ST+/per-fragment":  errdet.VerdictEDMismatch,
		"C.SN/per-fragment":   errdet.VerdictConsistency,
		"X.SN/per-fragment":   errdet.VerdictConsistency,
		"C.ST/per-fragment":   errdet.VerdictEDMismatch,
		"X.ST/per-fragment":   errdet.VerdictEDMismatch,
		"X.ST-/per-fragment":  errdet.VerdictEDMismatch,
		"Data/per-fragment":   errdet.VerdictEDMismatch,
		"EDcode/per-fragment": errdet.VerdictEDMismatch,
		"C.ID/per-fragment":   errdet.VerdictConsistency, // paper: ED (see WholeLabel)
		"T.ID/per-fragment":   errdet.VerdictReassembly,  // paper: ED (see WholeLabel)
		"X.ID/per-fragment":   errdet.VerdictReassembly,  // paper: ED (see WholeLabel)
		"C.ID/whole-label":    errdet.VerdictEDMismatch,
		"T.ID/whole-label":    errdet.VerdictEDMismatch,
		"X.ID/whole-label":    errdet.VerdictEDMismatch,
	}

	if len(outcomes) != len(want) {
		t.Fatalf("matrix has %d rows, want %d", len(outcomes), len(want))
	}
	for _, o := range outcomes {
		key := o.Field + "/" + o.Mode.String()
		if !o.Detected {
			t.Errorf("%s: corruption went UNDETECTED", key)
			continue
		}
		if w, ok := want[key]; !ok {
			t.Errorf("unexpected row %s", key)
		} else if o.Got != w {
			t.Errorf("%s: detected by %v, expected %v", key, o.Got, w)
		}
	}

	// Every WholeLabel identity row must match the paper exactly.
	for _, o := range outcomes {
		if o.Mode == WholeLabel && !o.Match {
			t.Errorf("%s/whole-label: got %v, paper says %v", o.Field, o.Got, o.Paper)
		}
	}
}

// TestMatrixSeedStability: detection must not depend on payload
// contents.
func TestMatrixSeedStability(t *testing.T) {
	for _, seed := range []int64{2, 99, 12345} {
		outcomes, err := RunAll(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outcomes {
			if !o.Detected {
				t.Errorf("seed %d: %s/%v undetected", seed, o.Field, o.Mode)
			}
		}
	}
}

func TestPickTargets(t *testing.T) {
	frags, _, err := scenario(1)
	if err != nil {
		t.Fatal(err)
	}
	if i := pickTarget(frags, TriggerFragment); !frags[i].X.ST {
		t.Fatal("trigger target must carry X.ST")
	}
	if i := pickTarget(frags, FinalFragment); !frags[i].T.ST {
		t.Fatal("final target must carry T.ST")
	}
	i := pickTarget(frags, MiddleFragment)
	if frags[i].X.ST || frags[i].T.ST || i == 0 {
		t.Fatal("middle target must be an interior no-ST fragment")
	}
	if pickTarget(frags, EDFragment) != -1 {
		t.Fatal("ED target is the sentinel -1")
	}
}

func TestModeString(t *testing.T) {
	if PerFragment.String() != "per-fragment" || WholeLabel.String() != "whole-label" {
		t.Fatal("mode strings")
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Case: Case{Field: "Data", Mode: PerFragment, Paper: errdet.VerdictEDMismatch},
		Got: errdet.VerdictEDMismatch, Detected: true}
	if s := o.String(); len(s) == 0 {
		t.Fatal("empty outcome string")
	}
}

func BenchmarkTable1Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunAll(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
