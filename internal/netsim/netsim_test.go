package netsim

import (
	"bytes"
	"testing"
)

func packets(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = bytes.Repeat([]byte{byte(i)}, size)
	}
	return out
}

func TestSendAll(t *testing.T) {
	sends := SendAll(packets(3, 4), 100, 10)
	if sends[0].Tick != 100 || sends[2].Tick != 120 {
		t.Fatalf("ticks: %v", sends)
	}
	if sends[1].Seq != 1 {
		t.Fatal("Seq must track send order")
	}
}

func TestPerfectLink(t *testing.T) {
	l := NewLink(LinkConfig{Seed: 1, BaseDelay: 5})
	out := l.Transit(SendAll(packets(10, 8), 0, 1))
	if len(out) != 10 {
		t.Fatalf("delivered %d", len(out))
	}
	for i, d := range out {
		if d.Seq != i {
			t.Fatal("perfect link must preserve order")
		}
		if d.Tick != int64(i)+5 {
			t.Fatalf("delivery %d at tick %d", i, d.Tick)
		}
	}
	if Disorder(out) != 0 {
		t.Fatal("no disorder expected")
	}
}

func TestLoss(t *testing.T) {
	l := NewLink(LinkConfig{Seed: 2, LossProb: 0.5})
	out := l.Transit(SendAll(packets(1000, 4), 0, 1))
	if len(out) < 350 || len(out) > 650 {
		t.Fatalf("loss 0.5 delivered %d of 1000", len(out))
	}
}

func TestDuplication(t *testing.T) {
	l := NewLink(LinkConfig{Seed: 3, DupProb: 1.0})
	out := l.Transit(SendAll(packets(10, 4), 0, 100))
	if len(out) != 20 {
		t.Fatalf("dup 1.0 delivered %d of 10", len(out))
	}
}

func TestCorruption(t *testing.T) {
	l := NewLink(LinkConfig{Seed: 4, CorruptProb: 1.0})
	in := SendAll(packets(10, 16), 0, 1)
	out := l.Transit(in)
	corrupted := 0
	for i, d := range out {
		if !bytes.Equal(d.Data, in[i].Data) {
			corrupted++
		}
	}
	if corrupted != 10 {
		t.Fatalf("corrupted %d of 10", corrupted)
	}
	// Input buffers must not be mutated.
	if in[0].Data[0] != 0 {
		t.Fatal("corruption must copy, not mutate the sender's buffer")
	}
}

// TestMultipathSkew reproduces the paper's 8-parallel-ATM-connections
// scenario: skew between paths disorders the delivery sequence.
func TestMultipathSkew(t *testing.T) {
	l := NewLink(LinkConfig{Seed: 5, Paths: 8, BaseDelay: 100, SkewPerPath: 40})
	out := l.Transit(SendAll(packets(400, 4), 0, 1))
	if len(out) != 400 {
		t.Fatal("skew must not lose packets")
	}
	if Disorder(out) == 0 {
		t.Fatal("multipath skew must disorder deliveries")
	}
	// All packets still arrive.
	seen := make(map[int]bool)
	for _, d := range out {
		seen[d.Seq] = true
	}
	if len(seen) != 400 {
		t.Fatal("every packet must arrive exactly once")
	}
}

// TestRouteChange: a route change to a faster path lets later packets
// overtake earlier ones — the second disordering cause of Section 1.
func TestRouteChange(t *testing.T) {
	l := NewLink(LinkConfig{
		Seed: 6, BaseDelay: 1000,
		RouteChangeTick: 50, RouteChangeDelay: 10,
	})
	out := l.Transit(SendAll(packets(100, 4), 0, 1))
	if Disorder(out) == 0 {
		t.Fatal("route change must cause overtaking")
	}
	// The first new-route packet (seq 50) must arrive before the last
	// old-route packet (seq 49).
	pos := map[int]int{}
	for i, d := range out {
		pos[d.Seq] = i
	}
	if pos[50] > pos[49] {
		t.Fatal("new-route packet should overtake old-route packet")
	}
}

func TestRouterTransform(t *testing.T) {
	// A router that splits every packet in half.
	r := &Router{
		Transform: func(b []byte) [][]byte {
			mid := len(b) / 2
			return [][]byte{b[:mid], b[mid:]}
		},
		ProcDelay: 3,
	}
	out := r.Transit(SendAll(packets(5, 8), 0, 10))
	if len(out) != 10 {
		t.Fatalf("router emitted %d packets", len(out))
	}
	if out[0].Tick != 3 {
		t.Fatalf("processing delay not applied: tick %d", out[0].Tick)
	}
}

func TestRouterDrop(t *testing.T) {
	r := &Router{Transform: func(b []byte) [][]byte { return nil }}
	if out := r.Transit(SendAll(packets(5, 8), 0, 1)); len(out) != 0 {
		t.Fatal("drop-all router must emit nothing")
	}
}

func TestRunChain(t *testing.T) {
	l1 := NewLink(LinkConfig{Seed: 7, BaseDelay: 10})
	r := &Router{Transform: func(b []byte) [][]byte { return [][]byte{b} }, ProcDelay: 5}
	l2 := NewLink(LinkConfig{Seed: 8, BaseDelay: 20})
	out := Run(SendAll(packets(4, 4), 0, 1), l1, r, l2)
	if len(out) != 4 {
		t.Fatalf("chain delivered %d", len(out))
	}
	if out[0].Tick != 35 {
		t.Fatalf("cumulative delay = %d, want 35", out[0].Tick)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := LinkConfig{Seed: 42, LossProb: 0.2, DupProb: 0.1, Paths: 4, SkewPerPath: 7, JitterMax: 3}
	a := NewLink(cfg).Transit(SendAll(packets(100, 8), 0, 1))
	b := NewLink(cfg).Transit(SendAll(packets(100, 8), 0, 1))
	if len(a) != len(b) {
		t.Fatal("same seed must give same deliveries")
	}
	for i := range a {
		if a[i].Tick != b[i].Tick || a[i].Seq != b[i].Seq || !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatal("same seed must give identical traces")
		}
	}
}

func TestDisorderMeasure(t *testing.T) {
	ds := []Delivery{{Seq: 0}, {Seq: 2}, {Seq: 1}, {Seq: 3}}
	if got := Disorder(ds); got != 1.0/3.0 {
		t.Fatalf("Disorder = %v", got)
	}
	if Disorder(nil) != 0 || Disorder(ds[:1]) != 0 {
		t.Fatal("degenerate sequences have zero disorder")
	}
}
