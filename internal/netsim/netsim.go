// Package netsim is a deterministic network simulator standing in for
// the paper's AURORA testbed substrate (see DESIGN.md, substitutions).
// It reproduces exactly the disordering phenomena Section 1 enumerates:
//
//   - message loss (forcing retransmission-induced disorder),
//   - packet disordering from multipath routing ("obtaining gigabit
//     rates on a SONET OC-3 ATM network requires using eight 155 Mbps
//     ATM connections in parallel. Skew among the routes can cause
//     packets to leave the network in a different order than that in
//     which they entered"),
//   - route changes ("the first packet sent along the new route may
//     arrive before the last packet sent along the old route"),
//   - duplication and corruption.
//
// The simulator is offline and deterministic: a hop transforms a
// time-stamped packet sequence into another, and a topology is a
// chain of hops. No goroutines, no wall-clock time — experiments are
// exactly reproducible from a seed.
package netsim

import (
	"math/rand"
	"sort"
)

// A Delivery is one packet at a point in simulated time (ticks).
type Delivery struct {
	Tick int64
	Data []byte
	// Seq is the original send index, preserved so experiments can
	// measure disorder.
	Seq int
}

// A Hop transforms a packet sequence (sorted by Tick) into the
// sequence observed at its far end (sorted by Tick).
type Hop interface {
	Transit(in []Delivery) []Delivery
}

// Run pushes sends through a chain of hops.
func Run(sends []Delivery, hops ...Hop) []Delivery {
	cur := sends
	for _, h := range hops {
		cur = h.Transit(cur)
	}
	return cur
}

// SendAll stamps packets with consecutive ticks spaced gap apart,
// starting at start.
func SendAll(packets [][]byte, start, gap int64) []Delivery {
	out := make([]Delivery, len(packets))
	for i, p := range packets {
		out[i] = Delivery{Tick: start + int64(i)*gap, Data: p, Seq: i}
	}
	return out
}

// sortDeliveries orders by tick, breaking ties by send sequence so
// results are stable and deterministic.
func sortDeliveries(ds []Delivery) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Tick != ds[j].Tick {
			return ds[i].Tick < ds[j].Tick
		}
		return ds[i].Seq < ds[j].Seq
	})
}

// LinkConfig parameterises one Link hop.
type LinkConfig struct {
	Seed int64
	// LossProb is the per-packet drop probability.
	LossProb float64
	// DupProb is the per-packet duplication probability.
	DupProb float64
	// CorruptProb is the per-packet single-byte-flip probability.
	CorruptProb float64
	// Paths is the number of parallel routes; packets are sprayed
	// round-robin. 0 or 1 means a single path.
	Paths int
	// BaseDelay is the path-0 latency in ticks.
	BaseDelay int64
	// SkewPerPath adds (path index)*SkewPerPath ticks to each further
	// path — the multipath skew that disorders packets.
	SkewPerPath int64
	// JitterMax adds uniform [0, JitterMax] per-packet jitter.
	JitterMax int64
	// RouteChangeTick, when > 0, switches traffic sent at or after
	// this tick onto a route with RouteChangeDelay base latency; a
	// drop in latency makes new-route packets overtake old-route ones.
	RouteChangeTick  int64
	RouteChangeDelay int64
}

// A Link delivers packets with configurable loss, duplication,
// corruption, multipath skew and route changes.
type Link struct {
	cfg LinkConfig
}

// NewLink returns a Link with the given behaviour.
func NewLink(cfg LinkConfig) *Link { return &Link{cfg: cfg} }

// Transit implements Hop.
func (l *Link) Transit(in []Delivery) []Delivery {
	rng := rand.New(rand.NewSource(l.cfg.Seed))
	paths := l.cfg.Paths
	if paths < 1 {
		paths = 1
	}
	var out []Delivery
	for i, d := range in {
		if l.cfg.LossProb > 0 && rng.Float64() < l.cfg.LossProb {
			continue
		}
		base := l.cfg.BaseDelay
		if l.cfg.RouteChangeTick > 0 && d.Tick >= l.cfg.RouteChangeTick {
			base = l.cfg.RouteChangeDelay
		}
		delay := base + int64(i%paths)*l.cfg.SkewPerPath
		if l.cfg.JitterMax > 0 {
			delay += rng.Int63n(l.cfg.JitterMax + 1)
		}
		data := d.Data
		if l.cfg.CorruptProb > 0 && rng.Float64() < l.cfg.CorruptProb && len(data) > 0 {
			data = append([]byte(nil), data...)
			data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
		}
		out = append(out, Delivery{Tick: d.Tick + delay, Data: data, Seq: d.Seq})
		if l.cfg.DupProb > 0 && rng.Float64() < l.cfg.DupProb {
			dup := delay + 1 + rng.Int63n(10)
			out = append(out, Delivery{Tick: d.Tick + dup, Data: data, Seq: d.Seq})
		}
	}
	sortDeliveries(out)
	return out
}

// A Router applies a packet transformation at a network boundary —
// the paper's gateway that empties chunks from one envelope size into
// another (or an IP router fragmenting datagrams). Transform maps one
// incoming packet to zero or more outgoing packets; ProcDelay models
// per-packet processing ticks.
type Router struct {
	Transform func(data []byte) [][]byte
	ProcDelay int64
}

// Transit implements Hop.
func (r *Router) Transit(in []Delivery) []Delivery {
	var out []Delivery
	for _, d := range in {
		for _, p := range r.Transform(d.Data) {
			out = append(out, Delivery{Tick: d.Tick + r.ProcDelay, Data: p, Seq: d.Seq})
		}
	}
	sortDeliveries(out)
	return out
}

// Disorder measures how disordered a delivery sequence is: the
// fraction of adjacent pairs whose original send order is inverted.
func Disorder(ds []Delivery) float64 {
	if len(ds) < 2 {
		return 0
	}
	inv := 0
	for i := 1; i < len(ds); i++ {
		if ds[i].Seq < ds[i-1].Seq {
			inv++
		}
	}
	return float64(inv) / float64(len(ds)-1)
}
