// Package core is the top of the chunks library: a concurrency-safe,
// UDP-backed connection API over the chunk transport protocol. It is
// what a downstream application imports; the substrate packages
// (chunk, packet, errdet, transport, ...) implement the paper's
// mechanisms and are composed here.
//
// A connection is uni-directional (Section 2: "we assume that data
// streams are uni-directional and that bi-directional streams are
// constructed with two uni-directional streams"): a Conn writes, a
// Server receives, and the reverse UDP path carries only ACK/NACK
// control chunks.
//
//	srv, _ := core.Serve("127.0.0.1:0", core.Config{})
//	conn, _ := core.Dial(srv.Addr().String(), core.Config{CID: 7})
//	conn.Write(data)
//	conn.Close()          // flush + close signal
//	conn.WaitDrained(5 * time.Second)
//	srv.Stream()          // the placed application bytes
package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"chunks/internal/errdet"
	"chunks/internal/transport"
)

// Config carries the tunables shared by Dial and Serve.
type Config struct {
	// CID is the connection ID (Dial side).
	CID uint32
	// MTU bounds datagrams; 0 means 1400.
	MTU int
	// ElemSize is the atomic element size; 0 means 4.
	ElemSize uint16
	// TPDUElems is the TPDU size in elements; 0 means 256.
	TPDUElems int
	// Adapt enables adaptive TPDU sizing under loss.
	Adapt bool
	// Window, when > 0, bounds the TPDUs in flight: Write blocks
	// while more than Window TPDUs await acknowledgment (simple flow
	// control; the paper leaves flow control to the error control
	// protocol).
	Window int
	// Repair enables receive-side single-symbol error correction.
	Repair bool
	// PollEvery is the retransmission/NACK timer period; 0 means
	// 20ms.
	PollEvery time.Duration
	// OnFrame and OnTPDU are receive-side delivery callbacks.
	OnFrame func(xid uint32, data []byte)
	// OnTPDU fires once per TPDU with its end-to-end verdict.
	OnTPDU func(tid uint32, v errdet.Verdict)
}

func (c *Config) fill() {
	if c.MTU == 0 {
		c.MTU = 1400
	}
	if c.PollEvery == 0 {
		c.PollEvery = 20 * time.Millisecond
	}
}

// ErrTimeout reports that WaitDrained/WaitClosed gave up.
var ErrTimeout = errors.New("core: wait timed out")

// ErrShutdown reports use of a connection after Shutdown.
var ErrShutdown = errors.New("core: connection shut down")

// A Conn is the sending end of a chunk connection over UDP.
type Conn struct {
	mu     sync.Mutex
	s      *transport.Sender
	sock   *net.UDPConn
	window int
	done   chan struct{}
	wg     sync.WaitGroup
}

// Dial opens a sending connection to a Server's UDP address.
func Dial(addr string, cfg Config) (*Conn, error) {
	cfg.fill()
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	sock, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	// Large socket buffers soften synchronous write bursts; residual
	// loss is recovered by NACK/timeout retransmission.
	_ = sock.SetWriteBuffer(4 << 20)
	_ = sock.SetReadBuffer(4 << 20)
	c := &Conn{sock: sock, window: cfg.Window, done: make(chan struct{})}
	c.s = transport.NewSender(transport.SenderConfig{
		CID: cfg.CID, MTU: cfg.MTU, ElemSize: cfg.ElemSize,
		TPDUElems: cfg.TPDUElems, Adapt: cfg.Adapt,
	}, func(d []byte) {
		// Best-effort datagram send; loss is the protocol's problem.
		_, _ = sock.Write(d)
	})

	// Control read loop: ACKs and NACKs from the receiver.
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		buf := make([]byte, 65536)
		for {
			_ = sock.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			n, err := sock.Read(buf)
			if err != nil {
				select {
				case <-c.done:
					return
				default:
					continue
				}
			}
			c.handleControl(buf[:n])
		}
	}()
	// Retransmission timer.
	go func() {
		defer c.wg.Done()
		tick := time.NewTicker(cfg.PollEvery)
		defer tick.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-tick.C:
				c.mu.Lock()
				_ = c.s.Poll()
				c.mu.Unlock()
			}
		}
	}()
	return c, nil
}

func (c *Conn) handleControl(datagram []byte) {
	chs, err := decodePacketChunks(datagram)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range chs {
		_ = c.s.HandleControl(&chs[i])
	}
}

// Write sends element-aligned application bytes, blocking while the
// in-flight window (Config.Window) is full.
func (c *Conn) Write(data []byte) error {
	for c.window > 0 {
		c.mu.Lock()
		ok := c.s.Unacked() <= c.window
		c.mu.Unlock()
		if ok {
			break
		}
		select {
		case <-c.done:
			return ErrShutdown
		case <-time.After(time.Millisecond):
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Write(data)
}

// EndFrame closes the current Application Layer Frame.
func (c *Conn) EndFrame() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.EndFrame()
}

// Flush transmits buffered data as a short TPDU.
func (c *Conn) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Flush()
}

// Close flushes and sends the close signal. The socket stays open for
// retransmissions until WaitDrained or Shutdown.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Close()
}

// Unacked returns the number of TPDUs not yet verified end-to-end.
func (c *Conn) Unacked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Unacked()
}

func (c *Conn) drained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Drained()
}

// Stats returns (TPDUs sent, retransmissions).
func (c *Conn) Stats() (sent, retransmits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.TPDUsSent, c.s.Retransmits
}

// WaitDrained blocks until every TPDU is acknowledged (and the close
// signal, if sent, is acknowledged) or the timeout elapses, then shuts
// the connection down.
func (c *Conn) WaitDrained(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.drained() {
			c.Shutdown()
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Shutdown()
	return fmt.Errorf("%w: %d TPDUs unacknowledged", ErrTimeout, c.Unacked())
}

// Shutdown stops the background goroutines and closes the socket.
func (c *Conn) Shutdown() {
	select {
	case <-c.done:
		return
	default:
		close(c.done)
	}
	c.wg.Wait()
	_ = c.sock.Close()
}
