// Package core is the top of the chunks library: a concurrency-safe,
// UDP-backed connection API over the chunk transport protocol. It is
// what a downstream application imports; the substrate packages
// (chunk, packet, errdet, transport, ...) implement the paper's
// mechanisms and are composed here.
//
// A connection is uni-directional (Section 2: "we assume that data
// streams are uni-directional and that bi-directional streams are
// constructed with two uni-directional streams"): a Conn writes, a
// Server receives, and the reverse UDP path carries only ACK/NACK
// control chunks.
//
//	srv, _ := core.Serve("127.0.0.1:0", core.Config{})
//	conn, _ := core.Dial(srv.Addr().String(), core.Config{CID: 7})
//	conn.Write(data)
//	conn.Close()          // flush + close signal
//	conn.WaitDrained(5 * time.Second)
//	srv.Stream()          // the placed application bytes
//
// The error control is adaptive (Karn/Jacobson): retransmission
// timeouts follow a smoothed RTT + variance estimate seeded from ACK
// timing, back off exponentially per TPDU while the peer is silent,
// and — when Config.MaxRetries is set — give up with ErrPeerDead
// instead of spinning forever.
package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"chunks/internal/batch"
	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/packet"
	"chunks/internal/telemetry"
	"chunks/internal/transport"
	"chunks/internal/vr"
)

// Config carries the tunables shared by Dial and Serve.
type Config struct {
	// CID is the connection ID (Dial side).
	CID uint32
	// MTU bounds datagrams; 0 means 1400.
	MTU int
	// ElemSize is the atomic element size; 0 means 4.
	ElemSize uint16
	// TPDUElems is the TPDU size in elements; 0 means 256.
	TPDUElems int
	// Adapt enables adaptive TPDU sizing under loss.
	Adapt bool
	// Window, when > 0, bounds the TPDUs in flight: Write blocks
	// while more than Window TPDUs await acknowledgment (simple flow
	// control; the paper leaves flow control to the error control
	// protocol).
	Window int
	// Repair enables receive-side single-symbol error correction.
	Repair bool
	// PollEvery is the retransmission/NACK timer period; 0 means
	// 20ms.
	PollEvery time.Duration

	// MaxRetries bounds successive timer-driven retransmissions of a
	// single TPDU (and of the close signal): exceeded, the peer is
	// declared dead and ErrPeerDead surfaces through Write and
	// WaitDrained. 0 means unlimited (retry forever).
	MaxRetries int
	// InitialRTO is the retransmission timeout before the first RTT
	// sample; 0 means 3*PollEvery (matching the legacy
	// RetransmitAfter=3 poll rounds).
	InitialRTO time.Duration
	// MinRTO/MaxRTO clamp the adaptive timeout; 0 means PollEvery and
	// 2s respectively.
	MinRTO time.Duration
	MaxRTO time.Duration
	// OnPeerDead, when set on the Dial side, fires once when the
	// sender gives up on the peer (MaxRetries exhausted).
	OnPeerDead func(err error)

	// IdleTimeout, when > 0, expires server-side connections that
	// receive no datagrams for that long; expired connections are
	// forgotten (their memory freed) and OnConnExpired fires.
	IdleTimeout time.Duration
	// OnConnExpired, when set on the Serve side, fires once per
	// expired connection with its connection ID and peer address.
	OnConnExpired func(cid uint32, peer net.Addr)
	// ReapAfter, when > 0, drops receiver-side state of an incomplete
	// TPDU that makes no progress for ReapAfter poll rounds, bounding
	// the memory a lossy or dead peer can pin; 0 means 250 rounds
	// (use a negative value to disable reaping entirely).
	ReapAfter int
	// OverlapPolicy selects the receive-side conflicting-overlap
	// policy (see transport.ReceiverConfig.OverlapPolicy). Under
	// vr.RejectConnection a conflicting overlap tears the server-side
	// connection down; OnConnRejected fires with its identity.
	OverlapPolicy vr.Policy
	// OnConnRejected, when set on the Serve side, fires once per
	// connection torn down by the vr.RejectConnection overlap policy.
	OnConnRejected func(cid uint32, peer net.Addr)

	// OnFrame and OnTPDU are receive-side delivery callbacks.
	OnFrame func(xid uint32, data []byte)
	// OnTPDU fires once per TPDU with its end-to-end verdict.
	OnTPDU func(tid uint32, v errdet.Verdict)

	// Telemetry, when set, receives the connection's runtime metrics
	// and chunk-lifecycle events: a Dial side registers the scope
	// "conn.<CID>", a Serve side registers "server" plus one
	// "recv.shard<N>" aggregate scope per shard (or, with
	// PerConnTelemetry, one "recv.<CID>@<addr>" scope per peer
	// connection). nil disables instrumentation at no cost.
	Telemetry *telemetry.Registry
	// PerConnTelemetry opts the Serve side into one telemetry scope per
	// peer connection instead of the per-shard aggregates. Scope count
	// then grows with the connection count — useful for debugging, a
	// memory leak at hundreds of thousands of connections (see C1).
	PerConnTelemetry bool

	// Shards is the Serve-side shard count for the connection engine
	// (internal/shard); 0 means runtime.GOMAXPROCS(0). Any value yields
	// identical protocol behavior — shards change only lock granularity
	// and timer-wheel partitioning.
	Shards int
	// MaxConns, when > 0, bounds live server-side connections:
	// establishment past the cap is refused (datagram dropped,
	// "conns_refused" counted, OnConnRefused fired) instead of
	// allocating receiver state for arbitrarily many spoofed
	// (C.ID, source) identities.
	MaxConns int
	// OnConnRefused, when set on the Serve side, fires once per refused
	// establishment with the identity that was turned away.
	OnConnRefused func(cid uint32, peer net.Addr)
	// Readers is the number of concurrent UDP read goroutines on the
	// Serve side; 0 means 1. Useful with Shards > 1: independent
	// readers keep multiple shards busy concurrently.
	Readers int
	// RecvBatch is the Serve-side receive batch width: how many
	// datagrams one reader wakeup may ingest (recvmmsg on Linux, a
	// deadline-bounded drain elsewhere; see internal/batch). 0 means
	// 32. 1 selects the legacy scalar path — one ReadFromUDP per
	// datagram — kept as the honest baseline for experiment P10. Any
	// value yields identical protocol behavior; batching changes only
	// how many syscalls the kernel boundary costs.
	RecvBatch int
	// ControlOut, when set on the Serve side, replaces the UDP reverse
	// path: outgoing control datagrams (ACK/NACK) are handed to the
	// callback instead of the socket. In-process harnesses (experiment
	// C1) pair it with Server.Inject to drive the engine without
	// socket I/O.
	ControlOut func(datagram []byte, peer *net.UDPAddr)
}

func (c *Config) fill() {
	if c.MTU == 0 {
		c.MTU = 1400
	}
	if c.PollEvery == 0 {
		c.PollEvery = 20 * time.Millisecond
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = 3 * c.PollEvery
	}
	if c.MinRTO == 0 {
		c.MinRTO = c.PollEvery
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 2 * time.Second
	}
	if c.ReapAfter == 0 {
		c.ReapAfter = 250
	} else if c.ReapAfter < 0 {
		c.ReapAfter = 0
	}
	if c.RecvBatch == 0 {
		c.RecvBatch = 32
	} else if c.RecvBatch < 1 {
		c.RecvBatch = 1
	}
}

// ErrTimeout reports that WaitDrained/WaitClosed gave up.
var ErrTimeout = errors.New("core: wait timed out")

// ErrShutdown reports use of a connection after Shutdown.
var ErrShutdown = errors.New("core: connection shut down")

// ErrPeerDead reports that the peer stopped acknowledging and
// MaxRetries retransmissions were exhausted.
var ErrPeerDead = transport.ErrPeerDead

// A Conn is the sending end of a chunk connection over UDP.
type Conn struct {
	mu      sync.Mutex
	cond    *sync.Cond        // signalled on ACKs, shutdown, peer death
	s       *transport.Sender // guarded by mu
	sock    *net.UDPConn
	bw      *batch.Writer
	pending [][]byte // guarded by mu; datagrams emitted but not yet flushed
	window  int
	epoch   time.Time // origin of the sender's timeline
	shut    bool      // guarded by mu
	dead    error     // guarded by mu; ErrPeerDead once the sender gives up
	done    chan struct{}
	wg      sync.WaitGroup

	onPeerDead func(error)
	deadOnce   sync.Once

	telStalls  *telemetry.Counter // Writes that blocked on the window
	telUnacked *telemetry.Gauge   // TPDUs in flight (peak = max occupancy)
}

// Dial opens a sending connection to a Server's UDP address.
func Dial(addr string, cfg Config) (*Conn, error) {
	cfg.fill()
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	sock, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	// Large socket buffers soften synchronous write bursts; residual
	// loss is recovered by NACK/timeout retransmission.
	_ = sock.SetWriteBuffer(4 << 20)
	_ = sock.SetReadBuffer(4 << 20)
	sink := cfg.Telemetry.Sink(fmt.Sprintf("conn.%d", cfg.CID))
	c := &Conn{
		sock: sock, window: cfg.Window, done: make(chan struct{}),
		epoch: time.Now(), onPeerDead: cfg.OnPeerDead, //lint:allow detrand connection epoch: the one sanctioned wall-clock anchor; all RTT math is relative to it
		telStalls:  sink.Counter("window_stalls"),
		telUnacked: sink.Gauge("tpdus_unacked"),
	}
	c.cond = sync.NewCond(&c.mu)
	c.bw = batch.NewWriter(sock, cfg.RecvBatch)
	c.s = transport.NewSender(transport.SenderConfig{
		CID: cfg.CID, MTU: cfg.MTU, ElemSize: cfg.ElemSize,
		TPDUElems: cfg.TPDUElems, Adapt: cfg.Adapt,
		InitialRTO: cfg.InitialRTO, MinRTO: cfg.MinRTO,
		MaxRTO: cfg.MaxRTO, MaxRetries: cfg.MaxRetries,
		Tel: sink,
	}, func(d []byte) {
		// Defer the actual send: one sender operation may emit a burst
		// of datagrams (a whole TPDU, a retransmission round), and the
		// flush pushes them down in one sendmmsg where available.
		c.pending = append(c.pending, d) //lint:allow locked sender emits only inside c.s operations, all of which run under c.mu
	})

	// Control read loop: ACKs and NACKs from the receiver.
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		buf := make([]byte, 65536)
		for {
			_ = sock.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //lint:allow detrand socket read deadline: I/O pacing, not protocol state
			n, err := sock.Read(buf)
			if err != nil {
				select {
				case <-c.done:
					return
				default:
					continue
				}
			}
			c.handleControl(buf[:n])
		}
	}()
	// Retransmission timer: adaptive RTO with exponential backoff,
	// checked at PollEvery granularity.
	go func() {
		defer c.wg.Done()
		tick := time.NewTicker(cfg.PollEvery)
		defer tick.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-tick.C:
				c.mu.Lock()
				err := c.s.PollAt(time.Since(c.epoch)) //lint:allow detrand real-socket RTT measurement; tests drive PollAt with virtual time
				c.flushPending()
				if errors.Is(err, transport.ErrPeerDead) && c.dead == nil {
					c.dead = ErrPeerDead
					c.cond.Broadcast()
				}
				deadErr := c.dead
				c.mu.Unlock()
				if deadErr != nil {
					c.firePeerDead(deadErr)
				}
			}
		}
	}()
	return c, nil
}

// flushPending transmits every datagram queued by the sender's out
// callback — one sendmmsg on Linux — and recycles the buffers into the
// sender's pool. Called with c.mu held, after each sender operation.
//
//lint:hot
func (c *Conn) flushPending() {
	if len(c.pending) == 0 {
		return
	}
	// Best-effort datagram send; loss is the protocol's problem.
	_ = c.bw.Write(c.pending)
	for i := range c.pending {
		c.s.Recycle(c.pending[i])
		c.pending[i] = nil
	}
	c.pending = c.pending[:0]
}

func (c *Conn) firePeerDead(err error) {
	c.deadOnce.Do(func() {
		if c.onPeerDead != nil {
			c.onPeerDead(err)
		}
	})
}

func (c *Conn) handleControl(datagram []byte) {
	chs, err := decodePacketChunks(datagram)
	if err != nil {
		return
	}
	now := time.Since(c.epoch) //lint:allow detrand real-socket RTT measurement; tests drive HandleControlAt with virtual time
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.flushPending() // NACKs may have queued retransmissions
	for i := range chs {
		_ = c.s.HandleControlAt(&chs[i], now)
	}
	c.telUnacked.Set(int64(c.s.Unacked()))
	// ACKs may have shrunk the in-flight window: wake blocked writers.
	c.cond.Broadcast()
}

// Write sends element-aligned application bytes, blocking while the
// in-flight window (Config.Window) is full. A blocked Write returns
// promptly with ErrShutdown or ErrPeerDead when the connection is shut
// down or the peer is declared dead.
func (c *Conn) Write(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for stalled := false; c.window > 0 && c.s.Unacked() > c.window && !c.shut && c.dead == nil; {
		if !stalled {
			stalled = true
			c.telStalls.Inc()
		}
		c.cond.Wait()
	}
	// Peer death is the root cause when both apply (WaitDrained shuts
	// the connection down after declaring it dead).
	if c.dead != nil {
		return c.dead
	}
	if c.shut {
		return ErrShutdown
	}
	err := c.s.Write(data)
	c.flushPending()
	return err
}

// EndFrame closes the current Application Layer Frame.
func (c *Conn) EndFrame() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.EndFrame()
	c.flushPending()
}

// Flush transmits buffered data as a short TPDU.
func (c *Conn) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.s.Flush()
	c.flushPending()
	return err
}

// Close flushes and sends the close signal. The socket stays open for
// retransmissions until WaitDrained or Shutdown.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.s.Close()
	c.flushPending()
	return err
}

// LocalAddr returns the connection's local UDP address — the source
// address the server keys this connection by.
func (c *Conn) LocalAddr() net.Addr { return c.sock.LocalAddr() }

// Unacked returns the number of TPDUs not yet verified end-to-end.
func (c *Conn) Unacked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Unacked()
}

func (c *Conn) drained() (drained bool, shut bool, dead error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Drained(), c.shut, c.dead
}

// Stats returns (TPDUs sent, retransmissions).
func (c *Conn) Stats() (sent, retransmits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.TPDUsSent, c.s.Retransmits
}

// SRTT returns the sender's smoothed round-trip estimate (0 before
// the first sample).
func (c *Conn) SRTT() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.SRTT()
}

// RetransmitTimeline returns a copy of the timer-driven retransmission
// log (TPDU, time offset, expired timeout), for backoff assertions and
// diagnostics.
func (c *Conn) RetransmitTimeline() []transport.RetransmitEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]transport.RetransmitEvent(nil), c.s.RetransmitLog...)
}

// WaitDrained blocks until every TPDU is acknowledged (and the close
// signal, if sent, is acknowledged) or the timeout elapses, then shuts
// the connection down. If the peer was declared dead (MaxRetries), it
// returns ErrPeerDead immediately; on an already shut-down connection
// that never drained it returns ErrShutdown without waiting.
func (c *Conn) WaitDrained(timeout time.Duration) error {
	deadline := time.Now().Add(timeout) //lint:allow detrand test/CLI convenience wait; bounds wall time, not protocol behavior
	for time.Now().Before(deadline) {   //lint:allow detrand test/CLI convenience wait; bounds wall time, not protocol behavior
		ok, shut, dead := c.drained()
		if dead != nil {
			c.Shutdown()
			return dead
		}
		if ok {
			c.Shutdown()
			return nil
		}
		if shut {
			return ErrShutdown
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Shutdown()
	return fmt.Errorf("%w: %d TPDUs unacknowledged", ErrTimeout, c.Unacked())
}

// Shutdown stops the background goroutines and closes the socket.
func (c *Conn) Shutdown() {
	select {
	case <-c.done:
		return
	default:
	}
	c.mu.Lock()
	select {
	case <-c.done:
		c.mu.Unlock()
		return
	default:
		close(c.done)
	}
	c.shut = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
	_ = c.sock.Close()
}

// decodePacketChunks unpacks one datagram into cloned chunks.
func decodePacketChunks(d []byte) ([]chunk.Chunk, error) {
	p, err := packet.Decode(d)
	if err != nil {
		return nil, err
	}
	out := make([]chunk.Chunk, len(p.Chunks))
	for i := range p.Chunks {
		out[i] = p.Chunks[i].Clone()
	}
	return out, nil
}
