package core

import (
	"bytes"
	"testing"
	"time"
)

// TestWindowedTransfer: with flow control on, a large transfer stays
// within the window and still completes byte-exactly.
func TestWindowedTransfer(t *testing.T) {
	data := testData(256*1024, 8)
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	conn, err := Dial(srv.Addr().String(), Config{CID: 2, TPDUElems: 1024, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off += 16 * 1024 {
		if err := conn.Write(data[off : off+16*1024]); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.WaitDrained(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitClosed(len(data), 15*time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(srv.Stream(), data) {
		t.Fatal("windowed transfer corrupted the stream")
	}
}

// TestWindowWriteAfterShutdown: a blocked Write must not hang forever
// once the connection is shut down.
func TestWindowWriteAfterShutdown(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	srv.Shutdown() // black hole: nothing will be ACKed

	conn, err := Dial(addr, Config{CID: 3, TPDUElems: 16, Window: 1, PollEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the window exactly (Write admits while Unacked <= Window,
	// so two flushed TPDUs leave the next Write blocked).
	for i := 0; i < 2; i++ {
		if err := conn.Write(testData(64, int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := conn.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- conn.Write(testData(64, 99)) }()
	time.Sleep(30 * time.Millisecond)
	conn.Shutdown()
	select {
	case err := <-done:
		if err != ErrShutdown {
			t.Fatalf("blocked write returned %v, want ErrShutdown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked write hung after shutdown")
	}
}

// TestRepairOverUDP: a server with Repair enabled still verifies a
// clean loopback transfer (the repair path is a no-op without
// corruption; its correction behaviour is covered in transport tests).
func TestRepairOverUDP(t *testing.T) {
	data := testData(32*1024, 12)
	srv, err := Serve("127.0.0.1:0", Config{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	conn, err := Dial(srv.Addr().String(), Config{CID: 5, TPDUElems: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.WaitDrained(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitClosed(len(data), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(srv.Stream(), data) {
		t.Fatal("stream mismatch")
	}
}

// TestBidirectional: the paper composes bi-directional streams from
// two uni-directional connections; run one each way concurrently.
func TestBidirectional(t *testing.T) {
	dataAB := testData(64*1024, 31)
	dataBA := testData(48*1024, 32)

	srvB, err := Serve("127.0.0.1:0", Config{}) // receives A->B
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Shutdown()
	srvA, err := Serve("127.0.0.1:0", Config{}) // receives B->A
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Shutdown()

	connAB, err := Dial(srvB.Addr().String(), Config{CID: 0xAB, TPDUElems: 512})
	if err != nil {
		t.Fatal(err)
	}
	connBA, err := Dial(srvA.Addr().String(), Config{CID: 0xBA, TPDUElems: 512})
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 2)
	send := func(c *Conn, data []byte) {
		if err := c.Write(data); err != nil {
			errc <- err
			return
		}
		if err := c.Close(); err != nil {
			errc <- err
			return
		}
		errc <- c.WaitDrained(15 * time.Second)
	}
	go send(connAB, dataAB)
	go send(connBA, dataBA)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := srvB.WaitClosed(len(dataAB), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srvA.WaitClosed(len(dataBA), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(srvB.Stream(), dataAB) || !bytes.Equal(srvA.Stream(), dataBA) {
		t.Fatal("bidirectional streams corrupted")
	}
}
