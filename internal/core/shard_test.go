package core

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"chunks/internal/chunk"

	"chunks/internal/errdet"
	"chunks/internal/packet"
	"chunks/internal/telemetry"
	"chunks/internal/transport"
)

// fakePeer builds a deterministic in-process source address.
func fakePeer(i int) *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 20000 + i}
}

// shardRunResult is everything observable from one deterministic
// multi-peer run — compared byte-for-byte across shard counts.
type shardRunResult struct {
	streams  map[string][]byte // per-connection placed bytes
	findings []errdet.Finding  // primary connection's findings
	tpdus    []string          // global OnTPDU order: "tid:verdict"
	frames   []string          // global OnFrame order: "xid:len"
	control  []string          // global reverse-path order: "port:len(datagram)"
	verified int
	reaped   int
	conns    int
}

// runShardWorkload drives one seeded multi-peer workload through the
// in-process ingestion path (Inject + ControlOut): P peers with
// distinct C.IDs (two sharing a C.ID from different sources), datagrams
// interleaved round-robin, one datagram deterministically corrupted to
// produce findings. No socket and no timer is involved — every
// observable order is a pure function of the injection sequence.
func runShardWorkload(t *testing.T, shards int) shardRunResult {
	t.Helper()
	res := shardRunResult{streams: map[string][]byte{}}
	srv, err := Serve("127.0.0.1:0", Config{
		Shards:    shards,
		PollEvery: time.Hour, // no ticks during the run: fully synchronous
		OnTPDU: func(tid uint32, v errdet.Verdict) {
			res.tpdus = append(res.tpdus, fmt.Sprintf("%d:%v", tid, v))
		},
		OnFrame: func(xid uint32, data []byte) {
			res.frames = append(res.frames, fmt.Sprintf("%d:%d", xid, len(data)))
		},
		ControlOut: func(d []byte, peer *net.UDPAddr) {
			res.control = append(res.control, fmt.Sprintf("%d:%d", peer.Port, len(d)))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	const peers = 6
	queues := make([][][]byte, peers)
	for i := 0; i < peers; i++ {
		cid := uint32(100 + i)
		if i == peers-1 {
			cid = 100 // same C.ID as peer 0, different source address
		}
		out := &queues[i]
		s := transport.NewSender(transport.SenderConfig{
			CID: cid, TPDUElems: 16 + 8*i,
		}, func(d []byte) { *out = append(*out, append([]byte(nil), d...)) })
		if err := s.Write(testData(4096+512*i, int64(7+i))); err != nil {
			t.Fatal(err)
		}
		s.EndFrame()
		if err := s.Write(testData(1024, int64(70+i))); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one data-chunk payload byte of peer 0's second datagram:
	// that TPDU fails end-to-end verification and the run produces
	// findings on the primary connection (peer 0 is established first;
	// the packet envelope and chunk structure stay valid).
	{
		p, err := packet.Decode(queues[0][1])
		if err != nil {
			t.Fatal(err)
		}
		cl := p.Clone()
		for i := range cl.Chunks {
			if cl.Chunks[i].Type == chunk.TypeData && len(cl.Chunks[i].Payload) > 0 {
				cl.Chunks[i].Payload[0] ^= 0x40
				break
			}
		}
		enc, err := cl.AppendTo(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		queues[0][1] = enc
	}

	for round := 0; ; round++ {
		progressed := false
		for i := 0; i < peers; i++ {
			if round < len(queues[i]) {
				srv.Inject(queues[i][round], fakePeer(i))
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}

	for i := 0; i < peers; i++ {
		cid := uint32(100 + i)
		if i == peers-1 {
			cid = 100
		}
		key := fmt.Sprintf("%d@%s", cid, fakePeer(i).String())
		res.streams[key] = srv.StreamOf(cid, fakePeer(i).String())
	}
	res.findings = srv.Findings()
	res.verified = srv.VerifiedCount()
	res.reaped = srv.Reaped()
	res.conns = srv.ConnCount()
	return res
}

// TestShardCountDeterminism pins the tentpole invariant: the shard
// count changes lock granularity and timer partitioning, never
// behavior. A seeded multi-peer run must produce identical
// per-connection streams, findings, callback orders and control-path
// orders at Shards=1 and Shards=8.
func TestShardCountDeterminism(t *testing.T) {
	one := runShardWorkload(t, 1)
	eight := runShardWorkload(t, 8)

	if one.conns != 6 || eight.conns != 6 {
		t.Fatalf("conns = %d / %d, want 6", one.conns, eight.conns)
	}
	for key, s1 := range one.streams {
		if !bytes.Equal(s1, eight.streams[key]) {
			t.Errorf("stream %s differs between Shards=1 and Shards=8", key)
		}
		if len(s1) == 0 {
			t.Errorf("stream %s is empty", key)
		}
	}
	if !reflect.DeepEqual(one.findings, eight.findings) {
		t.Errorf("findings differ: %v vs %v", one.findings, eight.findings)
	}
	if len(one.findings) == 0 {
		t.Error("workload produced no findings — corruption arm is dead")
	}
	if !reflect.DeepEqual(one.tpdus, eight.tpdus) {
		t.Errorf("global OnTPDU order differs:\n 1: %v\n 8: %v", one.tpdus, eight.tpdus)
	}
	if !reflect.DeepEqual(one.frames, eight.frames) {
		t.Errorf("global OnFrame order differs:\n 1: %v\n 8: %v", one.frames, eight.frames)
	}
	if !reflect.DeepEqual(one.control, eight.control) {
		t.Errorf("global control order differs:\n 1: %v\n 8: %v", one.control, eight.control)
	}
	if len(one.control) == 0 {
		t.Error("no control output captured")
	}
	if one.verified != eight.verified || one.reaped != eight.reaped {
		t.Errorf("verified/reaped differ: %d/%d vs %d/%d",
			one.verified, one.reaped, eight.verified, eight.reaped)
	}
}

// TestMaxConnsAdmission pins Config.MaxConns: the cap refuses further
// establishments (datagram dropped, nothing allocated), counts them,
// fires OnConnRefused with the refused identity, and frees capacity
// when a connection expires.
func TestMaxConnsAdmission(t *testing.T) {
	var refused []string
	srv, err := Serve("127.0.0.1:0", Config{
		Shards:    4,
		MaxConns:  2,
		PollEvery: time.Hour,
		OnConnRefused: func(cid uint32, peer net.Addr) {
			refused = append(refused, fmt.Sprintf("%d@%s", cid, peer))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	for i := 0; i < 4; i++ {
		var dgrams [][]byte
		s := transport.NewSender(transport.SenderConfig{CID: uint32(i + 1), TPDUElems: 16},
			func(d []byte) { dgrams = append(dgrams, append([]byte(nil), d...)) })
		if err := s.Write(testData(64, int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		// One establishment attempt per peer: refusal is counted per
		// attempted datagram, so keep the attempt count explicit.
		srv.Inject(dgrams[0], fakePeer(i))
	}
	if got := srv.ConnCount(); got != 2 {
		t.Fatalf("ConnCount = %d, want 2 (cap)", got)
	}
	if got := srv.RefusedConns(); got != 2 {
		t.Fatalf("RefusedConns = %d, want 2", got)
	}
	want := []string{
		fmt.Sprintf("3@%s", fakePeer(2)),
		fmt.Sprintf("4@%s", fakePeer(3)),
	}
	if !reflect.DeepEqual(refused, want) {
		t.Fatalf("OnConnRefused got %v, want %v", refused, want)
	}
	// The refused identities hold no state: their streams are absent.
	if srv.StreamOf(3, fakePeer(2).String()) != nil {
		t.Fatal("refused connection has a stream")
	}
}

// TestMaxConnsRefusedTelemetry checks the conns_refused counter lands
// in the server scope.
func TestMaxConnsRefusedTelemetry(t *testing.T) {
	reg := telemetry.New(64)
	srv, err := Serve("127.0.0.1:0", Config{
		MaxConns: 1, PollEvery: time.Hour, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	for i := 0; i < 3; i++ {
		var dgrams [][]byte
		s := transport.NewSender(transport.SenderConfig{CID: uint32(i + 1), TPDUElems: 16},
			func(d []byte) { dgrams = append(dgrams, append([]byte(nil), d...)) })
		if err := s.Write(testData(64, int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		srv.Inject(dgrams[0], fakePeer(i))
	}
	snap := reg.Snapshot()
	if got := snap.Scopes["server"].Counters["conns_refused"]; got != 2 {
		t.Fatalf("conns_refused = %d, want 2", got)
	}
	if got := snap.Scopes["server"].Counters["conns_established"]; got != 1 {
		t.Fatalf("conns_established = %d, want 1", got)
	}
}

// TestTelemetryScopesBounded pins the scope-leak fix: by default the
// receive side registers one aggregate scope per shard — scope count
// must not grow with the connection count. PerConnTelemetry opts back
// into the per-connection scopes.
func TestTelemetryScopesBounded(t *testing.T) {
	const conns = 32
	inject := func(srv *Server) {
		for i := 0; i < conns; i++ {
			var dgrams [][]byte
			s := transport.NewSender(transport.SenderConfig{CID: uint32(i + 1), TPDUElems: 16},
				func(d []byte) { dgrams = append(dgrams, append([]byte(nil), d...)) })
			if err := s.Write(testData(64, int64(i))); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			for _, d := range dgrams {
				srv.Inject(d, fakePeer(i))
			}
		}
	}
	regAgg := telemetry.New(64)
	srv, err := Serve("127.0.0.1:0", Config{Shards: 4, PollEvery: time.Hour, Telemetry: regAgg})
	if err != nil {
		t.Fatal(err)
	}
	inject(srv)
	srv.Shutdown()
	var recvScopes []string
	for name := range regAgg.Snapshot().Scopes {
		if len(name) >= 5 && name[:5] == "recv." {
			recvScopes = append(recvScopes, name)
		}
	}
	sort.Strings(recvScopes)
	if len(recvScopes) != 4 {
		t.Fatalf("default mode: %d recv scopes for %d conns, want 4 (one per shard): %v",
			len(recvScopes), conns, recvScopes)
	}
	// The aggregates carry the traffic: TPDUs verified across shards
	// must equal the connection count (one TPDU each).
	total := int64(0)
	for _, name := range recvScopes {
		total += regAgg.Snapshot().Scopes[name].Counters["tpdus_verified"]
	}
	if total != conns {
		t.Fatalf("aggregate tpdus_verified = %d, want %d", total, conns)
	}

	regPer := telemetry.New(64)
	srv2, err := Serve("127.0.0.1:0", Config{
		Shards: 4, PollEvery: time.Hour, Telemetry: regPer, PerConnTelemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	inject(srv2)
	srv2.Shutdown()
	perScopes := 0
	for name := range regPer.Snapshot().Scopes {
		if len(name) >= 5 && name[:5] == "recv." {
			perScopes++
		}
	}
	if perScopes != conns {
		t.Fatalf("PerConnTelemetry: %d recv scopes, want %d (one per conn)", perScopes, conns)
	}
}

// TestExpiryCallbackOrder pins the cross-shard expiry order: all
// connections going idle in the same tick expire in (C.ID, source)
// order regardless of shard count — the old single-table sorted-scan
// order.
func TestExpiryCallbackOrder(t *testing.T) {
	for _, shards := range []int{1, 8} {
		var mu sync.Mutex
		var order []string
		srv, err := Serve("127.0.0.1:0", Config{
			Shards:      shards,
			PollEvery:   50 * time.Millisecond,
			IdleTimeout: 150 * time.Millisecond,
			OnConnExpired: func(cid uint32, peer net.Addr) {
				mu.Lock()
				order = append(order, fmt.Sprintf("%d@%s", cid, peer))
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}

		// Establish 10 connections back-to-back — well inside the first
		// tick period, so they share an establishment tick and expire in
		// one batch.
		var want []string
		for i := 9; i >= 0; i-- { // scrambled establishment order
			var dgrams [][]byte
			s := transport.NewSender(transport.SenderConfig{CID: uint32(1 + i%3), TPDUElems: 16},
				func(d []byte) { dgrams = append(dgrams, append([]byte(nil), d...)) })
			if err := s.Write(testData(64, int64(i))); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			for _, d := range dgrams {
				srv.Inject(d, fakePeer(i))
			}
			want = append(want, fmt.Sprintf("%d@%s", 1+i%3, fakePeer(i)))
		}
		sort.Slice(want, func(a, b int) bool {
			// (C.ID, addr) order — CIDs here are single-digit so the
			// string sort on "cid@addr" matches numeric order.
			return want[a] < want[b]
		})

		deadline := time.Now().Add(5 * time.Second)
		for srv.Expired() < 10 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		srv.Shutdown()
		mu.Lock()
		got := append([]string(nil), order...)
		mu.Unlock()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: expiry order\n got %v\nwant %v", shards, got, want)
		}
	}
}
