package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"chunks/internal/errdet"
)

func testData(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestLoopbackTransfer runs the full stack — sender, packets, UDP,
// receiver, placement, WSC-2 verification, ACKs — over the loopback
// interface.
func TestLoopbackTransfer(t *testing.T) {
	data := testData(64*1024, 1)

	var mu sync.Mutex
	verdicts := map[uint32]errdet.Verdict{}
	srv, err := Serve("127.0.0.1:0", Config{
		OnTPDU: func(tid uint32, v errdet.Verdict) {
			mu.Lock()
			verdicts[tid] = v
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	conn, err := Dial(srv.Addr().String(), Config{CID: 7, TPDUElems: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.WaitDrained(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitClosed(len(data), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(srv.Stream(), data) {
		t.Fatal("received stream differs from sent data")
	}
	sent, _ := conn.Stats()
	if srv.VerifiedCount() != sent {
		t.Fatalf("verified %d of %d TPDUs", srv.VerifiedCount(), sent)
	}
	mu.Lock()
	defer mu.Unlock()
	for tid, v := range verdicts {
		if v != errdet.VerdictOK {
			t.Fatalf("TPDU %d verdict %v", tid, v)
		}
	}
	if fs := srv.Findings(); len(fs) != 0 {
		t.Fatalf("findings: %v", fs)
	}
}

func TestLoopbackFrames(t *testing.T) {
	frames := [][]byte{testData(4000, 2), testData(2400, 3), testData(800, 4)}

	var mu sync.Mutex
	got := map[uint32][]byte{}
	srv, err := Serve("127.0.0.1:0", Config{
		OnFrame: func(xid uint32, data []byte) {
			mu.Lock()
			got[xid] = append([]byte(nil), data...)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	conn, err := Dial(srv.Addr().String(), Config{CID: 8, TPDUElems: 100})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range frames {
		if err := conn.Write(f); err != nil {
			t.Fatal(err)
		}
		conn.EndFrame()
		total += len(f)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.WaitDrained(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitClosed(total, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Frames deliver asynchronously; give callbacks a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == len(frames) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(frames) {
		t.Fatalf("delivered %d of %d frames", len(got), len(frames))
	}
	for i, f := range frames {
		if !bytes.Equal(got[uint32(i+1)], f) {
			t.Fatalf("frame %d mismatch", i+1)
		}
	}
}

func TestDialBadAddr(t *testing.T) {
	if _, err := Dial("not-an-addr", Config{}); err == nil {
		t.Fatal("bad address must fail")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("not-an-addr", Config{}); err == nil {
		t.Fatal("bad address must fail")
	}
}

func TestWaitDrainedTimeout(t *testing.T) {
	// A conn pointed at a black hole (no server reads) must time out.
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	srv.Shutdown() // nobody listening anymore

	conn, err := Dial(addr, Config{CID: 1, PollEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Write(testData(64, 5)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := conn.WaitDrained(200 * time.Millisecond); err == nil {
		t.Fatal("black hole must time out")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	srv.Shutdown()
	conn, err := Dial("127.0.0.1:1", Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn.Shutdown()
	conn.Shutdown()
}
