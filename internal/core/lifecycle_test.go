package core

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chunks/internal/transport"
)

// TestSpoofCannotHijackControl: a stray sender replaying valid-looking
// datagrams for a live C.ID from a different source address must not
// redirect the ACK/NACK control path — the real transfer completes
// byte-exactly, and the spoofed source lands in its own isolated
// connection.
func TestSpoofCannotHijackControl(t *testing.T) {
	data := testData(64*1024, 41)
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	// Forge datagrams carrying the same C.ID the real connection will
	// use, from a different UDP source.
	var forged [][]byte
	fs := transport.NewSender(transport.SenderConfig{CID: 7, TPDUElems: 16}, func(d []byte) {
		forged = append(forged, append([]byte(nil), d...))
	})
	if err := fs.Write(testData(16*4, 99)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	spoofer, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer spoofer.Close()

	conn, err := Dial(srv.Addr().String(), Config{CID: 7, TPDUElems: 256, PollEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Spoof continuously while the transfer runs.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, d := range forged {
					_, _ = spoofer.Write(d)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	if err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.WaitDrained(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitClosed(len(data), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// The real connection (established first) delivered byte-exactly.
	real := srv.StreamOf(7, conn.LocalAddr().String())
	if !bytes.Equal(real, data) {
		t.Fatal("spoofing corrupted the real connection's stream")
	}
	// The spoofer got its own connection, isolated from the real one.
	if got := srv.ConnCount(); got != 2 {
		t.Fatalf("ConnCount = %d, want 2 (real + spoofed)", got)
	}
	spoofed := srv.StreamOf(7, spoofer.LocalAddr().String())
	if bytes.Equal(spoofed, data) {
		t.Fatal("spoofed connection shares the real stream")
	}
}

// TestMultiPeer: two independent senders with different C.IDs deliver
// concurrently to one server, each into its own stream.
func TestMultiPeer(t *testing.T) {
	dataA := testData(48*1024, 51)
	dataB := testData(32*1024, 52)
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	connA, err := Dial(srv.Addr().String(), Config{CID: 1, TPDUElems: 256})
	if err != nil {
		t.Fatal(err)
	}
	connB, err := Dial(srv.Addr().String(), Config{CID: 2, TPDUElems: 256})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 2)
	send := func(c *Conn, data []byte) {
		if err := c.Write(data); err != nil {
			errc <- err
			return
		}
		if err := c.Close(); err != nil {
			errc <- err
			return
		}
		errc <- c.WaitDrained(10 * time.Second)
	}
	go send(connA, dataA)
	go send(connB, dataB)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.ConnCount(); got != 2 {
		t.Fatalf("ConnCount = %d, want 2", got)
	}
	gotA := srv.StreamOf(1, connA.LocalAddr().String())
	gotB := srv.StreamOf(2, connB.LocalAddr().String())
	if !bytes.Equal(gotA, dataA) {
		t.Fatal("peer A stream mismatch")
	}
	if !bytes.Equal(gotB, dataB) {
		t.Fatal("peer B stream mismatch")
	}
}

// TestIdleExpiry: a connection that goes quiet is reaped after
// IdleTimeout and OnConnExpired fires with its identity.
func TestIdleExpiry(t *testing.T) {
	type expiry struct {
		cid  uint32
		addr string
	}
	expc := make(chan expiry, 4)
	srv, err := Serve("127.0.0.1:0", Config{
		PollEvery:   5 * time.Millisecond,
		IdleTimeout: 80 * time.Millisecond,
		OnConnExpired: func(cid uint32, peer net.Addr) {
			expc <- expiry{cid: cid, addr: peer.String()}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	conn, err := Dial(srv.Addr().String(), Config{CID: 9, TPDUElems: 64})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(4096, 61)
	if err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.WaitDrained(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	localAddr := conn.LocalAddr().String()
	if got := srv.ConnCount(); got != 1 {
		t.Fatalf("ConnCount = %d before expiry, want 1", got)
	}

	select {
	case e := <-expc:
		if e.cid != 9 || e.addr != localAddr {
			t.Fatalf("expired (%d, %s), want (9, %s)", e.cid, e.addr, localAddr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle connection never expired")
	}
	if got := srv.ConnCount(); got != 0 {
		t.Fatalf("ConnCount = %d after expiry, want 0", got)
	}
	if got := srv.Expired(); got != 1 {
		t.Fatalf("Expired() = %d, want 1", got)
	}
}

// TestPeerDeadSurfaced: a sender talking into a black hole with
// MaxRetries set backs off exponentially, gives up, fires OnPeerDead
// once, and surfaces ErrPeerDead through WaitDrained and Write.
func TestPeerDeadSurfaced(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	srv.Shutdown() // black hole

	var deadFired atomic.Int32
	conn, err := Dial(addr, Config{
		CID: 4, TPDUElems: 16,
		PollEvery:  2 * time.Millisecond,
		InitialRTO: 5 * time.Millisecond,
		MinRTO:     5 * time.Millisecond,
		MaxRetries: 4,
		OnPeerDead: func(err error) { deadFired.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Write(testData(64, 71)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	err = conn.WaitDrained(5 * time.Second)
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("WaitDrained = %v, want ErrPeerDead", err)
	}
	if got := deadFired.Load(); got != 1 {
		t.Fatalf("OnPeerDead fired %d times, want 1", got)
	}
	// The recorded timeline shows monotonically growing intervals.
	log := conn.RetransmitTimeline()
	if len(log) != 4 {
		t.Fatalf("timeline has %d retransmissions, want MaxRetries=4", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i].RTO <= log[i-1].RTO {
			t.Fatalf("RTO %v after %v: backoff not growing", log[i].RTO, log[i-1].RTO)
		}
	}
}

// TestBlockedWriteUnblocksOnPeerDead: a Write blocked on a full window
// returns ErrPeerDead promptly once the sender gives up, instead of
// blocking forever.
func TestBlockedWriteUnblocksOnPeerDead(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	srv.Shutdown() // black hole

	conn, err := Dial(addr, Config{
		CID: 5, TPDUElems: 16, Window: 1,
		PollEvery:  2 * time.Millisecond,
		InitialRTO: 5 * time.Millisecond,
		MinRTO:     5 * time.Millisecond,
		MaxRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Shutdown()
	// Fill the window (Write admits while Unacked <= Window).
	for i := 0; i < 2; i++ {
		if err := conn.Write(testData(64, int64(80+i))); err != nil {
			t.Fatal(err)
		}
		if err := conn.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- conn.Write(testData(64, 90)) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerDead) {
			t.Fatalf("blocked write returned %v, want ErrPeerDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked write hung past peer death")
	}
}
