package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"chunks/internal/transport"
)

// TestConcurrentShutdownIdempotent: Shutdown on Conn and Server is
// safe to call many times from many goroutines (run under -race).
func TestConcurrentShutdownIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(srv.Addr().String(), Config{CID: 11})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); conn.Shutdown() }()
		go func() { defer wg.Done(); srv.Shutdown() }()
	}
	wg.Wait()
	// And again sequentially, after everything already stopped.
	conn.Shutdown()
	srv.Shutdown()
}

// TestCloseRacingWrite: Close and Shutdown racing concurrent Writes
// must neither panic nor deadlock; every Write returns either nil (it
// won the race) or a clean sentinel error.
func TestCloseRacingWrite(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	conn, err := Dial(srv.Addr().String(), Config{CID: 12, TPDUElems: 64, Window: 4})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				errs <- conn.Write(testData(256, seed*10+int64(j)))
			}
		}(int64(i))
	}
	time.Sleep(5 * time.Millisecond)
	_ = conn.Close()
	conn.Shutdown()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrShutdown) && !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("racing Write returned unexpected error: %v", err)
		}
	}
}

// TestWaitDrainedTimeoutSurvivesRetry: WaitDrained returns ErrTimeout
// (wrapped) against a silent peer with unlimited retries, and the conn
// is fully shut down afterwards — a second WaitDrained is immediate.
func TestWaitDrainedTimeoutSurvivesRetry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	srv.Shutdown() // black hole

	conn, err := Dial(addr, Config{CID: 13, PollEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Write(testData(64, 5)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := conn.WaitDrained(100 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("WaitDrained = %v, want ErrTimeout", err)
	}
	start := time.Now()
	if err := conn.WaitDrained(10 * time.Second); !errors.Is(err, ErrShutdown) {
		t.Fatalf("second WaitDrained = %v, want ErrShutdown", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("second WaitDrained blocked %v", elapsed)
	}
}
