package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"testing"
	"time"

	"chunks/internal/telemetry"
	"chunks/internal/transport"
)

// genBatchWorkload builds a seeded multi-connection datagram schedule:
// nConns senders each write several multi-datagram TPDUs, and the
// per-connection datagrams are interleaved round-robin the way a busy
// socket mixes peers. froms[i] is the source of dgrams[i].
func genBatchWorkload(t *testing.T, nConns, writes int) (dgrams [][]byte, froms []netip.AddrPort) {
	t.Helper()
	perConn := make([][][]byte, nConns)
	for c := 0; c < nConns; c++ {
		var out [][]byte
		s := transport.NewSender(transport.SenderConfig{
			CID: uint32(c + 1), MTU: 1400, ElemSize: 4, TPDUElems: 1024,
		}, func(d []byte) { out = append(out, append([]byte(nil), d...)) })
		rng := rand.New(rand.NewSource(int64(1000 + c)))
		buf := make([]byte, 512)
		for w := 0; w < writes; w++ {
			rng.Read(buf)
			if err := s.Write(buf); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		perConn[c] = out
	}
	for i := 0; ; i++ {
		progressed := false
		for c := 0; c < nConns; c++ {
			if i < len(perConn[c]) {
				dgrams = append(dgrams, perConn[c][i])
				froms = append(froms, batchFrom(c))
				progressed = true
			}
		}
		if !progressed {
			return dgrams, froms
		}
	}
}

func batchFrom(c int) netip.AddrPort {
	return netip.MustParseAddrPort(fmt.Sprintf("10.9.0.%d:4242", c+1))
}

// runBatchInjection drives the full workload through a fresh server in
// bursts of batchSize datagrams (batchSize 0 selects the legacy
// one-datagram Inject API) and returns the per-connection streams plus
// the whole telemetry snapshot, serialized for comparison. PollEvery is
// huge so injection order alone drives every observable.
func runBatchInjection(t *testing.T, dgrams [][]byte, froms []netip.AddrPort, nConns, batchSize int) (map[uint32][]byte, string) {
	t.Helper()
	reg := telemetry.New(0)
	srv, err := Serve("127.0.0.1:0", Config{
		Shards:     4,
		Telemetry:  reg,
		PollEvery:  time.Hour,
		ControlOut: func([]byte, *net.UDPAddr) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	if batchSize == 0 {
		for i := range dgrams {
			srv.Inject(dgrams[i], net.UDPAddrFromAddrPort(froms[i]))
		}
	} else {
		for i := 0; i < len(dgrams); i += batchSize {
			end := min(i+batchSize, len(dgrams))
			srv.InjectBatch(dgrams[i:end], froms[i:end])
		}
	}

	streams := make(map[uint32][]byte, nConns)
	for c := 0; c < nConns; c++ {
		cid := uint32(c + 1)
		st := srv.StreamOf(cid, addrKey(batchFrom(c)))
		if len(st) == 0 {
			t.Fatalf("batchSize=%d: connection %d has no stream", batchSize, cid)
		}
		streams[cid] = st
	}
	tel, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return streams, string(tel)
}

// TestBatchDeterminism pins that the batch width of the ingestion path
// is invisible to the protocol: the same seeded datagram schedule
// produces byte-identical streams and an identical telemetry snapshot
// whether datagrams arrive one at a time through the legacy Inject or
// in bursts of 1, 8 or 64 through the shared-scratch batched path.
func TestBatchDeterminism(t *testing.T) {
	const nConns = 4
	dgrams, froms := genBatchWorkload(t, nConns, 40)

	refStreams, refTel := runBatchInjection(t, dgrams, froms, nConns, 0)
	for _, batchSize := range []int{1, 8, 64} {
		streams, tel := runBatchInjection(t, dgrams, froms, nConns, batchSize)
		for cid, want := range refStreams {
			if got := string(streams[cid]); got != string(want) {
				t.Errorf("batchSize=%d: connection %d stream diverges from scalar reference (%d vs %d bytes)",
					batchSize, cid, len(got), len(want))
			}
		}
		if tel != refTel {
			t.Errorf("batchSize=%d: telemetry snapshot diverges from scalar reference:\n got %s\nwant %s",
				batchSize, tel, refTel)
		}
	}
}

// TestReadLoopClosedSocket is the regression test for the read-loop
// error handling: a socket that fails permanently (closed underneath
// the server) must count recv_sock_err and END the reader goroutines
// rather than spinning on the dead descriptor, and Shutdown must still
// return promptly afterwards. Covers the scalar and batched loops.
func TestReadLoopClosedSocket(t *testing.T) {
	for _, recvBatch := range []int{1, 32} {
		t.Run(fmt.Sprintf("recvBatch=%d", recvBatch), func(t *testing.T) {
			reg := telemetry.New(0)
			srv, err := Serve("127.0.0.1:0", Config{
				Telemetry: reg,
				Readers:   2,
				RecvBatch: recvBatch,
			})
			if err != nil {
				t.Fatal(err)
			}
			_ = srv.sock.Close()

			deadline := time.Now().Add(5 * time.Second)
			for reg.Snapshot().Scopes["server"].Counters["recv_sock_err"] < 2 {
				if time.Now().After(deadline) {
					t.Fatalf("readers did not observe the closed socket; recv_sock_err=%d",
						reg.Snapshot().Scopes["server"].Counters["recv_sock_err"])
				}
				time.Sleep(5 * time.Millisecond)
			}

			done := make(chan struct{})
			go func() { srv.Shutdown(); close(done) }()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("Shutdown hung after the socket was closed")
			}
		})
	}
}
