package core

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"chunks/internal/errdet"
	"chunks/internal/packet"
	"chunks/internal/telemetry"
	"chunks/internal/transport"
)

// connKey identifies one server-side connection: the connection ID
// from the chunk labels AND the UDP source address it was established
// from. Keying on both means a datagram from a different source — a
// spoofed or stray sender reusing a live C.ID — lands in its own
// isolated connection state and can never redirect the control
// (ACK/NACK) path of the original peer.
type connKey struct {
	cid  uint32
	addr string
}

// serverConn is the receive state of one peer connection.
type serverConn struct {
	r    *transport.Receiver
	peer *net.UDPAddr // control destination, bound at establishment
	cid  uint32

	established int       // arrival order, for the primary accessors
	lastActive  time.Time // last datagram seen (idle expiry)
}

// A Server is the receiving end of chunk connections over UDP. It
// serves multiple peers concurrently, keyed by connection ID × source
// address: each connection places data immediately into its own stream
// buffer, verifies each TPDU end-to-end, ACKs/NACKs back to the
// address the connection was established from, and delivers frames
// through the Config callbacks.
//
// The single-connection accessors (Stream, VerifiedCount, Closed,
// Findings, WaitClosed) operate on the primary connection: the
// earliest-established one still alive. Multi-peer callers use
// StreamOf and ConnCount.
type Server struct {
	mu       sync.Mutex
	cfg      Config
	sock     *net.UDPConn
	conns    map[connKey]*serverConn
	seq      int
	done     chan struct{}
	shutOnce sync.Once
	wg       sync.WaitGroup

	expired  int // connections reaped by idle expiry
	rejected int // connections torn down by vr.RejectConnection

	telEstablished *telemetry.Counter
	telExpired     *telemetry.Counter
	telDatagrams   *telemetry.Counter
	telRejected    *telemetry.Counter
	telLive        *telemetry.Gauge
	telRing        *telemetry.Ring
}

// Serve starts a receiver on the given UDP address ("host:0" picks a
// free port).
func Serve(addr string, cfg Config) (*Server, error) {
	cfg.fill()
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	_ = sock.SetReadBuffer(8 << 20)
	_ = sock.SetWriteBuffer(4 << 20)
	sink := cfg.Telemetry.Sink("server")
	srv := &Server{
		cfg:   cfg,
		sock:  sock,
		conns: make(map[connKey]*serverConn),
		done:  make(chan struct{}),

		telEstablished: sink.Counter("conns_established"),
		telExpired:     sink.Counter("conns_expired"),
		telDatagrams:   sink.Counter("datagrams_in"),
		telRejected:    sink.Counter("conns_rejected"),
		telLive:        sink.Gauge("conns_live"),
		telRing:        sink.Ring,
	}
	// Validate the receiver configuration once, up front, so Serve
	// fails fast the way it used to instead of on the first datagram.
	if _, err := transport.NewReceiver(srv.receiverConfig(), func([]byte) {}); err != nil {
		_ = sock.Close()
		return nil, err
	}

	srv.wg.Add(2)
	go srv.readLoop()
	go srv.pollLoop()
	return srv, nil
}

func (s *Server) receiverConfig() transport.ReceiverConfig {
	return transport.ReceiverConfig{
		MTU:           s.cfg.MTU,
		OnFrame:       s.cfg.OnFrame,
		OnTPDU:        s.cfg.OnTPDU,
		Repair:        s.cfg.Repair,
		ReapAfter:     s.cfg.ReapAfter,
		OverlapPolicy: s.cfg.OverlapPolicy,
	}
}

// conn returns the connection for (cid, from), establishing it on
// first contact. Called with s.mu held.
func (s *Server) conn(cid uint32, from *net.UDPAddr) *serverConn {
	key := connKey{cid: cid, addr: from.String()}
	if c, ok := s.conns[key]; ok {
		return c
	}
	peer := &net.UDPAddr{IP: append(net.IP(nil), from.IP...), Port: from.Port, Zone: from.Zone}
	c := &serverConn{peer: peer, cid: cid, established: s.seq}
	s.seq++
	// The out callback captures the ESTABLISHMENT address: control
	// always goes there, no matter who sent the datagram that
	// triggered it.
	cfg := s.receiverConfig()
	cfg.Tel = s.cfg.Telemetry.Sink(fmt.Sprintf("recv.%d@%s", cid, key.addr))
	r, err := transport.NewReceiver(cfg, func(d []byte) {
		_, _ = s.sock.WriteToUDP(d, peer)
	})
	if err != nil {
		// The config was validated in Serve; this cannot fail.
		return nil
	}
	c.r = r
	s.conns[key] = c
	s.telEstablished.Inc()
	s.telLive.Set(int64(len(s.conns)))
	return c
}

func (s *Server) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 65536)
	for {
		_ = s.sock.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //lint:allow detrand socket read deadline: I/O pacing, not protocol state
		n, from, err := s.sock.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		p, err := packet.Decode(buf[:n])
		if err != nil {
			continue // not a chunk packet; ignore
		}
		now := time.Now() //lint:allow detrand lastActive stamp feeds wall-clock idle expiry only
		s.telDatagrams.Inc()
		s.mu.Lock()
		// Route each chunk to the (C.ID, source) connection. Packets
		// are usually single-connection, so cache the last lookup.
		var cur *serverConn
		var curCID uint32
		var droppedCID uint32
		dropped := false
		for i := range p.Chunks {
			cid := p.Chunks[i].C.ID
			if dropped && cid == droppedCID {
				continue // connection torn down earlier in this packet
			}
			if cur == nil || cid != curCID {
				cur, curCID = s.conn(cid, from), cid
			}
			if cur == nil {
				continue
			}
			cur.lastActive = now
			if err := cur.r.HandleChunk(&p.Chunks[i]); errors.Is(err, transport.ErrConnectionRejected) {
				// The vr.RejectConnection overlap policy tripped: tear
				// the connection down and drop the rest of the packet
				// for it. A later packet re-establishes fresh state.
				delete(s.conns, connKey{cid: curCID, addr: from.String()})
				s.rejected++
				s.telRejected.Inc()
				s.telLive.Set(int64(len(s.conns)))
				if s.cfg.OnConnRejected != nil {
					s.cfg.OnConnRejected(curCID, cur.peer)
				}
				droppedCID, dropped = curCID, true
				cur = nil
			}
		}
		s.mu.Unlock()
	}
}

func (s *Server) pollLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.PollEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			type expiredConn struct {
				cid  uint32
				peer net.Addr
			}
			var expired []expiredConn
			now := time.Now() //lint:allow detrand idle expiry is wall-clock by definition on the real-socket path
			s.mu.Lock()
			// Poll and expire in sorted key order: poll order decides
			// the sequence of emitted datagrams across connections, and
			// expiry order the OnConnExpired callback sequence — map
			// order would make both differ run to run.
			keys := make([]connKey, 0, len(s.conns))
			for key := range s.conns {
				keys = append(keys, key)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i].cid != keys[j].cid {
					return keys[i].cid < keys[j].cid
				}
				return keys[i].addr < keys[j].addr
			})
			for _, key := range keys {
				c := s.conns[key]
				if s.cfg.IdleTimeout > 0 && now.Sub(c.lastActive) > s.cfg.IdleTimeout {
					delete(s.conns, key)
					s.expired++
					s.telExpired.Inc()
					s.telLive.Set(int64(len(s.conns)))
					s.telRing.Record(telemetry.EvExpired, c.cid, 0, 0, 0)
					expired = append(expired, expiredConn{cid: c.cid, peer: c.peer})
					continue
				}
				c.r.Poll()
			}
			s.mu.Unlock()
			if s.cfg.OnConnExpired != nil {
				for _, e := range expired {
					s.cfg.OnConnExpired(e.cid, e.peer)
				}
			}
		}
	}
}

// primary returns the earliest-established live connection, or nil.
// Called with s.mu held.
func (s *Server) primary() *serverConn {
	var best *serverConn
	// Min-reduction with a total order (established, then cid): the
	// result is independent of map iteration order even on ties.
	for _, c := range s.conns { //lint:allow maprange min-reduction over a total order; result is iteration-order independent
		if best == nil || c.established < best.established ||
			(c.established == best.established && c.cid < best.cid) {
			best = c
		}
	}
	return best
}

// Addr returns the bound UDP address.
func (s *Server) Addr() net.Addr { return s.sock.LocalAddr() }

// ConnCount returns the number of live connections.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Expired returns how many connections idle expiry has reaped.
func (s *Server) Expired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}

// RejectedConns returns how many connections the vr.RejectConnection
// overlap policy has torn down.
func (s *Server) RejectedConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// Stream returns a copy of the application bytes placed so far on the
// primary connection.
func (s *Server) Stream() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.primary(); c != nil {
		return append([]byte(nil), c.r.Stream()...)
	}
	return nil
}

// StreamOf returns a copy of the stream of the connection established
// by cid from addr (the exact source "ip:port"), or nil.
func (s *Server) StreamOf(cid uint32, addr string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.conns[connKey{cid: cid, addr: addr}]; ok {
		return append([]byte(nil), c.r.Stream()...)
	}
	return nil
}

// VerifiedCount returns how many TPDUs verified OK on the primary
// connection.
func (s *Server) VerifiedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.primary(); c != nil {
		return c.r.VerifiedCount()
	}
	return 0
}

// Closed reports whether the close signal has arrived on the primary
// connection.
func (s *Server) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.primary(); c != nil {
		return c.r.Closed()
	}
	return false
}

// Findings returns the error detection findings so far on the primary
// connection.
func (s *Server) Findings() []errdet.Finding {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.primary(); c != nil {
		return c.r.Findings()
	}
	return nil
}

// Reaped returns how many stale incomplete TPDUs were dropped across
// all connections.
func (s *Server) Reaped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.conns {
		n += c.r.Reaped()
	}
	return n
}

// WaitClosed blocks until the close signal arrives and the primary
// stream has n bytes, or the timeout elapses.
func (s *Server) WaitClosed(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout) //lint:allow detrand test/CLI convenience wait; bounds wall time, not protocol behavior
	for time.Now().Before(deadline) { //lint:allow detrand test/CLI convenience wait; bounds wall time, not protocol behavior
		s.mu.Lock()
		c := s.primary()
		ok := c != nil && c.r.Closed() && len(c.r.Stream()) >= n
		s.mu.Unlock()
		if ok {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("%w: stream %d of %d bytes", ErrTimeout, len(s.Stream()), n)
}

// Shutdown stops the server. It is idempotent and safe to call
// concurrently.
func (s *Server) Shutdown() {
	s.shutOnce.Do(func() { close(s.done) })
	s.wg.Wait()
	_ = s.sock.Close()
}
