package core

import (
	"errors"
	"fmt"
	"log"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"chunks/internal/batch"
	"chunks/internal/errdet"
	"chunks/internal/packet"
	"chunks/internal/shard"
	"chunks/internal/telemetry"
	"chunks/internal/transport"
)

// serverConn is the receive state of one peer connection.
type serverConn struct {
	r    *transport.Receiver
	peer *net.UDPAddr // control destination, bound at establishment
	cid  uint32
}

// A Server is the receiving end of chunk connections over UDP. It
// serves multiple peers concurrently, keyed by connection ID × source
// address: each connection places data immediately into its own stream
// buffer, verifies each TPDU end-to-end, ACKs/NACKs back to the
// address the connection was established from, and delivers frames
// through the Config callbacks.
//
// Connections are demultiplexed over Config.Shards independent shards
// (internal/shard), each with its own table, lock and timer wheel —
// per-chunk self-description means no reassembly state is shared
// across connections, so steady-state datagram handling touches
// exactly one shard lock. Timer-driven work (receiver poll rounds,
// idle expiry) runs off the shards' hierarchical timer wheels in O(1)
// per tick instead of a per-tick scan of the whole connection table.
//
// The single-connection accessors (Stream, VerifiedCount, Closed,
// Findings, WaitClosed) operate on the primary connection: the
// earliest-established one still alive. Multi-peer callers use
// StreamOf and ConnCount.
type Server struct {
	cfg      Config
	sock     *net.UDPConn
	eng      *shard.Engine[*serverConn]
	done     chan struct{}
	shutOnce sync.Once
	wg       sync.WaitGroup

	idleTicks uint64
	expired   atomic.Int64 // connections reaped by idle expiry
	rejected  atomic.Int64 // connections torn down by vr.RejectConnection

	shardSinks []telemetry.Sink // per-shard aggregate receiver sinks

	telEstablished *telemetry.Counter
	telExpired     *telemetry.Counter
	telDatagrams   *telemetry.Counter
	telRejected    *telemetry.Counter
	telRefused     *telemetry.Counter
	telSetupErr    *telemetry.Counter
	telSockErr     *telemetry.Counter
	telLive        *telemetry.Gauge
	telRing        *telemetry.Ring
}

// Serve starts a receiver on the given UDP address ("host:0" picks a
// free port).
func Serve(addr string, cfg Config) (*Server, error) {
	cfg.fill()
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	_ = sock.SetReadBuffer(8 << 20)
	_ = sock.SetWriteBuffer(4 << 20)
	sink := cfg.Telemetry.Sink("server")
	srv := &Server{
		cfg:  cfg,
		sock: sock,
		done: make(chan struct{}),

		telEstablished: sink.Counter("conns_established"),
		telExpired:     sink.Counter("conns_expired"),
		telDatagrams:   sink.Counter("datagrams_in"),
		telRejected:    sink.Counter("conns_rejected"),
		telRefused:     sink.Counter("conns_refused"),
		telSetupErr:    sink.Counter("conn_setup_errors"),
		telSockErr:     sink.Counter("recv_sock_err"),
		telLive:        sink.Gauge("conns_live"),
		telRing:        sink.Ring,
	}
	if cfg.IdleTimeout > 0 {
		// Idle expiry in whole ticks, rounded up: the effective lease
		// stays within one PollEvery of the configured timeout, exactly
		// the granularity the old per-tick wall-clock scan had.
		srv.idleTicks = uint64((cfg.IdleTimeout + cfg.PollEvery - 1) / cfg.PollEvery)
	}
	srv.eng = shard.New(shard.Config[*serverConn]{
		Shards:    cfg.Shards,
		MaxConns:  cfg.MaxConns,
		IdleTicks: srv.idleTicks,
		Poll: func(_ shard.Key, c *serverConn) bool {
			c.r.Poll()
			return c.r.NeedsPoll()
		},
	})
	// One aggregate receiver sink per shard: connection count no longer
	// drives scope count (PerConnTelemetry opts back into per-conn
	// scopes, at one scope per connection).
	srv.shardSinks = make([]telemetry.Sink, srv.eng.ShardCount())
	if !cfg.PerConnTelemetry {
		for i := range srv.shardSinks {
			srv.shardSinks[i] = cfg.Telemetry.Sink(fmt.Sprintf("recv.shard%d", i))
		}
	}
	// Validate the receiver configuration once, up front, so Serve
	// fails fast the way it used to instead of on the first datagram.
	if _, err := transport.NewReceiver(srv.receiverConfig(), func([]byte) {}); err != nil {
		_ = sock.Close()
		return nil, err
	}

	readers := cfg.Readers
	if readers <= 0 {
		readers = 1
	}
	srv.wg.Add(readers + 1)
	for i := 0; i < readers; i++ {
		go srv.readLoop()
	}
	go srv.tickLoop()
	return srv, nil
}

func (s *Server) receiverConfig() transport.ReceiverConfig {
	return transport.ReceiverConfig{
		MTU:           s.cfg.MTU,
		OnFrame:       s.cfg.OnFrame,
		OnTPDU:        s.cfg.OnTPDU,
		Repair:        s.cfg.Repair,
		ReapAfter:     s.cfg.ReapAfter,
		OverlapPolicy: s.cfg.OverlapPolicy,
	}
}

// establish builds and admits the connection for key. Called with
// key's shard locked. On admission refusal or setup failure it
// returns nil and the reason; the caller drops the chunks and fires
// any callback outside the lock.
func (s *Server) establish(sh *shard.Shard[*serverConn], key shard.Key, from netip.AddrPort) (*serverConn, error) {
	peer := net.UDPAddrFromAddrPort(netip.AddrPortFrom(from.Addr().Unmap(), from.Port()))
	c, err := sh.Establish(key, func() (*serverConn, error) {
		cfg := s.receiverConfig()
		if s.cfg.PerConnTelemetry {
			cfg.Tel = s.cfg.Telemetry.Sink(fmt.Sprintf("recv.%d@%s", key.CID, key.Addr))
		} else {
			cfg.Tel = s.shardSinks[s.eng.ShardIndex(key)]
		}
		// The out callback captures the ESTABLISHMENT address: control
		// always goes there, no matter who sent the datagram that
		// triggered it. The socket path recycles the datagram buffer
		// into the receiver's packer pool once the kernel has copied it.
		sc := &serverConn{peer: peer, cid: key.CID}
		out := func(d []byte) {
			_, _ = s.sock.WriteToUDP(d, peer)
			sc.r.Recycle(d)
		}
		if s.cfg.ControlOut != nil {
			// User callbacks may retain the datagram; no recycling.
			co := s.cfg.ControlOut
			out = func(d []byte) { co(d, peer) }
		}
		r, err := transport.NewReceiver(cfg, out)
		if err != nil {
			return nil, err
		}
		sc.r = r
		return sc, nil
	})
	if err != nil {
		if errors.Is(err, shard.ErrMaxConns) {
			s.telRefused.Inc()
		} else {
			// The config was validated in Serve; a failure here is an
			// invariant violation, not a droppable datagram: make it
			// loud instead of silently eating the peer's chunks.
			s.telSetupErr.Inc()
			log.Printf("core: invariant violation: receiver setup failed for conn %d@%s: %v", key.CID, key.Addr, err)
		}
		return nil, err
	}
	s.telEstablished.Inc()
	s.telLive.Set(int64(s.eng.Live()))
	return c, nil
}

// addrCacheMax bounds each read loop's source-address string cache;
// past it the cache resets rather than growing with spoofed sources.
const addrCacheMax = 4096

// addrKey formats a datagram source as the connection-table key —
// identical to what (*net.UDPAddr).String() reports for the same peer,
// so the scalar and batched ingestion paths key connections alike.
func addrKey(ap netip.AddrPort) string {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()).String()
}

func (s *Server) readLoop() {
	defer s.wg.Done()
	if s.cfg.RecvBatch <= 1 {
		s.scalarReadLoop()
		return
	}
	br := batch.NewReader(s.sock, s.cfg.RecvBatch, 65536)
	var dec packet.Packet
	cache := make(map[netip.AddrPort]string, 64)
	var backoff time.Duration
	for {
		if !br.Batched() {
			// The portable drain rewrites the deadline during Read;
			// restore the shutdown-poll cadence before each wait.
			_ = s.sock.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //lint:allow detrand socket read deadline: I/O pacing, not protocol state
		}
		// On the kernel path no deadline is armed at all: Shutdown
		// closes the socket, which wakes the blocked read with
		// net.ErrClosed. That keeps the steady wakeup free of the
		// per-wakeup timer reset the legacy loop pays per datagram.
		n, err := br.Read()
		if err != nil {
			if !s.recvErr(err, &backoff) {
				return
			}
			continue
		}
		backoff = 0
		for i := 0; i < n; i++ {
			s.injectScratch(br.Datagram(i), br.Addr(i), &dec, cache)
		}
	}
}

// scalarReadLoop is the legacy one-recvfrom-per-datagram path, kept
// under Config.RecvBatch=1 as the baseline experiment P10 measures
// batching against.
func (s *Server) scalarReadLoop() {
	buf := make([]byte, 65536)
	var backoff time.Duration
	for {
		_ = s.sock.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //lint:allow detrand socket read deadline: I/O pacing, not protocol state
		n, from, err := s.sock.ReadFromUDP(buf)
		if err != nil {
			if !s.recvErr(err, &backoff) {
				return
			}
			continue
		}
		backoff = 0
		s.Inject(buf[:n], from)
	}
}

// recvErr classifies a read-loop socket error. Deadline expiry is the
// done-channel poll cadence; a closed socket ends the loop; anything
// else is counted as recv_sock_err and backed off exponentially
// (capped, interruptible by shutdown) so a persistently failing socket
// cannot spin a reader at full speed. Returns false when the loop
// should exit.
func (s *Server) recvErr(err error, backoff *time.Duration) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		select {
		case <-s.done:
			return false
		default:
			return true
		}
	}
	if errors.Is(err, net.ErrClosed) {
		select {
		case <-s.done:
			// Shutdown closed the socket to wake this reader: a clean
			// exit, not a socket failure.
		default:
			s.telSockErr.Inc()
		}
		return false
	}
	s.telSockErr.Inc()
	if *backoff == 0 {
		*backoff = time.Millisecond
	} else if *backoff < 100*time.Millisecond {
		*backoff *= 2
	}
	t := time.NewTimer(*backoff)
	select {
	case <-s.done:
		t.Stop()
		return false
	case <-t.C:
		return true
	}
}

// Inject ingests one datagram as if it had arrived on the UDP socket
// from the given source — the in-process ("pipe") ingestion path.
// Safe for concurrent callers: each chunk is routed to its (C.ID,
// source) connection's shard, and only that shard's lock is taken.
// Experiment C1 and tests drive the sharded engine through Inject
// without socket I/O; Config.ControlOut captures the reverse path.
func (s *Server) Inject(datagram []byte, from *net.UDPAddr) {
	p, err := packet.Decode(datagram)
	if err != nil {
		return // not a chunk packet; ignore
	}
	s.telDatagrams.Inc()
	s.route(&p, from.String(), from.AddrPort())
}

// InjectBatch ingests a burst of datagrams sharing one decode scratch
// and source-address cache — the in-process twin of the batched read
// loop, for tests and experiments that drive the engine without socket
// I/O. froms[i] is the source of dgrams[i].
func (s *Server) InjectBatch(dgrams [][]byte, froms []netip.AddrPort) {
	var dec packet.Packet
	cache := make(map[netip.AddrPort]string, 8)
	for i := range dgrams {
		s.injectScratch(dgrams[i], froms[i], &dec, cache)
	}
}

// injectScratch is Inject with caller-owned decode scratch and
// source-address cache: the steady batched receive path re-uses both
// across every datagram of every burst, so ingestion of a known peer's
// datagram allocates nothing before the shard lock.
func (s *Server) injectScratch(datagram []byte, from netip.AddrPort, dec *packet.Packet, cache map[netip.AddrPort]string) {
	if packet.DecodeInto(datagram, dec) != nil {
		return // not a chunk packet; ignore
	}
	s.telDatagrams.Inc()
	addr, ok := cache[from]
	if !ok {
		addr = addrKey(from)
		if len(cache) >= addrCacheMax {
			clear(cache)
		}
		cache[from] = addr
	}
	s.route(dec, addr, from)
}

// connEvent defers a connection-lifecycle callback until the shard
// locks are released.
type connEvent struct {
	cid  uint32
	peer net.Addr
	fire func(cid uint32, peer net.Addr)
}

// route walks one decoded packet's chunks into their (C.ID, source)
// connections. addr is the precomputed connection-table key for from.
func (s *Server) route(p *packet.Packet, addr string, from netip.AddrPort) {
	var events []connEvent

	// Route each chunk to the (C.ID, source) connection. Packets are
	// usually single-connection, so handle runs of equal C.ID under
	// one shard lock acquisition.
	var droppedCID uint32
	dropped := false
	for i := 0; i < len(p.Chunks); {
		cid := p.Chunks[i].C.ID
		j := i + 1
		for j < len(p.Chunks) && p.Chunks[j].C.ID == cid {
			j++
		}
		if dropped && cid == droppedCID {
			i = j
			continue // connection torn down earlier in this packet
		}
		key := shard.Key{CID: cid, Addr: addr}
		sh := s.eng.Shard(key)
		sh.Lock()
		c, ok := sh.Get(key)
		if !ok {
			var err error
			if c, err = s.establish(sh, key, from); err != nil {
				sh.Unlock()
				if errors.Is(err, shard.ErrMaxConns) && s.cfg.OnConnRefused != nil {
					events = append(events, connEvent{cid: cid, peer: net.UDPAddrFromAddrPort(from), fire: s.cfg.OnConnRefused})
				}
				i = j
				continue
			}
		}
		sh.Touch(key)
		for ; i < j; i++ {
			if err := c.r.HandleChunk(&p.Chunks[i]); errors.Is(err, transport.ErrConnectionRejected) {
				// The vr.RejectConnection overlap policy tripped: tear
				// the connection down and drop the rest of the packet
				// for it. A later packet re-establishes fresh state.
				sh.Remove(key)
				s.rejected.Add(1)
				s.telRejected.Inc()
				s.telLive.Set(int64(s.eng.Live()))
				if s.cfg.OnConnRejected != nil {
					events = append(events, connEvent{cid: cid, peer: c.peer, fire: s.cfg.OnConnRejected})
				}
				droppedCID, dropped = cid, true
				i = j
				break
			}
		}
		if (!dropped || cid != droppedCID) && c.r.NeedsPoll() {
			sh.ArmPoll(key)
		}
		sh.Unlock()
	}
	for _, ev := range events {
		ev.fire(ev.cid, ev.peer)
	}
}

// tickLoop advances the shard engine once per PollEvery: each tick
// serves only the due timers (receiver polls, idle leases) from the
// shards' wheels, then fires expiry callbacks outside the locks.
func (s *Server) tickLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.PollEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			expired := s.eng.Tick()
			if len(expired) == 0 {
				continue
			}
			for _, e := range expired {
				s.expired.Add(1)
				s.telExpired.Inc()
				s.telRing.Record(telemetry.EvExpired, e.Val.cid, 0, 0, 0)
			}
			s.telLive.Set(int64(s.eng.Live()))
			if s.cfg.OnConnExpired != nil {
				for _, e := range expired {
					s.cfg.OnConnExpired(e.Val.cid, e.Val.peer)
				}
			}
		}
	}
}

// Addr returns the bound UDP address.
func (s *Server) Addr() net.Addr { return s.sock.LocalAddr() }

// ConnCount returns the number of live connections.
func (s *Server) ConnCount() int { return s.eng.Live() }

// Expired returns how many connections idle expiry has reaped.
func (s *Server) Expired() int { return int(s.expired.Load()) }

// RejectedConns returns how many connections the vr.RejectConnection
// overlap policy has torn down.
func (s *Server) RejectedConns() int { return int(s.rejected.Load()) }

// RefusedConns returns how many connection establishments admission
// control (Config.MaxConns) refused.
func (s *Server) RefusedConns() int { return s.eng.Refused() }

// Stream returns a copy of the application bytes placed so far on the
// primary connection.
func (s *Server) Stream() []byte {
	var out []byte
	s.eng.WithPrimary(func(c *serverConn) {
		out = append([]byte(nil), c.r.Stream()...)
	})
	return out
}

// StreamOf returns a copy of the stream of the connection established
// by cid from addr (the exact source "ip:port"), or nil.
func (s *Server) StreamOf(cid uint32, addr string) []byte {
	key := shard.Key{CID: cid, Addr: addr}
	sh := s.eng.Shard(key)
	sh.Lock()
	defer sh.Unlock()
	if c, ok := sh.Get(key); ok {
		return append([]byte(nil), c.r.Stream()...)
	}
	return nil
}

// VerifiedCount returns how many TPDUs verified OK on the primary
// connection.
func (s *Server) VerifiedCount() int {
	n := 0
	s.eng.WithPrimary(func(c *serverConn) { n = c.r.VerifiedCount() })
	return n
}

// Closed reports whether the close signal has arrived on the primary
// connection.
func (s *Server) Closed() bool {
	closed := false
	s.eng.WithPrimary(func(c *serverConn) { closed = c.r.Closed() })
	return closed
}

// Findings returns the error detection findings so far on the primary
// connection.
func (s *Server) Findings() []errdet.Finding {
	var out []errdet.Finding
	s.eng.WithPrimary(func(c *serverConn) { out = c.r.Findings() })
	return out
}

// Reaped returns how many stale incomplete TPDUs were dropped across
// all connections.
func (s *Server) Reaped() int {
	n := 0
	s.eng.Range(func(_ shard.Key, c *serverConn) { n += c.r.Reaped() })
	return n
}

// WaitClosed blocks until the close signal arrives and the primary
// stream has n bytes, or the timeout elapses.
func (s *Server) WaitClosed(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout) //lint:allow detrand test/CLI convenience wait; bounds wall time, not protocol behavior
	for time.Now().Before(deadline) {   //lint:allow detrand test/CLI convenience wait; bounds wall time, not protocol behavior
		ok := false
		s.eng.WithPrimary(func(c *serverConn) {
			ok = c.r.Closed() && len(c.r.Stream()) >= n
		})
		if ok {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("%w: stream %d of %d bytes", ErrTimeout, len(s.Stream()), n)
}

// Shutdown stops the server. It is idempotent and safe to call
// concurrently. The socket is closed before the goroutine join: a
// batched reader blocks with no deadline armed, and the close is what
// wakes it.
func (s *Server) Shutdown() {
	s.shutOnce.Do(func() { close(s.done) })
	_ = s.sock.Close()
	s.wg.Wait()
}
