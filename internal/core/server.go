package core

import (
	"fmt"
	"net"
	"sync"
	"time"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/packet"
	"chunks/internal/transport"
)

// A Server is the receiving end of a chunk connection over UDP. It
// places data immediately into its stream buffer, verifies each TPDU
// end-to-end, ACKs/NACKs back to the sender's source address, and
// delivers frames through the Config callbacks.
type Server struct {
	mu   sync.Mutex
	r    *transport.Receiver
	sock *net.UDPConn
	peer *net.UDPAddr
	done chan struct{}
	wg   sync.WaitGroup
}

// Serve starts a receiver on the given UDP address ("host:0" picks a
// free port).
func Serve(addr string, cfg Config) (*Server, error) {
	cfg.fill()
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	_ = sock.SetReadBuffer(8 << 20)
	_ = sock.SetWriteBuffer(4 << 20)
	srv := &Server{sock: sock, done: make(chan struct{})}
	r, err := transport.NewReceiver(transport.ReceiverConfig{
		MTU:     cfg.MTU,
		OnFrame: cfg.OnFrame,
		OnTPDU:  cfg.OnTPDU,
		Repair:  cfg.Repair,
	}, func(d []byte) {
		srv.sendControl(d)
	})
	if err != nil {
		_ = sock.Close()
		return nil, err
	}
	srv.r = r

	srv.wg.Add(2)
	go func() {
		defer srv.wg.Done()
		buf := make([]byte, 65536)
		for {
			_ = sock.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			n, from, err := sock.ReadFromUDP(buf)
			if err != nil {
				select {
				case <-srv.done:
					return
				default:
					continue
				}
			}
			srv.mu.Lock()
			srv.peer = from
			_ = srv.r.HandlePacket(buf[:n])
			srv.mu.Unlock()
		}
	}()
	go func() {
		defer srv.wg.Done()
		tick := time.NewTicker(cfg.PollEvery)
		defer tick.Stop()
		for {
			select {
			case <-srv.done:
				return
			case <-tick.C:
				srv.mu.Lock()
				srv.r.Poll()
				srv.mu.Unlock()
			}
		}
	}()
	return srv, nil
}

// sendControl is called with srv.mu held (from HandlePacket/Poll).
func (s *Server) sendControl(d []byte) {
	if s.peer == nil {
		return
	}
	_, _ = s.sock.WriteToUDP(d, s.peer)
}

// Addr returns the bound UDP address.
func (s *Server) Addr() net.Addr { return s.sock.LocalAddr() }

// Stream returns a copy of the application bytes placed so far.
func (s *Server) Stream() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.r.Stream()...)
}

// VerifiedCount returns how many TPDUs verified OK.
func (s *Server) VerifiedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.VerifiedCount()
}

// Closed reports whether the close signal has arrived.
func (s *Server) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Closed()
}

// Findings returns the error detection findings so far.
func (s *Server) Findings() []errdet.Finding {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Findings()
}

// WaitClosed blocks until the close signal arrives and the stream has
// n bytes, or the timeout elapses.
func (s *Server) WaitClosed(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		ok := s.r.Closed() && len(s.r.Stream()) >= n
		s.mu.Unlock()
		if ok {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("%w: stream %d of %d bytes", ErrTimeout, len(s.Stream()), n)
}

// Shutdown stops the server.
func (s *Server) Shutdown() {
	select {
	case <-s.done:
		return
	default:
		close(s.done)
	}
	s.wg.Wait()
	_ = s.sock.Close()
}

// decodePacketChunks unpacks one datagram into cloned chunks.
func decodePacketChunks(d []byte) ([]chunk.Chunk, error) {
	p, err := packet.Decode(d)
	if err != nil {
		return nil, err
	}
	out := make([]chunk.Chunk, len(p.Chunks))
	for i := range p.Chunks {
		out[i] = p.Chunks[i].Clone()
	}
	return out, nil
}
