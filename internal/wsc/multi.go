package wsc

import (
	"errors"

	"chunks/internal/gf"
)

// WSC-k generalization (extension): McAuley's weighted sum codes form
// a family; the paper uses k=2. A k-parity accumulator computes
//
//	P_j = Σ (α^j)^i · d_i     for j = 0..k-1
//
// which are Reed–Solomon syndromes over the locators α^i. Because a
// k×k Vandermonde matrix on distinct nonzero locators is nonsingular,
// any corruption touching at most k symbols yields a nonzero syndrome
// — detection of up to k symbol errors (minimum distance k+1) while
// keeping the full order-independence of the k=2 code. Higher k buys
// a longer guarantee for k 32-bit parities per block.

// MaxK bounds the parity count (beyond ~8 the per-symbol cost
// dominates any realistic use).
const MaxK = 8

// ErrK reports an unsupported parity count.
var ErrK = errors.New("wsc: parity count out of range")

// A MultiAccumulator incrementally builds the k parities of a block.
type MultiAccumulator struct {
	weights []uint32 // α^j for j = 0..k-1
	par     []uint32
}

// NewMulti returns an accumulator with k parities (2 <= k <= MaxK).
// NewMulti(2) is algebraically identical to Accumulator.
func NewMulti(k int) (*MultiAccumulator, error) {
	if k < 2 || k > MaxK {
		return nil, ErrK
	}
	m := &MultiAccumulator{
		weights: make([]uint32, k),
		par:     make([]uint32, k),
	}
	for j := 0; j < k; j++ {
		m.weights[j] = gf.Pow(gf.Alpha, uint64(j))
	}
	return m, nil
}

// K returns the parity count.
func (m *MultiAccumulator) K() int { return len(m.par) }

// Reset clears the accumulated parities.
func (m *MultiAccumulator) Reset() {
	for i := range m.par {
		m.par[i] = 0
	}
}

// Parities returns a copy of the current parity vector.
func (m *MultiAccumulator) Parities() []uint32 {
	return append([]uint32(nil), m.par...)
}

// Equal reports whether two parity vectors match.
func ParitiesEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AddRun accumulates a contiguous symbol run starting at position
// start, in any order relative to other runs.
func (m *MultiAccumulator) AddRun(start uint64, syms []uint32) error {
	if len(syms) == 0 {
		return nil
	}
	if start > MaxPosition || start+uint64(len(syms))-1 > MaxPosition {
		return ErrPosition
	}
	for j, w := range m.weights {
		// Horner with multiplier w = α^j, then scale by w^start.
		var acc uint32
		for i := len(syms) - 1; i >= 0; i-- {
			acc = gf.Mul(acc, w) ^ syms[i]
		}
		m.par[j] ^= gf.Mul(gf.Pow(w, start), acc)
	}
	return nil
}

// AddSymbol accumulates one symbol.
func (m *MultiAccumulator) AddSymbol(pos uint64, sym uint32) error {
	return m.AddRun(pos, []uint32{sym})
}

// Combine folds another accumulator of the same k into this one.
func (m *MultiAccumulator) Combine(other *MultiAccumulator) error {
	if len(m.par) != len(other.par) {
		return ErrK
	}
	for i := range m.par {
		m.par[i] ^= other.par[i]
	}
	return nil
}
