package wsc

import (
	"encoding/binary"
	"hash/crc32"
)

// Baseline error detection codes for the P5 experiment (Section 4,
// footnote 11): "The TCP checksum can be computed on disordered data,
// but has less powerful error detection properties than both CRC and
// WSC-2. A CRC cannot be computed on disordered data."
//
// CRC32 here stands in for the CRC family: its value depends on byte
// order, so a receiver must buffer and reorder before checksumming.
// InternetChecksum is the TCP/IP one's-complement sum: order-
// independent but blind to, e.g., swapped 16-bit words and balanced
// bit flips that WSC-2's weighted parity catches.

// CRC32 returns the IEEE CRC-32 of b. It is order-DEPENDENT: the same
// multiset of fragments in a different concatenation order yields a
// different value, so it cannot be accumulated over disordered chunks.
func CRC32(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// InternetChecksum returns the RFC 1071 one's-complement sum of b
// (without final inversion). It IS order-independent at 16-bit
// granularity — the TCP checksum property the paper's footnote cites —
// but detects strictly fewer error patterns than WSC-2.
func InternetChecksum(b []byte) uint16 {
	var sum uint32
	n := len(b) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return uint16(sum)
}

// InternetChecksumCombine folds the checksum of a fragment that starts
// at an even byte offset into an accumulated checksum; this is how TCP
// could checksum disordered even-aligned fragments.
func InternetChecksumCombine(acc, frag uint16) uint16 {
	sum := uint32(acc) + uint32(frag)
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return uint16(sum)
}
