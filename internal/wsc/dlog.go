package wsc

import (
	"sync"

	"chunks/internal/gf"
)

// Discrete logarithm base Alpha in GF(2^32)* via baby-step/giant-step.
// The group order is 2^32-1, so m = 2^16 baby steps suffice. The baby
// table costs 2^16 entries and is built lazily once; each query then
// performs at most 2^16 giant steps. This supports single-symbol error
// location (LocateSingleError) — a demonstration of WSC-2's power, not
// a datapath operation.

const dlogM = 1 << 16

var (
	dlogOnce  sync.Once
	babyTable map[uint32]uint32 // α^j -> j for j in [0, m)
	giantStep uint32            // α^(-m)
)

func dlogInit() {
	babyTable = make(map[uint32]uint32, dlogM)
	v := uint32(1)
	for j := uint32(0); j < dlogM; j++ {
		// First writer wins so the smallest exponent is recorded;
		// with a primitive alpha there are no collisions below the
		// group order anyway.
		if _, dup := babyTable[v]; !dup {
			babyTable[v] = j
		}
		v = gf.MulAlpha(v)
	}
	giantStep = gf.Inv(gf.Pow(gf.Alpha, dlogM))
}

// dlogAlpha returns e such that Alpha^e == x, and whether it exists
// (it does for every nonzero x since Alpha is primitive; x == 0 has no
// logarithm).
func dlogAlpha(x uint32) (uint64, bool) {
	if x == 0 {
		return 0, false
	}
	dlogOnce.Do(dlogInit)
	cur := x
	for i := uint64(0); i <= gf.Order/dlogM; i++ {
		if j, ok := babyTable[cur]; ok {
			return i*dlogM + uint64(j), true
		}
		cur = gf.Mul(cur, giantStep)
	}
	return 0, false
}
