package wsc_test

import (
	"fmt"

	"chunks/internal/wsc"
)

// Example demonstrates the property the whole paper leans on: the
// WSC-2 parity of a block is identical no matter what order its
// pieces are accumulated in.
func Example() {
	data := []uint32{10, 20, 30, 40, 50, 60}

	var inOrder wsc.Accumulator
	_ = inOrder.AddRun(0, data)

	var reversed wsc.Accumulator
	_ = reversed.AddRun(4, data[4:]) // tail first
	_ = reversed.AddRun(2, data[2:4])
	_ = reversed.AddRun(0, data[:2])

	fmt.Println("equal:", inOrder.Parity() == reversed.Parity())

	// A swap of two symbols preserves the plain sum (P0) but not the
	// position-weighted sum (P1) — the power a plain checksum lacks.
	swapped := []uint32{10, 30, 20, 40, 50, 60}
	var sw wsc.Accumulator
	_ = sw.AddRun(0, swapped)
	fmt.Println("P0 same:", sw.Parity().P0 == inOrder.Parity().P0,
		" P1 same:", sw.Parity().P1 == inOrder.Parity().P1)
	// Output:
	// equal: true
	// P0 same: true  P1 same: false
}
