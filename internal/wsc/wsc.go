// Package wsc implements WSC-2, the weighted sum code used by the
// paper's end-to-end error detection system (Section 4; [MCAU 93a]).
//
// A WSC-2 encoder consumes 32-bit data symbols d_i, each bound to a
// unique position i inside a code block, and produces two 32-bit parity
// symbols:
//
//	P0 = Σ d_i            (XOR-sum)
//	P1 = Σ α^i · d_i      (weighted sum, arithmetic in GF(2^32))
//
// Positions left unused are equivalent to encoding a zero symbol, so a
// sparse block is well defined — the property the TPDU invariant of
// Figure 5 exploits. Because GF addition is XOR (commutative and
// associative), symbols may be accumulated in ANY order: the receiver
// can checksum chunks as they arrive off a misordering network, which a
// CRC cannot do (see package errdet and the P5 experiment).
//
// The maximum usable position is MaxPosition (2^29 - 2 per the paper);
// the code's burst-detection power matches an equivalent 64-bit CRC for
// blocks within that bound.
package wsc

import (
	"encoding/binary"
	"errors"
	"runtime"
	"sync"

	"chunks/internal/gf"
)

// MaxPosition is the largest valid symbol position: the paper allows
// 0 <= i < 2^29 - 2.
const MaxPosition uint64 = 1<<29 - 2

// SymbolSize is the size in bytes of one code symbol.
const SymbolSize = 4

// ParitySize is the encoded size of a Parity value on the wire.
const ParitySize = 8

// ErrPosition reports a symbol position outside [0, MaxPosition].
var ErrPosition = errors.New("wsc: symbol position out of range")

// ErrShortBuffer reports a buffer too small to hold an encoded parity.
var ErrShortBuffer = errors.New("wsc: short buffer")

// Parity is the pair of WSC-2 parity symbols.
type Parity struct {
	P0 uint32 // unweighted XOR-sum
	P1 uint32 // α^i-weighted sum
}

// Zero reports whether the parity is the encoding of the empty block.
func (p Parity) Zero() bool { return p.P0 == 0 && p.P1 == 0 }

// Xor returns the symbol-wise sum of two parities. Because the code is
// linear, the parity of a union of disjoint symbol sets is the Xor of
// their parities — the algebra behind both incremental receive-side
// accumulation and duplicate cancellation.
func (p Parity) Xor(q Parity) Parity { return Parity{p.P0 ^ q.P0, p.P1 ^ q.P1} }

// Equal reports whether two parities match.
func (p Parity) Equal(q Parity) bool { return p == q }

// AppendBinary appends the 8-byte big-endian wire encoding.
func (p Parity) AppendBinary(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, p.P0)
	b = binary.BigEndian.AppendUint32(b, p.P1)
	return b
}

// DecodeParity decodes an 8-byte wire encoding.
func DecodeParity(b []byte) (Parity, error) {
	if len(b) < ParitySize {
		return Parity{}, ErrShortBuffer
	}
	return Parity{
		P0: binary.BigEndian.Uint32(b[0:4]),
		P1: binary.BigEndian.Uint32(b[4:8]),
	}, nil
}

// An Accumulator incrementally builds the parity of a code block. The
// zero value is ready to use. Symbols and symbol runs may be added in
// any order; adding the same symbol twice cancels it (characteristic-2
// arithmetic), which is why the error detection protocol must reject
// duplicates before accumulation (Section 3.3, "virtual reassembly").
type Accumulator struct {
	par Parity
}

// Reset returns the accumulator to the empty-block state.
func (a *Accumulator) Reset() { a.par = Parity{} }

// Parity returns the parity accumulated so far.
func (a *Accumulator) Parity() Parity { return a.par }

// AddSymbol accumulates one symbol at the given position.
func (a *Accumulator) AddSymbol(pos uint64, sym uint32) error {
	if pos > MaxPosition {
		return ErrPosition
	}
	a.par.P0 ^= sym
	a.par.P1 ^= gf.Mul(gf.AlphaPow(pos), sym)
	return nil
}

// AddRun accumulates a contiguous run of symbols beginning at position
// start. It costs one field exponentiation plus one Horner pass —
// O(len) cheap multiplications — regardless of start, which is what
// makes per-chunk incremental checksumming fast.
func (a *Accumulator) AddRun(start uint64, syms []uint32) error {
	if len(syms) == 0 {
		return nil
	}
	if start > MaxPosition || start+uint64(len(syms))-1 > MaxPosition {
		return ErrPosition
	}
	a.par.P0 ^= gf.Sum(syms)
	a.par.P1 ^= gf.DotAlpha(start, syms)
	return nil
}

// AddBytes accumulates a byte run starting at symbol position start.
// len(b) must be a multiple of SymbolSize; callers pad with zero bytes
// (a zero symbol is the encoding of an unused position, so padding is
// harmless). Bytes are interpreted big-endian, 4 per symbol.
//
// The run goes through the fast gf byte kernel (CLMUL/AVX2 or the
// portable shift-tree tables); runs of at least ShardBytes are split
// across goroutines when GOMAXPROCS allows, each shard encoded
// independently and folded in with the Combine algebra. Every path is
// bit-identical to the pinned scalar kernel.
//
//lint:hot
func (a *Accumulator) AddBytes(start uint64, b []byte) error {
	if len(b)%SymbolSize != 0 {
		return errors.New("wsc: byte run not a multiple of symbol size") //lint:allow hotalloc cold error path
	}
	n := len(b) / SymbolSize
	if n == 0 {
		return nil
	}
	if start > MaxPosition || start+uint64(n)-1 > MaxPosition {
		return ErrPosition
	}
	if len(b) >= ShardBytes {
		if shards := runtime.GOMAXPROCS(0); shards > 1 {
			a.addBytesSharded(start, b, min(shards, maxShards))
			return nil
		}
	}
	acc, sum := gf.HornerSumBytes(b)
	a.par.P0 ^= sum
	a.par.P1 ^= gf.Mul(gf.AlphaPow(start), acc)
	return nil
}

// ShardBytes is the run length from which AddBytes fans the kernel out
// across goroutines. Below it the spawn/join cost exceeds the win.
const ShardBytes = 64 << 10

// maxShards caps the fan-out; past a few shards the kernel is memory
// bound and more goroutines only add join latency.
const maxShards = 8

// addBytesSharded encodes shards of b concurrently, each into its own
// Accumulator, and folds them in with Combine. Symbol positions are
// absolute, so the fold order cannot affect the result (XOR is
// commutative) — the output is deterministic and identical to the
// serial path. Caller has validated positions and length.
func (a *Accumulator) addBytesSharded(start uint64, b []byte, shards int) {
	n := len(b) / SymbolSize
	per := (n + shards - 1) / shards
	accs := make([]Accumulator, shards) //lint:allow hotalloc parallel fan-out engages only at the sharding threshold, far above steady-state TPDU sizes
	var wg sync.WaitGroup               //lint:allow hotalloc parallel fan-out engages only at the sharding threshold, far above steady-state TPDU sizes
	for i := 0; i < shards; i++ {
		lo := i * per
		hi := min(lo+per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(acc *Accumulator, pos uint64, seg []byte) { //lint:allow hotalloc parallel fan-out engages only at the sharding threshold, far above steady-state TPDU sizes
			defer wg.Done()
			h, sum := gf.HornerSumBytes(seg)
			acc.par.P0 ^= sum
			acc.par.P1 ^= gf.Mul(gf.AlphaPow(pos), h)
		}(&accs[i], start+uint64(lo), b[lo*SymbolSize:hi*SymbolSize])
	}
	wg.Wait()
	for i := range accs {
		a.Combine(&accs[i])
	}
}

// Combine folds another accumulator's parity in (disjoint-set union).
func (a *Accumulator) Combine(other *Accumulator) { a.par = a.par.Xor(other.par) }

// Encode computes the parity of a dense block of symbols placed at
// positions 0..len(syms)-1. Convenience for tests and one-shot callers.
func Encode(syms []uint32) (Parity, error) {
	var a Accumulator
	if err := a.AddRun(0, syms); err != nil {
		return Parity{}, err
	}
	return a.Parity(), nil
}

// EncodeBytes computes the parity of a dense byte block at symbol
// position 0. len(b) must be a multiple of SymbolSize.
//
//lint:hot
func EncodeBytes(b []byte) (Parity, error) {
	var a Accumulator
	if err := a.AddBytes(0, b); err != nil {
		return Parity{}, err
	}
	return a.Parity(), nil
}

// EncodeBytesScalar computes the same parity through the pinned scalar
// kernel — the original one-MulAlpha-per-symbol loop. It is the
// reference the fast kernels are fuzzed against and the baseline
// column of the P9 experiment.
func EncodeBytesScalar(b []byte) (Parity, error) {
	if len(b)%SymbolSize != 0 {
		return Parity{}, errors.New("wsc: byte run not a multiple of symbol size")
	}
	if n := uint64(len(b) / SymbolSize); n > 0 && n-1 > MaxPosition {
		return Parity{}, ErrPosition
	}
	h, sum := gf.HornerSumBytesScalar(b)
	return Parity{P0: sum, P1: h}, nil
}

// EncodeBytesTable computes the same parity through the portable
// shift-tree table kernel, bypassing both the SIMD kernel and the
// sharded path (the P9 "table" column).
func EncodeBytesTable(b []byte) (Parity, error) {
	if len(b)%SymbolSize != 0 {
		return Parity{}, errors.New("wsc: byte run not a multiple of symbol size")
	}
	if n := uint64(len(b) / SymbolSize); n > 0 && n-1 > MaxPosition {
		return Parity{}, ErrPosition
	}
	h, sum := gf.HornerSumBytesTable(b)
	return Parity{P0: sum, P1: h}, nil
}

// EncodeBytesParallel computes the same parity with a forced shard
// fan-out, regardless of run length or GOMAXPROCS (the P9 "sharded"
// column; AddBytes applies the same split automatically past
// ShardBytes). shards < 1 is treated as 1.
func EncodeBytesParallel(b []byte, shards int) (Parity, error) {
	if len(b)%SymbolSize != 0 {
		return Parity{}, errors.New("wsc: byte run not a multiple of symbol size")
	}
	n := len(b) / SymbolSize
	if n > 0 && uint64(n-1) > MaxPosition {
		return Parity{}, ErrPosition
	}
	var a Accumulator
	if shards < 2 || n < shards {
		if err := a.AddBytes(0, b); err != nil {
			return Parity{}, err
		}
		return a.Parity(), nil
	}
	a.addBytesSharded(0, b, shards)
	return a.Parity(), nil
}

// Verify reports whether the accumulated parity of received data
// matches the transmitted parity.
func Verify(accumulated, transmitted Parity) bool { return accumulated.Equal(transmitted) }

// LocateSingleError solves for the position and value of a single
// corrupted symbol given the syndrome (received parity XOR recomputed
// parity). WSC-2, like a distance-3 code, can correct one symbol error:
//
//	S0 = e          (the error value)
//	S1 = α^i · e    (so i = log_α(S1 / S0))
//
// It returns ok=false when the syndrome is zero (no error) or
// inconsistent with a single-symbol error (S0 == 0 with S1 != 0).
// Locating costs a discrete log, implemented by baby-step/giant-step in
// dlog.go; it exists to demonstrate the code's power, not for the fast
// path.
func LocateSingleError(syndrome Parity) (pos uint64, value uint32, ok bool) {
	if syndrome.Zero() {
		return 0, 0, false
	}
	if syndrome.P0 == 0 {
		// A single error would set both parities.
		return 0, 0, false
	}
	ratio := gf.Div(syndrome.P1, syndrome.P0)
	p, found := dlogAlpha(ratio)
	if !found || p > MaxPosition {
		return 0, 0, false
	}
	return p, syndrome.P0, true
}
