package wsc

import (
	"math/rand"
	"testing"
)

func TestNewMultiBounds(t *testing.T) {
	if _, err := NewMulti(1); err != ErrK {
		t.Fatal("k=1 must be rejected")
	}
	if _, err := NewMulti(MaxK + 1); err != ErrK {
		t.Fatal("k too large must be rejected")
	}
	m, err := NewMulti(3)
	if err != nil || m.K() != 3 {
		t.Fatalf("NewMulti(3): %v", err)
	}
}

// TestMultiK2MatchesAccumulator: WSC-2 is the k=2 member of the
// family; both implementations must agree symbol for symbol.
func TestMultiK2MatchesAccumulator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 200)
	for i := range syms {
		syms[i] = rng.Uint32()
	}
	var a Accumulator
	m, _ := NewMulti(2)
	if err := a.AddRun(100, syms); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRun(100, syms); err != nil {
		t.Fatal(err)
	}
	p := m.Parities()
	if p[0] != a.Parity().P0 || p[1] != a.Parity().P1 {
		t.Fatalf("k=2 multi {%#x %#x} != Accumulator %+v", p[0], p[1], a.Parity())
	}
}

func TestMultiOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	syms := make([]uint32, 120)
	for i := range syms {
		syms[i] = rng.Uint32()
	}
	whole, _ := NewMulti(4)
	if err := whole.AddRun(0, syms); err != nil {
		t.Fatal(err)
	}
	pieces, _ := NewMulti(4)
	order := rng.Perm(12)
	for _, p := range order {
		lo := p * 10
		if err := pieces.AddRun(uint64(lo), syms[lo:lo+10]); err != nil {
			t.Fatal(err)
		}
	}
	if !ParitiesEqual(whole.Parities(), pieces.Parities()) {
		t.Fatal("disordered accumulation must match")
	}
}

// TestMultiDetectsKErrors: a k-parity code must detect EVERY
// corruption touching at most k symbols. Randomized over positions
// and values for k = 2, 3, 4.
func TestMultiDetectsKErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	syms := make([]uint32, 300)
	for i := range syms {
		syms[i] = rng.Uint32()
	}
	for k := 2; k <= 4; k++ {
		ref, _ := NewMulti(k)
		if err := ref.AddRun(0, syms); err != nil {
			t.Fatal(err)
		}
		want := ref.Parities()
		for trial := 0; trial < 300; trial++ {
			nErr := 1 + rng.Intn(k)
			positions := rng.Perm(len(syms))[:nErr]
			for _, p := range positions {
				syms[p] ^= 1 + rng.Uint32()
				if syms[p] == 0 {
					syms[p] = 1
				}
			}
			got, _ := NewMulti(k)
			_ = got.AddRun(0, syms)
			if ParitiesEqual(got.Parities(), want) {
				t.Fatalf("k=%d: %d-symbol corruption undetected", k, nErr)
			}
			// Restore via a fresh copy.
			for i := range syms {
				syms[i] = 0
			}
			r2 := rand.New(rand.NewSource(3))
			_ = r2 // regenerate deterministically below
			rngRestore := rand.New(rand.NewSource(3))
			for i := range syms {
				syms[i] = rngRestore.Uint32()
			}
		}
	}
}

func TestMultiCombineReset(t *testing.T) {
	a, _ := NewMulti(3)
	b, _ := NewMulti(3)
	_ = a.AddRun(0, []uint32{1, 2, 3})
	_ = b.AddRun(3, []uint32{4, 5})
	whole, _ := NewMulti(3)
	_ = whole.AddRun(0, []uint32{1, 2, 3, 4, 5})
	if err := a.Combine(b); err != nil {
		t.Fatal(err)
	}
	if !ParitiesEqual(a.Parities(), whole.Parities()) {
		t.Fatal("Combine must union blocks")
	}
	a.Reset()
	for _, p := range a.Parities() {
		if p != 0 {
			t.Fatal("Reset must zero parities")
		}
	}
	c, _ := NewMulti(4)
	if err := a.Combine(c); err != ErrK {
		t.Fatal("mismatched k must be rejected")
	}
}

func TestMultiBounds(t *testing.T) {
	m, _ := NewMulti(2)
	if err := m.AddRun(MaxPosition, []uint32{1, 2}); err != ErrPosition {
		t.Fatalf("overflow: %v", err)
	}
	if err := m.AddRun(0, nil); err != nil {
		t.Fatal("empty run is a no-op")
	}
	if err := m.AddSymbol(5, 42); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMultiK4_64K(b *testing.B) {
	syms := make([]uint32, 16384)
	for i := range syms {
		syms[i] = uint32(i) * 2654435761
	}
	b.SetBytes(int64(len(syms) * 4))
	for i := 0; i < b.N; i++ {
		m, _ := NewMulti(4)
		_ = m.AddRun(0, syms)
	}
}
