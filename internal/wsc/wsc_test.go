package wsc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chunks/internal/gf"
)

func TestEmptyParity(t *testing.T) {
	var a Accumulator
	if !a.Parity().Zero() {
		t.Fatal("zero-value accumulator must encode the empty block")
	}
	p, err := Encode(nil)
	if err != nil || !p.Zero() {
		t.Fatalf("Encode(nil) = %+v, %v", p, err)
	}
}

func TestAddSymbolMatchesDefinition(t *testing.T) {
	var a Accumulator
	syms := []uint32{0xDEAD, 0xBEEF, 0, 7}
	for i, s := range syms {
		if err := a.AddSymbol(uint64(i), s); err != nil {
			t.Fatal(err)
		}
	}
	wantP0 := gf.Sum(syms)
	var wantP1 uint32
	for i, s := range syms {
		wantP1 ^= gf.Mul(gf.AlphaPow(uint64(i)), s)
	}
	if got := a.Parity(); got.P0 != wantP0 || got.P1 != wantP1 {
		t.Fatalf("got %+v want {%#x %#x}", got, wantP0, wantP1)
	}
}

func TestRunEqualsSymbols(t *testing.T) {
	f := func(syms []uint32, start uint16) bool {
		var byRun, bySym Accumulator
		if err := byRun.AddRun(uint64(start), syms); err != nil {
			return false
		}
		for i, s := range syms {
			if err := bySym.AddSymbol(uint64(start)+uint64(i), s); err != nil {
				return false
			}
		}
		return byRun.Parity() == bySym.Parity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOrderIndependence is the paper's central claim about WSC-2: the
// parity of a block is the same no matter the order in which its
// pieces are accumulated.
func TestOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	syms := make([]uint32, 257)
	for i := range syms {
		syms[i] = rng.Uint32()
	}
	want, err := Encode(syms)
	if err != nil {
		t.Fatal(err)
	}

	// Split into runs, shuffle, accumulate.
	type run struct {
		start uint64
		data  []uint32
	}
	var runs []run
	for i := 0; i < len(syms); {
		n := 1 + rng.Intn(40)
		if i+n > len(syms) {
			n = len(syms) - i
		}
		runs = append(runs, run{uint64(i), syms[i : i+n]})
		i += n
	}
	rng.Shuffle(len(runs), func(i, j int) { runs[i], runs[j] = runs[j], runs[i] })

	var a Accumulator
	for _, r := range runs {
		if err := a.AddRun(r.start, r.data); err != nil {
			t.Fatal(err)
		}
	}
	if a.Parity() != want {
		t.Fatalf("disordered parity %+v != in-order parity %+v", a.Parity(), want)
	}
}

// TestDuplicateCancels documents why virtual reassembly must reject
// duplicates before accumulation: adding a symbol twice removes it.
func TestDuplicateCancels(t *testing.T) {
	var a Accumulator
	_ = a.AddSymbol(3, 0xABCD)
	_ = a.AddSymbol(3, 0xABCD)
	if !a.Parity().Zero() {
		t.Fatal("duplicate symbol must cancel in characteristic 2")
	}
}

func TestPositionBounds(t *testing.T) {
	var a Accumulator
	if err := a.AddSymbol(MaxPosition, 1); err != nil {
		t.Fatalf("MaxPosition must be valid: %v", err)
	}
	if err := a.AddSymbol(MaxPosition+1, 1); err != ErrPosition {
		t.Fatalf("want ErrPosition, got %v", err)
	}
	if err := a.AddRun(MaxPosition, []uint32{1, 2}); err != ErrPosition {
		t.Fatalf("run overflowing MaxPosition: want ErrPosition, got %v", err)
	}
}

func TestAddBytes(t *testing.T) {
	b := []byte{0, 0, 0, 1, 0, 0, 0, 2, 0xDE, 0xAD, 0xBE, 0xEF}
	var byBytes, bySyms Accumulator
	if err := byBytes.AddBytes(10, b); err != nil {
		t.Fatal(err)
	}
	for i, s := range []uint32{1, 2, 0xDEADBEEF} {
		_ = bySyms.AddSymbol(10+uint64(i), s)
	}
	if byBytes.Parity() != bySyms.Parity() {
		t.Fatalf("AddBytes %+v != AddSymbol %+v", byBytes.Parity(), bySyms.Parity())
	}
	if err := byBytes.AddBytes(0, []byte{1, 2, 3}); err == nil {
		t.Fatal("non-multiple-of-4 byte run must error")
	}
}

func TestZeroPaddingIsNeutral(t *testing.T) {
	// "the i values left unused are equivalent to encoding a symbol of
	// zero": appending zero symbols must not change the parity.
	p1, _ := Encode([]uint32{9, 8, 7})
	p2, _ := Encode([]uint32{9, 8, 7, 0, 0, 0, 0})
	if p1 != p2 {
		t.Fatalf("zero padding changed parity: %+v vs %+v", p1, p2)
	}
}

func TestCombine(t *testing.T) {
	syms := []uint32{1, 2, 3, 4, 5, 6}
	var whole, left, right Accumulator
	_ = whole.AddRun(0, syms)
	_ = left.AddRun(0, syms[:2])
	_ = right.AddRun(2, syms[2:])
	left.Combine(&right)
	if left.Parity() != whole.Parity() {
		t.Fatal("Combine must union disjoint blocks")
	}
}

func TestParityWire(t *testing.T) {
	p := Parity{P0: 0x01020304, P1: 0xAABBCCDD}
	b := p.AppendBinary(nil)
	if len(b) != ParitySize {
		t.Fatalf("encoded size %d", len(b))
	}
	q, err := DecodeParity(b)
	if err != nil || q != p {
		t.Fatalf("round trip: %+v, %v", q, err)
	}
	if _, err := DecodeParity(b[:7]); err != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
}

func TestDetectsSingleSymbolError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	syms := make([]uint32, 100)
	for i := range syms {
		syms[i] = rng.Uint32()
	}
	want, _ := Encode(syms)
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(syms))
		old := syms[i]
		syms[i] ^= 1 + rng.Uint32()%0xFFFFFFFF
		if syms[i] == old {
			syms[i] = old ^ 1
		}
		got, _ := Encode(syms)
		if got == want {
			t.Fatalf("undetected single-symbol error at %d", i)
		}
		syms[i] = old
	}
}

// TestDetectsSwappedSymbols: swapping two unequal symbols preserves P0
// but not P1 — the weighted parity is what gives WSC-2 its edge over a
// plain sum (and over the Internet checksum, which misses word swaps).
func TestDetectsSwappedSymbols(t *testing.T) {
	syms := []uint32{10, 20, 30, 40}
	want, _ := Encode(syms)
	syms[1], syms[2] = syms[2], syms[1]
	got, _ := Encode(syms)
	if got.P0 != want.P0 {
		t.Fatal("swap must preserve P0")
	}
	if got.P1 == want.P1 {
		t.Fatal("swap must be caught by P1")
	}
}

func TestLocateSingleError(t *testing.T) {
	syms := make([]uint32, 50)
	for i := range syms {
		syms[i] = uint32(i * 2654435761)
	}
	want, _ := Encode(syms)
	const errPos, errVal = 37, 0x5A5A5A5A
	syms[errPos] ^= errVal
	got, _ := Encode(syms)
	pos, val, ok := LocateSingleError(got.Xor(want))
	if !ok || pos != errPos || val != errVal {
		t.Fatalf("located (%d, %#x, %v), want (%d, %#x, true)", pos, val, ok, errPos, errVal)
	}
}

func TestLocateSingleErrorEdges(t *testing.T) {
	if _, _, ok := LocateSingleError(Parity{}); ok {
		t.Fatal("zero syndrome must not locate")
	}
	if _, _, ok := LocateSingleError(Parity{P0: 0, P1: 5}); ok {
		t.Fatal("P0=0,P1!=0 is inconsistent with a single error")
	}
}

func TestCRCOrderDependent(t *testing.T) {
	a, b := []byte("first-fragment!!"), []byte("second-fragment!")
	ab := CRC32(append(append([]byte{}, a...), b...))
	ba := CRC32(append(append([]byte{}, b...), a...))
	if ab == ba {
		t.Fatal("CRC32 of reordered fragments should differ (order dependence)")
	}
}

func TestInternetChecksumOrderIndependent(t *testing.T) {
	a, b := []byte("first-fragment!!"), []byte("second-fragment!")
	ab := InternetChecksum(append(append([]byte{}, a...), b...))
	combined := InternetChecksumCombine(InternetChecksum(a), InternetChecksum(b))
	if ab != combined {
		t.Fatalf("internet checksum must combine over even-aligned fragments: %#x vs %#x", ab, combined)
	}
}

// TestInternetChecksumMissesSwap demonstrates the weakness footnote 11
// cites: the Internet checksum cannot see 16-bit word transpositions.
func TestInternetChecksumMissesSwap(t *testing.T) {
	orig := []byte{0x12, 0x34, 0xAB, 0xCD}
	swap := []byte{0xAB, 0xCD, 0x12, 0x34}
	if InternetChecksum(orig) != InternetChecksum(swap) {
		t.Fatal("expected the Internet checksum to miss the word swap")
	}
	p1, _ := EncodeBytes(orig)
	p2, _ := EncodeBytes(swap)
	if p1 == p2 {
		t.Fatal("WSC-2 must catch the word swap")
	}
}

func TestInternetChecksumOddLength(t *testing.T) {
	// Odd-length buffers are padded with a zero byte per RFC 1071.
	if InternetChecksum([]byte{0xFF}) != 0xFF00 {
		t.Fatalf("odd-length checksum = %#x", InternetChecksum([]byte{0xFF}))
	}
}

func TestDlogRoundTrip(t *testing.T) {
	for _, e := range []uint64{0, 1, 2, 65535, 65536, 1 << 20, MaxPosition} {
		x := gf.AlphaPow(e)
		got, ok := dlogAlpha(x)
		if !ok || got != e {
			t.Fatalf("dlog(α^%d) = (%d, %v)", e, got, ok)
		}
	}
	if _, ok := dlogAlpha(0); ok {
		t.Fatal("dlog(0) must fail")
	}
}

func BenchmarkAccumulate64K(b *testing.B) {
	buf := make([]byte, 64*1024)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	var a Accumulator
	for i := 0; i < b.N; i++ {
		a.Reset()
		_ = a.AddBytes(0, buf)
	}
}

func BenchmarkCRC32_64K(b *testing.B) {
	buf := make([]byte, 64*1024)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		_ = CRC32(buf)
	}
}

func BenchmarkInternetChecksum64K(b *testing.B) {
	buf := make([]byte, 64*1024)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		_ = InternetChecksum(buf)
	}
}
