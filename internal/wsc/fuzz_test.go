package wsc

import (
	"bytes"
	"math/rand"
	"testing"

	"chunks/internal/gf"
)

// FuzzWSCKernels is the differential proof that every fast checksum
// path — the dispatching kernel (CLMUL/AVX2 where present), the
// portable shift-tree tables, and the goroutine-sharded fold — is
// bit-identical to the pinned scalar kernel, for arbitrary byte runs
// at arbitrary positions and for arbitrary run splits.
func FuzzWSCKernels(f *testing.F) {
	f.Add(uint64(0), uint64(0), []byte{})
	f.Add(uint64(0), uint64(1), []byte("0123"))
	f.Add(uint64(1), uint64(2), bytes.Repeat([]byte{0xFF}, 128))
	f.Add(uint64(16384), uint64(3), bytes.Repeat([]byte("chunk"), 64))
	f.Add(MaxPosition-64, uint64(4), bytes.Repeat([]byte{0xA5, 0x5A}, 130))
	f.Add(uint64(509), uint64(5), bytes.Repeat([]byte("weighted sum code "), 40))
	f.Fuzz(func(t *testing.T, start, splitSeed uint64, data []byte) {
		data = data[: len(data)&^3 : len(data)&^3]
		n := uint64(len(data) / SymbolSize)
		start %= MaxPosition + 1
		if n > 0 && start+n-1 > MaxPosition {
			start = MaxPosition - (n - 1) // keep the run in range
		}

		// Reference: scalar Horner, scaled by the scalar AlphaPow.
		h, sum := gf.HornerSumBytesScalar(data)
		want := Parity{P0: sum, P1: gf.Mul(gf.AlphaPowScalar(start), h)}

		var a Accumulator
		if err := a.AddBytes(start, data); err != nil {
			t.Fatalf("AddBytes(%d, %d bytes): %v", start, len(data), err)
		}
		if got := a.Parity(); got != want {
			t.Fatalf("AddBytes kernel mismatch: got %+v want %+v", got, want)
		}

		// Portable table kernel, directly.
		th, tsum := gf.HornerSumBytesTable(data)
		if th != h || tsum != sum {
			t.Fatalf("table kernel mismatch: got (%#x,%#x) want (%#x,%#x)", th, tsum, h, sum)
		}

		// Forced shard fan-out at position 0.
		shards := 2 + int(splitSeed%7)
		want0 := Parity{P0: sum, P1: h}
		if got, err := EncodeBytesParallel(data, shards); err != nil || got != want0 {
			t.Fatalf("EncodeBytesParallel(%d shards) = %+v, %v; want %+v", shards, got, err, want0)
		}

		// Split the run at random symbol boundaries and accumulate the
		// pieces in a shuffled order: the incremental path must land on
		// the same parity.
		if n > 1 {
			rng := rand.New(rand.NewSource(int64(splitSeed)))
			type run struct {
				pos uint64
				b   []byte
			}
			var runs []run
			for lo := uint64(0); lo < n; {
				hi := lo + 1 + uint64(rng.Intn(int(n-lo)))
				runs = append(runs, run{start + lo, data[lo*SymbolSize : hi*SymbolSize]})
				lo = hi
			}
			rng.Shuffle(len(runs), func(i, j int) { runs[i], runs[j] = runs[j], runs[i] })
			var inc Accumulator
			for _, r := range runs {
				if err := inc.AddBytes(r.pos, r.b); err != nil {
					t.Fatalf("AddBytes(%d, %d bytes): %v", r.pos, len(r.b), err)
				}
			}
			if got := inc.Parity(); got != want {
				t.Fatalf("split/%d-run accumulation mismatch: got %+v want %+v", len(runs), got, want)
			}
		}
	})
}
