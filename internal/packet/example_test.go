package packet_test

import (
	"fmt"

	"chunks/internal/chunk"
	"chunks/internal/packet"
)

// Example shows packets as envelopes: pack chunks into MTU-bounded
// datagrams (splitting oversize chunks at element boundaries), move
// them to a network with a smaller MTU, and verify the repacked
// contents reassemble to the originals.
func Example() {
	big := chunk.Chunk{
		Type: chunk.TypeData, Size: 4, Len: 200,
		C: chunk.Tuple{ID: 1}, T: chunk.Tuple{ID: 9, ST: true}, X: chunk.Tuple{ID: 1},
		Payload: make([]byte, 800),
	}
	src := packet.Packer{MTU: 512}
	pkts, _ := src.Pack([]chunk.Chunk{big})
	fmt.Println("packets at MTU 512:", len(pkts))

	small, _ := packet.Repack(pkts, 128, packet.Combine)
	fmt.Println("packets at MTU 128:", len(small))

	var chs []chunk.Chunk
	for _, p := range small {
		chs = append(chs, p.Chunks...)
	}
	merged := chunk.MergeAll(chs)
	fmt.Println("one-step reassembly:", len(merged) == 1 && merged[0].Equal(&big))
	// Output:
	// packets at MTU 512: 2
	// packets at MTU 128: 11
	// one-step reassembly: true
}
