package packet

import "sync"

// A BufferPool recycles datagram buffers between sends so a steady
// send → transmit → recycle cycle allocates nothing. It is safe for
// concurrent use.
//
// The pool keeps the slice headers of returned buffers alive in a
// second sync.Pool so that Put itself does not allocate a header: a
// buffer's header object round-trips between the two pools instead of
// being re-boxed on every call.
type BufferPool struct {
	bufs  sync.Pool // *poolBuf with a live buffer
	spare sync.Pool // *poolBuf with no buffer (header recycling)
}

type poolBuf struct{ b []byte }

// Get returns a zero-length buffer with at least capHint capacity,
// reusing a recycled buffer when one is available. A nil pool
// allocates fresh.
func (bp *BufferPool) Get(capHint int) []byte {
	if bp != nil {
		if w, _ := bp.bufs.Get().(*poolBuf); w != nil {
			b := w.b
			w.b = nil
			bp.spare.Put(w)
			if cap(b) >= capHint {
				return b[:0] //lint:allow poolsafe Get IS the ownership transfer of this allocator API; Put recycles
			}
		}
	}
	return make([]byte, 0, capHint) //lint:allow hotalloc pool miss: the steady state recycles buffers, a miss allocates the replacement
}

// Put returns a buffer to the pool. The caller must not touch b again.
// Nil pools and zero-capacity buffers are ignored.
func (bp *BufferPool) Put(b []byte) {
	if bp == nil || cap(b) == 0 {
		return
	}
	w, _ := bp.spare.Get().(*poolBuf)
	if w == nil {
		w = new(poolBuf) //lint:allow hotalloc pool miss: wrapper nodes are recycled alongside the buffers they carry
	}
	w.b = b
	bp.bufs.Put(w)
}
