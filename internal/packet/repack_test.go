package packet

import (
	"testing"

	"chunks/internal/chunk"
	"chunks/internal/wsc"
)

// TestFigure3SplitAndPack (experiment F3) walks the exact scenario of
// Figure 3: the TPDU-Q data chunk of Figure 2 (LEN=7, C.SN=36, T.SN=0,
// X.SN=24, T.ST=1) is split into two chunks — (SN 36/0/24, LEN 4, no
// ST) and (SN 40/4/28, LEN 3, T.ST=1) — and the second is packed
// together with the TPDU's ED control chunk into one packet.
func TestFigure3SplitAndPack(t *testing.T) {
	data := chunk.Chunk{
		Type: chunk.TypeData, Size: 1, Len: 7,
		C:       chunk.Tuple{ID: 0xA, SN: 36},
		T:       chunk.Tuple{ID: 0xF1, SN: 0, ST: true},
		X:       chunk.Tuple{ID: 0xC, SN: 24},
		Payload: []byte{1, 2, 3, 4, 5, 6, 7},
	}
	first, second, err := data.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	if first.Len != 4 || first.C.SN != 36 || first.T.SN != 0 || first.X.SN != 24 {
		t.Fatalf("first split chunk: %v", &first)
	}
	if first.C.ST || first.T.ST || first.X.ST {
		t.Fatal("first split chunk must have no ST bits (Figure 3: ST 000)")
	}
	if second.Len != 3 || second.C.SN != 40 || second.T.SN != 4 || second.X.SN != 28 {
		t.Fatalf("second split chunk: %v (Figure 3 says SN 40 4 28)", &second)
	}
	if second.C.ST || !second.T.ST || second.X.ST {
		t.Fatal("second split chunk ST must be 010 (Figure 3)")
	}

	// The ED chunk carries the TPDU's WSC-2 parity and shares the
	// TPDU identity (C.ID=A, T.ID=Q, TYPE=ED).
	par, _ := wsc.EncodeBytes([]byte{0, 0, 0, 42})
	ed := chunk.Chunk{
		Type: chunk.TypeED, Size: wsc.ParitySize, Len: 1,
		C:       chunk.Tuple{ID: 0xA, SN: 36},
		T:       chunk.Tuple{ID: 0xF1, SN: 0},
		X:       chunk.Tuple{ID: 0xC, SN: 24},
		Payload: par.AppendBinary(nil),
	}

	// Packet 1: first data chunk. Packet 2: second data chunk + ED.
	p1 := Packet{Chunks: []chunk.Chunk{first}}
	p2 := Packet{Chunks: []chunk.Chunk{second, ed}}
	for i, p := range []Packet{p1, p2} {
		b, err := p.AppendTo(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("packet %d: %v", i+1, err)
		}
		if len(got.Chunks) != len(p.Chunks) {
			t.Fatalf("packet %d decoded %d chunks", i+1, len(got.Chunks))
		}
	}

	// "The chunks are removed from the packet and processed
	// separately at the receiver": reassembling only the data chunks
	// recovers the original TPDU chunk.
	merged := chunk.MergeAll([]chunk.Chunk{second, first})
	if len(merged) != 1 || !merged[0].Equal(&data) {
		t.Fatal("receiver-side reassembly must recover the Figure 2 chunk")
	}
}

// TestFigure4Internetworking (experiment F4) drives chunks through the
// MTU changes of Figure 4: large packets fragmented into small ones,
// then moved back to a large-MTU network under each of the three
// methods. Whatever the gateway does must be invisible to the
// receiver.
func TestFigure4Internetworking(t *testing.T) {
	var chs []chunk.Chunk
	csn := uint64(0)
	for i := 0; i < 4; i++ {
		c := dataChunk(csn, 0, csn, 300, true)
		c.T.ID = uint32(i)
		chs = append(chs, c)
		csn += 300
	}
	want := chunk.MergeAll(chs)

	// Source network: MTU 512.
	src := Packer{MTU: 512}
	large, err := src.Pack(chs)
	if err != nil {
		t.Fatal(err)
	}

	// Transit network: MTU 128 — every chunk gets fragmented.
	small, err := Repack(large, 128, Combine)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range small {
		if p.EncodedLen() > 128 {
			t.Fatal("transit packet exceeds MTU")
		}
	}

	// Destination network: MTU 1024, all three Figure 4 methods.
	for _, s := range []Strategy{OnePerPacket, Combine, Reassemble} {
		out, err := Repack(small, 1024, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		var got []chunk.Chunk
		for _, p := range out {
			got = append(got, p.Chunks...)
		}
		merged := chunk.MergeAll(got)
		if len(merged) != len(want) {
			t.Fatalf("%v: %d merged chunks, want %d", s, len(merged), len(want))
		}
		for i := range merged {
			if !merged[i].Equal(&want[i]) {
				t.Fatalf("%v: chunk %d differs after gateway transit", s, i)
			}
		}
	}
}

// TestRepackEfficiencyOrdering verifies the paper's qualitative
// ranking: reassembly ≤ combining ≤ one-per-packet in total wire
// bytes, with combining "almost as efficient as chunk reassembly".
func TestRepackEfficiencyOrdering(t *testing.T) {
	var chs []chunk.Chunk
	for i := 0; i < 8; i++ {
		chs = append(chs, dataChunk(uint64(i*50), uint64(i*50), uint64(i*50), 50, false))
	}
	small := Packer{MTU: 128}
	smallPkts, err := small.Pack(chs)
	if err != nil {
		t.Fatal(err)
	}

	wireOf := func(s Strategy) int {
		out, err := Repack(smallPkts, 2048, s)
		if err != nil {
			t.Fatal(err)
		}
		wire, _, payload := Overhead(out)
		if payload != 8*50 {
			t.Fatalf("%v lost payload: %d", s, payload)
		}
		return wire
	}

	one, comb, reasm := wireOf(OnePerPacket), wireOf(Combine), wireOf(Reassemble)
	if !(reasm <= comb && comb <= one) {
		t.Fatalf("efficiency ordering violated: reassemble=%d combine=%d one-per-packet=%d", reasm, comb, one)
	}
	if reasm == one {
		t.Fatal("reassembly should beat one-per-packet on this workload")
	}
}

func TestOverheadAccounting(t *testing.T) {
	p := Packet{Chunks: []chunk.Chunk{dataChunk(0, 0, 0, 10, false)}}
	wire, header, payload := Overhead([]Packet{p})
	if payload != 10 {
		t.Fatalf("payload = %d", payload)
	}
	if header != HeaderSize+chunk.HeaderSize {
		t.Fatalf("header = %d", header)
	}
	if wire != header+payload {
		t.Fatalf("wire = %d, header+payload = %d", wire, header+payload)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		OnePerPacket: "one-per-packet", Combine: "combine",
		Reassemble: "reassemble", Strategy(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func BenchmarkRepackStrategies(b *testing.B) {
	var chs []chunk.Chunk
	for i := 0; i < 32; i++ {
		chs = append(chs, dataChunk(uint64(i*64), uint64(i*64), uint64(i*64), 64, false))
	}
	small := Packer{MTU: 96}
	smallPkts, err := small.Pack(chs)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []Strategy{OnePerPacket, Combine, Reassemble} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Repack(smallPkts, 1500, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
