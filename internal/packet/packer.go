package packet

import (
	"encoding/binary"

	"chunks/internal/chunk"
	"chunks/internal/telemetry"
)

// A Packer maps a chunk stream onto MTU-bounded packets — the
// transmit-side half of "packets are envelopes". It combines as many
// whole chunks as fit (Section 2: "If chunks are smaller than a
// packet, then as many chunks as fit can be placed in a single
// packet") and splits chunks that are individually too large using the
// Appendix C algorithm.
type Packer struct {
	// MTU is the maximum encoded packet size in bytes, header
	// included.
	MTU int
	// Pad, when true, pads every packet to exactly MTU bytes
	// (fixed-cell networks). Padding implies the terminator-chunk
	// convention on the wire.
	Pad bool

	// Fill, when set, observes the fill ratio of each emitted envelope
	// as a percentage of the chunk-byte budget.
	Fill *telemetry.Histogram
	// Events, when set, records an EvFragmented lifecycle event for
	// every chunk that had to be split to fit the MTU.
	Events *telemetry.Ring

	// Buffers, when set, supplies Encode's datagram buffers. The caller
	// then owns the returned buffers and should hand them back via
	// Buffers.Put once transmitted; the containing [][]byte slice is
	// reused by the next Encode call, so it must be consumed before
	// Encode runs again. A nil Buffers keeps the allocate-fresh
	// behaviour.
	Buffers *BufferPool

	dgrams [][]byte // Encode's container scratch (Buffers mode only)
}

// budget returns the chunk-byte capacity of one packet.
func (pk *Packer) budget() int { return pk.MTU - HeaderSize }

// Pack distributes chs into packets. Chunk order is preserved; chunks
// too large for one packet are split at element boundaries. An error
// is returned only if the MTU cannot hold even a single-element chunk
// or a control chunk (control is indivisible).
func (pk *Packer) Pack(chs []chunk.Chunk) ([]Packet, error) {
	if pk.budget() <= chunk.HeaderSize {
		return nil, ErrTinyMTU
	}
	var out []Packet
	var cur Packet
	used := 0

	flush := func() {
		if len(cur.Chunks) > 0 {
			pk.Fill.Observe(int64(used * 100 / pk.budget()))
			out = append(out, cur)
			cur = Packet{}
			used = 0
		}
	}

	for i := range chs {
		pieces, err := chs[i].SplitToFit(pk.budget())
		if err != nil {
			return nil, err
		}
		if len(pieces) > 1 {
			c := &chs[i]
			pk.Events.Record(telemetry.EvFragmented, c.C.ID, c.T.ID, c.T.SN, int64(len(pieces)))
		}
		for _, pc := range pieces {
			n := pc.EncodedLen()
			if used+n > pk.budget() {
				flush()
			}
			cur.Chunks = append(cur.Chunks, pc)
			used += n
		}
	}
	flush()
	return out, nil
}

// Encode packs and serialises in one step, returning raw datagrams.
// It streams chunks directly into wire buffers — the packing decisions
// are identical to Pack followed by AppendTo, but no intermediate
// Packet slices are built, and with Buffers set a steady encode →
// transmit → Buffers.Put cycle allocates nothing.
//
//lint:hot
func (pk *Packer) Encode(chs []chunk.Chunk) ([][]byte, error) {
	budget := pk.budget()
	if budget <= chunk.HeaderSize {
		return nil, ErrTinyMTU
	}
	var out [][]byte
	if pk.Buffers != nil {
		out = pk.dgrams[:0]
	}
	var cur []byte
	used := 0

	flush := func() error {
		if used == 0 {
			return nil
		}
		total := len(cur)
		if pk.Pad {
			if total > pk.MTU {
				return ErrOversize
			}
			total = pk.MTU
			if len(cur) < total {
				term := chunk.Terminator()
				cur = term.AppendTo(cur)
			}
			for len(cur) < total {
				cur = append(cur, 0)
			}
		}
		if total > MaxSize {
			return ErrBadLength
		}
		binary.BigEndian.PutUint16(cur[offTotal:HeaderSize], uint16(total))
		pk.Fill.Observe(int64(used * 100 / budget))
		out = append(out, cur)
		cur, used = nil, 0
		return nil
	}
	place := func(pc *chunk.Chunk) error {
		n := pc.EncodedLen()
		if used+n > budget {
			if err := flush(); err != nil {
				return err
			}
		}
		if cur == nil {
			cur = append(pk.Buffers.Get(pk.MTU), Magic, Version, 0, 0)
		}
		cur = pc.AppendTo(cur)
		used += n
		return nil
	}

	for i := range chs {
		if chs[i].EncodedLen() <= budget && !chs[i].IsTerminator() {
			if err := place(&chs[i]); err != nil {
				return nil, err
			}
			continue
		}
		pieces, err := chs[i].SplitToFit(budget)
		if err != nil {
			return nil, err
		}
		if len(pieces) > 1 {
			c := &chs[i]
			pk.Events.Record(telemetry.EvFragmented, c.C.ID, c.T.ID, c.T.SN, int64(len(pieces)))
		}
		for j := range pieces {
			if err := place(&pieces[j]); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if pk.Buffers != nil {
		pk.dgrams = out[:0]
	}
	return out, nil
}

// Unpack decodes raw datagrams back into a flat chunk slice; the
// receive-side inverse of Encode. Chunk payloads are cloned so the
// caller may recycle the datagram buffers.
func Unpack(datagrams [][]byte) ([]chunk.Chunk, error) {
	var out []chunk.Chunk
	for _, d := range datagrams {
		p, err := Decode(d)
		if err != nil {
			return nil, err
		}
		for i := range p.Chunks {
			out = append(out, p.Chunks[i].Clone())
		}
	}
	return out, nil
}
