// Package packet treats network packets as envelopes that carry
// integral numbers of chunks (Section 2: "Packets can be considered
// envelopes that carry integral numbers of chunks").
//
// A packet is a small fixed header followed by back-to-back chunk
// encodings. When chunks do not fill a fixed-size packet completely, a
// LEN=0 terminator chunk marks the end of the valid chunks and the
// remainder is padding — exactly the paper's convention. Because
// chunks allow disordering, how chunks are placed into packets is
// irrelevant to the receiver; packing policy is pure optimisation
// (Figure 4's three methods, implemented in repack.go).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"chunks/internal/chunk"
)

// Wire layout of the envelope header:
//
//	offset size field
//	0      1    magic (0xC5)
//	1      1    version (1)
//	2      2    total packet length in bytes, header included
const (
	// HeaderSize is the envelope header length.
	HeaderSize = 4
	// Magic is the first byte of every packet.
	Magic = 0xC5
	// Version is the only defined envelope version.
	Version = 1
	// MaxSize bounds a packet (the length field is 16 bits).
	MaxSize = 1<<16 - 1

	// offTotal is the offset of the total-length field; it runs to
	// HeaderSize.
	offTotal = 2
)

// Envelope errors.
var (
	ErrShortPacket = errors.New("packet: truncated packet")
	ErrBadMagic    = errors.New("packet: bad magic byte")
	ErrBadVersion  = errors.New("packet: unsupported version")
	ErrBadLength   = errors.New("packet: length field out of range")
	ErrOversize    = errors.New("packet: encoded packet exceeds MTU")
	ErrTinyMTU     = errors.New("packet: MTU cannot hold a single-element chunk")
)

// A Packet is an ordered multiset of chunks inside one envelope. Order
// carries no meaning on the wire ("how the chunks are placed in a
// packet is irrelevant"); it is preserved only for determinism.
type Packet struct {
	Chunks []chunk.Chunk
}

// EncodedLen returns the byte length of the encoded packet without
// padding: header + chunks (no terminator).
func (p *Packet) EncodedLen() int {
	n := HeaderSize
	for i := range p.Chunks {
		n += p.Chunks[i].EncodedLen()
	}
	return n
}

// AppendTo appends the encoded packet to b. If pad > 0 the packet is
// padded to exactly pad bytes: a terminator chunk is written after the
// last valid chunk (when room remains) and the tail is zero-filled —
// the fixed-cell case (e.g. ATM) in the paper. pad == 0 writes the
// compact form whose end is given by the length field.
func (p *Packet) AppendTo(b []byte, pad int) ([]byte, error) {
	content := p.EncodedLen()
	total := content
	if pad > 0 {
		if content > pad {
			return nil, ErrOversize
		}
		total = pad
	}
	if total > MaxSize {
		return nil, ErrBadLength
	}
	b = append(b, Magic, Version)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	for i := range p.Chunks {
		b = p.Chunks[i].AppendTo(b)
	}
	if pad > 0 && content < pad {
		// Terminator then zero fill. A single spare byte is exactly
		// the terminator; the decoder treats zero bytes after it as
		// padding.
		term := chunk.Terminator()
		b = term.AppendTo(b)
		for i := content + chunk.TerminatorSize; i < pad; i++ {
			b = append(b, 0)
		}
	}
	return b, nil
}

// Decode parses one packet from b, which must contain the complete
// packet (datagram semantics). Decoded chunk payloads alias b.
func Decode(b []byte) (Packet, error) {
	var p Packet
	if err := DecodeInto(b, &p); err != nil {
		return Packet{}, err
	}
	return p, nil
}

// DecodeInto is Decode reusing p's chunk storage: p.Chunks is
// truncated and refilled in place, so a receive loop decoding into the
// same Packet allocates nothing once the slice has grown to the
// envelope's chunk count. Decoded chunk payloads alias b, exactly as
// with Decode; on error p holds the chunks decoded before the failure
// (callers must treat p as invalid). The decoded packet is
// byte-for-byte identical to Decode's (FuzzDecodeInto pins this).
//
//lint:hot
func DecodeInto(b []byte, p *Packet) error {
	p.Chunks = p.Chunks[:0]
	if len(b) < HeaderSize {
		return ErrShortPacket
	}
	if b[0] != Magic {
		return ErrBadMagic
	}
	if b[1] != Version {
		return ErrBadVersion
	}
	total := int(binary.BigEndian.Uint16(b[offTotal:HeaderSize]))
	if total < HeaderSize || total > len(b) {
		return ErrBadLength
	}
	off := HeaderSize
	for off < total {
		var c chunk.Chunk
		n, err := c.DecodeFromBytes(b[off:total])
		if err != nil {
			return fmt.Errorf("packet: chunk at offset %d: %w", off, err) //lint:allow hotalloc cold error path: fmt boxes its operands
		}
		off += n
		if c.IsTerminator() {
			break // rest is padding
		}
		p.Chunks = append(p.Chunks, c)
	}
	return nil
}

// Clone deep-copies the packet, detaching chunk payloads from any
// underlying receive buffer.
func (p *Packet) Clone() Packet {
	out := Packet{Chunks: make([]chunk.Chunk, len(p.Chunks))}
	for i := range p.Chunks {
		out.Chunks[i] = p.Chunks[i].Clone()
	}
	return out
}
