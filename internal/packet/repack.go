package packet

import "chunks/internal/chunk"

// Repacking strategies of Figure 4: "When moving chunks from small
// packets to large packets, we have the three choices ... With chunks,
// all three options are possible, and the specific choice is left to
// the implementor." A gateway between networks of different MTUs
// empties chunks out of one envelope size and places them in another;
// fragmentation and reassembly in the network are completely
// transparent to the receiver.

// Strategy selects a Figure 4 repacking method.
type Strategy int

const (
	// OnePerPacket puts one incoming chunk in each outgoing packet
	// (Figure 4 method 1). Simplest, wastes bandwidth.
	OnePerPacket Strategy = iota
	// Combine packs multiple chunks per outgoing packet without
	// merging them (method 2) — "simpler than and almost as efficient
	// as chunk reassembly".
	Combine
	// Reassemble first merges adjacent chunks (Appendix D) and then
	// packs the merged chunks (method 3). Fewest header bytes, most
	// gateway work.
	Reassemble
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case OnePerPacket:
		return "one-per-packet"
	case Combine:
		return "combine"
	case Reassemble:
		return "reassemble"
	}
	return "unknown"
}

// Repack moves the chunks of the incoming packets into new envelopes
// of the given MTU using the chosen strategy. Chunks still too large
// for the outgoing MTU are split (the small→large and large→small
// directions are handled uniformly; splitting is how method "fragment"
// of Figure 4's top row happens).
func Repack(in []Packet, mtu int, s Strategy) ([]Packet, error) {
	var chs []chunk.Chunk
	for i := range in {
		chs = append(chs, in[i].Chunks...)
	}
	switch s {
	case Reassemble:
		chs = chunk.MergeAll(chs)
	case OnePerPacket:
		pk := Packer{MTU: mtu}
		var out []Packet
		for i := range chs {
			pkts, err := pk.Pack(chs[i : i+1])
			if err != nil {
				return nil, err
			}
			out = append(out, pkts...)
		}
		return out, nil
	}
	pk := Packer{MTU: mtu}
	return pk.Pack(chs)
}

// Overhead reports the total wire bytes and the header bytes (packet
// envelopes plus chunk headers) of a packet sequence — the accounting
// behind the P7 bandwidth-efficiency experiment.
func Overhead(pkts []Packet) (wire, header, payload int) {
	for i := range pkts {
		wire += pkts[i].EncodedLen()
		header += HeaderSize
		for j := range pkts[i].Chunks {
			header += chunk.HeaderSize
			payload += len(pkts[i].Chunks[j].Payload)
		}
	}
	return wire, header, payload
}
