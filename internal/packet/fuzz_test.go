package packet

import (
	"reflect"
	"testing"
	"testing/quick"

	"chunks/internal/chunk"
)

func TestDecodeArbitraryBytes(t *testing.T) {
	f := func(b []byte) bool {
		p, err := Decode(b)
		if err != nil {
			return true
		}
		for i := range p.Chunks {
			if p.Chunks[i].Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func FuzzDecode(f *testing.F) {
	p := Packet{Chunks: []chunk.Chunk{dataChunk(0, 0, 0, 4, true)}}
	compact, _ := p.AppendTo(nil, 0)
	padded, _ := p.AppendTo(nil, 128)
	f.Add(compact)
	f.Add(padded)
	f.Add([]byte{Magic, Version, 0, 4})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Decode(b)
		if err != nil {
			return
		}
		// Every decoded chunk must be structurally valid and
		// re-encodable into a decodable packet.
		re, err := p.AppendTo(nil, 0)
		if err != nil {
			if err == ErrBadLength {
				return // packet larger than 64 KiB after re-encode
			}
			t.Fatalf("re-encode: %v", err)
		}
		q, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(q.Chunks) != len(p.Chunks) {
			t.Fatalf("chunk count changed: %d -> %d", len(p.Chunks), len(q.Chunks))
		}
	})
}

// FuzzDecodeInto pins DecodeInto to Decode: for any input — including
// the shapes a recvmmsg batch can hand the read loop (a truncated
// tail, a zero-length slot, a 65536-byte maximum slot) — the two must
// agree on error-vs-success and, on success, on the decoded chunks.
// The scratch Packet is reused across every iteration exactly like a
// read loop's per-reader scratch, so stale chunk state leaking from a
// previous (possibly failed) decode shows up as a divergence here.
func FuzzDecodeInto(f *testing.F) {
	p := Packet{Chunks: []chunk.Chunk{dataChunk(0, 0, 0, 4, true)}}
	compact, _ := p.AppendTo(nil, 0)
	padded, _ := p.AppendTo(nil, 128)
	maxed, _ := p.AppendTo(nil, MaxSize)
	f.Add(compact)
	f.Add(padded)
	f.Add(maxed)                    // largest encodable packet
	f.Add(append(maxed, 0))         // 65536-byte receive slot, padded past the envelope
	f.Add(compact[:len(compact)-3]) // truncated tail
	f.Add([]byte{})                 // zero-length slot
	f.Add([]byte{Magic, Version, 0, 4})
	var scratch Packet // reused across iterations like a read loop's scratch
	f.Fuzz(func(t *testing.T, b []byte) {
		// Each input is also decoded with batch-boundary mutations: the
		// last byte cut (a slot whose datagram was truncated) and the
		// empty prefix (a zero-length slot between valid ones).
		variants := [][]byte{b}
		if len(b) > 0 {
			variants = append(variants, b[:len(b)-1], b[:0])
		}
		for _, v := range variants {
			want, wantErr := Decode(v)
			gotErr := DecodeInto(v, &scratch)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("Decode err %v, DecodeInto err %v (input %x)", wantErr, gotErr, v)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("error text diverged: Decode %q, DecodeInto %q (input %x)", wantErr, gotErr, v)
				}
				continue // on error the scratch is documented as invalid
			}
			if len(want.Chunks) != len(scratch.Chunks) {
				t.Fatalf("chunk count diverged: Decode %d, DecodeInto %d (input %x)", len(want.Chunks), len(scratch.Chunks), v)
			}
			for i := range want.Chunks {
				if !reflect.DeepEqual(want.Chunks[i], scratch.Chunks[i]) {
					t.Fatalf("chunk %d diverged (input %x)", i, v)
				}
			}
		}
	})
}

// TestPackerNeverExceedsMTU is the safety property of the Packer for
// arbitrary chunk populations.
func TestPackerNeverExceedsMTU(t *testing.T) {
	f := func(sizes []uint16, mtu uint16) bool {
		m := 200 + int(mtu)%1400
		pk := Packer{MTU: m}
		var chs []chunk.Chunk
		for i, s := range sizes {
			if len(chs) > 24 {
				break
			}
			n := 1 + int(s)%200
			chs = append(chs, dataChunk(uint64(i*200), uint64(i*200), uint64(i*200), n, false))
		}
		pkts, err := pk.Pack(chs)
		if err != nil {
			return true
		}
		total := 0
		for _, p := range pkts {
			if p.EncodedLen() > m {
				return false
			}
			for _, c := range p.Chunks {
				total += c.Elems()
			}
		}
		want := 0
		for _, c := range chs {
			want += c.Elems()
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
