package packet

import (
	"testing"
	"testing/quick"

	"chunks/internal/chunk"
)

func TestDecodeArbitraryBytes(t *testing.T) {
	f := func(b []byte) bool {
		p, err := Decode(b)
		if err != nil {
			return true
		}
		for i := range p.Chunks {
			if p.Chunks[i].Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func FuzzDecode(f *testing.F) {
	p := Packet{Chunks: []chunk.Chunk{dataChunk(0, 0, 0, 4, true)}}
	compact, _ := p.AppendTo(nil, 0)
	padded, _ := p.AppendTo(nil, 128)
	f.Add(compact)
	f.Add(padded)
	f.Add([]byte{Magic, Version, 0, 4})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Decode(b)
		if err != nil {
			return
		}
		// Every decoded chunk must be structurally valid and
		// re-encodable into a decodable packet.
		re, err := p.AppendTo(nil, 0)
		if err != nil {
			if err == ErrBadLength {
				return // packet larger than 64 KiB after re-encode
			}
			t.Fatalf("re-encode: %v", err)
		}
		q, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(q.Chunks) != len(p.Chunks) {
			t.Fatalf("chunk count changed: %d -> %d", len(p.Chunks), len(q.Chunks))
		}
	})
}

// TestPackerNeverExceedsMTU is the safety property of the Packer for
// arbitrary chunk populations.
func TestPackerNeverExceedsMTU(t *testing.T) {
	f := func(sizes []uint16, mtu uint16) bool {
		m := 200 + int(mtu)%1400
		pk := Packer{MTU: m}
		var chs []chunk.Chunk
		for i, s := range sizes {
			if len(chs) > 24 {
				break
			}
			n := 1 + int(s)%200
			chs = append(chs, dataChunk(uint64(i*200), uint64(i*200), uint64(i*200), n, false))
		}
		pkts, err := pk.Pack(chs)
		if err != nil {
			return true
		}
		total := 0
		for _, p := range pkts {
			if p.EncodedLen() > m {
				return false
			}
			for _, c := range p.Chunks {
				total += c.Elems()
			}
		}
		want := 0
		for _, c := range chs {
			want += c.Elems()
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
