package packet

import (
	"testing"

	"chunks/internal/chunk"
)

// TestEnvelopeConstantsPinned pins the envelope's wire-visible
// values: changing any of these changes what peers accept.
func TestEnvelopeConstantsPinned(t *testing.T) {
	if HeaderSize != 4 {
		t.Errorf("HeaderSize = %d, want 4", HeaderSize)
	}
	if Magic != 0xC5 {
		t.Errorf("Magic = %#x, want 0xC5", Magic)
	}
	if Version != 1 {
		t.Errorf("Version = %d, want 1", Version)
	}
	if MaxSize != 1<<16-1 {
		t.Errorf("MaxSize = %d, want %d", MaxSize, 1<<16-1)
	}
}

func dataChunk(csn, tsn, xsn uint64, elems int, tst bool) chunk.Chunk {
	payload := make([]byte, elems)
	for i := range payload {
		payload[i] = byte(tsn) + byte(i)
	}
	return chunk.Chunk{
		Type: chunk.TypeData, Size: 1, Len: uint32(elems),
		C:       chunk.Tuple{ID: 0xA, SN: csn},
		T:       chunk.Tuple{ID: 0xF1, SN: tsn, ST: tst},
		X:       chunk.Tuple{ID: 0xC, SN: xsn},
		Payload: payload,
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{Chunks: []chunk.Chunk{
		dataChunk(36, 0, 24, 7, true),
		{Type: chunk.TypeED, Size: 8, Len: 1, C: chunk.Tuple{ID: 0xA, SN: 36}, T: chunk.Tuple{ID: 0xF1}, Payload: make([]byte, 8)},
	}}
	b, err := p.AppendTo(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != p.EncodedLen() {
		t.Fatalf("encoded %d, EncodedLen %d", len(b), p.EncodedLen())
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chunks) != 2 {
		t.Fatalf("decoded %d chunks", len(got.Chunks))
	}
	for i := range p.Chunks {
		if !got.Chunks[i].Equal(&p.Chunks[i]) {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
}

func TestPacketPadding(t *testing.T) {
	p := Packet{Chunks: []chunk.Chunk{dataChunk(0, 0, 0, 3, false)}}
	const cell = 128
	b, err := p.AppendTo(nil, cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != cell {
		t.Fatalf("padded packet is %d bytes, want %d", len(b), cell)
	}
	// The byte right after the last chunk must be the LEN=0
	// terminator (encoded as a zero byte).
	if b[p.EncodedLen()] != 0 {
		t.Fatal("terminator missing after last valid chunk")
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chunks) != 1 || !got.Chunks[0].Equal(&p.Chunks[0]) {
		t.Fatal("padding corrupted chunk decode")
	}
}

func TestPacketPadExact(t *testing.T) {
	p := Packet{Chunks: []chunk.Chunk{dataChunk(0, 0, 0, 3, false)}}
	exact := p.EncodedLen()
	b, err := p.AppendTo(nil, exact)
	if err != nil || len(b) != exact {
		t.Fatalf("exact-fit pad: len=%d err=%v", len(b), err)
	}
	got, err := Decode(b)
	if err != nil || len(got.Chunks) != 1 {
		t.Fatalf("exact-fit decode: %v", err)
	}
}

func TestPacketPadOneSpare(t *testing.T) {
	// One spare byte fits exactly the terminator.
	p := Packet{Chunks: []chunk.Chunk{dataChunk(0, 0, 0, 3, false)}}
	b, err := p.AppendTo(nil, p.EncodedLen()+1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil || len(got.Chunks) != 1 {
		t.Fatalf("one-spare decode: %v", err)
	}
}

func TestPacketOversizePad(t *testing.T) {
	p := Packet{Chunks: []chunk.Chunk{dataChunk(0, 0, 0, 100, false)}}
	if _, err := p.AppendTo(nil, 32); err != ErrOversize {
		t.Fatalf("want ErrOversize, got %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	p := Packet{Chunks: []chunk.Chunk{dataChunk(0, 0, 0, 4, false)}}
	good, _ := p.AppendTo(nil, 0)

	if _, err := Decode(good[:2]); err != ErrShortPacket {
		t.Errorf("short: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0x00
	if _, err := Decode(bad); err != ErrBadMagic {
		t.Errorf("magic: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[1] = 9
	if _, err := Decode(bad); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[2], bad[3] = 0xFF, 0xFF // length beyond buffer
	if _, err := Decode(bad); err != ErrBadLength {
		t.Errorf("length: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[2], bad[3] = 0, 1 // length below header size
	if _, err := Decode(bad); err != ErrBadLength {
		t.Errorf("tiny length: %v", err)
	}
	// Truncated chunk inside the packet.
	bad = append([]byte(nil), good[:len(good)-1]...)
	bad[2], bad[3] = byte(len(bad)>>8), byte(len(bad))
	if _, err := Decode(bad); err == nil {
		t.Error("truncated chunk must fail")
	}
}

func TestClone(t *testing.T) {
	p := Packet{Chunks: []chunk.Chunk{dataChunk(0, 0, 0, 4, false)}}
	q := p.Clone()
	q.Chunks[0].Payload[0] = 0xFF
	if p.Chunks[0].Payload[0] == 0xFF {
		t.Fatal("Clone must deep-copy payloads")
	}
}

func TestPackerCombines(t *testing.T) {
	var chs []chunk.Chunk
	for i := 0; i < 10; i++ {
		chs = append(chs, dataChunk(uint64(i*4), uint64(i*4), uint64(i*4), 4, false))
	}
	pk := Packer{MTU: 3*(chunk.HeaderSize+4) + HeaderSize}
	pkts, err := pk.Pack(chs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 4 { // ceil(10/3)
		t.Fatalf("packed into %d packets, want 4", len(pkts))
	}
	for _, p := range pkts {
		if p.EncodedLen() > pk.MTU {
			t.Fatal("packet exceeds MTU")
		}
	}
}

func TestPackerSplitsOversize(t *testing.T) {
	big := dataChunk(0, 0, 0, 1000, true)
	pk := Packer{MTU: 256}
	pkts, err := pk.Pack([]chunk.Chunk{big})
	if err != nil {
		t.Fatal(err)
	}
	var got []chunk.Chunk
	for _, p := range pkts {
		for _, c := range p.Chunks {
			if c.EncodedLen() > pk.MTU-HeaderSize {
				t.Fatal("chunk exceeds packet budget")
			}
			got = append(got, c)
		}
	}
	merged := chunk.MergeAll(got)
	if len(merged) != 1 || !merged[0].Equal(&big) {
		t.Fatal("split chunks must reassemble to the original")
	}
	// ST bit must appear exactly once, on the final fragment.
	for i, c := range got {
		if c.T.ST != (i == len(got)-1) {
			t.Fatalf("fragment %d T.ST = %v", i, c.T.ST)
		}
	}
}

func TestPackerTinyMTU(t *testing.T) {
	pk := Packer{MTU: chunk.HeaderSize + HeaderSize}
	if _, err := pk.Pack([]chunk.Chunk{dataChunk(0, 0, 0, 4, false)}); err != ErrTinyMTU {
		t.Fatalf("want ErrTinyMTU, got %v", err)
	}
}

func TestEncodeUnpackRoundTrip(t *testing.T) {
	var chs []chunk.Chunk
	for i := 0; i < 7; i++ {
		chs = append(chs, dataChunk(uint64(i*9), uint64(i*9), uint64(i*9), 9, i == 6))
	}
	pk := Packer{MTU: 160, Pad: true}
	datagrams, err := pk.Encode(chs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range datagrams {
		if len(d) != pk.MTU {
			t.Fatalf("padded datagram is %d bytes", len(d))
		}
	}
	back, err := Unpack(datagrams)
	if err != nil {
		t.Fatal(err)
	}
	merged := chunk.MergeAll(back)
	want := chunk.MergeAll(chs)
	if len(merged) != len(want) {
		t.Fatalf("round trip: %d merged chunks, want %d", len(merged), len(want))
	}
	for i := range merged {
		if !merged[i].Equal(&want[i]) {
			t.Fatalf("merged chunk %d differs", i)
		}
	}
}
