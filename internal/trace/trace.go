// Package trace generates the deterministic workloads the paper's
// motivation names: bulk data transfer (Section 1's "regardless of the
// order in which data arrive, they can be correctly placed in the
// application address space") and video (frames as Application Layer
// Frames, where "data of an individual frame can be placed in the
// frame buffer as they arrive").
package trace

import (
	"math/rand"

	"chunks/internal/chunk"
	"chunks/internal/compress"
	"chunks/internal/errdet"
)

// A Workload is a generated chunk stream plus the ground truth needed
// to check any receiver against it.
type Workload struct {
	Name string
	// Data is the original application byte stream.
	Data []byte
	// Chunks are the pre-fragmentation data chunks in send order.
	Chunks []chunk.Chunk
	// EDs are the per-TPDU error detection chunks.
	EDs []chunk.Chunk
	// ElemSize is the element size used throughout.
	ElemSize uint16
}

// All returns data and ED chunks interleaved in transmission order
// (each TPDU's ED chunk directly after its data, as in Figure 3).
func (w *Workload) All() []chunk.Chunk {
	var out []chunk.Chunk
	edAt := make(map[uint32]int, len(w.EDs))
	for i := range w.EDs {
		edAt[w.EDs[i].T.ID] = i
	}
	emitted := make(map[uint32]bool)
	for i := range w.Chunks {
		out = append(out, w.Chunks[i])
		tid := w.Chunks[i].T.ID
		last := i+1 == len(w.Chunks) || w.Chunks[i+1].T.ID != tid
		if last && !emitted[tid] {
			if j, ok := edAt[tid]; ok {
				out = append(out, w.EDs[j])
				emitted[tid] = true
			}
		}
	}
	return out
}

// BulkConfig parameterises a bulk transfer.
type BulkConfig struct {
	Seed      int64
	Bytes     int    // total stream size (rounded up to elements)
	ElemSize  uint16 // element size (e.g. 4)
	TPDUElems int    // elements per TPDU
	CID       uint32
	Layout    errdet.Layout
}

// Bulk generates a bulk-transfer workload: the stream divided into
// TPDUs, each TPDU one chunk and one external PDU aligned with it
// (bulk applications frame on transfer-block boundaries). T.IDs follow
// the implicit rule (Figure 7) so header compression applies.
func Bulk(cfg BulkConfig) (*Workload, error) {
	if cfg.ElemSize == 0 {
		cfg.ElemSize = 4
	}
	if cfg.TPDUElems == 0 {
		cfg.TPDUElems = 256
	}
	if cfg.Layout.DataSymbols == 0 {
		cfg.Layout = errdet.DefaultLayout()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	es := int(cfg.ElemSize)
	elems := (cfg.Bytes + es - 1) / es
	data := make([]byte, elems*es)
	rng.Read(data)

	w := &Workload{Name: "bulk", Data: data, ElemSize: cfg.ElemSize}
	for start := 0; start < elems; start += cfg.TPDUElems {
		n := cfg.TPDUElems
		if start+n > elems {
			n = elems - start
		}
		csn := uint64(start)
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: cfg.ElemSize, Len: uint32(n),
			C:       chunk.Tuple{ID: cfg.CID, SN: csn},
			T:       chunk.Tuple{ID: compress.DeriveImplicitTID(csn, 0), SN: 0, ST: true},
			X:       chunk.Tuple{ID: compress.DeriveImplicitTID(csn, 0), SN: 0, ST: true},
			Payload: data[start*es : (start+n)*es],
		}
		par, err := errdet.Encode(cfg.Layout, []chunk.Chunk{c})
		if err != nil {
			return nil, err
		}
		w.Chunks = append(w.Chunks, c)
		w.EDs = append(w.EDs, errdet.EDChunk(cfg.CID, c.T.ID, csn, par))
	}
	return w, nil
}

// VideoConfig parameterises a video stream.
type VideoConfig struct {
	Seed       int64
	Frames     int
	FrameElems int    // elements per frame
	ElemSize   uint16 // e.g. 4
	TPDUElems  int    // TPDU size, independent of frame size (Figure 1)
	CID        uint32
	Layout     errdet.Layout
}

// Video generates a video workload: each frame is one external PDU
// (an ALF frame), while TPDUs cut the same stream at an unrelated
// period — the two simultaneous framings of Figure 1. Chunks break at
// whichever boundary comes first.
func Video(cfg VideoConfig) (*Workload, error) {
	if cfg.ElemSize == 0 {
		cfg.ElemSize = 4
	}
	if cfg.FrameElems == 0 {
		cfg.FrameElems = 300
	}
	if cfg.TPDUElems == 0 {
		cfg.TPDUElems = 256
	}
	if cfg.Layout.DataSymbols == 0 {
		cfg.Layout = errdet.DefaultLayout()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	es := int(cfg.ElemSize)
	elems := cfg.Frames * cfg.FrameElems
	data := make([]byte, elems*es)
	rng.Read(data)

	w := &Workload{Name: "video", Data: data, ElemSize: cfg.ElemSize}
	// Walk the element stream, cutting at TPDU and frame boundaries.
	var cur []chunk.Chunk // chunks of the in-progress TPDU
	var tpduStart int
	flushTPDU := func(endElem int) error {
		if len(cur) == 0 {
			return nil
		}
		cur[len(cur)-1].T.ST = true
		par, err := errdet.Encode(cfg.Layout, cur)
		if err != nil {
			return err
		}
		tid := cur[0].T.ID
		w.Chunks = append(w.Chunks, cur...)
		w.EDs = append(w.EDs, errdet.EDChunk(cfg.CID, tid, uint64(tpduStart), par))
		cur = nil
		tpduStart = endElem
		return nil
	}
	for e := 0; e < elems; {
		tpduEnd := tpduStart + cfg.TPDUElems
		frame := e / cfg.FrameElems
		frameEnd := (frame + 1) * cfg.FrameElems
		end := tpduEnd
		if frameEnd < end {
			end = frameEnd
		}
		if end > elems {
			end = elems
		}
		csn := uint64(e)
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: cfg.ElemSize, Len: uint32(end - e),
			C: chunk.Tuple{ID: cfg.CID, SN: csn},
			T: chunk.Tuple{
				ID: compress.DeriveImplicitTID(uint64(tpduStart), 0),
				SN: uint64(e - tpduStart),
			},
			X: chunk.Tuple{
				ID: uint32(frame) + 1,
				SN: uint64(e - frame*cfg.FrameElems),
				ST: end == frameEnd,
			},
			Payload: data[e*es : end*es],
		}
		cur = append(cur, c)
		e = end
		if e == tpduEnd || e == elems {
			if err := flushTPDU(e); err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}

// Frame returns the ground-truth bytes of frame i (0-based).
func (w *Workload) Frame(cfg VideoConfig, i int) []byte {
	es := int(w.ElemSize)
	lo := i * cfg.FrameElems * es
	return w.Data[lo : lo+cfg.FrameElems*es]
}
