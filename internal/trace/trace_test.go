package trace

import (
	"testing"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
)

func TestBulkShape(t *testing.T) {
	w, err := Bulk(BulkConfig{Seed: 1, Bytes: 4096, ElemSize: 4, TPDUElems: 256, CID: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Chunks) != 4 || len(w.EDs) != 4 {
		t.Fatalf("chunks=%d eds=%d", len(w.Chunks), len(w.EDs))
	}
	var total int
	for i := range w.Chunks {
		c := &w.Chunks[i]
		if err := c.Validate(); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if !c.T.ST {
			t.Fatal("bulk TPDUs are single chunks ending with T.ST")
		}
		total += len(c.Payload)
	}
	if total != len(w.Data) {
		t.Fatalf("payload bytes %d != stream %d", total, len(w.Data))
	}
}

func TestBulkRoundsUp(t *testing.T) {
	w, err := Bulk(BulkConfig{Seed: 1, Bytes: 10, ElemSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Data) != 12 {
		t.Fatalf("data = %d bytes, want rounded 12", len(w.Data))
	}
}

func TestBulkVerifies(t *testing.T) {
	w, err := Bulk(BulkConfig{Seed: 2, Bytes: 2048, ElemSize: 4, TPDUElems: 128, CID: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, err := errdet.NewReceiver(errdet.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range w.All() {
		cc := c
		if err := r.Ingest(&cc); err != nil {
			t.Fatal(err)
		}
	}
	for i := range w.Chunks {
		if v := r.Verdict(w.Chunks[i].T.ID); v != errdet.VerdictOK {
			t.Fatalf("TPDU %d verdict %v; findings %v", i, v, r.Findings())
		}
	}
}

func TestAllInterleavesEDs(t *testing.T) {
	w, err := Bulk(BulkConfig{Seed: 1, Bytes: 1024, ElemSize: 4, TPDUElems: 64})
	if err != nil {
		t.Fatal(err)
	}
	all := w.All()
	if len(all) != len(w.Chunks)+len(w.EDs) {
		t.Fatalf("All() has %d chunks", len(all))
	}
	// Each ED must directly follow its TPDU's last data chunk.
	for i := 1; i < len(all); i++ {
		if all[i].Type == chunk.TypeED && all[i-1].T.ID != all[i].T.ID {
			t.Fatal("ED chunk not adjacent to its TPDU")
		}
	}
}

func TestVideoShape(t *testing.T) {
	cfg := VideoConfig{Seed: 3, Frames: 5, FrameElems: 300, ElemSize: 4, TPDUElems: 256, CID: 7}
	w, err := Video(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Frame and TPDU boundaries are unrelated: chunks must break at
	// both (Figure 1). 1500 elements: TPDU cuts every 256, frame cuts
	// every 300.
	var elems int
	xst := 0
	for i := range w.Chunks {
		c := &w.Chunks[i]
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		elems += c.Elems()
		if c.X.ST {
			xst++
		}
	}
	if elems != 1500 {
		t.Fatalf("total elements %d", elems)
	}
	if xst != cfg.Frames {
		t.Fatalf("%d X.ST bits for %d frames", xst, cfg.Frames)
	}
}

func TestVideoVerifies(t *testing.T) {
	cfg := VideoConfig{Seed: 4, Frames: 4, FrameElems: 150, ElemSize: 4, TPDUElems: 128, CID: 7}
	w, err := Video(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := errdet.NewReceiver(errdet.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range w.All() {
		cc := c
		if err := r.Ingest(&cc); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint32]bool{}
	for i := range w.Chunks {
		tid := w.Chunks[i].T.ID
		if seen[tid] {
			continue
		}
		seen[tid] = true
		if v := r.Verdict(tid); v != errdet.VerdictOK {
			t.Fatalf("TPDU %#x verdict %v; findings %v", tid, v, r.Findings())
		}
	}
	// Every frame (external PDU) completes.
	for f := 1; f <= cfg.Frames; f++ {
		if !r.XComplete(uint32(f)) {
			t.Fatalf("frame %d incomplete", f)
		}
	}
	if fs := r.Findings(); len(fs) != 0 {
		t.Fatalf("findings: %v", fs)
	}
}

func TestVideoCSNContinuity(t *testing.T) {
	cfg := VideoConfig{Seed: 5, Frames: 3, FrameElems: 100, ElemSize: 4, TPDUElems: 64}
	w, err := Video(cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(0)
	for i := range w.Chunks {
		if w.Chunks[i].C.SN != next {
			t.Fatalf("chunk %d: C.SN %d, want %d", i, w.Chunks[i].C.SN, next)
		}
		next += uint64(w.Chunks[i].Len)
	}
}

func TestVideoFrameAccessor(t *testing.T) {
	cfg := VideoConfig{Seed: 6, Frames: 3, FrameElems: 10, ElemSize: 4}
	w, err := Video(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f1 := w.Frame(cfg, 1)
	if len(f1) != 40 {
		t.Fatalf("frame length %d", len(f1))
	}
	if &f1[0] != &w.Data[40] {
		t.Fatal("frame must alias the stream")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Bulk(BulkConfig{Seed: 42, Bytes: 1000})
	b, _ := Bulk(BulkConfig{Seed: 42, Bytes: 1000})
	if string(a.Data) != string(b.Data) {
		t.Fatal("same seed must give same data")
	}
	c, _ := Bulk(BulkConfig{Seed: 43, Bytes: 1000})
	if string(a.Data) == string(c.Data) {
		t.Fatal("different seeds should differ")
	}
}
