package gf

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x1234, 0x00F0) != 0x12C4 {
		t.Fatalf("Add(0x1234,0x00F0) = %#x", Add(0x1234, 0x00F0))
	}
	if Add(7, 7) != 0 {
		t.Fatal("x + x must be 0 in characteristic 2")
	}
}

func TestMulIdentity(t *testing.T) {
	for _, v := range []uint32{0, 1, 2, 0xFFFFFFFF, 0xDEADBEEF, Poly} {
		if Mul(v, 1) != v {
			t.Errorf("Mul(%#x, 1) = %#x, want %#x", v, Mul(v, 1), v)
		}
		if Mul(1, v) != v {
			t.Errorf("Mul(1, %#x) = %#x, want %#x", v, Mul(1, v), v)
		}
		if Mul(v, 0) != 0 {
			t.Errorf("Mul(%#x, 0) = %#x, want 0", v, Mul(v, 0))
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b uint32) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c uint32) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	f := func(a, b, c uint32) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInverse(t *testing.T) {
	f := func(a uint32) bool {
		if a == 0 {
			return Inv(a) == 0
		}
		return Mul(a, Inv(a)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiv(t *testing.T) {
	f := func(a, b uint32) bool {
		if b == 0 {
			return Div(a, b) == 0
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAlphaPrimitive asserts that Alpha generates the full
// multiplicative group: Alpha^(2^32-1) = 1 and Alpha^((2^32-1)/p) != 1
// for every prime factor p of 2^32-1 = 3*5*17*257*65537. This is the
// property that guarantees distinct WSC-2 position weights.
func TestAlphaPrimitive(t *testing.T) {
	if got := Pow(Alpha, Order); got != 1 {
		t.Fatalf("Alpha^Order = %#x, want 1", got)
	}
	for _, p := range []uint64{3, 5, 17, 257, 65537} {
		if got := Pow(Alpha, Order/p); got == 1 {
			t.Fatalf("Alpha^(Order/%d) = 1; Alpha is not primitive", p)
		}
	}
}

func TestPowLaws(t *testing.T) {
	f := func(a uint32, e1, e2 uint16) bool {
		x, y := uint64(e1), uint64(e2)
		return Mul(Pow(a, x), Pow(a, y)) == Pow(a, x+y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAlphaMatchesMul(t *testing.T) {
	f := func(a uint32) bool { return MulAlpha(a) == Mul(a, Alpha) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlphaPowReduction(t *testing.T) {
	// AlphaPow must reduce exponents mod the group order.
	if AlphaPow(0) != 1 {
		t.Fatalf("AlphaPow(0) = %#x", AlphaPow(0))
	}
	if AlphaPow(Order) != 1 {
		t.Fatalf("AlphaPow(Order) = %#x, want 1", AlphaPow(Order))
	}
	if AlphaPow(Order+5) != AlphaPow(5) {
		t.Fatal("AlphaPow must be periodic with period Order")
	}
}

func TestHornerSmall(t *testing.T) {
	// d0 + α·d1 + α²·d2 computed by hand.
	d := []uint32{5, 9, 3}
	want := Add(Add(d[0], Mul(Alpha, d[1])), Mul(Mul(Alpha, Alpha), d[2]))
	if got := Horner(d); got != want {
		t.Fatalf("Horner = %#x, want %#x", got, want)
	}
}

func TestHornerEmpty(t *testing.T) {
	if Horner(nil) != 0 {
		t.Fatal("Horner(nil) must be 0")
	}
}

// TestHornerSplit is the property fragmentation depends on: splitting a
// run anywhere and summing the two weighted contributions equals the
// weighted contribution of the whole run.
func TestHornerSplit(t *testing.T) {
	f := func(data []uint32, at uint8, start uint16) bool {
		if len(data) == 0 {
			return true
		}
		k := int(at) % len(data)
		s := uint64(start)
		whole := DotAlpha(s, data)
		split := Add(DotAlpha(s, data[:k]), DotAlpha(s+uint64(k), data[k:]))
		return whole == split
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDotAlphaOrderIndependent: contributions of disjoint runs XOR to
// the same total no matter the order of accumulation — the property
// that lets the receiver checksum disordered chunks.
func TestDotAlphaOrderIndependent(t *testing.T) {
	data := []uint32{0xAAAA5555, 1, 2, 3, 0xFFFFFFFF, 42, 7, 9}
	whole := DotAlpha(0, data)
	// Accumulate per-symbol in reversed order.
	var acc uint32
	for i := len(data) - 1; i >= 0; i-- {
		acc = Add(acc, DotAlpha(uint64(i), data[i:i+1]))
	}
	if acc != whole {
		t.Fatalf("disordered accumulation %#x != whole %#x", acc, whole)
	}
}

func TestSum(t *testing.T) {
	if Sum([]uint32{1, 2, 4}) != 7 {
		t.Fatal("Sum of 1,2,4 must be 7")
	}
	if Sum(nil) != 0 {
		t.Fatal("Sum(nil) must be 0")
	}
}

func BenchmarkMul(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Mul(0xDEADBEEF, uint32(i))
	}
}

func BenchmarkHorner1K(b *testing.B) {
	d := make([]uint32, 1024)
	for i := range d {
		d[i] = uint32(i) * 0x9E3779B9
	}
	b.SetBytes(int64(len(d) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Horner(d)
	}
}

func BenchmarkAlphaPow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = AlphaPow(uint64(i) * 16384)
	}
}

// TestKnownAnswers pins the field to its reduction polynomial: these
// vectors change if Poly ever changes, which would silently break
// wire compatibility of every WSC-2 parity.
func TestKnownAnswers(t *testing.T) {
	cases := []struct {
		a, b, want uint32
	}{
		{0xDEADBEEF, 0x12345678, 0x9F14AD51},
		{0xFFFFFFFF, 0xFFFFFFFF, 0xAAD54FFE},
		{0x80000000, 2, Poly}, // x^31 * x = x^32 = Poly (mod p)
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
	// Powers used by the default errdet layout positions.
	if got := AlphaPow(16384); got != 0x50D95AC6 {
		t.Errorf("AlphaPow(16384) = %#x", got)
	}
	if got := AlphaPow(16387); got != 0x864AD63E {
		t.Errorf("AlphaPow(16387) = %#x", got)
	}
	if got := Inv(3); got != 0xFFC00002 {
		t.Errorf("Inv(3) = %#x", got)
	}
}
