// AVX2 + PCLMULQDQ shift-tree kernel for the WSC-2 byte path.
//
// The layout mirrors the pure-Go tree kernel in tables.go: each
// 128-byte block (32 big-endian symbols, two per qword) is combined
// into one polynomial z of degree <= 62 by a shift/XOR tree, and a
// single unreduced accumulator A (degree < 96, held in an XMM) steps
// by x^32 per block:
//
//	A' = lo(A)·x^32  ^  hi(A)·(x^96 mod P)  ^  z
//
// via two carryless multiplies — the same folding scheme as the Intel
// PCLMULQDQ CRC paper, with constants for this field's polynomial.
// The tree levels run 4 qwords at a time in YMM registers: VPSLLVQ
// applies the per-lane weights x^{0,2,4,6} in one instruction, whole
// register shifts apply x^{8,16,24}, and a horizontal XOR folds the 4
// partial sums into z. The raw (unswapped) data XOR rides along for
// the P0 parity; byte order is fixed up once by the Go caller.
//
// See hornerSumBytesCLMUL in kernel_amd64.go for the caller contract.

#include "textflag.h"

// Byte-reverse each qword (big-endian load) via VPSHUFB.
DATA bswapQ<>+0(SB)/8, $0x0001020304050607
DATA bswapQ<>+8(SB)/8, $0x08090a0b0c0d0e0f
DATA bswapQ<>+16(SB)/8, $0x0001020304050607
DATA bswapQ<>+24(SB)/8, $0x08090a0b0c0d0e0f
GLOBL bswapQ<>(SB), RODATA, $32

// Low-half mask for the level-1 combine t = (w>>32) ^ ((w&lo32)<<1).
DATA lo32Q<>+0(SB)/8, $0x00000000ffffffff
DATA lo32Q<>+8(SB)/8, $0x00000000ffffffff
DATA lo32Q<>+16(SB)/8, $0x00000000ffffffff
DATA lo32Q<>+24(SB)/8, $0x00000000ffffffff
GLOBL lo32Q<>(SB), RODATA, $32

// Per-lane weights x^{0,2,4,6} for VPSLLVQ.
DATA sllvQ<>+0(SB)/8, $0
DATA sllvQ<>+8(SB)/8, $2
DATA sllvQ<>+16(SB)/8, $4
DATA sllvQ<>+24(SB)/8, $6
GLOBL sllvQ<>(SB), RODATA, $32

// func hornerTreeCLMUL(p *byte, blocks int, seed uint64, k *[2]uint64) (accLo, accHi, xorRaw uint64)
TEXT ·hornerTreeCLMUL(SB), NOSPLIT, $0-56
	MOVQ p+0(FP), SI
	MOVQ blocks+8(FP), DX
	MOVQ k+24(FP), AX

	// X9 = acc, seeded with the (reduced) parity of everything above
	// the full blocks.
	MOVQ seed+16(FP), X9

	// X0 = folding constants [x^32, x^96 mod P].
	VMOVDQU (AX), X0

	VMOVDQU bswapQ<>(SB), Y5
	VMOVDQU lo32Q<>(SB), Y6
	VMOVDQU sllvQ<>(SB), Y7
	VPXOR   Y8, Y8, Y8             // raw data XOR

	// Walk blocks from the top of the buffer down (Horner order).
	MOVQ DX, R8
	SHLQ $7, R8
	LEAQ -128(SI)(R8*1), SI

blockloop:
	VMOVDQU (SI), Y1
	VMOVDQU 32(SI), Y2
	VMOVDQU 64(SI), Y3
	VMOVDQU 96(SI), Y4

	VPXOR Y1, Y8, Y8
	VPXOR Y2, Y8, Y8
	VPXOR Y3, Y8, Y8
	VPXOR Y4, Y8, Y8

	VPSHUFB Y5, Y1, Y1
	VPSHUFB Y5, Y2, Y2
	VPSHUFB Y5, Y3, Y3
	VPSHUFB Y5, Y4, Y4

	// Level 1: t = (w>>32) ^ ((w & lo32) << 1), four qwords at a time.
	VPSRLQ $32, Y1, Y10
	VPAND  Y6, Y1, Y1
	VPSLLQ $1, Y1, Y1
	VPXOR  Y10, Y1, Y1

	VPSRLQ $32, Y2, Y11
	VPAND  Y6, Y2, Y2
	VPSLLQ $1, Y2, Y2
	VPXOR  Y11, Y2, Y2

	VPSRLQ $32, Y3, Y12
	VPAND  Y6, Y3, Y3
	VPSLLQ $1, Y3, Y3
	VPXOR  Y12, Y3, Y3

	VPSRLQ $32, Y4, Y13
	VPAND  Y6, Y4, Y4
	VPSLLQ $1, Y4, Y4
	VPXOR  Y13, Y4, Y4

	// Per-lane weights x^{0,2,4,6} then per-register x^{8,16,24}.
	VPSLLVQ Y7, Y1, Y1
	VPSLLVQ Y7, Y2, Y2
	VPSLLVQ Y7, Y3, Y3
	VPSLLVQ Y7, Y4, Y4

	VPSLLQ $8, Y2, Y2
	VPSLLQ $16, Y3, Y3
	VPSLLQ $24, Y4, Y4

	VPXOR Y2, Y1, Y1
	VPXOR Y4, Y3, Y3
	VPXOR Y3, Y1, Y1

	// Horizontal XOR of the 4 partial sums: z in X1 low qword.
	VEXTRACTI128 $1, Y1, X10
	VPXOR        X10, X1, X1
	VPUNPCKHQDQ  X1, X1, X10
	VPXOR        X10, X1, X1

	// Fold: acc = clmul(lo(acc), x^32) ^ clmul(hi(acc), x^96 mod P) ^ z.
	VPCLMULQDQ $0x00, X0, X9, X10
	VPCLMULQDQ $0x11, X0, X9, X11
	VPXOR      X11, X10, X9
	VPXOR      X1, X9, X9

	SUBQ $128, SI
	DECQ DX
	JNZ  blockloop

	// Fold the raw XOR accumulator to one qword.
	VEXTRACTI128 $1, Y8, X10
	VPXOR        X10, X8, X8
	VPUNPCKHQDQ  X8, X8, X10
	VPXOR        X10, X8, X8

	MOVQ        X9, accLo+32(FP)
	VPUNPCKHQDQ X9, X9, X11
	MOVQ        X11, accHi+40(FP)
	MOVQ        X8, xorRaw+48(FP)
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
