// Table-driven fast kernels.
//
// Multiplication by a *fixed* field element c is GF(2)-linear in the
// 32 input bits, so it decomposes into four byte-indexed lookups — the
// same slicing-by-N trick that makes software CRCs fast (Sarwate,
// stdlib hash/crc32):
//
//	c·x = T0[x&255] ^ T1[x>>8&255] ^ T2[x>>16&255] ^ T3[x>>24]
//
// The hot kernels push one step further: the lane-split Horner's step
// multiplier is α^L = x^8 (for L = 8 lanes), and multiplying by x^8 is
// just an 8-bit shift whose overflowing top byte reduces through a
// single 256-entry table:
//
//	x^8·a = a<<8 ^ red[a>>24],  red[t] = (t·x^32) mod P = Mul(t, Poly)
//
// one load per symbol instead of four. Three kernels build on this:
//
//   - a lane-split Horner that walks hornerLanes interleaved lanes,
//     each advanced by one x^8 step per block, and recombines the lane
//     accumulators with α^j weights. This breaks the
//     one-multiply-per-symbol serial dependency chain of the scalar
//     Horner so the CPU can overlap the lane updates (ILP).
//
//   - a shift-tree byte kernel for the WSC-2 hot path, fused with the
//     running XOR sum so both parities come out of one pass. Because
//     α = x, consecutive symbols differ by one bit of shift, so a
//     3-level shift/XOR tree combines 16 symbols into a single
//     unreduced word of degree ≤ 46; two trees join into a 32-symbol
//     word and a single 64-bit accumulator advances by x^32 per block,
//     reducing through byte tables for x^64 ≡ Poly² (mod P). One
//     reduction per 32 symbols instead of one per symbol.
//
//   - a table-driven AlphaPow: decompose the exponent into 4 bytes
//     and multiply 4 precomputed α^(b·2^{8j}) factors — 4 lookups and
//     at most 3 Muls instead of up to ~58 Muls of square-and-multiply.
//
// Every table is built once at package init from the scalar Mul/Pow,
// and the scalar implementations are kept, pinned by the known-answer
// vectors and differential tests, as the reference the fast kernels
// must match bit for bit.

package gf

import "encoding/binary"

// hornerLanes is the interleave factor L of the lane-split Horner.
// Each lane update is one shift, one reduction-table load and two
// XORs; 8 lanes give the out-of-order core enough independent chains
// to hide the load latency without spilling the accumulators.
const hornerLanes = 8

// slicedMin is the symbol count below which the lane-split Horner is
// not worth its setup and recombination overhead.
const slicedMin = 2 * hornerLanes

// A mulTable is the generic byte-sliced table of a fixed multiplier c:
// t.mul(x) == Mul(c, x) for all x, in 4 lookups and 3 XORs. The hot
// paths use the sparser x^8 reduction below instead; this is the
// general mechanism for a dense fixed power α^k, kept exercised by the
// differential tests and benchmarks.
type mulTable [4][256]uint32

func newMulTable(c uint32) *mulTable {
	var t mulTable
	for j := 0; j < 4; j++ {
		for b := 0; b < 256; b++ {
			t[j][b] = Mul(uint32(b)<<(8*j), c)
		}
	}
	return &t
}

func (t *mulTable) mul(x uint32) uint32 {
	return t[0][x&0xFF] ^ t[1][x>>8&0xFF] ^ t[2][x>>16&0xFF] ^ t[3][x>>24]
}

// x8redTab[t] = (t·x^32) mod P: the reduction of the byte that an
// 8-bit shift pushes past degree 31. Since x^32 ≡ P (mod P), the entry
// is just Mul(t, Poly).
var x8redTab = func() *[256]uint32 {
	var t [256]uint32
	for b := 0; b < 256; b++ {
		t[b] = Mul(uint32(b), Poly)
	}
	return &t
}()

// alphaPowTab[j][b] = α^(b·2^{8j}); the four factors of α^e for any
// 32-bit exponent e written in base 256.
var alphaPowTab = func() *[4][256]uint32 {
	var t [4][256]uint32
	for j := 0; j < 4; j++ {
		for b := 0; b < 256; b++ {
			t[j][b] = Pow(Alpha, uint64(b)<<(8*j))
		}
	}
	return &t
}()

// alphaPowFast returns α^e for e already reduced below Order. Zero
// bytes contribute the factor α^0 = 1 and are skipped, so small
// exponents — the common case for chunk positions — cost one lookup.
func alphaPowFast(e uint32) uint32 {
	r := alphaPowTab[0][e&0xFF]
	if b := e >> 8 & 0xFF; b != 0 {
		r = Mul(r, alphaPowTab[1][b])
	}
	if b := e >> 16 & 0xFF; b != 0 {
		r = Mul(r, alphaPowTab[2][b])
	}
	if b := e >> 24; b != 0 {
		r = Mul(r, alphaPowTab[3][b])
	}
	return r
}

// hornerSliced evaluates Horner(d) with hornerLanes interleaved lanes.
//
// Lane j accumulates V_j = Σ_q (α^L)^q · d[Lq+j] by a Horner walk in
// α^L = x^8; the final value is Σ_j α^j · V_j. A partial top block
// seeds the lane accumulators directly (conceptual zero-padding above
// the top). Exact arithmetic: the result is bit-identical to the
// scalar Horner for every input length.
func hornerSliced(d []uint32) uint32 {
	n := len(d)
	full := n &^ (hornerLanes - 1)
	// Lane accumulators live in named locals so the compiler keeps
	// them in registers across the block loop.
	var top [hornerLanes]uint32
	copy(top[:], d[full:])
	a0, a1, a2, a3 := top[0], top[1], top[2], top[3]
	a4, a5, a6, a7 := top[4], top[5], top[6], top[7]
	red := x8redTab
	for i := full - hornerLanes; i >= 0; i -= hornerLanes {
		blk := d[i : i+hornerLanes : i+hornerLanes]
		a0 = a0<<8 ^ red[a0>>24] ^ blk[0]
		a1 = a1<<8 ^ red[a1>>24] ^ blk[1]
		a2 = a2<<8 ^ red[a2>>24] ^ blk[2]
		a3 = a3<<8 ^ red[a3>>24] ^ blk[3]
		a4 = a4<<8 ^ red[a4>>24] ^ blk[4]
		a5 = a5<<8 ^ red[a5>>24] ^ blk[5]
		a6 = a6<<8 ^ red[a6>>24] ^ blk[6]
		a7 = a7<<8 ^ red[a7>>24] ^ blk[7]
	}
	r := a7
	r = MulAlpha(r) ^ a6
	r = MulAlpha(r) ^ a5
	r = MulAlpha(r) ^ a4
	r = MulAlpha(r) ^ a3
	r = MulAlpha(r) ^ a2
	r = MulAlpha(r) ^ a1
	return MulAlpha(r) ^ a0
}

// treeSyms is the block size of the shift-tree byte kernel: 32 symbols
// (128 bytes) per accumulator step. Shorter runs use the plain
// branchless-MulAlpha recurrence.
const treeSyms = 32

// tree32Red[j][t] reduces byte j of the 32 bits that an x^32 step
// pushes past degree 63: the overflow t·x^64 re-enters as
// Mul(t, Poly²), since x^64 ≡ (x^32)² ≡ Poly² (mod P). Entries are
// uint64 because the accumulator is kept unreduced at degree < 64.
var tree32Red = func() *[4][256]uint64 {
	var t [4][256]uint64
	pp := Mul(Poly, Poly)
	for j := 0; j < 4; j++ {
		for b := 0; b < 256; b++ {
			t[j][b] = uint64(Mul(uint32(b)<<(8*j), pp))
		}
	}
	return &t
}()

const lo32 = 0xFFFF_FFFF

// tree16 combines 16 consecutive big-endian symbols (packed two per
// uint64, earlier symbol in the high half) into the single unreduced
// word Σ x^j·s_j, degree ≤ 46. Level 1 joins the halves of each word
// (shift 1), level 2 joins word pairs (shift 2), level 3 joins quads
// (shift 4) and the final line joins the two octets (shift 8). No
// reduction happens here — degree 46 still fits the 64-bit word.
func tree16(w0, w1, w2, w3, w4, w5, w6, w7 uint64) uint64 {
	t0 := w0>>32 ^ (w0&lo32)<<1
	t1 := w1>>32 ^ (w1&lo32)<<1
	t2 := w2>>32 ^ (w2&lo32)<<1
	t3 := w3>>32 ^ (w3&lo32)<<1
	t4 := w4>>32 ^ (w4&lo32)<<1
	t5 := w5>>32 ^ (w5&lo32)<<1
	t6 := w6>>32 ^ (w6&lo32)<<1
	t7 := w7>>32 ^ (w7&lo32)<<1
	u0 := t0 ^ t1<<2
	u1 := t2 ^ t3<<2
	u2 := t4 ^ t5<<2
	u3 := t6 ^ t7<<2
	return u0 ^ u1<<4 ^ (u2^u3<<4)<<8
}

// HornerSumBytes evaluates both WSC-2 parities of a contiguous byte
// run in one pass: it returns Horner over the big-endian 32-bit
// symbols of b (the position-weighted accumulator, still to be scaled
// by α^start) and their plain XOR sum (the P0 contribution).
// len(b) must be a multiple of 4; trailing bytes are ignored.
//
// Long runs dispatch to the CLMUL/AVX2 kernel when the CPU has one
// (kernel_amd64.s), otherwise to the portable shift-tree kernel
// (HornerSumBytesTable). Both are bit-identical to
// HornerSumBytesScalar for every input.
func HornerSumBytes(b []byte) (horner, xor uint32) {
	if h, x, ok := hornerSumBytesArch(b); ok {
		return h, x
	}
	return HornerSumBytesTable(b)
}

// HornerSumBytesTable is the portable shift-tree kernel: two tree16
// halves join into one degree ≤ 62 word per 32-symbol block, and a
// single unreduced 64-bit accumulator advances by x^32 per block
// through the tree32Red byte tables. A partial top block is folded in
// by the scalar recurrence first (it seeds the accumulator, reduced,
// so the degree < 64 invariant holds). Exported so the P9 experiment
// can measure it even on machines where the SIMD kernel wins the
// HornerSumBytes dispatch.
func HornerSumBytesTable(b []byte) (horner, xor uint32) {
	n := len(b) / 4
	if n < treeSyms {
		var acc, sum uint32
		for i := n - 1; i >= 0; i-- {
			s := binary.BigEndian.Uint32(b[4*i:])
			acc = MulAlpha(acc) ^ s
			sum ^= s
		}
		return acc, sum
	}
	full := n &^ (treeSyms - 1)
	var acc, x uint64
	{
		var th, tx uint32
		for i := n - 1; i >= full; i-- {
			s := binary.BigEndian.Uint32(b[4*i:])
			th = MulAlpha(th) ^ s
			tx ^= s
		}
		acc, x = uint64(th), uint64(tx)
	}
	r := tree32Red
	bb := b[: 4*full : 4*full]
	for off := len(bb) - 128; off >= 0; off -= 128 {
		blk := bb[off : off+128 : off+128]
		w0 := binary.BigEndian.Uint64(blk[0:8])
		w1 := binary.BigEndian.Uint64(blk[8:16])
		w2 := binary.BigEndian.Uint64(blk[16:24])
		w3 := binary.BigEndian.Uint64(blk[24:32])
		w4 := binary.BigEndian.Uint64(blk[32:40])
		w5 := binary.BigEndian.Uint64(blk[40:48])
		w6 := binary.BigEndian.Uint64(blk[48:56])
		w7 := binary.BigEndian.Uint64(blk[56:64])
		x ^= (w0 ^ w1) ^ (w2 ^ w3) ^ ((w4 ^ w5) ^ (w6 ^ w7))
		zlo := tree16(w0, w1, w2, w3, w4, w5, w6, w7)
		w0 = binary.BigEndian.Uint64(blk[64:72])
		w1 = binary.BigEndian.Uint64(blk[72:80])
		w2 = binary.BigEndian.Uint64(blk[80:88])
		w3 = binary.BigEndian.Uint64(blk[88:96])
		w4 = binary.BigEndian.Uint64(blk[96:104])
		w5 = binary.BigEndian.Uint64(blk[104:112])
		w6 = binary.BigEndian.Uint64(blk[112:120])
		w7 = binary.BigEndian.Uint64(blk[120:128])
		x ^= (w0 ^ w1) ^ (w2 ^ w3) ^ ((w4 ^ w5) ^ (w6 ^ w7))
		z := zlo ^ tree16(w0, w1, w2, w3, w4, w5, w6, w7)<<16
		t32 := acc >> 32
		acc = acc<<32 ^ z ^ r[0][t32&0xFF] ^ r[1][t32>>8&0xFF] ^ r[2][t32>>16&0xFF] ^ r[3][t32>>24]
	}
	// Final reduction of the unreduced accumulator and fold of the
	// packed XOR lanes.
	h := uint32(acc) ^ Mul(uint32(acc>>32), Poly)
	return h, uint32(x) ^ uint32(x>>32)
}

// Pinned scalar references. These are the original implementations,
// frozen so the differential tests, the FuzzWSCKernels fuzzer and the
// P9 experiment always have the genuine pre-table baseline to compare
// against (both for correctness and for measured speedup).

// mulAlphaBranchy is the original conditional-reduction MulAlpha. Its
// taken/not-taken pattern follows the data's top bit — the dependency
// the branchless MulAlpha and the lane tables exist to remove.
func mulAlphaBranchy(a uint32) uint32 {
	hi := a & 0x8000_0000
	a <<= 1
	if hi != 0 {
		a ^= Poly
	}
	return a
}

// HornerScalar is the pinned reference Horner: one MulAlpha per
// symbol, a single serial dependency chain.
func HornerScalar(d []uint32) uint32 {
	var acc uint32
	for i := len(d) - 1; i >= 0; i-- {
		acc = mulAlphaBranchy(acc) ^ d[i]
	}
	return acc
}

// HornerSumBytesScalar is the pinned reference byte kernel: a
// byte-faithful copy of the original wsc.Accumulator.AddBytes inner
// loop (two-index subslice per symbol, branchy MulAlpha) — the code
// every transported byte went through before the table kernels.
func HornerSumBytesScalar(b []byte) (horner, xor uint32) {
	var acc, sum uint32
	for i := len(b) - 4; i >= 0; i -= 4 {
		s := binary.BigEndian.Uint32(b[i : i+4])
		acc = mulAlphaBranchy(acc) ^ s
		sum ^= s
	}
	return acc, sum
}

// AlphaPowScalar is the pinned reference AlphaPow: square-and-multiply
// via Pow, up to ~58 full Muls per call.
func AlphaPowScalar(e uint64) uint32 { return Pow(Alpha, e%Order) }
