// Package gf implements arithmetic in the finite field GF(2^32).
//
// It is the substrate for the WSC-2 weighted sum code of McAuley
// [MCAU 93a], which the paper's end-to-end error detection system
// (Section 4) uses because — unlike a CRC — a weighted sum code can be
// computed over data that arrives in any order.
//
// Field elements are uint32 values interpreted as polynomials over
// GF(2) of degree < 32. Addition is XOR. Multiplication is polynomial
// multiplication reduced modulo the primitive polynomial
//
//	x^32 + x^22 + x^2 + x + 1
//
// whose primitivity (the generator Alpha = x has multiplicative order
// 2^32-1) is asserted by the package tests, so powers of Alpha used as
// per-position weights never collide within a code block.
package gf

// Poly is the low 32 bits of the reduction polynomial; the x^32 term is
// implicit. Bits 22, 2, 1 and 0 are set.
const Poly uint32 = 0x0040_0007

// Alpha is the canonical generator of the multiplicative group: the
// polynomial x.
const Alpha uint32 = 2

// Order is the size of the multiplicative group, 2^32 - 1.
const Order uint64 = 1<<32 - 1

// Add returns a + b in GF(2^32). Addition and subtraction coincide.
func Add(a, b uint32) uint32 { return a ^ b }

// Mul returns a * b in GF(2^32) using shift-and-add reduction.
func Mul(a, b uint32) uint32 {
	var r uint32
	for b != 0 {
		if b&1 != 0 {
			r ^= a
		}
		hi := a & 0x8000_0000
		a <<= 1
		if hi != 0 {
			a ^= Poly
		}
		b >>= 1
	}
	return r
}

// Pow returns a**e in GF(2^32) by square-and-multiply.
func Pow(a uint32, e uint64) uint32 {
	r := uint32(1)
	for e > 0 {
		if e&1 != 0 {
			r = Mul(r, a)
		}
		a = Mul(a, a)
		e >>= 1
	}
	return r
}

// AlphaPow returns Alpha**e, the weight attached to symbol position e by
// the WSC-2 code. Exponents are reduced modulo Order since Alpha
// generates the full multiplicative group. The exponent is decomposed
// into 4 bytes and resolved against precomputed α^(b·2^{8j}) tables —
// 4 lookups and at most 3 Muls (see tables.go); AlphaPowScalar is the
// pinned square-and-multiply reference.
func AlphaPow(e uint64) uint32 { return alphaPowFast(uint32(e % Order)) }

// Inv returns the multiplicative inverse of a. Inv(0) is 0 by
// convention (0 has no inverse; callers must not rely on it).
func Inv(a uint32) uint32 {
	if a == 0 {
		return 0
	}
	// a^(2^32-2) = a^-1 by Fermat's little theorem for fields.
	return Pow(a, Order-1)
}

// Div returns a / b, i.e. a * Inv(b). Division by zero returns 0.
func Div(a, b uint32) uint32 { return Mul(a, Inv(b)) }

// Table-driven multiplication by Alpha: multiplying by x is a single
// shift plus conditional reduction, much cheaper than a full Mul. Hot
// loops (Horner evaluation in the WSC-2 encoder) use this.

// MulAlpha returns a * Alpha. The reduction is branchless: the top bit
// is smeared across the word by an arithmetic shift and masks Poly in,
// so the data-dependent (hence unpredictable) branch of the obvious
// formulation never reaches the branch predictor.
func MulAlpha(a uint32) uint32 {
	return a<<1 ^ (uint32(int32(a)>>31) & Poly)
}

// Horner evaluates sum over i of Alpha^i * d[i] for i = 0..len(d)-1
// using Horner's rule: (((d[n-1]*α + d[n-2])*α + ...)*α + d[0]).
// This is the contiguous-run primitive the WSC-2 encoder builds on: a
// run of n symbols starting at absolute position p contributes
// Alpha^p * Horner(run) to the weighted parity.
//
// Long runs dispatch to the lane-split table kernel (tables.go), which
// is bit-identical to the scalar recurrence; HornerScalar is the
// pinned single-chain reference.
//
//lint:hot
func Horner(d []uint32) uint32 {
	if len(d) >= slicedMin {
		return hornerSliced(d)
	}
	var acc uint32
	for i := len(d) - 1; i >= 0; i-- {
		acc = MulAlpha(acc) ^ d[i]
	}
	return acc
}

// DotAlpha evaluates sum over i of Alpha^(start+i) * d[i]: the weighted
// contribution of a contiguous symbol run beginning at absolute
// position start.
//
//lint:hot
func DotAlpha(start uint64, d []uint32) uint32 {
	return Mul(AlphaPow(start), Horner(d))
}

// Sum returns the unweighted XOR-sum of the symbols (the P0 parity of a
// weighted sum code).
//
//lint:hot
func Sum(d []uint32) uint32 {
	var acc uint32
	for _, v := range d {
		acc ^= v
	}
	return acc
}
