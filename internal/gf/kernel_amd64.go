//go:build amd64 && gc

package gf

import (
	"encoding/binary"
	"math/bits"
)

// The CLMUL kernel (kernel_amd64.s) needs PCLMULQDQ for the x^32
// folding step, AVX2 for the YMM shift tree, and OS-enabled YMM state.
// Everything is probed once at init; on any miss the pure-Go tree
// kernel in tables.go carries the byte path alone.

func hornerTreeCLMUL(p *byte, blocks int, seed uint64, k *[2]uint64) (accLo, accHi, xorRaw uint64)

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// clmulK holds the folding constants [x^32, x^96 mod P]. x^96 is
// derived from the scalar Pow at init so the assembly can never drift
// from the reference field arithmetic.
var clmulK = [2]uint64{1 << 32, uint64(Pow(Alpha, 96))}

// x64red = x^64 mod P, the weight of the accumulator's high qword in
// the final reduction.
var x64red = Mul(Poly, Poly)

var haveCLMUL = func() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const pclmul = 1 << 1
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&(pclmul|osxsave|avx) != pclmul|osxsave|avx {
		return false
	}
	// XCR0 bits 1 (XMM) and 2 (YMM) must both be OS-enabled.
	xeax, _ := xgetbv0()
	if xeax&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}()

// HasCLMUL reports whether the carryless-multiply SIMD kernel is
// active on this machine (exposed for the P9 experiment's kernel
// column labels).
func HasCLMUL() bool { return haveCLMUL }

// hornerSumBytesArch is the architecture byte kernel behind
// HornerSumBytes: the CLMUL/AVX2 path when the CPU supports it.
// ok=false means no arch kernel ran and the caller must fall back.
func hornerSumBytesArch(b []byte) (horner, xor uint32, ok bool) {
	n := len(b) / 4
	if !haveCLMUL || n < treeSyms {
		return 0, 0, false
	}
	full := n &^ (treeSyms - 1)
	// Scalar pre-loop over the partial top block seeds the accumulator
	// (reduced, so the degree invariant of the folding loop holds).
	var th, tx uint32
	for i := n - 1; i >= full; i-- {
		s := binary.BigEndian.Uint32(b[4*i:])
		th = MulAlpha(th) ^ s
		tx ^= s
	}
	accLo, accHi, xraw := hornerTreeCLMUL(&b[0], full/treeSyms, uint64(th), &clmulK)
	// acc = accHi·x^64 ^ accLo, degree < 96: reduce both qwords.
	h := uint32(accLo) ^ Mul(uint32(accLo>>32), Poly) ^ Mul(uint32(accHi), x64red)
	// xraw is the XOR of raw little-endian qword loads; XOR commutes
	// with the byte swap, so one swap after folding recovers the
	// big-endian symbol sum.
	x := bits.ReverseBytes32(uint32(xraw)^uint32(xraw>>32)) ^ tx
	return h, x, true
}
