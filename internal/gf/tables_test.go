package gf

import (
	"math/rand"
	"testing"
)

// The fast kernels must be bit-identical to the pinned scalar
// references on every input — they are the same algebra, evaluated in
// a different order, over exact arithmetic.

func TestMulAlphaBranchlessMatchesBranchy(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for _, a := range []uint32{0, 1, 2, Poly, 0x8000_0000, 0x7FFF_FFFF, 0xFFFF_FFFF} {
		if got, want := MulAlpha(a), mulAlphaBranchy(a); got != want {
			t.Fatalf("MulAlpha(%#x) = %#x, branchy ref %#x", a, got, want)
		}
	}
	for i := 0; i < 100000; i++ {
		a := rng.Uint32()
		if got, want := MulAlpha(a), mulAlphaBranchy(a); got != want {
			t.Fatalf("MulAlpha(%#x) = %#x, branchy ref %#x", a, got, want)
		}
		if got, want := MulAlpha(a), Mul(a, Alpha); got != want {
			t.Fatalf("MulAlpha(%#x) = %#x, Mul ref %#x", a, got, want)
		}
	}
}

func TestMulTableMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	for _, c := range []uint32{0, 1, Alpha, Poly, 0xDEADBEEF, Pow(Alpha, hornerLanes)} {
		tab := newMulTable(c)
		for i := 0; i < 10000; i++ {
			x := rng.Uint32()
			if got, want := tab.mul(x), Mul(c, x); got != want {
				t.Fatalf("table(%#x).mul(%#x) = %#x, want %#x", c, x, got, want)
			}
		}
	}
}

func TestAlphaPowTableMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(903))
	exps := []uint64{0, 1, 2, 31, 32, 255, 256, 65535, 65536, 1 << 24,
		Order - 1, Order, Order + 1, 1<<29 - 2, 1 << 40, 1<<64 - 1}
	for i := 0; i < 5000; i++ {
		exps = append(exps, rng.Uint64())
	}
	for _, e := range exps {
		if got, want := AlphaPow(e), AlphaPowScalar(e); got != want {
			t.Fatalf("AlphaPow(%d) = %#x, scalar ref %#x", e, got, want)
		}
	}
}

func TestHornerSlicedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(904))
	// Every length through several lane blocks, then a spread of
	// larger ones: all partial-top-block shapes are exercised.
	lens := make([]int, 0, 80)
	for n := 0; n <= 4*hornerLanes+1; n++ {
		lens = append(lens, n)
	}
	lens = append(lens, 100, 255, 256, 1000, 4096)
	for _, n := range lens {
		d := make([]uint32, n)
		for i := range d {
			d[i] = rng.Uint32()
		}
		want := HornerScalar(d)
		if got := hornerSliced(d); got != want {
			t.Fatalf("hornerSliced(len %d) = %#x, scalar ref %#x", n, got, want)
		}
		if got := Horner(d); got != want {
			t.Fatalf("Horner(len %d) = %#x, scalar ref %#x", n, got, want)
		}
	}
}

func TestHornerSumBytesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(905))
	for _, n := range []int{0, 4, 8, 60, 64, 68, 124, 128, 132, 252, 256, 260,
		1024, 4096, 16384, 65536} {
		b := make([]byte, n)
		rng.Read(b)
		wantH, wantX := HornerSumBytesScalar(b)
		gotH, gotX := HornerSumBytes(b)
		if gotH != wantH || gotX != wantX {
			t.Fatalf("HornerSumBytes(%d bytes) = (%#x, %#x), scalar ref (%#x, %#x)",
				n, gotH, gotX, wantH, wantX)
		}
		gotH, gotX = HornerSumBytesTable(b)
		if gotH != wantH || gotX != wantX {
			t.Fatalf("HornerSumBytesTable(%d bytes) = (%#x, %#x), scalar ref (%#x, %#x)",
				n, gotH, gotX, wantH, wantX)
		}
	}
}

// Micro-benchmarks pinning each fast kernel against its pinned scalar
// reference. rotState feeds the MulAlpha benchmarks a value whose top
// bit flips irregularly so the branchy version pays real mispredicts.

func BenchmarkMulAlphaBranchy(b *testing.B) {
	x := uint32(0x9E3779B9)
	for i := 0; i < b.N; i++ {
		x = mulAlphaBranchy(x) ^ uint32(i)
	}
	sinkU32 = x
}

func BenchmarkMulAlphaBranchless(b *testing.B) {
	x := uint32(0x9E3779B9)
	for i := 0; i < b.N; i++ {
		x = MulAlpha(x) ^ uint32(i)
	}
	sinkU32 = x
}

func BenchmarkAlphaPowScalarRef(b *testing.B) {
	var r uint32
	for i := 0; i < b.N; i++ {
		r ^= AlphaPowScalar(uint64(i) * 16387)
	}
	sinkU32 = r
}

func BenchmarkAlphaPowTable(b *testing.B) {
	var r uint32
	for i := 0; i < b.N; i++ {
		r ^= AlphaPow(uint64(i) * 16387)
	}
	sinkU32 = r
}

func benchHornerBytes(b *testing.B, n int, f func([]byte) (uint32, uint32)) {
	rng := rand.New(rand.NewSource(906))
	buf := make([]byte, n)
	rng.Read(buf)
	b.SetBytes(int64(n))
	b.ResetTimer()
	var r uint32
	for i := 0; i < b.N; i++ {
		h, x := f(buf)
		r ^= h ^ x
	}
	sinkU32 = r
}

func BenchmarkHornerBytes16KScalarRef(b *testing.B) {
	benchHornerBytes(b, 16<<10, HornerSumBytesScalar)
}

func BenchmarkHornerBytes16KTable(b *testing.B) {
	benchHornerBytes(b, 16<<10, HornerSumBytesTable)
}

func BenchmarkHornerBytes16KBest(b *testing.B) {
	if HasCLMUL() {
		b.Logf("CLMUL/AVX2 kernel active")
	}
	benchHornerBytes(b, 16<<10, HornerSumBytes)
}

var sinkU32 uint32
