//go:build !amd64 || !gc

package gf

// HasCLMUL reports whether the carryless-multiply SIMD kernel is
// active on this machine. Non-amd64 builds always use the portable
// table kernels.
func HasCLMUL() bool { return false }

func hornerSumBytesArch(b []byte) (horner, xor uint32, ok bool) { return 0, 0, false }
