package vr

import (
	"errors"
	"math/rand"
	"testing"
)

func TestPDUCompletion(t *testing.T) {
	var p PDU
	if p.Complete() {
		t.Fatal("empty PDU is not complete")
	}
	if _, err := p.Add(0, 4, false); err != nil {
		t.Fatal(err)
	}
	if p.Complete() {
		t.Fatal("end unknown: cannot be complete")
	}
	if _, err := p.Add(8, 2, true); err != nil { // elements 8,9; end=10
		t.Fatal(err)
	}
	if p.Complete() {
		t.Fatal("gap [4,8) remains")
	}
	if end, ok := p.End(); !ok || end != 10 {
		t.Fatalf("End = %d,%v", end, ok)
	}
	if _, err := p.Add(4, 4, false); err != nil {
		t.Fatal(err)
	}
	if !p.Complete() {
		t.Fatalf("PDU must be complete; missing %v", p.Missing())
	}
	if p.Received() != 10 {
		t.Fatalf("Received = %d", p.Received())
	}
}

func TestPDUDuplicates(t *testing.T) {
	var p PDU
	fresh, _ := p.Add(0, 5, false)
	if len(fresh) != 1 {
		t.Fatalf("fresh = %v", fresh)
	}
	fresh, _ = p.Add(0, 5, false)
	if fresh != nil {
		t.Fatal("retransmission must be reported as duplicate")
	}
	// Partial retransmission overlapping new data.
	fresh, _ = p.Add(3, 5, false) // [3,8): only [5,8) fresh
	if len(fresh) != 1 || fresh[0] != (Interval{5, 8}) {
		t.Fatalf("fresh = %v", fresh)
	}
}

func TestPDUConflictingEnd(t *testing.T) {
	var p PDU
	if _, err := p.Add(4, 2, true); err != nil { // end = 6
		t.Fatal(err)
	}
	if _, err := p.Add(8, 1, true); !errors.Is(err, ErrConflictingEnd) {
		t.Fatalf("want ErrConflictingEnd, got %v", err)
	}
	// Same end again is fine (retransmitted final chunk).
	if _, err := p.Add(4, 2, true); err != nil {
		t.Fatalf("retransmitted final chunk: %v", err)
	}
}

func TestPDUBeyondEnd(t *testing.T) {
	var p PDU
	_, _ = p.Add(4, 2, true) // end = 6
	if _, err := p.Add(6, 3, false); !errors.Is(err, ErrBeyondEnd) {
		t.Fatalf("want ErrBeyondEnd, got %v", err)
	}
}

func TestPDUZeroLength(t *testing.T) {
	var p PDU
	fresh, err := p.Add(3, 0, false)
	if fresh != nil || err != nil {
		t.Fatal("zero-length add must be a no-op")
	}
}

func TestPDUMissing(t *testing.T) {
	var p PDU
	_, _ = p.Add(2, 2, false) // [2,4)
	_, _ = p.Add(8, 2, true)  // [8,10), end known
	miss := p.Missing()
	want := []Interval{{0, 2}, {4, 8}}
	if len(miss) != 2 || miss[0] != want[0] || miss[1] != want[1] {
		t.Fatalf("Missing = %v, want %v", miss, want)
	}
	// Without a known end, Missing reports internal gaps only.
	var q PDU
	_, _ = q.Add(5, 5, false)
	miss = q.Missing()
	if len(miss) != 1 || miss[0] != (Interval{0, 5}) {
		t.Fatalf("Missing = %v", miss)
	}
	var empty PDU
	if empty.Missing() != nil {
		t.Fatal("empty PDU has no expressible gaps")
	}
}

// TestPDUOrderIndependence: completion is reached at the same point
// regardless of arrival order — the property that lets a receiver
// process chunks as they arrive.
func TestPDUOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	type frag struct {
		sn, n uint64
		st    bool
	}
	frags := []frag{{0, 3, false}, {3, 3, false}, {6, 3, false}, {9, 1, true}}
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(frags))
		var p PDU
		for i, idx := range order {
			f := frags[idx]
			if _, err := p.Add(f.sn, f.n, f.st); err != nil {
				t.Fatal(err)
			}
			if complete := p.Complete(); complete != (i == len(order)-1) {
				t.Fatalf("trial %d: complete=%v after %d of %d fragments", trial, complete, i+1, len(order))
			}
		}
	}
}

func TestTrackerKeys(t *testing.T) {
	var tr Tracker
	kT := Key{LevelT, 1}
	kX := Key{LevelX, 1} // same ID, different level: distinct PDU
	if _, err := tr.Add(kT, 0, 4, true); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Add(kX, 0, 2, false); err != nil {
		t.Fatal(err)
	}
	if !tr.Complete(kT) {
		t.Fatal("T PDU complete")
	}
	if tr.Complete(kX) {
		t.Fatal("X PDU incomplete")
	}
	if tr.Active() != 2 {
		t.Fatalf("Active = %d", tr.Active())
	}
}

func TestTrackerRetire(t *testing.T) {
	var tr Tracker
	k := Key{LevelT, 5}
	_, _ = tr.Add(k, 0, 4, true)
	if !tr.Complete(k) {
		t.Fatal("should be complete")
	}
	tr.Retire(k)
	if tr.Active() != 0 {
		t.Fatal("retired PDU still active")
	}
	if !tr.Complete(k) {
		t.Fatal("retired PDU must still read as complete")
	}
	// A late duplicate of a retired PDU is recognised as duplicate.
	fresh, err := tr.Add(k, 0, 4, true)
	if err != nil || fresh != nil {
		t.Fatalf("late duplicate: fresh=%v err=%v", fresh, err)
	}
}

func TestTrackerFragments(t *testing.T) {
	var tr Tracker
	_, _ = tr.Add(Key{LevelT, 1}, 0, 2, false)
	_, _ = tr.Add(Key{LevelT, 1}, 6, 2, false)
	_, _ = tr.Add(Key{LevelT, 2}, 0, 2, false)
	if tr.Fragments() != 3 {
		t.Fatalf("Fragments = %d", tr.Fragments())
	}
}

func TestLevelString(t *testing.T) {
	if LevelT.String() != "T" || LevelX.String() != "X" {
		t.Fatal("Level strings")
	}
}

func BenchmarkTrackerBulk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var tr Tracker
		for pdu := uint32(0); pdu < 16; pdu++ {
			k := Key{LevelT, pdu}
			for f := uint64(0); f < 16; f++ {
				_, _ = tr.Add(k, f*64, 64, f == 15)
			}
			if !tr.Complete(k) {
				b.Fatal("incomplete")
			}
			tr.Retire(k)
		}
	}
}
