package vr

import (
	"errors"
	"fmt"

	"chunks/internal/telemetry"
)

// A PDU virtually reassembles one protocol data unit whose elements
// are numbered from 0 and whose final element carries the ST bit. The
// zero value is ready to use.
type PDU struct {
	set IntervalSet
	// end is the element count (SN of the ST element + 1), learned
	// when the ST-bearing chunk arrives.
	end     uint64
	haveEnd bool
}

// Errors reported by PDU tracking. Both indicate corruption that the
// paper's Table 1 classifies as "Reassembly Error": reassembly either
// never completes or completes inconsistently.
var (
	// ErrBeyondEnd reports data at an SN at or past the known final
	// element — e.g. a corrupted SN or LEN.
	ErrBeyondEnd = errors.New("vr: element beyond PDU end")
	// ErrConflictingEnd reports two chunks claiming different final
	// elements — e.g. a corrupted ST bit.
	ErrConflictingEnd = errors.New("vr: conflicting PDU end")
)

func conflictEndErr(old, new uint64) error {
	return fmt.Errorf("%w: %d then %d", ErrConflictingEnd, old, new) //lint:allow hotalloc cold error path: fmt boxes its operands
}

func beyondEndErr(lo, hi, end uint64) error {
	return fmt.Errorf("%w: [%d,%d) with end %d", ErrBeyondEnd, lo, hi, end) //lint:allow hotalloc cold error path: fmt boxes its operands
}

// Add records a chunk covering elements [sn, sn+n) with st set if the
// chunk's last element ends the PDU. It returns the fresh (previously
// unseen) sub-intervals; duplicates return nil.
func (p *PDU) Add(sn, n uint64, st bool) ([]Interval, error) {
	if n == 0 {
		return nil, nil
	}
	if st {
		end := sn + n
		if p.haveEnd && p.end != end {
			return nil, conflictEndErr(p.end, end) //lint:allow hotalloc cold error path: fmt boxes its operands
		}
		p.end = end
		p.haveEnd = true
	}
	if p.haveEnd && sn+n > p.end {
		return nil, beyondEndErr(sn, sn+n, p.end) //lint:allow hotalloc cold error path: fmt boxes its operands
	}
	return p.set.Add(sn, sn+n), nil
}

// Reset returns the PDU to the empty state, keeping the interval
// storage capacity — the recycling primitive behind pooled per-TPDU
// receive state (errdet retires verified TPDUs into a freelist).
func (p *PDU) Reset() {
	p.set.Reset()
	p.end, p.haveEnd = 0, false
}

// Complete reports whether every element 0..end-1 has been received —
// the virtual-reassembly-done signal that releases the incremental
// checksum comparison or the per-PDU interrupt [DAVI 91].
func (p *PDU) Complete() bool {
	return p.haveEnd && p.set.Covered(0, p.end)
}

// End returns the element count and whether it is known yet.
func (p *PDU) End() (uint64, bool) { return p.end, p.haveEnd }

// Received returns the number of distinct elements seen.
func (p *PDU) Received() uint64 { return p.set.Total() }

// Missing returns the gaps still needed, within [0, end) when the end
// is known, or before the highest received element otherwise.
func (p *PDU) Missing() []Interval {
	if p.haveEnd {
		return p.set.Gaps(p.end)
	}
	if len(p.set.ivs) == 0 {
		return nil
	}
	return p.set.Gaps(p.set.ivs[len(p.set.ivs)-1].Hi)
}

// Fragments returns the current interval count (state footprint).
func (p *PDU) Fragments() int { return p.set.Fragments() }

// High returns one past the highest element SN received, 0 when empty
// — what a receiver asks to have retransmitted "from" when the PDU's
// end is still unknown.
func (p *PDU) High() uint64 {
	if len(p.set.ivs) == 0 {
		return 0
	}
	return p.set.ivs[len(p.set.ivs)-1].Hi
}

// A Key identifies a PDU instance within one connection: the framing
// level plus the PDU's ID.
type Key struct {
	Level Level
	ID    uint32
}

// Level distinguishes the framing levels of the paper's three-tuple
// chunk system.
type Level uint8

const (
	// LevelT is transport PDU framing.
	LevelT Level = iota
	// LevelX is external (ALF) PDU framing.
	LevelX
)

func (l Level) String() string {
	if l == LevelT {
		return "T"
	}
	return "X"
}

// A Tracker virtually reassembles every PDU of a connection, keyed by
// framing level and PDU ID. The zero value is ready to use.
type Tracker struct {
	pdus map[Key]*PDU
	// completed holds keys whose PDU finished, kept so late
	// duplicates of a finished PDU are still recognised as duplicates
	// rather than restarting tracking.
	completed map[Key]bool

	// Sizes, when set, observes the per-PDU interval-set size after
	// every Add — the reassembly state footprint over time.
	Sizes *telemetry.Histogram
}

// Get returns the tracker for key, creating it if needed.
func (t *Tracker) Get(key Key) *PDU {
	if t.pdus == nil {
		t.pdus = make(map[Key]*PDU)
	}
	p := t.pdus[key]
	if p == nil {
		p = new(PDU)
		t.pdus[key] = p
	}
	return p
}

// Add records chunk data for the PDU identified by key. Data for an
// already-retired PDU is reported as fully duplicate (nil, nil).
func (t *Tracker) Add(key Key, sn, n uint64, st bool) ([]Interval, error) {
	if t.completed[key] {
		return nil, nil
	}
	p := t.Get(key)
	fresh, err := p.Add(sn, n, st)
	t.Sizes.Observe(int64(p.Fragments()))
	return fresh, err
}

// Complete reports whether key's PDU has fully arrived (or was already
// retired).
func (t *Tracker) Complete(key Key) bool {
	if t.completed[key] {
		return true
	}
	p := t.pdus[key]
	return p != nil && p.Complete()
}

// Retire discards per-PDU state once the PDU has been processed,
// remembering only that it finished. This bounds tracker memory over
// a long connection.
func (t *Tracker) Retire(key Key) {
	if t.completed == nil {
		t.completed = make(map[Key]bool)
	}
	t.completed[key] = true
	delete(t.pdus, key)
}

// Active returns the number of in-progress PDUs.
func (t *Tracker) Active() int { return len(t.pdus) }

// Fragments returns the total interval count across active PDUs — the
// whole tracker's state footprint.
func (t *Tracker) Fragments() int {
	n := 0
	for _, p := range t.pdus {
		n += p.Fragments()
	}
	return n
}
