package vr

import "sync"

// ParallelTracker is the software equivalent of the parallel assembly
// hardware the paper cites ([MCAU 93b], [STER 92]): virtual
// reassembly state sharded by PDU identity so independent PDUs are
// tracked concurrently. Because chunks are self-describing, any chunk
// can be routed to its shard from the header alone — the property
// that makes the paper's "more modularity and parallelism" claim work
// (Section 5, Appendix A: chunks "can be demultiplexed via the TYPE
// field and routed to the appropriate processing units").
//
// Sharding is by PDU key hash; each shard is an independently locked
// Tracker, so goroutines processing different PDUs proceed without
// contention, while chunks of one PDU serialize on its shard (the
// per-PDU state is inherently sequential).
type ParallelTracker struct {
	shards []shard
}

type shard struct {
	mu sync.Mutex
	tr Tracker // guarded by mu
}

// NewParallelTracker returns a tracker with n shards (n < 1 is
// treated as 1).
func NewParallelTracker(n int) *ParallelTracker {
	if n < 1 {
		n = 1
	}
	return &ParallelTracker{shards: make([]shard, n)}
}

// Shards returns the shard count.
func (p *ParallelTracker) Shards() int { return len(p.shards) }

func (p *ParallelTracker) shard(key Key) *shard {
	// Fibonacci hashing over the key.
	h := (uint64(key.ID)*2 + uint64(key.Level)) * 0x9E3779B97F4A7C15
	return &p.shards[h%uint64(len(p.shards))]
}

// Add records chunk data for a PDU; safe for concurrent use.
func (p *ParallelTracker) Add(key Key, sn, n uint64, st bool) ([]Interval, error) {
	s := p.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Add(key, sn, n, st)
}

// Complete reports whether the PDU has fully arrived; safe for
// concurrent use.
func (p *ParallelTracker) Complete(key Key) bool {
	s := p.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Complete(key)
}

// Retire discards a finished PDU's state; safe for concurrent use.
func (p *ParallelTracker) Retire(key Key) {
	s := p.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr.Retire(key)
}

// Active returns the total in-progress PDU count across shards.
func (p *ParallelTracker) Active() int {
	n := 0
	for i := range p.shards {
		p.shards[i].mu.Lock()
		n += p.shards[i].tr.Active()
		p.shards[i].mu.Unlock()
	}
	return n
}
