package vr

import (
	"bytes"
	"errors"
)

// A Policy selects what a receiver does when a duplicate interval
// arrives carrying bytes that differ from the bytes first accepted for
// those elements — a "conflicting overlap". The paper's virtual
// reassembly (Section 3.3) silently discards duplicates, which is
// FirstWins; real reassemblers disagree (BSD, Linux and Windows stacks
// pick different winners, which is exactly what overlap-smuggling
// attacks exploit), so the policy is made explicit and selectable.
type Policy uint8

const (
	// FirstWins keeps the bytes first accepted and discards the
	// conflicting duplicate — the paper's implicit policy, and the
	// default everywhere in this module.
	FirstWins Policy = iota
	// LastWins replaces previously accepted bytes with the duplicate's
	// bytes. The interval bookkeeping is unchanged (the elements were
	// already present); the caller owning the payload performs the
	// replacement for each conflicting interval returned.
	LastWins
	// RejectPDU abandons the PDU on the first conflicting overlap:
	// AddChecked admits nothing and returns ErrConflictingData, which
	// receivers classify as a reassembly failure of that PDU.
	RejectPDU
	// RejectConnection escalates a conflicting overlap to a
	// connection-fatal event: the PDU add fails like RejectPDU and the
	// transport tears the connection down.
	RejectConnection
)

func (p Policy) String() string {
	switch p {
	case FirstWins:
		return "first-wins"
	case LastWins:
		return "last-wins"
	case RejectPDU:
		return "reject-pdu"
	case RejectConnection:
		return "reject-conn"
	}
	return "policy?"
}

// ErrConflictingData reports a duplicate interval whose bytes differ
// from the bytes already accepted, under a rejecting policy.
var ErrConflictingData = errors.New("vr: conflicting overlap data")

// A View supplies the previously accepted payload bytes for the
// elements [iv.Lo, iv.Hi). Virtual reassembly stores no payload (that
// is the point of Section 3.3), so conflict detection is fed by the
// caller, who owns the data. A View returning nil declines the
// comparison and the interval is treated as a byte-identical
// duplicate.
type View func(iv Interval) []byte

// AddChecked is Add plus conflict detection: data holds the chunk's
// payload (size bytes per element, n elements), and prior yields the
// bytes already accepted for any duplicate interval. It returns the
// fresh sub-intervals exactly as Add does, plus the duplicate
// sub-intervals whose bytes conflict with what prior reports.
//
// Under FirstWins and LastWins the add proceeds and conflicts are
// reported for the caller to count or to apply replacements from.
// Under RejectPDU and RejectConnection a conflict aborts the add
// before any interval is admitted and returns ErrConflictingData.
func (p *PDU) AddChecked(sn, n uint64, st bool, pol Policy, data []byte, size int, prior View) (fresh, conflicts []Interval, err error) {
	if n == 0 {
		return nil, nil, nil
	}
	// End-consistency checks mirror Add, and must run before any
	// conflict comparison so end corruption keeps its own error class.
	if st {
		end := sn + n
		if p.haveEnd && p.end != end {
			return nil, nil, conflictEndErr(p.end, end) //lint:allow hotalloc cold error path: fmt boxes its operands
		}
	}
	if p.haveEnd && sn+n > p.end {
		return nil, nil, beyondEndErr(sn, sn+n, p.end) //lint:allow hotalloc cold error path: fmt boxes its operands
	}
	conflicts = p.conflicts(sn, n, data, size, prior)
	if len(conflicts) > 0 && (pol == RejectPDU || pol == RejectConnection) {
		return nil, conflicts, ErrConflictingData
	}
	fresh, err = p.Add(sn, n, st)
	return fresh, conflicts, err
}

// conflicts returns the sub-intervals of [sn, sn+n) that are already
// present in the set AND whose accepted bytes (per prior) differ from
// the corresponding slice of data. Each reported interval is a maximal
// run of conflicting elements (element granularity, not dup-span
// granularity), so LastWins replacements rewrite only what changed and
// conflict counters count only elements that actually disagree.
func (p *PDU) conflicts(sn, n uint64, data []byte, size int, prior View) []Interval {
	if data == nil || prior == nil || size <= 0 {
		return nil
	}
	var out []Interval
	for _, dup := range p.set.Overlap(sn, sn+n) {
		lo := int(dup.Lo-sn) * size
		hi := int(dup.Hi-sn) * size
		if lo < 0 || hi > len(data) {
			continue
		}
		old := prior(dup)
		if old == nil || len(old) != hi-lo {
			continue
		}
		cand := data[lo:hi]
		if bytes.Equal(old, cand) {
			continue
		}
		// Narrow to maximal runs of differing elements.
		runLo := uint64(0)
		inRun := false
		for el := uint64(0); el < dup.Len(); el++ {
			same := bytes.Equal(old[el*uint64(size):(el+1)*uint64(size)], cand[el*uint64(size):(el+1)*uint64(size)])
			if !same && !inRun {
				runLo, inRun = el, true
			}
			if same && inRun {
				out = append(out, Interval{dup.Lo + runLo, dup.Lo + el})
				inRun = false
			}
		}
		if inRun {
			out = append(out, Interval{dup.Lo + runLo, dup.Hi})
		}
	}
	return out
}

// AddChecked is Tracker.Add plus conflict detection; see PDU.AddChecked.
// Data for an already-retired PDU is reported as fully duplicate and is
// never checked for conflicts (the accepted bytes are gone).
func (t *Tracker) AddChecked(key Key, sn, n uint64, st bool, pol Policy, data []byte, size int, prior View) (fresh, conflicts []Interval, err error) {
	if t.completed[key] {
		return nil, nil, nil
	}
	p := t.Get(key)
	fresh, conflicts, err = p.AddChecked(sn, n, st, pol, data, size, prior)
	t.Sizes.Observe(int64(p.Fragments()))
	return fresh, conflicts, err
}
