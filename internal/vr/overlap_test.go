package vr

import (
	"errors"
	"testing"
)

// byteStore is a minimal payload owner for AddChecked tests: it keeps
// one byte per element, as a receiver's reassembly buffer would.
type byteStore struct {
	buf  []byte
	have IntervalSet // mirror of what was accepted, for sanity only
}

func (b *byteStore) place(iv Interval, data []byte) {
	for int(iv.Hi) > len(b.buf) {
		b.buf = append(b.buf, 0)
	}
	copy(b.buf[iv.Lo:iv.Hi], data)
	b.have.Add(iv.Lo, iv.Hi)
}

func (b *byteStore) view(iv Interval) []byte {
	if int(iv.Hi) > len(b.buf) {
		return nil
	}
	return b.buf[iv.Lo:iv.Hi]
}

// addBytes runs AddChecked with one byte per element and applies the
// policy's placement effects the way a real receiver would: fresh
// intervals are always placed; under LastWins conflicting intervals
// are re-placed with the new bytes.
func addBytes(p *PDU, st *byteStore, sn uint64, data []byte, fin bool, pol Policy) (fresh, conflicts []Interval, err error) {
	fresh, conflicts, err = p.AddChecked(sn, uint64(len(data)), fin, pol, data, 1, st.view)
	if err != nil {
		return fresh, conflicts, err
	}
	for _, iv := range fresh {
		st.place(iv, data[iv.Lo-sn:iv.Hi-sn])
	}
	if pol == LastWins {
		for _, iv := range conflicts {
			st.place(iv, data[iv.Lo-sn:iv.Hi-sn])
		}
	}
	return fresh, conflicts, err
}

// TestTrackerConflictingEnd pins ErrConflictingEnd at the Tracker
// level: two chunks of the same PDU claiming different final elements
// surface the error through Tracker.Add, not only PDU.Add.
func TestTrackerConflictingEnd(t *testing.T) {
	var tr Tracker
	k := Key{LevelT, 7}
	if _, err := tr.Add(k, 0, 4, true); err != nil { // end = 4
		t.Fatal(err)
	}
	if _, err := tr.Add(k, 4, 2, true); !errors.Is(err, ErrConflictingEnd) {
		t.Fatalf("want ErrConflictingEnd, got %v", err)
	}
	// The PDU is still usable: the originally claimed end stands.
	if !tr.Complete(k) {
		t.Fatal("original end must stand after a conflicting claim")
	}
	// AddChecked surfaces the same error before any conflict check.
	if _, _, err := tr.AddChecked(k, 5, 1, true, FirstWins, []byte{9}, 1, nil); !errors.Is(err, ErrConflictingEnd) {
		t.Fatalf("AddChecked: want ErrConflictingEnd, got %v", err)
	}
}

// TestAddCheckedIdenticalDuplicate: a retransmission carrying the same
// bytes is a plain duplicate under every policy — no conflict, no
// error, no fresh data.
func TestAddCheckedIdenticalDuplicate(t *testing.T) {
	for _, pol := range []Policy{FirstWins, LastWins, RejectPDU, RejectConnection} {
		var p PDU
		st := &byteStore{}
		if _, _, err := addBytes(&p, st, 0, []byte{1, 2, 3, 4}, false, pol); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		fresh, conflicts, err := addBytes(&p, st, 0, []byte{1, 2, 3, 4}, false, pol)
		if err != nil || fresh != nil || conflicts != nil {
			t.Fatalf("%v: identical dup: fresh=%v conflicts=%v err=%v", pol, fresh, conflicts, err)
		}
	}
}

// TestAddCheckedLateConflict is the satellite pin: a late duplicate
// carrying different bytes, exercised under each policy.
func TestAddCheckedLateConflict(t *testing.T) {
	genuine := []byte{1, 2, 3, 4}
	forged := []byte{1, 9, 9, 4} // elements 1,2 conflict

	t.Run("first-wins", func(t *testing.T) {
		var p PDU
		st := &byteStore{}
		_, _, _ = addBytes(&p, st, 0, genuine, false, FirstWins)
		fresh, conflicts, err := addBytes(&p, st, 0, forged, false, FirstWins)
		if err != nil || fresh != nil {
			t.Fatalf("fresh=%v err=%v", fresh, err)
		}
		if len(conflicts) != 1 || conflicts[0] != (Interval{1, 3}) {
			t.Fatalf("conflicts = %v, want [[1,3)]", conflicts)
		}
		if string(st.buf) != string(genuine) {
			t.Fatalf("first-wins kept %v, want %v", st.buf, genuine)
		}
	})

	t.Run("last-wins", func(t *testing.T) {
		var p PDU
		st := &byteStore{}
		_, _, _ = addBytes(&p, st, 0, genuine, false, LastWins)
		_, conflicts, err := addBytes(&p, st, 0, forged, false, LastWins)
		if err != nil {
			t.Fatal(err)
		}
		if len(conflicts) != 1 || conflicts[0] != (Interval{1, 3}) {
			t.Fatalf("conflicts = %v", conflicts)
		}
		if string(st.buf) != string(forged) {
			t.Fatalf("last-wins kept %v, want %v", st.buf, forged)
		}
	})

	for _, pol := range []Policy{RejectPDU, RejectConnection} {
		t.Run(pol.String(), func(t *testing.T) {
			var p PDU
			st := &byteStore{}
			_, _, _ = addBytes(&p, st, 0, genuine, false, pol)
			fresh, conflicts, err := addBytes(&p, st, 2, []byte{7, 7, 7}, false, pol) // [2,4) dup+conflict, [4,5) would be fresh
			if !errors.Is(err, ErrConflictingData) {
				t.Fatalf("want ErrConflictingData, got %v", err)
			}
			if fresh != nil {
				t.Fatalf("reject must admit nothing, admitted %v", fresh)
			}
			if len(conflicts) != 1 || conflicts[0] != (Interval{2, 4}) {
				t.Fatalf("conflicts = %v", conflicts)
			}
			// The reject aborted before mutating the set: [4,5) stays absent.
			if p.set.Contains(4) {
				t.Fatal("rejected add must not admit the fresh tail")
			}
			if string(st.buf) != string(genuine) {
				t.Fatalf("buffer mutated to %v", st.buf)
			}
		})
	}
}

// TestAddCheckedPartialOverlapConflict: a shifted duplicate where only
// part of the range is dup, and only part of the dup disagrees.
func TestAddCheckedPartialOverlapConflict(t *testing.T) {
	var p PDU
	st := &byteStore{}
	_, _, _ = addBytes(&p, st, 0, []byte{1, 2, 3, 4}, false, FirstWins)
	// [2,6): [2,4) dup — byte 2 agrees, byte 3 conflicts; [4,6) fresh.
	fresh, conflicts, err := addBytes(&p, st, 2, []byte{3, 9, 5, 6}, false, FirstWins)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 1 || fresh[0] != (Interval{4, 6}) {
		t.Fatalf("fresh = %v", fresh)
	}
	// Conflict detection is element-granular: only element 3 disagrees.
	if len(conflicts) != 1 || conflicts[0] != (Interval{3, 4}) {
		t.Fatalf("conflicts = %v", conflicts)
	}
	if string(st.buf) != string([]byte{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("buf = %v", st.buf)
	}
}

// TestAddCheckedNilView: without a prior view (or payload) conflicts
// are undetectable and AddChecked degrades to Add.
func TestAddCheckedNilView(t *testing.T) {
	var p PDU
	_, _, _ = p.AddChecked(0, 4, false, RejectPDU, []byte{1, 2, 3, 4}, 1, nil)
	fresh, conflicts, err := p.AddChecked(0, 4, false, RejectPDU, []byte{9, 9, 9, 9}, 1, nil)
	if err != nil || fresh != nil || conflicts != nil {
		t.Fatalf("nil view: fresh=%v conflicts=%v err=%v", fresh, conflicts, err)
	}
}

// TestAddCheckedMultiByteElements: size > 1 — conflicts compare whole
// element runs, with data offsets scaled by the element size.
func TestAddCheckedMultiByteElements(t *testing.T) {
	const size = 4
	buf := make([]byte, 8*size)
	view := func(iv Interval) []byte { return buf[iv.Lo*size : iv.Hi*size] }
	var p PDU
	first := []byte("AAAABBBBCCCC") // elements 0..2
	fresh, _, err := p.AddChecked(0, 3, false, FirstWins, first, size, view)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range fresh {
		copy(buf[iv.Lo*size:], first[(iv.Lo)*size:(iv.Hi)*size])
	}
	// Element 1 differs in its third byte only.
	dup := []byte("BBxBCCCCDDDD") // elements 1..3
	fresh, conflicts, err := p.AddChecked(1, 3, false, FirstWins, dup, size, view)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 1 || fresh[0] != (Interval{3, 4}) {
		t.Fatalf("fresh = %v", fresh)
	}
	if len(conflicts) != 1 || conflicts[0] != (Interval{1, 2}) {
		t.Fatalf("conflicts = %v", conflicts)
	}
}

// TestTrackerAddCheckedRetired: a conflicting late duplicate of a
// retired PDU cannot be checked (bytes are gone) and reads as a plain
// duplicate — the same contract as Tracker.Add.
func TestTrackerAddCheckedRetired(t *testing.T) {
	var tr Tracker
	k := Key{LevelX, 3}
	buf := []byte{1, 2, 3, 4}
	view := func(iv Interval) []byte { return buf[iv.Lo:iv.Hi] }
	if _, _, err := tr.AddChecked(k, 0, 4, true, RejectConnection, buf, 1, view); err != nil {
		t.Fatal(err)
	}
	tr.Retire(k)
	fresh, conflicts, err := tr.AddChecked(k, 0, 4, true, RejectConnection, []byte{9, 9, 9, 9}, 1, view)
	if err != nil || fresh != nil || conflicts != nil {
		t.Fatalf("retired: fresh=%v conflicts=%v err=%v", fresh, conflicts, err)
	}
}

// TestIntervalSetOverlap pins the dup-span helper the conflict
// detector is built on.
func TestIntervalSetOverlap(t *testing.T) {
	var s IntervalSet
	s.Add(2, 5)
	s.Add(8, 10)
	cases := []struct {
		lo, hi uint64
		want   []Interval
	}{
		{0, 2, nil},
		{0, 3, []Interval{{2, 3}}},
		{2, 5, []Interval{{2, 5}}},
		{4, 9, []Interval{{4, 5}, {8, 9}}},
		{5, 8, nil},
		{0, 12, []Interval{{2, 5}, {8, 10}}},
		{3, 3, nil},
	}
	for _, c := range cases {
		got := s.Overlap(c.lo, c.hi)
		if len(got) != len(c.want) {
			t.Fatalf("Overlap(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Overlap(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
			}
		}
	}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{
		FirstWins:        "first-wins",
		LastWins:         "last-wins",
		RejectPDU:        "reject-pdu",
		RejectConnection: "reject-conn",
		Policy(99):       "policy?",
	}
	for pol, s := range want {
		if pol.String() != s {
			t.Fatalf("Policy(%d).String() = %q, want %q", pol, pol.String(), s)
		}
	}
}
