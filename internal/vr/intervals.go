// Package vr implements virtual reassembly (Section 3.3): "keeping
// track of the received fragments to determine when all of the
// fragments of a PDU have been received", without physically
// reassembling anything. Completion of virtual reassembly is the
// signal that an incrementally computed error detection code is ready
// to be compared with the received code, and duplicate detection here
// is what keeps duplicates from corrupting that incremental
// computation ("we want to avoid processing the same TPDU piece
// twice") and from overwriting good data with a corrupted copy.
//
// The paper cites VLSI implementations of this function [STER 92],
// [MCAU 93b]; this package is the software equivalent with the same
// semantics.
package vr

import "fmt"

// An Interval is a half-open range [Lo, Hi) of element sequence
// numbers.
type Interval struct {
	Lo, Hi uint64
}

// Len returns the number of elements covered.
func (iv Interval) Len() uint64 { return iv.Hi - iv.Lo }

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// An IntervalSet is a set of element positions stored as sorted,
// disjoint, non-adjacent intervals. The zero value is an empty set.
type IntervalSet struct {
	ivs []Interval
	// fresh is Add's reusable result scratch: the steady receive path
	// calls Add once per chunk, and re-allocating the (usually
	// single-interval) fresh slice per call was the dominant
	// virtual-reassembly allocation.
	fresh []Interval
}

// Add inserts [lo, hi) and returns the sub-intervals that were NOT
// already present — the "fresh" data. A fully duplicate insert returns
// nil. Partial overlaps return only the new parts, letting callers
// process (checksum, place) each element exactly once.
//
// The returned slice is owned by the set and valid only until the next
// Add on the same set; callers that retain it must copy it first.
//
//lint:hot
func (s *IntervalSet) Add(lo, hi uint64) []Interval {
	if lo >= hi {
		return nil
	}
	fresh := s.fresh[:0]
	cur := lo
	// Walk existing intervals overlapping or beyond [lo, hi).
	i := 0
	for i < len(s.ivs) && s.ivs[i].Hi < lo {
		i++
	}
	for j := i; j < len(s.ivs) && s.ivs[j].Lo < hi; j++ {
		if cur < s.ivs[j].Lo {
			fresh = append(fresh, Interval{cur, s.ivs[j].Lo})
		}
		if s.ivs[j].Hi > cur {
			cur = s.ivs[j].Hi
		}
	}
	if cur < hi {
		fresh = append(fresh, Interval{cur, hi})
	}
	s.fresh = fresh
	if len(fresh) == 0 {
		return nil
	}
	// Splice in place: replace the k-i intervals overlapping/adjacent
	// to [lo,hi) with one merged interval. Replacing at least one
	// interval (k > i) never reallocates; pure insertion (k == i)
	// shifts the tail up within capacity and only a capacity-growing
	// append allocates — amortised away on the in-order steady path,
	// where the new range extends ivs[i-1] or appends at the end.
	newLo, newHi := lo, hi
	k := i
	for k < len(s.ivs) && s.ivs[k].Lo <= hi {
		if s.ivs[k].Lo < newLo {
			newLo = s.ivs[k].Lo
		}
		if s.ivs[k].Hi > newHi {
			newHi = s.ivs[k].Hi
		}
		k++
	}
	merged := Interval{newLo, newHi}
	switch {
	case k > i: // overwrite the first replaced slot, close the gap
		s.ivs[i] = merged
		s.ivs = append(s.ivs[:i+1], s.ivs[k:]...)
	case i == len(s.ivs): // append at the end
		s.ivs = append(s.ivs, merged)
	default: // insert before i: grow by one, shift the tail up
		s.ivs = append(s.ivs, Interval{})
		copy(s.ivs[i+1:], s.ivs[i:])
		s.ivs[i] = merged
	}
	return fresh
}

// Overlap returns the sub-intervals of [lo, hi) that are already
// present in the set — the duplicate portions of an incoming range,
// the complement of what Add would report as fresh. Conflict-policy
// callers compare these spans byte-for-byte against the previously
// accepted payload.
func (s *IntervalSet) Overlap(lo, hi uint64) []Interval {
	if lo >= hi {
		return nil
	}
	var out []Interval
	for _, iv := range s.ivs {
		if iv.Lo >= hi {
			break
		}
		if iv.Hi <= lo {
			continue
		}
		olo, ohi := iv.Lo, iv.Hi
		if olo < lo {
			olo = lo
		}
		if ohi > hi {
			ohi = hi
		}
		out = append(out, Interval{olo, ohi})
	}
	return out
}

// Contains reports whether position sn is present.
func (s *IntervalSet) Contains(sn uint64) bool {
	for _, iv := range s.ivs {
		if sn < iv.Lo {
			return false
		}
		if sn < iv.Hi {
			return true
		}
	}
	return false
}

// Covered reports whether every position in [lo, hi) is present.
func (s *IntervalSet) Covered(lo, hi uint64) bool {
	if lo >= hi {
		return true
	}
	for _, iv := range s.ivs {
		if iv.Lo <= lo && hi <= iv.Hi {
			return true
		}
	}
	return false
}

// Total returns the number of elements in the set.
func (s *IntervalSet) Total() uint64 {
	var n uint64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// Spans returns a copy of the interval list (sorted, disjoint).
func (s *IntervalSet) Spans() []Interval {
	return append([]Interval(nil), s.ivs...)
}

// Gaps returns the missing intervals within [0, hi) — the data a
// selective retransmission (NACK) would request.
func (s *IntervalSet) Gaps(hi uint64) []Interval {
	var out []Interval
	cur := uint64(0)
	for _, iv := range s.ivs {
		if iv.Lo >= hi {
			break
		}
		if cur < iv.Lo {
			out = append(out, Interval{cur, iv.Lo})
		}
		if iv.Hi > cur {
			cur = iv.Hi
		}
	}
	if cur < hi {
		out = append(out, Interval{cur, hi})
	}
	return out
}

// Fragments returns the number of stored intervals — a proxy for
// tracker state size (the VLSI unit's CAM occupancy).
func (s *IntervalSet) Fragments() int { return len(s.ivs) }

// Reset empties the set.
func (s *IntervalSet) Reset() { s.ivs = s.ivs[:0] }
