package vr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddDisjoint(t *testing.T) {
	var s IntervalSet
	if fresh := s.Add(0, 5); len(fresh) != 1 || fresh[0] != (Interval{0, 5}) {
		t.Fatalf("fresh = %v", fresh)
	}
	if fresh := s.Add(10, 15); len(fresh) != 1 || fresh[0] != (Interval{10, 15}) {
		t.Fatalf("fresh = %v", fresh)
	}
	if s.Total() != 10 || s.Fragments() != 2 {
		t.Fatalf("Total=%d Fragments=%d", s.Total(), s.Fragments())
	}
}

func TestAddDuplicate(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	if fresh := s.Add(2, 8); fresh != nil {
		t.Fatalf("full duplicate returned %v", fresh)
	}
	if fresh := s.Add(0, 10); fresh != nil {
		t.Fatalf("exact duplicate returned %v", fresh)
	}
	if s.Total() != 10 || s.Fragments() != 1 {
		t.Fatal("duplicates must not change the set")
	}
}

func TestAddPartialOverlap(t *testing.T) {
	var s IntervalSet
	s.Add(5, 10)
	fresh := s.Add(0, 7)
	if len(fresh) != 1 || fresh[0] != (Interval{0, 5}) {
		t.Fatalf("fresh = %v, want [0,5)", fresh)
	}
	fresh = s.Add(8, 15)
	if len(fresh) != 1 || fresh[0] != (Interval{10, 15}) {
		t.Fatalf("fresh = %v, want [10,15)", fresh)
	}
	if s.Fragments() != 1 || s.Total() != 15 {
		t.Fatalf("set = %v", s.Spans())
	}
}

func TestAddBridgesGap(t *testing.T) {
	var s IntervalSet
	s.Add(0, 3)
	s.Add(7, 10)
	fresh := s.Add(2, 8)
	if len(fresh) != 1 || fresh[0] != (Interval{3, 7}) {
		t.Fatalf("fresh = %v, want [3,7)", fresh)
	}
	if s.Fragments() != 1 || !s.Covered(0, 10) {
		t.Fatalf("set = %v", s.Spans())
	}
}

func TestAddSpansMultiple(t *testing.T) {
	var s IntervalSet
	s.Add(2, 4)
	s.Add(6, 8)
	s.Add(10, 12)
	fresh := s.Add(0, 14)
	want := []Interval{{0, 2}, {4, 6}, {8, 10}, {12, 14}}
	if len(fresh) != len(want) {
		t.Fatalf("fresh = %v", fresh)
	}
	for i := range want {
		if fresh[i] != want[i] {
			t.Fatalf("fresh = %v, want %v", fresh, want)
		}
	}
	if s.Fragments() != 1 || s.Total() != 14 {
		t.Fatalf("set = %v", s.Spans())
	}
}

func TestAddAdjacentCoalesces(t *testing.T) {
	var s IntervalSet
	s.Add(0, 5)
	s.Add(5, 10)
	if s.Fragments() != 1 || s.Total() != 10 {
		t.Fatalf("adjacent intervals must coalesce: %v", s.Spans())
	}
}

func TestAddEmpty(t *testing.T) {
	var s IntervalSet
	if s.Add(5, 5) != nil || s.Add(7, 3) != nil {
		t.Fatal("empty or inverted ranges must be no-ops")
	}
}

func TestContainsCovered(t *testing.T) {
	var s IntervalSet
	s.Add(3, 6)
	s.Add(9, 12)
	for sn, want := range map[uint64]bool{2: false, 3: true, 5: true, 6: false, 9: true, 11: true, 12: false} {
		if s.Contains(sn) != want {
			t.Errorf("Contains(%d) = %v", sn, !want)
		}
	}
	if !s.Covered(3, 6) || !s.Covered(10, 12) {
		t.Fatal("covered ranges misreported")
	}
	if s.Covered(3, 7) || s.Covered(5, 10) {
		t.Fatal("uncovered ranges misreported")
	}
	if !s.Covered(4, 4) {
		t.Fatal("empty range is trivially covered")
	}
}

func TestGaps(t *testing.T) {
	var s IntervalSet
	s.Add(2, 4)
	s.Add(6, 8)
	gaps := s.Gaps(10)
	want := []Interval{{0, 2}, {4, 6}, {8, 10}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v", gaps)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
	if g := s.Gaps(4); len(g) != 1 || g[0] != (Interval{0, 2}) {
		t.Fatalf("Gaps(4) = %v", g)
	}
	var empty IntervalSet
	if g := empty.Gaps(5); len(g) != 1 || g[0] != (Interval{0, 5}) {
		t.Fatalf("empty Gaps(5) = %v", g)
	}
}

func TestReset(t *testing.T) {
	var s IntervalSet
	s.Add(0, 5)
	s.Reset()
	if s.Total() != 0 || s.Fragments() != 0 {
		t.Fatal("Reset must empty the set")
	}
}

// TestIntervalSetAgainstBitmap cross-checks the interval implementation
// against a naive bitmap model over randomized operations, including
// that Add returns exactly the freshly-covered positions.
func TestIntervalSetAgainstBitmap(t *testing.T) {
	const universe = 200
	f := func(ops []struct{ Lo, N uint8 }) bool {
		var s IntervalSet
		var bm [universe]bool
		for _, op := range ops {
			lo := uint64(op.Lo) % universe
			hi := lo + uint64(op.N)%32
			if hi > universe {
				hi = universe
			}
			fresh := s.Add(lo, hi)
			// fresh must be exactly the previously-false positions.
			var freshCount uint64
			for _, iv := range fresh {
				for p := iv.Lo; p < iv.Hi; p++ {
					if bm[p] {
						return false // claimed fresh but already present
					}
					freshCount++
				}
			}
			var wantFresh uint64
			for p := lo; p < hi; p++ {
				if !bm[p] {
					wantFresh++
					bm[p] = true
				}
			}
			if freshCount != wantFresh {
				return false
			}
		}
		// Final-state agreement.
		for p := uint64(0); p < universe; p++ {
			if s.Contains(p) != bm[p] {
				return false
			}
		}
		var total uint64
		for _, v := range bm {
			if v {
				total++
			}
		}
		return s.Total() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSpansIsolation(t *testing.T) {
	var s IntervalSet
	s.Add(0, 5)
	spans := s.Spans()
	spans[0].Hi = 100
	if s.Covered(0, 100) {
		t.Fatal("Spans must return a copy")
	}
}

func BenchmarkAddSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s IntervalSet
		for j := uint64(0); j < 256; j++ {
			s.Add(j*4, j*4+4)
		}
	}
}

func BenchmarkAddRandomOrder(b *testing.B) {
	order := rand.New(rand.NewSource(5)).Perm(256)
	for i := 0; i < b.N; i++ {
		var s IntervalSet
		for _, j := range order {
			lo := uint64(j) * 4
			s.Add(lo, lo+4)
		}
	}
}
