package vr

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestParallelTrackerBasics(t *testing.T) {
	p := NewParallelTracker(4)
	if p.Shards() != 4 {
		t.Fatalf("Shards = %d", p.Shards())
	}
	k := Key{LevelT, 1}
	if _, err := p.Add(k, 0, 4, true); err != nil {
		t.Fatal(err)
	}
	if !p.Complete(k) {
		t.Fatal("PDU must complete")
	}
	if p.Active() != 1 {
		t.Fatalf("Active = %d", p.Active())
	}
	p.Retire(k)
	if p.Active() != 0 {
		t.Fatal("retired PDU still active")
	}
	if NewParallelTracker(0).Shards() != 1 {
		t.Fatal("n<1 must clamp to 1")
	}
}

// TestParallelTrackerConcurrent: many goroutines tracking many PDUs
// concurrently; every PDU must complete exactly as with the serial
// tracker. Run with -race.
func TestParallelTrackerConcurrent(t *testing.T) {
	const pdus = 64
	const fragsPer = 16
	p := NewParallelTracker(8)

	type frag struct {
		key Key
		sn  uint64
		st  bool
	}
	var all []frag
	for id := uint32(0); id < pdus; id++ {
		for f := uint64(0); f < fragsPer; f++ {
			all = append(all, frag{Key{LevelT, id}, f * 8, f == fragsPer-1})
		}
	}
	rand.New(rand.NewSource(1)).Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	per := (len(all) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(all) {
			hi = len(all)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(fs []frag) {
			defer wg.Done()
			for _, f := range fs {
				if _, err := p.Add(f.key, f.sn, 8, f.st); err != nil {
					t.Error(err)
					return
				}
			}
		}(all[lo:hi])
	}
	wg.Wait()
	for id := uint32(0); id < pdus; id++ {
		if !p.Complete(Key{LevelT, id}) {
			t.Fatalf("PDU %d incomplete", id)
		}
	}
}

// BenchmarkParallelTrackerShards shows the throughput scaling the
// VLSI-parallel-assembly substitution models.
func BenchmarkParallelTrackerShards(b *testing.B) {
	mkWork := func() []Key {
		keys := make([]Key, 256)
		for i := range keys {
			keys[i] = Key{LevelT, uint32(i)}
		}
		return keys
	}
	for _, shards := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "shards-1", 4: "shards-4", 16: "shards-16"}[shards], func(b *testing.B) {
			keys := mkWork()
			b.RunParallel(func(pb *testing.PB) {
				tr := NewParallelTracker(shards)
				i := 0
				for pb.Next() {
					k := keys[i%len(keys)]
					_, _ = tr.Add(k, uint64(i%16)*8, 8, false)
					i++
				}
			})
		})
	}
}
