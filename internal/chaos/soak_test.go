package chaos_test

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"chunks/internal/chaos"
	"chunks/internal/core"
	"chunks/internal/telemetry"
	"chunks/internal/vr"
)

func testData(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// soakCase is one scripted fault schedule of the chaos soak.
type soakCase struct {
	name string
	cfg  chaos.Config
	// maxRetries for the sender; generous for recoverable schedules,
	// tight when the schedule is expected to kill the peer.
	maxRetries int
	// wantDead: the schedule is unrecoverable; the transfer must fail
	// fast with ErrPeerDead rather than deliver (or hang).
	wantDead bool
	// pace, when set, sleeps between 4 KiB writes so the transfer
	// spans time-based fault windows.
	pace time.Duration
	// policy is the server's conflicting-overlap policy (zero value =
	// vr.FirstWins).
	policy vr.Policy
	// inflicted asserts the schedule actually did something.
	inflicted func(up, down chaos.Counters) bool
}

// TestChaosSoak pushes a seeded bulk transfer through every scripted
// fault schedule over real UDP sockets and asserts the acceptance
// property: byte-exact delivery or a clean surfaced ErrPeerDead —
// never a hang, never a panic. Runs under -race.
func TestChaosSoak(t *testing.T) {
	cases := []soakCase{
		{
			name:       "loss30",
			cfg:        chaos.Config{Seed: 101, Up: chaos.Schedule{LossProb: 0.30}},
			maxRetries: 64,
			inflicted:  func(up, _ chaos.Counters) bool { return up.Dropped > 0 },
		},
		{
			name:       "lossburst",
			cfg:        chaos.Config{Seed: 102, Up: chaos.Schedule{LossProb: 0.10, LossBurst: 4}},
			maxRetries: 64,
			inflicted:  func(up, _ chaos.Counters) bool { return up.Dropped > 3 },
		},
		{
			name:       "reorder16",
			cfg:        chaos.Config{Seed: 103, Up: chaos.Schedule{ReorderWindow: 16}},
			maxRetries: 64,
			inflicted:  func(up, _ chaos.Counters) bool { return up.Reordered > 0 },
		},
		{
			name:       "dup10",
			cfg:        chaos.Config{Seed: 104, Up: chaos.Schedule{DupProb: 0.10}},
			maxRetries: 64,
			inflicted:  func(up, _ chaos.Counters) bool { return up.Duplicated > 0 },
		},
		{
			name: "corrupt",
			cfg: chaos.Config{Seed: 105,
				Up:   chaos.Schedule{CorruptProb: 0.10},
				Down: chaos.Schedule{CorruptProb: 0.05}},
			maxRetries: 64,
			inflicted:  func(up, down chaos.Counters) bool { return up.Corrupted > 0 && down.Corrupted > 0 },
		},
		{
			name: "blackhole500ms",
			cfg: chaos.Config{Seed: 106, Up: chaos.Schedule{
				BlackholeAfter: 20 * time.Millisecond,
				BlackholeFor:   500 * time.Millisecond}},
			maxRetries: 64,
			pace:       10 * time.Millisecond,
			inflicted:  func(up, _ chaos.Counters) bool { return up.Blackholed > 0 },
		},
		{
			name:       "spoof",
			cfg:        chaos.Config{Seed: 107, Up: chaos.Schedule{SpoofProb: 0.30}},
			maxRetries: 64,
			inflicted:  func(up, _ chaos.Counters) bool { return up.Spoofed > 0 },
		},
		{
			name: "everything",
			cfg: chaos.Config{Seed: 108,
				Up: chaos.Schedule{LossProb: 0.15, ReorderWindow: 8,
					DupProb: 0.05, CorruptProb: 0.05, SpoofProb: 0.10},
				Down: chaos.Schedule{LossProb: 0.10, CorruptProb: 0.05}},
			maxRetries: 64,
			inflicted: func(up, down chaos.Counters) bool {
				return up.Dropped > 0 && up.Corrupted > 0 && down.Dropped > 0
			},
		},
		{
			// Conflicting-overlap forgeries under the default
			// first-wins policy: a forgery racing ahead of the genuine
			// datagram gets its bytes placed first, the parity compare
			// catches the smuggle, and retransmission rebuilds the
			// TPDU — delivery must still be byte-exact.
			name:       "overlapforge",
			cfg:        chaos.Config{Seed: 110, Up: chaos.Schedule{ForgeOverlapProb: 0.25}},
			maxRetries: 64,
			inflicted:  func(up, _ chaos.Counters) bool { return up.Forged > 0 },
		},
		{
			// The same forgeries under last-wins: conflicting bytes are
			// replaced together with their parity contribution, so the
			// stream and the end-to-end check stay in step.
			name: "overlapforge-lastwins",
			cfg: chaos.Config{Seed: 111, Up: chaos.Schedule{
				ForgeOverlapProb: 0.20, LossProb: 0.05}},
			maxRetries: 64,
			policy:     vr.LastWins,
			inflicted:  func(up, _ chaos.Counters) bool { return up.Forged > 0 && up.Dropped > 0 },
		},
		{
			// reject-pdu abandons a conflicted TPDU outright; honest
			// retransmissions rebuild it from scratch.
			name:       "overlapforge-rejectpdu",
			cfg:        chaos.Config{Seed: 112, Up: chaos.Schedule{ForgeOverlapProb: 0.15}},
			maxRetries: 64,
			policy:     vr.RejectPDU,
			inflicted:  func(up, _ chaos.Counters) bool { return up.Forged > 0 },
		},
		{
			name: "deadpeer",
			cfg: chaos.Config{Seed: 109, Up: chaos.Schedule{
				BlackholeFor: time.Hour}}, // black hole from the start
			maxRetries: 5,
			wantDead:   true,
			inflicted:  func(up, _ chaos.Counters) bool { return up.Blackholed > 0 },
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			runSoak(t, tc)
		})
	}
}

func runSoak(t *testing.T, tc soakCase) {
	data := testData(32*1024, tc.cfg.Seed)

	// One shared registry for all three components: the whole soak is
	// observable from a single snapshot, and must stay coherent with
	// the components' own counters.
	reg := telemetry.New(0)

	srv, err := core.Serve("127.0.0.1:0", core.Config{
		PollEvery:     3 * time.Millisecond,
		ReapAfter:     400,
		OverlapPolicy: tc.policy,
		Telemetry:     reg,
		// The soak runs against an explicitly multi-shard engine: spoofed
		// sources and the real connection land on different shards while
		// every invariant below (byte-exact stream, coherent telemetry)
		// must still hold.
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	tc.cfg.Telemetry = reg
	relay, err := chaos.NewRelay(srv.Addr().String(), tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	const cid = 77
	conn, err := core.Dial(relay.Addr().String(), core.Config{
		CID: cid, TPDUElems: 128, Window: 16,
		PollEvery:  3 * time.Millisecond,
		InitialRTO: 15 * time.Millisecond,
		MinRTO:     8 * time.Millisecond,
		MaxRTO:     300 * time.Millisecond,
		MaxRetries: tc.maxRetries,
		Telemetry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Shutdown()

	writeErr := func() error {
		for off := 0; off < len(data); off += 4096 {
			if err := conn.Write(data[off : off+4096]); err != nil {
				return err
			}
			if tc.pace > 0 {
				time.Sleep(tc.pace)
			}
		}
		return conn.Close()
	}()
	if writeErr != nil && !errors.Is(writeErr, core.ErrPeerDead) {
		t.Fatalf("write failed with %v, want nil or ErrPeerDead", writeErr)
	}

	drainErr := conn.WaitDrained(8 * time.Second)
	switch {
	case tc.wantDead:
		if !errors.Is(writeErr, core.ErrPeerDead) && !errors.Is(drainErr, core.ErrPeerDead) {
			t.Fatalf("unrecoverable schedule ended with write=%v drain=%v, want ErrPeerDead", writeErr, drainErr)
		}
		// The recorded timeline shows per-TPDU exponential backoff.
		log := conn.RetransmitTimeline()
		if len(log) == 0 {
			t.Fatal("no retransmissions recorded before giving up")
		}
		perTPDU := map[uint32][]time.Duration{}
		for _, e := range log {
			perTPDU[e.TID] = append(perTPDU[e.TID], e.RTO)
		}
		for tid, rtos := range perTPDU {
			for i := 1; i < len(rtos); i++ {
				if rtos[i] <= rtos[i-1] && rtos[i] < 300*time.Millisecond {
					t.Fatalf("TPDU %d: RTO %v after %v, backoff not monotone", tid, rtos[i], rtos[i-1])
				}
			}
		}
	default:
		if writeErr != nil || drainErr != nil {
			t.Fatalf("recoverable schedule failed: write=%v drain=%v (up=%+v down=%+v)",
				writeErr, drainErr, relay.UpCounters(), relay.DownCounters())
		}
		// Byte-exact delivery on the relayed connection (keyed by the
		// relay's server-facing source address).
		deadline := time.Now().Add(5 * time.Second)
		for {
			var got []byte
			for _, back := range relay.BackAddrs() {
				if s := srv.StreamOf(cid, back.String()); len(s) >= len(data) {
					got = s
					break
				}
			}
			if got != nil {
				if !bytes.Equal(got, data) {
					t.Fatal("delivered stream differs from sent data")
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("stream never completed: %d conns, up=%+v",
					srv.ConnCount(), relay.UpCounters())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !tc.inflicted(relay.UpCounters(), relay.DownCounters()) {
		t.Fatalf("schedule inflicted no faults: up=%+v down=%+v",
			relay.UpCounters(), relay.DownCounters())
	}
	checkSoakTelemetry(t, tc, reg, conn, relay)
}

// checkSoakTelemetry asserts the shared registry's snapshot is
// coherent with the components' own counters, then logs it — the
// "whole soak in one snapshot" acceptance check.
func checkSoakTelemetry(t *testing.T, tc soakCase, reg *telemetry.Registry, conn *core.Conn, relay *chaos.Relay) {
	t.Helper()
	snap := reg.Snapshot()

	connScope, ok := snap.Scopes["conn.77"]
	if !ok {
		t.Fatalf("snapshot missing conn.77 scope; have %v", scopeNames(snap))
	}
	sent, retr := conn.Stats()
	if got := connScope.Counters["tpdus_sent"]; got != int64(sent) {
		t.Errorf("telemetry tpdus_sent = %d, sender stats say %d", got, sent)
	}
	if got := connScope.Counters["retransmits"]; got != int64(retr) {
		t.Errorf("telemetry retransmits = %d, sender stats say %d", got, retr)
	}

	up := relay.UpCounters()
	upScope, ok := snap.Scopes["chaos.up"]
	if !ok {
		t.Fatalf("snapshot missing chaos.up scope; have %v", scopeNames(snap))
	}
	if got := upScope.Counters["forwarded"]; got != int64(up.Forwarded) {
		t.Errorf("telemetry chaos.up forwarded = %d, relay says %d", got, up.Forwarded)
	}
	if got := upScope.Counters["dropped"]; got != int64(up.Dropped) {
		t.Errorf("telemetry chaos.up dropped = %d, relay says %d", got, up.Dropped)
	}

	if !tc.wantDead {
		// Some receiver scope verified TPDUs, and the event ring saw
		// the full lifecycle: sends on one side, completions on the
		// other, all through one registry.
		verified := int64(0)
		for name, sc := range snap.Scopes {
			if strings.HasPrefix(name, "recv.") {
				verified += sc.Counters["tpdus_verified"]
			}
		}
		if verified == 0 {
			t.Errorf("no recv.* scope verified any TPDU; scopes %v", scopeNames(snap))
		}
		kinds := snap.EventCounts
		if kinds[telemetry.EvSent.String()] == 0 || kinds[telemetry.EvComplete.String()] == 0 {
			t.Errorf("event ring missing lifecycle ends: %v", kinds)
		}
	}

	var buf bytes.Buffer
	snap.WriteText(&buf)
	t.Logf("telemetry snapshot (%s):\n%s", tc.name, buf.String())
}

func scopeNames(s telemetry.Snapshot) []string {
	names := make([]string, 0, len(s.Scopes))
	for n := range s.Scopes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TestSpoofedSourceIsolatedThroughRelay: with aggressive spoofing the
// server ends up with more than one connection for the C.ID, and the
// real one still delivers byte-exactly — the spoofed source never
// captures the control path.
func TestSpoofedSourceIsolatedThroughRelay(t *testing.T) {
	data := testData(16*1024, 7)
	srv, err := core.Serve("127.0.0.1:0", core.Config{PollEvery: 3 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	relay, err := chaos.NewRelay(srv.Addr().String(), chaos.Config{
		Seed: 5, Up: chaos.Schedule{SpoofProb: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	conn, err := core.Dial(relay.Addr().String(), core.Config{
		CID: 21, TPDUElems: 128,
		PollEvery:  3 * time.Millisecond,
		InitialRTO: 15 * time.Millisecond,
		MinRTO:     8 * time.Millisecond,
		MaxRetries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Shutdown()
	if err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.WaitDrained(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := relay.UpCounters().Spoofed; got == 0 {
		t.Fatal("no spoofed datagrams sent")
	}
	if got := srv.ConnCount(); got < 2 {
		t.Fatalf("ConnCount = %d, want the spoofed source isolated as its own conn", got)
	}
	backs := relay.BackAddrs()
	if len(backs) != 1 {
		t.Fatalf("relay sessions = %d, want 1", len(backs))
	}
	if got := srv.StreamOf(21, backs[0].String()); !bytes.Equal(got, data) {
		t.Fatal("real connection's stream corrupted by spoofing")
	}
}
