package chaos_test

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"chunks/internal/chaos"
	"chunks/internal/chunk"
	"chunks/internal/core"
	"chunks/internal/packet"
	"chunks/internal/vr"
)

// TestForgeOverlapShape pins the forgery invariants: the forged chunk
// stays inside the original's element window with the label deltas,
// C.ID and SIZE preserved (so it passes the receiver's consistency
// checks), carries no ST bits, and differs from the genuine bytes.
func TestForgeOverlapShape(t *testing.T) {
	payload := testData(64*4, 42)
	orig := chunk.Chunk{
		Type: chunk.TypeData, Size: 4, Len: 64,
		C:       chunk.Tuple{ID: 7, SN: 1000},
		T:       chunk.Tuple{ID: 3, SN: 200, ST: true},
		X:       chunk.Tuple{ID: 9, SN: 40, ST: true},
		Payload: payload,
	}
	p := packet.Packet{Chunks: []chunk.Chunk{orig}}
	d, err := p.AppendTo(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		f := chaos.ForgeOverlap(rng, d)
		if f == nil {
			t.Fatal("no forgery from a data packet")
		}
		fp, err := packet.Decode(f)
		if err != nil {
			t.Fatalf("forged datagram does not decode: %v", err)
		}
		if len(fp.Chunks) != 1 {
			t.Fatalf("forged packet has %d chunks", len(fp.Chunks))
		}
		fc := fp.Chunks[0]
		if fc.Type != chunk.TypeData || fc.Size != orig.Size || fc.C.ID != orig.C.ID ||
			fc.T.ID != orig.T.ID || fc.X.ID != orig.X.ID {
			t.Fatalf("forgery changed identity: %+v", fc)
		}
		if fc.C.SN-fc.T.SN != orig.C.SN-orig.T.SN || fc.C.SN-fc.X.SN != orig.C.SN-orig.X.SN {
			t.Fatal("forgery broke the label deltas the receiver verifies")
		}
		if fc.C.ST || fc.T.ST || fc.X.ST {
			t.Fatal("forgery carries an ST bit")
		}
		off := fc.T.SN - orig.T.SN
		if fc.T.SN < orig.T.SN || off+uint64(fc.Len) > uint64(orig.Len) {
			t.Fatalf("forged window [%d,+%d) outside original [%d,+%d)",
				fc.T.SN, fc.Len, orig.T.SN, orig.Len)
		}
		genuine := payload[off*4 : (off+uint64(fc.Len))*4]
		if bytes.Equal(fc.Payload, genuine) {
			t.Fatal("forgery does not conflict with the genuine bytes")
		}
	}
	// Determinism: the same seed yields the same forgery sequence.
	a := chaos.ForgeOverlap(rand.New(rand.NewSource(9)), d)
	b := chaos.ForgeOverlap(rand.New(rand.NewSource(9)), d)
	if !bytes.Equal(a, b) {
		t.Fatal("forgery is not a pure function of the seed")
	}
}

func TestForgeOverlapNoCandidate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if chaos.ForgeOverlap(rng, []byte("not a packet")) != nil {
		t.Fatal("forged from junk")
	}
	// A control-only packet has nothing to forge from.
	p := packet.Packet{Chunks: []chunk.Chunk{{Type: chunk.TypeAck, Size: 4, Len: 0, C: chunk.Tuple{ID: 1}}}}
	d, err := p.AppendTo(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if chaos.ForgeOverlap(rng, d) != nil {
		t.Fatal("forged from a control-only packet")
	}
}

// TestOverlapForgeRejectConnection drives the reject-connection policy
// end to end over real sockets: every uplink datagram is shadowed by a
// conflicting forgery, so the server must tear the connection down and
// report it.
func TestOverlapForgeRejectConnection(t *testing.T) {
	rejected := make(chan uint32, 16)
	srv, err := core.Serve("127.0.0.1:0", core.Config{
		PollEvery:     3 * time.Millisecond,
		OverlapPolicy: vr.RejectConnection,
		OnConnRejected: func(cid uint32, _ net.Addr) {
			select {
			case rejected <- cid:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	relay, err := chaos.NewRelay(srv.Addr().String(), chaos.Config{
		Seed: 13, Up: chaos.Schedule{ForgeOverlapProb: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	conn, err := core.Dial(relay.Addr().String(), core.Config{
		CID: 55, TPDUElems: 64,
		PollEvery:  3 * time.Millisecond,
		InitialRTO: 15 * time.Millisecond,
		MinRTO:     8 * time.Millisecond,
		MaxRetries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Shutdown()

	// The transfer is expected to fail — the point is the teardown.
	_ = conn.Write(testData(4096, 13))
	_ = conn.Close()

	deadline := time.After(5 * time.Second)
	select {
	case cid := <-rejected:
		if cid != 55 {
			t.Fatalf("rejected cid = %d, want 55", cid)
		}
	case <-deadline:
		t.Fatalf("connection never rejected: forged=%d rejectedConns=%d",
			relay.UpCounters().Forged, srv.RejectedConns())
	}
	if srv.RejectedConns() == 0 {
		t.Fatal("RejectedConns = 0 after OnConnRejected fired")
	}
}
