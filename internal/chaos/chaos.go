// Package chaos is a deterministic in-process UDP relay for hostile-
// network testing: it sits between core.Dial and core.Serve on real
// sockets and applies scripted fault schedules — loss bursts,
// reordering windows, duplication, byte corruption, blackhole
// intervals and peer-address spoofing — to live datagrams. It mirrors
// internal/netsim's fault model (the Section 1 disordering sources)
// but exercises the real socket path, so the paper's "consequences"
// can be claimed outside the simulator.
//
// Fault decisions are drawn from a seeded RNG per direction, in
// datagram arrival order: the schedule a given arrival sequence
// experiences is a pure function of the seed. Per-fault counters
// record what was actually inflicted, for assertions.
//
//	relay, _ := chaos.NewRelay(srv.Addr().String(), chaos.Config{
//		Seed: 1, Up: chaos.Schedule{LossProb: 0.3, ReorderWindow: 16},
//	})
//	conn, _ := core.Dial(relay.Addr().String(), cfg)
package chaos

import (
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"chunks/internal/chunk"
	"chunks/internal/packet"
	"chunks/internal/telemetry"
)

// A Schedule scripts the faults of one relay direction (uplink =
// client→server, downlink = server→client).
type Schedule struct {
	// LossProb is the per-datagram drop probability.
	LossProb float64
	// LossBurst makes each loss event drop this many consecutive
	// datagrams; 0 or 1 means single drops.
	LossBurst int
	// ReorderWindow, when > 1, holds datagrams back and releases them
	// in seeded shuffled order once the window fills (the relay also
	// flushes on a short timer so tails are never stranded).
	ReorderWindow int
	// DupProb is the per-datagram duplication probability.
	DupProb float64
	// CorruptProb is the per-datagram byte-corruption probability;
	// a corrupted datagram has 1..CorruptMax random bytes flipped.
	CorruptProb float64
	// CorruptMax bounds flipped bytes per corrupted datagram; 0 means 3.
	CorruptMax int
	// BlackholeAfter/BlackholeFor drop every datagram in the interval
	// [BlackholeAfter, BlackholeAfter+BlackholeFor) measured from
	// relay start. BlackholeFor = 0 disables.
	BlackholeAfter time.Duration
	BlackholeFor   time.Duration
	// SpoofProb (uplink only) re-sends a copy of the datagram to the
	// server from a second socket — a different source address — so
	// the server sees the same connection ID arriving from a spoofed
	// peer. Tests that the control path cannot be hijacked.
	SpoofProb float64
	// ForgeOverlapProb is the per-datagram probability of forging a
	// conflicting overlap: one data chunk of the datagram is re-encoded
	// with a shifted element window and a mutated payload byte (labels
	// kept consistent so it passes the receiver's per-TPDU checks) and
	// injected as an extra datagram ahead of the original — the
	// overlap-smuggling attack the receiver's overlap policy resolves.
	ForgeOverlapProb float64
}

// Counters records the faults one direction actually inflicted.
type Counters struct {
	Forwarded  int // datagrams delivered (including duplicates)
	Dropped    int // lost to LossProb/LossBurst
	Blackholed int // lost to the blackhole interval
	Reordered  int // datagrams released out of arrival order
	Duplicated int // extra copies injected
	Corrupted  int // datagrams with flipped bytes
	Spoofed    int // copies re-sent from the spoofed source
	Forged     int // conflicting-overlap datagrams injected
}

// Config parameterises a Relay.
type Config struct {
	// Seed drives every fault decision (per-direction sub-seeds).
	Seed int64
	// Up and Down are the fault schedules for client→server and
	// server→client datagrams.
	Up, Down Schedule
	// FlushEvery bounds how long a reorder window may hold datagrams;
	// 0 means 2ms.
	FlushEvery time.Duration
	// Telemetry, when set, mirrors each direction's fault counters
	// into the scopes "chaos.up" and "chaos.down" as they change, so a
	// live registry snapshot shows what the relay inflicted alongside
	// the endpoints' own metrics.
	Telemetry *telemetry.Registry
	// Clock, when set, supplies the elapsed-since-start reading the
	// blackhole schedule is evaluated against, so tests can drive the
	// interval with virtual time. Nil means wall clock anchored at
	// NewRelay.
	Clock func() time.Duration
}

// Corrupt flips 1..max random bytes of b in place (max<=0 means 3),
// drawing positions from rng. Exported so corpus generators can pin
// exactly the corruptions the relay produces.
func Corrupt(rng *rand.Rand, b []byte, max int) {
	if len(b) == 0 {
		return
	}
	if max <= 0 {
		max = 3
	}
	n := 1 + rng.Intn(max)
	for i := 0; i < n; i++ {
		b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
	}
}

// ForgeOverlap derives a conflicting-overlap datagram from the encoded
// packet d: a seeded pick of one data chunk is cloned with a shifted
// element window and exactly one mutated payload byte, preserving the
// label deltas (C.SN−T.SN, C.SN−X.SN), C.ID and SIZE so the forgery
// passes the receiver's per-TPDU consistency checks and lands as a
// duplicate interval carrying DIFFERENT bytes — the overlap-smuggling
// shape the receive-side overlap policy must resolve. ST bits are
// cleared so the forgery never claims a PDU end. Returns nil when d is
// not a packet or holds no data chunk to forge from. Exported so
// corpus generators can pin exactly the forgeries the relay produces.
func ForgeOverlap(rng *rand.Rand, d []byte) []byte {
	p, err := packet.Decode(d)
	if err != nil {
		return nil
	}
	var cands []int
	for i := range p.Chunks {
		c := &p.Chunks[i]
		if c.Type == chunk.TypeData && c.Len >= 1 && c.Size > 0 && len(c.Payload) == c.PayloadLen() {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	f := p.Chunks[cands[rng.Intn(len(cands))]].Clone()
	// Keep elements [off, off+m) of the original chunk; shifting every
	// SN by off preserves the per-TPDU deltas the receiver verifies.
	off := uint64(rng.Intn(int(f.Len)))
	m := uint64(1 + rng.Intn(int(f.Len)-int(off)))
	f.C.SN += off
	f.T.SN += off
	f.X.SN += off
	f.C.ST, f.T.ST, f.X.ST = false, false, false
	f.Payload = f.Payload[off*uint64(f.Size) : (off+m)*uint64(f.Size)]
	f.Len = uint32(m)
	// Exactly one byte flipped with a nonzero mask: the forgery is
	// guaranteed to CONFLICT with the genuine bytes, never merely
	// duplicate them.
	f.Payload[rng.Intn(len(f.Payload))] ^= byte(1 + rng.Intn(255))
	fp := packet.Packet{Chunks: []chunk.Chunk{f}}
	out, err := fp.AppendTo(nil, 0)
	if err != nil {
		return nil
	}
	return out
}

// held is one datagram waiting in a reorder window, with its delivery
// closure (destinations differ per client session).
type held struct {
	data []byte
	send func([]byte)
	seq  int
}

// pipeTel mirrors Counters into a telemetry scope; all fields are
// nil-safe no-ops when the relay has no registry.
type pipeTel struct {
	forwarded  *telemetry.Counter
	dropped    *telemetry.Counter
	blackholed *telemetry.Counter
	reordered  *telemetry.Counter
	duplicated *telemetry.Counter
	corrupted  *telemetry.Counter
	spoofed    *telemetry.Counter
	forged     *telemetry.Counter
}

func newPipeTel(sink telemetry.Sink) pipeTel {
	return pipeTel{
		forwarded:  sink.Counter("forwarded"),
		dropped:    sink.Counter("dropped"),
		blackholed: sink.Counter("blackholed"),
		reordered:  sink.Counter("reordered"),
		duplicated: sink.Counter("duplicated"),
		corrupted:  sink.Counter("corrupted"),
		spoofed:    sink.Counter("spoofed"),
		forged:     sink.Counter("forged"),
	}
}

// pipe applies one Schedule to one direction.
type pipe struct {
	mu       sync.Mutex
	sched    Schedule
	rng      *rand.Rand           // guarded by mu
	now      func() time.Duration // elapsed since relay start (injectable)
	burst    int                  // guarded by mu; remaining datagrams of the current loss burst
	window   []held               // guarded by mu
	seq      int                  // guarded by mu
	counters Counters             // guarded by mu
	tel      pipeTel
}

func newPipe(sched Schedule, seed int64, now func() time.Duration, sink telemetry.Sink) *pipe {
	return &pipe{sched: sched, rng: rand.New(rand.NewSource(seed)), now: now, tel: newPipeTel(sink)}
}

// offer pushes one datagram through the fault schedule. send delivers
// on the normal path; spoofSend (nil outside the uplink) delivers from
// the spoofed source.
func (p *pipe) offer(data []byte, send, spoofSend func([]byte)) {
	p.mu.Lock()
	defer p.mu.Unlock()

	if p.sched.BlackholeFor > 0 {
		elapsed := p.now()
		if elapsed >= p.sched.BlackholeAfter && elapsed < p.sched.BlackholeAfter+p.sched.BlackholeFor {
			p.counters.Blackholed++
			p.tel.blackholed.Inc()
			return
		}
	}
	if p.burst > 0 {
		p.burst--
		p.counters.Dropped++
		p.tel.dropped.Inc()
		return
	}
	if p.sched.LossProb > 0 && p.rng.Float64() < p.sched.LossProb {
		p.counters.Dropped++
		p.tel.dropped.Inc()
		if p.sched.LossBurst > 1 {
			p.burst = p.sched.LossBurst - 1
		}
		return
	}

	// The caller's buffer is reused; every surviving datagram is
	// copied exactly once here.
	d := append([]byte(nil), data...)
	if p.sched.CorruptProb > 0 && p.rng.Float64() < p.sched.CorruptProb {
		Corrupt(p.rng, d, p.sched.CorruptMax)
		p.counters.Corrupted++
		p.tel.corrupted.Inc()
	}
	if p.sched.ForgeOverlapProb > 0 && p.rng.Float64() < p.sched.ForgeOverlapProb {
		// The forgery races AHEAD of the genuine datagram, so the
		// receiver frequently accepts forged bytes first — the nastier
		// placement the end-to-end check must still catch.
		if f := ForgeOverlap(p.rng, d); f != nil {
			p.counters.Forged++
			p.tel.forged.Inc()
			send(f)
		}
	}
	if spoofSend != nil && p.sched.SpoofProb > 0 && p.rng.Float64() < p.sched.SpoofProb {
		p.counters.Spoofed++
		p.tel.spoofed.Inc()
		spoofSend(d)
	}
	copies := 1
	if p.sched.DupProb > 0 && p.rng.Float64() < p.sched.DupProb {
		copies = 2
		p.counters.Duplicated++
		p.tel.duplicated.Inc()
	}
	for i := 0; i < copies; i++ {
		if p.sched.ReorderWindow > 1 {
			p.window = append(p.window, held{data: d, send: send, seq: p.seq})
			p.seq++
			if len(p.window) >= p.sched.ReorderWindow {
				p.flushLocked()
			}
		} else {
			p.counters.Forwarded++
			p.tel.forwarded.Inc()
			send(d)
		}
	}
}

// flushLocked releases the reorder window in seeded shuffled order. A
// datagram released at a different position than it arrived counts as
// reordered.
func (p *pipe) flushLocked() {
	if len(p.window) == 0 {
		return
	}
	first := p.window[0].seq
	for _, h := range p.window {
		if h.seq < first {
			first = h.seq
		}
	}
	p.rng.Shuffle(len(p.window), func(i, j int) {
		//lint:allow locked synchronous swap callback: runs inline under the p.mu held by flushLocked's callers
		p.window[i], p.window[j] = p.window[j], p.window[i]
	})
	for i, h := range p.window {
		if h.seq != first+i {
			p.counters.Reordered++
			p.tel.reordered.Inc()
		}
		p.counters.Forwarded++
		p.tel.forwarded.Inc()
		h.send(h.data)
	}
	p.window = nil
}

func (p *pipe) flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
}

func (p *pipe) snapshot() Counters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters
}

// session is the relay state for one client source address.
type session struct {
	client *net.UDPAddr // where downlink datagrams go
	back   *net.UDPConn // relay→server socket (the "real" source)
	spoof  *net.UDPConn // second relay→server socket (spoofed source)
}

// A Relay is a faulty in-process UDP hop. Clients send to Addr();
// datagrams are forwarded to the target through the Up schedule, and
// replies return through the Down schedule.
type Relay struct {
	cfg    Config
	front  *net.UDPConn
	target *net.UDPAddr
	up     *pipe
	down   *pipe

	mu       sync.Mutex
	sessions map[string]*session // guarded by mu

	done     chan struct{}
	shutOnce sync.Once
	wg       sync.WaitGroup
}

// NewRelay starts a relay in front of the UDP target address.
func NewRelay(target string, cfg Config) (*Relay, error) {
	taddr, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, err
	}
	front, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	if cfg.FlushEvery == 0 {
		cfg.FlushEvery = 2 * time.Millisecond
	}
	now := cfg.Clock
	if now == nil {
		start := time.Now() //lint:allow detrand default blackhole clock on the real-socket path; tests inject Config.Clock
		now = func() time.Duration {
			return time.Since(start) //lint:allow detrand default blackhole clock on the real-socket path; tests inject Config.Clock
		}
	}
	r := &Relay{
		cfg:      cfg,
		front:    front,
		target:   taddr,
		up:       newPipe(cfg.Up, cfg.Seed*2+1, now, cfg.Telemetry.Sink("chaos.up")),
		down:     newPipe(cfg.Down, cfg.Seed*2+2, now, cfg.Telemetry.Sink("chaos.down")),
		sessions: make(map[string]*session),
		done:     make(chan struct{}),
	}
	r.wg.Add(2)
	go r.frontLoop()
	go r.flushLoop()
	return r, nil
}

// Addr returns the client-facing UDP address.
func (r *Relay) Addr() net.Addr { return r.front.LocalAddr() }

// UpCounters and DownCounters return fault counter snapshots.
func (r *Relay) UpCounters() Counters   { return r.up.snapshot() }
func (r *Relay) DownCounters() Counters { return r.down.snapshot() }

// BackAddrs returns the local addresses of the relay's real (non-
// spoof) server-facing sockets, one per client session — the source
// addresses the server keys relayed connections by.
func (r *Relay) BackAddrs() []net.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []net.Addr
	for _, s := range r.sessions {
		out = append(out, s.back.LocalAddr())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Close stops the relay and its sessions.
func (r *Relay) Close() {
	r.shutOnce.Do(func() { close(r.done) })
	r.wg.Wait()
	_ = r.front.Close()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.sessions {
		_ = s.back.Close()
		if s.spoof != nil {
			_ = s.spoof.Close()
		}
	}
}

// session returns (establishing on first contact) the state for one
// client address.
func (r *Relay) session(from *net.UDPAddr) (*session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sessions[from.String()]; ok {
		return s, nil
	}
	back, err := net.DialUDP("udp", nil, r.target)
	if err != nil {
		return nil, err
	}
	s := &session{
		client: &net.UDPAddr{IP: append(net.IP(nil), from.IP...), Port: from.Port, Zone: from.Zone},
		back:   back,
	}
	if r.cfg.Up.SpoofProb > 0 {
		spoof, err := net.DialUDP("udp", nil, r.target)
		if err != nil {
			_ = back.Close()
			return nil, err
		}
		s.spoof = spoof
	}
	r.sessions[from.String()] = s
	r.wg.Add(1)
	go r.backLoop(s)
	return s, nil
}

// frontLoop forwards client datagrams to the server via Up.
func (r *Relay) frontLoop() {
	defer r.wg.Done()
	buf := make([]byte, 65536)
	for {
		_ = r.front.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //lint:allow detrand socket read deadline: I/O pacing, not protocol state
		n, from, err := r.front.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-r.done:
				return
			default:
				continue
			}
		}
		s, err := r.session(from)
		if err != nil {
			continue
		}
		var spoofSend func([]byte)
		if s.spoof != nil {
			spoofSend = func(d []byte) { _, _ = s.spoof.Write(d) }
		}
		r.up.offer(buf[:n], func(d []byte) { _, _ = s.back.Write(d) }, spoofSend)
	}
}

// backLoop forwards server replies to the client via Down.
func (r *Relay) backLoop(s *session) {
	defer r.wg.Done()
	buf := make([]byte, 65536)
	for {
		_ = s.back.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //lint:allow detrand socket read deadline: I/O pacing, not protocol state
		n, err := s.back.Read(buf)
		if err != nil {
			select {
			case <-r.done:
				return
			default:
				continue
			}
		}
		r.down.offer(buf[:n], func(d []byte) { _, _ = r.front.WriteToUDP(d, s.client) }, nil)
	}
}

// flushLoop bounds reorder-window residency.
func (r *Relay) flushLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.FlushEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			// Final flush so held datagrams are not lost silently.
			r.up.flush()
			r.down.flush()
			return
		case <-tick.C:
			r.up.flush()
			r.down.flush()
		}
	}
}
