package xtp

import (
	"bytes"
	"math/rand"
	"testing"
)

func data(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestWireRoundTrip(t *testing.T) {
	p := PDU{Key: 5, Seq: 1000, EOM: true, Data: data(64, 1)}
	b := p.AppendTo(nil)
	got, n, err := Decode(b)
	if err != nil || n != len(b) {
		t.Fatalf("decode: %v n=%d", err, n)
	}
	if got.Key != 5 || got.Seq != 1000 || !got.EOM || !bytes.Equal(got.Data, p.Data) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	p := PDU{Key: 1, Data: data(16, 2)}
	b := p.AppendTo(nil)
	if _, _, err := Decode(b[:HeaderSize-1]); err != ErrShortBuffer {
		t.Fatal("short header")
	}
	if _, _, err := Decode(b[:len(b)-1]); err != ErrShortBuffer {
		t.Fatal("short data")
	}
	b[HeaderSize] ^= 0xFF // corrupt data
	if _, _, err := Decode(b); err != ErrBadCheck {
		t.Fatal("per-PDU checksum must catch corruption")
	}
}

func TestResize(t *testing.T) {
	p := PDU{Key: 9, Seq: 500, EOM: true, Data: data(1000, 3)}
	small, err := Resize(p, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 10 { // ceil(1000/108)
		t.Fatalf("resized into %d PDUs", len(small))
	}
	for i, s := range small {
		if s.Key != 9 {
			t.Fatal("key must be preserved")
		}
		if s.EOM != (i == len(small)-1) {
			t.Fatalf("PDU %d EOM = %v", i, s.EOM)
		}
		// Every resized PDU must be independently valid — requiring a
		// recomputed checksum (the protocol-knowledge cost).
		enc := s.AppendTo(nil)
		if _, _, err := Decode(enc); err != nil {
			t.Fatalf("PDU %d invalid after resize: %v", i, err)
		}
	}
	// Seq continuity.
	next := p.Seq
	for _, s := range small {
		if s.Seq != next {
			t.Fatalf("Seq gap: %d != %d", s.Seq, next)
		}
		next += uint64(len(s.Data))
	}
	if _, err := Resize(p, HeaderSize); err != ErrTinyMTU {
		t.Fatal("tiny MTU")
	}
	one, err := Resize(PDU{Data: data(8, 4)}, 128)
	if err != nil || len(one) != 1 {
		t.Fatal("small PDU must pass through")
	}
}

func TestResizeNonEOMKeepsNoEOM(t *testing.T) {
	p := PDU{Key: 1, Data: data(300, 5)} // EOM false
	small, _ := Resize(p, 128)
	for i, s := range small {
		if s.EOM {
			t.Fatalf("PDU %d must not gain EOM", i)
		}
	}
}

func TestCollectorDisordered(t *testing.T) {
	stream := data(1000, 6)
	p := PDU{Key: 1, Seq: 0, EOM: true, Data: stream}
	small, _ := Resize(p, 128)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(small), func(i, j int) { small[i], small[j] = small[j], small[i] })
	c := NewCollector()
	var got []byte
	for _, s := range small {
		if out := c.Add(s); out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, stream) {
		t.Fatal("collector failed on disordered PDUs")
	}
}

func TestCollectorIncomplete(t *testing.T) {
	p := PDU{Key: 1, Seq: 0, EOM: true, Data: data(300, 8)}
	small, _ := Resize(p, 128)
	c := NewCollector()
	for _, s := range small[1:] { // first PDU missing
		if out := c.Add(s); out != nil {
			t.Fatal("incomplete stream must not complete")
		}
	}
}

func TestSuperRoundTrip(t *testing.T) {
	var pdus []PDU
	for i := 0; i < 10; i++ {
		pdus = append(pdus, PDU{Key: 1, Seq: uint64(i * 50), Data: data(50, int64(i))})
	}
	packets, err := Super(pdus, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) < 2 {
		t.Fatal("expected multiple SUPER packets")
	}
	var got []PDU
	for _, pk := range packets {
		if len(pk) > 256 {
			t.Fatal("SUPER packet oversize")
		}
		ps, err := DecodeSuper(pk)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ps...)
	}
	if len(got) != len(pdus) {
		t.Fatalf("got %d PDUs", len(got))
	}
	for i := range got {
		if got[i].Seq != pdus[i].Seq || !bytes.Equal(got[i].Data, pdus[i].Data) {
			t.Fatalf("PDU %d differs", i)
		}
	}
}

func TestSuperErrors(t *testing.T) {
	if _, err := Super([]PDU{{Data: data(500, 1)}}, 64); err != ErrTinyMTU {
		t.Fatal("oversize PDU in SUPER")
	}
	if _, err := DecodeSuper(nil); err != ErrShortBuffer {
		t.Fatal("empty SUPER")
	}
	if _, err := DecodeSuper([]byte{1, 0, 0}); err != ErrShortBuffer {
		t.Fatal("truncated SUPER")
	}
}

// TestPerPacketOverhead quantifies Section 3.2's efficiency point:
// XTP-style resizing repeats the FULL transport header in every
// packet, whereas chunk fragmentation repeats only framing labels and
// IP fragmentation repeats only (ID, offset). The absolute numbers
// feed experiment P7.
func TestPerPacketOverhead(t *testing.T) {
	p := PDU{Key: 1, Seq: 0, EOM: true, Data: data(4096, 9)}
	small, _ := Resize(p, 128)
	overhead := len(small) * HeaderSize
	if overhead == 0 || len(small) < 30 {
		t.Fatalf("unexpected resize shape: %d PDUs", len(small))
	}
}

func BenchmarkResize64K(b *testing.B) {
	p := PDU{Key: 1, Seq: 0, EOM: true, Data: data(64*1024, 1)}
	b.SetBytes(int64(len(p.Data)))
	for i := 0; i < b.N; i++ {
		if _, err := Resize(p, 1400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResizeEncode64K(b *testing.B) {
	// The real cost: every resized PDU needs its checksum recomputed.
	p := PDU{Key: 1, Seq: 0, EOM: true, Data: data(64*1024, 1)}
	small, _ := Resize(p, 1400)
	b.SetBytes(int64(len(p.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf []byte
		for j := range small {
			buf = small[j].AppendTo(buf[:0])
		}
	}
}
