// Package xtp models the XTP-style alternative to fragmentation that
// Section 3.2 compares against: instead of fragmenting PDUs, "convert
// large PDUs into smaller PDUs". Every packet then carries a COMPLETE
// transport header, and — the paper's criticism — "anyone who
// fragments XTP packets must understand the XTP protocol": the
// resizing entity recomputes transport-layer fields (sequence numbers,
// end-of-message flags, per-PDU checksums), so fragmentation is no
// longer independent of the upper layers. The package also models the
// SUPER packet: a container of multiple whole PDUs with its own,
// DIFFERENT format — unlike chunks, whose format never changes.
package xtp

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Wire layout of a PDU (simplified XTP information packet):
//
//	offset size field
//	0      4    KEY (connection key)
//	4      8    SEQ (byte offset of Data in the stream)
//	12     2    data length
//	14     1    flags (bit0 EOM)
//	15     1    reserved
//	16     4    CHECK (CRC-32 of header fields + data; per-PDU check)
//	20     -    data
const (
	// HeaderSize is the per-PDU header length.
	HeaderSize = 20
	flagEOM    = 1 << 0
)

// Errors reported by the codec and resizer.
var (
	ErrShortBuffer = errors.New("xtp: truncated PDU")
	ErrBadCheck    = errors.New("xtp: checksum mismatch")
	ErrTinyMTU     = errors.New("xtp: MTU cannot hold any data")
)

// A PDU is one self-contained transport protocol data unit.
type PDU struct {
	Key  uint32
	Seq  uint64
	EOM  bool
	Data []byte
}

// check computes the per-PDU checksum over the identifying fields and
// data. Recomputing it is the transport-layer knowledge a resizing
// router is forced to have.
func (p *PDU) check() uint32 {
	var hdr [15]byte
	binary.BigEndian.PutUint32(hdr[0:4], p.Key)
	binary.BigEndian.PutUint64(hdr[4:12], p.Seq)
	binary.BigEndian.PutUint16(hdr[12:14], uint16(len(p.Data)))
	if p.EOM {
		hdr[14] = flagEOM
	}
	c := crc32.ChecksumIEEE(hdr[:])
	return crc32.Update(c, crc32.IEEETable, p.Data)
}

// AppendTo appends the wire encoding.
func (p *PDU) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, p.Key)
	b = binary.BigEndian.AppendUint64(b, p.Seq)
	b = binary.BigEndian.AppendUint16(b, uint16(len(p.Data)))
	var fl byte
	if p.EOM {
		fl |= flagEOM
	}
	b = append(b, fl, 0)
	b = binary.BigEndian.AppendUint32(b, p.check())
	return append(b, p.Data...)
}

// Decode parses and verifies one PDU from the front of b.
func Decode(b []byte) (PDU, int, error) {
	if len(b) < HeaderSize {
		return PDU{}, 0, ErrShortBuffer
	}
	n := int(binary.BigEndian.Uint16(b[12:14]))
	if len(b) < HeaderSize+n {
		return PDU{}, 0, ErrShortBuffer
	}
	p := PDU{
		Key:  binary.BigEndian.Uint32(b[0:4]),
		Seq:  binary.BigEndian.Uint64(b[4:12]),
		EOM:  b[14]&flagEOM != 0,
		Data: b[HeaderSize : HeaderSize+n : HeaderSize+n],
	}
	if binary.BigEndian.Uint32(b[16:20]) != p.check() {
		return PDU{}, 0, ErrBadCheck
	}
	return p, HeaderSize + n, nil
}

// Resize converts a PDU into smaller PDUs that fit mtu — the XTP
// answer to a small-MTU network. Each output is a complete PDU with a
// recomputed checksum; only the final one keeps EOM. This is the
// operation that requires full protocol understanding at the resizing
// point.
func Resize(p PDU, mtu int) ([]PDU, error) {
	per := mtu - HeaderSize
	if per < 1 {
		return nil, ErrTinyMTU
	}
	if len(p.Data) <= per {
		return []PDU{p}, nil
	}
	var out []PDU
	for off := 0; off < len(p.Data); off += per {
		end := off + per
		last := false
		if end >= len(p.Data) {
			end = len(p.Data)
			last = true
		}
		out = append(out, PDU{
			Key:  p.Key,
			Seq:  p.Seq + uint64(off),
			EOM:  p.EOM && last,
			Data: p.Data[off:end],
		})
	}
	return out, nil
}

// Super packs whole PDUs into SUPER packets of at most mtu bytes. The
// SUPER format (a one-byte count prefix, then back-to-back PDUs)
// differs from the plain PDU format — the receiver needs both parsers,
// the paper's contrast with chunks' single format.
func Super(pdus []PDU, mtu int) ([][]byte, error) {
	var out [][]byte
	cur := []byte{0}
	count := 0
	flush := func() {
		if count > 0 {
			cur[0] = byte(count)
			out = append(out, cur)
			cur = []byte{0}
			count = 0
		}
	}
	for i := range pdus {
		enc := pdus[i].AppendTo(nil)
		if len(enc)+1 > mtu {
			return nil, ErrTinyMTU
		}
		if len(cur)+len(enc) > mtu || count == 255 {
			flush()
		}
		cur = append(cur, enc...)
		count++
	}
	flush()
	return out, nil
}

// DecodeSuper parses a SUPER packet.
func DecodeSuper(b []byte) ([]PDU, error) {
	if len(b) < 1 {
		return nil, ErrShortBuffer
	}
	count := int(b[0])
	off := 1
	out := make([]PDU, 0, count)
	for i := 0; i < count; i++ {
		p, n, err := Decode(b[off:])
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		off += n
	}
	return out, nil
}

// A Collector rebuilds the byte stream of one connection from PDUs
// arriving in any order (XTP sequence numbers are byte offsets, so
// placement is possible; what XTP lacks is the multi-level framing and
// fragmentation transparency of chunks).
type Collector struct {
	buf  []byte
	have []span
	end  int // stream length once EOM seen, else -1
}

type span struct{ lo, hi int }

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{end: -1} }

// Add places one PDU's data. It returns the complete stream when the
// EOM PDU and all preceding bytes have arrived.
func (c *Collector) Add(p PDU) []byte {
	lo, hi := int(p.Seq), int(p.Seq)+len(p.Data)
	if hi > len(c.buf) {
		grown := make([]byte, hi)
		copy(grown, c.buf)
		c.buf = grown
	}
	copy(c.buf[lo:hi], p.Data)
	c.have = append(c.have, span{lo, hi})
	if p.EOM {
		c.end = hi
	}
	if c.end >= 0 && coveredTo(c.have, c.end) {
		return c.buf[:c.end]
	}
	return nil
}

func coveredTo(spans []span, total int) bool {
	cur := 0
	for cur < total {
		advanced := false
		for _, s := range spans {
			if s.lo <= cur && s.hi > cur {
				cur = s.hi
				advanced = true
			}
		}
		if !advanced {
			return false
		}
	}
	return true
}
