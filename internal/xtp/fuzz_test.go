package xtp

import (
	"testing"
	"testing/quick"
)

func TestDecodeArbitraryBytes(t *testing.T) {
	f := func(b []byte) bool {
		p, n, err := Decode(b)
		if err != nil {
			return n == 0
		}
		return n <= len(b) && len(p.Data) <= len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeSuperArbitraryBytes(t *testing.T) {
	f := func(b []byte) bool {
		_, err := DecodeSuper(b)
		_ = err // errors are fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCorruptionAlwaysCaught: flipping any byte of an encoded PDU is
// caught by the per-PDU checksum (or breaks parsing).
func TestCorruptionAlwaysCaught(t *testing.T) {
	p := PDU{Key: 5, Seq: 99, EOM: true, Data: data(64, 1)}
	good := p.AppendTo(nil)
	for i := range good {
		if i == 15 {
			continue // reserved byte: not covered, not interpreted
		}
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x01
		got, _, err := Decode(bad)
		if err == nil && got.check() == p.check() && string(got.Data) == string(p.Data) &&
			got.Key == p.Key && got.Seq == p.Seq && got.EOM == p.EOM {
			t.Fatalf("flip at byte %d went unnoticed", i)
		}
	}
}
