package mux_test

import (
	"fmt"

	"chunks/internal/chunk"
	"chunks/internal/mux"
	"chunks/internal/transport"
)

// Example shows Appendix A's multi-connection packing: two
// connections' data and a third connection's acknowledgment share one
// packet, and the demultiplexer routes each chunk home by C.ID.
func Example() {
	mk := func(cid uint32, b byte) chunk.Chunk {
		return chunk.Chunk{
			Type: chunk.TypeData, Size: 1, Len: 2,
			C: chunk.Tuple{ID: cid}, T: chunk.Tuple{ID: 1, ST: true}, X: chunk.Tuple{ID: 1},
			Payload: []byte{b, b},
		}
	}
	m := mux.NewMux(1400)
	m.Enqueue(mk(1, 'a'), mk(2, 'b'), transport.Ack(3, 42))
	datagrams, _ := m.Flush()
	fmt.Println("packets:", len(datagrams))

	d := mux.NewDemux()
	for _, cid := range []uint32{1, 2, 3} {
		cid := cid
		d.Register(cid, func(c *chunk.Chunk) error {
			fmt.Printf("conn %d got %v\n", cid, c.Type)
			return nil
		})
	}
	_ = d.HandlePacket(datagrams[0])
	// Output:
	// packets: 1
	// conn 1 got D
	// conn 2 got D
	// conn 3 got ACK
}
