package mux

import (
	"testing"

	"chunks/internal/chunk"
	"chunks/internal/errdet"
	"chunks/internal/trace"
	"chunks/internal/transport"
)

// TestTwoConnectionsShareAPacket: chunks of two connections plus a
// piggybacked ACK travel in ONE packet and demux cleanly.
func TestTwoConnectionsShareAPacket(t *testing.T) {
	a := chunk.Chunk{Type: chunk.TypeData, Size: 1, Len: 4,
		C: chunk.Tuple{ID: 1, SN: 0}, T: chunk.Tuple{ID: 1, ST: true},
		X: chunk.Tuple{ID: 1, ST: true}, Payload: []byte{1, 2, 3, 4}}
	b := chunk.Chunk{Type: chunk.TypeData, Size: 1, Len: 4,
		C: chunk.Tuple{ID: 2, SN: 0}, T: chunk.Tuple{ID: 1, ST: true},
		X: chunk.Tuple{ID: 1, ST: true}, Payload: []byte{5, 6, 7, 8}}
	ack := transport.Ack(3, 42) // a third connection's acknowledgment

	m := NewMux(1400)
	m.Enqueue(a, b, ack)
	datagrams, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(datagrams) != 1 {
		t.Fatalf("want 1 shared packet, got %d", len(datagrams))
	}
	if m.Pending() != 0 {
		t.Fatal("flush must clear the queue")
	}

	got := map[uint32]int{}
	d := NewDemux()
	for _, cid := range []uint32{1, 2, 3} {
		cid := cid
		d.Register(cid, func(c *chunk.Chunk) error {
			got[cid]++
			return nil
		})
	}
	if err := d.HandlePacket(datagrams[0]); err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 || got[2] != 1 || got[3] != 1 {
		t.Fatalf("dispatch counts: %v", got)
	}
	if d.Packets != 1 || d.Chunks != 3 {
		t.Fatalf("accounting: %d packets %d chunks", d.Packets, d.Chunks)
	}
}

func TestDemuxUnknownConnection(t *testing.T) {
	c := chunk.Chunk{Type: chunk.TypeData, Size: 1, Len: 1,
		C: chunk.Tuple{ID: 9}, Payload: []byte{1}}
	m := NewMux(256)
	m.Enqueue(c)
	datagrams, _ := m.Flush()

	d := NewDemux()
	if err := d.HandlePacket(datagrams[0]); err != ErrNoHandler {
		t.Fatalf("want ErrNoHandler, got %v", err)
	}
	strays := 0
	d.Default(func(*chunk.Chunk) error { strays++; return nil })
	if err := d.HandlePacket(datagrams[0]); err != nil {
		t.Fatal(err)
	}
	if strays != 1 {
		t.Fatal("default handler must see the stray")
	}
}

func TestDemuxBadPacket(t *testing.T) {
	d := NewDemux()
	if err := d.HandlePacket([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestFlushEmpty(t *testing.T) {
	m := NewMux(256)
	out, err := m.Flush()
	if err != nil || out != nil {
		t.Fatalf("empty flush: %v %v", out, err)
	}
}

// TestMuxedVerification: two full connections' workloads (data + ED
// chunks) interleaved through one Mux; each connection's errdet
// receiver verifies every TPDU. This is the end-to-end statement of
// Appendix A's modularity point.
func TestMuxedVerification(t *testing.T) {
	w1, err := trace.Bulk(trace.BulkConfig{Seed: 1, Bytes: 8192, ElemSize: 4, TPDUElems: 128, CID: 1})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := trace.Bulk(trace.BulkConfig{Seed: 2, Bytes: 8192, ElemSize: 4, TPDUElems: 128, CID: 2})
	if err != nil {
		t.Fatal(err)
	}

	m := NewMux(512)
	c1, c2 := w1.All(), w2.All()
	for i := 0; i < len(c1) || i < len(c2); i++ {
		if i < len(c1) {
			m.Enqueue(c1[i])
		}
		if i < len(c2) {
			m.Enqueue(c2[i])
		}
	}
	datagrams, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}

	r1, _ := errdet.NewReceiver(errdet.DefaultLayout())
	r2, _ := errdet.NewReceiver(errdet.DefaultLayout())
	d := NewDemux()
	d.Register(1, r1.Ingest)
	d.Register(2, r2.Ingest)
	for _, dg := range datagrams {
		if err := d.HandlePacket(dg); err != nil {
			t.Fatal(err)
		}
	}
	for i := range w1.Chunks {
		if v := r1.Verdict(w1.Chunks[i].T.ID); v != errdet.VerdictOK {
			t.Fatalf("conn 1 TPDU %d: %v", i, v)
		}
	}
	for i := range w2.Chunks {
		if v := r2.Verdict(w2.Chunks[i].T.ID); v != errdet.VerdictOK {
			t.Fatalf("conn 2 TPDU %d: %v", i, v)
		}
	}

	// Piggyback efficiency: shared packets must use fewer envelopes
	// than flushing each connection separately.
	sep := NewMux(512)
	sep.Enqueue(c1...)
	d1, _ := sep.Flush()
	sep.Enqueue(c2...)
	d2, _ := sep.Flush()
	if len(datagrams) > len(d1)+len(d2) {
		t.Fatalf("muxing used %d packets, separate %d", len(datagrams), len(d1)+len(d2))
	}
}
