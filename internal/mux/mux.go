// Package mux implements the multi-connection packing of Appendix A:
// "packets that carry chunks from multiple connections. Data,
// signaling information, and acknowledgments can be combined in any
// combination. Notice that this allows an error detection system that
// utilizes chunks to achieve the efficiency associated with the
// piggybacking of acknowledgments without requiring the explicit
// design of piggybacking into the error control protocol."
//
// A Mux gathers chunks from any number of connections into shared
// MTU-bounded packets; a Demux routes received chunks back to
// per-connection handlers by C.ID. Neither knows anything about the
// chunks' semantics — the modularity the paper claims.
package mux

import (
	"errors"

	"chunks/internal/chunk"
	"chunks/internal/packet"
)

// ErrNoHandler reports a chunk whose C.ID has no registered handler
// and no default was installed.
var ErrNoHandler = errors.New("mux: no handler for connection")

// A Mux combines chunks from many sources into shared packets.
type Mux struct {
	pk      packet.Packer
	pending []chunk.Chunk
}

// NewMux returns a Mux producing packets of at most mtu bytes.
func NewMux(mtu int) *Mux {
	return &Mux{pk: packet.Packer{MTU: mtu}}
}

// Enqueue adds chunks (from any connection, of any type) to the next
// flush. Chunks too large for one packet will be split at flush time.
func (m *Mux) Enqueue(chs ...chunk.Chunk) {
	m.pending = append(m.pending, chs...)
}

// Pending returns the number of queued chunks.
func (m *Mux) Pending() int { return len(m.pending) }

// Flush packs everything queued into datagrams and clears the queue.
func (m *Mux) Flush() ([][]byte, error) {
	if len(m.pending) == 0 {
		return nil, nil
	}
	out, err := m.pk.Encode(m.pending)
	if err != nil {
		return nil, err
	}
	m.pending = m.pending[:0]
	return out, nil
}

// A Demux routes received chunks to per-connection handlers by C.ID.
// Handlers receive chunks whose payloads alias the packet buffer;
// they must Clone anything they retain.
type Demux struct {
	handlers map[uint32]func(*chunk.Chunk) error
	fallback func(*chunk.Chunk) error

	// Packets and Chunks count traffic for efficiency accounting.
	Packets int
	Chunks  int
}

// NewDemux returns an empty Demux.
func NewDemux() *Demux {
	return &Demux{handlers: make(map[uint32]func(*chunk.Chunk) error)}
}

// Register installs the handler for one connection ID.
func (d *Demux) Register(cid uint32, h func(*chunk.Chunk) error) {
	d.handlers[cid] = h
}

// Default installs a handler for chunks of unknown connections
// (e.g. to count strays or feed a connection-setup path).
func (d *Demux) Default(h func(*chunk.Chunk) error) { d.fallback = h }

// HandlePacket decodes one datagram and dispatches each chunk.
func (d *Demux) HandlePacket(b []byte) error {
	p, err := packet.Decode(b)
	if err != nil {
		return err
	}
	d.Packets++
	for i := range p.Chunks {
		d.Chunks++
		c := &p.Chunks[i]
		h := d.handlers[c.C.ID]
		if h == nil {
			h = d.fallback
		}
		if h == nil {
			return ErrNoHandler
		}
		if err := h(c); err != nil {
			return err
		}
	}
	return nil
}
