package stats

import (
	"strings"
	"testing"
)

func TestTouches(t *testing.T) {
	var tc Touches
	tc.Move(100)
	tc.Move(50)
	if tc.Bytes() != 150 || tc.Ops() != 2 {
		t.Fatalf("Bytes=%d Ops=%d", tc.Bytes(), tc.Ops())
	}
	if got := tc.PerByte(75); got != 2.0 {
		t.Fatalf("PerByte = %v", got)
	}
	if tc.PerByte(0) != 0 {
		t.Fatal("PerByte(0) must be 0")
	}
	tc.Reset()
	if tc.Bytes() != 0 || tc.Ops() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestOccupancy(t *testing.T) {
	var o Occupancy
	o.Grow(100)
	o.Grow(200)
	o.Shrink(150)
	if o.Current() != 150 {
		t.Fatalf("Current = %d", o.Current())
	}
	if o.Peak() != 300 {
		t.Fatalf("Peak = %d", o.Peak())
	}
	o.Grow(10)
	if o.Peak() != 300 {
		t.Fatal("peak must not drop")
	}
}

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.Max() != 0 || l.Count() != 0 {
		t.Fatal("empty recorder must report zeros")
	}
}

func TestLatencyStats(t *testing.T) {
	var l Latency
	for _, v := range []int64{5, 1, 9, 3, 7} {
		l.Record(v)
	}
	if l.Count() != 5 {
		t.Fatalf("Count = %d", l.Count())
	}
	if l.Mean() != 5.0 {
		t.Fatalf("Mean = %v", l.Mean())
	}
	if l.Percentile(50) != 5 {
		t.Fatalf("p50 = %d", l.Percentile(50))
	}
	if l.Max() != 9 {
		t.Fatalf("Max = %d", l.Max())
	}
	if l.Percentile(1) != 1 {
		t.Fatalf("p1 = %d", l.Percentile(1))
	}
	if l.Percentile(100) != 9 {
		t.Fatalf("p100 = %d", l.Percentile(100))
	}
}

func TestLatencyRecordAfterSort(t *testing.T) {
	var l Latency
	l.Record(10)
	_ = l.Percentile(50)
	l.Record(1)
	if l.Percentile(1) != 1 {
		t.Fatal("recorder must re-sort after new samples")
	}
}

func TestLatencyString(t *testing.T) {
	var l Latency
	l.Record(4)
	s := l.String()
	for _, want := range []string{"n=1", "mean=4.0", "max=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
