// Package stats provides the measurement instruments for the paper's
// performance arguments: data-touch (bus-crossing) counters for the
// Section 1 claim that buffering before processing moves data across
// the memory bus twice, buffer-occupancy tracking for the reassembly
// lock-up experiment, and a latency recorder for the
// buffering-increases-latency claim.
package stats

import (
	"fmt"
	"sort"
)

// Touches counts byte movements. In the paper's RISC-workstation model
// every time a byte is read from or written to memory it crosses the
// bus once; immediate processing touches each byte once on receive,
// while buffer-then-process touches it at least twice.
type Touches struct {
	ops   int64
	bytes int64
}

// Move records moving (reading or writing) n bytes.
func (t *Touches) Move(n int) {
	t.ops++
	t.bytes += int64(n)
}

// Bytes returns total bytes moved.
func (t *Touches) Bytes() int64 { return t.bytes }

// Ops returns the number of move operations.
func (t *Touches) Ops() int64 { return t.ops }

// Reset zeroes the counter.
func (t *Touches) Reset() { *t = Touches{} }

// PerByte returns moved-bytes divided by payload bytes — the
// "times each byte crossed the bus" figure the P1 experiment reports.
func (t *Touches) PerByte(payload int64) float64 {
	if payload == 0 {
		return 0
	}
	return float64(t.bytes) / float64(payload)
}

// Occupancy tracks current and peak occupancy of a buffer in bytes.
type Occupancy struct {
	cur, peak int64
}

// Grow adds n bytes to the buffer.
func (o *Occupancy) Grow(n int) {
	o.cur += int64(n)
	if o.cur > o.peak {
		o.peak = o.cur
	}
}

// Shrink removes n bytes.
func (o *Occupancy) Shrink(n int) { o.cur -= int64(n) }

// Current returns the current occupancy.
func (o *Occupancy) Current() int64 { return o.cur }

// Peak returns the high-water mark.
func (o *Occupancy) Peak() int64 { return o.peak }

// Latency records per-item latencies in abstract ticks (the netsim
// clock) and reports distribution statistics.
type Latency struct {
	samples []int64
	sorted  bool
}

// Record adds one latency sample.
func (l *Latency) Record(ticks int64) {
	l.samples = append(l.samples, ticks)
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the mean latency, or 0 with no samples.
func (l *Latency) Mean() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	var sum int64
	for _, s := range l.samples {
		sum += s
	}
	return float64(sum) / float64(len(l.samples))
}

func (l *Latency) sort() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank, or 0 with no samples.
func (l *Latency) Percentile(p float64) int64 {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	rank := int(p/100*float64(len(l.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(l.samples) {
		rank = len(l.samples) - 1
	}
	return l.samples[rank]
}

// Max returns the largest sample.
func (l *Latency) Max() int64 {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	return l.samples[len(l.samples)-1]
}

// String summarises the distribution.
func (l *Latency) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d max=%d",
		l.Count(), l.Mean(), l.Percentile(50), l.Percentile(99), l.Max())
}
