package chunk

import "errors"

// Chunk formation (Figure 2): "conceptually each piece of data is
// labelled with a TYPE field and multiple (ID, SN, ST) tuples", and "a
// group of data with contiguous sequence numbers that have identical
// TYPE and IDs can share a single header". Form performs exactly that
// coalescing: it turns a stream of individually-labelled elements into
// the minimal sequence of chunks.

// An Element is one atomic data unit with its full conceptual label.
type Element struct {
	Type    Type
	Data    []byte
	C, T, X Tuple // per-element SN; ST set on PDU-final elements
}

// ErrElementSize reports an element whose data is not SIZE bytes.
var ErrElementSize = errors.New("chunk: element data length != SIZE")

// sharable reports whether e can extend a chunk currently ending with
// element prev: identical TYPE and IDs, SNs consecutive at every
// level, and prev not PDU-final at any level (an ST bit can appear
// only on a chunk's last element).
func sharable(prev, e *Element) bool {
	return prev.Type == e.Type &&
		prev.C.ID == e.C.ID && prev.T.ID == e.T.ID && prev.X.ID == e.X.ID &&
		prev.C.SN+1 == e.C.SN && prev.T.SN+1 == e.T.SN && prev.X.SN+1 == e.X.SN &&
		!prev.C.ST && !prev.T.ST && !prev.X.ST
}

// Form coalesces labelled elements into chunks of element size `size`.
// Each returned chunk carries the SNs of its first element and the ST
// bits of its last (Section 2). Payloads are freshly allocated.
func Form(size uint16, elems []Element) ([]Chunk, error) {
	if size == 0 {
		return nil, ErrBadSize
	}
	var out []Chunk
	for i := 0; i < len(elems); {
		first := &elems[i]
		if len(first.Data) != int(size) {
			return nil, ErrElementSize
		}
		j := i + 1
		for j < len(elems) {
			if len(elems[j].Data) != int(size) {
				return nil, ErrElementSize
			}
			if !sharable(&elems[j-1], &elems[j]) {
				break
			}
			j++
		}
		last := &elems[j-1]
		c := Chunk{
			Type: first.Type,
			Size: size,
			Len:  uint32(j - i),
			C:    Tuple{ID: first.C.ID, SN: first.C.SN, ST: last.C.ST},
			T:    Tuple{ID: first.T.ID, SN: first.T.SN, ST: last.T.ST},
			X:    Tuple{ID: first.X.ID, SN: first.X.SN, ST: last.X.ST},
		}
		c.Payload = make([]byte, 0, (j-i)*int(size))
		for k := i; k < j; k++ {
			c.Payload = append(c.Payload, elems[k].Data...)
		}
		out = append(out, c)
		i = j
	}
	return out, nil
}

// Elements expands a chunk back into its per-element conceptual labels
// — the inverse of Form, used by tests and by processing functions
// that need per-element positions.
func (c *Chunk) Elements() []Element {
	out := make([]Element, c.Elems())
	for i := range out {
		n := uint64(i)
		out[i] = Element{
			Type: c.Type,
			Data: c.Element(i),
			C:    Tuple{ID: c.C.ID, SN: c.C.SN + n},
			T:    Tuple{ID: c.T.ID, SN: c.T.SN + n},
			X:    Tuple{ID: c.X.ID, SN: c.X.SN + n},
		}
	}
	if len(out) > 0 {
		last := &out[len(out)-1]
		last.C.ST = c.C.ST
		last.T.ST = c.T.ST
		last.X.ST = c.X.ST
	}
	return out
}
