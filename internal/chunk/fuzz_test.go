package chunk

import (
	"testing"
	"testing/quick"
)

// TestDecodeArbitraryBytes: the decoder must never panic and must
// report a sane consumed length for any input.
func TestDecodeArbitraryBytes(t *testing.T) {
	f := func(b []byte) bool {
		c, n, err := Decode(b)
		if err != nil {
			return n == 0
		}
		if n <= 0 || n > len(b) {
			return false
		}
		if c.IsTerminator() {
			return n == TerminatorSize
		}
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FuzzDecode exercises the wire decoder with the native fuzzer; the
// corpus seeds cover the terminator, a valid chunk, and truncations.
func FuzzDecode(f *testing.F) {
	c := Chunk{
		Type: TypeData, Size: 2, Len: 3,
		C: Tuple{ID: 1, SN: 10}, T: Tuple{ID: 2, SN: 0, ST: true}, X: Tuple{ID: 3, SN: 5},
		Payload: []byte{1, 2, 3, 4, 5, 6},
	}
	valid := c.AppendTo(nil)
	f.Add(valid)
	f.Add(valid[:HeaderSize])
	f.Add([]byte{0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		c, n, err := Decode(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with nonzero consume: %d", n)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		if !c.IsTerminator() {
			if err := c.Validate(); err != nil {
				t.Fatalf("decoded invalid chunk: %v", err)
			}
			// Round-trip stability: re-encode and re-decode.
			re := c.AppendTo(nil)
			c2, _, err := Decode(re)
			if err != nil || !c2.Equal(&c) {
				t.Fatalf("re-encode round trip failed: %v", err)
			}
		}
	})
}

// FuzzSplitMerge: for any decodable data chunk and split point,
// Split followed by Merge is the identity.
func FuzzSplitMerge(f *testing.F) {
	c := Chunk{
		Type: TypeData, Size: 1, Len: 16,
		C: Tuple{ID: 1, SN: 100}, T: Tuple{ID: 2, ST: true}, X: Tuple{ID: 3, SN: 50},
		Payload: make([]byte, 16),
	}
	f.Add(c.AppendTo(nil), uint32(4))
	f.Fuzz(func(t *testing.T, b []byte, at uint32) {
		c, _, err := Decode(b)
		if err != nil || c.IsTerminator() || c.Type.Control() || c.Len < 2 {
			return
		}
		n := 1 + at%(c.Len-1)
		a, bb, err := c.Split(n)
		if err != nil {
			t.Fatalf("split: %v", err)
		}
		m, err := Merge(&a, &bb)
		if err != nil || !m.Equal(&c) {
			t.Fatalf("merge: %v", err)
		}
	})
}
