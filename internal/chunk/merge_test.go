package chunk

import (
	"math/rand"
	"testing"
)

func adjacentPair() (Chunk, Chunk) {
	c := sampleChunk()
	c.T.ST = false
	a, b, err := c.Split(2)
	if err != nil {
		panic(err)
	}
	return a, b
}

func TestCanMergeRejections(t *testing.T) {
	a, b := adjacentPair()
	if !CanMerge(&a, &b) {
		t.Fatal("baseline pair must merge")
	}

	mut := func(f func(x *Chunk)) (Chunk, Chunk) {
		x, y := adjacentPair()
		f(&y)
		return x, y
	}

	cases := []struct {
		name string
		f    func(y *Chunk)
	}{
		{"type differs", func(y *Chunk) { y.Type = TypeED }},
		{"size differs", func(y *Chunk) { y.Size = 1 }},
		{"C.ID differs", func(y *Chunk) { y.C.ID++ }},
		{"T.ID differs", func(y *Chunk) { y.T.ID++ }},
		{"X.ID differs", func(y *Chunk) { y.X.ID++ }},
		{"C.SN gap", func(y *Chunk) { y.C.SN++ }},
		{"T.SN gap", func(y *Chunk) { y.T.SN++ }},
		{"X.SN gap", func(y *Chunk) { y.X.SN++ }},
	}
	for _, tc := range cases {
		x, y := mut(tc.f)
		if CanMerge(&x, &y) {
			t.Errorf("%s: must not merge", tc.name)
		}
		if _, err := Merge(&x, &y); err != ErrNotAdjacent {
			t.Errorf("%s: Merge err = %v", tc.name, err)
		}
	}

	// First chunk ending a PDU at any level blocks the merge.
	x, y := adjacentPair()
	x.T.ST = true
	if CanMerge(&x, &y) {
		t.Error("ST-terminated first chunk must not merge")
	}

	// Terminators and control chunks never merge.
	term := Terminator()
	if CanMerge(&term, &y) || CanMerge(&x, &term) {
		t.Error("terminator must not merge")
	}
	ed := Chunk{Type: TypeED, Size: 8, Len: 1, Payload: make([]byte, 8)}
	ed2 := ed
	ed2.C.SN = 1
	if CanMerge(&ed, &ed2) {
		t.Error("control chunks must not merge")
	}
}

func TestMergeTakesSTFromSecond(t *testing.T) {
	c := sampleChunk() // T.ST set on original
	a, b, _ := c.Split(3)
	m, err := Merge(&a, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.T.ST || m.C.ST || m.X.ST {
		t.Fatalf("merged ST bits wrong: %v", &m)
	}
	if m.C.SN != a.C.SN || m.T.SN != a.T.SN || m.X.SN != a.X.SN {
		t.Fatal("merged SNs must come from the first chunk")
	}
	if m.Len != a.Len+b.Len {
		t.Fatal("merged LEN must be the sum")
	}
}

func TestMergeAllDisordered(t *testing.T) {
	// Fragment a 60-element chunk into random pieces, shuffle, and
	// require one-pass reassembly regardless of arrival order —
	// Section 3.1: "chunks can be efficiently reassembled in a single
	// step" no matter how many fragmentation stages occurred.
	rng := rand.New(rand.NewSource(99))
	orig := Chunk{
		Type: TypeData, Size: 3, Len: 60,
		C: Tuple{ID: 7, SN: 1000}, T: Tuple{ID: 8, SN: 0, ST: true}, X: Tuple{ID: 9, SN: 40},
		Payload: make([]byte, 180),
	}
	for i := range orig.Payload {
		orig.Payload[i] = byte(rng.Intn(256))
	}

	pieces := []Chunk{orig}
	for round := 0; round < 4; round++ {
		var next []Chunk
		for _, p := range pieces {
			if p.Len > 1 && rng.Intn(2) == 0 {
				at := 1 + uint32(rng.Intn(int(p.Len-1)))
				a, b, err := p.Split(at)
				if err != nil {
					t.Fatal(err)
				}
				next = append(next, a, b)
			} else {
				next = append(next, p)
			}
		}
		pieces = next
	}
	rng.Shuffle(len(pieces), func(i, j int) { pieces[i], pieces[j] = pieces[j], pieces[i] })

	merged := MergeAll(pieces)
	if len(merged) != 1 {
		t.Fatalf("MergeAll left %d chunks", len(merged))
	}
	if !merged[0].Equal(&orig) {
		t.Fatalf("reassembly mismatch:\n got %v\nwant %v", &merged[0], &orig)
	}
}

func TestMergeAllDistinctPDUs(t *testing.T) {
	// Chunks of different TPDUs must remain distinct.
	a := Chunk{Type: TypeData, Size: 1, Len: 2, C: Tuple{ID: 1, SN: 0}, T: Tuple{ID: 10, SN: 0, ST: true}, X: Tuple{ID: 5}, Payload: []byte{1, 2}}
	b := Chunk{Type: TypeData, Size: 1, Len: 2, C: Tuple{ID: 1, SN: 2}, T: Tuple{ID: 11, SN: 0, ST: true}, X: Tuple{ID: 5, SN: 2}, Payload: []byte{3, 4}}
	out := MergeAll([]Chunk{b, a})
	if len(out) != 2 {
		t.Fatalf("distinct TPDUs merged: %v", out)
	}
	if out[0].T.ID != 10 || out[1].T.ID != 11 {
		t.Fatal("MergeAll must sort by connection SN")
	}
}

func TestMergeAllSmallInputs(t *testing.T) {
	if out := MergeAll(nil); len(out) != 0 {
		t.Fatal("empty input")
	}
	c := sampleChunk()
	out := MergeAll([]Chunk{c})
	if len(out) != 1 || !out[0].Equal(&c) {
		t.Fatal("singleton input must pass through")
	}
}

func TestMergeAllDoesNotMutateInput(t *testing.T) {
	a, b := adjacentPair()
	in := []Chunk{b, a}
	_ = MergeAll(in)
	if !in[0].Equal(&b) || !in[1].Equal(&a) {
		t.Fatal("MergeAll must not reorder the caller's slice")
	}
}

func BenchmarkMergeAll64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	orig := Chunk{
		Type: TypeData, Size: 4, Len: 256,
		C: Tuple{ID: 1}, T: Tuple{ID: 2, ST: true}, X: Tuple{ID: 3},
		Payload: make([]byte, 1024),
	}
	var pieces []Chunk
	rest := orig
	for rest.Len > 4 {
		a, bb, _ := rest.Split(4)
		pieces = append(pieces, a)
		rest = bb
	}
	pieces = append(pieces, rest)
	rng.Shuffle(len(pieces), func(i, j int) { pieces[i], pieces[j] = pieces[j], pieces[i] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := MergeAll(pieces)
		if len(out) != 1 {
			b.Fatal("merge failed")
		}
	}
}
