package chunk

import (
	"testing"
	"testing/quick"
)

// TestWireConstantsPinned pins the wire-visible limits: changing any
// of these changes what peers accept on the wire.
func TestWireConstantsPinned(t *testing.T) {
	if HeaderSize != 44 {
		t.Errorf("HeaderSize = %d, want 44", HeaderSize)
	}
	if TerminatorSize != 1 {
		t.Errorf("TerminatorSize = %d, want 1", TerminatorSize)
	}
	if MaxPayload != 1<<24 {
		t.Errorf("MaxPayload = %d, want %d", MaxPayload, 1<<24)
	}
}

func TestWireRoundTrip(t *testing.T) {
	c := sampleChunk()
	b := c.AppendTo(nil)
	if len(b) != c.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(b), c.EncodedLen())
	}
	got, n, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d", n, len(b))
	}
	if !got.Equal(&c) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", &got, &c)
	}
}

func TestWireTerminator(t *testing.T) {
	term := Terminator()
	b := term.AppendTo(nil)
	if len(b) != TerminatorSize || b[0] != 0 {
		t.Fatalf("terminator encoding = %v", b)
	}
	got, n, err := Decode(b)
	if err != nil || n != 1 || !got.IsTerminator() {
		t.Fatalf("terminator decode: %v %d %v", got, n, err)
	}
}

func TestWireShortBuffers(t *testing.T) {
	c := sampleChunk()
	b := c.AppendTo(nil)
	for _, cut := range []int{0, 1, HeaderSize - 1, HeaderSize, len(b) - 1} {
		if cut == len(b) {
			continue
		}
		if _, _, err := Decode(b[:cut]); err != ErrShortBuffer {
			t.Errorf("cut=%d: want ErrShortBuffer, got %v", cut, err)
		}
	}
}

func TestWireBadType(t *testing.T) {
	c := sampleChunk()
	b := c.AppendTo(nil)
	b[0] = 99
	if _, _, err := Decode(b); err != ErrBadType {
		t.Fatalf("want ErrBadType, got %v", err)
	}
}

func TestWireBadFlags(t *testing.T) {
	c := sampleChunk()
	b := c.AppendTo(nil)
	b[1] |= 0x80
	if _, _, err := Decode(b); err != ErrBadFlags {
		t.Fatalf("want ErrBadFlags, got %v", err)
	}
}

func TestWireBadSize(t *testing.T) {
	c := sampleChunk()
	b := c.AppendTo(nil)
	b[2], b[3] = 0, 0 // SIZE = 0
	if _, _, err := Decode(b); err != ErrBadSize {
		t.Fatalf("want ErrBadSize, got %v", err)
	}
}

func TestWireHugeLen(t *testing.T) {
	c := sampleChunk()
	b := c.AppendTo(nil)
	// Forge LEN and SIZE so LEN*SIZE > MaxPayload: the decoder must
	// refuse rather than trust a corrupted header.
	b[2], b[3] = 0xFF, 0xFF
	b[4], b[5], b[6], b[7] = 0x00, 0xFF, 0xFF, 0xFF
	if _, _, err := Decode(b); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestWirePayloadAliases(t *testing.T) {
	c := sampleChunk()
	b := c.AppendTo(nil)
	got, _, _ := Decode(b)
	b[HeaderSize] = 0xEE
	if got.Payload[0] != 0xEE {
		t.Fatal("decoded payload should alias the input buffer (NoCopy)")
	}
}

func TestWireBackToBack(t *testing.T) {
	// Two chunks then a terminator in one buffer, as inside a packet.
	a, c := sampleChunk(), sampleChunk()
	c.T.SN = 4
	var buf []byte
	buf = a.AppendTo(buf)
	buf = c.AppendTo(buf)
	term := Terminator()
	buf = term.AppendTo(buf)

	var dec Chunk
	n1, err := dec.DecodeFromBytes(buf)
	if err != nil || !dec.Equal(&a) {
		t.Fatalf("first decode: %v", err)
	}
	n2, err := dec.DecodeFromBytes(buf[n1:])
	if err != nil || !dec.Equal(&c) {
		t.Fatalf("second decode: %v", err)
	}
	n3, err := dec.DecodeFromBytes(buf[n1+n2:])
	if err != nil || !dec.IsTerminator() || n3 != 1 {
		t.Fatalf("terminator decode: %v", err)
	}
}

func quickChunk(typ Type, size uint16, payload []byte, cid, tid, xid uint32, csn, tsn, xsn uint64, cst, tst, xst bool) (Chunk, bool) {
	if size == 0 {
		size = 1
	}
	n := len(payload) / int(size)
	if n == 0 {
		return Chunk{}, false
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	return Chunk{
		Type: typ, Size: size, Len: uint32(n),
		C: Tuple{cid, csn, cst}, T: Tuple{tid, tsn, tst}, X: Tuple{xid, xsn, xst},
		Payload: payload[:n*int(size)],
	}, true
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(size uint16, payload []byte, cid, tid, xid uint32, csn, tsn, xsn uint64, cst, tst, xst bool) bool {
		c, ok := quickChunk(TypeData, size%128, payload, cid, tid, xid, csn, tsn, xsn, cst, tst, xst)
		if !ok {
			return true
		}
		b := c.AppendTo(nil)
		got, n, err := Decode(b)
		return err == nil && n == len(b) && got.Equal(&c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppendTo(b *testing.B) {
	c := sampleChunk()
	c.Payload = make([]byte, 1024)
	c.Len, c.Size = 256, 4
	buf := make([]byte, 0, 2048)
	b.SetBytes(int64(c.EncodedLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.AppendTo(buf[:0])
	}
}

func BenchmarkDecodeFromBytes(b *testing.B) {
	c := sampleChunk()
	c.Payload = make([]byte, 1024)
	c.Len, c.Size = 256, 4
	buf := c.AppendTo(nil)
	var dec Chunk
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeFromBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}
