package chunk

import (
	"testing"
	"testing/quick"
)

// figure2Elements reproduces the labelled data stream of Figure 2:
// nine one-byte elements on connection A, spanning the end of TPDU P,
// all of TPDU Q, and the start of TPDU R, all within external PDU C.
//
//	TYPE  D  D  D  D  D  D  D  D  D
//	C.ID  A  A  A  A  A  A  A  A  A
//	C.SN  35 36 37 38 39 40 41 42 43
//	C.ST  0  0  0  0  0  0  0  0  0
//	T.ID  P  Q  Q  Q  Q  Q  Q  Q  R
//	T.SN  6  0  1  2  3  4  5  6  0
//	T.ST  1  0  0  0  0  0  0  1  0
//	X.ID  C  C  C  C  C  C  C  C  C
//	X.SN  23 24 25 26 27 28 29 30 31
//	X.ST  0  0  0  0  0  0  0  0  0
const (
	connA = 0xA
	tpduP = 0xF0
	tpduQ = 0xF1
	tpduR = 0xF2
	xpduC = 0xC
)

func figure2Elements() []Element {
	type row struct {
		tID uint32
		tSN uint64
		tST bool
		cSN uint64
		xSN uint64
	}
	rows := []row{
		{tpduP, 6, true, 35, 23},
		{tpduQ, 0, false, 36, 24},
		{tpduQ, 1, false, 37, 25},
		{tpduQ, 2, false, 38, 26},
		{tpduQ, 3, false, 39, 27},
		{tpduQ, 4, false, 40, 28},
		{tpduQ, 5, false, 41, 29},
		{tpduQ, 6, true, 42, 30},
		{tpduR, 0, false, 43, 31},
	}
	elems := make([]Element, len(rows))
	for i, r := range rows {
		elems[i] = Element{
			Type: TypeData,
			Data: []byte{byte(i)},
			C:    Tuple{ID: connA, SN: r.cSN},
			T:    Tuple{ID: r.tID, SN: r.tSN, ST: r.tST},
			X:    Tuple{ID: xpduC, SN: r.xSN},
		}
	}
	return elems
}

// TestFigure2GoldenChunk (experiment F2) checks chunk formation against
// the exact header the paper draws for TPDU Q:
//
//	CTX ID  A Q C
//	    SN  36 0 24
//	    ST  0 1 0
//	TYPE D  SIZE 1  LEN 7
func TestFigure2GoldenChunk(t *testing.T) {
	out, err := Form(1, figure2Elements())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("Form produced %d chunks, want 3 (tail of P, all of Q, head of R)", len(out))
	}
	q := out[1]
	if q.Type != TypeData || q.Size != 1 || q.Len != 7 {
		t.Fatalf("TYPE/SIZE/LEN = %v/%d/%d", q.Type, q.Size, q.Len)
	}
	if q.C != (Tuple{ID: connA, SN: 36, ST: false}) {
		t.Fatalf("C tuple = %v, want (A,36,0)", q.C)
	}
	if q.T != (Tuple{ID: tpduQ, SN: 0, ST: true}) {
		t.Fatalf("T tuple = %v, want (Q,0,1)", q.T)
	}
	if q.X != (Tuple{ID: xpduC, SN: 24, ST: false}) {
		t.Fatalf("X tuple = %v, want (C,24,0)", q.X)
	}
	if string(q.Payload) != string([]byte{1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("payload = %v", q.Payload)
	}

	// The surrounding chunks carry P's final element and R's first.
	if out[0].T != (Tuple{ID: tpduP, SN: 6, ST: true}) || out[0].Len != 1 {
		t.Fatalf("P chunk = %v", &out[0])
	}
	if out[2].T != (Tuple{ID: tpduR, SN: 0, ST: false}) || out[2].Len != 1 {
		t.Fatalf("R chunk = %v", &out[2])
	}
}

// TestFigure1MultiFraming (experiment F1): one data stream carries two
// independent framings simultaneously — PDU type 1 divides it A|B|C
// while PDU type 2 holds it all in W. A single element belongs to both
// PDU B and PDU W, each tracked by its own tuple.
func TestFigure1MultiFraming(t *testing.T) {
	const (
		pduA, pduB, pduC = 1, 2, 3
		pduW             = 100
	)
	var elems []Element
	bounds := []struct {
		id  uint32
		len int
	}{{pduA, 4}, {pduB, 5}, {pduC, 3}}
	csn, xsn := uint64(0), uint64(0)
	for _, seg := range bounds {
		for i := 0; i < seg.len; i++ {
			elems = append(elems, Element{
				Type: TypeData,
				Data: []byte{byte(csn)},
				C:    Tuple{ID: 9, SN: csn},
				T:    Tuple{ID: seg.id, SN: uint64(i), ST: i == seg.len-1},
				X:    Tuple{ID: pduW, SN: xsn},
			})
			csn++
			xsn++
		}
	}
	elems[len(elems)-1].X.ST = true // W ends with the stream

	out, err := Form(1, elems)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("want 3 chunks (one per type-1 PDU), got %d", len(out))
	}
	// Type-1 framing: A, B, C each end with T.ST.
	for i, want := range []uint32{pduA, pduB, pduC} {
		if out[i].T.ID != want || !out[i].T.ST {
			t.Errorf("chunk %d: T = %v", i, out[i].T)
		}
	}
	// Type-2 framing: X.SN runs continuously across all three chunks
	// and only the last chunk ends W.
	if out[0].X.SN != 0 || out[1].X.SN != 4 || out[2].X.SN != 9 {
		t.Fatalf("X.SNs = %d,%d,%d", out[0].X.SN, out[1].X.SN, out[2].X.SN)
	}
	if out[0].X.ST || out[1].X.ST || !out[2].X.ST {
		t.Fatal("only the final chunk may end PDU W")
	}
}

func TestFormRejectsBadSize(t *testing.T) {
	if _, err := Form(0, nil); err != ErrBadSize {
		t.Fatalf("size 0: %v", err)
	}
	elems := []Element{{Type: TypeData, Data: []byte{1, 2}}}
	if _, err := Form(1, elems); err != ErrElementSize {
		t.Fatalf("oversize element: %v", err)
	}
	elems = []Element{
		{Type: TypeData, Data: []byte{1}},
		{Type: TypeData, Data: []byte{1, 2}, C: Tuple{SN: 1}, T: Tuple{SN: 1}, X: Tuple{SN: 1}},
	}
	if _, err := Form(1, elems); err != ErrElementSize {
		t.Fatalf("oversize second element: %v", err)
	}
}

func TestFormEmpty(t *testing.T) {
	out, err := Form(4, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("Form(nil) = %v, %v", out, err)
	}
}

func TestFormBreaksOnSNGap(t *testing.T) {
	elems := []Element{
		{Type: TypeData, Data: []byte{0}, C: Tuple{SN: 0}, T: Tuple{SN: 0}, X: Tuple{SN: 0}},
		{Type: TypeData, Data: []byte{1}, C: Tuple{SN: 2}, T: Tuple{SN: 1}, X: Tuple{SN: 1}},
	}
	out, err := Form(1, elems)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatal("a C.SN gap must break the chunk")
	}
}

// TestFormElementsInverse: Elements is the left inverse of Form for a
// stream that is one chunk's worth, and Form(Elements(c)) == c.
func TestFormElementsInverse(t *testing.T) {
	f := func(payload []byte, csn, tsn, xsn uint64, tst bool) bool {
		c, ok := quickChunk(TypeData, 1, payload, 1, 2, 3, csn, tsn, xsn, false, tst, false)
		if !ok {
			return true
		}
		back, err := Form(1, c.Elements())
		return err == nil && len(back) == 1 && back[0].Equal(&c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElementsLabels(t *testing.T) {
	c := sampleChunk() // LEN=4, T.ST true
	es := c.Elements()
	if len(es) != 4 {
		t.Fatalf("%d elements", len(es))
	}
	for i, e := range es {
		if e.C.SN != c.C.SN+uint64(i) || e.T.SN != c.T.SN+uint64(i) || e.X.SN != c.X.SN+uint64(i) {
			t.Fatalf("element %d SNs = %v %v %v", i, e.C, e.T, e.X)
		}
		isLast := i == len(es)-1
		if e.T.ST != isLast {
			t.Fatalf("element %d T.ST = %v", i, e.T.ST)
		}
	}
}
