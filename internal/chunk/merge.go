package chunk

import "sort"

// CanMerge implements the eligibility test of the paper's reassembly
// algorithm (Appendix D): a and b reassemble into one chunk iff they
// share TYPE, SIZE and all three IDs, and b's SNs each equal a's SNs
// plus a's LEN — i.e. b continues a immediately at every level of
// framing. A chunk whose ST bit is set at some level ends that PDU, so
// a continuation with the same ID would be a different PDU instance;
// such pairs are rejected even though the appendix's arithmetic alone
// would accept them (the paper assumes IDs are not reused back-to-back;
// we enforce it).
func CanMerge(a, b *Chunk) bool {
	if a.IsTerminator() || b.IsTerminator() {
		return false
	}
	if a.Type.Control() {
		return false // control is indivisible, never fragmented
	}
	n := uint64(a.Len)
	return a.Type == b.Type &&
		a.Size == b.Size &&
		a.C.ID == b.C.ID && a.T.ID == b.T.ID && a.X.ID == b.X.ID &&
		a.C.SN+n == b.C.SN && a.T.SN+n == b.T.SN && a.X.SN+n == b.X.SN &&
		!a.C.ST && !a.T.ST && !a.X.ST
}

// Merge implements Appendix D: it reassembles adjacent chunks a then b
// into a single chunk that takes TYPE, SIZE, IDs and SNs from a, LEN
// = a.LEN + b.LEN, and ST bits from b. The payload is freshly
// allocated (reassembly is a copy by nature — the very cost immediate
// processing avoids; see the P2 experiment).
func Merge(a, b *Chunk) (Chunk, error) {
	if !CanMerge(a, b) {
		return Chunk{}, ErrNotAdjacent
	}
	out := Chunk{
		Type: a.Type,
		Size: a.Size,
		Len:  a.Len + b.Len,
		C:    Tuple{ID: a.C.ID, SN: a.C.SN, ST: b.C.ST},
		T:    Tuple{ID: a.T.ID, SN: a.T.SN, ST: b.T.ST},
		X:    Tuple{ID: a.X.ID, SN: a.X.SN, ST: b.X.ST},
	}
	out.Payload = make([]byte, 0, len(a.Payload)+len(b.Payload))
	out.Payload = append(out.Payload, a.Payload...)
	out.Payload = append(out.Payload, b.Payload...)
	return out, nil
}

// MergeAll repeatedly applies Merge "as long as eligible chunks exist"
// (Appendix D), coalescing every adjacent pair in the input. Chunks
// may be given in any order; the result is sorted by (C.ID, C.SN).
// This is the single-step reassembly of Section 3.1: no matter how
// many fragmentation stages occurred in the network, one pass suffices.
func MergeAll(in []Chunk) []Chunk {
	if len(in) <= 1 {
		out := make([]Chunk, len(in))
		copy(out, in)
		return out
	}
	work := make([]Chunk, len(in))
	copy(work, in)
	sortChunks(work)
	out := work[:0]
	cur := work[0]
	for _, next := range work[1:] {
		if CanMerge(&cur, &next) {
			m, err := Merge(&cur, &next)
			if err == nil {
				cur = m
				continue
			}
		}
		out = append(out, cur)
		cur = next
	}
	return append(out, cur)
}

// sortChunks orders by (C.ID, C.SN, T.ID, T.SN) — sufficient for
// MergeAll to bring every mergeable pair adjacent, since merge
// eligibility requires consecutive C.SNs under one C.ID.
func sortChunks(cs []Chunk) {
	// Insertion sort for small, nearly-sorted per-PDU sets; fall back
	// to the library sort for large fragment populations.
	if len(cs) > 32 {
		sort.Slice(cs, func(i, j int) bool { return chunkLess(&cs[i], &cs[j]) })
		return
	}
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && chunkLess(&cs[j], &cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func chunkLess(a, b *Chunk) bool {
	switch {
	case a.C.ID != b.C.ID:
		return a.C.ID < b.C.ID
	case a.C.SN != b.C.SN:
		return a.C.SN < b.C.SN
	case a.T.ID != b.T.ID:
		return a.T.ID < b.T.ID
	default:
		return a.T.SN < b.T.SN
	}
}
