// Package chunk implements the paper's data labelling format: chunks,
// the completely self-describing pieces of PDUs of Section 2.
//
// A chunk is a group of data elements that share a TYPE and a set of
// PDU identifiers, together with one header labelling them. The header
// carries the TYPE and the three framing tuples of the paper's example
// system — connection (C.ID, C.SN, C.ST), transport (T.ID, T.SN, T.ST)
// and external/ALF (X.ID, X.SN, X.ST) — plus SIZE (bytes per atomic
// data element) and LEN (number of elements). The SN fields are those
// of the FIRST element of the chunk; the ST bits are those of the LAST
// element (only the last element of a chunk can possibly end a PDU,
// because all elements share the chunk's IDs).
//
// Chunks preserve all their properties under fragmentation: Split
// (Appendix C) and Merge (Appendix D) are exact transcriptions of the
// paper's algorithms. Packets are envelopes for integral numbers of
// chunks (package packet).
package chunk

import (
	"errors"
	"fmt"
)

// Type labels how a chunk's payload is processed (Section 2: "explicit
// data typing within a PDU"). The basic PDU contains pieces of type
// data and control; a system may use multiple control types.
type Type uint8

const (
	// TypeInvalid is the zero Type; no valid chunk carries it.
	TypeInvalid Type = 0
	// TypeData is TPDU payload data ("D" in Figure 2).
	TypeData Type = 1
	// TypeED is the TPDU error detection control chunk ("ED" in
	// Figure 3); its payload is a wsc.Parity wire encoding.
	TypeED Type = 2
	// TypeSignal carries connection signaling (establishment and
	// teardown; Section 2 notes connection start is signaled rather
	// than using SN zero, and Appendix A moves C.ST into signaling).
	TypeSignal Type = 3
	// TypeAck is an acknowledgment control chunk (Appendix A: data,
	// signaling and acks can be combined in any packet, giving
	// piggybacking for free).
	TypeAck Type = 4
	// TypeNack is a selective retransmission request.
	TypeNack Type = 5
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "D"
	case TypeED:
		return "ED"
	case TypeSignal:
		return "SIG"
	case TypeAck:
		return "ACK"
	case TypeNack:
		return "NACK"
	case TypeInvalid:
		return "INVALID"
	}
	return fmt.Sprintf("TYPE(%d)", uint8(t))
}

// Valid reports whether t is a defined chunk type.
func (t Type) Valid() bool { return t >= TypeData && t <= TypeNack }

// Control reports whether t is a control (non-data) type. Control
// information is indivisible (Section 2), so control chunks are never
// split.
func (t Type) Control() bool { return t.Valid() && t != TypeData }

// Tuple is one level of framing information: the (ID, SN, ST) triple
// of Section 2. ID names the PDU, SN is the element sequence number of
// the chunk's first element within that PDU, and ST ("STop") is set on
// the element that ends the PDU.
type Tuple struct {
	ID uint32
	SN uint64
	ST bool
}

// Advance returns the tuple shifted forward by n elements with ST
// cleared — the identity of a non-final fragment (Appendix C).
func (tp Tuple) Advance(n uint64) Tuple {
	return Tuple{ID: tp.ID, SN: tp.SN + n, ST: false}
}

func (tp Tuple) String() string {
	st := 0
	if tp.ST {
		st = 1
	}
	return fmt.Sprintf("(%d,%d,%d)", tp.ID, tp.SN, st)
}

// MaxPayload bounds a single chunk's payload; Validate rejects larger
// chunks so LEN*SIZE arithmetic cannot overflow and a corrupted header
// cannot demand absurd allocations.
const MaxPayload = 1 << 24

// A Chunk is one self-describing data unit. The zero value is invalid;
// build chunks with composite literals, Form, or DecodeFromBytes.
type Chunk struct {
	Type Type
	Size uint16 // bytes per atomic data element (Section 2: e.g. a DES block)
	Len  uint32 // number of elements; 0 marks the in-packet terminator
	C    Tuple  // connection framing
	T    Tuple  // transport PDU framing
	X    Tuple  // external PDU framing (Application Layer Frame)

	// Payload holds Len*Size bytes. Decoded chunks alias the packet
	// buffer (gopacket NoCopy-style); use Clone before retaining.
	Payload []byte
}

// Errors returned by Validate and the fragmentation algorithms.
var (
	ErrBadType     = errors.New("chunk: invalid TYPE")
	ErrBadSize     = errors.New("chunk: SIZE must be positive")
	ErrPayloadLen  = errors.New("chunk: payload length != LEN*SIZE")
	ErrTooLarge    = errors.New("chunk: payload exceeds MaxPayload")
	ErrSplitRange  = errors.New("chunk: split point must satisfy 0 < n < LEN")
	ErrControlOp   = errors.New("chunk: control chunks are indivisible")
	ErrNotAdjacent = errors.New("chunk: chunks are not merge-eligible")
)

// Terminator returns the LEN=0 chunk placed after the last valid chunk
// of an under-full packet (Section 2: "A chunk with LEN=0 is placed
// after the last valid chunk in the packet").
func Terminator() Chunk { return Chunk{Type: TypeData, Size: 1, Len: 0} }

// IsTerminator reports whether c is an end-of-packet marker.
func (c *Chunk) IsTerminator() bool { return c.Len == 0 }

// PayloadLen returns LEN*SIZE, the byte length the payload must have.
func (c *Chunk) PayloadLen() int { return int(c.Len) * int(c.Size) }

// Elems returns the element count as an int.
func (c *Chunk) Elems() int { return int(c.Len) }

// Element returns the i-th element's bytes (aliasing Payload).
func (c *Chunk) Element(i int) []byte {
	lo := i * int(c.Size)
	return c.Payload[lo : lo+int(c.Size)]
}

// Validate checks structural well-formedness. It does not (cannot)
// check end-to-end integrity; that is package errdet's job.
func (c *Chunk) Validate() error {
	if !c.Type.Valid() {
		return ErrBadType
	}
	if c.Size == 0 {
		return ErrBadSize
	}
	if c.PayloadLen() > MaxPayload {
		return ErrTooLarge
	}
	if len(c.Payload) != c.PayloadLen() {
		return ErrPayloadLen
	}
	return nil
}

// Clone returns a deep copy whose payload does not alias c's.
func (c *Chunk) Clone() Chunk {
	out := *c
	if c.Payload != nil {
		out.Payload = append([]byte(nil), c.Payload...)
	}
	return out
}

// Equal reports whether two chunks are identical in header and payload.
func (c *Chunk) Equal(d *Chunk) bool {
	if c.Type != d.Type || c.Size != d.Size || c.Len != d.Len ||
		c.C != d.C || c.T != d.T || c.X != d.X {
		return false
	}
	if len(c.Payload) != len(d.Payload) {
		return false
	}
	for i := range c.Payload {
		if c.Payload[i] != d.Payload[i] {
			return false
		}
	}
	return true
}

// String renders the header in the layout of Figure 2's formed chunk.
func (c *Chunk) String() string {
	if c.IsTerminator() {
		return "{TERM}"
	}
	return fmt.Sprintf("{%s SIZE=%d LEN=%d C=%s T=%s X=%s}",
		c.Type, c.Size, c.Len, c.C, c.T, c.X)
}
