package chunk

import (
	"strings"
	"testing"
)

func sampleChunk() Chunk {
	return Chunk{
		Type:    TypeData,
		Size:    2,
		Len:     4,
		C:       Tuple{ID: 1, SN: 100, ST: false},
		T:       Tuple{ID: 2, SN: 0, ST: true},
		X:       Tuple{ID: 3, SN: 50, ST: false},
		Payload: []byte{0, 1, 2, 3, 4, 5, 6, 7},
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeData: "D", TypeED: "ED", TypeSignal: "SIG",
		TypeAck: "ACK", TypeNack: "NACK", TypeInvalid: "INVALID", Type(99): "TYPE(99)",
	}
	for typ, want := range cases {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestTypeValidControl(t *testing.T) {
	if TypeInvalid.Valid() || Type(200).Valid() {
		t.Fatal("invalid types must not be Valid")
	}
	if !TypeData.Valid() || TypeData.Control() {
		t.Fatal("TypeData is valid non-control")
	}
	for _, typ := range []Type{TypeED, TypeSignal, TypeAck, TypeNack} {
		if !typ.Control() {
			t.Errorf("%v must be control", typ)
		}
	}
}

func TestValidate(t *testing.T) {
	c := sampleChunk()
	if err := c.Validate(); err != nil {
		t.Fatalf("sample must validate: %v", err)
	}
	bad := c
	bad.Type = TypeInvalid
	if bad.Validate() != ErrBadType {
		t.Error("want ErrBadType")
	}
	bad = c
	bad.Size = 0
	if bad.Validate() != ErrBadSize {
		t.Error("want ErrBadSize")
	}
	bad = c
	bad.Payload = bad.Payload[:6]
	if bad.Validate() != ErrPayloadLen {
		t.Error("want ErrPayloadLen")
	}
	bad = c
	bad.Size = 65535
	bad.Len = 1 << 20
	if bad.Validate() != ErrTooLarge {
		t.Error("want ErrTooLarge")
	}
}

func TestTerminator(t *testing.T) {
	term := Terminator()
	if !term.IsTerminator() {
		t.Fatal("Terminator must be a terminator")
	}
	c := sampleChunk()
	if c.IsTerminator() {
		t.Fatal("data chunk is not a terminator")
	}
}

func TestElementAccess(t *testing.T) {
	c := sampleChunk()
	if c.Elems() != 4 || c.PayloadLen() != 8 {
		t.Fatalf("Elems=%d PayloadLen=%d", c.Elems(), c.PayloadLen())
	}
	e := c.Element(2)
	if len(e) != 2 || e[0] != 4 || e[1] != 5 {
		t.Fatalf("Element(2) = %v", e)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := sampleChunk()
	d := c.Clone()
	d.Payload[0] = 0xFF
	if c.Payload[0] == 0xFF {
		t.Fatal("Clone must not alias payload")
	}
	if !c.Equal(&c) {
		t.Fatal("chunk must equal itself")
	}
	if c.Equal(&d) {
		t.Fatal("mutated clone must differ")
	}
}

func TestEqual(t *testing.T) {
	a, b := sampleChunk(), sampleChunk()
	if !a.Equal(&b) {
		t.Fatal("identical chunks must be Equal")
	}
	b.T.SN++
	if a.Equal(&b) {
		t.Fatal("differing header must not be Equal")
	}
	b = sampleChunk()
	b.Payload = b.Payload[:7]
	if a.Equal(&b) {
		t.Fatal("differing payload length must not be Equal")
	}
}

func TestString(t *testing.T) {
	c := sampleChunk()
	s := c.String()
	for _, want := range []string{"D", "SIZE=2", "LEN=4", "(2,0,1)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	term := Terminator()
	if term.String() != "{TERM}" {
		t.Errorf("terminator String() = %q", term.String())
	}
}

func TestTupleAdvance(t *testing.T) {
	tp := Tuple{ID: 9, SN: 5, ST: true}
	adv := tp.Advance(3)
	if adv.ID != 9 || adv.SN != 8 || adv.ST {
		t.Fatalf("Advance = %+v", adv)
	}
}
