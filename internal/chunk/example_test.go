package chunk_test

import (
	"fmt"

	"chunks/internal/chunk"
)

// ExampleChunk_Split shows the Appendix C fragmentation algorithm:
// the first half keeps the SNs and loses the ST bits; the second
// half's SNs advance and it inherits the ST bits.
func ExampleChunk_Split() {
	c := chunk.Chunk{
		Type: chunk.TypeData, Size: 1, Len: 7,
		C:       chunk.Tuple{ID: 0xA, SN: 36},
		T:       chunk.Tuple{ID: 0xF1, SN: 0, ST: true},
		X:       chunk.Tuple{ID: 0xC, SN: 24},
		Payload: []byte{1, 2, 3, 4, 5, 6, 7},
	}
	first, second, _ := c.Split(4)
	fmt.Println(first.String())
	fmt.Println(second.String())
	// Output:
	// {D SIZE=1 LEN=4 C=(10,36,0) T=(241,0,0) X=(12,24,0)}
	// {D SIZE=1 LEN=3 C=(10,40,0) T=(241,4,1) X=(12,28,0)}
}

// ExampleMergeAll shows one-step reassembly (Appendix D) over
// disordered fragments.
func ExampleMergeAll() {
	c := chunk.Chunk{
		Type: chunk.TypeData, Size: 1, Len: 6,
		C: chunk.Tuple{ID: 1, SN: 100}, T: chunk.Tuple{ID: 2, ST: true}, X: chunk.Tuple{ID: 3},
		Payload: []byte("abcdef"),
	}
	a, rest, _ := c.Split(2)
	b, d, _ := rest.Split(2)
	merged := chunk.MergeAll([]chunk.Chunk{d, a, b}) // any order
	fmt.Println(len(merged), string(merged[0].Payload))
	// Output: 1 abcdef
}

// ExampleForm shows chunk formation (Figure 2): contiguous elements
// sharing TYPE and IDs coalesce under one header.
func ExampleForm() {
	var elems []chunk.Element
	for i := 0; i < 3; i++ {
		elems = append(elems, chunk.Element{
			Type: chunk.TypeData, Data: []byte{byte('x' + i)},
			C: chunk.Tuple{ID: 9, SN: uint64(10 + i)},
			T: chunk.Tuple{ID: 5, SN: uint64(i), ST: i == 2},
			X: chunk.Tuple{ID: 7, SN: uint64(i)},
		})
	}
	out, _ := chunk.Form(1, elems)
	fmt.Println(len(out), out[0].String())
	// Output: 1 {D SIZE=1 LEN=3 C=(9,10,0) T=(5,0,1) X=(7,0,0)}
}
