package chunk

import (
	"encoding/binary"
	"errors"
)

// Wire format: the paper's "simple version of chunks ... easy to parse
// because of their fixed-field format" (Appendix A). All integers are
// big-endian. Appendix A's bandwidth-saving transformations are
// implemented as invertible rewrites in package compress; the protocol
// is defined over this simplest form.
//
//	offset  size  field
//	0       1     TYPE
//	1       1     FLAGS (bit0 C.ST, bit1 T.ST, bit2 X.ST)
//	2       2     SIZE
//	4       4     LEN
//	8       4     C.ID
//	12      8     C.SN
//	20      4     T.ID
//	24      8     T.SN
//	32      4     X.ID
//	36      8     X.SN
//	44      -     payload (LEN*SIZE bytes)
//
// A terminator (LEN=0) is encoded as the single byte 0x00: since TYPE
// 0 is invalid, a zero first byte unambiguously marks end-of-packet,
// mirroring the paper's LEN=0 convention while costing one byte.

// HeaderSize is the encoded size of a chunk header.
const HeaderSize = 44

// TerminatorSize is the encoded size of the end-of-packet marker.
const TerminatorSize = 1

const (
	flagCST = 1 << 0
	flagTST = 1 << 1
	flagXST = 1 << 2
)

// Field offsets of the fixed header, per the table above. Each field
// runs to the next offset; the last ends at HeaderSize.
const (
	offType  = 0
	offFlags = 1
	offSize  = 2
	offLen   = 4
	offCID   = 8
	offCSN   = 12
	offTID   = 20
	offTSN   = 24
	offXID   = 32
	offXSN   = 36
)

// Wire decoding errors.
var (
	ErrShortBuffer = errors.New("chunk: buffer too short")
	ErrBadFlags    = errors.New("chunk: undefined flag bits set")
)

// EncodedLen returns the number of bytes AppendTo will write.
func (c *Chunk) EncodedLen() int {
	if c.IsTerminator() {
		return TerminatorSize
	}
	return HeaderSize + len(c.Payload)
}

// AppendTo appends the wire encoding of c to b and returns the
// extended slice. It never fails; call Validate first if c may be
// malformed.
func (c *Chunk) AppendTo(b []byte) []byte {
	if c.IsTerminator() {
		return append(b, 0)
	}
	var flags byte
	if c.C.ST {
		flags |= flagCST
	}
	if c.T.ST {
		flags |= flagTST
	}
	if c.X.ST {
		flags |= flagXST
	}
	b = append(b, byte(c.Type), flags)
	b = binary.BigEndian.AppendUint16(b, c.Size)
	b = binary.BigEndian.AppendUint32(b, c.Len)
	b = binary.BigEndian.AppendUint32(b, c.C.ID)
	b = binary.BigEndian.AppendUint64(b, c.C.SN)
	b = binary.BigEndian.AppendUint32(b, c.T.ID)
	b = binary.BigEndian.AppendUint64(b, c.T.SN)
	b = binary.BigEndian.AppendUint32(b, c.X.ID)
	b = binary.BigEndian.AppendUint64(b, c.X.SN)
	return append(b, c.Payload...)
}

// DecodeFromBytes parses one chunk from the front of b into c, in the
// style of gopacket's DecodingLayer: no allocation, with c.Payload
// aliasing b. It returns the number of bytes consumed.
func (c *Chunk) DecodeFromBytes(b []byte) (int, error) {
	if len(b) < 1 {
		return 0, ErrShortBuffer
	}
	if b[offType] == 0 { // terminator: TYPE 0 is otherwise invalid
		*c = Terminator()
		return TerminatorSize, nil
	}
	if len(b) < HeaderSize {
		return 0, ErrShortBuffer
	}
	typ := Type(b[offType])
	if !typ.Valid() {
		return 0, ErrBadType
	}
	flags := b[offFlags]
	if flags&^(flagCST|flagTST|flagXST) != 0 {
		return 0, ErrBadFlags
	}
	c.Type = typ
	c.Size = binary.BigEndian.Uint16(b[offSize:offLen])
	c.Len = binary.BigEndian.Uint32(b[offLen:offCID])
	c.C = Tuple{
		ID: binary.BigEndian.Uint32(b[offCID:offCSN]),
		SN: binary.BigEndian.Uint64(b[offCSN:offTID]),
		ST: flags&flagCST != 0,
	}
	c.T = Tuple{
		ID: binary.BigEndian.Uint32(b[offTID:offTSN]),
		SN: binary.BigEndian.Uint64(b[offTSN:offXID]),
		ST: flags&flagTST != 0,
	}
	c.X = Tuple{
		ID: binary.BigEndian.Uint32(b[offXID:offXSN]),
		SN: binary.BigEndian.Uint64(b[offXSN:HeaderSize]),
		ST: flags&flagXST != 0,
	}
	if c.Size == 0 {
		return 0, ErrBadSize
	}
	n := c.PayloadLen()
	if n > MaxPayload {
		return 0, ErrTooLarge
	}
	if len(b) < HeaderSize+n {
		return 0, ErrShortBuffer
	}
	c.Payload = b[HeaderSize : HeaderSize+n : HeaderSize+n]
	return HeaderSize + n, nil
}

// Decode parses one chunk from the front of b, returning it by value.
func Decode(b []byte) (Chunk, int, error) {
	var c Chunk
	n, err := c.DecodeFromBytes(b)
	return c, n, err
}
