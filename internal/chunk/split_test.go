package chunk

import (
	"testing"
	"testing/quick"
)

func TestSplitAppendixC(t *testing.T) {
	c := sampleChunk() // LEN=4, SIZE=2, T.ST set
	a, b, err := c.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	// chunk_a: same IDs and SNs, ST all zero, LEN = new_len.
	if a.Len != 1 || a.C.SN != 100 || a.T.SN != 0 || a.X.SN != 50 {
		t.Fatalf("first half: %v", &a)
	}
	if a.C.ST || a.T.ST || a.X.ST {
		t.Fatal("first half must clear every ST bit")
	}
	// chunk_b: SNs advanced by new_len, ST bits inherited.
	if b.Len != 3 || b.C.SN != 101 || b.T.SN != 1 || b.X.SN != 51 {
		t.Fatalf("second half: %v", &b)
	}
	if b.C.ST || !b.T.ST || b.X.ST {
		t.Fatalf("second half ST bits: %v", &b)
	}
	// Payload divided at the element boundary.
	if string(a.Payload) != string(c.Payload[:2]) || string(b.Payload) != string(c.Payload[2:]) {
		t.Fatal("payload split at wrong offset")
	}
	if a.Type != c.Type || b.Type != c.Type || a.Size != c.Size || b.Size != c.Size {
		t.Fatal("TYPE and SIZE must be preserved")
	}
}

func TestSplitRangeErrors(t *testing.T) {
	c := sampleChunk()
	if _, _, err := c.Split(0); err != ErrSplitRange {
		t.Errorf("split at 0: %v", err)
	}
	if _, _, err := c.Split(c.Len); err != ErrSplitRange {
		t.Errorf("split at LEN: %v", err)
	}
	ed := Chunk{Type: TypeED, Size: 8, Len: 1, Payload: make([]byte, 8)}
	if _, _, err := ed.Split(1); err != ErrControlOp {
		t.Errorf("control split: %v", err)
	}
}

// TestSplitMergeInverse: Merge(Split(c)) == c for every split point —
// "chunks preserve all of their properties under fragmentation".
func TestSplitMergeInverse(t *testing.T) {
	c := sampleChunk()
	for n := uint32(1); n < c.Len; n++ {
		a, b, err := c.Split(n)
		if err != nil {
			t.Fatal(err)
		}
		if !CanMerge(&a, &b) {
			t.Fatalf("halves at %d must be merge-eligible", n)
		}
		m, err := Merge(&a, &b)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(&c) {
			t.Fatalf("split at %d then merge != original:\n got %v\nwant %v", n, &m, &c)
		}
	}
}

func TestSplitMergeInverseProperty(t *testing.T) {
	f := func(size uint16, payload []byte, csn, tsn, xsn uint64, cst, tst, xst bool, at uint32) bool {
		c, ok := quickChunk(TypeData, size%16, payload, 1, 2, 3, csn, tsn, xsn, cst, tst, xst)
		if !ok || c.Len < 2 {
			return true
		}
		n := 1 + at%(c.Len-1)
		a, b, err := c.Split(n)
		if err != nil {
			return false
		}
		m, err := Merge(&a, &b)
		return err == nil && m.Equal(&c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRepeatedSplit: "the algorithm below can be repeated until each
// chunk carries only a single unit of data" — fully atomise and then
// reassemble in one MergeAll pass.
func TestRepeatedSplit(t *testing.T) {
	c := sampleChunk()
	pieces := []Chunk{c}
	for {
		var next []Chunk
		split := false
		for _, p := range pieces {
			if p.Len > 1 {
				a, b, err := p.Split(1)
				if err != nil {
					t.Fatal(err)
				}
				next = append(next, a, b)
				split = true
			} else {
				next = append(next, p)
			}
		}
		pieces = next
		if !split {
			break
		}
	}
	if len(pieces) != int(c.Len) {
		t.Fatalf("atomised into %d pieces, want %d", len(pieces), c.Len)
	}
	merged := MergeAll(pieces)
	if len(merged) != 1 || !merged[0].Equal(&c) {
		t.Fatalf("MergeAll of atoms != original: %v", merged)
	}
}

func TestSplitToFit(t *testing.T) {
	c := sampleChunk()
	c.Size = 1
	c.Len = 100
	c.Payload = make([]byte, 100)
	for i := range c.Payload {
		c.Payload[i] = byte(i)
	}
	budget := HeaderSize + 32
	out, err := c.SplitToFit(budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 { // ceil(100/32)
		t.Fatalf("got %d chunks", len(out))
	}
	total := 0
	for i, p := range out {
		if p.EncodedLen() > budget {
			t.Fatalf("chunk %d oversize: %d > %d", i, p.EncodedLen(), budget)
		}
		total += p.Elems()
	}
	if total != 100 {
		t.Fatalf("elements lost: %d", total)
	}
	merged := MergeAll(out)
	if len(merged) != 1 || !merged[0].Equal(&c) {
		t.Fatal("SplitToFit pieces must reassemble to the original")
	}
}

func TestSplitToFitEdge(t *testing.T) {
	c := sampleChunk()
	// Fits outright: single chunk back.
	out, err := c.SplitToFit(c.EncodedLen())
	if err != nil || len(out) != 1 || !out[0].Equal(&c) {
		t.Fatalf("fit case: %v %v", out, err)
	}
	// Budget below one element + header: impossible.
	if _, err := c.SplitToFit(HeaderSize + 1); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	// Control chunks over budget cannot be split.
	ed := Chunk{Type: TypeED, Size: 8, Len: 1, Payload: make([]byte, 8)}
	if _, err := ed.SplitToFit(HeaderSize + 4); err != ErrControlOp {
		t.Fatalf("want ErrControlOp, got %v", err)
	}
	term := Terminator()
	if _, err := term.SplitToFit(100); err != ErrSplitRange {
		t.Fatalf("terminator: want ErrSplitRange, got %v", err)
	}
}

func TestSplitPayloadAliasing(t *testing.T) {
	c := sampleChunk()
	a, b, _ := c.Split(2)
	c.Payload[0] = 0xAA
	c.Payload[4] = 0xBB
	if a.Payload[0] != 0xAA || b.Payload[0] != 0xBB {
		t.Fatal("Split halves should alias the original payload")
	}
	// But appending to the first half must not clobber the second.
	a.Payload = append(a.Payload, 0xFF)
	if b.Payload[0] == 0xFF {
		t.Fatal("first half capacity must be clipped (three-index slice)")
	}
}
