package chunk

// Split implements the paper's fragmentation algorithm (Appendix C):
// it divides c into two chunks, the first carrying n elements and the
// second the remaining LEN-n. Per the appendix:
//
//   - both halves keep TYPE, SIZE and all three ID fields;
//   - the first half keeps the original SNs and has ALL ST bits
//     cleared (only the chunk containing the last data of the original
//     can carry its ST bits);
//   - the second half's SNs are advanced by n and it inherits the
//     original ST bits.
//
// The SIZE field "assures that the atomic units of protocol data
// processing are not split" (Section 2): the split point is an element
// count, so a 64-bit DES block, for instance, can never be torn.
//
// Control chunks are indivisible (Section 2) and return ErrControlOp.
// The halves' payloads alias c's payload; Clone if retaining.
func (c *Chunk) Split(n uint32) (first, second Chunk, err error) {
	if c.Type.Control() {
		return Chunk{}, Chunk{}, ErrControlOp
	}
	if n == 0 || n >= c.Len {
		return Chunk{}, Chunk{}, ErrSplitRange
	}
	cut := int(n) * int(c.Size)

	first = Chunk{
		Type:    c.Type,
		Size:    c.Size,
		Len:     n,
		C:       Tuple{ID: c.C.ID, SN: c.C.SN},
		T:       Tuple{ID: c.T.ID, SN: c.T.SN},
		X:       Tuple{ID: c.X.ID, SN: c.X.SN},
		Payload: c.Payload[:cut:cut],
	}
	second = Chunk{
		Type:    c.Type,
		Size:    c.Size,
		Len:     c.Len - n,
		C:       c.C.Advance(uint64(n)),
		T:       c.T.Advance(uint64(n)),
		X:       c.X.Advance(uint64(n)),
		Payload: c.Payload[cut:],
	}
	// Appendix C: only the final fragment keeps the ST bits.
	second.C.ST = c.C.ST
	second.T.ST = c.T.ST
	second.X.ST = c.X.ST
	return first, second, nil
}

// SplitToFit fragments c into chunks whose encoded size does not
// exceed budget bytes (header included), the operation a router
// performs when moving chunks from large envelopes to small ones
// (Figure 3, Section 3.1). The appendix notes the algorithm "can be
// repeated until each chunk carries only a single unit of data"; if
// even a single-element chunk exceeds the budget, SplitToFit reports
// ErrTooLarge since elements are atomic.
func (c *Chunk) SplitToFit(budget int) ([]Chunk, error) {
	if c.IsTerminator() {
		return nil, ErrSplitRange
	}
	if c.EncodedLen() <= budget {
		return []Chunk{*c}, nil //lint:allow hotalloc single-piece path used by Pack; the hot Encode pre-checks the budget and skips SplitToFit
	}
	if c.Type.Control() {
		return nil, ErrControlOp
	}
	perChunk := (budget - HeaderSize) / int(c.Size)
	if perChunk < 1 {
		return nil, ErrTooLarge
	}
	out := make([]Chunk, 0, (c.Elems()+perChunk-1)/perChunk) //lint:allow hotalloc fragmentation path: runs only when a chunk exceeds the MTU budget
	rest := *c
	for rest.Elems() > perChunk {
		head, tail, err := rest.Split(uint32(perChunk))
		if err != nil {
			return nil, err
		}
		out = append(out, head)
		rest = tail
	}
	return append(out, rest), nil
}
