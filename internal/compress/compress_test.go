package compress

import (
	"math/rand"
	"testing"

	"chunks/internal/chunk"
)

// TestFigure7ImplicitTID (experiment F7) reproduces Figure 7 exactly:
// per-element C.SN 35..42, T.SN 5,0,1,2,3,4,5,0 (T.ST on the first
// and seventh elements) yield derived T.IDs 30, 36×6, 42.
func TestFigure7ImplicitTID(t *testing.T) {
	csn := []uint64{35, 36, 37, 38, 39, 40, 41, 42}
	tsn := []uint64{5, 0, 1, 2, 3, 4, 5, 0}
	want := []uint32{30, 36, 36, 36, 36, 36, 36, 42}
	for i := range csn {
		if got := DeriveImplicitTID(csn[i], tsn[i]); got != want[i] {
			t.Errorf("element %d: implicit T.ID = %d, want %d", i, got, want[i])
		}
	}
}

func freshPair() (*Context, *Context) {
	sizes := map[chunk.Type]uint16{chunk.TypeData: 4, chunk.TypeED: 8}
	return NewContext(0xA, sizes), NewContext(0xA, sizes)
}

// stream builds an ordered chunk stream: several TPDUs whose T.IDs
// follow the implicit rule, over one connection and a sequence of
// external PDUs.
func stream(seed int64, tpdus, elemsPer int) []chunk.Chunk {
	rng := rand.New(rand.NewSource(seed))
	var out []chunk.Chunk
	csn, xsn := uint64(100), uint64(0)
	xid := uint32(0xE0)
	for i := 0; i < tpdus; i++ {
		payload := make([]byte, elemsPer*4)
		rng.Read(payload)
		xst := rng.Intn(2) == 0
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: 4, Len: uint32(elemsPer),
			C:       chunk.Tuple{ID: 0xA, SN: csn},
			T:       chunk.Tuple{ID: DeriveImplicitTID(csn, 0), SN: 0, ST: true},
			X:       chunk.Tuple{ID: xid, SN: xsn, ST: xst},
			Payload: payload,
		}
		out = append(out, c)
		csn += uint64(elemsPer)
		if xst {
			xid++
			xsn = 0
		} else {
			xsn += uint64(elemsPer)
		}
	}
	return out
}

func TestRoundTripOrderedStream(t *testing.T) {
	enc, dec := freshPair()
	for i, c := range stream(1, 20, 16) {
		b := enc.Append(nil, &c)
		got, n, err := dec.Decode(b)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("chunk %d: consumed %d of %d", i, n, len(b))
		}
		if !got.Equal(&c) {
			t.Fatalf("chunk %d mismatch:\n got %v\nwant %v", i, &got, &c)
		}
	}
}

// TestSuppressionKicksIn: after the first chunk of a TPDU run, SNs,
// IDs and SIZE are all elided, shrinking the per-chunk header to a
// handful of bytes versus the 44-byte fixed header.
func TestSuppressionKicksIn(t *testing.T) {
	enc, _ := freshPair()
	chs := stream(2, 10, 16)
	var sizes []int
	for i := range chs {
		b := enc.Append(nil, &chs[i])
		sizes = append(sizes, len(b)-len(chs[i].Payload))
	}
	if sizes[0] <= 4 {
		t.Fatalf("first chunk must carry a sync header, got %d bytes", sizes[0])
	}
	for i := 1; i < len(sizes); i++ {
		// Steady-state: TYPE + flags + LEN (+ occasionally X.ID).
		if sizes[i] > 10 {
			t.Fatalf("chunk %d header is %d bytes; suppression failed", i, sizes[i])
		}
	}
}

func TestRoundTripFragmentedStream(t *testing.T) {
	// Compression must survive arbitrary in-order fragmentation: split
	// chunks still code and decode exactly.
	enc, dec := freshPair()
	rng := rand.New(rand.NewSource(5))
	for _, c := range stream(3, 10, 32) {
		pieces := []chunk.Chunk{c}
		if c.Len > 1 {
			a, b, err := c.Split(1 + uint32(rng.Intn(int(c.Len-1))))
			if err != nil {
				t.Fatal(err)
			}
			pieces = []chunk.Chunk{a, b}
		}
		for _, p := range pieces {
			b := enc.Append(nil, &p)
			got, _, err := dec.Decode(b)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(&p) {
				t.Fatalf("fragment mismatch:\n got %v\nwant %v", &got, &p)
			}
		}
	}
}

func TestRoundTripControlChunks(t *testing.T) {
	enc, dec := freshPair()
	ed := chunk.Chunk{
		Type: chunk.TypeED, Size: 8, Len: 1,
		C:       chunk.Tuple{ID: 0xA, SN: 100},
		T:       chunk.Tuple{ID: 36},
		Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
	b := enc.Append(nil, &ed)
	got, _, err := dec.Decode(b)
	if err != nil || !got.Equal(&ed) {
		t.Fatalf("ED chunk: %v, %v", &got, err)
	}
	// A signaling chunk with an unnegotiated TYPE size must carry
	// SIZE explicitly and still round-trip.
	sig := chunk.Chunk{Type: chunk.TypeSignal, Size: 3, Len: 1,
		C: chunk.Tuple{ID: 0xB}, Payload: []byte{9, 9, 9}}
	b = enc.Append(nil, &sig)
	got, _, err = dec.Decode(b)
	if err != nil || !got.Equal(&sig) {
		t.Fatalf("signal chunk: %v, %v", &got, err)
	}
}

func TestTerminator(t *testing.T) {
	enc, dec := freshPair()
	term := chunk.Terminator()
	b := enc.Append(nil, &term)
	if len(b) != 1 || b[0] != 0 {
		t.Fatalf("terminator encoding = %v", b)
	}
	got, n, err := dec.Decode(b)
	if err != nil || n != 1 || !got.IsTerminator() {
		t.Fatalf("terminator decode: %v %d %v", &got, n, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	_, dec := freshPair()
	if _, _, err := dec.Decode(nil); err != ErrShortBuffer {
		t.Errorf("empty: %v", err)
	}
	if _, _, err := dec.Decode([]byte{99, 0, 1}); err != chunk.ErrBadType {
		t.Errorf("bad type: %v", err)
	}
	if _, _, err := dec.Decode([]byte{byte(chunk.TypeData)}); err != ErrShortBuffer {
		t.Errorf("no flags: %v", err)
	}
	// SIZE elided for a type with no negotiated size.
	ctx := NewContext(1, nil)
	b := []byte{byte(chunk.TypeData), flagSNs, 1, 0, 0, 0}
	if _, _, err := ctx.Decode(b); err == nil {
		t.Error("missing negotiated size must fail")
	}
	// Truncated payload.
	enc, dec2 := freshPair()
	c := stream(1, 1, 4)[0]
	full := enc.Append(nil, &c)
	if _, _, err := dec2.Decode(full[:len(full)-1]); err != ErrShortBuffer {
		t.Errorf("truncated payload: %v", err)
	}
}

// TestRoundTripRandomStream is the invertibility property over
// arbitrary (well-formed, in-order) streams including odd sizes and
// explicit everything.
func TestRoundTripRandomStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	enc, dec := freshPair()
	csn := uint64(0)
	for i := 0; i < 200; i++ {
		size := uint16(1 + rng.Intn(9))
		n := 1 + rng.Intn(20)
		payload := make([]byte, int(size)*n)
		rng.Read(payload)
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: size, Len: uint32(n),
			C:       chunk.Tuple{ID: uint32(rng.Intn(3)) + 9, SN: csn},
			T:       chunk.Tuple{ID: rng.Uint32(), SN: uint64(rng.Intn(50)), ST: rng.Intn(3) == 0},
			X:       chunk.Tuple{ID: rng.Uint32() % 8, SN: uint64(rng.Intn(50)), ST: rng.Intn(3) == 0},
			Payload: payload,
		}
		csn += uint64(n)
		b := enc.Append(nil, &c)
		got, consumed, err := dec.Decode(b)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if consumed != len(b) || !got.Equal(&c) {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
}

// TestSavings quantifies Appendix A's point (experiment P6): on a
// well-behaved bulk stream the compressed header is a small fraction
// of the fixed header.
func TestSavings(t *testing.T) {
	ctx := NewContext(0xA, map[chunk.Type]uint16{chunk.TypeData: 4})
	chs := stream(7, 50, 16)
	fixed, compressed := Savings(*ctx, chs)
	if compressed >= fixed {
		t.Fatalf("compression made things worse: %d >= %d", compressed, fixed)
	}
	payload := 0
	for i := range chs {
		payload += len(chs[i].Payload)
	}
	fixedHdr := fixed - payload
	compHdr := compressed - payload
	if compHdr*4 > fixedHdr {
		t.Fatalf("expected >4x header reduction: fixed %d vs compressed %d", fixedHdr, compHdr)
	}
}

func BenchmarkCompressAppend(b *testing.B) {
	chs := stream(1, 64, 16)
	ctx := NewContext(0xA, map[chunk.Type]uint16{chunk.TypeData: 4})
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &chs[i%len(chs)]
		buf = ctx.Append(buf[:0], c)
	}
}

func BenchmarkCompressDecode(b *testing.B) {
	chs := stream(1, 2, 16)
	encCtx := NewContext(0xA, map[chunk.Type]uint16{chunk.TypeData: 4})
	one := encCtx.Append(nil, &chs[0])
	two := encCtx.Append(nil, &chs[1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewContext(0xA, map[chunk.Type]uint16{chunk.TypeData: 4})
		if _, _, err := ctx.Decode(one); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ctx.Decode(two); err != nil {
			b.Fatal(err)
		}
	}
}
