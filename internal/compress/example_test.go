package compress_test

import (
	"fmt"

	"chunks/internal/chunk"
	"chunks/internal/compress"
)

// Example shows Appendix A header compression: after the first chunk
// establishes context, steady-state headers collapse to a few bytes,
// and decompression recovers the original chunk exactly.
func Example() {
	sizes := map[chunk.Type]uint16{chunk.TypeData: 4}
	enc := compress.NewContext(0xA, sizes)
	dec := compress.NewContext(0xA, sizes)

	for i := 0; i < 3; i++ {
		csn := uint64(100 + i*4)
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: 4, Len: 4,
			C:       chunk.Tuple{ID: 0xA, SN: csn},
			T:       chunk.Tuple{ID: compress.DeriveImplicitTID(csn, uint64(i*4)), SN: uint64(i * 4)},
			X:       chunk.Tuple{ID: 1, SN: csn - 100},
			Payload: make([]byte, 16),
		}
		wire := enc.Append(nil, &c)
		got, _, _ := dec.Decode(wire)
		fmt.Printf("chunk %d: fixed header %dB, compressed %dB, round-trip %v\n",
			i, chunk.HeaderSize, len(wire)-len(c.Payload), got.Equal(&c))
	}
	// Output:
	// chunk 0: fixed header 44B, compressed 7B, round-trip true
	// chunk 1: fixed header 44B, compressed 3B, round-trip true
	// chunk 2: fixed header 44B, compressed 3B, round-trip true
}
