package compress

import (
	"testing"
	"testing/quick"

	"chunks/internal/chunk"
)

// TestDecodeArbitraryBytes: the stateful decompressor must never
// panic and, on success, must produce a structurally valid chunk.
func TestDecodeArbitraryBytes(t *testing.T) {
	f := func(b []byte, cid uint32) bool {
		ctx := NewContext(cid, map[chunk.Type]uint16{chunk.TypeData: 4, chunk.TypeED: 8})
		c, n, err := ctx.Decode(b)
		if err != nil {
			return true
		}
		if n <= 0 || n > len(b) {
			return false
		}
		return c.IsTerminator() || c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeArbitraryStream: feeding random bytes repeatedly through
// one context (so counter state evolves arbitrarily) stays safe.
func TestDecodeArbitraryStream(t *testing.T) {
	f := func(chunks [][]byte) bool {
		ctx := NewContext(7, map[chunk.Type]uint16{chunk.TypeData: 2})
		for _, b := range chunks {
			c, _, err := ctx.Decode(b)
			if err != nil {
				continue
			}
			if !c.IsTerminator() && c.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func FuzzCompressRoundTrip(f *testing.F) {
	f.Add(uint64(100), uint64(0), uint64(5), []byte{1, 2, 3, 4}, true, false)
	f.Fuzz(func(t *testing.T, csn, tsn, xsn uint64, payload []byte, tst, xst bool) {
		if len(payload) == 0 || len(payload) > 4096 {
			return
		}
		enc := NewContext(1, map[chunk.Type]uint16{chunk.TypeData: 1})
		dec := NewContext(1, map[chunk.Type]uint16{chunk.TypeData: 1})
		c := chunk.Chunk{
			Type: chunk.TypeData, Size: 1, Len: uint32(len(payload)),
			C:       chunk.Tuple{ID: 1, SN: csn},
			T:       chunk.Tuple{ID: uint32(csn - tsn), SN: tsn, ST: tst},
			X:       chunk.Tuple{ID: 9, SN: xsn, ST: xst},
			Payload: payload,
		}
		b := enc.Append(nil, &c)
		got, n, err := dec.Decode(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(b) || !got.Equal(&c) {
			t.Fatalf("round trip mismatch")
		}
	})
}
