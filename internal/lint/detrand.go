package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detrand enforces the repository's seeding discipline: the global
// math/rand source is banned everywhere (tests included — randomized
// workloads must be seeded), and the wall clock (time.Now/time.Since)
// is banned in the logic paths of deterministic packages. Legitimate
// timing sites — experiment timing columns, socket deadlines, the
// transport's RTT epoch — carry an annotated //lint:allow detrand.
type Detrand struct {
	// WallClockScope reports whether a package's logic paths must be
	// wall-clock free. The default covers every internal/ package.
	WallClockScope func(pkgPath string) bool
}

// NewDetrand returns the check with repository-default scoping.
func NewDetrand() *Detrand {
	return &Detrand{
		WallClockScope: func(pkgPath string) bool {
			return strings.Contains(pkgPath, "/internal/")
		},
	}
}

func (*Detrand) Name() string { return "detrand" }
func (*Detrand) Doc() string {
	return "unseeded math/rand globals anywhere; time.Now/time.Since in deterministic packages"
}

// seededRandFuncs are the math/rand entry points that construct an
// explicitly seeded generator rather than drawing from the global one.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func (c *Detrand) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	for _, p := range m.Packages {
		for _, f := range p.AllFiles() {
			info := p.infoFor(f)
			if info == nil {
				continue
			}
			isTest := !containsFile(p.Files, f)
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "math/rand", "math/rand/v2":
					if obj, ok := info.Uses[sel.Sel].(*types.Func); ok &&
						obj.Type().(*types.Signature).Recv() == nil &&
						!seededRandFuncs[sel.Sel.Name] {
						report(sel.Pos(), "%s.%s draws from the unseeded global source; use rand.New(rand.NewSource(seed)) (determinism is a test invariant)",
							pn.Imported().Path(), sel.Sel.Name)
					}
				case "time":
					if isTest || c.WallClockScope == nil || !c.WallClockScope(p.Path) {
						return true
					}
					if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
						report(sel.Pos(), "time.%s in deterministic package %s: inject a clock or timeline offset, or annotate //lint:allow detrand <reason>",
							sel.Sel.Name, p.Name)
					}
				}
				return true
			})
		}
	}
}

func containsFile(files []*ast.File, f *ast.File) bool {
	for _, x := range files {
		if x == f {
			return true
		}
	}
	return false
}
