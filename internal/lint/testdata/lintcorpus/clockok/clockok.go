// Package clockok sits outside internal/: the wall-clock ban does not
// apply here (the global-rand ban still would).
package clockok

import "time"

// Stamp may read the wall clock: no finding.
func Stamp() time.Time {
	return time.Now()
}
