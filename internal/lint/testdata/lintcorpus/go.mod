module lintcorpus

go 1.22
