// Package overlapbad seeds the golden cases for the invariants the
// overlap differential harness (internal/overlap) must keep: forged
// schedule payloads drawn from a seeded source, and matrix accounting
// that never leaks map iteration order into emitted rows.
package overlapbad

import (
	"math/rand"
	"sort"
)

// Forge mutates the forged copy with the global source: two runs of
// the "same seeded schedule" would carry different attack bytes and
// the recorded matrix would not reproduce.
func Forge(genuine []byte) []byte {
	d := append([]byte(nil), genuine...)
	for i := range d {
		d[i] ^= byte(1 + rand.Intn(255)) // want "detrand: math/rand\.Intn draws from the unseeded global source"
	}
	return d
}

// Emit reports the per-model finals in map order — matrix row order
// would differ run to run.
func Emit(finals map[string][]byte, emit func(string, []byte)) {
	for name, final := range finals { // want "maprange: iteration order of map finals can leak into behavior"
		emit(name, final)
	}
}

// EmitSorted is the sanctioned shape: ordered names, map for lookup
// only (exempt).
func EmitSorted(finals map[string][]byte, emit func(string, []byte)) {
	names := make([]string, 0, len(finals))
	for name := range finals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		emit(name, finals[name])
	}
}

// CountSmuggled is an order-free reduction (exempt) — the shape
// internal/overlap uses to count distinct finals per schedule.
func CountSmuggled(finals map[string]bool) int {
	n := 0
	for _, smuggled := range finals {
		if smuggled {
			n++
		}
	}
	return n
}

// ForgeSeeded is the harness's actual idiom: every byte differs, every
// draw comes from the caller's seeded source.
func ForgeSeeded(rng *rand.Rand, genuine []byte) []byte {
	d := append([]byte(nil), genuine...)
	for i := range d {
		d[i] ^= byte(1 + rng.Intn(255))
	}
	return d
}
