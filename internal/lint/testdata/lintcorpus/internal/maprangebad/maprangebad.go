// Package maprangebad reconstructs the PR 2 retransmit-scan bug: the
// sender polled its unacked map directly, so datagram emission order —
// observable protocol output — followed Go's randomized map order and
// seeded runs diverged.
package maprangebad

import "sort"

type rec struct {
	rto int64
}

// Sender is a miniature of the transport sender's retransmission
// state: TPDU ID -> record.
type Sender struct {
	unacked map[uint32]*rec
}

// Poll is the bug as shipped: emission order follows map order.
func (s *Sender) Poll(send func(uint32)) {
	for tid := range s.unacked { // want "maprange: iteration order of map s\.unacked can leak into behavior"
		send(tid)
	}
}

// PollSorted is the fix: collect, sort, then emit (exempt).
func (s *Sender) PollSorted(send func(uint32)) {
	tids := make([]uint32, 0, len(s.unacked))
	for tid := range s.unacked {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		send(tid)
	}
}

// Count has an order-free body (exempt).
func (s *Sender) Count() int {
	n := 0
	for range s.unacked {
		n++
	}
	return n
}

// Max is a reduction the analysis cannot prove order-free; it carries
// an annotated allow.
func (s *Sender) Max() uint32 {
	var m uint32
	for tid := range s.unacked { //lint:allow maprange max-reduction over unique keys is iteration-order independent
		if tid > m {
			m = tid
		}
	}
	return m
}
