// Package lockedbad exercises the locked analyzer: guarded-field
// annotations, flow-sensitive hold tracking, wrapper summaries,
// caller-must-hold propagation and function-literal isolation.
package lockedbad

import "sync"

type Table struct {
	mu    sync.Mutex
	conns map[int]int // guarded by mu
	hits  int         // guarded by mu
	ro    int         // guarded by lock // want "locked: guarded-by annotation names .lock., which is not a sync.Mutex/RWMutex sibling field of Table"
}

func (t *Table) Lock()   { t.mu.Lock() }
func (t *Table) Unlock() { t.mu.Unlock() }

// get inherits a caller-must-hold requirement on t.mu: not a finding
// here, but every call site must satisfy or re-propagate it.
func (t *Table) get(k int) int { return t.conns[k] }

func addVia(t *Table, k int) { t.conns[k] = k }

func (t *Table) GoodDirect(k int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.conns[k]
}

func (t *Table) GoodWrapper(k int) int {
	t.Lock()
	v := t.get(k)
	t.Unlock()
	return v
}

func (t *Table) BadEarlyUnlock(k int) int {
	t.mu.Lock()
	v := t.conns[k]
	t.mu.Unlock()
	t.hits++ // want "locked: Table.hits is guarded by t.mu, which is locked elsewhere in this function but not held here"
	return v
}

func (t *Table) BadBranch(k int) int {
	if k > 0 {
		t.mu.Lock()
	}
	return t.conns[k] // want "locked: Table.conns is guarded by t.mu, which is locked elsewhere in this function but not held here"
}

func UseLocked(mk func() *Table, k int) int {
	t := mk()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.get(k)
}

func UseUnlocked(mk func() *Table, k int) int {
	t := mk()
	return t.get(k) // want "locked: call to Table.get requires t.mu held .guards Table.conns."
}

func UseDirect(mk func() *Table) {
	t := mk()
	t.hits++ // want "locked: Table.hits is guarded but t.mu is not held here"
}

func BadCaller(mk func() *Table, k int) {
	t := mk()
	addVia(t, k) // want "locked: call to lockedbad.addVia requires t.mu held .guards Table.conns."
}

func FreshLocal(k int) int {
	t := &Table{conns: map[int]int{k: k}}
	return t.conns[k] // freshly constructed and unshared: no finding
}

func Spawn(t *Table) func() {
	return func() {
		t.hits++ // want "locked: Table.hits is guarded but t.mu is not held in this function literal"
	}
}

func SpawnLocked(t *Table) func() {
	return func() {
		t.mu.Lock()
		t.hits++
		t.mu.Unlock()
	}
}

type RW struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func (r *RW) Read(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}
