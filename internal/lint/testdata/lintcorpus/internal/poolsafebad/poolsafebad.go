// Package poolsafebad seeds the poolsafe golden cases: pooled values
// escaping by return and by store into a longer-lived structure.
package poolsafebad

import "sync"

type buf struct {
	b []byte
}

type holder struct {
	cur *buf
}

var pool = sync.Pool{New: func() any { return new(buf) }}

// Leak returns a pooled object: two owners after the next Put.
func Leak() *buf {
	w := pool.Get().(*buf)
	return w // want "poolsafe: sync\.Pool-derived value w escapes via return"
}

// Stash parks a pooled object in a longer-lived struct.
func Stash(h *holder) {
	w := pool.Get().(*buf)
	h.cur = w // want "poolsafe: sync\.Pool-derived value w stored into longer-lived h\.cur"
}

// Scratch is the discipline as intended: use locally, put back.
func Scratch() int {
	w := pool.Get().(*buf)
	n := len(w.b)
	w.b = w.b[:0] // storing INTO the pooled object is recycling: no finding
	pool.Put(w)
	return n
}

// Transfer is a sanctioned ownership hand-off with an annotated allow.
func Transfer() *buf {
	w := pool.Get().(*buf)
	return w //lint:allow poolsafe allocator API: Get transfers ownership, the caller must Put
}
