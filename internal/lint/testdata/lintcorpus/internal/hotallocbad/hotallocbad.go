// Package hotallocbad exercises the hotalloc analyzer: compiler
// escape diagnostics surfaced inside the static closure of
// //lint:hot roots, and nowhere else.
package hotallocbad

var sink *int

// Hot is a hot root: neither it nor anything statically reachable
// from it may allocate.
//
//lint:hot
func Hot(n int) int {
	x := n // want "hotalloc: allocation on //lint:hot path in hotallocbad.Hot: moved to heap: x"
	sink = &x
	// The helper call is inlined, so its allocation is also reported
	// here, in the frame where it really happens.
	return helper(n) // want "hotalloc: allocation on //lint:hot path in hotallocbad.Hot: make.* escapes to heap"
}

func helper(n int) int {
	s := make([]int, n) // want "hotalloc: allocation on //lint:hot path in hotallocbad.helper: make.* escapes to heap"
	return len(s)
}

// coldOnly is not reachable from any hot root: its allocation is
// nobody's business.
func coldOnly(n int) []int {
	return make([]int, n)
}

var coldSink = coldOnly(4)

type doer interface{ Do(int) int }

// HotDyn calls through an interface: a dynamic dispatch boundary the
// static closure does not cross (runtime zero-alloc tests cover it).
//
//lint:hot
func HotDyn(d doer, n int) int { return d.Do(n) }

type allocDoer struct{}

func (allocDoer) Do(n int) int { return len(coldOnly(n)) }

var _ doer = allocDoer{}
