// Package lifecyclebad exercises the lifecycle analyzer: goroutine
// joins and ticker/timer stops reachable from shutdown methods.
package lifecyclebad

import (
	"sync"
	"time"
)

// Worker is the well-formed pattern: the loop goroutine signals a
// WaitGroup whose Wait — and whose ticker's Stop, and whose done
// channel's close — are all reachable from Close.
type Worker struct {
	wg   sync.WaitGroup
	done chan struct{}
	tick *time.Ticker
}

func (w *Worker) Start() {
	w.tick = time.NewTicker(time.Second)
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			select {
			case <-w.done:
				return
			case <-w.tick.C:
			}
		}
	}()
}

func (w *Worker) Close() {
	w.tick.Stop()
	close(w.done)
	w.wg.Wait()
}

func Leak(n int) {
	go func() { // want "lifecycle: goroutine has no join"
		_ = n * 2
	}()
}

type NoWait struct{ wg sync.WaitGroup }

func (nw *NoWait) Start() {
	nw.wg.Add(1)
	go func() { // want "lifecycle: goroutine signals a WaitGroup, but no matching Wait is reachable"
		defer nw.wg.Done()
	}()
}

func Dyn(fn func()) {
	go fn() // want "lifecycle: goroutine target is a dynamic call"
}

func Poll(d time.Duration) {
	for range time.Tick(d) { // want "lifecycle: time.Tick leaks its ticker"
		return
	}
}

func Spin(d time.Duration, n int) int {
	t := time.NewTicker(d) // want "lifecycle: time.NewTicker result is never stopped"
	v := 0
	for i := 0; i < n; i++ {
		<-t.C
		v++
	}
	return v
}

func SpinStop(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

func Fire(d time.Duration) {
	<-time.NewTimer(d).C // want "lifecycle: time.NewTimer result is not bound to a variable"
}

// scoped joins: a local WaitGroup waited in the same function.
func FanOut(n int) int {
	var wg sync.WaitGroup
	total := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
	return total
}
