// Package telemetry seeds the nilnoop golden cases: instrument
// pointer methods with and without the nil-receiver guard.
package telemetry

// Counter mirrors the real instrument shape.
type Counter struct {
	n int64
}

// Add is the contract as written: guard first.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Inc delegates to a guarded sibling: no finding.
func (c *Counter) Inc() { c.Add(1) }

// Value forgets the guard: a nil Counter panics here.
func (c *Counter) Value() int64 { // want "nilnoop: exported method \(\*Counter\)\.Value must begin with an `if c == nil` guard"
	return c.n
}

// Gauge exercises a second instrument type.
type Gauge struct {
	v int64
}

// Set forgets the guard.
func (g *Gauge) Set(v int64) { // want "nilnoop: exported method \(\*Gauge\)\.Set must begin with an `if g == nil` guard"
	g.v = v
}

// helper is unexported: out of contract, no finding.
func (g *Gauge) helper() int64 { return g.v }

// Other is not an instrument type: no finding.
type Other struct{ v int64 }

// Get is exported but Other is not in the instrument set.
func (o *Other) Get() int64 { return o.v }
