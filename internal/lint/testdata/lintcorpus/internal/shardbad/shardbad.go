// Package shardbad seeds the golden cases for the invariants the
// sharded connection engine (internal/shard) must keep: merge steps
// that walk per-shard connection tables must never let map iteration
// order reach expiry callbacks, findings, or reap totals — the exact
// way a Shards=8 run would diverge from a Shards=1 run under the same
// seeded workload.
package shardbad

import "sort"

// Conn is a stand-in for a per-connection receiver slot.
type Conn struct {
	CID    uint32
	Reaped int
}

// Shard owns one partition of the connection table.
type Shard struct {
	Conns map[string]*Conn
}

// ExpireAll fires the expiry callback in map order: two runs of the
// same seeded workload would observe different callback sequences, so
// a Shards=8 trace could never be compared against Shards=1.
func ExpireAll(shards []*Shard, onExpire func(string, *Conn)) {
	for _, sh := range shards {
		for key, c := range sh.Conns { // want "maprange: iteration order of map sh\.Conns can leak into behavior"
			onExpire(key, c)
			delete(sh.Conns, key)
		}
	}
}

// Findings merges per-shard findings lists in map order — the merged
// report would shuffle run to run even though every shard's own list
// is deterministic.
func Findings(tables map[int][]string) []string {
	var out []string
	for _, fs := range tables { // want "maprange: iteration order of map tables can leak into behavior"
		out = append(out, fs...)
	}
	return out
}

// ExpireSorted is the sanctioned shape (the shard.Engine.Tick idiom):
// collect keys, sort, then service — callback order is a pure function
// of the table contents.
func ExpireSorted(shards []*Shard, onExpire func(string, *Conn)) {
	for _, sh := range shards {
		keys := make([]string, 0, len(sh.Conns))
		for key := range sh.Conns {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			onExpire(key, sh.Conns[key])
			delete(sh.Conns, key)
		}
	}
}

// ReapTotal is an order-free reduction (exempt): summing per-conn
// counters commutes, so the shard-merge total is deterministic without
// sorting.
func ReapTotal(shards []*Shard) int {
	n := 0
	for _, sh := range shards {
		for _, c := range sh.Conns {
			n += c.Reaped
		}
	}
	return n
}
