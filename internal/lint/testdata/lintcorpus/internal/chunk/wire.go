// Package chunk seeds the wirepin golden cases: a miniature wire
// codec with magic offsets and an unpinned exported constant.
package chunk

// HeaderSize is pinned by wire_test.go: no finding.
const HeaderSize = 8

// Orphan is exported but referenced by no test anywhere.
const Orphan = 99 // want "wirepin: exported wire constant Orphan is not referenced by any test"

const offBody = 4

// Decode indexes the buffer with bare literals.
func Decode(b []byte) (uint16, uint16, []byte) {
	hi := uint16(b[0])<<8 | uint16(b[1]) // 0 and 1 are idiomatic dispatch: no finding
	lo := uint16(b[2])<<8 | uint16(b[3]) // want "wirepin: magic wire offset 2" "wirepin: magic wire offset 3"
	return hi, lo, b[offBody:HeaderSize] // named bounds: no finding
}

// Peek slices with bare literal bounds.
func Peek(b []byte) []byte {
	return b[2:6] // want "wirepin: magic wire offset 2" "wirepin: magic wire offset 6"
}
