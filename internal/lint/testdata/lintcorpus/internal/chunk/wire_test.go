package chunk

import "testing"

// TestLayoutPinned references HeaderSize, so the pinning pass does not
// report it; Orphan is deliberately left unreferenced.
func TestLayoutPinned(t *testing.T) {
	if HeaderSize != 8 {
		t.Fatalf("HeaderSize = %d, want 8", HeaderSize)
	}
}
