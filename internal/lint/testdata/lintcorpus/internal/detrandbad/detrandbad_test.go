package detrandbad

import (
	"math/rand"
	"testing"
	"time"
)

// The global-source ban covers test files too (randomized workloads
// must be seeded); the wall-clock ban does not (tests may time out).
func TestGlobals(t *testing.T) {
	if rand.Float64() < 0 { // want "detrand: math/rand\.Float64 draws from the unseeded global source"
		t.Fatal("impossible")
	}
	_ = time.Now() // no finding: wall clock is legitimate in tests
}
