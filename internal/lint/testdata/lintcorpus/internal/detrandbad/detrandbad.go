// Package detrandbad seeds the detrand golden cases: unseeded global
// math/rand draws and wall-clock reads in an internal/ logic package.
package detrandbad

import (
	"math/rand"
	"time"
)

// Jitter draws from the global source — the exact class of bug the
// seeding discipline exists to prevent.
func Jitter() float64 {
	return rand.Float64() // want "detrand: math/rand\.Float64 draws from the unseeded global source"
}

// Stamp reads the wall clock in a deterministic package.
func Stamp() time.Time {
	return time.Now() // want "detrand: time\.Now in deterministic package detrandbad"
}

// Elapsed measures with the wall clock.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "detrand: time\.Since in deterministic package detrandbad"
}

// Seeded is the sanctioned idiom: an explicit source.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// AllowedStamp carries an annotated suppression with a reason.
func AllowedStamp() time.Time {
	return time.Now() //lint:allow detrand timing column of a measured experiment table
}

// BareAllow's directive has no reason: the finding is suppressed but
// the directive itself is reported by the "lint" hygiene pass.
func BareAllow() time.Time {
	// want "lint: //lint:allow detrand is missing its reason string"
	//lint:allow detrand
	return time.Now()
}

// StaleAllow's directive matches no finding: reported as unused.
func StaleAllow() int {
	// want "lint: unused //lint:allow maprange directive"
	//lint:allow maprange stale suppression kept after a refactor
	return 0
}
