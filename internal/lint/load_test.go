package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under t.TempDir. Files are
// ordered pairs (path, source) so creation order is deterministic.
func writeModule(t *testing.T, files [][2]string) string {
	t.Helper()
	dir := t.TempDir()
	for _, f := range files {
		path := filepath.Join(dir, f[0])
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(f[1]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// Load on a directory with no go.mod must error, not panic.
func TestLoadNotAModuleRoot(t *testing.T) {
	_, err := Load(t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "not a module root") {
		t.Fatalf("Load on a bare directory: got %v, want a 'not a module root' error", err)
	}
}

// A syntax error in any file must surface as a positioned diagnostic
// error from Load, not a panic downstream.
func TestLoadParseError(t *testing.T) {
	dir := writeModule(t, [][2]string{
		{"go.mod", "module tmpmod\n\ngo 1.22\n"},
		{"p/p.go", "package p\n\nfunc Broken( {\n"},
	})
	_, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "lint:") {
		t.Fatalf("Load with a syntax error: got %v, want a lint-prefixed error", err)
	}
}

// A module that parses but fails typechecking must produce the
// "lint: typecheck" diagnostic and a nil module.
func TestLoadTypecheckError(t *testing.T) {
	dir := writeModule(t, [][2]string{
		{"go.mod", "module tmpmod\n\ngo 1.22\n"},
		{"p/p.go", "package p\n\nfunc F() int { return undefinedIdent }\n"},
	})
	m, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "typecheck") {
		t.Fatalf("Load with a type error: got %v, want a 'lint: typecheck' error", err)
	}
	if m != nil {
		t.Fatalf("Load returned a non-nil module alongside the error")
	}
}

// An import that go list cannot resolve must fail Load with the
// go list diagnostic (no network, so the failure is immediate).
func TestLoadUnresolvableImport(t *testing.T) {
	dir := writeModule(t, [][2]string{
		{"go.mod", "module tmpmod\n\ngo 1.22\n"},
		{"p/p.go", "package p\n\nimport _ \"example.com/does/not/exist\"\n"},
	})
	_, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "lint:") {
		t.Fatalf("Load with an unresolvable import: got %v, want a lint-prefixed error", err)
	}
}

// The export-data importer must report a missing dependency as an
// error ("no export data"), not panic inside go/importer, when asked
// for a package that is not in the module's dependency set.
func TestExportImporterMissingExportData(t *testing.T) {
	dir := writeModule(t, [][2]string{
		{"go.mod", "module tmpmod\n\ngo 1.22\n"},
		{"p/p.go", "package p\n\nfunc F() int { return 1 }\n"},
	})
	imp, err := newExportImporter(token.NewFileSet(), dir)
	if err != nil {
		t.Fatalf("newExportImporter: %v", err)
	}
	_, err = imp.ImportFrom("encoding/csv", dir, 0)
	if err == nil || !strings.Contains(err.Error(), "no export data") {
		t.Fatalf("ImportFrom on a non-dependency: got %v, want a 'no export data' error", err)
	}
}
