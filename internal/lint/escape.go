package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Escape-diagnostic ingestion: the hotalloc check consults the
// compiler's own escape analysis instead of re-deriving an inferior
// heuristic in the AST. One `go build -gcflags=-m=1 ./...` over the
// module yields every static heap-allocation site ("escapes to heap",
// "moved to heap"); the go command replays cached compiler output, so
// warm runs cost milliseconds. Test files are not compiled by go
// build, which is fine: hot paths are production code by definition.

// An escapeSite is one compiler-reported static heap allocation.
type escapeSite struct {
	Line, Col int
	Msg       string
}

type escapeData struct {
	byFile map[string][]escapeSite // module-relative slash paths
}

// sites returns the escape sites of a module-relative file, sorted.
func (e *escapeData) sites(file string) []escapeSite {
	return e.byFile[file]
}

// Escapes runs (once) and returns the compiler escape diagnostics for
// the module. The error is sticky: a module that does not build has
// no compiler truth to consult.
func (m *Module) Escapes() (*escapeData, error) {
	m.escOnce.Do(func() {
		m.esc, m.escErr = loadEscapes(m.Dir)
	})
	return m.esc, m.escErr
}

func loadEscapes(dir string) (*escapeData, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m=1", "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	err := cmd.Run()
	data := &escapeData{byFile: map[string][]escapeSite{}}
	seen := map[string]bool{}
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		file, ln, col, msg, ok := splitDiag(line)
		if !ok {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s", file, ln, col, msg)
		if seen[key] {
			continue // generic code is re-reported per instantiating package
		}
		seen[key] = true
		data.byFile[file] = append(data.byFile[file], escapeSite{Line: ln, Col: col, Msg: msg})
	}
	if err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m: %v\n%s", err, out.String())
	}
	files := make([]string, 0, len(data.byFile))
	for f := range data.byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		sites := data.byFile[f]
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Line != sites[j].Line {
				return sites[i].Line < sites[j].Line
			}
			if sites[i].Col != sites[j].Col {
				return sites[i].Col < sites[j].Col
			}
			return sites[i].Msg < sites[j].Msg
		})
	}
	return data, nil
}

// splitDiag parses "path/file.go:12:34: message" into its parts,
// normalizing the path to a clean module-relative slash path.
func splitDiag(line string) (file string, ln, col int, msg string, ok bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return "", 0, 0, "", false
	}
	var err error
	if ln, err = strconv.Atoi(parts[1]); err != nil {
		return "", 0, 0, "", false
	}
	if col, err = strconv.Atoi(parts[2]); err != nil {
		return "", 0, 0, "", false
	}
	file = filepath.ToSlash(filepath.Clean(parts[0]))
	return file, ln, col, strings.TrimSpace(parts[3]), true
}
