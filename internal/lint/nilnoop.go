package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Nilnoop enforces the telemetry-off-is-free contract: every exported
// method on an instrument pointer type must begin with a nil-receiver
// guard (or delegate immediately to a sibling method that does), so a
// disabled Sink costs exactly one predictable branch and the zero
// configuration can never panic.
type Nilnoop struct {
	// PackageSuffix selects the telemetry package by import-path suffix.
	PackageSuffix string
	// Types are the instrument type names whose pointer methods must
	// be nil-safe.
	Types map[string]bool
}

// NewNilnoop returns the check with repository-default scoping.
func NewNilnoop() *Nilnoop {
	return &Nilnoop{
		PackageSuffix: "internal/telemetry",
		Types: map[string]bool{
			"Counter": true, "Gauge": true, "Histogram": true,
			"Ring": true, "Scope": true, "Registry": true,
		},
	}
}

func (*Nilnoop) Name() string { return "nilnoop" }
func (*Nilnoop) Doc() string {
	return "exported telemetry instrument methods must begin with a nil-receiver guard"
}

func (c *Nilnoop) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	for _, p := range m.Packages {
		if !strings.HasSuffix(p.Path, c.PackageSuffix) {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
					continue
				}
				recvName, typeName := receiver(fn)
				if !c.Types[typeName] {
					continue
				}
				if nilGuarded(fn.Body.List, recvName) || delegates(fn.Body.List, recvName) {
					continue
				}
				report(fn.Name.Pos(), "exported method (*%s).%s must begin with an `if %s == nil` guard: nil instruments are the disabled-telemetry fast path",
					typeName, fn.Name.Name, recvName)
			}
		}
	}
}

// receiver returns the receiver identifier name and the pointed-to
// type name ("" when the receiver is not a pointer).
func receiver(fn *ast.FuncDecl) (recvName, typeName string) {
	if len(fn.Recv.List) != 1 {
		return "", ""
	}
	field := fn.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return recvName, ""
	}
	switch t := star.X.(type) {
	case *ast.Ident:
		return recvName, t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return recvName, id.Name
		}
	}
	return recvName, ""
}

// nilGuarded reports whether the statements open with `if recv == nil
// { return ... }`, allowing it to be preceded only by declarations
// that do not touch the receiver (the `var s Snapshot` prologue).
func nilGuarded(stmts []ast.Stmt, recv string) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.DeclStmt:
			if usesIdent(s, recv) {
				return false
			}
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE || usesIdent(s, recv) {
				return false
			}
		case *ast.IfStmt:
			return isNilCheck(s.Cond, recv) && returnsOrPanics(s.Body)
		default:
			return false
		}
	}
	return false
}

func isNilCheck(cond ast.Expr, recv string) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(be.X) && isNil(be.Y)) || (isNil(be.X) && isRecv(be.Y))
}

func returnsOrPanics(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	_, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	return ok
}

// delegates reports whether the body is a single statement forwarding
// to another method on the same receiver (e.g. Inc calling Add); the
// callee carries the guard and is checked itself.
func delegates(stmts []ast.Stmt, recv string) bool {
	if len(stmts) != 1 {
		return false
	}
	var x ast.Expr
	switch s := stmts[0].(type) {
	case *ast.ExprStmt:
		x = s.X
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		x = s.Results[0]
	default:
		return false
	}
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == recv
}

// usesIdent reports whether the node mentions the identifier.
func usesIdent(n ast.Node, name string) bool {
	if name == "" {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
