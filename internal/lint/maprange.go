package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maprange flags iteration over maps in deterministic packages: Go
// randomizes map order per run, so any map walk whose effects are
// order-sensitive (emit order, appended findings, callback order —
// the exact class of the PR 2 retransmit-scan bug) makes seeded runs
// diverge. Two shapes are recognized as safe and exempted:
//
//  1. Collect-then-sort: the loop body only appends keys/values to a
//     slice that a sort call in the same block later orders (the
//     transport.unackedTIDs idiom).
//  2. Order-free bodies: every statement is commutative — delete,
//     stores into maps, fresh per-iteration declarations, counter
//     updates (++, +=, |=, &=, ^=, *=) — possibly nested under if.
//
// Anything else needs restructuring or an annotated
// //lint:allow maprange <reason> (e.g. a min-reduction).
type Maprange struct {
	// Scope reports whether a package's map iterations are checked.
	// The default covers every internal/ package.
	Scope func(pkgPath string) bool
}

// NewMaprange returns the check with repository-default scoping.
func NewMaprange() *Maprange {
	return &Maprange{
		Scope: func(pkgPath string) bool {
			return strings.Contains(pkgPath, "/internal/")
		},
	}
}

func (*Maprange) Name() string { return "maprange" }
func (*Maprange) Doc() string {
	return "map iteration whose order can leak into protocol decisions or output"
}

func (c *Maprange) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	for _, p := range m.Packages {
		if c.Scope != nil && !c.Scope(p.Path) {
			continue
		}
		for _, f := range p.Files {
			info := p.infoFor(f)
			w := &maprangeWalker{info: info, report: report}
			ast.Inspect(f, func(n ast.Node) bool {
				var list []ast.Stmt
				switch s := n.(type) {
				case *ast.BlockStmt:
					list = s.List
				case *ast.CaseClause:
					list = s.Body
				case *ast.CommClause:
					list = s.Body
				default:
					return true
				}
				w.checkStmtList(list)
				return true
			})
		}
	}
}

type maprangeWalker struct {
	info   *types.Info
	report func(pos token.Pos, format string, args ...any)
}

// checkStmtList examines each range-over-map that is a direct element
// of the statement list, with access to the trailing statements for
// the collect-then-sort exemption. (Nested ranges are reached when
// ast.Inspect visits their own enclosing blocks.)
func (w *maprangeWalker) checkStmtList(list []ast.Stmt) {
	for i, st := range list {
		rng, ok := st.(*ast.RangeStmt)
		if !ok {
			continue
		}
		if !w.isMap(rng.X) {
			continue
		}
		if target, ok := collectOnlyBody(rng.Body); ok && sortedAfter(list[i+1:], target) {
			continue
		}
		if w.orderFree(rng.Body.List) {
			continue
		}
		w.report(rng.Pos(), "iteration order of map %s can leak into behavior; collect keys and sort, make the body order-free, or annotate //lint:allow maprange <reason>",
			exprString(rng.X))
	}
}

func (w *maprangeWalker) isMap(x ast.Expr) bool {
	t := w.info.TypeOf(x)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// collectOnlyBody reports whether every statement of the body is an
// append onto one and the same target identifier, returning it.
func collectOnlyBody(body *ast.BlockStmt) (string, bool) {
	target := ""
	for _, st := range body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return "", false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return "", false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return "", false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return "", false
		}
		if target != "" && target != lhs.Name {
			return "", false
		}
		target = lhs.Name
	}
	return target, target != ""
}

// sortedAfter reports whether one of the trailing statements sorts the
// collected slice: sort.Slice/SliceStable/Strings/Ints/Float64s/Sort
// or slices.Sort*/SortFunc with target as first argument.
func sortedAfter(rest []ast.Stmt, target string) bool {
	for _, st := range rest {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			continue
		}
		if !strings.HasPrefix(sel.Sel.Name, "Sort") &&
			!strings.HasPrefix(sel.Sel.Name, "Slice") &&
			sel.Sel.Name != "Strings" && sel.Sel.Name != "Ints" && sel.Sel.Name != "Float64s" {
			continue
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && arg.Name == target {
			return true
		}
	}
	return false
}

// orderFree reports whether the statements have the same cumulative
// effect under any iteration order.
func (w *maprangeWalker) orderFree(stmts []ast.Stmt) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.DEFINE:
				// Fresh per-iteration locals are order-free by scope.
			case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN,
				token.OR_ASSIGN, token.XOR_ASSIGN:
				// Commutative accumulations.
			case token.ASSIGN:
				// Plain assignment is safe only when every target is a
				// map element (keyed stores) or blank.
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					ix, ok := lhs.(*ast.IndexExpr)
					if !ok || !w.isMap(ix.X) {
						return false
					}
				}
			default:
				return false
			}
		case *ast.IncDecStmt:
			// Counter updates commute.
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "delete" {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil && !w.orderFree([]ast.Stmt{s.Init}) {
				return false
			}
			if !w.orderFree(s.Body.List) {
				return false
			}
			if s.Else != nil && !w.orderFree([]ast.Stmt{s.Else}) {
				return false
			}
		case *ast.BlockStmt:
			if !w.orderFree(s.List) {
				return false
			}
		case *ast.RangeStmt:
			if !w.orderFree(s.Body.List) {
				return false
			}
		case *ast.DeclStmt:
			// Fresh per-iteration declaration.
		default:
			return false
		}
	}
	return true
}

func exprString(x ast.Expr) string {
	switch e := x.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "expression"
	}
}
