// Package lint is a stdlib-only analyzer suite (go/parser + go/ast +
// go/types; no x/tools) that mechanically enforces the repository's
// determinism, wire-pinning and telemetry invariants — the properties
// the compiler cannot see but the paper's chunk semantics depend on:
// order-independent, bit-reproducible protocol processing.
//
// Checks:
//
//   - detrand: unseeded math/rand top-level functions anywhere, and
//     time.Now/time.Since inside internal/ logic packages.
//   - maprange: iteration over a map whose order can leak into
//     protocol or output behavior (the PR 2 sorted-scan bug class).
//   - wirepin: magic integer offsets into []byte wire buffers in the
//     chunk/packet/compress codecs, and exported wire constants not
//     referenced by any pinned test.
//   - nilnoop: exported methods on telemetry instrument pointer types
//     must begin with a nil-receiver guard (telemetry-off-is-free).
//   - poolsafe: sync.Pool-derived values must not escape the function
//     that drew them (returns or stores into longer-lived structures).
//
// A finding at a site that is genuinely legitimate is suppressed with
// an inline directive on the same line or the line above:
//
//	//lint:allow <check> <reason>
//
// The reason is mandatory, and a directive that stops matching any
// finding is itself reported, so suppressions cannot go stale.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// A Check inspects a loaded module and reports findings. Checks see
// the whole module so cross-package passes (wirepin's constant
// pinning) need no special casing.
type Check interface {
	Name() string
	Doc() string
	Run(m *Module, report func(pos token.Pos, format string, args ...any))
}

// AllChecks returns the full suite with repository-default scoping.
func AllChecks() []Check {
	return []Check{
		NewDetrand(),
		NewMaprange(),
		NewWirepin(),
		NewNilnoop(),
		NewPoolsafe(),
		NewLocked(),
		NewHotalloc(),
		NewLifecycle(),
	}
}

// Stats summarizes a run: per-check counts of surviving findings and
// of findings silenced by //lint:allow directives, plus the total
// number of allow directives present in the module (all checks, even
// ones outside a subset run). The total is pinned by AllowBudget so
// suppressions cannot accrete silently.
type Stats struct {
	Findings   map[string]int `json:"findings"`
	Suppressed map[string]int `json:"suppressed"`
	Allows     int            `json:"allows"`
}

// Run executes the checks over the module, applies //lint:allow
// suppressions, and returns the surviving diagnostics sorted by
// position. Malformed (reason-less) and unused allow directives for
// the executed checks are reported as check "lint".
func Run(m *Module, checks []Check) []Diagnostic {
	diags, _ := RunStats(m, checks)
	return diags
}

// RunStats is Run plus the suppression accounting behind the
// chunklint -stats flag.
func RunStats(m *Module, checks []Check) ([]Diagnostic, Stats) {
	dirs := collectDirectives(m)
	ran := map[string]bool{"lint": true}
	stats := Stats{
		Findings:   map[string]int{},
		Suppressed: map[string]int{},
		Allows:     len(dirs.all),
	}

	var diags []Diagnostic
	for _, c := range checks {
		c := c
		ran[c.Name()] = true
		report := func(pos token.Pos, format string, args ...any) {
			p := m.Fset.Position(pos)
			diags = append(diags, Diagnostic{
				Check: c.Name(), File: relFile(m, p.Filename),
				Line: p.Line, Col: p.Column,
				Message: fmt.Sprintf(format, args...),
			})
		}
		c.Run(m, report)
	}

	kept := diags[:0]
	for _, d := range diags {
		if dir := dirs.match(d.File, d.Line, d.Check); dir != nil {
			dir.used = true
			stats.Suppressed[d.Check]++
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	for _, dir := range dirs.all {
		if !ran[dir.check] {
			continue // a subset run cannot judge other checks' allows
		}
		switch {
		case dir.reason == "":
			diags = append(diags, Diagnostic{
				Check: "lint", File: dir.file, Line: dir.line, Col: dir.col,
				Message: fmt.Sprintf("//lint:allow %s is missing its reason string", dir.check),
			})
		case !dir.used:
			diags = append(diags, Diagnostic{
				Check: "lint", File: dir.file, Line: dir.line, Col: dir.col,
				Message: fmt.Sprintf("unused //lint:allow %s directive (no matching finding)", dir.check),
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	for _, d := range diags {
		stats.Findings[d.Check]++
	}
	return diags, stats
}

func relFile(m *Module, name string) string {
	if rel, err := filepath.Rel(m.Dir, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

// directive is one parsed //lint:allow comment.
type directive struct {
	file   string
	line   int
	col    int
	check  string
	reason string
	used   bool
}

type directiveSet struct {
	all   []*directive
	index map[string]map[int][]*directive // file -> line -> directives
}

// match finds an allow for check covering line (the directive's own
// line for trailing comments, or the line above the flagged one).
func (ds *directiveSet) match(file string, line int, check string) *directive {
	for _, l := range [2]int{line, line - 1} {
		for _, d := range ds.index[file][l] {
			if d.check == check {
				return d
			}
		}
	}
	return nil
}

var allowRE = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_-]+)\s*(.*)$`)

func collectDirectives(m *Module) *directiveSet {
	ds := &directiveSet{index: map[string]map[int][]*directive{}}
	for _, p := range m.Packages {
		for _, f := range p.AllFiles() {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					mm := allowRE.FindStringSubmatch(c.Text)
					if mm == nil {
						continue
					}
					pos := m.Fset.Position(c.Slash)
					d := &directive{
						file:  relFile(m, pos.Filename),
						line:  pos.Line,
						col:   pos.Column,
						check: mm[1], reason: strings.TrimSpace(mm[2]),
					}
					ds.all = append(ds.all, d)
					byLine := ds.index[d.file]
					if byLine == nil {
						byLine = map[int][]*directive{}
						ds.index[d.file] = byLine
					}
					byLine[d.line] = append(byLine[d.line], d)
				}
			}
		}
	}
	return ds
}

// infoFor returns the types.Info covering the given file of p: the
// main unit for sources and in-package tests, the external unit for
// package p_test files.
func (p *Package) infoFor(f *ast.File) *types.Info {
	for _, xf := range p.XTestFiles {
		if xf == f {
			return p.XInfo
		}
	}
	return p.Info
}
