package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Locked enforces mutex discipline declared on struct fields:
//
//	type Shard struct {
//		mu    sync.Mutex
//		conns map[Key]*entry // guarded by mu
//	}
//
// Every access to an annotated field must occur on a control-flow
// path where the named sibling mutex is provably held. The analysis
// is flow-sensitive (a forward must-hold dataflow over the shared
// CFG, so held(x) is the intersection over all paths reaching the
// access) and interprocedural in two ways:
//
//   - Wrapper summaries: a method whose net effect is acquiring or
//     releasing a receiver-rooted mutex (Shard.Lock wrapping
//     s.mu.Lock) transfers that effect to its call sites.
//   - Caller-must-hold propagation: a function that accesses a
//     guarded field through its receiver or a parameter without
//     locking is given the requirement "caller must hold"; the
//     requirement is checked at every static call site, propagating
//     further up when the callee object is itself reachable from the
//     caller's receiver or parameters. A chain only produces a
//     finding where it breaks: a call or access on a local object
//     with the mutex demonstrably not held.
//
// A function that acquires the mutex itself on some path and still
// reaches a guarded access without it (the unlock-too-early bug
// class) is reported directly rather than propagated.
//
// Locks are identified by normalized access-path strings ("sh.mu");
// aliasing through assignments or call results is not tracked, and
// function literals are analyzed as isolated bodies (accesses rooted
// at their own parameters are trusted to the caller). Genuine
// exceptions carry //lint:allow locked <reason>.
type Locked struct{}

// NewLocked returns the check (driven entirely by annotations).
func NewLocked() *Locked { return &Locked{} }

func (*Locked) Name() string { return "locked" }
func (*Locked) Doc() string {
	return "fields annotated `guarded by <mu>` must only be accessed with that mutex held"
}

var guardedByRE = regexp.MustCompile(`^//\s*guarded by\s+([A-Za-z_]\w*)\b`)

// A guardInfo is one annotated field: which sibling mutex guards it.
type guardInfo struct {
	structName string // type name, for messages
	fieldName  string
	muName     string
}

// A lockReq is a caller-must-hold obligation of one function: the
// mutex reached from parameter root (-1 = receiver) via path.
type lockReq struct {
	root int    // -1 receiver, else flattened parameter index
	path string // ".mu", ".eng.mu", ...
	desc string // "Shard.conns" — what the mutex guards, for messages
}

// A lockSummary is a function's net lock effect on receiver-rooted
// mutexes, used to model wrapper methods at call sites.
type lockSummary struct {
	acquires []string // receiver-relative paths held at every exit
	releases []string // receiver-relative paths unlocked on some path
}

func (c *Locked) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	guards := collectGuards(m, report)
	if len(guards) == 0 {
		return
	}
	cg := m.CallGraph()
	la := &lockedAnalysis{m: m, guards: guards, cg: cg,
		sums: map[*cgNode]*lockSummary{}, reqs: map[*cgNode][]lockReq{}}

	// Wrapper summaries to a (shallow) fixed point: wrappers of
	// wrappers stabilize in as many rounds as their nesting depth.
	for i := 0; i < 3; i++ {
		changed := false
		for _, n := range cg.nodes {
			if n.decl.Body == nil {
				continue
			}
			s := la.summarize(n)
			old := la.sums[n]
			if old == nil || !equalStrings(old.acquires, s.acquires) || !equalStrings(old.releases, s.releases) {
				la.sums[n] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Caller-must-hold requirements to a fixed point.
	for i := 0; i < 10; i++ {
		changed := false
		for _, n := range cg.nodes {
			if n.decl.Body == nil {
				continue
			}
			for _, r := range la.deriveReqs(n) {
				if la.addReq(n, r) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Final pass: report the places where the discipline breaks.
	for _, n := range cg.nodes {
		if n.decl.Body != nil {
			la.checkFunc(n, report)
		}
	}
	// Function literals, as isolated units.
	for _, p := range m.Packages {
		for _, f := range p.AllFiles() {
			info := p.infoFor(f)
			if info == nil {
				continue
			}
			ast.Inspect(f, func(node ast.Node) bool {
				if lit, ok := node.(*ast.FuncLit); ok {
					la.checkFuncLit(p, info, lit, report)
					return false // nested literals are visited recursively inside
				}
				return true
			})
		}
	}
}

// collectGuards parses `// guarded by <mu>` field annotations,
// validating that the named sibling exists and is a mutex.
func collectGuards(m *Module, report func(pos token.Pos, format string, args ...any)) map[string]guardInfo {
	guards := map[string]guardInfo{}
	for _, p := range m.Packages {
		for _, f := range p.AllFiles() {
			info := p.infoFor(f)
			if info == nil {
				continue
			}
			ast.Inspect(f, func(node ast.Node) bool {
				ts, ok := node.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					mu := guardAnnotation(fld)
					if mu == "" {
						continue
					}
					if !structHasMutex(info, st, mu) {
						report(fld.Pos(), "guarded-by annotation names %q, which is not a sync.Mutex/RWMutex sibling field of %s", mu, ts.Name.Name)
						continue
					}
					for _, name := range fld.Names {
						key := p.Path + "." + ts.Name.Name + "." + name.Name
						guards[key] = guardInfo{structName: ts.Name.Name, fieldName: name.Name, muName: mu}
					}
				}
				return true
			})
		}
	}
	return guards
}

func guardAnnotation(fld *ast.Field) string {
	for _, cg := range [2]*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, cm := range cg.List {
			if mm := guardedByRE.FindStringSubmatch(cm.Text); mm != nil {
				return mm[1]
			}
		}
	}
	return ""
}

func structHasMutex(info *types.Info, st *ast.StructType, name string) bool {
	for _, fld := range st.Fields.List {
		for _, n := range fld.Names {
			if n.Name == name {
				return isMutexType(info.TypeOf(fld.Type))
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockedAnalysis carries the interprocedural state of one run.
type lockedAnalysis struct {
	m      *Module
	guards map[string]guardInfo
	cg     *callGraph
	sums   map[*cgNode]*lockSummary
	reqs   map[*cgNode][]lockReq
}

func (la *lockedAnalysis) addReq(n *cgNode, r lockReq) bool {
	for _, have := range la.reqs[n] {
		if have.root == r.root && have.path == r.path {
			return false
		}
	}
	la.reqs[n] = append(la.reqs[n], r)
	sort.Slice(la.reqs[n], func(i, j int) bool {
		a, b := la.reqs[n][i], la.reqs[n][j]
		if a.root != b.root {
			return a.root < b.root
		}
		return a.path < b.path
	})
	return true
}

// funcUnit is one analyzed body: a declaration or a literal.
type funcUnit struct {
	info     *types.Info
	body     *ast.BlockStmt
	recvName string
	params   []string // flattened parameter names
	la       *lockedAnalysis

	fresh  map[string]bool // locals built from composite literals / new
	locked map[string]bool // keys explicitly acquired somewhere in the body
	defRel map[string]bool // keys released by deferred calls
}

func (la *lockedAnalysis) unitFor(n *cgNode) *funcUnit {
	u := &funcUnit{info: n.pkg.infoFor(fileOf(n.pkg, n.decl)), body: n.decl.Body, la: la}
	if r := n.decl.Recv; r != nil && len(r.List) == 1 && len(r.List[0].Names) == 1 {
		u.recvName = r.List[0].Names[0].Name
	}
	for _, fld := range n.decl.Type.Params.List {
		if len(fld.Names) == 0 {
			u.params = append(u.params, "_")
			continue
		}
		for _, nm := range fld.Names {
			u.params = append(u.params, nm.Name)
		}
	}
	u.prepare()
	return u
}

func (la *lockedAnalysis) unitForLit(p *Package, info *types.Info, lit *ast.FuncLit) *funcUnit {
	u := &funcUnit{info: info, body: lit.Body, la: la}
	for _, fld := range lit.Type.Params.List {
		for _, nm := range fld.Names {
			u.params = append(u.params, nm.Name)
		}
	}
	u.prepare()
	return u
}

// prepare scans the body once for freshness, explicit lock sites and
// deferred releases (all flow-insensitive facts).
func (u *funcUnit) prepare() {
	u.fresh = map[string]bool{}
	u.locked = map[string]bool{}
	u.defRel = map[string]bool{}
	inspectSkippingFuncLits(u.body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(x.Rhs) {
					continue
				}
				if isFreshExpr(x.Rhs[i]) {
					u.fresh[id.Name] = true
				}
			}
		case *ast.CallExpr:
			if key, acq, ok := u.lockOp(x); ok && acq {
				u.locked[key] = true
			}
		case *ast.DeferStmt:
			u.deferEffects(x.Call, func(key string, acquire bool) {
				if !acquire {
					u.defRel[key] = true
				}
			})
		}
	})
}

// deferEffects reports the lock effects of a deferred call: direct
// mutex calls and receiver-rooted wrapper summaries.
func (u *funcUnit) deferEffects(call *ast.CallExpr, emit func(key string, acquire bool)) {
	if key, acq, ok := u.lockOp(call); ok {
		emit(key, acq)
		return
	}
	if callee := u.la.cg.node(resolveCallee(u.info, call)); callee != nil {
		if sum := u.la.sums[callee]; sum != nil {
			if base := callReceiverBase(call); base != "" {
				for _, p := range sum.acquires {
					emit(base+p, true)
				}
				for _, p := range sum.releases {
					emit(base+p, false)
				}
			}
		}
	}
}

// lockOp recognizes X.Lock/Unlock/RLock/RUnlock on a mutex-typed X.
func (u *funcUnit) lockOp(call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var acq bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acq = true
	case "Unlock", "RUnlock":
		acq = false
	default:
		return "", false, false
	}
	if !isMutexType(u.info.TypeOf(sel.X)) {
		return "", false, false
	}
	key = exprString(sel.X)
	if strings.Contains(key, "(") || key == "expression" {
		return "", false, false
	}
	return key, acq, true
}

func isFreshExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// inspectSkippingFuncLits walks the tree, visiting every node except
// the interiors of function literals (they run on another timeline).
func inspectSkippingFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// heldSet is the must-hold lattice value: the set of lock keys held
// on every path reaching a program point. nil is ⊤ (unvisited).
type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

func meet(a, b heldSet) heldSet {
	if a == nil {
		return b.clone()
	}
	out := heldSet{}
	for _, k := range sortedKeys(a) {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func sortedKeys(s map[string]bool) []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func equalHeld(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	//lint:allow maprange set equality: the result is identical in every iteration order
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// transfer applies one block node's lock effects to held, optionally
// invoking check at every guarded access and resolvable call.
func (u *funcUnit) transfer(node ast.Node, held heldSet, check func(n ast.Node, held heldSet)) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case nil:
			return true
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// Effects apply at exit; checks inside would run against
			// an unknown exit state. Skip the whole subtree.
			return false
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if key, acq, ok := u.lockOp(x); ok {
				if acq {
					held[key] = true
				} else {
					delete(held, key)
				}
				return true
			}
			if check != nil {
				check(x, held)
			}
			// Wrapper summaries.
			if callee := u.la.cg.node(resolveCallee(u.info, x)); callee != nil {
				if sum := u.la.sums[callee]; sum != nil {
					if base := callReceiverBase(x); base != "" {
						for _, p := range sum.acquires {
							held[base+p] = true
						}
						for _, p := range sum.releases {
							delete(held, base+p)
						}
					}
				}
			}
		case *ast.SelectorExpr:
			if check != nil {
				check(x, held)
			}
		}
		return true
	})
}

// callReceiverBase returns the printable receiver expression of a
// method call ("sh" for sh.Lock()), or "".
func callReceiverBase(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	base := exprString(sel.X)
	if strings.Contains(base, "(") || base == "expression" {
		return ""
	}
	return base
}

// flow computes the per-block entry held sets of the unit's CFG.
func (u *funcUnit) flow() (*funcCFG, []heldSet) {
	g := buildCFG(u.body)
	in := make([]heldSet, len(g.blocks))
	in[g.entry.index] = heldSet{}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		held := in[b.index].clone()
		for _, n := range b.nodes {
			u.transfer(n, held, nil)
		}
		for _, s := range b.succs {
			m := meet(in[s.index], held)
			if !equalHeld(m, in[s.index]) || in[s.index] == nil {
				in[s.index] = m
				work = append(work, s)
			}
		}
	}
	return g, in
}

// exitHeld intersects the held sets at every reachable exit (return
// statements and the fall-off end of the body).
func (u *funcUnit) exitHeld(g *funcCFG, in []heldSet) heldSet {
	var exit heldSet
	for _, b := range g.blocks {
		if in[b.index] == nil {
			continue // unreachable
		}
		held := in[b.index].clone()
		terminated := false
		for _, n := range b.nodes {
			u.transfer(n, held, nil)
			if _, ok := n.(*ast.ReturnStmt); ok {
				exit = meet(exit, held)
				terminated = true
			}
		}
		if !terminated && len(b.succs) == 0 {
			exit = meet(exit, held)
		}
	}
	if exit == nil {
		return heldSet{}
	}
	return exit
}

// summarize computes a declaration's receiver-rooted lock summary.
func (la *lockedAnalysis) summarize(n *cgNode) *lockSummary {
	u := la.unitFor(n)
	sum := &lockSummary{}
	if u.recvName == "" {
		return sum
	}
	g, in := u.flow()
	prefix := u.recvName + "."
	for _, key := range sortedKeys(u.exitHeld(g, in)) {
		if strings.HasPrefix(key, prefix) && !u.defRel[key] {
			sum.acquires = append(sum.acquires, key[len(u.recvName):])
		}
	}
	// Releases: any explicit unlock (direct or deferred) of a
	// receiver-rooted key that the body did not itself acquire.
	rel := map[string]bool{}
	inspectSkippingFuncLits(u.body, func(node ast.Node) {
		if call, ok := node.(*ast.CallExpr); ok {
			if key, acq, ok := u.lockOp(call); ok && !acq {
				rel[key] = true
			}
		}
	})
	for key := range u.defRel {
		rel[key] = true
	}
	for _, key := range sortedKeys(rel) {
		if strings.HasPrefix(key, prefix) && !u.locked[key] {
			sum.releases = append(sum.releases, key[len(u.recvName):])
		}
	}
	sort.Strings(sum.acquires)
	sort.Strings(sum.releases)
	return sum
}

// guardFor resolves a selector to its guard annotation, returning the
// lock key base and info.
func (u *funcUnit) guardFor(sel *ast.SelectorExpr) (base string, gi guardInfo, ok bool) {
	selection, isSel := u.info.Selections[sel]
	if !isSel || selection.Kind() != types.FieldVal {
		return "", guardInfo{}, false
	}
	t := selection.Recv()
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", guardInfo{}, false
	}
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return "", guardInfo{}, false
	}
	gi, ok = u.la.guards[obj.Pkg().Path()+"."+obj.Name()+"."+sel.Sel.Name]
	if !ok {
		return "", guardInfo{}, false
	}
	base = exprString(sel.X)
	if strings.Contains(base, "(") || base == "expression" {
		return "", guardInfo{}, false
	}
	return base, gi, true
}

// rootOf splits a key into its leading identifier and the rest:
// "s.eng.mu" -> ("s", ".eng.mu").
func rootOf(key string) (string, string) {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

// rootIndex classifies a root identifier against the unit's receiver
// and parameters: -1 receiver, >=0 parameter index, -2 otherwise.
func (u *funcUnit) rootIndex(root string) int {
	if root == u.recvName && root != "" {
		return -1
	}
	for i, p := range u.params {
		if p == root && root != "_" {
			return i
		}
	}
	return -2
}

// deriveReqs computes the unit's caller-must-hold obligations.
func (la *lockedAnalysis) deriveReqs(n *cgNode) []lockReq {
	u := la.unitFor(n)
	var reqs []lockReq
	u.walkChecks(func(key, desc string, held heldSet) {
		if held[key] || u.locked[key] {
			return // satisfied locally, or a direct-report case
		}
		root, path := rootOf(key)
		if u.fresh[root] {
			return
		}
		if idx := u.rootIndex(root); idx != -2 {
			reqs = append(reqs, lockReq{root: idx, path: path, desc: desc})
		}
	})
	return reqs
}

// walkChecks runs the dataflow and invokes found for every guarded
// access and every call-site requirement, with the held set at that
// point. found receives the lock key and a description of what it
// guards.
func (u *funcUnit) walkChecks(found func(key, desc string, held heldSet)) {
	g, in := u.flow()
	for _, b := range g.blocks {
		if in[b.index] == nil {
			continue
		}
		held := in[b.index].clone()
		for _, node := range b.nodes {
			u.transfer(node, held, func(n ast.Node, held heldSet) {
				switch x := n.(type) {
				case *ast.SelectorExpr:
					if base, gi, ok := u.guardFor(x); ok {
						found(base+"."+gi.muName, gi.structName+"."+gi.fieldName, held)
					}
				case *ast.CallExpr:
					callee := u.la.cg.node(resolveCallee(u.info, x))
					if callee == nil {
						return
					}
					for _, req := range u.la.reqs[callee] {
						key, ok := u.reqKeyAt(x, req)
						if !ok {
							continue
						}
						found(key, req.desc, held)
					}
				}
			})
		}
	}
}

// reqKeyAt instantiates a callee requirement at a call site.
func (u *funcUnit) reqKeyAt(call *ast.CallExpr, req lockReq) (string, bool) {
	var base string
	if req.root == -1 {
		base = callReceiverBase(call)
	} else if req.root < len(call.Args) {
		base = exprString(call.Args[req.root])
		if strings.Contains(base, "(") || base == "expression" {
			base = ""
		}
	}
	if base == "" {
		return "", false
	}
	return base + req.path, true
}

// checkFunc reports the violations of one declaration: unheld guarded
// accesses or unmet call requirements whose lock cannot be delegated
// to the caller.
func (la *lockedAnalysis) checkFunc(n *cgNode, report func(pos token.Pos, format string, args ...any)) {
	u := la.unitFor(n)
	u.walkChecksPos(func(pos token.Pos, key, desc string, isCall bool, callee string, held heldSet) {
		if held[key] {
			return
		}
		root, _ := rootOf(key)
		if u.fresh[root] {
			return
		}
		if u.locked[key] {
			// The function takes this lock elsewhere: an unheld access
			// is a hole in the locked region, not an API contract.
			if isCall {
				report(pos, "call to %s requires %s held (guards %s), but it is not held here despite being locked elsewhere in this function", callee, key, desc)
			} else {
				report(pos, "%s is guarded by %s, which is locked elsewhere in this function but not held here", desc, key)
			}
			return
		}
		if u.rootIndex(root) != -2 {
			return // propagated to callers as a requirement
		}
		if isCall {
			report(pos, "call to %s requires %s held (guards %s); lock it or annotate //lint:allow locked <reason>", callee, key, desc)
		} else {
			report(pos, "%s is guarded but %s is not held here; lock it or annotate //lint:allow locked <reason>", desc, key)
		}
	})
}

// walkChecksPos is walkChecks with positions and call metadata.
func (u *funcUnit) walkChecksPos(found func(pos token.Pos, key, desc string, isCall bool, callee string, held heldSet)) {
	g, in := u.flow()
	for _, b := range g.blocks {
		if in[b.index] == nil {
			continue
		}
		held := in[b.index].clone()
		for _, node := range b.nodes {
			u.transfer(node, held, func(n ast.Node, held heldSet) {
				switch x := n.(type) {
				case *ast.SelectorExpr:
					if base, gi, ok := u.guardFor(x); ok {
						found(x.Sel.Pos(), base+"."+gi.muName, gi.structName+"."+gi.fieldName, false, "", held)
					}
				case *ast.CallExpr:
					callee := u.la.cg.node(resolveCallee(u.info, x))
					if callee == nil {
						return
					}
					for _, req := range u.la.reqs[callee] {
						key, ok := u.reqKeyAt(x, req)
						if !ok {
							continue
						}
						found(x.Pos(), key, req.desc, true, funcDisplayName(callee.obj), held)
					}
				}
			})
		}
	}
}

// checkFuncLit analyzes one function literal as an isolated body:
// accesses rooted at its own parameters are the caller's business;
// everything else must hold the lock inside the literal.
func (la *lockedAnalysis) checkFuncLit(p *Package, info *types.Info, lit *ast.FuncLit, report func(pos token.Pos, format string, args ...any)) {
	u := la.unitForLit(p, info, lit)
	u.walkChecksPos(func(pos token.Pos, key, desc string, isCall bool, callee string, held heldSet) {
		if held[key] {
			return
		}
		root, _ := rootOf(key)
		if u.fresh[root] || u.rootIndex(root) != -2 {
			return
		}
		if isCall {
			report(pos, "call to %s inside a function literal requires %s held (guards %s); lock it in the literal or annotate //lint:allow locked <reason>", callee, key, desc)
		} else {
			report(pos, "%s is guarded but %s is not held in this function literal; lock it or annotate //lint:allow locked <reason>", desc, key)
		}
	})
	// Nested literals.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if nested, ok := n.(*ast.FuncLit); ok && nested != lit {
			la.checkFuncLit(p, info, nested, report)
			return false
		}
		return true
	})
}

// funcDisplayName renders "Type.Method" or "pkg.Func" for messages.
func funcDisplayName(f *types.Func) string {
	sig := f.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}
