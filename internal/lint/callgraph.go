package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// The module-wide call graph: one node per declared function or
// method, with edges for every *statically resolvable* call — direct
// calls of package functions, method calls on concrete receivers, and
// generic instantiations (normalized to their origin declaration).
// Calls through function values and interface methods are dynamic and
// carry no edge; flow checks that traverse the graph treat them as
// analysis boundaries (the dynamic tests still cover them).
//
// Calls inside function literals are attributed to the enclosing
// declaration: for reachability questions ("is wg.Wait reachable from
// Close?", "does the hot path allocate?") the literal runs with — or
// on behalf of — its owner.

type cgNode struct {
	obj      *types.Func
	decl     *ast.FuncDecl
	pkg      *Package
	testFile bool      // declared in a _test.go file
	callees  []*cgNode // deduplicated, deterministic order
}

type callGraph struct {
	byObj map[*types.Func]*cgNode
	nodes []*cgNode // deterministic (package, position) order
}

// node returns the graph node for a declared function object (nil for
// out-of-module or dynamic callees).
func (g *callGraph) node(obj *types.Func) *cgNode {
	if obj == nil {
		return nil
	}
	return g.byObj[funcOrigin(obj)]
}

// funcOrigin normalizes generic instantiations to their declaration.
func funcOrigin(f *types.Func) *types.Func {
	if o := f.Origin(); o != nil {
		return o
	}
	return f
}

// resolveCallee statically resolves a call expression to the function
// object it invokes, or nil for dynamic calls (function values,
// interface methods), conversions and builtins.
func resolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](...).
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(x.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(x.X)
	}
	switch x := fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[x].(*types.Func); ok {
			return funcOrigin(f)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil // method value through a func-typed field
			}
			if recv := f.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil // dynamic dispatch
			}
			return funcOrigin(f)
		}
		// Package-qualified call: pkg.F(...).
		if f, ok := info.Uses[x.Sel].(*types.Func); ok {
			if recv := f.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil
			}
			return funcOrigin(f)
		}
	}
	return nil
}

// buildCallGraph constructs the module call graph. Determinism: nodes
// follow the module's sorted package order and file/position order
// within a package; callee lists preserve first-call order.
func buildCallGraph(m *Module) *callGraph {
	g := &callGraph{byObj: map[*types.Func]*cgNode{}}
	for _, p := range m.Packages {
		for _, f := range p.AllFiles() {
			info := p.infoFor(f)
			if info == nil {
				continue
			}
			isTest := !containsFile(p.Files, f)
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := info.Defs[fn.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &cgNode{obj: funcOrigin(obj), decl: fn, pkg: p, testFile: isTest}
				g.byObj[n.obj] = n
				g.nodes = append(g.nodes, n)
			}
		}
	}
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i].decl.Pos() < g.nodes[j].decl.Pos() })
	for _, n := range g.nodes {
		if n.decl.Body == nil {
			continue
		}
		info := n.pkg.infoFor(fileOf(n.pkg, n.decl))
		seen := map[*cgNode]bool{}
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := g.node(resolveCallee(info, call)); callee != nil && !seen[callee] {
				seen[callee] = true
				n.callees = append(n.callees, callee)
			}
			return true
		})
	}
	return g
}

// fileOf returns the *ast.File of p containing decl.
func fileOf(p *Package, decl *ast.FuncDecl) *ast.File {
	for _, f := range p.AllFiles() {
		if f.FileStart <= decl.Pos() && decl.Pos() <= f.FileEnd {
			return f
		}
	}
	return nil
}

// reachableFrom returns the set of nodes reachable from the roots
// (roots included) following static call edges.
func (g *callGraph) reachableFrom(roots []*cgNode) map[*cgNode]bool {
	seen := map[*cgNode]bool{}
	var stack []*cgNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.callees {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}
