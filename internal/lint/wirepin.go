package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Wirepin guards the pinned wire formats (chunk, packet, compress):
//
//  1. Integer literals >= 2 used to index or slice a byte buffer in a
//     wire package are magic offsets; they must be named constants so
//     the layout is stated once and the known-answer tests pin it.
//     (0 and 1 are allowed: first-byte dispatch is idiomatic.)
//  2. Every exported constant of a wire package must be referenced
//     from at least one test file somewhere in the module — an
//     exported wire constant nobody pins can drift silently.
type Wirepin struct {
	// PackageSuffixes selects the wire packages by import-path suffix.
	PackageSuffixes []string
}

// NewWirepin returns the check with repository-default scoping.
func NewWirepin() *Wirepin {
	return &Wirepin{PackageSuffixes: []string{
		"internal/chunk", "internal/packet", "internal/compress",
	}}
}

func (*Wirepin) Name() string { return "wirepin" }
func (*Wirepin) Doc() string {
	return "magic wire offsets must be named constants; exported wire constants must be test-pinned"
}

func (c *Wirepin) inScope(pkgPath string) bool {
	for _, s := range c.PackageSuffixes {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

func (c *Wirepin) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	// Pass 1: magic offsets in wire-package sources.
	exported := map[types.Object]token.Pos{}
	for _, p := range m.Packages {
		if !c.inScope(p.Path) {
			continue
		}
		for _, f := range p.Files {
			info := p.infoFor(f)
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.IndexExpr:
					if isByteBuffer(info, e.X) {
						c.checkBound(e.Index, report)
					}
				case *ast.SliceExpr:
					if isByteBuffer(info, e.X) {
						c.checkBound(e.Low, report)
						c.checkBound(e.High, report)
						c.checkBound(e.Max, report)
					}
				}
				return true
			})
		}
		// Collect the package's exported constants for pass 2.
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			obj, ok := scope.Lookup(name).(*types.Const)
			if !ok || !obj.Exported() {
				continue
			}
			exported[obj] = obj.Pos()
		}
	}

	if len(exported) == 0 {
		return
	}
	// Pass 2: sweep every test file in the module for references.
	for _, p := range m.Packages {
		for _, f := range p.AllFiles() {
			if containsFile(p.Files, f) {
				continue // test files only
			}
			info := p.infoFor(f)
			if info == nil {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := info.Uses[id]; obj != nil {
					delete(exported, obj)
				}
				return true
			})
		}
	}
	var orphans []types.Object
	for obj := range exported {
		orphans = append(orphans, obj)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].Pos() < orphans[j].Pos() })
	for _, obj := range orphans {
		report(obj.Pos(), "exported wire constant %s is not referenced by any test; pin it in a layout test", obj.Name())
	}
}

// checkBound flags a bare integer literal >= 2 used as an index or
// slice bound.
func (c *Wirepin) checkBound(e ast.Expr, report func(pos token.Pos, format string, args ...any)) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return
	}
	v, err := strconv.ParseUint(lit.Value, 0, 64)
	if err != nil || v < 2 {
		return
	}
	report(lit.Pos(), "magic wire offset %s: give the field offset a named constant so tests can pin the layout", lit.Value)
}

// isByteBuffer reports whether x is a []byte (or byte array) value.
func isByteBuffer(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	b, ok := elem.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
