package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolsafe tracks values drawn from a sync.Pool within each function:
// a pooled object that is returned to the caller or stored into a
// longer-lived structure escapes the Get/Put discipline, so a later
// Put can hand the same object to two owners (the classic pool
// aliasing bug). Deliberate ownership transfers — a pool-backed
// allocator API like packet.BufferPool.Get — carry an annotated
// //lint:allow poolsafe.
//
// The analysis is a conservative per-function taint pass: taint seeds
// at `p.Get()` calls (sync.Pool receiver, including through a type
// assertion), propagates through assignments, selectors, indexing,
// slicing and type assertions, and stops at function calls.
type Poolsafe struct{}

// NewPoolsafe returns the check (module-wide, no configuration).
func NewPoolsafe() *Poolsafe { return &Poolsafe{} }

func (*Poolsafe) Name() string { return "poolsafe" }
func (*Poolsafe) Doc() string {
	return "sync.Pool values must not be returned or stored into long-lived structures"
}

func (c *Poolsafe) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	for _, p := range m.Packages {
		for _, f := range p.Files {
			info := p.infoFor(f)
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				analyzePoolFlow(info, fn, report)
			}
		}
	}
}

func analyzePoolFlow(info *types.Info, fn *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	tainted := map[string]bool{}

	isPoolGet := func(e ast.Expr) bool {
		// Unwrap a type assertion: pool.Get().(*T).
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			e = ta.X
		}
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Get" {
			return false
		}
		t := info.TypeOf(sel.X)
		if t == nil {
			return false
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
	}

	var isTainted func(e ast.Expr) bool
	isTainted = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.Ident:
			return tainted[x.Name]
		case *ast.ParenExpr:
			return isTainted(x.X)
		case *ast.TypeAssertExpr:
			return isTainted(x.X)
		case *ast.SelectorExpr:
			return isTainted(x.X)
		case *ast.IndexExpr:
			return isTainted(x.X)
		case *ast.SliceExpr:
			return isTainted(x.X)
		case *ast.UnaryExpr:
			return isTainted(x.X)
		case *ast.StarExpr:
			return isTainted(x.X)
		}
		return isPoolGet(e)
	}

	rootIdent := func(e ast.Expr) *ast.Ident {
		for {
			switch x := e.(type) {
			case *ast.Ident:
				return x
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			default:
				return nil
			}
		}
	}

	// Seed and propagate taint to a fixed point (bounded: the lattice
	// only grows), then report escapes in a final pass.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) == 0 || len(as.Rhs) == 0 {
				return true
			}
			// x := pool.Get() / x, ok := pool.Get().(*T) / x = tainted.
			if len(as.Rhs) == 1 {
				if isTainted(as.Rhs[0]) {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && !tainted[id.Name] {
							tainted[id.Name] = true
							changed = true
						}
					}
				}
				return true
			}
			for i, lhs := range as.Lhs {
				if i < len(as.Rhs) && isTainted(as.Rhs[i]) {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && !tainted[id.Name] {
						tainted[id.Name] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if isTainted(res) {
					report(res.Pos(), "sync.Pool-derived value %s escapes via return; transfer ownership explicitly or annotate //lint:allow poolsafe <reason>",
						exprString(res))
				}
			}
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN {
				return true
			}
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				} else if i < len(s.Rhs) {
					rhs = s.Rhs[i]
				}
				if rhs == nil || !isTainted(rhs) {
					continue
				}
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					// Storing INTO a pooled object is the recycling
					// pattern; storing a pooled object into something
					// else is the escape.
					if root := rootIdent(lhs); root != nil && tainted[root.Name] {
						continue
					}
					report(lhs.Pos(), "sync.Pool-derived value %s stored into longer-lived %s; pooled objects must stay function-local or be annotated //lint:allow poolsafe <reason>",
						exprString(rhs), exprString(lhs))
				}
			}
		}
		return true
	})
}
