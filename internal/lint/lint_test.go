package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts the quoted expectations from a `// want "..." "..."`
// annotation.
var wantRE = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)

// TestCorpus runs the full suite over the golden corpus (a nested
// module under testdata, invisible to the go tool) and requires an
// exact match between the diagnostics produced and the `// want`
// annotations: every annotation must fire, and nothing unannotated
// may fire. A trailing annotation covers its own line; an annotation
// alone on a line covers the next line (used where the flagged line
// is itself a //lint: directive).
func TestCorpus(t *testing.T) {
	root := filepath.Join("testdata", "lintcorpus")
	m, err := Load(root)
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	diags := Run(m, AllChecks())

	type key struct {
		file string
		line int
	}
	expected := map[key][]*regexp.Regexp{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, text := range strings.Split(string(data), "\n") {
			mm := wantRE.FindStringSubmatch(text)
			if mm == nil {
				continue
			}
			target := i + 1 // 1-based line of the annotation
			if strings.HasPrefix(strings.TrimSpace(text), "//") {
				target++ // standalone comment: covers the next line
			}
			k := key{file: rel, line: target}
			for _, q := range regexp.MustCompile(`"([^"]*)"`).FindAllStringSubmatch(mm[1], -1) {
				re, err := regexp.Compile(q[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp %q: %v", rel, target, q[1], err)
				}
				expected[k] = append(expected[k], re)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(expected) == 0 {
		t.Fatal("corpus has no // want annotations; is testdata/lintcorpus intact?")
	}

	matched := map[key][]bool{}
	for k, res := range expected {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := key{file: d.File, line: d.Line}
		got := fmt.Sprintf("%s: %s", d.Check, d.Message)
		found := false
		for i, re := range expected[k] {
			if !matched[k][i] && re.MatchString(got) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.File, d.Line, got)
		}
	}
	for k, res := range expected {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: want %q matched no diagnostic", k.file, k.line, re)
			}
		}
	}
}

// TestCheckMetadata pins the suite composition: names are the allow-
// directive vocabulary, so renaming a check silently orphans every
// suppression.
func TestCheckMetadata(t *testing.T) {
	want := []string{"detrand", "maprange", "wirepin", "nilnoop", "poolsafe", "locked", "hotalloc", "lifecycle"}
	checks := AllChecks()
	if len(checks) != len(want) {
		t.Fatalf("AllChecks returned %d checks, want %d", len(checks), len(want))
	}
	for i, c := range checks {
		if c.Name() != want[i] {
			t.Errorf("check %d is %q, want %q", i, c.Name(), want[i])
		}
		if c.Doc() == "" {
			t.Errorf("check %q has no Doc", c.Name())
		}
	}
}
