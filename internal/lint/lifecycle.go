package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lifecycle enforces that concurrency resources created under
// internal/ have a reachable teardown:
//
//   - Every `go` statement must be joined: the spawned body signals a
//     sync.WaitGroup whose Wait, or selects on a done channel whose
//     close, is called either in the spawning function itself or in a
//     function reachable (via the static call graph) from a shutdown
//     root — a method or function named Close/Stop/Shutdown/Drain/
//     Wait (or prefixed Close*/Stop*/Shutdown*).
//   - Every time.NewTicker/NewTimer/AfterFunc result must flow to a
//     .Stop() in the same function (typically deferred) or in a
//     shutdown-reachable one; time.Tick is reported unconditionally,
//     since its ticker can never be stopped.
//
// Identities are types.Object-based: the WaitGroup/channel/ticker is
// matched by the variable or struct field it lives in, not by name,
// so `c.wg.Done()` in a literal pairs with `c.wg.Wait()` in Close.
// Dynamically spawned functions (go fn() through a function value)
// cannot be analyzed and are reported for explicit annotation.
// Fire-and-forget goroutines that are genuinely owned by a listener
// or process lifetime carry //lint:allow lifecycle <reason>.
type Lifecycle struct{}

// NewLifecycle returns the check, scoped to internal/ packages.
func NewLifecycle() *Lifecycle { return &Lifecycle{} }

func (*Lifecycle) Name() string { return "lifecycle" }
func (*Lifecycle) Doc() string {
	return "goroutines and tickers/timers in internal/ need a join or Stop reachable from Close/Stop/Shutdown"
}

var shutdownPrefixes = []string{"Close", "Stop", "Shutdown"}
var shutdownNames = map[string]bool{"Drain": true, "Wait": true, "close": true, "stop": true, "shutdown": true}

func isShutdownName(name string) bool {
	if shutdownNames[name] {
		return true
	}
	for _, p := range shutdownPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func (c *Lifecycle) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	cg := m.CallGraph()

	// Shutdown roots and the set of functions reachable from them.
	var roots []*cgNode
	for _, n := range cg.nodes {
		if !n.testFile && isShutdownName(n.obj.Name()) {
			roots = append(roots, n)
		}
	}
	shutReach := cg.reachableFrom(roots)

	// Module-wide site maps: which functions call obj.Wait(),
	// obj.Stop(), close(obj) for each variable/field object.
	sites := collectLifecycleSites(m, cg)

	// joined reports whether fn's teardown set intersects the spawner
	// or the shutdown-reachable functions.
	joined := func(where []*cgNode, spawner *cgNode) bool {
		for _, w := range where {
			if w == spawner || shutReach[w] {
				return true
			}
		}
		return false
	}

	prefix := m.Path + "/internal/"
	for _, n := range cg.nodes {
		if n.testFile || n.decl.Body == nil || !strings.HasPrefix(n.pkg.Path, prefix) {
			continue
		}
		info := n.pkg.infoFor(fileOf(n.pkg, n.decl))
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.GoStmt:
				c.checkGo(m, cg, info, n, x, sites, joined, report)
			case *ast.CallExpr:
				c.checkTimer(info, n, x, sites, joined, report)
			}
			return true
		})
	}
}

// lifecycleSites maps teardown calls to the functions containing
// them, keyed by the object being torn down.
type lifecycleSites struct {
	wait  map[types.Object][]*cgNode // wg.Wait()
	stop  map[types.Object][]*cgNode // t.Stop()
	close map[types.Object][]*cgNode // close(ch)
}

func collectLifecycleSites(m *Module, cg *callGraph) *lifecycleSites {
	s := &lifecycleSites{
		wait:  map[types.Object][]*cgNode{},
		stop:  map[types.Object][]*cgNode{},
		close: map[types.Object][]*cgNode{},
	}
	add := func(m map[types.Object][]*cgNode, obj types.Object, n *cgNode) {
		if obj == nil {
			return
		}
		for _, have := range m[obj] {
			if have == n {
				return
			}
		}
		m[obj] = append(m[obj], n)
	}
	for _, n := range cg.nodes {
		if n.testFile || n.decl.Body == nil {
			continue
		}
		info := n.pkg.infoFor(fileOf(n.pkg, n.decl))
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "close" && len(call.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					add(s.close, referencedObject(info, call.Args[0]), n)
				}
				return true
			}
			sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			switch sel.Sel.Name {
			case "Wait":
				if isSyncWaitGroup(info.TypeOf(sel.X)) {
					add(s.wait, referencedObject(info, sel.X), n)
				}
			case "Stop":
				add(s.stop, referencedObject(info, sel.X), n)
			}
			return true
		})
	}
	return s
}

// referencedObject resolves an expression to the variable or field
// object it denotes (normalized across generic instantiation), or nil
// for anything unaddressable by a simple path.
func referencedObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v.Origin()
		}
		if v, ok := info.Defs[x].(*types.Var); ok {
			return v.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v.Origin()
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return referencedObject(info, x.X)
		}
	}
	return nil
}

func isSyncWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// checkGo verifies one go statement has a reachable join.
func (c *Lifecycle) checkGo(m *Module, cg *callGraph, info *types.Info, spawner *cgNode, gs *ast.GoStmt,
	sites *lifecycleSites, joined func([]*cgNode, *cgNode) bool,
	report func(pos token.Pos, format string, args ...any)) {

	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if callee := cg.node(resolveCallee(info, gs.Call)); callee != nil {
		body = callee.decl.Body
		info = callee.pkg.infoFor(fileOf(callee.pkg, callee.decl))
	}
	if body == nil {
		report(gs.Pos(), "goroutine target is a dynamic call; its join cannot be verified statically — annotate //lint:allow lifecycle <reason> if it is owned elsewhere")
		return
	}

	// Join signals inside the spawned body (defers and nested
	// literals included): WaitGroup Done, done-channel receives.
	var wgObjs, chObjs []types.Object
	seen := map[types.Object]bool{}
	note := func(list *[]types.Object, obj types.Object) {
		if obj != nil && !seen[obj] {
			seen[obj] = true
			*list = append(*list, obj)
		}
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isSyncWaitGroup(info.TypeOf(sel.X)) {
				note(&wgObjs, referencedObject(info, sel.X))
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && isChanType(info.TypeOf(x.X)) {
				note(&chObjs, referencedObject(info, x.X))
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(x.X)) {
				note(&chObjs, referencedObject(info, x.X))
			}
		}
		return true
	})

	for _, obj := range wgObjs {
		if joined(sites.wait[obj], spawner) {
			return
		}
	}
	for _, obj := range chObjs {
		if joined(sites.close[obj], spawner) {
			return
		}
	}
	switch {
	case len(wgObjs) > 0:
		report(gs.Pos(), "goroutine signals a WaitGroup, but no matching Wait is reachable from a Close/Stop/Shutdown method or the spawning function")
	case len(chObjs) > 0:
		report(gs.Pos(), "goroutine watches a channel, but no matching close() is reachable from a Close/Stop/Shutdown method or the spawning function")
	default:
		report(gs.Pos(), "goroutine has no join: add a WaitGroup Done/Wait pair or a done channel closed on shutdown, or annotate //lint:allow lifecycle <reason>")
	}
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// checkTimer verifies ticker/timer construction sites.
func (c *Lifecycle) checkTimer(info *types.Info, n *cgNode, call *ast.CallExpr,
	sites *lifecycleSites, joined func([]*cgNode, *cgNode) bool,
	report func(pos token.Pos, format string, args ...any)) {

	callee := resolveCallee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "time" {
		return
	}
	kind := callee.Name()
	switch kind {
	case "Tick":
		report(call.Pos(), "time.Tick leaks its ticker; use time.NewTicker with a deferred Stop")
		return
	case "NewTicker", "NewTimer", "AfterFunc":
	default:
		return
	}

	// The result must be bound to a trackable variable or field whose
	// Stop is reachable.
	obj := timerResultObject(info, n, call)
	if obj == nil {
		report(call.Pos(), "time.%s result is not bound to a variable; its Stop can never be called", kind)
		return
	}
	if joined(sites.stop[obj], n) {
		return
	}
	report(call.Pos(), "time.%s result is never stopped: no Stop in this function or reachable from a Close/Stop/Shutdown method", kind)
}

// timerResultObject finds the variable/field the timer call's result
// is assigned to, by locating the enclosing assignment in n's body.
func timerResultObject(info *types.Info, n *cgNode, call *ast.CallExpr) types.Object {
	var found types.Object
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		if found != nil {
			return false
		}
		switch x := node.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if ast.Unparen(rhs) == call && i < len(x.Lhs) {
					found = referencedObject(info, x.Lhs[i])
					return false
				}
			}
		case *ast.ValueSpec:
			for i, v := range x.Values {
				if ast.Unparen(v) == call && i < len(x.Names) {
					found = referencedObject(info, x.Names[i])
					return false
				}
			}
		}
		return true
	})
	return found
}
