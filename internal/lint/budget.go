package lint

// AllowBudget pins the total number of //lint:allow directives in the
// module. chunklint -stats (run in CI) and TestAllowBudget both fail
// when the live count drifts from this constant, so adding — or
// removing — a suppression forces an explicit, reviewed update here.
// The budget is a ratchet: prefer fixing a finding over raising it.
const AllowBudget = 98
