package lint

import (
	"go/ast"
)

// This file is the shared control-flow substrate of the flow-aware
// checks (locked, and any future path-sensitive analysis): a small
// intraprocedural CFG over ast.Stmt granularity. Blocks hold "simple"
// nodes — plain statements plus the condition/tag expressions of the
// branches that terminate them — in source order; control-flow
// statements are lowered into block edges. The construction is
// deliberately conservative: anything it cannot model precisely
// (goto into a loop, fallthrough chains) degrades into extra edges,
// never missing ones, so a forward must-analysis (set intersection at
// joins) stays sound against the modeled flow.

// A cfgBlock is one straight-line run of nodes with successor edges.
type cfgBlock struct {
	nodes []ast.Node // simple stmts and branch condition exprs, in order
	succs []*cfgBlock
	index int // stable identity for worklists and determinism
}

// A funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock // entry first, construction order (deterministic)
}

// cfgBuilder carries the construction state: the current open block
// and the targets of break/continue/goto in scope.
type cfgBuilder struct {
	g      *funcCFG
	cur    *cfgBlock
	breaks []loopCtx            // innermost last
	labels map[string]*cfgBlock // goto / labeled-statement targets
	gotos  []pendingGoto
}

type loopCtx struct {
	label    string
	brk      *cfgBlock // break target (block after the construct)
	cont     *cfgBlock // continue target (nil for switch/select)
	isSwitch bool
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

// buildCFG lowers a function body into a funcCFG.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}, labels: map[string]*cfgBlock{}}
	b.cur = b.newBlock()
	b.g.entry = b.g.blocks[0]
	b.stmtList(body.List)
	// Resolve forward gotos; unknown labels fall off (no edge), which
	// only makes the must-analysis stricter along modeled paths.
	for _, pg := range b.gotos {
		if dst, ok := b.labels[pg.label]; ok {
			pg.from.succs = append(pg.from.succs, dst)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	bl := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, bl)
	return bl
}

// link adds an edge cur -> bl and makes bl current. A nil cur means
// the flow already terminated (return/branch); bl starts unreachable
// and is pruned by the dataflow's reachability.
func (b *cfgBuilder) moveTo(bl *cfgBlock) {
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs, bl)
	}
	b.cur = bl
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from != nil {
		from.succs = append(from.succs, to)
	}
}

func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// findLoop returns the break/continue context for the given label (""
// means innermost breakable / continuable).
func (b *cfgBuilder) findBreak(label string) *cfgBlock {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if label == "" || b.breaks[i].label == label {
			return b.breaks[i].brk
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label string) *cfgBlock {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if b.breaks[i].cont == nil {
			continue // switch/select: continue skips through
		}
		if label == "" || b.breaks[i].label == label {
			return b.breaks[i].cont
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.labels[s.Label.Name] = target
		b.moveTo(target)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.moveTo(after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			b.moveTo(after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		body := b.newBlock()
		b.moveTo(head)
		if s.Cond != nil {
			b.emit(s.Cond)
			b.edge(head, after) // cond false
		}
		// A condition-less for only exits via break/return.
		b.edge(head, body)
		b.breaks = append(b.breaks, loopCtx{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		if s.Post != nil {
			b.emit(s.Post)
		}
		b.moveTo(head) // back edge
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.RangeStmt:
		b.emit(s.X)
		head := b.newBlock()
		after := b.newBlock()
		body := b.newBlock()
		b.moveTo(head)
		// The per-iteration key/value targets (the body lives in its
		// own blocks; emitting s itself would double-walk it).
		b.emit(s.Key)
		b.emit(s.Value)
		b.edge(head, after) // range exhausted (possibly immediately)
		b.edge(head, body)
		b.breaks = append(b.breaks, loopCtx{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.moveTo(head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchBody(s.Body, label, func(cc *ast.CaseClause) {
			for _, e := range cc.List {
				b.emit(e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.switchBody(s.Body, label, nil)

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, loopCtx{label: label, brk: after, isSwitch: true})
		hasDefault := false
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.emit(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.moveTo(after)
		}
		if len(s.Body.List) == 0 || !hasDefault {
			// A select with no default blocks; modeling a fallthrough
			// edge keeps the graph connected without weakening joins.
			_ = hasDefault
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.BranchStmt:
		lbl := ""
		if s.Label != nil {
			lbl = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if dst := b.findBreak(lbl); dst != nil {
				b.edge(b.cur, dst)
			}
			b.cur = nil
		case "continue":
			if dst := b.findContinue(lbl); dst != nil {
				b.edge(b.cur, dst)
			}
			b.cur = nil
		case "goto":
			if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: lbl})
			}
			b.cur = nil
		case "fallthrough":
			// Handled structurally by switchBody; nothing to do here.
		}

	case *ast.ReturnStmt:
		b.emit(s)
		b.cur = nil // flow terminates

	default:
		// DeclStmt, AssignStmt, ExprStmt, GoStmt, DeferStmt, SendStmt,
		// IncDecStmt, EmptyStmt: straight-line.
		b.emit(s)
	}
}

// switchBody lowers a (type) switch: every case starts from the tag
// block; fallthrough chains into the next case's body.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, emitCase func(*ast.CaseClause)) {
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, loopCtx{label: label, brk: after, isSwitch: true})
	hasDefault := false
	var caseBlocks []*cfgBlock
	var caseClauses []*ast.CaseClause
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(head, blk)
		caseBlocks = append(caseBlocks, blk)
		caseClauses = append(caseClauses, cc)
	}
	for i, cc := range caseClauses {
		b.cur = caseBlocks[i]
		if emitCase != nil {
			emitCase(cc)
		}
		ft := false
		for _, s := range cc.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				ft = true
			}
			b.stmt(s, "")
		}
		if ft && i+1 < len(caseBlocks) {
			b.moveTo(caseBlocks[i+1])
			b.cur = nil
			continue
		}
		b.moveTo(after)
	}
	if !hasDefault {
		b.edge(head, after) // no case matched
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}
