package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Package is one typechecked directory of the module under analysis.
// Files holds the build-constrained non-test sources, TestFiles the
// in-package _test.go files (typechecked together with Files, as the
// go tool compiles them), and XTestFiles the external "pkg_test"
// files, typechecked as their own unit importing the live package.
type Package struct {
	Path string // import path
	Name string // package name
	Dir  string

	Files      []*ast.File
	TestFiles  []*ast.File
	XTestFiles []*ast.File

	Types *types.Package
	Info  *types.Info // covers Files + TestFiles

	XTypes *types.Package
	XInfo  *types.Info // covers XTestFiles (nil without external tests)
}

// AllFiles returns sources, in-package tests and external tests.
func (p *Package) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles)+len(p.XTestFiles))
	out = append(out, p.Files...)
	out = append(out, p.TestFiles...)
	return append(out, p.XTestFiles...)
}

// A Module is the fully loaded analysis target: every package of one
// Go module, parsed with comments and typechecked against real import
// data, sharing one FileSet so positions are comparable everywhere.
type Module struct {
	Path string // module path from go.mod
	Dir  string // absolute module root
	Fset *token.FileSet

	Packages []*Package // sorted by import path

	byPath map[string]*Package

	// Lazily built flow-analysis substrates shared across checks.
	cgOnce  sync.Once
	cg      *callGraph
	escOnce sync.Once
	esc     *escapeData
	escErr  error
}

// CallGraph returns the module's static call graph, built on first
// use and shared by every flow-aware check.
func (m *Module) CallGraph() *callGraph {
	m.cgOnce.Do(func() { m.cg = buildCallGraph(m) })
	return m.cg
}

// Lookup returns the package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// Load parses and typechecks every package of the module rooted at
// dir (the directory containing go.mod). Imports outside the module
// are resolved from compiler export data obtained through a single
// `go list -deps -test -export` invocation, so the standard library is
// never re-typechecked from source; module-internal imports resolve to
// the in-memory packages so object identities are shared across the
// whole module (a cross-package pass can compare types.Object values
// directly).
func Load(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{Path: modPath, Dir: abs, Fset: fset, byPath: map[string]*Package{}}

	dirs, err := goDirs(abs)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.CgoEnabled = false // typecheck the pure-Go file set
	raw := map[string]*rawPkg{}
	for _, d := range dirs {
		bp, err := ctx.ImportDir(d, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok && len(bp.TestGoFiles)+len(bp.XTestGoFiles) == 0 {
				continue
			}
			if bp == nil {
				return nil, fmt.Errorf("lint: %s: %v", d, err)
			}
		}
		rel, err := filepath.Rel(abs, d)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := &rawPkg{dir: d, path: ip, name: bp.Name}
		parse := func(names []string) ([]*ast.File, error) {
			var files []*ast.File
			for _, n := range names {
				f, err := parser.ParseFile(fset, filepath.Join(d, n), nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil {
					return nil, fmt.Errorf("lint: parse: %w", err)
				}
				files = append(files, f)
			}
			return files, nil
		}
		if rp.files, err = parse(bp.GoFiles); err != nil {
			return nil, err
		}
		if rp.testFiles, err = parse(bp.TestGoFiles); err != nil {
			return nil, err
		}
		if rp.xtestFiles, err = parse(bp.XTestGoFiles); err != nil {
			return nil, err
		}
		if rp.name == "" { // test-only directory
			if len(rp.testFiles) > 0 {
				rp.name = rp.testFiles[0].Name.Name
			} else if len(rp.xtestFiles) > 0 {
				rp.name = strings.TrimSuffix(rp.xtestFiles[0].Name.Name, "_test")
			}
		}
		raw[ip] = rp
	}

	ext, err := newExportImporter(fset, abs)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{module: m, ext: ext}

	// Typecheck in dependency order (module-internal imports of the
	// source + in-package test files), detecting cycles.
	state := map[string]int{} // 0 new, 1 visiting, 2 done
	var check func(path string) error
	check = func(path string) error {
		rp := raw[path]
		if rp == nil || state[path] == 2 {
			return nil
		}
		if state[path] == 1 {
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = 1
		for _, f := range append(append([]*ast.File{}, rp.files...), rp.testFiles...) {
			for _, is := range f.Imports {
				p, _ := strconv.Unquote(is.Path.Value)
				if err := check(p); err != nil {
					return err
				}
			}
		}
		pkg, err := typecheck(fset, rp.path, rp.name, append(append([]*ast.File{}, rp.files...), rp.testFiles...), imp)
		if err != nil {
			return err
		}
		lp := &Package{
			Path: rp.path, Name: rp.name, Dir: rp.dir,
			Files: rp.files, TestFiles: rp.testFiles, XTestFiles: rp.xtestFiles,
			Types: pkg.tpkg, Info: pkg.info,
		}
		m.byPath[rp.path] = lp
		m.Packages = append(m.Packages, lp)
		state[path] = 2
		return nil
	}
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := check(p); err != nil {
			return nil, err
		}
	}
	// External test units, after every real package exists.
	for _, p := range paths {
		lp := m.byPath[p]
		if lp == nil || len(lp.XTestFiles) == 0 {
			continue
		}
		x, err := typecheck(fset, lp.Path+"_test", lp.Name+"_test", lp.XTestFiles, imp)
		if err != nil {
			return nil, err
		}
		lp.XTypes, lp.XInfo = x.tpkg, x.info
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].Path < m.Packages[j].Path })
	return m, nil
}

type rawPkg struct {
	dir, path, name              string
	files, testFiles, xtestFiles []*ast.File
}

type checked struct {
	tpkg *types.Package
	info *types.Info
}

func typecheck(fset *token.FileSet, path, name string, files []*ast.File, imp types.Importer) (*checked, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", build.Default.GOARCH)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	_ = name
	return &checked{tpkg: tpkg, info: info}, nil
}

// moduleImporter serves module-internal packages from the in-memory
// set and everything else from compiler export data.
type moduleImporter struct {
	module *Module
	ext    types.ImporterFrom
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p := mi.module.byPath[path]; p != nil && p.Types != nil {
		return p.Types, nil
	}
	return mi.ext.ImportFrom(path, mi.module.Dir, 0)
}

// newExportImporter builds a gc-export-data importer over the build
// cache: one `go list` maps every dependency (test deps included) of
// the module to its export file.
func newExportImporter(fset *token.FileSet, dir string) (types.ImporterFrom, error) {
	// -e tolerates broken packages: go list then returns export data
	// for everything that does compile and leaves Export empty for the
	// rest, so the loader's own typechecker gets to report the broken
	// package with a positioned diagnostic instead of surfacing raw
	// `go list` stderr.
	cmd := exec.Command("go", "list", "-e", "-deps", "-test", "-export", "-json=ImportPath,Export", "./...")
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list -export: %v\n%s", err, errb.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(&out)
	for {
		var e struct{ ImportPath, Export string }
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %v", err)
		}
		// Skip the synthetic test variants ("p [p.test]", "p.test"):
		// importing the plain package is right for analysis.
		if e.Export == "" || strings.Contains(e.ImportPath, " ") || strings.HasSuffix(e.ImportPath, ".test") {
			continue
		}
		if _, ok := exports[e.ImportPath]; !ok {
			exports[e.ImportPath] = e.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q (not a dependency of the module?)", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	return imp.(types.ImporterFrom), nil
}

// modulePath reads the module path out of dir/go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %v", dir, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", dir)
}

// goDirs returns every directory under root that contains .go files,
// skipping testdata, hidden and underscore-prefixed trees, and nested
// modules.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if path != root {
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir // nested module
				}
			}
			has, err := hasGoFiles(path)
			if err != nil {
				return err
			}
			if has {
				dirs = append(dirs, path)
			}
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}
