package lint

import (
	"go/token"
	"regexp"
)

// Hotalloc statically enforces allocation-free hot paths. A function
// annotated with a `//lint:hot` doc-comment line is a hot root; the
// check walks every function statically reachable from the roots
// (through the module call graph, excluding test files and dynamic
// calls) and reports each compiler-verified heap allocation inside —
// the "escapes to heap" / "moved to heap" diagnostics of
// `go build -gcflags=-m`, replayed from the build cache.
//
// This is the static twin of the runtime zero-alloc regression tests
// (testing.AllocsPerRun over the steady-state send path): the tests
// prove a particular workload does not allocate, this check proves no
// code path in the annotated closure of functions can, and names the
// exact site when one appears. Deliberate cold-path allocations
// (error construction, pool refills) carry //lint:allow hotalloc with
// the justification.
//
// Boundaries: calls through interfaces or function values are not
// traversed (the runtime tests still cover them), and allocations the
// compiler performs without an escape diagnostic (append growth,
// map/chan internals) are invisible here — -m reports static escape
// decisions, not every runtime allocation.
type Hotalloc struct{}

// NewHotalloc returns the check (driven by //lint:hot annotations).
func NewHotalloc() *Hotalloc { return &Hotalloc{} }

func (*Hotalloc) Name() string { return "hotalloc" }
func (*Hotalloc) Doc() string {
	return "functions reachable from //lint:hot roots must be free of compiler-reported heap allocations"
}

var hotRE = regexp.MustCompile(`^//lint:hot(\s.*)?$`)

func (c *Hotalloc) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	cg := m.CallGraph()
	var roots []*cgNode
	for _, n := range cg.nodes {
		if n.testFile || n.decl.Doc == nil {
			continue
		}
		for _, cm := range n.decl.Doc.List {
			if hotRE.MatchString(cm.Text) {
				roots = append(roots, n)
				break
			}
		}
	}
	if len(roots) == 0 {
		return
	}
	esc, err := m.Escapes()
	if err != nil {
		report(roots[0].decl.Pos(), "cannot verify //lint:hot paths: %v", err)
		return
	}
	reach := cg.reachableFrom(roots)
	for _, n := range cg.nodes { // deterministic module order
		if !reach[n] || n.testFile || n.decl.Body == nil {
			continue
		}
		start := m.Fset.Position(n.decl.Pos())
		end := m.Fset.Position(n.decl.End())
		tf := m.Fset.File(n.decl.Pos())
		for _, s := range esc.sites(relFile(m, start.Filename)) {
			if s.Line < start.Line || s.Line > end.Line {
				continue
			}
			pos := tf.LineStart(s.Line) + token.Pos(s.Col-1)
			report(pos, "allocation on //lint:hot path in %s: %s", funcDisplayName(n.obj), s.Msg)
		}
	}
}
