package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count of a log2 histogram: bucket 0 holds
// v <= 0, bucket i (1..64) holds values whose bit length is i, i.e.
// the range [2^(i-1), 2^i - 1]. Values above 2^63-1 cannot exist in an
// int64, so bucket 64 is the natural max-value clamp.
const histBuckets = 65

// A Histogram is a lock-free log2-bucketed distribution (latencies in
// microseconds, sizes in bytes or elements, retry counts). Observe is
// two atomic adds plus one atomic increment; nil receivers are no-ops.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketHigh returns the inclusive upper bound of bucket i — the value
// reported for samples that landed there.
func bucketHigh(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= 64:
		return math.MaxInt64
	default:
		return int64(1)<<i - 1
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot freezes the distribution. Safe on nil (zero snapshot).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = map[int]int64{}
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// HistSnapshot is a frozen log2 distribution. Buckets maps bucket
// index (see bucketOf) to sample count; empty buckets are omitted.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Mean returns the exact sample mean (0 with no samples).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Percentile returns the upper bound of the bucket containing the p-th
// percentile sample (0 < p <= 100), by cumulative nearest-rank; 0 with
// no samples. The log2 buckets make this an upper estimate within 2x.
func (s HistSnapshot) Percentile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(p/100*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += s.Buckets[i]
		if cum >= rank {
			return bucketHigh(i)
		}
	}
	return bucketHigh(histBuckets - 1)
}

// Max returns the upper bound of the highest occupied bucket (0 with
// no samples).
func (s HistSnapshot) Max() int64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			return bucketHigh(i)
		}
	}
	return 0
}

// Diff subtracts prev from s, bucket by bucket.
func (s HistSnapshot) Diff(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	diff := map[int]int64{}
	for i, n := range s.Buckets {
		if d := n - prev.Buckets[i]; d != 0 {
			diff[i] = d
		}
	}
	if len(diff) > 0 {
		out.Buckets = diff
	}
	return out
}

// String summarises the distribution.
func (s HistSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50<=%d p99<=%d max<=%d",
		s.Count, s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
}
