package telemetry_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chunks/internal/telemetry"
	"chunks/internal/transport"
)

// TestTelemetryDoesNotAffectProtocol runs the identical seeded lossy
// transfer with telemetry disabled and enabled and asserts the
// protocol behaved bit-for-bit the same: telemetry is write-only from
// the stack's perspective, so nothing it observes may feed back into
// retransmission, packing, or placement decisions.
func TestTelemetryDoesNotAffectProtocol(t *testing.T) {
	type outcome struct {
		stream     []byte
		sent, retr int
		res        transport.PumpResult
	}
	run := func(seed int64, ssink, rsink telemetry.Sink) outcome {
		t.Helper()
		p, err := transport.NewPump(
			transport.SenderConfig{CID: 3, MTU: 512, ElemSize: 4, TPDUElems: 128, Tel: ssink},
			transport.ReceiverConfig{Tel: rsink},
			transport.PumpConfig{Seed: seed, LossData: 0.2, LossCtrl: 0.1, Reorder: true, MaxRounds: 3000})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 16*1024)
		rand.New(rand.NewSource(seed)).Read(data)
		if err := p.S.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := p.S.Close(); err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Drained {
			t.Fatal("pump did not drain")
		}
		return outcome{
			stream: append([]byte(nil), p.R.Stream()...),
			sent:   p.S.TPDUsSent, retr: p.S.Retransmits,
			res: res,
		}
	}
	for _, seed := range []int64{1, 7, 42} {
		reg := telemetry.New(0)
		nop := run(seed, telemetry.Sink{}, telemetry.Sink{})
		live := run(seed, reg.Sink("send"), reg.Sink("recv"))
		if !bytes.Equal(nop.stream, live.stream) {
			t.Fatalf("seed %d: delivered stream differs with telemetry enabled", seed)
		}
		if nop.sent != live.sent || nop.retr != live.retr {
			t.Fatalf("seed %d: sender behavior changed: nop sent/retr %d/%d, live %d/%d",
				seed, nop.sent, nop.retr, live.sent, live.retr)
		}
		if nop.res != live.res {
			t.Fatalf("seed %d: pump result changed: nop %+v, live %+v", seed, nop.res, live.res)
		}
		// And the instrumented run actually recorded something.
		snap := reg.Snapshot()
		if snap.Scopes["send"].Counters["tpdus_sent"] == 0 || snap.EventTotal == 0 {
			t.Fatalf("seed %d: live run recorded no telemetry", seed)
		}
	}
}

// TestNoWallClockInProtocolPackages audits the deterministic protocol
// packages (and telemetry itself) at the source level: none may read
// the wall clock. Timing-dependent state (RTT, RTO) enters the
// transport only through caller-supplied timestamps; the live wrappers
// (internal/core, cmd/*) are the only places time.Now may appear.
func TestNoWallClockInProtocolPackages(t *testing.T) {
	pkgs := []string{
		"../chunk", "../packet", "../vr", "../errdet", "../wsc",
		"../transport", "../compress", ".",
	}
	for _, dir := range pkgs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Contains(src, []byte("time.Now")) {
				t.Errorf("%s/%s reads the wall clock; protocol logic must take time from the caller",
					dir, name)
			}
		}
	}
}
